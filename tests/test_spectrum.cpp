// Tests for core/spectrum.hpp: Lorentzian broadening and peak picking.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/spectrum.hpp"

namespace {

using namespace aeqp::core;

TEST(Spectrum, SingleLinePeaksAtItsFrequency) {
  const auto s =
      lorentzian_spectrum({{1600.0, 10.0}}, 1000.0, 2000.0, 1001, 15.0);
  const auto peaks = find_peaks(s);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_NEAR(s.frequency_at(peaks[0]), 1600.0, 1.0);
  // Peak value equals the stick intensity (Lorentzian max = 1 at center).
  EXPECT_NEAR(s.intensity[peaks[0]], 10.0, 0.01);
}

TEST(Spectrum, HalfMaximumAtHwhm) {
  const auto s = lorentzian_spectrum({{500.0, 4.0}}, 0.0, 1000.0, 10001, 20.0);
  // Value at +hwhm from the center is half the maximum.
  const std::size_t i_center = 5000;  // 500.0
  const std::size_t i_hwhm = 5200;    // 520.0
  EXPECT_NEAR(s.intensity[i_hwhm], 0.5 * s.intensity[i_center], 0.01);
}

TEST(Spectrum, TwoWellSeparatedLinesGiveTwoPeaks) {
  const auto s = lorentzian_spectrum({{1600.0, 5.0}, {3700.0, 8.0}}, 1000.0,
                                     4000.0, 3001, 20.0);
  const auto peaks = find_peaks(s);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_NEAR(s.frequency_at(peaks[0]), 1600.0, 2.0);
  EXPECT_NEAR(s.frequency_at(peaks[1]), 3700.0, 2.0);
  // Relative heights follow the activities.
  EXPECT_GT(s.intensity[peaks[1]], s.intensity[peaks[0]]);
}

TEST(Spectrum, OverlappingLinesMerge) {
  // Two lines closer than the linewidth blur into one peak.
  const auto s = lorentzian_spectrum({{1000.0, 1.0}, {1010.0, 1.0}}, 800.0,
                                     1200.0, 2001, 40.0);
  EXPECT_EQ(find_peaks(s).size(), 1u);
}

TEST(Spectrum, Validation) {
  EXPECT_THROW(lorentzian_spectrum({}, 0.0, 100.0, 1, 5.0), aeqp::Error);
  EXPECT_THROW(lorentzian_spectrum({}, 100.0, 0.0, 10, 5.0), aeqp::Error);
  EXPECT_THROW(lorentzian_spectrum({}, 0.0, 100.0, 10, 0.0), aeqp::Error);
}

TEST(Spectrum, EmptyLineListGivesFlatZero) {
  const auto s = lorentzian_spectrum({}, 0.0, 100.0, 11, 5.0);
  for (double v : s.intensity) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_TRUE(find_peaks(s).empty());
}

}  // namespace
