// Solve-service tests: the headline robustness contract of src/service --
// no input, fault, or load pattern crashes the server or wedges the queue,
// and every admitted job terminates with a result or a structured error.
// Covers admission control (queue-full shedding, malformed-input
// rejection), deadlines (expiry while queued and mid-CPSCF via the
// RecoveryOptions::cancel hook), the graceful-degradation ladder, hard job
// isolation (a permanently killed rank in one job leaves a concurrent
// sibling bit-identical to its solo run), per-job ABFT/checkpoint scoping,
// the corruption-safe warm cache, and a seeded chaos soak.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "grid/structure.hpp"
#include "linalg/abft.hpp"
#include "obs/metrics.hpp"
#include "parallel/fault.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/recovery.hpp"
#include "scf/scf_solver.hpp"
#include "service/job.hpp"
#include "service/server.hpp"
#include "service/warm_cache.hpp"

namespace {

using namespace aeqp;
using namespace std::chrono_literals;

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir;
}

linalg::Matrix test_matrix(std::size_t rows, std::size_t cols, double scale) {
  linalg::Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      m(i, j) = scale * (1.0 + std::sin(static_cast<double>(i * cols + j)));
  return m;
}

grid::Structure h2(double stretch = 0.0) {
  grid::Structure s;
  s.add_atom(1, {0, 0, -0.7 - stretch});
  s.add_atom(1, {0, 0, 0.7 + stretch});
  return s;
}

service::JobSpec light_job(double stretch = 0.0) {
  service::JobSpec spec;
  spec.structure = h2(stretch);
  spec.scf.tier = basis::BasisTier::Light;
  spec.scf.grid.radial_points = 36;
  spec.scf.grid.angular_degree = 9;
  spec.scf.poisson.radial_points = 72;
  spec.scf.mixer = scf::Mixer::Diis;
  spec.dfpt.tolerance = 1e-6;
  spec.deadline = std::chrono::milliseconds(120000);
  return spec;
}

service::ServerOptions small_server(const std::string& dir_name,
                                    std::size_t workers = 1,
                                    std::size_t capacity = 4) {
  service::ServerOptions opt;
  opt.workers = workers;
  opt.queue_capacity = capacity;
  opt.max_atoms = 8;
  opt.checkpoint_dir = fresh_dir(dir_name);
  opt.recovery.max_retries = 2;
  return opt;
}

/// Spin until the server reports `n` running jobs (a submitted job has been
/// popped off the queue), so queue-occupancy tests are deterministic.
void wait_in_flight(const service::SolveServer& server, std::size_t n) {
  for (int i = 0; i < 2000 && server.stats().in_flight < n; ++i)
    std::this_thread::sleep_for(1ms);
  ASSERT_GE(server.stats().in_flight, n);
}

// ---------------------------------------------------------------------------
// Warm cache

TEST(WarmCache, GroundTierLruEvictsLeastRecentlyUsed) {
  service::WarmCacheOptions opt;
  opt.ground_capacity = 2;
  service::WarmCache cache(opt);

  const auto entry = [](int iters) {
    auto r = std::make_shared<scf::ScfResult>();
    r->iterations = iters;
    return std::shared_ptr<const scf::ScfResult>(r);
  };
  cache.put_ground(1, entry(1));
  cache.put_ground(2, entry(2));
  ASSERT_NE(cache.find_ground(1), nullptr);  // touch: 1 is now MRU
  cache.put_ground(3, entry(3));             // evicts 2, not 1

  EXPECT_EQ(cache.find_ground(2), nullptr);
  ASSERT_NE(cache.find_ground(1), nullptr);
  ASSERT_NE(cache.find_ground(3), nullptr);
  EXPECT_EQ(cache.ground_size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(WarmCache, PoisonedDensityDetectedDroppedNeverServed) {
  service::WarmCache cache({});
  const linalg::Matrix dm = test_matrix(4, 4, 0.3);
  cache.put_density(7, dm);

  ASSERT_TRUE(cache.corrupt_density_for_test(7));
  // The CRC catches the flipped bit: the entry is dropped and reported as a
  // miss, never handed out as a warm start.
  EXPECT_FALSE(cache.find_density(7).has_value());
  EXPECT_EQ(cache.stats().poisoned_dropped, 1u);
  EXPECT_EQ(cache.density_size(), 0u);

  // A fresh entry under the same key serves normally again.
  cache.put_density(7, dm);
  const auto ws = cache.find_density(7);
  ASSERT_TRUE(ws.has_value());
  ASSERT_EQ(ws->density_matrix.rows(), dm.rows());
  EXPECT_EQ(std::memcmp(ws->density_matrix.data(), dm.data(),
                        sizeof(double) * dm.rows() * dm.cols()),
            0);
}

TEST(WarmCache, StructureHashQuantizesGeometry) {
  const auto base = service::structure_hash(h2(0.0));
  grid::Structure nudged;
  nudged.add_atom(1, {0, 0, -0.7 + 1e-9});
  nudged.add_atom(1, {0, 0, 0.7});
  EXPECT_EQ(service::structure_hash(nudged), base);       // below the quantum
  EXPECT_NE(service::structure_hash(h2(0.01)), base);     // real displacement

  scf::ScfOptions a, b;
  b.mixing = a.mixing * 0.9;
  EXPECT_NE(service::scf_options_hash(a), service::scf_options_hash(b));
}

// ---------------------------------------------------------------------------
// Checkpoint hygiene (per-job namespaces, GC, surfaced remove)

TEST(CheckpointHygiene, ScopedNamespacesIsolateIdenticalKeys) {
  resilience::CheckpointStore root(fresh_dir("svc_ckpt_ns"));
  const auto job1 = root.scoped("job-1");
  const auto job2 = root.scoped("job-2");

  resilience::CpscfCheckpoint ckpt;
  ckpt.direction = 2;
  ckpt.iteration = 5;
  ckpt.p1 = test_matrix(3, 3, 1.0);
  job1.save("cpscf-dir2", ckpt);

  EXPECT_TRUE(job1.exists("cpscf-dir2"));
  EXPECT_FALSE(job2.exists("cpscf-dir2"));  // same key, disjoint namespace
  EXPECT_FALSE(root.exists("cpscf-dir2"));
  EXPECT_EQ(job1.load_cpscf("cpscf-dir2").iteration, 5);

  EXPECT_THROW((void)root.scoped(""), Error);
  EXPECT_THROW((void)root.scoped("a/b"), Error);
  EXPECT_THROW((void)root.scoped(".."), Error);
}

TEST(CheckpointHygiene, RemoveReportsAndClearGarbageCollects) {
  resilience::CheckpointStore store(fresh_dir("svc_ckpt_gc"));
  EXPECT_FALSE(store.remove("missing"));  // nothing there: false, no throw

  resilience::CpscfCheckpoint ckpt;
  ckpt.p1 = test_matrix(2, 2, 1.0);
  store.save("a", ckpt);
  store.save("b", ckpt);
  EXPECT_TRUE(store.remove("a"));
  EXPECT_FALSE(store.exists("a"));

  const auto job = store.scoped("job-9");
  job.save("a", ckpt);
  EXPECT_EQ(store.clear(), 1u);  // removes "b" only: non-recursive
  EXPECT_FALSE(store.exists("b"));
  EXPECT_TRUE(job.exists("a"));  // the namespace GCs itself, not its parent
  EXPECT_EQ(job.clear(), 1u);
}

// ---------------------------------------------------------------------------
// Scoped ABFT stats (per-job attribution)

TEST(AbftScope, AttributesToScopeAndNests) {
  const auto global_before = linalg::abft_stats();
  const linalg::Matrix a = test_matrix(8, 8, 1.0);
  const linalg::Matrix b = test_matrix(8, 8, 0.5);

  linalg::AbftStatsScope outer;
  (void)linalg::abft_matmul(a, b, "test/outer");
  {
    linalg::AbftStatsScope inner;
    (void)linalg::abft_matmul(a, b, "test/inner");
    EXPECT_EQ(inner.stats().checks, 1u);
  }
  // The inner scope credits its enclosing scope too, and the process-wide
  // counters keep accumulating unchanged.
  EXPECT_EQ(outer.stats().checks, 2u);
  EXPECT_EQ(linalg::abft_stats().checks - global_before.checks, 2u);
}

TEST(AbftScope, ConcurrentScopesDoNotBleed) {
  const linalg::Matrix a = test_matrix(8, 8, 1.0);
  const linalg::Matrix b = test_matrix(8, 8, 0.5);
  std::size_t counts[2] = {0, 0};
  std::thread t0([&] {
    linalg::AbftStatsScope scope;
    for (int i = 0; i < 3; ++i) (void)linalg::abft_matmul(a, b, "test/t0");
    counts[0] = scope.stats().checks;
  });
  std::thread t1([&] {
    linalg::AbftStatsScope scope;
    for (int i = 0; i < 5; ++i) (void)linalg::abft_matmul(a, b, "test/t1");
    counts[1] = scope.stats().checks;
  });
  t0.join();
  t1.join();
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 5u);
}

// ---------------------------------------------------------------------------
// Admission control

TEST(Admission, RejectsMalformedJobsWithStructuredErrors) {
  service::SolveServer server(small_server("svc_admission"));

  service::JobSpec empty = light_job();
  empty.structure = grid::Structure();
  EXPECT_THROW((void)server.submit(empty), JobRejected);

  service::JobSpec nan_coord = light_job();
  nan_coord.structure = grid::Structure();
  nan_coord.structure.add_atom(1, {0, 0, std::numeric_limits<double>::quiet_NaN()});
  EXPECT_THROW((void)server.submit(nan_coord), JobRejected);

  service::JobSpec oversized = light_job();
  oversized.structure = grid::Structure();
  for (int k = 0; k < 9; ++k) oversized.structure.add_atom(1, {0, 0, 1.5 * k});
  try {
    (void)server.submit(oversized);
    FAIL() << "oversized job must be rejected";
  } catch (const JobRejected& e) {
    EXPECT_NE(e.reason().find("above the server limit"), std::string::npos);
  }

  service::JobSpec bad_dir = light_job();
  bad_dir.direction = 3;
  EXPECT_THROW((void)server.submit(bad_dir), JobRejected);

  service::JobSpec bad_deadline = light_job();
  bad_deadline.deadline = std::chrono::milliseconds(0);
  EXPECT_THROW((void)server.submit(bad_deadline), JobRejected);

  EXPECT_EQ(server.stats().rejected_invalid, 5u);
  EXPECT_EQ(server.stats().admitted, 0u);
}

TEST(Admission, QueueFullShedsWithStructuredBackpressure) {
  service::SolveServer server(
      small_server("svc_queuefull", /*workers=*/1, /*capacity=*/1));

  const auto blocker = server.submit(light_job(0.0));
  wait_in_flight(server, 1);  // the worker holds it; the queue is empty
  const auto queued = server.submit(light_job(0.01));

  try {
    (void)server.submit(light_job(0.02));
    FAIL() << "third submission must shed";
  } catch (const QueueFull& e) {
    EXPECT_EQ(e.depth(), 1u);
    EXPECT_EQ(e.capacity(), 1u);
  }
  EXPECT_EQ(server.stats().rejected_queue_full, 1u);

  // Shedding never harms admitted work: both jobs still terminate cleanly.
  EXPECT_EQ(server.wait(blocker).state, service::JobState::Succeeded);
  EXPECT_EQ(server.wait(queued).state, service::JobState::Succeeded);
}

// ---------------------------------------------------------------------------
// Deadlines

TEST(Deadline, ExpiresWhileQueuedWithoutRunning) {
  service::SolveServer server(small_server("svc_dl_queued", 1, 4));
  const auto blocker = server.submit(light_job(0.0));
  wait_in_flight(server, 1);

  service::JobSpec tight = light_job(0.01);
  tight.deadline = std::chrono::milliseconds(1);
  const auto id = server.submit(tight);

  const auto out = server.wait(id);
  EXPECT_EQ(out.state, service::JobState::DeadlineExpired);
  EXPECT_EQ(out.error_kind, "DeadlineExceeded");
  EXPECT_NE(out.error.find("queued"), std::string::npos);
  EXPECT_EQ(out.scf_iterations, 0);  // it never ran
  EXPECT_EQ(server.wait(blocker).state, service::JobState::Succeeded);
}

TEST(Deadline, ExpiresMidCpscfViaCancelHook) {
  service::SolveServer server(small_server("svc_dl_cpscf", 1, 4));

  // Prime the ground tier so the tight job skips SCF and the deadline can
  // only strike inside the CPSCF loop, where RecoveryOptions::cancel is
  // polled every iteration.
  service::JobSpec prime = light_job(0.0);
  EXPECT_EQ(server.wait(server.submit(prime)).state,
            service::JobState::Succeeded);

  service::JobSpec tight = prime;
  tight.dfpt.tolerance = 0.0;       // unreachable: CPSCF would run forever
  tight.dfpt.max_iterations = 10000;
  tight.deadline = std::chrono::milliseconds(150);
  const auto out = server.wait(server.submit(tight));

  EXPECT_EQ(out.state, service::JobState::DeadlineExpired);
  EXPECT_EQ(out.error_kind, "DeadlineExceeded");
  EXPECT_TRUE(out.ground_cache_hit);
  EXPECT_EQ(out.scf_iterations, 0);
}

// ---------------------------------------------------------------------------
// Degradation ladder

TEST(Degradation, PermanentKillWalksLadderToServedResult) {
  // A permanent rank kill that re-fires on every retry: the Full rung
  // exhausts its retries, ReducedRanks cannot host the injector's world,
  // and the serial ReducedAccuracy rung serves the job inside its deadline.
  parallel::FaultPlan plan;
  parallel::FaultEvent kill;
  kill.kind = parallel::FaultKind::Kill;
  kill.rank = 3;
  kill.collective = 5;
  kill.transient = false;
  plan.add(kill);
  parallel::FaultInjector injector(std::move(plan));

  service::SolveServer server(small_server("svc_ladder", 1, 4));
  service::JobSpec chaotic = light_job(0.0);
  chaotic.ranks = 4;
  chaotic.ranks_per_node = 4;
  chaotic.fault_injector = &injector;
  const auto out = server.wait(server.submit(chaotic));

  EXPECT_EQ(out.state, service::JobState::Succeeded);
  EXPECT_EQ(out.tier, service::ServiceTier::ReducedAccuracy);
  EXPECT_EQ(out.degradations, 2);
  EXPECT_TRUE(out.result.converged);
  EXPECT_GT(out.recovery.retries, 0u);  // the Full rung did fight first
  EXPECT_EQ(server.stats().degradations, 2u);
}

TEST(Degradation, PinnedJobFailsInsteadOfDegrading) {
  parallel::FaultPlan plan;
  parallel::FaultEvent kill;
  kill.kind = parallel::FaultKind::Kill;
  kill.rank = 2;
  kill.collective = 5;
  kill.transient = false;
  plan.add(kill);
  parallel::FaultInjector injector(std::move(plan));

  service::SolveServer server(small_server("svc_pinned", 1, 4));
  service::JobSpec chaotic = light_job(0.0);
  chaotic.ranks = 4;
  chaotic.ranks_per_node = 4;
  chaotic.fault_injector = &injector;
  chaotic.allow_degradation = false;  // fidelity over termination-at-any-tier
  const auto out = server.wait(server.submit(chaotic));

  EXPECT_EQ(out.state, service::JobState::Failed);
  EXPECT_EQ(out.error_kind, "RankFailure");
  EXPECT_EQ(out.degradations, 0);
}

// ---------------------------------------------------------------------------
// Job isolation

TEST(Isolation, KilledRankJobLeavesSiblingBitIdentical) {
  // Reference: the clean job alone on a fresh server.
  service::JobOutcome solo;
  {
    service::SolveServer server(small_server("svc_iso_solo", 1, 4));
    solo = server.wait(server.submit(light_job(0.0)));
    ASSERT_EQ(solo.state, service::JobState::Succeeded);
  }

  // The same job concurrent with a chaotic sibling whose rank 3 dies
  // permanently. Different geometry, so no warm state crosses between them.
  parallel::FaultPlan plan;
  parallel::FaultEvent kill;
  kill.kind = parallel::FaultKind::Kill;
  kill.rank = 3;
  kill.collective = 5;
  kill.transient = false;
  plan.add(kill);
  parallel::FaultInjector injector(std::move(plan));

  service::SolveServer server(small_server("svc_iso_pair", /*workers=*/2, 4));
  service::JobSpec chaotic = light_job(0.05);
  chaotic.ranks = 4;
  chaotic.ranks_per_node = 4;
  chaotic.fault_injector = &injector;
  const auto chaotic_id = server.submit(chaotic);
  const auto clean_id = server.submit(light_job(0.0));

  const auto clean = server.wait(clean_id);
  const auto dirty = server.wait(chaotic_id);

  // The chaotic job terminated one way or another -- and ONLY it paid.
  EXPECT_NE(dirty.state, service::JobState::Queued);
  EXPECT_NE(dirty.state, service::JobState::Running);
  ASSERT_EQ(clean.state, service::JobState::Succeeded);
  EXPECT_EQ(clean.tier, service::ServiceTier::Full);
  EXPECT_EQ(clean.degradations, 0);

  // Bit-identical to the solo run: same iteration counts, same response.
  EXPECT_EQ(clean.scf_iterations, solo.scf_iterations);
  EXPECT_EQ(clean.result.iterations, solo.result.iterations);
  EXPECT_EQ(std::memcmp(&clean.result.dipole_response,
                        &solo.result.dipole_response,
                        sizeof(solo.result.dipole_response)),
            0);

  // Per-job accounting stayed per-job: the clean job saw none of the
  // sibling's recovery work.
  EXPECT_EQ(clean.recovery.faults_detected, 0u);
  EXPECT_EQ(clean.recovery.retries, 0u);
}

// ---------------------------------------------------------------------------
// Shutdown

TEST(Shutdown, ShedsQueuedJobsWithStructuredErrors) {
  service::SolveServer server(small_server("svc_shutdown", 1, 4));
  const auto running = server.submit(light_job(0.0));
  wait_in_flight(server, 1);
  const auto q1 = server.submit(light_job(0.01));
  const auto q2 = server.submit(light_job(0.02));

  server.shutdown();

  // The running job finished; the queued ones were shed with a structured
  // terminal outcome -- nobody is left blocked on a job that will never run.
  EXPECT_EQ(server.wait(running).state, service::JobState::Succeeded);
  for (const auto id : {q1, q2}) {
    const auto out = server.wait(id);
    EXPECT_EQ(out.state, service::JobState::Rejected);
    EXPECT_EQ(out.error_kind, "JobRejected");
  }
  EXPECT_EQ(server.stats().shed_on_shutdown, 2u);
  EXPECT_THROW((void)server.submit(light_job()), JobRejected);
}

// ---------------------------------------------------------------------------
// Config validation

TEST(Config, JitterAndServerOptionsValidated) {
  resilience::CheckpointStore store(fresh_dir("svc_cfg"));
  resilience::RecoveryOptions bad;
  bad.backoff_jitter = 1.5;
  EXPECT_THROW(resilience::RecoveryDriver(store, bad), Error);
  bad.backoff_jitter = -0.1;
  EXPECT_THROW(resilience::RecoveryDriver(store, bad), Error);

  service::ServerOptions opt;
  opt.workers = 0;
  opt.checkpoint_dir = fresh_dir("svc_cfg_srv");
  EXPECT_THROW(service::SolveServer{opt}, Error);
}

TEST(Metrics, ServiceSourcesAppearInSnapshot) {
  service::SolveServer server(small_server("svc_metrics"));
  const auto src = service::register_metrics(server);
  const auto cache_src = service::register_metrics(server.cache());
  bool saw_queue = false, saw_cache = false;
  for (const auto& s : obs::metrics_snapshot()) {
    saw_queue |= s.name == "service/queue_depth";
    saw_cache |= s.name == "service/cache/poisoned_dropped";
  }
  EXPECT_TRUE(saw_queue);
  EXPECT_TRUE(saw_cache);
}

// ---------------------------------------------------------------------------
// Chaos soak (also wired as the dedicated `service_chaos_soak` ctest target)

TEST(ServiceChaosSoak, EveryAdmittedJobTerminalZeroCrashes) {
  service::ServerOptions sopt = small_server("svc_soak", /*workers=*/2,
                                             /*capacity=*/6);
  sopt.recovery.backoff_jitter = 0.25;
  service::SolveServer server(sopt);

  parallel::FaultPlan plan_a = parallel::FaultPlan::random(
      /*seed=*/7, /*n_events=*/3, /*n_ranks=*/4, /*first_collective=*/5,
      /*last_collective=*/80);
  parallel::FaultPlan plan_b = parallel::FaultPlan::random(
      /*seed=*/11, /*n_events=*/2, /*n_ranks=*/4, /*first_collective=*/5,
      /*last_collective=*/80, {parallel::FaultKind::BitFlip,
                               parallel::FaultKind::NanPayload},
      /*permanent_kills=*/1);
  parallel::FaultInjector injector_a(std::move(plan_a));
  parallel::FaultInjector injector_b(std::move(plan_b));

  std::vector<std::uint64_t> ids;
  std::size_t shed = 0, rejected = 0;
  // Retry on backpressure under a generous wall-clock budget: the bar is
  // "the queue is never wedged", not "jobs drain fast" — under TSan or heavy
  // load a full queue is legitimate for tens of seconds.
  const auto submit = [&](const service::JobSpec& spec) {
    const auto give_up = std::chrono::steady_clock::now() +
                         std::chrono::seconds(180);
    while (std::chrono::steady_clock::now() < give_up) {
      try {
        ids.push_back(server.submit(spec));
        return;
      } catch (const QueueFull&) {
        ++shed;
        std::this_thread::sleep_for(20ms);
      } catch (const JobRejected&) {
        ++rejected;
        return;
      }
    }
    FAIL() << "backpressure never cleared: the queue is wedged";
  };

  // The mix: good serial jobs (with cache reuse), chaotic parallel jobs,
  // hopeless deadlines, and malformed inputs, all interleaved.
  for (int k = 0; k < 4; ++k) submit(light_job(0.01 * (k % 2)));

  service::JobSpec chaos_a = light_job(0.03);
  chaos_a.ranks = 4;
  chaos_a.ranks_per_node = 4;
  chaos_a.fault_injector = &injector_a;
  submit(chaos_a);

  service::JobSpec tight = light_job(0.04);
  tight.deadline = std::chrono::milliseconds(2);
  submit(tight);

  service::JobSpec invalid = light_job();
  invalid.direction = -1;
  submit(invalid);

  service::JobSpec chaos_b = light_job(0.05);
  chaos_b.ranks = 4;
  chaos_b.ranks_per_node = 4;
  chaos_b.fault_injector = &injector_b;
  submit(chaos_b);

  for (int k = 0; k < 2; ++k) submit(light_job(0.01 * (k % 2)));

  // The contract: every admitted job reaches a terminal state -- wait()
  // returns for all of them, no crash, no wedge, no silent drop.
  std::size_t succeeded = 0;
  for (const auto id : ids) {
    const auto out = server.wait(id);
    EXPECT_TRUE(out.state == service::JobState::Succeeded ||
                out.state == service::JobState::Failed ||
                out.state == service::JobState::DeadlineExpired)
        << "job " << id << " ended " << service::job_state_name(out.state);
    succeeded += out.state == service::JobState::Succeeded ? 1 : 0;
  }
  EXPECT_EQ(rejected, 1u);  // exactly the malformed job bounced
  EXPECT_GE(succeeded, 6u);  // the healthy jobs all made it

  const auto s = server.stats();
  EXPECT_EQ(s.admitted, ids.size());
  EXPECT_EQ(s.completed, ids.size());
  EXPECT_EQ(s.in_flight, 0u);
  EXPECT_EQ(s.queue_depth, 0u);
  EXPECT_EQ(s.rejected_queue_full, shed);

  // Job-terminal GC left no checkpoint namespaces behind.
  std::size_t leftovers = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(sopt.checkpoint_dir)) {
    leftovers += entry.is_directory() ? 1 : 0;
  }
  EXPECT_EQ(leftovers, 0u);
}

}  // namespace
