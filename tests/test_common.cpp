// Unit tests for src/common: error macros, RNG determinism and statistics,
// Vec3 algebra, Table formatting.

#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "common/vec3.hpp"

namespace {

using aeqp::Rng;
using aeqp::Vec3;

TEST(Error, CheckThrowsWithContext) {
  try {
    AEQP_CHECK(false, "something bad");
    FAIL() << "expected throw";
  } catch (const aeqp::Error& e) {
    EXPECT_NE(std::string(e.what()).find("something bad"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_common.cpp"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) { AEQP_CHECK(1 + 1 == 2, "never"); }

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng r(13);
  double s1 = 0.0, s2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal();
    s1 += v;
    s2 += v * v;
  }
  EXPECT_NEAR(s1 / n, 0.0, 0.05);
  EXPECT_NEAR(s2 / n, 1.0, 0.08);
}

TEST(Rng, UniformIndexZeroIsSafe) {
  Rng r(5);
  EXPECT_EQ(r.uniform_index(0), 0u);
}

TEST(Vec3, Algebra) {
  const Vec3 a{1, 2, 3}, b{4, -5, 6};
  EXPECT_DOUBLE_EQ((a + b).x, 5.0);
  EXPECT_DOUBLE_EQ((a - b).y, 7.0);
  EXPECT_DOUBLE_EQ((2.0 * a).z, 6.0);
  EXPECT_DOUBLE_EQ(a.dot(b), 1 * 4 - 2 * 5 + 3 * 6);
  EXPECT_DOUBLE_EQ(a.cross(b).dot(a), 0.0);
  EXPECT_DOUBLE_EQ(a.cross(b).dot(b), 0.0);
}

TEST(Vec3, NormAndDistance) {
  const Vec3 a{3, 4, 0};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(aeqp::distance({0, 0, 0}, {0, 0, 2}), 2.0);
}

TEST(Vec3, IndexAccess) {
  Vec3 v{1, 2, 3};
  v[0] = 9;
  EXPECT_DOUBLE_EQ(v.x, 9.0);
  const Vec3 c{4, 5, 6};
  EXPECT_DOUBLE_EQ(c[2], 6.0);
}

TEST(Constants, UnitRoundTrips) {
  using namespace aeqp::constants;
  EXPECT_NEAR(bohr_to_angstrom * angstrom_to_bohr, 1.0, 1e-15);
  EXPECT_NEAR(hartree_to_ev, 27.2114, 1e-3);
}

TEST(Table, RowArityEnforced) {
  aeqp::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), aeqp::Error);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(aeqp::Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(aeqp::Table::sci(12345.0, 2).substr(0, 4), "1.23");
}

TEST(Timer, MeasuresNonNegativeTime) {
  aeqp::Timer t;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GE(sink, 0.0);
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_LT(t.millis(), 1000.0);
}

}  // namespace
