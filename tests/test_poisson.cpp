// Tests for src/poisson: Adams-Moulton cumulative integration and the
// multipole-expansion Hartree solver against analytic electrostatics.

#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "grid/structure.hpp"
#include "poisson/adams_moulton.hpp"
#include "poisson/multipole.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::poisson;

TEST(AdamsMoulton, IntegratesPolynomialExactly) {
  // AM4 is exact for cubic integrands.
  const double h = 0.1;
  std::vector<double> g;
  for (int i = 0; i <= 50; ++i) {
    const double t = h * i;
    g.push_back(3.0 * t * t - 2.0 * t + 1.0);  // antiderivative t^3 - t^2 + t
  }
  const auto cum = cumulative_integral_am4(h, g);
  for (int i = 0; i <= 50; ++i) {
    const double t = h * i;
    EXPECT_NEAR(cum[i], t * t * t - t * t + t, 1e-12);
  }
}

TEST(AdamsMoulton, ConvergesFourthOrderOnSine) {
  auto run = [](std::size_t n) {
    const double h = 1.0 / static_cast<double>(n);
    std::vector<double> g(n + 1);
    for (std::size_t i = 0; i <= n; ++i) g[i] = std::cos(h * i);
    return std::fabs(integral_am4(h, g) - std::sin(1.0));
  };
  const double e1 = run(50), e2 = run(100);
  EXPECT_LT(e2, e1 / 12.0);  // ~16x for a 4th-order method
}

TEST(AdamsMoulton, ShortInputsSafe) {
  EXPECT_EQ(integral_am4(0.1, {}), 0.0);
  EXPECT_EQ(integral_am4(0.1, {5.0}), 0.0);
  EXPECT_NEAR(integral_am4(0.5, {1.0, 1.0}), 0.5, 1e-15);
  EXPECT_THROW(cumulative_integral_am4(-1.0, {1.0, 2.0}), Error);
}

grid::Structure single_atom() {
  grid::Structure s;
  s.add_atom(1, {0, 0, 0});
  return s;
}

TEST(Hartree, GaussianPotentialMatchesErf) {
  // n(r) = (alpha/pi)^{3/2} exp(-alpha r^2), total charge 1,
  // v(r) = erf(sqrt(alpha) r) / r.
  const double alpha = 0.8;
  const double norm = std::pow(alpha / constants::pi, 1.5);
  const auto density = [&](const Vec3& p) { return norm * std::exp(-alpha * p.norm2()); };

  PoissonSpec spec;
  spec.l_max = 2;
  spec.radial_points = 140;
  spec.r_max = 14.0;
  const HartreeSolver solver(single_atom(), spec);
  const auto rho = solver.project(density);
  EXPECT_NEAR(solver.total_charge(rho), 1.0, 1e-6);

  const auto v = solver.solve(rho);
  for (double r : {0.2, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double exact = std::erf(std::sqrt(alpha) * r) / r;
    EXPECT_NEAR(solver.potential(v, {0, 0, r}), exact, 2e-4) << "r=" << r;
    // Spherical symmetry: same value along another direction.
    EXPECT_NEAR(solver.potential(v, {r / std::sqrt(2.0), r / std::sqrt(2.0), 0}),
                exact, 2e-4);
  }
}

TEST(Hartree, FarFieldIsMonopole) {
  const double alpha = 1.1;
  const double norm = 3.0 * std::pow(alpha / constants::pi, 1.5);  // charge 3
  const auto density = [&](const Vec3& p) { return norm * std::exp(-alpha * p.norm2()); };
  PoissonSpec spec;
  spec.l_max = 2;
  spec.radial_points = 120;
  spec.r_max = 10.0;
  const HartreeSolver solver(single_atom(), spec);
  const auto v = solver.solve_density(density);
  // Beyond r_max the moments take over: v ~ q / r.
  for (double r : {12.0, 20.0, 50.0}) {
    EXPECT_NEAR(solver.potential(v, {0, 0, r}), 3.0 / r, 3e-4 / r) << "r=" << r;
  }
}

TEST(Hartree, TwoCenterPotentialSuperposes) {
  // Two unit Gaussians on different atoms; potential must match the sum of
  // the two analytic single-center solutions.
  grid::Structure s;
  s.add_atom(1, {0, 0, -1.5});
  s.add_atom(1, {0, 0, 1.5});
  const double alpha = 1.0;
  const double norm = std::pow(alpha / constants::pi, 1.5);
  const auto density = [&](const Vec3& p) {
    const Vec3 a{0, 0, -1.5}, b{0, 0, 1.5};
    return norm * (std::exp(-alpha * (p - a).norm2()) +
                   std::exp(-alpha * (p - b).norm2()));
  };
  PoissonSpec spec;
  spec.l_max = 6;
  spec.radial_points = 140;
  spec.r_max = 14.0;
  const HartreeSolver solver(s, spec);
  const auto rho = solver.project(density);
  // The Becke cell boundary puts structure in the l=0 channel that the
  // radial trapezoid resolves to ~1e-4 at this mesh density.
  EXPECT_NEAR(solver.total_charge(rho), 2.0, 5e-4);
  const auto v = solver.solve(rho);

  auto exact = [&](const Vec3& p) {
    const double ra = (p - Vec3{0, 0, -1.5}).norm();
    const double rb = (p - Vec3{0, 0, 1.5}).norm();
    return std::erf(std::sqrt(alpha) * ra) / ra + std::erf(std::sqrt(alpha) * rb) / rb;
  };
  for (const Vec3 p : {Vec3{0, 0, 0}, Vec3{1.0, 0.5, 0.3}, Vec3{0, 0, 3.0},
                       Vec3{2.5, 0, -2.0}}) {
    EXPECT_NEAR(solver.potential(v, p), exact(p), 4e-3) << p;
  }
}

TEST(Hartree, DipoleDensityProducesDipolarPotential) {
  // n(r) = z * g(r) has a pure l=1 multipole; far field v ~ p cos(theta)/r^2.
  const double alpha = 1.0;
  const auto density = [&](const Vec3& p) {
    return p.z * std::exp(-alpha * p.norm2());
  };
  PoissonSpec spec;
  spec.l_max = 3;
  spec.radial_points = 120;
  spec.r_max = 12.0;
  const HartreeSolver solver(single_atom(), spec);
  const auto rho = solver.project(density);
  // Monopole of an odd density vanishes.
  EXPECT_NEAR(solver.total_charge(rho), 0.0, 1e-10);
  const auto v = solver.solve(rho);
  // Dipole moment p_z = \int z n dV = \int z^2 e^{-r^2} dV
  //   = (1/3) * 3/(2 alpha) * (pi/alpha)^{3/2} ... compute numerically below.
  const double pz = std::pow(constants::pi / alpha, 1.5) / (2.0 * alpha);
  for (double r : {14.0, 25.0}) {
    EXPECT_NEAR(solver.potential(v, {0, 0, r}), pz / (r * r), 2e-5) << r;
    // Perpendicular direction: cos(theta) = 0.
    EXPECT_NEAR(solver.potential(v, {r, 0, 0}), 0.0, 1e-8);
  }
}

TEST(Hartree, PartialRowProjectionsSumToTheReplicatedProjection) {
  // The distributed Rho producer's contract: disjoint (atom, radial shell)
  // row shares, summed elementwise, reproduce project() bit-for-bit. Every
  // row is computed by exactly one share with identical arithmetic and
  // loop order, unowned rows stay exactly 0.0, and x + 0 is exact in IEEE
  // addition -- so the summed projection carries no tolerance at all.
  grid::Structure s;
  s.add_atom(1, {0, 0, -1.1});
  s.add_atom(2, {0, 0, 1.1});
  PoissonSpec spec;
  spec.l_max = 4;
  spec.radial_points = 48;
  const HartreeSolver solver(s, spec);
  const BatchDensityFn density = [](const Vec3* pts, std::size_t n,
                                    double* out) {
    for (std::size_t i = 0; i < n; ++i)
      out[i] = std::exp(-pts[i].norm2()) +
               0.5 * pts[i].z *
                   std::exp(-0.7 * (pts[i] - Vec3{0, 0, 1.1}).norm2());
  };
  const auto whole = solver.project(density);
  const std::size_t nrows = solver.projection_row_count();
  ASSERT_EQ(nrows, 2u * 48u);

  // Four uneven shares, one of them empty -- the kind of split a rebalanced
  // world's speed weights produce.
  const std::size_t cut[] = {0, 7, 7, 61, nrows};
  auto sum = solver.project_rows(density, cut[0], cut[1]);
  for (int r = 1; r < 4; ++r) {
    const auto part = solver.project_rows(density, cut[r], cut[r + 1]);
    for (std::size_t a = 0; a < sum.samples.size(); ++a)
      for (std::size_t lm = 0; lm < sum.samples[a].size(); ++lm)
        for (std::size_t i = 0; i < sum.samples[a][lm].size(); ++i)
          sum.samples[a][lm][i] += part.samples[a][lm][i];
  }
  solver.finalize_splines(sum);

  for (std::size_t a = 0; a < whole.samples.size(); ++a)
    for (std::size_t lm = 0; lm < whole.samples[a].size(); ++lm)
      for (std::size_t i = 0; i < whole.samples[a][lm].size(); ++i)
        ASSERT_EQ(sum.samples[a][lm][i], whole.samples[a][lm][i])
            << "atom " << a << " lm " << lm << " sample " << i;

  // Bit-identical samples make bit-identical splines and potentials.
  const auto va = solver.solve(whole);
  const auto vb = solver.solve(sum);
  for (const Vec3 p :
       {Vec3{0, 0, 0.3}, Vec3{1.2, -0.4, 0.8}, Vec3{0, 0, 5.0}})
    EXPECT_EQ(solver.potential(va, p), solver.potential(vb, p)) << p;
}

TEST(Hartree, SplineBytesScaleWithLmax) {
  const auto density = [](const Vec3& p) { return std::exp(-p.norm2()); };
  std::size_t prev = 0;
  for (int lmax : {0, 2, 4}) {
    PoissonSpec spec;
    spec.l_max = lmax;
    spec.radial_points = 60;
    const HartreeSolver solver(single_atom(), spec);
    const auto rho = solver.project(density);
    EXPECT_GT(rho.spline_bytes(), prev);
    prev = rho.spline_bytes();
  }
}

TEST(Hartree, RejectsForeignDensity) {
  PoissonSpec spec;
  spec.radial_points = 40;
  const HartreeSolver s1(single_atom(), spec);
  grid::Structure two;
  two.add_atom(1, {0, 0, 0});
  two.add_atom(1, {0, 0, 2});
  const HartreeSolver s2(two, spec);
  const auto rho1 = s1.project([](const Vec3&) { return 0.0; });
  EXPECT_THROW(s2.solve(rho1), Error);
}

}  // namespace
