// Integration tests across the parallel substrate: the full distributed
// pipeline of the paper executed on the threaded simmpi runtime at small
// scale -- grid batches, locality-enhancing task mapping, per-rank partial
// grid integration, and packed (hierarchical) collectives -- validated
// bit-for-bit against the serial BatchIntegrator.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "basis/basis_set.hpp"
#include "comm/packed.hpp"
#include "core/structures.hpp"
#include "grid/batch.hpp"
#include "grid/molecular_grid.hpp"
#include "mapping/task_mapping.hpp"
#include "parallel/cluster.hpp"
#include "scf/integrator.hpp"
#include "scf/scf_solver.hpp"

namespace {

using namespace aeqp;

struct Problem {
  grid::Structure structure;
  std::shared_ptr<const basis::BasisSet> basis;
  std::shared_ptr<const grid::MolecularGrid> grid;
  std::vector<grid::Batch> batches;
};

Problem make_problem() {
  Problem p;
  p.structure = core::water();
  p.basis = std::make_shared<const basis::BasisSet>(p.structure,
                                                    basis::BasisTier::Minimal);
  grid::GridSpec spec;
  spec.radial_points = 30;
  spec.angular_degree = 9;
  p.grid = std::make_shared<const grid::MolecularGrid>(
      grid::MolecularGrid::build(p.structure, spec));
  p.batches = grid::make_batches(*p.grid, 128);
  return p;
}

/// Partial overlap matrix over one rank's batches.
linalg::Matrix partial_overlap(const Problem& p,
                               const std::vector<std::uint32_t>& batch_ids) {
  const std::size_t nb = p.basis->size();
  linalg::Matrix s(nb, nb);
  basis::PointEval ev;
  for (auto b : batch_ids) {
    for (auto pid : p.batches[b].points) {
      const grid::GridPoint& gp = p.grid->point(pid);
      p.basis->evaluate(gp.pos, false, ev);
      for (std::size_t i = 0; i < ev.indices.size(); ++i)
        for (std::size_t j = 0; j < ev.indices.size(); ++j)
          s(ev.indices[i], ev.indices[j]) +=
              gp.weight * ev.values[i] * ev.values[j];
    }
  }
  return s;
}

class DistributedOverlap
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, comm::ReduceMode>> {};

TEST_P(DistributedOverlap, MatchesSerialIntegrator) {
  const auto [ranks, per_node, mode] = GetParam();
  const Problem p = make_problem();
  ASSERT_GE(p.batches.size(), ranks);

  // Serial reference.
  const scf::BatchIntegrator serial(p.basis, p.grid);
  const linalg::Matrix reference = serial.overlap();

  // Distributed: locality mapping, per-rank partials, packed AllReduce of
  // the matrix rows (the same synthesis pattern as rho_multipole).
  const auto assignment = mapping::locality_enhancing_mapping(p.batches, ranks);
  const std::size_t nb = p.basis->size();

  std::vector<linalg::Matrix> results(ranks);
  parallel::Cluster cluster(ranks, per_node);
  cluster.run([&](parallel::Communicator& c) {
    linalg::Matrix partial =
        partial_overlap(p, assignment.batches_of_rank[c.rank()]);
    comm::PackedAllReducer packer(c, mode, /*max_bytes=*/3 * nb * sizeof(double));
    for (std::size_t row = 0; row < nb; ++row)
      packer.add(std::span<double>(partial.data() + row * nb, nb));
    packer.flush();
    results[c.rank()] = std::move(partial);
  });

  // Every rank holds the full synthesized matrix, equal to the reference.
  for (std::size_t r = 0; r < ranks; ++r) {
    ASSERT_EQ(results[r].rows(), nb);
    EXPECT_LT(results[r].max_abs_diff(reference), 1e-12) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, DistributedOverlap,
    ::testing::Values(
        std::tuple<std::size_t, std::size_t, comm::ReduceMode>{
            2, 2, comm::ReduceMode::Flat},
        std::tuple<std::size_t, std::size_t, comm::ReduceMode>{
            4, 2, comm::ReduceMode::Flat},
        std::tuple<std::size_t, std::size_t, comm::ReduceMode>{
            8, 4, comm::ReduceMode::Hierarchical},
        std::tuple<std::size_t, std::size_t, comm::ReduceMode>{
            6, 4, comm::ReduceMode::Hierarchical},
        std::tuple<std::size_t, std::size_t, comm::ReduceMode>{
            12, 3, comm::ReduceMode::Hierarchical}));

TEST(DistributedDensity, PartitionedDensityIntegratesToElectronCount) {
  // Distribute a converged density-matrix contraction across ranks: the sum
  // of per-rank integrals must equal the electron count.
  const Problem p = make_problem();
  scf::ScfOptions opt;
  opt.tier = basis::BasisTier::Minimal;
  opt.grid.radial_points = 30;
  opt.grid.angular_degree = 9;
  opt.poisson.radial_points = 72;
  const scf::ScfResult ground = scf::ScfSolver(p.structure, opt).run();
  ASSERT_TRUE(ground.converged);

  const std::size_t ranks = 4;
  const auto assignment = mapping::locality_enhancing_mapping(p.batches, ranks);

  parallel::Cluster cluster(ranks, 2);
  cluster.run([&](parallel::Communicator& c) {
    double local = 0.0;
    basis::PointEval ev;
    for (auto b : assignment.batches_of_rank[c.rank()]) {
      for (auto pid : p.batches[b].points) {
        const grid::GridPoint& gp = p.grid->point(pid);
        p.basis->evaluate(gp.pos, false, ev);
        double n = 0.0;
        for (std::size_t i = 0; i < ev.indices.size(); ++i)
          for (std::size_t j = 0; j < ev.indices.size(); ++j)
            n += ground.density_matrix(ev.indices[i], ev.indices[j]) *
                 ev.values[i] * ev.values[j];
        local += gp.weight * n;
      }
    }
    std::vector<double> total = {local};
    c.allreduce_sum(total);
    EXPECT_NEAR(total[0], 10.0, 2e-3);  // water: 10 electrons
  });
}

TEST(AllreduceMax, FindsGlobalMaximum) {
  parallel::Cluster cluster(6, 3);
  cluster.run([&](parallel::Communicator& c) {
    std::vector<double> v = {static_cast<double>(c.rank()),
                             -static_cast<double>(c.rank())};
    c.allreduce_max(v);
    EXPECT_DOUBLE_EQ(v[0], 5.0);
    EXPECT_DOUBLE_EQ(v[1], 0.0);
  });
}

TEST(AllreduceMax, WorksWithNegativeValuesOnly) {
  parallel::Cluster cluster(3, 3);
  cluster.run([&](parallel::Communicator& c) {
    std::vector<double> v = {-10.0 - static_cast<double>(c.rank())};
    c.allreduce_max(v);
    EXPECT_DOUBLE_EQ(v[0], -10.0);
  });
}

}  // namespace
