// Additional coverage tests: XYZ round trip, H-atom DFPT (fractional
// occupation path), Poisson quadrupole channel, machine-model
// monotonicity, packed-reducer row-shape flexibility, eigen solver with
// clustered eigenvalues.

#include <gtest/gtest.h>

#include <cmath>

#include "comm/packed.hpp"
#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/dfpt.hpp"
#include "core/structures.hpp"
#include "core/xyz.hpp"
#include "linalg/eigen.hpp"
#include "parallel/cluster.hpp"
#include "parallel/machine_model.hpp"
#include "poisson/multipole.hpp"
#include "scf/scf_solver.hpp"

namespace {

using namespace aeqp;

TEST(Xyz, RoundTripPreservesGeometry) {
  const auto mol = core::water();
  const std::string text = core::to_xyz(mol, "water test");
  const auto back = core::from_xyz(text);
  ASSERT_EQ(back.size(), mol.size());
  for (std::size_t i = 0; i < mol.size(); ++i) {
    EXPECT_EQ(back.atom(i).z, mol.atom(i).z);
    EXPECT_NEAR(distance(back.atom(i).pos, mol.atom(i).pos), 0.0, 1e-7);
  }
}

TEST(Xyz, HeaderContainsCountAndComment) {
  const std::string text = core::to_xyz(core::methane(), "CH4");
  EXPECT_EQ(text.substr(0, 2), "5\n");
  EXPECT_NE(text.find("CH4"), std::string::npos);
  EXPECT_NE(text.find("C "), std::string::npos);
}

TEST(Xyz, MalformedInputThrows) {
  EXPECT_THROW(core::from_xyz(""), Error);
  EXPECT_THROW(core::from_xyz("2\ncomment\nH 0 0 0\n"), Error);   // truncated
  EXPECT_THROW(core::from_xyz("1\nc\nXx 0 0 0\n"), Error);        // bad element
}

TEST(Xyz, ParsesGeneratedPolyethylene) {
  const auto chain = core::polyethylene_chain(3);
  const auto back = core::from_xyz(core::to_xyz(chain));
  EXPECT_EQ(back.size(), chain.size());
  EXPECT_NEAR(back.nuclear_repulsion(), chain.nuclear_repulsion(), 1e-5);
}

TEST(HydrogenAtom, DfptWithFractionalOccupationWorks) {
  // One electron -> f = 1 on the HOMO: exercises the fractional-occupation
  // path through both SCF and DFPT. LDA H-atom polarizability with a small
  // NAO basis lands near the exact 4.5 bohr^3.
  grid::Structure h;
  h.add_atom(1, {0, 0, 0});
  scf::ScfOptions opt;
  opt.tier = basis::BasisTier::Light;
  opt.grid.radial_points = 40;
  opt.grid.angular_degree = 9;
  opt.poisson.radial_points = 80;
  const auto ground = scf::ScfSolver(h, opt).run();
  ASSERT_TRUE(ground.converged);
  EXPECT_NEAR(linalg::trace_product(ground.density_matrix, ground.overlap), 1.0,
              1e-9);

  const core::DfptSolver dfpt(ground, {});
  const auto r = dfpt.solve_direction(2);
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.dipole_response.z, 1.0);
  EXPECT_LT(r.dipole_response.z, 12.0);
  // Spherical atom: isotropic response.
  const auto rx = dfpt.solve_direction(0);
  EXPECT_NEAR(rx.dipole_response.x, r.dipole_response.z,
              0.02 * r.dipole_response.z);
}

TEST(Poisson, QuadrupoleChannelFarField) {
  // n(r) = (3z^2 - r^2) g(r) is a pure l=2 density: far field ~ 1/r^3 along
  // z and the monopole/dipole moments vanish.
  grid::Structure s;
  s.add_atom(1, {0, 0, 0});
  poisson::PoissonSpec spec;
  spec.l_max = 4;
  spec.radial_points = 110;
  spec.r_max = 12.0;
  const poisson::HartreeSolver solver(s, spec);
  const auto density = [](const Vec3& p) {
    return (3.0 * p.z * p.z - p.norm2()) * std::exp(-p.norm2());
  };
  const auto rho = solver.project(density);
  EXPECT_NEAR(solver.total_charge(rho), 0.0, 1e-9);
  const auto v = solver.solve(rho);
  const double v20 = solver.potential(v, {0, 0, 20.0});
  const double v40 = solver.potential(v, {0, 0, 40.0});
  // 1/r^3 scaling: doubling r divides by ~8.
  EXPECT_NEAR(v20 / v40, 8.0, 0.1);
}

TEST(MachineModel, AllreduceMonotoneInBytesAndRanks) {
  const parallel::CommCostModel m(parallel::MachineModel::hpc2_amd());
  EXPECT_LT(m.allreduce_seconds(1024, 64), m.allreduce_seconds(4096, 64));
  EXPECT_LT(m.allreduce_seconds(1024, 64), m.allreduce_seconds(1024, 1024));
  EXPECT_LT(m.barrier_seconds(8), m.barrier_seconds(4096));
}

TEST(Packed, MixedRowSizesReduceCorrectly) {
  parallel::Cluster cluster(4, 2);
  cluster.run([&](parallel::Communicator& c) {
    std::vector<double> a(3, 1.0), b(17, 2.0), d(1, 3.0);
    comm::PackedAllReducer packer(c, comm::ReduceMode::Flat);
    packer.add(a);
    packer.add(b);
    packer.add(d);
    packer.flush();
    EXPECT_DOUBLE_EQ(a[2], 4.0);
    EXPECT_DOUBLE_EQ(b[16], 8.0);
    EXPECT_DOUBLE_EQ(d[0], 12.0);
    EXPECT_EQ(packer.collective_count(), 1u);
  });
}

TEST(Eigen, ClusteredEigenvaluesResolve) {
  // Nearly degenerate spectrum: eigenvectors still orthonormal, residuals
  // still small.
  const std::size_t n = 12;
  linalg::Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i) d(i, i) = 1.0 + 1e-9 * static_cast<double>(i);
  // Random orthogonal-ish rotation via symmetric perturbation.
  Rng rng(77);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) d(i, j) = d(j, i) = 1e-10 * rng.uniform();
  const auto sol = linalg::symmetric_eigen(d);
  const auto vtv = linalg::matmul_tn(sol.eigenvectors, sol.eigenvectors);
  EXPECT_LT(vtv.max_abs_diff(linalg::Matrix::identity(n)), 1e-10);
  for (double w : sol.eigenvalues) EXPECT_NEAR(w, 1.0, 1e-7);
}

TEST(Structures, PolyethyleneIsChainShaped) {
  const auto chain = core::polyethylene_chain(50);
  Vec3 lo, hi;
  chain.bounding_box(lo, hi);
  // Long in z, thin in x/y.
  EXPECT_GT(hi.z - lo.z, 10.0 * (hi.x - lo.x));
  EXPECT_GT(hi.z - lo.z, 10.0 * (hi.y - lo.y));
}

TEST(Structures, RbdClusterIsGlobular) {
  const auto c = core::rbd_like_cluster(800, 2);
  Vec3 lo, hi;
  c.bounding_box(lo, hi);
  const double dx = hi.x - lo.x, dy = hi.y - lo.y, dz = hi.z - lo.z;
  EXPECT_LT(std::max({dx, dy, dz}) / std::min({dx, dy, dz}), 1.3);
}

}  // namespace
