// Tests for Fermi-Dirac occupations (paper Eq. 3) and cube-file export.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "core/cube.hpp"
#include "core/structures.hpp"
#include "scf/occupations.hpp"
#include "scf/scf_solver.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::scf;

TEST(Fermi, SumsToElectronCount) {
  const linalg::Vector eigs = {-2.0, -1.0, -0.5, -0.45, 0.1, 0.7};
  for (int ne : {2, 5, 7, 10}) {
    for (double sigma : {0.001, 0.01, 0.1}) {
      const auto f = fermi_occupations(eigs, ne, sigma);
      double sum = 0.0;
      for (double v : f) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 2.0);
        sum += v;
      }
      EXPECT_NEAR(sum, static_cast<double>(ne), 1e-8)
          << "ne=" << ne << " sigma=" << sigma;
    }
  }
}

TEST(Fermi, ColdLimitIsAufbau) {
  const linalg::Vector eigs = {-2.0, -1.0, -0.5, 0.1, 0.7};
  const auto cold = fermi_occupations(eigs, 6, 1e-6);
  const auto aufbau = aufbau_occupations(eigs.size(), 6);
  for (std::size_t i = 0; i < eigs.size(); ++i)
    EXPECT_NEAR(cold[i], aufbau[i], 1e-9) << i;
}

TEST(Fermi, ZeroSigmaFallsBackToAufbau) {
  const linalg::Vector eigs = {-1.0, 0.0, 1.0};
  const auto f = fermi_occupations(eigs, 4, 0.0);
  EXPECT_DOUBLE_EQ(f[0], 2.0);
  EXPECT_DOUBLE_EQ(f[1], 2.0);
  EXPECT_DOUBLE_EQ(f[2], 0.0);
}

TEST(Fermi, DegenerateLevelsShareElectrons) {
  // Two degenerate frontier orbitals filled with 2 electrons: one each.
  const linalg::Vector eigs = {-2.0, -0.5, -0.5, 1.0};
  const auto f = fermi_occupations(eigs, 4, 0.01);
  EXPECT_NEAR(f[1], 1.0, 1e-6);
  EXPECT_NEAR(f[2], 1.0, 1e-6);
}

TEST(Fermi, LevelIsBetweenHomoAndLumoForGappedSystem) {
  const linalg::Vector eigs = {-1.0, -0.8, 0.5, 0.9};
  const double mu = fermi_level(eigs, 4, 0.01);
  EXPECT_GT(mu, -0.8);
  EXPECT_LT(mu, 0.5);
}

TEST(Fermi, Validation) {
  EXPECT_THROW(fermi_level({}, 2, 0.01), Error);
  EXPECT_THROW(fermi_level({1.0}, 4, 0.01), Error);  // over capacity
}

TEST(ScfSmearing, WaterEnergyNearAufbauResult) {
  scf::ScfOptions opt;
  opt.tier = basis::BasisTier::Minimal;
  opt.grid.radial_points = 30;
  opt.grid.angular_degree = 9;
  opt.poisson.radial_points = 64;
  auto smeared = opt;
  smeared.smearing_sigma = 0.005;  // small electronic temperature
  const auto cold = scf::ScfSolver(core::water(), opt).run();
  const auto warm = scf::ScfSolver(core::water(), smeared).run();
  ASSERT_TRUE(cold.converged);
  ASSERT_TRUE(warm.converged);
  // Gapped system, tiny sigma: essentially identical states.
  EXPECT_NEAR(cold.total_energy, warm.total_energy, 1e-4);
  EXPECT_EQ(warm.n_occupied, cold.n_occupied);
}

TEST(Cube, HeaderAndDataLayout) {
  const auto mol = core::water();
  core::CubeSpec spec;
  spec.points_per_axis = 4;
  const std::string cube =
      core::to_cube(mol, [](const Vec3&) { return 1.5; }, spec, "test field");
  std::istringstream is(cube);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "test field");
  std::getline(is, line);  // comment
  long natoms = 0;
  double ox = 0, oy = 0, oz = 0;
  is >> natoms >> ox >> oy >> oz;
  EXPECT_EQ(natoms, 3);
  // Origin includes the margin.
  Vec3 lo, hi;
  mol.bounding_box(lo, hi);
  EXPECT_NEAR(ox, lo.x - 4.0, 1e-4);
  // Count data values: 4^3 constants of 1.5.
  std::size_t count = 0;
  double v = 0;
  // Skip the 3 axis lines and 3 atom lines first.
  std::getline(is, line);
  for (int k = 0; k < 6; ++k) std::getline(is, line);
  while (is >> v) {
    EXPECT_NEAR(v, 1.5, 1e-9);
    ++count;
  }
  EXPECT_EQ(count, 64u);
}

TEST(Cube, FieldSampledAtCorrectPositions) {
  grid::Structure s;
  s.add_atom(1, {0, 0, 0});
  core::CubeSpec spec;
  spec.points_per_axis = 3;
  spec.margin = 1.0;
  // Field = x coordinate: first block (ix=0) must equal origin x = -1.
  const std::string cube =
      core::to_cube(s, [](const Vec3& p) { return p.x; }, spec);
  std::istringstream is(cube);
  std::string line;
  for (int k = 0; k < 7; ++k) std::getline(is, line);  // header + atom
  double v = 0;
  is >> v;
  EXPECT_NEAR(v, -1.0, 1e-4);
}

TEST(Cube, Validation) {
  const auto mol = core::water();
  core::CubeSpec bad;
  bad.points_per_axis = 1;
  EXPECT_THROW(core::to_cube(mol, [](const Vec3&) { return 0.0; }, bad), Error);
}

}  // namespace
