// Fault-tolerance tests: deterministic fault injection in the simmpi
// runtime, checkpoint/restart of SCF and CPSCF state, and the recovery
// driver. The acceptance bar: a bit-flipped collective payload is detected,
// rolled back, and the recovered run matches the fault-free reference
// polarizability to 1e-8; a killed rank surfaces as a structured error on
// every surviving rank instead of a deadlock.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/dfpt.hpp"
#include "core/parallel_dfpt.hpp"
#include "comm/packed.hpp"
#include "parallel/cluster.hpp"
#include "parallel/fault.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/health.hpp"
#include "resilience/recovery.hpp"
#include "scf/scf_solver.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::resilience;

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir;
}

linalg::Matrix test_matrix(std::size_t rows, std::size_t cols, double scale) {
  linalg::Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      m(i, j) = scale * (1.0 + std::sin(static_cast<double>(i * cols + j)));
  return m;
}

// ---------------------------------------------------------------------------
// Checkpoint store

TEST(Checkpoint, Crc32KnownValue) {
  const char* s = "123456789";
  const auto bytes = std::span<const unsigned char>(
      reinterpret_cast<const unsigned char*>(s), 9);
  EXPECT_EQ(crc32(bytes), 0xCBF43926u);  // IEEE 802.3 check value
}

TEST(Checkpoint, CpscfRoundTripIsBitIdentical) {
  CheckpointStore store(fresh_dir("ckpt_roundtrip"));
  CpscfCheckpoint in;
  in.direction = 2;
  in.iteration = 7;
  in.mixing = 0.35;
  in.last_delta = 3.25e-7;
  in.p1 = test_matrix(9, 9, 0.01);
  store.save("a", in);

  const CpscfCheckpoint out = store.load_cpscf("a");
  EXPECT_EQ(out.direction, in.direction);
  EXPECT_EQ(out.iteration, in.iteration);
  EXPECT_EQ(out.mixing, in.mixing);
  EXPECT_EQ(out.last_delta, in.last_delta);
  ASSERT_EQ(out.p1.rows(), in.p1.rows());
  ASSERT_EQ(out.p1.cols(), in.p1.cols());
  EXPECT_EQ(std::memcmp(out.p1.data(), in.p1.data(),
                        sizeof(double) * in.p1.rows() * in.p1.cols()),
            0);

  // Serialization is deterministic: saving the same state twice produces
  // byte-identical files.
  store.save("b", in);
  std::ifstream fa(store.path_of("a"), std::ios::binary);
  std::ifstream fb(store.path_of("b"), std::ios::binary);
  const std::vector<char> ba((std::istreambuf_iterator<char>(fa)),
                             std::istreambuf_iterator<char>());
  const std::vector<char> bb((std::istreambuf_iterator<char>(fb)),
                             std::istreambuf_iterator<char>());
  EXPECT_FALSE(ba.empty());
  EXPECT_EQ(ba, bb);
}

TEST(Checkpoint, ScfRoundTripRestoresDiisHistory) {
  CheckpointStore store(fresh_dir("ckpt_scf"));
  ScfCheckpoint in;
  in.iteration = 4;
  in.last_delta = 1.5e-4;
  in.density_matrix = test_matrix(6, 6, 1.0);
  in.diis_history.emplace_back(test_matrix(6, 6, 2.0), test_matrix(6, 6, 3.0));
  in.diis_history.emplace_back(test_matrix(6, 6, 4.0), test_matrix(6, 6, 5.0));
  store.save("scf", in);

  const ScfCheckpoint out = store.load_scf("scf");
  EXPECT_EQ(out.iteration, in.iteration);
  ASSERT_EQ(out.diis_history.size(), 2u);
  EXPECT_EQ(out.density_matrix.max_abs_diff(in.density_matrix), 0.0);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(out.diis_history[i].first.max_abs_diff(in.diis_history[i].first),
              0.0);
    EXPECT_EQ(out.diis_history[i].second.max_abs_diff(in.diis_history[i].second),
              0.0);
  }
}

TEST(Checkpoint, DetectsCorruptionAndMissingFiles) {
  CheckpointStore store(fresh_dir("ckpt_corrupt"));
  EXPECT_FALSE(store.try_load_cpscf("nope").has_value());
  EXPECT_THROW((void)store.load_cpscf("nope"), Error);

  CpscfCheckpoint in;
  in.iteration = 3;
  in.p1 = test_matrix(5, 5, 1.0);
  store.save("c", in);

  // Flip one payload byte on disk: the CRC must catch it, and try_load must
  // NOT silently skip a damaged checkpoint.
  {
    std::fstream f(store.path_of("c"),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(32);
    char byte = 0;
    f.seekg(32);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    f.seekp(32);
    f.write(&byte, 1);
  }
  try {
    (void)store.load_cpscf("c");
    FAIL() << "corrupt checkpoint loaded";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("corrupt"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)store.try_load_cpscf("c"), Error);
}

// ---------------------------------------------------------------------------
// Fault plans and injection in the simmpi runtime

TEST(FaultInjection, RandomPlansAreSeedDeterministic) {
  const auto a = parallel::FaultPlan::random(1234, 8, 4, 10, 50);
  const auto b = parallel::FaultPlan::random(1234, 8, 4, 10, 50);
  ASSERT_EQ(a.size(), 8u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(static_cast<int>(a.events()[i].kind),
              static_cast<int>(b.events()[i].kind));
    EXPECT_EQ(a.events()[i].rank, b.events()[i].rank);
    EXPECT_EQ(a.events()[i].collective, b.events()[i].collective);
    EXPECT_EQ(a.events()[i].element, b.events()[i].element);
    EXPECT_EQ(a.events()[i].bit, b.events()[i].bit);
    EXPECT_LT(a.events()[i].rank, 4u);
    EXPECT_GE(a.events()[i].collective, 10u);
    EXPECT_LT(a.events()[i].collective, 50u);
    EXPECT_GE(a.events()[i].bit, 48);
    EXPECT_LT(a.events()[i].bit, 64);
  }
}

TEST(FaultInjection, BitFlipCorruptsExactlyOneElementOnce) {
  parallel::FaultPlan plan;
  plan.add({parallel::FaultKind::BitFlip, /*rank=*/1, /*collective=*/0,
            /*element=*/2, /*bit=*/52});
  parallel::FaultInjector injector(std::move(plan));

  parallel::Cluster cluster(2, 2);
  cluster.set_fault_injector(&injector);
  std::vector<double> sums(2, 0.0);
  cluster.run([&](parallel::Communicator& comm) {
    std::vector<double> data(4, 1.0);
    comm.allreduce_sum(data);   // fault fires here on rank 1
    comm.allreduce_sum(data);   // one-shot: clean on replay
    sums[comm.rank()] = data[2];
  });
  // Element 2 was corrupted on rank 1 before the first reduce; both reduces
  // act on the corrupted contribution but no new fault fires.
  EXPECT_EQ(injector.stats().corruptions, 1u);
  EXPECT_EQ(injector.pending(), 0u);
  EXPECT_EQ(sums[0], sums[1]);           // still a valid collective
  EXPECT_NE(sums[0], 4.0);               // but not the fault-free value
}

TEST(FaultInjection, StallBelowDeadlineOnlyDelays) {
  parallel::FaultPlan plan;
  parallel::FaultEvent ev;
  ev.kind = parallel::FaultKind::Stall;
  ev.rank = 0;
  ev.collective = 0;
  ev.stall_ms = 50;
  plan.add(ev);
  parallel::FaultInjector injector(std::move(plan));

  parallel::Cluster cluster(2, 2);
  cluster.set_fault_injector(&injector);
  std::vector<double> got(2, 0.0);
  cluster.run([&](parallel::Communicator& comm) {
    std::vector<double> data{static_cast<double>(comm.rank() + 1)};
    comm.allreduce_sum(data);
    got[comm.rank()] = data[0];
  });
  EXPECT_EQ(got[0], 3.0);
  EXPECT_EQ(got[1], 3.0);
  EXPECT_EQ(injector.stats().stalls, 1u);
}

TEST(FaultInjection, StallPastDeadlineRaisesCollectiveTimeout) {
  parallel::FaultPlan plan;
  parallel::FaultEvent ev;
  ev.kind = parallel::FaultKind::Stall;
  ev.rank = 0;
  ev.collective = 0;
  ev.stall_ms = 5000;
  plan.add(ev);
  parallel::FaultInjector injector(std::move(plan));

  parallel::Cluster cluster(2, 2);
  cluster.set_fault_injector(&injector);
  cluster.set_collective_timeout(std::chrono::milliseconds(200));
  const auto outcomes = cluster.run_collect([](parallel::Communicator& comm) {
    comm.barrier();
  });
  // Nobody deadlocks: the waiter times out, the stalled rank is cancelled.
  ASSERT_EQ(outcomes.size(), 2u);
  int timeouts = 0;
  for (const auto& e : outcomes) {
    ASSERT_TRUE(e != nullptr);
    try {
      std::rethrow_exception(e);
    } catch (const parallel::CollectiveTimeout&) {
      ++timeouts;
    } catch (const Error&) {
    }
  }
  EXPECT_GE(timeouts, 1);
}

TEST(FaultInjection, KilledRankSurfacesOnEverySurvivor) {
  parallel::FaultPlan plan;
  parallel::FaultEvent ev;
  ev.kind = parallel::FaultKind::Kill;
  ev.rank = 2;
  ev.collective = 0;
  plan.add(ev);
  parallel::FaultInjector injector(std::move(plan));

  parallel::Cluster cluster(4, 2);
  cluster.set_fault_injector(&injector);
  const auto outcomes = cluster.run_collect([](parallel::Communicator& comm) {
    std::vector<double> data{1.0};
    comm.allreduce_sum(data);
    comm.barrier();
  });
  ASSERT_EQ(outcomes.size(), 4u);
  for (std::size_t r = 0; r < 4; ++r) {
    ASSERT_TRUE(outcomes[r] != nullptr) << "rank " << r << " saw no error";
    try {
      std::rethrow_exception(outcomes[r]);
    } catch (const parallel::RankFailure& e) {
      EXPECT_EQ(e.failed_rank(), 2u);
      EXPECT_NE(std::string(e.what()).find("killed"), std::string::npos);
    }
  }
  EXPECT_EQ(injector.stats().kills, 1u);
}

// ---------------------------------------------------------------------------
// Collective argument validation (satellite: mismatch diagnostics)

TEST(CollectiveValidation, AllreduceElementCountMismatchNamesBothRanks) {
  parallel::Cluster cluster(2, 2);
  try {
    cluster.run([](parallel::Communicator& comm) {
      std::vector<double> data(comm.rank() == 0 ? 1234 : 5678, 1.0);
      comm.allreduce_sum(data);
    });
    FAIL() << "mismatched allreduce did not throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("element count mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("1234"), std::string::npos) << what;
    EXPECT_NE(what.find("5678"), std::string::npos) << what;
  }
}

TEST(CollectiveValidation, BroadcastElementCountMismatchNamesBothRanks) {
  parallel::Cluster cluster(2, 2);
  try {
    cluster.run([](parallel::Communicator& comm) {
      std::vector<double> data(comm.rank() == 0 ? 1234 : 5678, 0.0);
      comm.broadcast(data, 0);
    });
    FAIL() << "mismatched broadcast did not throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("broadcast"), std::string::npos) << what;
    EXPECT_NE(what.find("1234"), std::string::npos) << what;
    EXPECT_NE(what.find("5678"), std::string::npos) << what;
  }
}

// Satellite: destroying a PackedAllReducer with queued rows is a
// programming error (collective-in-destructor deadlock hazard) -> abort.
TEST(CollectiveValidation, PackedReducerUnflushedDestructorAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        parallel::Cluster cluster(1, 1);
        cluster.run([](parallel::Communicator& comm) {
          std::vector<double> row(8, 1.0);
          comm::PackedAllReducer packer(comm, comm::ReduceMode::Flat);
          packer.add(row);
          // no flush() -> destructor must abort
        });
      },
      "pending_");
}

// ---------------------------------------------------------------------------
// Solver-level resilience on a real molecule

const scf::ScfResult& ground_h2() {
  static const scf::ScfResult res = [] {
    grid::Structure s;
    s.add_atom(1, {0, 0, -0.7});
    s.add_atom(1, {0, 0, 0.7});
    scf::ScfOptions opt;
    opt.tier = basis::BasisTier::Light;
    opt.grid.radial_points = 30;
    opt.grid.angular_degree = 9;
    opt.poisson.radial_points = 72;
    return scf::ScfSolver(s, opt).run();
  }();
  return res;
}

scf::ScfOptions h2_scf_options(scf::Mixer mixer) {
  scf::ScfOptions opt;
  opt.tier = basis::BasisTier::Light;
  opt.grid.radial_points = 30;
  opt.grid.angular_degree = 9;
  opt.poisson.radial_points = 72;
  opt.mixer = mixer;
  return opt;
}

grid::Structure h2_structure() {
  grid::Structure s;
  s.add_atom(1, {0, 0, -0.7});
  s.add_atom(1, {0, 0, 0.7});
  return s;
}

// Satellite: CPSCF non-convergence is a detailed, actionable error.
TEST(DfptResilience, NonConvergenceThrowsDetailedError) {
  const auto& ground = ground_h2();
  ASSERT_TRUE(ground.converged);
  core::DfptOptions dopt;
  dopt.max_iterations = 3;
  dopt.tolerance = 1e-14;  // unreachable in 3 iterations
  dopt.require_convergence = true;
  const core::DfptSolver solver(ground, dopt);
  try {
    (void)solver.solve_direction(2);
    FAIL() << "non-convergence did not throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("failed to converge"), std::string::npos) << what;
    EXPECT_NE(what.find("3 iterations"), std::string::npos) << what;
    EXPECT_NE(what.find("max|dP1|"), std::string::npos) << what;
    EXPECT_NE(what.find("mixing"), std::string::npos) << what;
  }
}

// A CPSCF warm start resumes the uninterrupted trajectory bit-for-bit.
TEST(DfptResilience, SerialWarmStartIsBitIdentical) {
  const auto& ground = ground_h2();
  core::DfptOptions dopt;
  dopt.tolerance = 1e-8;
  const core::DfptDirectionResult ref =
      core::DfptSolver(ground, dopt).solve_direction(2);
  ASSERT_TRUE(ref.converged);
  ASSERT_GT(ref.iterations, 4);

  // Simulate a crash after iteration 3, checkpointing through the observer.
  auto ws = std::make_shared<core::CpscfWarmStart>();
  core::DfptOptions interrupted = dopt;
  interrupted.observer = [&](const core::CpscfIterationState& s) {
    if (s.iteration == 3) {
      ws->iteration = s.iteration;
      ws->p1 = *s.p1;
      return core::CpscfAction::Abort;
    }
    return core::CpscfAction::Continue;
  };
  const auto cut = core::DfptSolver(ground, interrupted).solve_direction(2);
  EXPECT_TRUE(cut.aborted);
  EXPECT_FALSE(cut.converged);

  core::DfptOptions resumed = dopt;
  resumed.warm_start = ws;
  const auto res = core::DfptSolver(ground, resumed).solve_direction(2);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, ref.iterations);
  EXPECT_EQ(res.p1.max_abs_diff(ref.p1), 0.0);
  EXPECT_EQ(res.dipole_response.z, ref.dipole_response.z);
}

class ScfResume : public ::testing::TestWithParam<scf::Mixer> {};

// An SCF run interrupted mid-cycle resumes from its checkpoint and lands on
// the identical energy in the identical number of iterations.
TEST_P(ScfResume, CheckpointResumeIsBitIdentical) {
  const auto structure = h2_structure();
  const scf::ScfResult ref =
      scf::ScfSolver(structure, h2_scf_options(GetParam())).run();
  ASSERT_TRUE(ref.converged);
  ASSERT_GT(ref.iterations, 4);

  CheckpointStore store(fresh_dir(GetParam() == scf::Mixer::Diis
                                      ? "scf_resume_diis"
                                      : "scf_resume_linear"));
  // Crash after iteration 3, with checkpointing attached.
  scf::ScfOptions opt = h2_scf_options(GetParam());
  attach_scf_checkpointing(opt, store, "h2");
  const scf::ScfObserver save = opt.observer;
  opt.observer = [&](const scf::ScfIterationState& s) {
    save(s);
    return s.iteration >= 3 ? scf::ScfAction::Abort : scf::ScfAction::Continue;
  };
  const scf::ScfResult cut = scf::ScfSolver(structure, opt).run();
  ASSERT_FALSE(cut.converged);
  ASSERT_TRUE(store.exists("h2"));

  scf::ScfOptions resume = h2_scf_options(GetParam());
  ASSERT_TRUE(resume_scf_from_checkpoint(resume, store, "h2"));
  const scf::ScfResult res = scf::ScfSolver(structure, resume).run();
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, ref.iterations);
  EXPECT_DOUBLE_EQ(res.total_energy, ref.total_energy);
  EXPECT_EQ(res.density_matrix.max_abs_diff(ref.density_matrix), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Mixers, ScfResume,
                         ::testing::Values(scf::Mixer::Linear,
                                           scf::Mixer::Diis));

// The acceptance bar of the resilience work: a corrupted collective payload
// inside a distributed CPSCF run is detected (since the SDC defense landed,
// within the same iteration -- by an invariant guard or an ABFT check --
// rather than iterations later by the health check), rolled back to the
// last checkpoint, and the recovered polarizability matches the fault-free
// serial reference to 1e-8.
TEST(DfptResilience, RecoveredParallelRunMatchesFaultFreeReference) {
  const auto& ground = ground_h2();
  core::DfptOptions dopt;
  dopt.tolerance = 1e-8;
  const core::DfptDirectionResult ref =
      core::DfptSolver(ground, dopt).solve_direction(2);
  ASSERT_TRUE(ref.converged);

  parallel::FaultPlan plan;
  plan.add({parallel::FaultKind::NanPayload, /*rank=*/1, /*collective=*/4,
            /*element=*/2});
  parallel::FaultInjector injector(std::move(plan));

  core::ParallelDfptOptions popt;
  popt.dfpt = dopt;
  popt.ranks = 4;
  popt.ranks_per_node = 2;
  popt.reduce_mode = comm::ReduceMode::Flat;
  popt.batch_points = 96;
  popt.fault_injector = &injector;

  CheckpointStore store(fresh_dir("recover_parallel"));
  RecoveryOptions ropt;
  ropt.max_retries = 3;
  RecoveryDriver driver(store, ropt);
  const core::ParallelDfptResult rec =
      driver.solve_direction_parallel(ground, popt, 2);

  EXPECT_EQ(injector.pending(), 0u);  // the planned fault actually fired
  EXPECT_EQ(injector.stats().corruptions, 1u);
  EXPECT_TRUE(rec.direction.converged);
  EXPECT_GE(rec.stats.faults_detected, 1u);
  EXPECT_GE(rec.stats.restores, 1u);
  EXPECT_GE(rec.stats.retries, 1u);
  // Same-iteration detection: the rollback discards no completed iterations
  // (the pre-SDC health check paid >= 1 wasted iteration here).
  EXPECT_EQ(rec.stats.wasted_iterations, 0u);
  EXPECT_NEAR(rec.direction.dipole_response.z, ref.dipole_response.z, 1e-8);
  EXPECT_LT(rec.direction.p1.max_abs_diff(ref.p1), 1e-8);
}

// A killed rank inside the distributed solver propagates as a structured
// RankFailure to the caller (no deadlock, no std::terminate).
TEST(DfptResilience, KilledRankInParallelSolverRaisesRankFailure) {
  const auto& ground = ground_h2();
  parallel::FaultPlan plan;
  parallel::FaultEvent ev;
  ev.kind = parallel::FaultKind::Kill;
  ev.rank = 1;
  ev.collective = 2;
  plan.add(ev);
  parallel::FaultInjector injector(std::move(plan));

  core::ParallelDfptOptions popt;
  popt.dfpt.tolerance = 1e-8;
  popt.ranks = 4;
  popt.ranks_per_node = 2;
  popt.batch_points = 96;
  popt.fault_injector = &injector;
  try {
    (void)core::solve_direction_parallel(ground, popt, 2);
    FAIL() << "killed rank did not surface";
  } catch (const parallel::RankFailure& e) {
    EXPECT_EQ(e.failed_rank(), 1u);
    EXPECT_NE(std::string(e.what()).find("killed"), std::string::npos);
  }
}

// An exhausted retry budget is a detailed error, not a hang or a wrong
// answer.
TEST(DfptResilience, ExhaustedRetryBudgetThrows) {
  const auto& ground = ground_h2();
  parallel::FaultPlan plan;
  // Collective #3 of rank 0 is a packed H-phase reduce (a data payload --
  // the corruption poisons an input of the next Sternheimer matmul, where
  // the ABFT check flags it as uncorrectable, not the control path).
  plan.add({parallel::FaultKind::NanPayload, /*rank=*/0, /*collective=*/3,
            /*element=*/0});
  parallel::FaultInjector injector(std::move(plan));

  core::ParallelDfptOptions popt;
  popt.dfpt.tolerance = 1e-8;
  popt.ranks = 2;
  popt.ranks_per_node = 2;
  popt.reduce_mode = comm::ReduceMode::Flat;
  popt.batch_points = 96;
  popt.fault_injector = &injector;

  CheckpointStore store(fresh_dir("recover_budget"));
  RecoveryOptions ropt;
  ropt.max_retries = 0;  // no second chances
  RecoveryDriver driver(store, ropt);
  try {
    (void)driver.solve_direction_parallel(ground, popt, 2);
    FAIL() << "exhausted budget did not throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("retry budget exhausted"), std::string::npos) << what;
    // The last-failure cause rides along: detection moved from the health
    // check ("unhealthy") to the same-iteration ABFT check when the SDC
    // defense landed; accept either wording.
    EXPECT_TRUE(what.find("unhealthy") != std::string::npos ||
                what.find("ABFT") != std::string::npos)
        << what;
  }
}

}  // namespace
