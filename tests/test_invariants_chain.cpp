// Tests for polarizability invariants, a chain-molecule DFPT integration
// case (ethane anisotropy), mapping determinism, and per-optimization
// monotonicity of the performance model.

#include <gtest/gtest.h>

#include <cmath>

#include "core/dfpt.hpp"
#include "core/polarizability_invariants.hpp"
#include "core/structures.hpp"
#include "grid/batch.hpp"
#include "mapping/synthetic_points.hpp"
#include "mapping/task_mapping.hpp"
#include "parallel/machine_model.hpp"
#include "perfmodel/dfpt_perf_model.hpp"
#include "scf/scf_solver.hpp"
#include "simt/device.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::core;

TEST(Invariants, IsotropicTensor) {
  const Tensor3 iso = {2.0, 0, 0, 0, 2.0, 0, 0, 0, 2.0};
  EXPECT_DOUBLE_EQ(isotropic_mean(iso), 2.0);
  EXPECT_DOUBLE_EQ(anisotropy_squared(iso), 0.0);
  EXPECT_DOUBLE_EQ(raman_activity(iso), 45.0 * 4.0);
  EXPECT_DOUBLE_EQ(depolarization_ratio(iso), 0.0);
}

TEST(Invariants, PurelyAnisotropicTensor) {
  // Traceless diagonal tensor: a' = 0 -> rho = 0.75.
  const Tensor3 aniso = {1.0, 0, 0, 0, -1.0, 0, 0, 0, 0.0};
  EXPECT_DOUBLE_EQ(isotropic_mean(aniso), 0.0);
  EXPECT_DOUBLE_EQ(anisotropy_squared(aniso), 3.0);
  EXPECT_DOUBLE_EQ(depolarization_ratio(aniso), 0.75);
}

TEST(Invariants, RotationInvariance) {
  // gamma^2 must be unchanged by a 90-degree rotation (xx <-> yy swap with
  // off-diagonals permuted).
  const Tensor3 t = {3.0, 0.5, 0.2, 0.5, 1.0, 0.1, 0.2, 0.1, 2.0};
  const Tensor3 rot = {1.0, -0.5, 0.1, -0.5, 3.0, -0.2, 0.1, -0.2, 2.0};
  EXPECT_NEAR(anisotropy_squared(t), anisotropy_squared(rot), 1e-12);
  EXPECT_NEAR(isotropic_mean(t), isotropic_mean(rot), 1e-12);
}

TEST(ChainMolecule, EthanePolarizabilityAnisotropic) {
  // H(C2H4)1H = ethane-like chain along z: alpha_zz > alpha_xx.
  const auto chain = polyethylene_chain(1);
  scf::ScfOptions opt;
  opt.tier = basis::BasisTier::Minimal;
  opt.grid.radial_points = 32;
  opt.grid.angular_degree = 9;
  opt.poisson.radial_points = 64;
  opt.poisson.l_max = 4;
  opt.mixer = scf::Mixer::Diis;
  opt.max_iterations = 150;
  const auto ground = scf::ScfSolver(chain, opt).run();
  ASSERT_TRUE(ground.converged);

  const DfptSolver dfpt(ground, {});
  const auto rz = dfpt.solve_direction(2);
  const auto rx = dfpt.solve_direction(0);
  ASSERT_TRUE(rz.converged);
  ASSERT_TRUE(rx.converged);
  EXPECT_GT(rz.dipole_response.z, rx.dipole_response.x);
  EXPECT_GT(rx.dipole_response.x, 0.0);
}

TEST(Mapping, DeterministicAcrossRepeats) {
  const auto chain = polyethylene_chain(30);
  const auto cloud = mapping::synthetic_point_cloud(chain, 24);
  const auto batches = grid::make_batches(cloud.positions, cloud.parent_atom, 64);
  const auto a = mapping::locality_enhancing_mapping(batches, 8);
  const auto b = mapping::locality_enhancing_mapping(batches, 8);
  for (std::size_t r = 0; r < 8; ++r)
    EXPECT_EQ(a.batches_of_rank[r], b.batches_of_rank[r]);
}

TEST(PerfModel, EachOptimizationAloneHelps) {
  const perfmodel::DfptPerfModel model(parallel::MachineModel::hpc2_amd(),
                                       simt::DeviceModel::gcn_gpu(), true);
  const auto off = perfmodel::OptimizationFlags::all_off();
  const double t_off = model.predict(30002, 2048, off).total();
  auto check = [&](auto setter, const char* name) {
    auto flags = off;
    setter(flags);
    EXPECT_LT(model.predict(30002, 2048, flags).total(), t_off) << name;
  };
  check([](auto& f) { f.locality_mapping = true; }, "locality");
  check([](auto& f) { f.packed_comm = true; }, "packing");
  check([](auto& f) { f.kernel_fusion = true; }, "fusion");
  check([](auto& f) { f.indirect_elimination = true; }, "indirect");
  check([](auto& f) { f.loop_collapsing = true; }, "collapse");
  check([](auto& f) { f.accelerated_dm = true; }, "dm acceleration");
}

}  // namespace
