// Compile-level test: the umbrella header includes cleanly and exposes the
// advertised entry points.

#include "aeqp.hpp"

#include <gtest/gtest.h>

TEST(Umbrella, EndToEndSmoke) {
  // Touch one symbol from each layer to keep the header honest.
  const auto mol = aeqp::core::water();
  EXPECT_EQ(mol.size(), 3u);
  const auto basis =
      aeqp::basis::BasisSet(mol, aeqp::basis::BasisTier::Minimal);
  EXPECT_EQ(basis.size(), 7u);
  const auto model = aeqp::parallel::MachineModel::hpc2_amd();
  EXPECT_TRUE(model.has_shm);
  const auto dev = aeqp::simt::DeviceModel::sw39010();
  EXPECT_TRUE(dev.has_rma);
  EXPECT_GT(aeqp::xc::lda_evaluate(0.5).fxc, -10.0);
}
