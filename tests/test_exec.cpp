// Tests for src/exec: the work-stealing thread pool and its scheduling
// contract, plus the determinism guarantee of the parallel execution layer
// -- SCF + CPSCF results and SIMT KernelStats counters must be bit-for-bit
// identical for every thread count (the resilience layer's warm-start
// guarantee depends on it).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/dfpt.hpp"
#include "exec/thread_pool.hpp"
#include "grid/batch.hpp"
#include "grid/structure.hpp"
#include "kernels/batch_kernels.hpp"
#include "scf/scf_solver.hpp"
#include "simt/runtime.hpp"

namespace {

using namespace aeqp;

/// Restores the default global pool when a test that resizes it exits.
struct PoolGuard {
  ~PoolGuard() { exec::ThreadPool::set_global_threads(0); }
};

TEST(ThreadPool, EmptyRangeRunsNothing) {
  exec::ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  pool.parallel_for(7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, SingleItemRunsOnCaller) {
  exec::ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.parallel_for(3, 4, [&](std::size_t i) {
    EXPECT_EQ(i, 3u);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, MoreTasksThanThreadsCoversEveryIndexOnce) {
  exec::ThreadPool pool(4);
  constexpr std::size_t kN = 10007;
  std::vector<int> hits(kN, 0);
  pool.parallel_for(0, kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i], 1) << i;
}

TEST(ThreadPool, ChunkedRangesPartitionTheRange) {
  exec::ThreadPool pool(3);
  constexpr std::size_t kN = 1000;
  std::vector<int> hits(kN, 0);
  pool.parallel_for_ranges(0, kN, 16, [&](std::size_t b, std::size_t e) {
    ASSERT_LT(b, e);
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i], 1) << i;
}

TEST(ThreadPool, ExceptionFromWorkerPropagatesToCaller) {
  exec::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 1024,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, NestedParallelForFallsBackToSerial) {
  exec::ThreadPool pool(4);
  std::atomic<int> nested_parallel{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    EXPECT_TRUE(exec::ThreadPool::in_worker());
    const std::thread::id outer = std::this_thread::get_id();
    pool.parallel_for(0, 64, [&](std::size_t) {
      if (std::this_thread::get_id() != outer) ++nested_parallel;
    });
  });
  EXPECT_EQ(nested_parallel.load(), 0);
  EXPECT_FALSE(exec::ThreadPool::in_worker());
}

TEST(ThreadPool, SizeOneIsSerialFallback) {
  exec::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::set<std::thread::id> ids;
  pool.parallel_for(0, 100, [&](std::size_t) { ids.insert(std::this_thread::get_id()); });
  EXPECT_EQ(ids.size(), 1u);
  EXPECT_EQ(*ids.begin(), caller);
}

TEST(ThreadPool, GlobalPoolResizes) {
  const PoolGuard guard;
  exec::ThreadPool::set_global_threads(3);
  EXPECT_EQ(exec::ThreadPool::global().size(), 3u);
  exec::ThreadPool::set_global_threads(1);
  EXPECT_EQ(exec::ThreadPool::global().size(), 1u);
}

// ---------------------------------------------------------------------------
// Determinism: parallel == serial, bit for bit.

scf::ScfOptions tiny_options() {
  scf::ScfOptions opt;
  opt.tier = basis::BasisTier::Light;
  opt.grid.radial_points = 30;
  opt.grid.angular_degree = 7;
  opt.poisson.radial_points = 60;
  opt.poisson.l_max = 2;
  opt.max_iterations = 60;
  opt.density_tolerance = 1e-7;
  return opt;
}

grid::Structure h2() {
  grid::Structure s;
  s.add_atom(1, {0, 0, -0.7});
  s.add_atom(1, {0, 0, 0.7});
  return s;
}

struct ScfDfptRun {
  scf::ScfResult ground;
  core::DfptDirectionResult response;
};

ScfDfptRun run_scf_dfpt() {
  ScfDfptRun run;
  run.ground = scf::ScfSolver(h2(), tiny_options()).run();
  EXPECT_TRUE(run.ground.converged);
  core::DfptOptions dopt;
  dopt.tolerance = 1e-7;
  dopt.max_iterations = 12;
  dopt.require_convergence = false;
  run.response = core::DfptSolver(run.ground, dopt).solve_direction(2);
  return run;
}

TEST(Determinism, ScfAndCpscfAreBitIdenticalAcrossThreadCounts) {
  const PoolGuard guard;
  exec::ThreadPool::set_global_threads(1);
  const ScfDfptRun serial = run_scf_dfpt();
  exec::ThreadPool::set_global_threads(4);
  const ScfDfptRun parallel = run_scf_dfpt();

  EXPECT_EQ(serial.ground.total_energy, parallel.ground.total_energy);
  EXPECT_EQ(serial.ground.iterations, parallel.ground.iterations);
  EXPECT_EQ(serial.ground.density_matrix.max_abs_diff(
                parallel.ground.density_matrix),
            0.0);
  ASSERT_EQ(serial.ground.density_samples.size(),
            parallel.ground.density_samples.size());
  for (std::size_t i = 0; i < serial.ground.density_samples.size(); ++i)
    ASSERT_EQ(serial.ground.density_samples[i],
              parallel.ground.density_samples[i]);

  EXPECT_EQ(serial.response.iterations, parallel.response.iterations);
  EXPECT_EQ(serial.response.p1.max_abs_diff(parallel.response.p1), 0.0);
  EXPECT_EQ(serial.response.dipole_response.z, parallel.response.dipole_response.z);
}

void expect_stats_equal(const simt::KernelStats& a, const simt::KernelStats& b) {
  EXPECT_EQ(a.launches, b.launches);
  EXPECT_EQ(a.work_items, b.work_items);
  EXPECT_EQ(a.offchip_read_bytes, b.offchip_read_bytes);
  EXPECT_EQ(a.offchip_write_bytes, b.offchip_write_bytes);
  EXPECT_EQ(a.dependent_accesses, b.dependent_accesses);
  EXPECT_EQ(a.flops, b.flops);
  EXPECT_EQ(a.barriers, b.barriers);
  EXPECT_EQ(a.host_transfer_bytes, b.host_transfer_bytes);
  EXPECT_EQ(a.wavefront_steps, b.wavefront_steps);
}

TEST(Determinism, SimtKernelStatsAndResultsMatchSerialLaunch) {
  const PoolGuard guard;
  const auto structure = h2();
  const auto opt = tiny_options();
  exec::ThreadPool::set_global_threads(1);
  const scf::ScfResult ground = scf::ScfSolver(structure, opt).run();
  ASSERT_TRUE(ground.converged);

  const auto batches = grid::make_batches(*ground.grid, 64);
  const auto supports =
      kernels::build_batch_supports(*ground.basis, *ground.grid, batches);
  const std::size_t np = ground.grid->size();
  const std::size_t nb = ground.density_matrix.rows();
  const std::vector<double> v(np, 0.25);

  auto run_kernels = [&](std::size_t threads) {
    exec::ThreadPool::set_global_threads(threads);
    simt::SimtRuntime rt(simt::DeviceModel::sw39010());
    std::vector<double> n1(np, 0.0);
    kernels::sumup_kernel(rt, *ground.grid, supports, ground.density_matrix, n1);
    linalg::Matrix h(nb, nb);
    kernels::h_kernel(rt, *ground.grid, supports, v, h);
    return std::make_tuple(rt.stats(), std::move(n1), std::move(h));
  };

  const auto [stats1, n1_serial, h_serial] = run_kernels(1);
  const auto [stats4, n1_parallel, h_parallel] = run_kernels(4);

  expect_stats_equal(stats1, stats4);
  ASSERT_EQ(n1_serial.size(), n1_parallel.size());
  for (std::size_t i = 0; i < n1_serial.size(); ++i)
    ASSERT_EQ(n1_serial[i], n1_parallel[i]) << i;
  EXPECT_EQ(h_serial.max_abs_diff(h_parallel), 0.0);
}

}  // namespace
