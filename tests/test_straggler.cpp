// Straggler-defense tests: the adaptive per-class collective deadline
// estimator, the per-rank arrival-lag ledger and degraded-rank classifier,
// the Slowdown fault kind (persistent and intermittent), the weighted
// rebalance re-mapping, and the recovery ladder's rebalance-before-shrink
// rung end to end. The acceptance bar: with a persistent 8x Slowdown on one
// rank the governed run completes at FULL world size -- no shrink, the
// rebalance rung engaged -- and matches the fault-free serial reference to
// 1e-8; with adaptive deadlines on and no injection, a clean run sees zero
// spurious timeouts.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/dfpt.hpp"
#include "core/parallel_dfpt.hpp"
#include "comm/packed.hpp"
#include "grid/batch.hpp"
#include "mapping/task_mapping.hpp"
#include "parallel/cluster.hpp"
#include "parallel/fault.hpp"
#include "parallel/straggler.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/recovery.hpp"
#include "scf/scf_solver.hpp"

namespace {

using namespace aeqp;

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// DeadlineEstimator

TEST(DeadlineEstimator, LearnsPerClassAndClamps) {
  parallel::DeadlineEstimator::Options opt;
  opt.window = 16;
  opt.mad_k = 2.0;
  opt.min_samples = 4;
  opt.floor_ms = 1.0;
  opt.ceiling_ms = 50.0;
  opt.recompute_every = 4;
  parallel::DeadlineEstimator est(opt);
  const auto fallback = std::chrono::milliseconds(30000);

  // No samples at all: the fixed timeout stays in charge.
  EXPECT_EQ(est.deadline(parallel::CollectiveClass::AllreduceSum, fallback),
            fallback);

  // Uniform 10 ms samples: MAD is zero, so the deadline converges on the
  // median itself (above the floor, below the ceiling).
  for (int i = 0; i < 8; ++i)
    est.record(parallel::CollectiveClass::AllreduceSum, 10.0);
  EXPECT_EQ(est.deadline(parallel::CollectiveClass::AllreduceSum, fallback)
                .count(),
            10);
  EXPECT_EQ(est.sample_count(parallel::CollectiveClass::AllreduceSum), 8u);

  // A service deadline clamp below the estimate must still win.
  EXPECT_EQ(est.deadline(parallel::CollectiveClass::AllreduceSum,
                         std::chrono::milliseconds(5))
                .count(),
            5);

  // Ceiling: a pathological class never waits longer than ceiling_ms.
  for (int i = 0; i < 8; ++i)
    est.record(parallel::CollectiveClass::Barrier, 1000.0);
  EXPECT_EQ(est.deadline(parallel::CollectiveClass::Barrier, fallback).count(),
            50);

  // Floor: microsecond-scale collectives never get a hair-trigger deadline.
  for (int i = 0; i < 8; ++i)
    est.record(parallel::CollectiveClass::Broadcast, 0.001);
  EXPECT_EQ(est.deadline(parallel::CollectiveClass::Broadcast, fallback)
                .count(),
            1);

  est.reset();
  EXPECT_EQ(est.total_samples(), 0u);
  EXPECT_EQ(est.deadline(parallel::CollectiveClass::AllreduceSum, fallback),
            fallback);
}

TEST(DeadlineEstimator, UndersampledClassDefersToGlobalRing) {
  parallel::DeadlineEstimator::Options opt;
  opt.window = 16;
  opt.mad_k = 2.0;
  opt.min_samples = 4;
  opt.floor_ms = 1.0;
  opt.ceiling_ms = 10000.0;
  opt.recompute_every = 4;
  parallel::DeadlineEstimator est(opt);
  const auto fallback = std::chrono::milliseconds(30000);

  // Only barriers have run so far; the broadcast class is empty, so its
  // deadline comes from the all-classes ring instead of the raw fallback.
  for (int i = 0; i < 8; ++i)
    est.record(parallel::CollectiveClass::Barrier, 20.0);
  EXPECT_EQ(est.sample_count(parallel::CollectiveClass::Broadcast), 0u);
  EXPECT_EQ(est.deadline(parallel::CollectiveClass::Broadcast, fallback)
                .count(),
            20);
}

TEST(DeadlineEstimator, ValidatesOptions) {
  parallel::DeadlineEstimator::Options bad;
  bad.window = 2;
  EXPECT_THROW(parallel::DeadlineEstimator{bad}, Error);
  bad = {};
  bad.floor_ms = 10.0;
  bad.ceiling_ms = 5.0;
  EXPECT_THROW(parallel::DeadlineEstimator{bad}, Error);
}

// ---------------------------------------------------------------------------
// StragglerDetector

parallel::StragglerDetector::Options fast_detector_opts() {
  parallel::StragglerDetector::Options opt;
  opt.min_window_ms = 1.0;
  return opt;
}

TEST(StragglerDetector, DegradesAfterConsecutiveWindowsAndRecovers) {
  parallel::StragglerDetector det(4, fast_detector_opts());
  EXPECT_FALSE(det.any_degraded());

  // Rank 2 runs 4x slower than the pack. One window is not enough
  // (hysteresis), the second consecutive one is.
  for (std::size_t r = 0; r < 4; ++r)
    det.record_work(r, r == 2 ? 40.0 : 10.0);
  det.classify();
  EXPECT_FALSE(det.any_degraded());
  for (std::size_t r = 0; r < 4; ++r)
    det.record_work(r, r == 2 ? 40.0 : 10.0);
  EXPECT_TRUE(det.classify());
  EXPECT_TRUE(det.any_degraded());
  EXPECT_EQ(det.degraded_ranks(), (std::vector<std::size_t>{2}));

  // Measured speed weight: median / own window = 10 / 40.
  const auto w = det.speed_weights();
  ASSERT_EQ(w.size(), 4u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[2], 0.25);

  // Two clean windows recover the rank and restore its weight.
  for (int k = 0; k < 2; ++k) {
    for (std::size_t r = 0; r < 4; ++r) det.record_work(r, 10.0);
    det.classify();
  }
  EXPECT_FALSE(det.any_degraded());
  EXPECT_DOUBLE_EQ(det.speed_weights()[2], 1.0);

  const auto stats = det.stats();
  EXPECT_EQ(stats.degrade_events, 1u);
  EXPECT_EQ(stats.recover_events, 1u);
  EXPECT_EQ(stats.windows, 4u);
  EXPECT_EQ(stats.samples, 16u);
}

TEST(StragglerDetector, WeightFloorBoundsTheSlowestRank) {
  parallel::StragglerDetector det(4, fast_detector_opts());
  for (int k = 0; k < 2; ++k) {
    for (std::size_t r = 0; r < 4; ++r)
      det.record_work(r, r == 1 ? 1000.0 : 10.0);
    det.classify();
  }
  ASSERT_TRUE(det.any_degraded());
  // 10/1000 would be 0.01; the floor keeps the target share sane.
  EXPECT_DOUBLE_EQ(det.speed_weights()[1], 1.0 / 16.0);
}

TEST(StragglerDetector, NoiseFloorAndLonelyWindowsCarryNoSignal) {
  parallel::StragglerDetector det(4);  // default min_window_ms = 5
  // Median window under the noise floor: a 100x outlier means nothing when
  // the pack's work is microscopic.
  for (int k = 0; k < 3; ++k) {
    for (std::size_t r = 0; r < 4; ++r)
      det.record_work(r, r == 2 ? 100.0 : 0.5);
    EXPECT_FALSE(det.classify());
  }
  EXPECT_FALSE(det.any_degraded());

  // A window where only one rank moved has no peers to be slower than.
  parallel::StragglerDetector lonely(4, fast_detector_opts());
  for (int k = 0; k < 3; ++k) {
    lonely.record_work(0, 500.0);
    EXPECT_FALSE(lonely.classify());
  }
  EXPECT_FALSE(lonely.any_degraded());
}

TEST(StragglerDetector, MinRelativeGuardsZeroMadWindows) {
  // Three identical ranks make MAD zero; without the relative guard any
  // epsilon above the median would classify. 1.9x median stays healthy,
  // 2.5x degrades.
  parallel::StragglerDetector det(4, fast_detector_opts());
  for (int k = 0; k < 3; ++k) {
    for (std::size_t r = 0; r < 4; ++r)
      det.record_work(r, r == 3 ? 19.0 : 10.0);
    det.classify();
  }
  EXPECT_FALSE(det.any_degraded());
  for (int k = 0; k < 2; ++k) {
    for (std::size_t r = 0; r < 4; ++r)
      det.record_work(r, r == 3 ? 25.0 : 10.0);
    det.classify();
  }
  EXPECT_TRUE(det.any_degraded());
}

TEST(StragglerDetector, RetainDropsRanksAndClearsStaleVerdicts) {
  parallel::StragglerDetector det(4, fast_detector_opts());
  for (int k = 0; k < 2; ++k) {
    for (std::size_t r = 0; r < 4; ++r)
      det.record_work(r, r == 3 ? 50.0 : 10.0);
    det.classify();
  }
  ASSERT_EQ(det.degraded_ranks(), (std::vector<std::size_t>{3}));

  // The shrink rung retires original rank 3: its verdict must not outlive
  // it -- no stale degraded flag, no biased weight.
  det.retain({0, 1, 2});
  EXPECT_FALSE(det.any_degraded());
  EXPECT_TRUE(det.degraded_ranks().empty());
  EXPECT_DOUBLE_EQ(det.speed_weights()[3], 1.0);
  const auto rows = det.snapshot();
  EXPECT_FALSE(rows[3].active);
  EXPECT_TRUE(rows[0].active);

  // A retired rank's late samples are ignored by classification.
  for (int k = 0; k < 2; ++k) {
    for (std::size_t r = 0; r < 4; ++r)
      det.record_work(r, r == 3 ? 80.0 : 10.0);
    det.classify();
  }
  EXPECT_FALSE(det.any_degraded());

  EXPECT_THROW(det.retain({7}), Error);
  EXPECT_THROW(parallel::StragglerDetector(0), Error);
}

// ---------------------------------------------------------------------------
// Slowdown fault kind

TEST(SlowdownFault, AddValidatesFactorAndJitter) {
  parallel::FaultPlan plan;
  parallel::FaultEvent ev;
  ev.kind = parallel::FaultKind::Slowdown;
  ev.slow_factor = 0.5;  // a speed-UP is a plan bug
  EXPECT_THROW(plan.add(ev), Error);
  ev.slow_factor = 4.0;
  ev.slow_jitter = 1.0;  // jitter must stay in [0, 1)
  EXPECT_THROW(plan.add(ev), Error);
  ev.slow_jitter = 0.3;
  EXPECT_NO_THROW(plan.add(ev));
}

TEST(SlowdownFault, PersistentRefiresAndTransientHonoursRepeat) {
  const std::atomic<bool> not_cancelled{false};
  const auto run_seqs = [&](parallel::FaultInjector& injector,
                            std::size_t n_seqs) {
    for (std::size_t seq = 0; seq < n_seqs; ++seq)
      injector.on_collective(/*rank=*/0, /*original_rank=*/0, seq, "barrier",
                             {}, [&] { return not_cancelled.load(); },
                             /*work_ms=*/20.0);
  };

  // Persistent: once fired at its start collective, it fires at EVERY later
  // collective -- a degraded node stays degraded.
  parallel::FaultEvent ev;
  ev.kind = parallel::FaultKind::Slowdown;
  ev.rank = 0;
  ev.collective = 2;
  ev.slow_factor = 1.5;
  ev.transient = false;
  parallel::FaultInjector persistent(parallel::FaultPlan().add(ev));
  run_seqs(persistent, 6);
  EXPECT_EQ(persistent.stats().slowdowns, 4u);  // seqs 2, 3, 4, 5
  EXPECT_EQ(persistent.stats().total(), 4u);

  // Transient: `repeat` consecutive collectives, then done for good.
  ev.transient = true;
  ev.repeat = 2;
  parallel::FaultInjector transient(parallel::FaultPlan().add(ev));
  const Timer timer;
  run_seqs(transient, 6);
  EXPECT_EQ(transient.stats().slowdowns, 2u);  // seqs 2, 3 only
  EXPECT_EQ(transient.pending(), 0u);
  // Each firing sleeps (factor - 1) * work = 10 ms; two firings put a hard
  // floor under the elapsed time (scheduling noise only adds).
  EXPECT_GE(timer.seconds(), 0.015);
}

TEST(SlowdownFault, RandomPlanDrawsDistinctRanksDisjointFromKills) {
  const auto plan = parallel::FaultPlan::random(
      /*seed=*/42, /*n_events=*/2, /*n_ranks=*/6, /*first_collective=*/5,
      /*last_collective=*/50,
      {parallel::FaultKind::BitFlip}, /*permanent_kills=*/2, /*slowdowns=*/3,
      /*slow_factor=*/6.0);

  std::set<std::size_t> kill_ranks, slow_ranks;
  std::size_t corruptions = 0;
  for (const auto& ev : plan.events()) {
    if (ev.kind == parallel::FaultKind::Kill) {
      EXPECT_FALSE(ev.transient);
      kill_ranks.insert(ev.rank);
    } else if (ev.kind == parallel::FaultKind::Slowdown) {
      EXPECT_TRUE(ev.transient);
      EXPECT_DOUBLE_EQ(ev.slow_factor, 6.0);
      EXPECT_GT(ev.slow_jitter, 0.0);
      EXPECT_LT(ev.slow_jitter, 1.0);
      EXPECT_GE(ev.repeat, 2u);
      EXPECT_LE(ev.repeat, 6u);
      slow_ranks.insert(ev.rank);
    } else {
      ++corruptions;
    }
  }
  EXPECT_EQ(corruptions, 2u);
  EXPECT_EQ(kill_ranks.size(), 2u);  // distinct victims
  EXPECT_EQ(slow_ranks.size(), 3u);  // distinct victims
  for (const auto r : slow_ranks) {
    EXPECT_EQ(kill_ranks.count(r), 0u)
        << "slowdown landed on a killed rank " << r;
    EXPECT_LT(r, 6u);
  }

  // Seed-deterministic: the same draw reproduces bit-for-bit.
  const auto again = parallel::FaultPlan::random(
      42, 2, 6, 5, 50, {parallel::FaultKind::BitFlip}, 2, 3, 6.0);
  ASSERT_EQ(again.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan.events()[i].rank, again.events()[i].rank);
    EXPECT_EQ(plan.events()[i].collective, again.events()[i].collective);
    EXPECT_EQ(static_cast<int>(plan.events()[i].kind),
              static_cast<int>(again.events()[i].kind));
  }

  // The cap: slowdown victims come from the ranks the kills left over.
  const auto capped = parallel::FaultPlan::random(
      7, 0, 3, 0, 10, {parallel::FaultKind::BitFlip}, 2, 5, 4.0);
  std::size_t slow = 0;
  for (const auto& ev : capped.events())
    slow += ev.kind == parallel::FaultKind::Slowdown ? 1 : 0;
  EXPECT_EQ(slow, 1u);  // 3 ranks - 2 kill victims
}

// ---------------------------------------------------------------------------
// Weighted rebalance re-mapping

std::vector<grid::Batch> uniform_batches(std::size_t n, std::size_t points) {
  std::vector<grid::Batch> batches(n);
  for (std::size_t i = 0; i < n; ++i) {
    batches[i].points.resize(points);
    batches[i].centroid = {static_cast<double>(i % 7),
                           static_cast<double>(i % 3), 0.0};
    batches[i].atoms = {static_cast<std::uint32_t>(i % 4)};
  }
  return batches;
}

TEST(Rebalance, WeightedTargetsMoveLoadOffSlowRanks) {
  const auto batches = uniform_batches(24, 10);
  const auto before = mapping::least_loaded_mapping(batches, 4);
  const std::size_t slow_before = before.points_of_rank(3, batches);

  const auto out = mapping::rebalance_for_slow_ranks(
      before, batches, {1.0, 1.0, 1.0, 0.25});

  // No renumbering: the world shape is untouched, every batch owned once.
  ASSERT_EQ(out.assignment.rank_count(), 4u);
  std::set<std::uint32_t> owned;
  std::size_t total = 0;
  for (const auto& ids : out.assignment.batches_of_rank) {
    EXPECT_GE(ids.size(), 1u);  // nobody is starved out of the world
    for (const auto id : ids) owned.insert(id);
    total += ids.size();
  }
  EXPECT_EQ(total, 24u);
  EXPECT_EQ(owned.size(), 24u);

  // The slow rank sheds toward its weighted fair share (0.25 / 3.25 of the
  // points); the healthy ranks absorb the orphans.
  const std::size_t slow_after = out.assignment.points_of_rank(3, batches);
  EXPECT_LT(slow_after, slow_before);
  EXPECT_LE(slow_after, 240 / 4);
  EXPECT_GE(out.moved_batches, 1u);
  EXPECT_EQ(out.moved_points, out.moved_batches * 10);

  // Deterministic: every rank computing its own copy agrees bit-for-bit.
  const auto again = mapping::rebalance_for_slow_ranks(
      before, batches, {1.0, 1.0, 1.0, 0.25});
  EXPECT_EQ(again.assignment.batches_of_rank,
            out.assignment.batches_of_rank);
  EXPECT_EQ(again.moved_batches, out.moved_batches);
}

TEST(Rebalance, EqualWeightsOnBalancedMappingMoveNothing) {
  const auto batches = uniform_batches(24, 10);
  const auto before = mapping::least_loaded_mapping(batches, 4);
  const auto out = mapping::rebalance_for_slow_ranks(before, batches,
                                                     {1.0, 1.0, 1.0, 1.0});
  EXPECT_EQ(out.moved_batches, 0u);
  for (std::size_t r = 0; r < 4; ++r) {
    auto expect = before.batches_of_rank[r];
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(out.assignment.batches_of_rank[r], expect);
  }
}

TEST(Rebalance, ValidatesWeights) {
  const auto batches = uniform_batches(8, 10);
  const auto before = mapping::least_loaded_mapping(batches, 4);
  EXPECT_THROW((void)mapping::rebalance_for_slow_ranks(before, batches,
                                                       {1.0, 1.0}),
               Error);
  EXPECT_THROW((void)mapping::rebalance_for_slow_ranks(
                   before, batches, {1.0, 0.0, 1.0, 1.0}),
               Error);
  EXPECT_THROW((void)mapping::rebalance_for_slow_ranks(
                   before, batches, {1.0, -0.5, 1.0, 1.0}),
               Error);
}

// ---------------------------------------------------------------------------
// Adaptive deadlines on a live cluster

TEST(AdaptiveDeadlines, OffByDefaultAndEnvGateArmsConstructors) {
  parallel::Cluster plain(2, 2);
  EXPECT_FALSE(plain.adaptive_deadlines());
  EXPECT_EQ(plain.deadline_estimator(), nullptr);
  EXPECT_EQ(plain.effective_timeout(parallel::CollectiveClass::Barrier),
            plain.collective_timeout());

  parallel::set_adaptive_timeout(true);
  parallel::Cluster armed(2, 2);
  EXPECT_TRUE(armed.adaptive_deadlines());
  EXPECT_NE(armed.deadline_estimator(), nullptr);
  parallel::set_adaptive_timeout(false);
  parallel::Cluster disarmed(2, 2);
  EXPECT_FALSE(disarmed.adaptive_deadlines());
}

TEST(AdaptiveDeadlines, LearnedDeadlineCutsAStallShort) {
  parallel::Cluster cluster(2, 2);
  cluster.set_collective_timeout(std::chrono::milliseconds(30000));
  cluster.set_adaptive_deadlines(true, /*floor_ms=*/100.0);

  // Teach the estimator what a healthy barrier looks like (microseconds).
  cluster.run([](parallel::Communicator& comm) {
    for (int i = 0; i < 16; ++i) comm.barrier();
  });
  ASSERT_NE(cluster.deadline_estimator(), nullptr);
  EXPECT_GE(cluster.deadline_estimator()->sample_count(
                parallel::CollectiveClass::Barrier),
            16u);
  const auto learned =
      cluster.effective_timeout(parallel::CollectiveClass::Barrier);
  EXPECT_GE(learned.count(), 100);   // clamped up to the floor
  EXPECT_LT(learned.count(), 30000); // far below the fixed timeout

  // A 3 s stall on rank 1 blows the learned deadline long before it would
  // trouble the fixed 30 s timeout: rank 0 raises CollectiveTimeout in
  // ~100 ms instead of waiting the stall out.
  parallel::FaultEvent ev;
  ev.kind = parallel::FaultKind::Stall;
  ev.rank = 1;
  ev.collective = 0;
  ev.stall_ms = 3000;
  parallel::FaultInjector injector(parallel::FaultPlan().add(ev));
  cluster.set_fault_injector(&injector);

  const Timer timer;
  const auto outcomes = cluster.run_collect(
      [](parallel::Communicator& comm) { comm.barrier(); });
  EXPECT_LT(timer.seconds(), 2.5);  // did not sit out the full stall
  bool timed_out = false;
  for (const auto& e : outcomes) {
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const parallel::CollectiveTimeout&) {
      timed_out = true;
    } catch (const parallel::RankFailure&) {
      // Secondary failure after the timeout released the barrier.
    }
  }
  EXPECT_TRUE(timed_out);
}

TEST(AdaptiveDeadlines, ClusterFeedsAttachedDetectorAtCollectives) {
  parallel::StragglerDetector det(4, fast_detector_opts());
  parallel::Cluster cluster(4, 2);
  cluster.set_straggler_detector(&det);
  EXPECT_EQ(cluster.straggler_detector(), &det);

  cluster.run([](parallel::Communicator& comm) {
    for (int i = 0; i < 4; ++i) comm.barrier();
  });
  // Every rank's arrival recorded (first barrier has no previous leave).
  const auto rows = det.snapshot();
  for (const auto& row : rows) EXPECT_GE(row.samples, 3u) << row.original_rank;
}

// ---------------------------------------------------------------------------
// End-to-end: the rebalance rung beats the shrink rung for stragglers

const scf::ScfResult& straggler_ground() {
  static const scf::ScfResult res = [] {
    grid::Structure s;
    s.add_atom(1, {0, 0, -0.7});
    s.add_atom(1, {0, 0, 0.7});
    scf::ScfOptions opt;
    opt.tier = basis::BasisTier::Light;
    opt.grid.radial_points = 30;
    opt.grid.angular_degree = 9;
    opt.poisson.radial_points = 72;
    return scf::ScfSolver(s, opt).run();
  }();
  return res;
}

core::ParallelDfptOptions straggler_popt(parallel::FaultInjector* injector) {
  core::ParallelDfptOptions popt;
  popt.dfpt.tolerance = 1e-9;
  popt.ranks = 4;
  popt.ranks_per_node = 2;
  popt.reduce_mode = comm::ReduceMode::Flat;
  popt.batch_points = 96;
  popt.fault_injector = injector;
  popt.collective_timeout_ms = 30000;
  return popt;
}

// The tentpole acceptance: one rank runs persistently 8x slow. The governed
// run must NOT shrink -- the rebalance rung classifies the rank, re-targets
// its batch share by measured speed, and the run completes at full world
// size, matching the fault-free serial reference to 1e-8.
TEST(StragglerE2E, PersistentSlowdownRebalancesAtFullWorld) {
  const auto& ground = straggler_ground();
  ASSERT_TRUE(ground.converged);
  core::DfptOptions ref_opt;
  ref_opt.tolerance = 1e-9;
  const core::DfptDirectionResult ref =
      core::DfptSolver(ground, ref_opt).solve_direction(2);
  ASSERT_TRUE(ref.converged);

  parallel::FaultPlan plan;
  parallel::FaultEvent ev;
  ev.kind = parallel::FaultKind::Slowdown;
  ev.rank = 1;
  ev.collective = 10;
  ev.slow_factor = 8.0;
  ev.transient = false;  // stays slow until the ladder rebalances around it
  plan.add(ev);
  parallel::FaultInjector injector(std::move(plan));

  resilience::CheckpointStore store(fresh_dir("straggler_accept"));
  resilience::RecoveryOptions ropt;
  ropt.elastic = true;
  ropt.max_retries = 6;
  ropt.mixing_damping = 1.0;  // the fault is mechanical, not numerical
  resilience::RecoveryDriver driver(store, ropt);

  const core::ParallelDfptResult rec =
      driver.solve_direction_parallel(ground, straggler_popt(&injector), 2);

  EXPECT_TRUE(rec.direction.converged);
  EXPECT_GE(injector.stats().slowdowns, 10u);  // it really was slow
  EXPECT_EQ(rec.stats.shrinks, 0u);            // full world kept
  EXPECT_EQ(rec.stats.survivor_ranks, 4u);
  EXPECT_GE(rec.stats.rebalances, 1u);         // the rebalance rung fired
  EXPECT_GE(rec.stats.degraded_ranks, 1u);
  EXPECT_GE(rec.stats.rebalance_batches_moved, 1u);
  EXPECT_EQ(rec.stats.faults_detected, 0u);    // a slow rank is not a fault
  EXPECT_NEAR(rec.direction.dipole_response.z, ref.dipole_response.z, 1e-8);
  EXPECT_LT(rec.direction.p1.max_abs_diff(ref.p1), 1e-8);

  EXPECT_EQ(driver.last_stats().shrinks, 0u);
  EXPECT_GE(driver.last_stats().rebalances, 1u);
}

// Observe-only contract: attaching a detector takes no part in the
// numerics -- the result agrees with the detector-free run at the level of
// the solver's own run-to-run reduction jitter (~1e-15; thread arrival
// order perturbs the shared-buffer summation with or without a ledger),
// four orders tighter than the 1e-8 physics bar.
TEST(StragglerE2E, DetectorIsObserveOnly) {
  const auto& ground = straggler_ground();
  const auto plain =
      core::solve_direction_parallel(ground, straggler_popt(nullptr), 2);
  ASSERT_TRUE(plain.direction.converged);

  parallel::StragglerDetector det(4);
  auto popt = straggler_popt(nullptr);
  popt.straggler_detector = &det;
  const auto observed = core::solve_direction_parallel(ground, popt, 2);

  EXPECT_TRUE(observed.direction.converged);
  EXPECT_EQ(observed.direction.iterations, plain.direction.iterations);
  EXPECT_LT(observed.direction.p1.max_abs_diff(plain.direction.p1), 1e-12);
  EXPECT_NEAR(observed.direction.dipole_response.z,
              plain.direction.dipole_response.z, 1e-12);
  std::size_t fed = 0;
  for (const auto& row : det.snapshot()) fed += row.samples;
  EXPECT_GT(fed, 0u);                // the ledger really was fed
  EXPECT_FALSE(det.any_degraded());  // and nobody was slandered
}

// ---------------------------------------------------------------------------
// Chaos soak (also run by ctest as straggler_chaos_soak with --gtest_repeat)

// Adaptive deadlines armed, no injection: a clean governed run must see
// ZERO spurious timeouts -- no faults, no retries, no shrink.
TEST(StragglerChaosSoak, AdaptiveDeadlinesCleanRunHasZeroSpuriousTimeouts) {
  const auto& ground = straggler_ground();
  auto popt = straggler_popt(nullptr);
  popt.adaptive_deadlines = 1;  // arm (estimator default floor)

  resilience::CheckpointStore store(fresh_dir("straggler_adaptive_clean"));
  resilience::RecoveryOptions ropt;
  ropt.elastic = true;
  ropt.max_retries = 3;
  resilience::RecoveryDriver driver(store, ropt);

  const auto rec = driver.solve_direction_parallel(ground, popt, 2);
  EXPECT_TRUE(rec.direction.converged);
  EXPECT_EQ(rec.stats.faults_detected, 0u);
  EXPECT_EQ(rec.stats.retries, 0u);
  EXPECT_EQ(rec.stats.shrinks, 0u);
}

// Seeded mixes of slowdowns, permanent kills and payload corruption: every
// scenario either converges to the reference or fails with a structured
// error -- never a deadlock, never a crash.
TEST(StragglerChaosSoak, SlowdownKillMixConvergesOrFailsStructurally) {
  const auto& ground = straggler_ground();
  core::DfptOptions ref_opt;
  ref_opt.tolerance = 1e-9;
  const core::DfptDirectionResult ref =
      core::DfptSolver(ground, ref_opt).solve_direction(2);
  ASSERT_TRUE(ref.converged);

  int converged = 0;
  int structured = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto plan = parallel::FaultPlan::random(
        seed, /*n_events=*/1, /*n_ranks=*/4, /*first_collective=*/5,
        /*last_collective=*/120, {parallel::FaultKind::BitFlip},
        /*permanent_kills=*/seed % 2, /*slowdowns=*/1, /*slow_factor=*/4.0);
    parallel::FaultInjector injector(std::move(plan));

    resilience::CheckpointStore store(
        fresh_dir("straggler_soak_" + std::to_string(seed)));
    resilience::RecoveryOptions ropt;
    ropt.elastic = true;
    ropt.max_retries = 8;
    ropt.mixing_damping = 1.0;
    resilience::RecoveryDriver driver(store, ropt);

    try {
      const auto rec =
          driver.solve_direction_parallel(ground, straggler_popt(&injector), 2);
      if (rec.direction.converged) {
        ++converged;
        EXPECT_LT(rec.direction.p1.max_abs_diff(ref.p1), 1e-8)
            << "seed " << seed;
      }
    } catch (const Error&) {
      ++structured;
    }
  }
  EXPECT_EQ(converged + structured, 3);
  EXPECT_GE(converged, 2);
}

}  // namespace
