// Remaining edge-case coverage across modules.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "core/structures.hpp"
#include "grid/angular_grid.hpp"
#include "grid/batch.hpp"
#include "grid/molecular_grid.hpp"
#include "parallel/machine_model.hpp"
#include "perfmodel/dfpt_perf_model.hpp"
#include "poisson/multipole.hpp"
#include "scf/occupations.hpp"
#include "simt/device.hpp"
#include "simt/runtime.hpp"

namespace {

using namespace aeqp;

TEST(Simt, HostTransferFreeOnUnifiedMemoryDevices) {
  // SW39010 has no PCIe hop: host transfers cost nothing in the model.
  simt::KernelStats s;
  s.host_transfer_bytes = 1 << 26;
  EXPECT_DOUBLE_EQ(s.modeled_seconds(simt::DeviceModel::sw39010()), 0.0);
  EXPECT_GT(s.modeled_seconds(simt::DeviceModel::gcn_gpu()), 0.0);
}

TEST(Simt, StatsAccumulateAcrossLaunches) {
  simt::SimtRuntime rt(simt::DeviceModel::gcn_gpu());
  rt.launch(2, 4, [](simt::WorkGroup& wg) { wg.flops(10); });
  rt.launch(3, 4, [](simt::WorkGroup& wg) { wg.flops(5); });
  EXPECT_EQ(rt.stats().launches, 2u);
  EXPECT_EQ(rt.stats().work_items, 20u);
  EXPECT_EQ(rt.stats().flops, 35u);
  simt::KernelStats sum;
  sum += rt.stats();
  sum += rt.stats();
  EXPECT_EQ(sum.flops, 70u);
}

TEST(Log, LevelsFilter) {
  const auto prev = Log::level();
  Log::set_level(LogLevel::Error);
  EXPECT_EQ(Log::level(), LogLevel::Error);
  AEQP_LOG_DEBUG << "should be invisible";  // must not crash or print
  Log::set_level(prev);
}

TEST(Table, SciFormatting) {
  EXPECT_EQ(Table::sci(0.000123, 2).substr(0, 4), "1.23");
  EXPECT_NE(Table::sci(0.000123, 2).find("e-04"), std::string::npos);
}

TEST(AngularGrid, ProductRuleSizesScaleWithDegree) {
  EXPECT_LT(grid::AngularGrid::product(5).size(),
            grid::AngularGrid::product(15).size());
  // Degree metadata preserved.
  EXPECT_EQ(grid::AngularGrid::product(9).degree(), 9u);
}

TEST(MolecularGrid, WeightCutoffPrunesPoints) {
  grid::Structure s;
  s.add_atom(1, {0, 0, 0});
  grid::GridSpec keep;
  keep.radial_points = 24;
  keep.weight_cutoff = 0.0;
  grid::GridSpec prune = keep;
  prune.weight_cutoff = 1e-6;
  const auto g_keep = grid::MolecularGrid::build(s, keep);
  const auto g_prune = grid::MolecularGrid::build(s, prune);
  EXPECT_LT(g_prune.size(), g_keep.size());
  EXPECT_GT(g_prune.size(), g_keep.size() / 2);
}

TEST(Batches, SinglePointPerBatchExtreme) {
  std::vector<Vec3> pos = {{0, 0, 0}, {1, 0, 0}, {2, 0, 0}};
  std::vector<std::uint32_t> parent = {0, 1, 2};
  const auto batches = grid::make_batches(pos, parent, 1);
  EXPECT_EQ(batches.size(), 3u);
  for (const auto& b : batches) EXPECT_EQ(b.size(), 1u);
}

TEST(Poisson, LmaxBoundsEnforced) {
  grid::Structure s;
  s.add_atom(1, {0, 0, 0});
  poisson::PoissonSpec spec;
  spec.l_max = 12;
  EXPECT_THROW(poisson::HartreeSolver(s, spec), Error);
}

TEST(Fermi, SmearingEntropyBroadensOccupations) {
  const linalg::Vector eigs = {-1.0, -0.2, -0.1, 0.5};
  const auto cold = scf::fermi_occupations(eigs, 4, 0.001);
  const auto warm = scf::fermi_occupations(eigs, 4, 0.05);
  // Warmth moves charge from the HOMO into higher states.
  EXPECT_LT(warm[1], cold[1]);
  EXPECT_GT(warm[2], cold[2]);
}

TEST(PerfModel, TrivialSpeedupIsOne) {
  const perfmodel::DfptPerfModel model(parallel::MachineModel::hpc1_sunway(),
                                       simt::DeviceModel::sw39010(), true);
  const auto flags = perfmodel::OptimizationFlags::all_on();
  EXPECT_NEAR(model.strong_speedup(30002, 2048, 2048, flags), 1.0, 1e-12);
}

TEST(Structures, LigandDeterministicAndConnected) {
  const auto a = core::ligand_like(49, 3);
  const auto b = core::ligand_like(49, 3);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a.atom(i).pos.x, b.atom(i).pos.x);
  // Connectivity: every atom has a neighbor within bonding range.
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_FALSE(a.neighbors_of(i, 3.2).empty()) << i;
}

}  // namespace
