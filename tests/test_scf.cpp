// Tests for src/scf: grid matrix elements against closed forms, density
// synthesis, occupations, and full SCF on small molecules.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "basis/basis_set.hpp"
#include "common/error.hpp"
#include "grid/molecular_grid.hpp"
#include "grid/structure.hpp"
#include "linalg/eigen.hpp"
#include "scf/integrator.hpp"
#include "scf/scf_solver.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::scf;

std::shared_ptr<const grid::MolecularGrid> make_grid(const grid::Structure& s,
                                                     std::size_t radial = 50,
                                                     std::size_t degree = 11) {
  grid::GridSpec spec;
  spec.radial_points = radial;
  spec.angular_degree = degree;
  spec.r_max = 10.0;
  return std::make_shared<const grid::MolecularGrid>(
      grid::MolecularGrid::build(s, spec));
}

grid::Structure h_atom() {
  grid::Structure s;
  s.add_atom(1, {0, 0, 0});
  return s;
}

grid::Structure h2() {
  grid::Structure s;
  s.add_atom(1, {0, 0, -0.7});
  s.add_atom(1, {0, 0, 0.7});
  return s;
}

TEST(Integrator, OverlapIsIdentityForOrthonormalSet) {
  const auto s = h_atom();
  auto basis = std::make_shared<const basis::BasisSet>(s, basis::BasisTier::Light);
  const BatchIntegrator integ(basis, make_grid(s, 70, 13));
  const auto ov = integ.overlap();
  // Different (l,m) channels are exactly orthogonal; same-l different-shell
  // pairs overlap but diagonals are 1.
  // The diffuse 2s shell converges slowest on the light grid (~2e-3).
  for (std::size_t i = 0; i < ov.rows(); ++i)
    EXPECT_NEAR(ov(i, i), 1.0, 5e-3) << i;
  EXPECT_LT(ov.max_abs_diff(ov.transposed()), 1e-12);
}

TEST(Integrator, KineticEnergyOfHydrogen1s) {
  // <1s|T|1s> = zeta^2/2 = 0.5 for the (untruncated) zeta=1 STO; the
  // confined numeric orbital deviates at the 1e-3 level.
  const auto s = h_atom();
  auto basis = std::make_shared<const basis::BasisSet>(s, basis::BasisTier::Minimal,
                                                       10.0);
  const BatchIntegrator integ(basis, make_grid(s, 80, 9));
  const auto t = integ.kinetic();
  EXPECT_NEAR(t(0, 0), 0.5, 5e-3);
}

TEST(Integrator, NuclearAttractionOfHydrogen1s) {
  // <1s|-1/r|1s> = -zeta = -1.
  const auto s = h_atom();
  auto basis = std::make_shared<const basis::BasisSet>(s, basis::BasisTier::Minimal,
                                                       10.0);
  const BatchIntegrator integ(basis, make_grid(s, 80, 9));
  const auto v = integ.external_potential();
  EXPECT_NEAR(v(0, 0), -1.0, 5e-3);
}

TEST(Integrator, DipoleMatrixAntisymmetryUnderParity) {
  // For the symmetric H2, <1s_A|z|1s_A> = -<1s_B|z|1s_B>.
  const auto s = h2();
  auto basis = std::make_shared<const basis::BasisSet>(s, basis::BasisTier::Minimal);
  const BatchIntegrator integ(basis, make_grid(s));
  const auto d = integ.dipole_matrix(2);
  EXPECT_NEAR(d(0, 0), -d(1, 1), 1e-6);
  EXPECT_NEAR(d(0, 1), d(1, 0), 1e-10);
}

TEST(Integrator, DensityIntegratesToElectronCount) {
  const auto s = h2();
  auto basis = std::make_shared<const basis::BasisSet>(s, basis::BasisTier::Minimal);
  auto grid = make_grid(s);
  const BatchIntegrator integ(basis, grid);
  const auto ov = integ.overlap();
  // Occupy the bonding combination: P = 2 c c^T with c S-normalized.
  linalg::Matrix c(2, 1);
  const double norm = 1.0 / std::sqrt(2.0 * (1.0 + ov(0, 1)));
  c(0, 0) = norm;
  c(1, 0) = norm;
  const auto p = density_matrix_from_orbitals(c, {2.0});
  const auto n = integ.density(p);
  EXPECT_NEAR(integ.integrate(n), 2.0, 2e-4);
}

TEST(Integrator, PotentialMatrixOfConstantIsOverlap) {
  const auto s = h2();
  auto basis = std::make_shared<const basis::BasisSet>(s, basis::BasisTier::Minimal);
  auto grid = make_grid(s);
  const BatchIntegrator integ(basis, grid);
  std::vector<double> ones(grid->size(), 1.0);
  const auto v = integ.potential_matrix(ones);
  EXPECT_LT(v.max_abs_diff(integ.overlap()), 1e-12);
}

TEST(Integrator, SampleCountMismatchThrows) {
  const auto s = h_atom();
  auto basis = std::make_shared<const basis::BasisSet>(s, basis::BasisTier::Minimal);
  const BatchIntegrator integ(basis, make_grid(s, 30, 5));
  std::vector<double> bad(3, 0.0);
  EXPECT_THROW(integ.potential_matrix(bad), Error);
  EXPECT_THROW((void)integ.integrate(bad), Error);
}

TEST(Occupations, ClosedShellAndFractional) {
  const auto f10 = aufbau_occupations(7, 10);
  EXPECT_DOUBLE_EQ(f10[0], 2.0);
  EXPECT_DOUBLE_EQ(f10[4], 2.0);
  EXPECT_DOUBLE_EQ(f10[5], 0.0);
  const auto f1 = aufbau_occupations(3, 1);
  EXPECT_DOUBLE_EQ(f1[0], 1.0);
  EXPECT_DOUBLE_EQ(f1[1], 0.0);
  EXPECT_THROW(aufbau_occupations(2, 10), Error);
}

TEST(Scf, HydrogenAtomConverges) {
  ScfOptions opt;
  opt.tier = basis::BasisTier::Minimal;
  opt.grid.radial_points = 50;
  opt.grid.angular_degree = 9;
  opt.poisson.radial_points = 90;
  const ScfSolver solver(h_atom(), opt);
  const ScfResult res = solver.run();
  EXPECT_TRUE(res.converged);
  // Spin-restricted LDA H atom with a 1s basis: around -0.4 to -0.5 Ha.
  EXPECT_LT(res.total_energy, -0.35);
  EXPECT_GT(res.total_energy, -0.60);
  // One electron: Tr(P S) = 1.
  EXPECT_NEAR(linalg::trace_product(res.density_matrix, res.overlap), 1.0, 1e-10);
}

TEST(Scf, H2BindsRelativeToTwoAtoms) {
  ScfOptions opt;
  opt.tier = basis::BasisTier::Minimal;
  opt.grid.radial_points = 50;
  opt.grid.angular_degree = 9;
  opt.poisson.radial_points = 90;
  opt.poisson.l_max = 4;

  const ScfResult atom = ScfSolver(h_atom(), opt).run();
  const ScfResult mol = ScfSolver(h2(), opt).run();
  EXPECT_TRUE(atom.converged);
  EXPECT_TRUE(mol.converged);
  EXPECT_LT(mol.total_energy, 2.0 * atom.total_energy - 0.02);
  // Two electrons.
  EXPECT_NEAR(linalg::trace_product(mol.density_matrix, mol.overlap), 2.0, 1e-8);
  // Symmetric molecule: no dipole.
  EXPECT_NEAR(mol.dipole.z, 0.0, 1e-6);
  // HOMO below LUMO.
  EXPECT_LT(mol.homo, mol.lumo);
}

TEST(Scf, DensityStaysNonNegativeEnough) {
  ScfOptions opt;
  opt.tier = basis::BasisTier::Minimal;
  opt.grid.radial_points = 40;
  opt.poisson.radial_points = 80;
  const ScfResult res = ScfSolver(h2(), opt).run();
  for (double n : res.density_samples) EXPECT_GT(n, -1e-8);
}

TEST(Scf, EnergyComponentsDecomposeTotal) {
  ScfOptions opt;
  opt.tier = basis::BasisTier::Minimal;
  opt.grid.radial_points = 40;
  opt.grid.angular_degree = 9;
  opt.poisson.radial_points = 80;
  opt.density_tolerance = 1e-7;
  const ScfResult res = ScfSolver(h2(), opt).run();
  ASSERT_TRUE(res.converged);
  const auto& c = res.components;
  // Signs of the physical terms.
  EXPECT_GT(c.kinetic, 0.0);
  EXPECT_LT(c.external, 0.0);
  EXPECT_GT(c.hartree, 0.0);
  EXPECT_LT(c.xc, 0.0);
  EXPECT_GT(c.nuclear, 0.0);
  // The decomposition reproduces the band-sum total at convergence.
  EXPECT_NEAR(c.total(), res.total_energy, 5e-4);
  // Loose virial check for a bound molecule near equilibrium:
  // -V/T between 1.5 and 2.5 (exactly 2 at the exact functional/geometry).
  const double v = c.external + c.hartree + c.xc + c.nuclear;
  EXPECT_GT(-v / c.kinetic, 1.5);
  EXPECT_LT(-v / c.kinetic, 2.5);
}

TEST(Scf, ExternalFieldPolarizesH2) {
  ScfOptions opt;
  opt.tier = basis::BasisTier::Light;  // p functions allow polarization
  opt.grid.radial_points = 40;
  opt.grid.angular_degree = 9;
  opt.poisson.radial_points = 80;
  opt.max_iterations = 120;

  ScfOptions plus = opt;
  plus.external_field = {0, 0, 0.01};
  const ScfResult r0 = ScfSolver(h2(), opt).run();
  const ScfResult rp = ScfSolver(h2(), plus).run();
  ASSERT_TRUE(r0.converged);
  ASSERT_TRUE(rp.converged);
  // Perturbation -xi*z pulls electron density toward +z.
  EXPECT_GT(rp.dipole.z, r0.dipole.z + 1e-4);
}

}  // namespace
