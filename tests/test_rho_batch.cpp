// Tests for the ISSUE 7 Rho-phase batching stack: the raw real_ylm_all
// overload, SplineBundle::eval_all, ipow, BasisSet::evaluate_batch +
// contract_density, cutoff screening, HartreeSolver::potential_batch, and
// the tune/ persistence layer. The headline claims are all bit-for-bit:
// the batched kernels must reproduce the per-point call chain exactly, and
// screening at tau = 0 must change nothing.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "basis/basis_set.hpp"
#include "basis/spherical_harmonics.hpp"
#include "basis/spline.hpp"
#include "common/ipow.hpp"
#include "common/rng.hpp"
#include "core/dfpt.hpp"
#include "core/structures.hpp"
#include "exec/thread_pool.hpp"
#include "grid/molecular_grid.hpp"
#include "poisson/multipole.hpp"
#include "scf/scf_solver.hpp"
#include "tune/tune.hpp"

namespace {

using namespace aeqp;

TEST(RhoBatch, RawYlmMatchesVectorOverloadAndPerHarmonic) {
  Rng rng(1234);
  const int l_max = 8;
  std::vector<double> ref;
  std::vector<double> raw(basis::lm_count(l_max), -1.0);
  for (int trial = 0; trial < 50; ++trial) {
    Vec3 d{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    if (d.norm() < 1e-8) d = {0, 0, 1};
    const Vec3 u = d / d.norm();
    basis::real_ylm_all(l_max, u, ref);
    basis::real_ylm_all(l_max, u, raw.data());
    ASSERT_EQ(ref.size(), raw.size());
    for (int l = 0; l <= l_max; ++l)
      for (int m = -l; m <= l; ++m) {
        const std::size_t i = basis::lm_index(l, m);
        EXPECT_EQ(raw[i], ref[i]) << "l=" << l << " m=" << m;
        EXPECT_EQ(raw[i], basis::real_ylm(l, m, u)) << "l=" << l << " m=" << m;
      }
  }
}

TEST(RhoBatch, SplineBundleBitIdenticalToCubicSpline) {
  const std::size_t nk = 40;
  std::vector<double> x(nk);
  for (std::size_t i = 0; i < nk; ++i) x[i] = 0.05 * static_cast<double>(i * i);
  std::vector<basis::CubicSpline> splines;
  for (int c = 0; c < 5; ++c) {
    std::vector<double> y(nk);
    for (std::size_t i = 0; i < nk; ++i)
      y[i] = std::sin(0.7 * (c + 1) * x[i]) + 0.1 * c * x[i];
    splines.emplace_back(x, y);
  }
  const basis::SplineBundle bundle = basis::SplineBundle::pack(splines);
  ASSERT_EQ(bundle.channels(), splines.size());

  std::vector<double> out(splines.size());
  // Interior points, the knots themselves, and both extrapolation sides.
  std::vector<double> probes = {-1.0, -0.001, 0.0,    0.013, 1.7,
                                x.back(),     x.back() + 0.5, x.back() + 10.0};
  Rng rng(99);
  for (int t = 0; t < 200; ++t) probes.push_back(rng.uniform(-0.5, x.back() + 0.5));
  for (const double p : probes) {
    bundle.eval_all(p, out.data());
    for (std::size_t c = 0; c < splines.size(); ++c)
      EXPECT_EQ(out[c], splines[c].value(p)) << "x=" << p << " ch=" << c;
  }
}

TEST(RhoBatch, IpowIsAFixedMultiplyChain) {
  EXPECT_EQ(ipow(3.7, 0), 1.0);
  EXPECT_EQ(ipow(3.7, 1), 3.7);
  EXPECT_EQ(ipow(3.7, 3), 3.7 * 3.7 * 3.7);
  EXPECT_EQ(ipow(0.2, 5), 0.2 * 0.2 * 0.2 * 0.2 * 0.2);
  EXPECT_EQ(ipow(2.5, -2), 1.0 / (2.5 * 2.5));
  EXPECT_EQ(ipow(0.0, 3), 0.0);
  EXPECT_EQ(ipow(-2.0, 3), -8.0);
}

struct BasisFixture {
  std::shared_ptr<const basis::BasisSet> basis;
  std::vector<Vec3> pts;
};

BasisFixture water_points() {
  BasisFixture f;
  const grid::Structure s = core::water();
  f.basis = std::make_shared<const basis::BasisSet>(s, basis::BasisTier::Light);
  grid::GridSpec spec;
  spec.radial_points = 20;
  spec.angular_degree = 7;
  const auto grid = grid::MolecularGrid::build(s, spec);
  for (std::size_t i = 0; i < grid.size(); ++i) f.pts.push_back(grid.point(i).pos);
  // A few points far outside every cutoff: must yield empty rows.
  f.pts.push_back({50.0, 0.0, 0.0});
  f.pts.push_back({0.0, -80.0, 3.0});
  return f;
}

TEST(RhoBatch, EvaluateBatchMatchesPerPointEntryForEntry) {
  const BasisFixture f = water_points();
  basis::BatchEval batch;
  f.basis->evaluate_batch(f.pts.data(), f.pts.size(), {}, batch);
  ASSERT_EQ(batch.points(), f.pts.size());

  basis::PointEval point;
  for (std::size_t k = 0; k < f.pts.size(); ++k) {
    f.basis->evaluate(f.pts[k], false, point);
    const std::size_t b0 = batch.offsets[k], b1 = batch.offsets[k + 1];
    ASSERT_EQ(b1 - b0, point.indices.size()) << "point " << k;
    for (std::size_t e = 0; e < point.indices.size(); ++e) {
      EXPECT_EQ(batch.indices[b0 + e], point.indices[e]) << "point " << k;
      EXPECT_EQ(batch.values[b0 + e], point.values[e]) << "point " << k;
    }
  }
  // The two far points contribute nothing.
  const std::size_t n = f.pts.size();
  EXPECT_EQ(batch.offsets[n], batch.offsets[n - 2]);
}

TEST(RhoBatch, ScreeningAtTauZeroIsBitExact) {
  const BasisFixture f = water_points();
  const std::vector<double> radii = f.basis->screening_radii(0.0);
  ASSERT_EQ(radii.size(), f.basis->structure().size());

  basis::BatchEval off, on;
  f.basis->evaluate_batch(f.pts.data(), f.pts.size(), {}, off);
  f.basis->evaluate_batch(f.pts.data(), f.pts.size(), radii, on);
  EXPECT_EQ(on.offsets, off.offsets);
  EXPECT_EQ(on.indices, off.indices);
  EXPECT_EQ(on.values, off.values);
}

TEST(RhoBatch, ScreeningRadiiShrinkWithTau) {
  const BasisFixture f = water_points();
  const std::vector<double> r0 = f.basis->screening_radii(0.0);
  const std::vector<double> r1 = f.basis->screening_radii(1e-12);
  const std::vector<double> r2 = f.basis->screening_radii(1e-4);
  for (std::size_t a = 0; a < r0.size(); ++a) {
    EXPECT_GT(r2[a], 0.0);
    EXPECT_LE(r1[a], r0[a]);
    EXPECT_LE(r2[a], r1[a]);
  }
}

TEST(RhoBatch, ContractDensityMatchesDoubleLoop) {
  const BasisFixture f = water_points();
  const std::size_t nb = f.basis->size();
  Rng rng(7);
  linalg::Matrix p(nb, nb);
  for (std::size_t i = 0; i < nb; ++i)
    for (std::size_t j = 0; j <= i; ++j) p(i, j) = p(j, i) = rng.uniform(-1, 1);

  basis::BatchEval ev;
  f.basis->evaluate_batch(f.pts.data(), f.pts.size(), {}, ev);
  std::vector<double> n(f.pts.size());
  basis::contract_density(p, ev, n.data());

  basis::PointEval pe;
  for (std::size_t k = 0; k < f.pts.size(); ++k) {
    f.basis->evaluate(f.pts[k], false, pe);
    double ref = 0.0;
    for (std::size_t a = 0; a < pe.indices.size(); ++a) {
      const double va = pe.values[a];
      for (std::size_t b = 0; b < pe.indices.size(); ++b)
        ref += p(pe.indices[a], pe.indices[b]) * va * pe.values[b];
    }
    EXPECT_EQ(n[k], ref) << "point " << k;
  }
}

TEST(RhoBatch, PotentialBatchBitIdenticalToScalar) {
  const grid::Structure s = core::water();
  poisson::PoissonSpec spec;
  spec.l_max = 4;
  spec.radial_points = 60;
  const poisson::HartreeSolver hartree(s, spec);
  // A smooth two-center model density; no SCF needed for a kernel test.
  const auto v = hartree.solve_density(poisson::DensityFn([&s](const Vec3& p) {
    double n = 0.0;
    for (std::size_t a = 0; a < s.size(); ++a)
      n += std::exp(-1.3 * (p - s.atom(a).pos).norm2());
    return n;
  }));

  // Probe blocks straddling near-field, far-field, and mixed geometry.
  std::vector<Vec3> pts;
  Rng rng(42);
  for (int t = 0; t < 300; ++t)
    pts.push_back({rng.uniform(-15, 15), rng.uniform(-15, 15), rng.uniform(-15, 15)});
  for (int t = 0; t < 50; ++t)  // tight near-field cluster
    pts.push_back(s.atom(0).pos + Vec3{rng.uniform(-0.3, 0.3),
                                       rng.uniform(-0.3, 0.3),
                                       rng.uniform(-0.3, 0.3)});

  for (const std::size_t block : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
    std::vector<double> out(pts.size());
    for (std::size_t b = 0; b < pts.size(); b += block) {
      const std::size_t e = std::min(pts.size(), b + block);
      hartree.potential_batch(v, pts.data() + b, e - b, out.data() + b);
    }
    for (std::size_t k = 0; k < pts.size(); ++k)
      EXPECT_EQ(out[k], hartree.potential(v, pts[k])) << "block=" << block;
  }
}

scf::ScfResult h2_ground() {
  grid::Structure s;
  s.add_atom(1, {0, 0, -0.7});
  s.add_atom(1, {0, 0, 0.7});
  scf::ScfOptions opt;
  opt.tier = basis::BasisTier::Light;
  opt.grid.radial_points = 32;
  opt.grid.angular_degree = 9;
  opt.poisson.radial_points = 70;
  opt.poisson.l_max = 2;
  return scf::ScfSolver(s, opt).run();
}

TEST(RhoBatch, PolarizabilityInsensitiveToScreeningThreshold) {
  const scf::ScfResult ground = h2_ground();
  ASSERT_TRUE(ground.converged);

  core::DfptOptions base;
  base.tolerance = 1e-8;
  auto exact = base;
  exact.screening_threshold = 0.0;  // tau = 0: screening is a no-op

  const auto r_tau = core::DfptSolver(ground, base).solve_direction(2);
  const auto r_exact = core::DfptSolver(ground, exact).solve_direction(2);
  ASSERT_TRUE(r_tau.converged);
  ASSERT_TRUE(r_exact.converged);
  EXPECT_NEAR(r_tau.dipole_response.z, r_exact.dipole_response.z, 1e-10);
  EXPECT_NEAR(r_tau.dipole_response.x, r_exact.dipole_response.x, 1e-10);
}

TEST(RhoBatch, RhoPhaseDeterministicAcrossThreadCounts) {
  const scf::ScfResult ground = h2_ground();
  ASSERT_TRUE(ground.converged);
  core::DfptOptions opt;
  opt.tolerance = 1e-8;

  exec::ThreadPool::set_global_threads(1);
  const auto r1 = core::DfptSolver(ground, opt).solve_direction(2);
  exec::ThreadPool::set_global_threads(4);
  const auto r4 = core::DfptSolver(ground, opt).solve_direction(2);
  exec::ThreadPool::set_global_threads(0);
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r4.converged);
  EXPECT_EQ(r1.dipole_response.x, r4.dipole_response.x);
  EXPECT_EQ(r1.dipole_response.y, r4.dipole_response.y);
  EXPECT_EQ(r1.dipole_response.z, r4.dipole_response.z);
  EXPECT_EQ(r1.iterations, r4.iterations);
}

TEST(TunePersistence, JsonRoundTrip) {
  tune::TuneConfig c;
  c.rho_block_size = 96;
  c.grid_batch_points = 192;
  c.pack_window_bytes = 12345678;
  c.poisson_l_max = 6;
  c.machine = "test-host";
  tune::TuneConfig back;
  ASSERT_TRUE(tune::parse_json(tune::to_json(c), back));
  EXPECT_EQ(back.rho_block_size, c.rho_block_size);
  EXPECT_EQ(back.grid_batch_points, c.grid_batch_points);
  EXPECT_EQ(back.pack_window_bytes, c.pack_window_bytes);
  EXPECT_EQ(back.poisson_l_max, c.poisson_l_max);
  EXPECT_EQ(back.machine, c.machine);
}

TEST(TunePersistence, VersionMismatchLeavesDefaults) {
  tune::TuneConfig c;
  c.rho_block_size = 96;
  std::string text = tune::to_json(c);
  const auto pos = text.find("\"aeqp_tune_version\"");
  ASSERT_NE(pos, std::string::npos);
  const auto colon = text.find(':', pos);
  text.replace(colon + 1, text.find_first_of(",\n", colon) - colon - 1, " 999");
  tune::TuneConfig out;
  const std::size_t before = out.rho_block_size;
  EXPECT_FALSE(tune::parse_json(text, out));
  EXPECT_EQ(out.rho_block_size, before);  // untouched on rejection
  EXPECT_FALSE(tune::parse_json("not json at all", out));
}

TEST(TunePersistence, EnvFileLoadsIntoResolvers) {
  tune::TuneConfig c;
  c.rho_block_size = 208;
  c.grid_batch_points = 176;
  c.pack_window_bytes = 4 * 1024 * 1024;
  const std::string path = "aeqp_tune_test_env.json";
  ASSERT_TRUE(tune::save_file(path, c));

  ::setenv("AEQP_TUNE_FILE", path.c_str(), 1);
  tune::reset_config_for_testing();  // force a re-read of the env
  EXPECT_EQ(tune::rho_block_size(0), 208u);
  EXPECT_EQ(tune::grid_batch_points(0), 176u);
  EXPECT_EQ(tune::pack_window_bytes(0), 4u * 1024 * 1024);
  // Explicit requests always beat the tuned value.
  EXPECT_EQ(tune::rho_block_size(17), 17u);
  EXPECT_EQ(tune::grid_batch_points(33), 33u);

  ::unsetenv("AEQP_TUNE_FILE");
  tune::reset_config_for_testing();
  std::remove(path.c_str());
  const tune::TuneConfig defaults;
  EXPECT_EQ(tune::rho_block_size(0), defaults.rho_block_size);
}

TEST(TunePersistence, MissingFileFallsBackToDefaults) {
  ::setenv("AEQP_TUNE_FILE", "/nonexistent/aeqp_tune.json", 1);
  tune::reset_config_for_testing();
  const tune::TuneConfig defaults;
  EXPECT_EQ(tune::rho_block_size(0), defaults.rho_block_size);
  ::unsetenv("AEQP_TUNE_FILE");
  tune::reset_config_for_testing();
}

}  // namespace
