// Tests for src/core/dfpt.cpp: the DFPT/CPSCF cycle. The headline property
// test validates the DFPT polarizability against a finite-difference dipole
// derivative of field-perturbed SCF runs -- the strongest end-to-end
// correctness check in the repository (DESIGN.md item 5).

#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "core/dfpt.hpp"
#include "core/structures.hpp"
#include "common/error.hpp"
#include "scf/scf_solver.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::core;

scf::ScfOptions fast_options() {
  scf::ScfOptions opt;
  opt.tier = basis::BasisTier::Light;
  opt.grid.radial_points = 40;
  opt.grid.angular_degree = 9;
  opt.poisson.radial_points = 80;
  opt.poisson.l_max = 4;
  opt.max_iterations = 150;
  opt.density_tolerance = 1e-7;
  return opt;
}

grid::Structure h2() {
  grid::Structure s;
  s.add_atom(1, {0, 0, -0.7});
  s.add_atom(1, {0, 0, 0.7});
  return s;
}

TEST(Dfpt, RequiresConvergedGroundState) {
  scf::ScfResult fake;
  fake.converged = false;
  EXPECT_THROW(DfptSolver(fake, {}), Error);
}

TEST(Dfpt, H2ParallelPolarizabilityMatchesFiniteDifference) {
  const auto structure = h2();
  const auto opt = fast_options();
  const scf::ScfResult ground = scf::ScfSolver(structure, opt).run();
  ASSERT_TRUE(ground.converged);

  DfptOptions dopt;
  dopt.tolerance = 1e-8;
  const DfptSolver dfpt(ground, dopt);
  const DfptDirectionResult rz = dfpt.solve_direction(2);
  ASSERT_TRUE(rz.converged);
  const double alpha_zz = rz.dipole_response.z;

  // Finite difference: alpha_zz = d mu_z / d xi at xi = 0.
  const double xi = 2e-3;
  auto opt_p = opt;
  opt_p.external_field = {0, 0, +xi};
  auto opt_m = opt;
  opt_m.external_field = {0, 0, -xi};
  const scf::ScfResult rp = scf::ScfSolver(structure, opt_p).run();
  const scf::ScfResult rm = scf::ScfSolver(structure, opt_m).run();
  ASSERT_TRUE(rp.converged);
  ASSERT_TRUE(rm.converged);
  const double alpha_fd = (rp.dipole.z - rm.dipole.z) / (2.0 * xi);

  EXPECT_GT(alpha_zz, 0.0);
  EXPECT_NEAR(alpha_zz, alpha_fd, 0.02 * std::fabs(alpha_fd))
      << "DFPT=" << alpha_zz << " FD=" << alpha_fd;
}

TEST(Dfpt, H2PerpendicularDirectionAlsoMatchesFd) {
  const auto structure = h2();
  const auto opt = fast_options();
  const scf::ScfResult ground = scf::ScfSolver(structure, opt).run();
  ASSERT_TRUE(ground.converged);

  const DfptSolver dfpt(ground, {});
  const DfptDirectionResult rx = dfpt.solve_direction(0);
  ASSERT_TRUE(rx.converged);

  const double xi = 2e-3;
  auto opt_p = opt;
  opt_p.external_field = {+xi, 0, 0};
  auto opt_m = opt;
  opt_m.external_field = {-xi, 0, 0};
  const scf::ScfResult rp = scf::ScfSolver(structure, opt_p).run();
  const scf::ScfResult rm = scf::ScfSolver(structure, opt_m).run();
  const double alpha_fd = (rp.dipole.x - rm.dipole.x) / (2.0 * xi);

  EXPECT_NEAR(rx.dipole_response.x, alpha_fd, 0.03 * std::fabs(alpha_fd));
  // Perpendicular response is smaller than parallel for H2.
  const DfptDirectionResult rz = dfpt.solve_direction(2);
  EXPECT_LT(rx.dipole_response.x, rz.dipole_response.z);
}

TEST(Dfpt, TraceFormulaAgreesWithGridMoment) {
  // alpha via \int r n^(1) and via Tr(P^(1) D) are independent code paths
  // over the same converged response; they must agree to grid accuracy.
  const scf::ScfResult ground = scf::ScfSolver(h2(), fast_options()).run();
  ASSERT_TRUE(ground.converged);
  const DfptSolver dfpt(ground, {});
  const DfptDirectionResult r = dfpt.solve_direction(2);
  for (int axis = 0; axis < 3; ++axis)
    EXPECT_NEAR(r.dipole_response[axis], r.dipole_response_trace[axis], 1e-6)
        << "axis " << axis;
}

TEST(Dfpt, ResponseDensityIntegratesToZero) {
  // The perturbation conserves electron number: \int n^(1) = 0.
  const scf::ScfResult ground = scf::ScfSolver(h2(), fast_options()).run();
  ASSERT_TRUE(ground.converged);
  const DfptSolver dfpt(ground, {});
  const DfptDirectionResult r = dfpt.solve_direction(2);
  EXPECT_NEAR(ground.integrator->integrate(r.n1_samples), 0.0, 1e-6);
}

TEST(Dfpt, OffDiagonalSymmetryForSymmetricMolecule) {
  // For H2 along z, alpha_xz must vanish by symmetry.
  const scf::ScfResult ground = scf::ScfSolver(h2(), fast_options()).run();
  ASSERT_TRUE(ground.converged);
  const DfptSolver dfpt(ground, {});
  const DfptDirectionResult rz = dfpt.solve_direction(2);
  EXPECT_NEAR(rz.dipole_response.x, 0.0, 1e-5);
  EXPECT_NEAR(rz.dipole_response.y, 0.0, 1e-5);
}

TEST(Dfpt, PhaseTimersCoverAllPhases) {
  const scf::ScfResult ground = scf::ScfSolver(h2(), fast_options()).run();
  ASSERT_TRUE(ground.converged);
  const DfptSolver dfpt(ground, {});
  const DfptDirectionResult r = dfpt.solve_direction(2);
  EXPECT_EQ(r.phase_seconds.size(), 5u);
  double total = 0.0;
  for (const auto& [phase, sec] : r.phase_seconds) {
    EXPECT_GE(sec, 0.0);
    total += sec;
  }
  EXPECT_GT(total, 0.0);
}

TEST(Dfpt, PhaseNamesMatchPaperFigure) {
  EXPECT_EQ(phase_name(Phase::DM), "DM");
  EXPECT_EQ(phase_name(Phase::Sumup), "Sumup");
  EXPECT_EQ(phase_name(Phase::Rho), "Rho");
  EXPECT_EQ(phase_name(Phase::H), "H");
}

TEST(Structures, WaterGeometry) {
  const auto w = water();
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w.atom(0).z, 8);
  const double roh = distance(w.atom(0).pos, w.atom(1).pos);
  EXPECT_NEAR(roh, 0.9572 * constants::angstrom_to_bohr, 1e-10);
}

TEST(Structures, PolyethyleneCountsMatchPaper) {
  EXPECT_EQ(polyethylene_chain(1).size(), 8u);
  EXPECT_EQ(polyethylene_chain(5000).size(), 30002u);   // paper system
  EXPECT_EQ(polyethylene_chain(10000).size(), 60002u);  // paper system
}

TEST(Structures, PolyethyleneBondLengthsSane) {
  const auto p = polyethylene_chain(3);
  // No two atoms closer than ~0.9 bohr; C-C neighbors near 2.91 bohr.
  for (std::size_t i = 0; i < p.size(); ++i)
    for (std::size_t j = i + 1; j < p.size(); ++j)
      EXPECT_GT(distance(p.atom(i).pos, p.atom(j).pos), 0.9);
}

TEST(Structures, RbdClusterStatistics) {
  const auto c = rbd_like_cluster(3006, 11);
  EXPECT_EQ(c.size(), 3006u);
  // Composition roughly protein-like.
  std::size_t h = 0, heavy = 0;
  for (const auto& a : c.atoms()) (a.z == 1 ? h : heavy)++;
  EXPECT_GT(h, 1200u);
  EXPECT_LT(h, 1800u);
  // Minimum separation respected.
  const auto nb = c.neighbors_of(0, 1.89);
  EXPECT_TRUE(nb.empty());
}

TEST(Structures, RbdClusterDeterministicPerSeed) {
  const auto a = rbd_like_cluster(200, 5);
  const auto b = rbd_like_cluster(200, 5);
  const auto c = rbd_like_cluster(200, 6);
  EXPECT_DOUBLE_EQ(a.atom(17).pos.x, b.atom(17).pos.x);
  EXPECT_NE(a.atom(17).pos.x, c.atom(17).pos.x);
}

TEST(Structures, LigandLikeHas49Atoms) {
  const auto l = ligand_like();
  EXPECT_EQ(l.size(), 49u);
  bool has_heavy = false, has_h = false;
  for (const auto& a : l.atoms()) {
    if (a.z > 1) has_heavy = true;
    if (a.z == 1) has_h = true;
  }
  EXPECT_TRUE(has_heavy);
  EXPECT_TRUE(has_h);
}

}  // namespace
