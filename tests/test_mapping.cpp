// Tests for src/mapping: least-loaded vs locality-enhancing task mapping
// (paper Algorithm 1), Hamiltonian memory analysis, and spline counting.

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "core/structures.hpp"
#include "grid/batch.hpp"
#include "mapping/hamiltonian_analysis.hpp"
#include "mapping/synthetic_points.hpp"
#include "mapping/task_mapping.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::mapping;

std::vector<grid::Batch> chain_batches(std::size_t n_monomers,
                                       std::size_t points_per_atom = 24,
                                       std::size_t batch_size = 48) {
  const auto chain = core::polyethylene_chain(n_monomers);
  const auto cloud = synthetic_point_cloud(chain, points_per_atom);
  return grid::make_batches(cloud.positions, cloud.parent_atom, batch_size);
}

void expect_valid_partition(const Assignment& a,
                            const std::vector<grid::Batch>& batches) {
  std::vector<int> seen(batches.size(), 0);
  for (const auto& ids : a.batches_of_rank)
    for (auto b : ids) seen[b]++;
  for (std::size_t b = 0; b < batches.size(); ++b)
    EXPECT_EQ(seen[b], 1) << "batch " << b;
}

TEST(Mapping, BothStrategiesPartitionAllBatches) {
  const auto batches = chain_batches(20);
  for (std::size_t ranks : {1u, 3u, 8u, 16u}) {
    expect_valid_partition(least_loaded_mapping(batches, ranks), batches);
    expect_valid_partition(locality_enhancing_mapping(batches, ranks), batches);
  }
}

TEST(Mapping, EveryRankReceivesWork) {
  const auto batches = chain_batches(20);
  for (std::size_t ranks : {2u, 7u, 16u}) {
    const auto a = locality_enhancing_mapping(batches, ranks);
    for (std::size_t r = 0; r < ranks; ++r)
      EXPECT_GE(a.batches_of_rank[r].size(), 1u) << "rank " << r;
  }
}

TEST(Mapping, LeastLoadedBalancesPoints) {
  const auto batches = chain_batches(30);
  const auto a = least_loaded_mapping(batches, 8);
  EXPECT_LT(load_imbalance(a, batches), 1.10);
}

TEST(Mapping, LocalityMappingKeepsLoadReasonable) {
  const auto batches = chain_batches(30);
  const auto a = locality_enhancing_mapping(batches, 8);
  // Algorithm 1 splits on cumulative point counts, so imbalance stays low.
  EXPECT_LT(load_imbalance(a, batches), 1.25);
}

TEST(Mapping, LocalityReducesSpatialSpread) {
  // The headline property (Fig. 3): the locality mapping concentrates each
  // rank's batches spatially relative to the legacy strategy.
  const auto batches = chain_batches(40);
  const auto legacy = least_loaded_mapping(batches, 16);
  const auto local = locality_enhancing_mapping(batches, 16);
  EXPECT_LT(mean_rank_spread(local, batches),
            0.5 * mean_rank_spread(legacy, batches));
}

TEST(Mapping, LocalityReducesAtomsPerRank) {
  const auto batches = chain_batches(40);
  const auto legacy = least_loaded_mapping(batches, 16);
  const auto local = locality_enhancing_mapping(batches, 16);
  double atoms_legacy = 0, atoms_local = 0;
  for (std::size_t r = 0; r < 16; ++r) {
    atoms_legacy += static_cast<double>(legacy.atoms_of_rank(r, batches).size());
    atoms_local += static_cast<double>(local.atoms_of_rank(r, batches).size());
  }
  EXPECT_LT(atoms_local, 0.5 * atoms_legacy);
}

TEST(Mapping, RequiresEnoughBatches) {
  const auto batches = chain_batches(2, 8, 1000);  // few batches
  EXPECT_THROW(locality_enhancing_mapping(batches, batches.size() + 1), Error);
}

TEST(Mapping, SingleRankGetsEverything) {
  const auto batches = chain_batches(5);
  const auto a = locality_enhancing_mapping(batches, 1);
  EXPECT_EQ(a.batches_of_rank[0].size(), batches.size());
}

TEST(BasisCounts, MatchElementDefinitions) {
  const auto w = core::water();
  const auto counts = basis_function_counts(w, basis::BasisTier::Minimal);
  EXPECT_EQ(counts[0], 5u);  // O
  EXPECT_EQ(counts[1], 1u);  // H
  const auto light = basis_function_counts(w, basis::BasisTier::Light);
  EXPECT_EQ(light[0], 10u);
  EXPECT_EQ(light[1], 5u);
}

TEST(Sparsity, DenseForSmallMolecule) {
  // Everything within cutoff: fill fraction 1.
  const auto w = core::water();
  const auto counts = basis_function_counts(w, basis::BasisTier::Minimal);
  const auto stats = global_hamiltonian_sparsity(w, counts, 50.0);
  EXPECT_EQ(stats.n_basis, 7u);
  EXPECT_EQ(stats.nnz, 49u);
  EXPECT_DOUBLE_EQ(stats.fill_fraction(), 1.0);
}

TEST(Sparsity, SparseForLongChain) {
  const auto chain = core::polyethylene_chain(200);  // 1202 atoms
  const auto counts = basis_function_counts(chain, basis::BasisTier::Minimal);
  const auto stats = global_hamiltonian_sparsity(chain, counts, 14.0);
  EXPECT_LT(stats.fill_fraction(), 0.05);
  EXPECT_LT(stats.csr_bytes, stats.dense_bytes / 10);
}

TEST(Sparsity, NnzSymmetricAndIncludesDiagonal) {
  grid::Structure s;
  s.add_atom(1, {0, 0, 0});
  s.add_atom(1, {0, 0, 30.0});  // far beyond cutoff
  const auto stats = global_hamiltonian_sparsity(s, {1, 1}, 10.0);
  EXPECT_EQ(stats.nnz, 2u);  // only the two diagonal blocks
}

TEST(HamiltonianMemory, ProposedOrdersOfMagnitudeSmaller) {
  // The Fig. 9(a) claim: local dense blocks are orders of magnitude smaller
  // than the global sparse matrix each rank holds otherwise. Paper-scale
  // geometry: RBD-like cluster, 256 ranks.
  const auto cluster = core::rbd_like_cluster(3006, 3);
  const auto cloud = synthetic_point_cloud(cluster, 8);
  const auto batches = grid::make_batches(cloud.positions, cloud.parent_atom, 48);
  const auto assignment = locality_enhancing_mapping(batches, 256);
  const auto counts = basis_function_counts(cluster, basis::BasisTier::Light);
  const auto mem =
      hamiltonian_memory(cluster, counts, 14.0, 7.0, assignment, batches);

  EXPECT_GT(mem.existing_bytes_per_rank, 0u);
  EXPECT_LT(mem.proposed_mean(), mem.existing_bytes_per_rank / 10.0);
  EXPECT_LE(mem.proposed_min(), mem.proposed_max());
}

TEST(SplineCount, LocalityNeedsFewerSplines) {
  const auto batches = chain_batches(40);
  const auto legacy = least_loaded_mapping(batches, 16);
  const auto local = locality_enhancing_mapping(batches, 16);
  const auto s_legacy = splines_per_rank(legacy, batches, 4);
  const auto s_local = splines_per_rank(local, batches, 4);
  double total_legacy = 0, total_local = 0;
  for (auto v : s_legacy) total_legacy += static_cast<double>(v);
  for (auto v : s_local) total_local += static_cast<double>(v);
  EXPECT_LT(total_local, 0.5 * total_legacy);
  // nlm scaling: l_max 4 -> 25 splines per atom.
  EXPECT_EQ(s_local[0] % 25, 0u);
}

}  // namespace
