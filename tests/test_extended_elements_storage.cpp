// Tests for the second-row elements (P, S) and the legacy global-sparse
// storage mode of the distributed DFPT driver.

#include <gtest/gtest.h>

#include "basis/basis_set.hpp"
#include "basis/element.hpp"
#include "common/constants.hpp"
#include "core/parallel_dfpt.hpp"
#include "core/structures.hpp"
#include "core/vibrations.hpp"
#include "core/xyz.hpp"
#include "grid/molecular_grid.hpp"
#include "scf/integrator.hpp"
#include "scf/scf_solver.hpp"

namespace {

using namespace aeqp;

TEST(SecondRow, SulfurAndPhosphorusDefinitions) {
  const auto s = basis::ElementBasis::standard(16, basis::BasisTier::Minimal);
  EXPECT_EQ(s.function_count(), 9u);  // 1s 2s 2p 3s 3p
  double occ = 0.0;
  for (const auto& sh : s.shells) occ += sh.occupation;
  EXPECT_DOUBLE_EQ(occ, 16.0);

  const auto p = basis::ElementBasis::standard(15, basis::BasisTier::Light);
  EXPECT_EQ(p.function_count(), 14u);  // + 3d
  occ = 0.0;
  for (const auto& sh : p.shells) occ += sh.occupation;
  EXPECT_DOUBLE_EQ(occ, 15.0);
}

TEST(SecondRow, SymbolsAndMasses) {
  EXPECT_EQ(grid::element_symbol(16), "S");
  EXPECT_EQ(grid::element_symbol(15), "P");
  EXPECT_NEAR(core::atomic_mass(16), 32.06, 0.01);
  const auto back = core::from_xyz("1\nsulfur\nS 0 0 0\n");
  EXPECT_EQ(back.atom(0).z, 16);
}

TEST(SecondRow, H2SScfConverges) {
  // H2S: a genuine second-row all-electron SCF (18 electrons).
  grid::Structure h2s;
  const double r = 1.336 * constants::angstrom_to_bohr;
  h2s.add_atom(16, {0, 0, 0});
  h2s.add_atom(1, {0, r * 0.8, r * 0.6});
  h2s.add_atom(1, {0, -r * 0.8, r * 0.6});

  scf::ScfOptions opt;
  opt.tier = basis::BasisTier::Minimal;
  opt.grid.radial_points = 44;   // deeper core needs a denser mesh
  opt.grid.angular_degree = 9;
  opt.poisson.radial_points = 88;
  opt.mixer = scf::Mixer::Diis;
  opt.max_iterations = 120;
  const auto res = scf::ScfSolver(h2s, opt).run();
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(linalg::trace_product(res.density_matrix, res.overlap), 18.0, 1e-8);
  // All-electron S: total energy in the -390s (LDA, compact basis).
  EXPECT_LT(res.total_energy, -350.0);
  EXPECT_GT(res.total_energy, -450.0);
}

TEST(SparseStorage, GlobalCsrModeMatchesDense) {
  grid::Structure h2;
  h2.add_atom(1, {0, 0, -0.7});
  h2.add_atom(1, {0, 0, 0.7});
  scf::ScfOptions opt;
  opt.tier = basis::BasisTier::Light;
  opt.grid.radial_points = 30;
  opt.grid.angular_degree = 9;
  opt.poisson.radial_points = 72;
  opt.mixer = scf::Mixer::Diis;
  opt.max_iterations = 150;
  const auto ground = scf::ScfSolver(h2, opt).run();
  ASSERT_TRUE(ground.converged);

  core::ParallelDfptOptions dense;
  dense.ranks = 2;
  dense.batch_points = 96;
  auto sparse = dense;
  sparse.storage = core::HamiltonianStorage::GlobalSparseCsr;

  const auto rd = core::solve_direction_parallel(ground, dense, 2);
  const auto rs = core::solve_direction_parallel(ground, sparse, 2);
  ASSERT_TRUE(rd.direction.converged);
  ASSERT_TRUE(rs.direction.converged);
  EXPECT_NEAR(rd.direction.dipole_response.z, rs.direction.dipole_response.z,
              1e-10);
  EXPECT_LT(rd.direction.p1.max_abs_diff(rs.direction.p1), 1e-12);
}

}  // namespace
