// Tests for src/basis: cubic splines, real spherical harmonics, numeric
// radial functions, and the molecular basis set.

#include <gtest/gtest.h>

#include <cmath>

#include "basis/basis_set.hpp"
#include "basis/element.hpp"
#include "basis/radial_function.hpp"
#include "basis/spherical_harmonics.hpp"
#include "basis/spline.hpp"
#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "grid/angular_grid.hpp"
#include "grid/radial_grid.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::basis;

TEST(Spline, ReproducesKnotValues) {
  std::vector<double> x = {0.0, 0.5, 1.2, 2.0, 3.5};
  std::vector<double> y = {1.0, -0.5, 2.0, 0.0, 1.5};
  const CubicSpline s(x, y);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(s.value(x[i]), y[i], 1e-14);
}

TEST(Spline, InterpolatesSmoothFunctionAccurately) {
  const std::size_t n = 60;
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<double>(i) / (n - 1) * 6.0;
    y[i] = std::sin(x[i]);
  }
  const CubicSpline s(x, y);
  // Natural boundary conditions degrade accuracy near the ends, so probe
  // the interior of the span.
  for (double t = 0.5; t < 5.5; t += 0.173) {
    EXPECT_NEAR(s.value(t), std::sin(t), 2e-5);
    EXPECT_NEAR(s.derivative(t), std::cos(t), 2e-3);
  }
}

TEST(Spline, SecondDerivativeNaturalAtEnds) {
  std::vector<double> x = {0, 1, 2, 3, 4};
  std::vector<double> y = {0, 1, 0, 1, 0};
  const CubicSpline s(x, y);
  EXPECT_NEAR(s.second_derivative(0.0), 0.0, 1e-12);
  EXPECT_NEAR(s.second_derivative(4.0), 0.0, 1e-12);
}

TEST(Spline, LinearExtrapolationIsFinite) {
  const CubicSpline s({0.0, 1.0, 2.0}, {0.0, 1.0, 4.0});
  EXPECT_TRUE(std::isfinite(s.value(-1.0)));
  EXPECT_TRUE(std::isfinite(s.value(5.0)));
}

TEST(Spline, RejectsBadKnots) {
  EXPECT_THROW(CubicSpline({0.0}, {1.0}), Error);
  EXPECT_THROW(CubicSpline({0.0, 0.0}, {1.0, 2.0}), Error);
  EXPECT_THROW(CubicSpline({0.0, 1.0}, {1.0}), Error);
}

TEST(Spline, ConstructionCounterAdvances) {
  CubicSpline::reset_construction_counter();
  const CubicSpline a({0.0, 1.0}, {0.0, 1.0});
  const CubicSpline b({0.0, 1.0, 2.0}, {0.0, 1.0, 0.0});
  EXPECT_EQ(CubicSpline::constructions(), 2u);
}

TEST(Ylm, KnownLowOrderValues) {
  const double y00 = 1.0 / std::sqrt(constants::four_pi);
  EXPECT_NEAR(real_ylm(0, 0, {0, 0, 1}), y00, 1e-14);
  // Y_10 = sqrt(3/4pi) z.
  const double c1 = std::sqrt(3.0 / constants::four_pi);
  EXPECT_NEAR(real_ylm(1, 0, {0, 0, 1}), c1, 1e-14);
  EXPECT_NEAR(real_ylm(1, 0, {1, 0, 0}), 0.0, 1e-14);
  // Y_11 ~ x, Y_1-1 ~ y with the same constant.
  EXPECT_NEAR(real_ylm(1, 1, {1, 0, 0}), c1, 1e-13);
  EXPECT_NEAR(real_ylm(1, -1, {0, 1, 0}), c1, 1e-13);
}

class YlmOrthonormality : public ::testing::TestWithParam<int> {};

TEST_P(YlmOrthonormality, OrthonormalOnSphere) {
  const int l_max = GetParam();
  const grid::AngularGrid g = grid::AngularGrid::product(2 * l_max + 1);
  const std::size_t nlm = lm_count(l_max);
  std::vector<double> ylm;
  std::vector<double> gram(nlm * nlm, 0.0);
  for (std::size_t k = 0; k < g.size(); ++k) {
    real_ylm_all(l_max, g.direction(k), ylm);
    const double w = g.weight(k);
    for (std::size_t i = 0; i < nlm; ++i)
      for (std::size_t j = 0; j < nlm; ++j) gram[i * nlm + j] += w * ylm[i] * ylm[j];
  }
  for (std::size_t i = 0; i < nlm; ++i)
    for (std::size_t j = 0; j < nlm; ++j)
      EXPECT_NEAR(gram[i * nlm + j], i == j ? 1.0 : 0.0, 1e-10)
          << "i=" << i << " j=" << j;
}

INSTANTIATE_TEST_SUITE_P(LMax, YlmOrthonormality, ::testing::Values(0, 1, 2, 3, 5));

TEST(Ylm, AssocLegendreKnownValues) {
  EXPECT_NEAR(assoc_legendre(0, 0, 0.3), 1.0, 1e-14);
  EXPECT_NEAR(assoc_legendre(1, 0, 0.3), 0.3, 1e-14);
  // P_1^1(x) = -sqrt(1-x^2) with Condon-Shortley.
  EXPECT_NEAR(assoc_legendre(1, 1, 0.0), -1.0, 1e-14);
  // P_2^0(x) = (3x^2-1)/2.
  EXPECT_NEAR(assoc_legendre(2, 0, 0.5), (3 * 0.25 - 1) / 2, 1e-14);
}

TEST(Ylm, LmIndexLayout) {
  EXPECT_EQ(lm_index(0, 0), 0u);
  EXPECT_EQ(lm_index(1, -1), 1u);
  EXPECT_EQ(lm_index(1, 0), 2u);
  EXPECT_EQ(lm_index(1, 1), 3u);
  EXPECT_EQ(lm_index(2, -2), 4u);
  EXPECT_EQ(lm_count(2), 9u);
}

TEST(CutoffFunction, SmoothSwitch) {
  EXPECT_DOUBLE_EQ(cutoff_function(1.0, 4.0, 6.0), 1.0);
  EXPECT_DOUBLE_EQ(cutoff_function(7.0, 4.0, 6.0), 0.0);
  EXPECT_NEAR(cutoff_function(5.0, 4.0, 6.0), 0.5, 1e-14);
  EXPECT_GT(cutoff_function(4.5, 4.0, 6.0), cutoff_function(5.5, 4.0, 6.0));
}

TEST(RadialFunction, NormalizedOnMesh) {
  const grid::RadialGrid mesh(220, 1e-5, 7.0);
  for (const RadialShell shell :
       {RadialShell{1, 0, 1.0, 1.0}, RadialShell{2, 0, 0.65, 0.0},
        RadialShell{2, 1, 1.57, 2.0}, RadialShell{3, 2, 1.8, 0.0}}) {
    const NumericRadialFunction f(shell, mesh, 7.0);
    std::vector<double> r2(mesh.size());
    for (std::size_t i = 0; i < mesh.size(); ++i) {
      const double v = f.value(mesh.r(i));
      r2[i] = v * v;
    }
    EXPECT_NEAR(mesh.integrate_volume(r2), 1.0, 1e-10);
  }
}

TEST(RadialFunction, ZeroBeyondCutoff) {
  const grid::RadialGrid mesh(200, 1e-5, 6.0);
  const NumericRadialFunction f({1, 0, 1.0, 1.0}, mesh, 6.0);
  EXPECT_DOUBLE_EQ(f.value(6.0), 0.0);
  EXPECT_DOUBLE_EQ(f.value(9.0), 0.0);
  EXPECT_DOUBLE_EQ(f.derivative(6.5), 0.0);
}

TEST(RadialFunction, MatchesAnalyticSlaterInsideOnset) {
  // Before the cutoff switches on, R(r) should track N r^{n-1} e^{-zeta r}.
  const grid::RadialGrid mesh(300, 1e-5, 10.0);
  const double zeta = 1.0;
  const NumericRadialFunction f({1, 0, zeta, 1.0}, mesh, 10.0, 0.8);
  // Analytic norm for 1s STO: 2 zeta^{3/2}.
  const double norm = 2.0 * std::pow(zeta, 1.5);
  for (double r : {0.1, 0.5, 1.0, 2.0, 4.0})
    EXPECT_NEAR(f.value(r), norm * std::exp(-zeta * r), 2e-3 * norm);
}

TEST(RadialFunction, InvalidShellThrows) {
  const grid::RadialGrid mesh(100, 1e-5, 6.0);
  EXPECT_THROW(NumericRadialFunction({1, 1, 1.0, 0.0}, mesh, 6.0), Error);
  EXPECT_THROW(NumericRadialFunction({1, 0, -1.0, 0.0}, mesh, 6.0), Error);
}

TEST(Element, StandardDefinitions) {
  const ElementBasis h = ElementBasis::standard(1, BasisTier::Minimal);
  EXPECT_EQ(h.function_count(), 1u);
  const ElementBasis h_light = ElementBasis::standard(1, BasisTier::Light);
  EXPECT_EQ(h_light.function_count(), 5u);  // 1s + 2s + 2p(3)
  const ElementBasis c = ElementBasis::standard(6, BasisTier::Minimal);
  EXPECT_EQ(c.function_count(), 5u);  // 1s 2s 2p
  const ElementBasis o_light = ElementBasis::standard(8, BasisTier::Light);
  EXPECT_EQ(o_light.function_count(), 10u);  // 1s 2s 2p + 3d
  EXPECT_EQ(o_light.l_max(), 2);
  EXPECT_THROW(ElementBasis::standard(26, BasisTier::Minimal), Error);
}

TEST(Element, OccupationsMatchNeutralAtoms) {
  for (int z : {1, 6, 7, 8}) {
    const ElementBasis e = ElementBasis::standard(z, BasisTier::Light);
    double occ = 0.0;
    for (const auto& s : e.shells) occ += s.occupation;
    EXPECT_DOUBLE_EQ(occ, static_cast<double>(z));
  }
}

grid::Structure water() {
  grid::Structure s;
  s.add_atom(8, {0.0, 0.0, 0.0});
  s.add_atom(1, {0.0, 1.43, 1.11});
  s.add_atom(1, {0.0, -1.43, 1.11});
  return s;
}

TEST(BasisSet, CountsAndRanges) {
  const BasisSet bs(water(), BasisTier::Minimal);
  EXPECT_EQ(bs.size(), 7u);  // O: 5, H: 1 each
  const auto [o_first, o_last] = bs.atom_range(0);
  EXPECT_EQ(o_first, 0u);
  EXPECT_EQ(o_last, 5u);
  const auto [h2_first, h2_last] = bs.atom_range(2);
  EXPECT_EQ(h2_first, 6u);
  EXPECT_EQ(h2_last, 7u);
  EXPECT_EQ(bs.electron_count(), 10);
}

TEST(BasisSet, EvaluateFindsOnlyFunctionsInRange) {
  const BasisSet bs(water(), BasisTier::Minimal, 5.0);
  PointEval ev;
  // Generic point close to the O nucleus: all 7 functions are within 5 bohr
  // and no harmonic vanishes by symmetry.
  bs.evaluate({0.11, 0.07, 0.2}, false, ev);
  EXPECT_EQ(ev.indices.size(), 7u);
  // At a symmetry point, exactly-zero p_x/p_y values are pruned.
  bs.evaluate({0.0, 0.0, 0.2}, false, ev);
  EXPECT_EQ(ev.indices.size(), 5u);
  // Point 20 bohr away: nothing reaches.
  bs.evaluate({0.0, 0.0, 20.0}, false, ev);
  EXPECT_TRUE(ev.indices.empty());
}

TEST(BasisSet, ValuesMatchRadialTimesYlm) {
  const BasisSet bs(water(), BasisTier::Minimal);
  PointEval ev;
  const Vec3 p{0.3, -0.4, 0.9};
  bs.evaluate(p, false, ev);
  for (std::size_t k = 0; k < ev.indices.size(); ++k) {
    const BasisFunction& f = bs.function(ev.indices[k]);
    const Vec3 d = p - bs.structure().atom(f.atom).pos;
    const double r = d.norm();
    const double expect =
        bs.radial(f.radial).value(r) * real_ylm(f.l, f.m, d / r);
    EXPECT_NEAR(ev.values[k], expect, 1e-12);
  }
}

TEST(BasisSet, NumericLaplacianMatchesAnalytic) {
  // Compare the radial-spline Laplacian against a 2nd-order finite
  // difference of chi itself at a generic point.
  grid::Structure s;
  s.add_atom(6, {0, 0, 0});
  const BasisSet bs(s, BasisTier::Minimal);
  PointEval ev0, evp, evm;
  const Vec3 p{0.9, 0.4, -0.3};
  const double h = 1e-3;
  bs.evaluate(p, true, ev0);
  ASSERT_FALSE(ev0.indices.empty());
  for (std::size_t k = 0; k < ev0.indices.size(); ++k) {
    double lap_fd = 0.0;
    for (int d = 0; d < 3; ++d) {
      Vec3 pp = p, pm = p;
      pp[d] += h;
      pm[d] -= h;
      bs.evaluate(pp, false, evp);
      bs.evaluate(pm, false, evm);
      lap_fd += (evp.values[k] - 2.0 * ev0.values[k] + evm.values[k]) / (h * h);
    }
    EXPECT_NEAR(ev0.laplacians[k], lap_fd, 5e-3 * std::max(1.0, std::fabs(lap_fd)))
        << "mu=" << ev0.indices[k];
  }
}

TEST(BasisSet, FreeAtomDensityIntegratesToElectronCount) {
  grid::Structure s;
  s.add_atom(8, {0, 0, 0});
  const BasisSet bs(s, BasisTier::Light);
  const grid::RadialGrid mesh(300, 1e-5, 7.0);
  std::vector<double> n(mesh.size());
  for (std::size_t i = 0; i < mesh.size(); ++i)
    n[i] = bs.free_atom_density(8, mesh.r(i));
  // Cross-mesh spline interpolation limits agreement to ~1e-6.
  EXPECT_NEAR(constants::four_pi * mesh.integrate_volume(n), 8.0, 1e-5);
}

TEST(BasisSet, OverlapNearIdentityForIsolatedAtom) {
  // For one atom the numeric orbitals are orthonormal per (l,m) channel up
  // to the radial overlap between same-l shells.
  grid::Structure s;
  s.add_atom(1, {0, 0, 0});
  const BasisSet bs(s, BasisTier::Minimal);
  EXPECT_EQ(bs.size(), 1u);
}

}  // namespace
