// Parameterized property sweeps across modules: each suite checks one
// invariant over a family of randomized or structured configurations.

#include <gtest/gtest.h>

#include <cmath>

#include "comm/packed.hpp"
#include "common/constants.hpp"
#include "common/rng.hpp"
#include "core/structures.hpp"
#include "grid/molecular_grid.hpp"
#include "grid/partition.hpp"
#include "kernels/rho_kernels.hpp"
#include "linalg/lu.hpp"
#include "linalg/sparse.hpp"
#include "parallel/cluster.hpp"
#include "simt/runtime.hpp"

namespace {

using namespace aeqp;

// ---------------------------------------------------------------- packed
struct PackedCase {
  std::size_t ranks, per_node, rows, row_len, budget_rows;
};

class PackedReducerProperty : public ::testing::TestWithParam<PackedCase> {};

TEST_P(PackedReducerProperty, EqualsFlatReference) {
  const auto c = GetParam();
  parallel::Cluster cluster(c.ranks, c.per_node);
  cluster.run([&](parallel::Communicator& comm) {
    Rng rng(500 + comm.rank());
    std::vector<std::vector<double>> packed_rows(c.rows),
        flat_rows(c.rows);
    for (std::size_t r = 0; r < c.rows; ++r) {
      packed_rows[r].resize(c.row_len);
      for (auto& v : packed_rows[r]) v = rng.uniform(-1, 1);
      flat_rows[r] = packed_rows[r];
    }
    comm::PackedAllReducer packer(
        comm, comm::ReduceMode::Hierarchical,
        c.budget_rows * c.row_len * sizeof(double));
    for (auto& row : packed_rows) packer.add(row);
    packer.flush();
    for (auto& row : flat_rows) comm.allreduce_sum(row);
    for (std::size_t r = 0; r < c.rows; ++r)
      for (std::size_t i = 0; i < c.row_len; ++i)
        ASSERT_NEAR(packed_rows[r][i], flat_rows[r][i], 1e-12);
  });
}

INSTANTIATE_TEST_SUITE_P(Shapes, PackedReducerProperty,
                         ::testing::Values(PackedCase{2, 2, 10, 8, 3},
                                           PackedCase{4, 2, 25, 5, 7},
                                           PackedCase{6, 3, 40, 3, 40},
                                           PackedCase{8, 4, 13, 16, 1},
                                           PackedCase{9, 4, 50, 2, 11}));

// ------------------------------------------------------------------- CSR
struct CsrCase {
  std::size_t n;
  std::size_t nnz;
  std::uint64_t seed;
};

class CsrRandomSweep : public ::testing::TestWithParam<CsrCase> {};

TEST_P(CsrRandomSweep, MatvecAndFetchMatchDense) {
  const auto c = GetParam();
  Rng rng(c.seed);
  std::vector<linalg::Triplet> trips;
  for (std::size_t k = 0; k < c.nnz; ++k)
    trips.push_back({rng.uniform_index(c.n), rng.uniform_index(c.n),
                     rng.uniform(-2, 2)});
  const linalg::CsrMatrix sp(c.n, c.n, trips);
  const linalg::Matrix dn = sp.to_dense();

  linalg::Vector x(c.n);
  for (auto& v : x) v = rng.uniform(-1, 1);
  const auto ys = sp.matvec(x);
  const auto yd = linalg::matvec(dn, x);
  for (std::size_t i = 0; i < c.n; ++i) ASSERT_NEAR(ys[i], yd[i], 1e-12);
  for (int probe = 0; probe < 50; ++probe) {
    const std::size_t i = rng.uniform_index(c.n), j = rng.uniform_index(c.n);
    ASSERT_DOUBLE_EQ(sp.fetch(i, j), dn(i, j));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CsrRandomSweep,
                         ::testing::Values(CsrCase{5, 8, 1}, CsrCase{20, 100, 2},
                                           CsrCase{64, 500, 3},
                                           CsrCase{100, 40, 4},
                                           CsrCase{31, 0, 5}));

// ----------------------------------------------------------------- Becke
class BeckeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BeckeSweep, PartitionOfUnityOnRandomClusters) {
  const auto cluster = core::rbd_like_cluster(12, GetParam());
  const grid::BeckePartition part(cluster);
  Rng rng(900 + GetParam());
  for (int t = 0; t < 25; ++t) {
    Vec3 lo, hi;
    cluster.bounding_box(lo, hi);
    const Vec3 p{rng.uniform(lo.x - 2, hi.x + 2), rng.uniform(lo.y - 2, hi.y + 2),
                 rng.uniform(lo.z - 2, hi.z + 2)};
    double sum = 0.0;
    for (std::size_t a = 0; a < cluster.size(); ++a) sum += part.weight(a, p);
    ASSERT_NEAR(sum, 1.0, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BeckeSweep, ::testing::Values(11, 22, 33, 44));

// ------------------------------------------------------------------ grid
class GridGaussianSweep : public ::testing::TestWithParam<double> {};

TEST_P(GridGaussianSweep, NormalizedGaussianIntegratesToOne) {
  const double alpha = GetParam();
  grid::Structure s;
  s.add_atom(6, {0.4, -0.2, 0.1});
  grid::GridSpec spec;
  spec.radial_points = 60;
  spec.angular_degree = 11;
  spec.r_max = 12.0;
  const auto g = grid::MolecularGrid::build(s, spec);
  const double norm = std::pow(alpha / constants::pi, 1.5);
  std::vector<double> f(g.size());
  for (std::size_t i = 0; i < g.size(); ++i) {
    const Vec3 d = g.point(i).pos - s.atom(0).pos;
    f[i] = norm * std::exp(-alpha * d.norm2());
  }
  EXPECT_NEAR(g.integrate(f), 1.0, 2e-4) << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(Alphas, GridGaussianSweep,
                         ::testing::Values(0.3, 0.8, 1.5, 3.0, 8.0));

// -------------------------------------------------------------------- LU
class LuDeterminantProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuDeterminantProperty, DetOfProductIsProductOfDets) {
  Rng rng(700 + GetParam());
  const std::size_t n = GetParam();
  linalg::Matrix a(n, n), b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.uniform(-1, 1);
      b(i, j) = rng.uniform(-1, 1);
    }
  const double da = linalg::LuDecomposition(a).determinant();
  const double db = linalg::LuDecomposition(b).determinant();
  const double dab = linalg::LuDecomposition(linalg::matmul(a, b)).determinant();
  EXPECT_NEAR(dab, da * db, 1e-8 * std::max(1.0, std::fabs(da * db)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuDeterminantProperty,
                         ::testing::Values(2, 3, 6, 10, 15));

// ------------------------------------------------------------ rho fusion
struct FusionCase {
  std::size_t atoms;
  int l_max;
  std::size_t ranks;
};

class RhoFusionSweep : public ::testing::TestWithParam<FusionCase> {};

TEST_P(RhoFusionSweep, AllModesProduceIdenticalPotentials) {
  const auto c = GetParam();
  kernels::RhoPhaseConfig cfg;
  cfg.n_atoms = c.atoms;
  cfg.l_max = c.l_max;
  cfg.radial_points = 32;
  cfg.grid_points_per_rank = 96;
  cfg.ranks_per_device = c.ranks;

  simt::SimtRuntime gpu(simt::DeviceModel::gcn_gpu());
  simt::SimtRuntime sw(simt::DeviceModel::sw39010());
  const auto a = kernels::run_rho_phase(gpu, cfg, kernels::FusionMode::Unfused);
  const auto b =
      kernels::run_rho_phase(gpu, cfg, kernels::FusionMode::HorizontalFused);
  const auto d =
      kernels::run_rho_phase(sw, cfg, kernels::FusionMode::VerticalFused);
  for (std::size_t i = 0; i < a.potential.size(); ++i) {
    ASSERT_DOUBLE_EQ(a.potential[i], b.potential[i]);
    ASSERT_DOUBLE_EQ(a.potential[i], d.potential[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, RhoFusionSweep,
                         ::testing::Values(FusionCase{1, 0, 1},
                                           FusionCase{2, 1, 3},
                                           FusionCase{3, 2, 4},
                                           FusionCase{5, 4, 8},
                                           FusionCase{2, 6, 2}));

}  // namespace
