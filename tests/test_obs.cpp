// Tests for src/obs: span recording and nesting, deterministic merge,
// Chrome trace-event export (parse-back), disabled-mode zero registration,
// the metrics registry, the phase report / profile JSON exporters, fault
// instants from the simmpi runtime, the unified log sink, and the
// bit-for-bit determinism of a traced vs untraced SCF run.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "common/thread_ident.hpp"
#include "core/dfpt.hpp"
#include "core/structures.hpp"
#include "exec/thread_pool.hpp"
#include "obs/memaudit.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "parallel/cluster.hpp"
#include "parallel/fault.hpp"
#include "scf/scf_solver.hpp"

namespace {

using namespace aeqp;

/// Every test starts from a clean tracing state and restores Off on exit so
/// tests cannot leak mode into one another.
class ObsTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::set_mode(obs::TraceMode::Full);
    obs::reset();
    obs::reset_counters();
  }
  void TearDown() override {
    obs::set_mode(obs::TraceMode::Off);
    obs::reset();
    obs::reset_counters();
  }
};

TEST_F(ObsTest, SpansNestAndComplete) {
  {
    AEQP_TRACE_SCOPE("outer");
    {
      AEQP_TRACE_SCOPE("inner");
      obs::trace_instant("tick");
    }
    AEQP_TRACE_SCOPE("sibling");
  }
  const auto spans = obs::completed_spans();
  ASSERT_EQ(spans.size(), 3u);
  // Spans complete in End order per lane but are reported in Begin order.
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_STREQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_STREQ(spans[2].name, "sibling");
  EXPECT_EQ(spans[2].depth, 1);
  // The inner span is contained in the outer one.
  EXPECT_GE(spans[1].ts_us, spans[0].ts_us);
  EXPECT_LE(spans[1].ts_us + spans[1].dur_us,
            spans[0].ts_us + spans[0].dur_us + 1e-3);

  std::size_t instants = 0;
  for (const auto& ce : obs::collect_events())
    instants += ce.event.type == obs::EventType::Instant;
  EXPECT_EQ(instants, 1u);
}

TEST_F(ObsTest, PhaseSpanDelimitsManually) {
  obs::PhaseSpan span;
  span.begin("a");
  span.begin("b");  // implicitly ends "a"
  span.end();
  span.end();  // idempotent
  const auto spans = obs::completed_spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_STREQ(spans[0].name, "a");
  EXPECT_STREQ(spans[1].name, "b");
}

TEST_F(ObsTest, MergeIsDeterministicAcrossCollects) {
  const std::size_t n_threads = 4, per_thread = 200;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < n_threads; ++t)
    threads.emplace_back([t] {
      const ScopedThreadRank tag(static_cast<int>(t));
      for (std::size_t i = 0; i < per_thread; ++i) {
        AEQP_TRACE_SCOPE("work");
      }
    });
  for (auto& th : threads) th.join();

  const auto a = obs::collect_events();
  const auto b = obs::collect_events();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), n_threads * per_thread * 2);  // Begin + End each
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].thread_index, b[i].thread_index);
    EXPECT_EQ(a[i].seq, b[i].seq);
    EXPECT_STREQ(a[i].event.name, b[i].event.name);
    EXPECT_EQ(a[i].event.ts_us, b[i].event.ts_us);
  }
  // Lanes are contiguous and ordered by registration index; seq increases
  // within a lane.
  for (std::size_t i = 1; i < a.size(); ++i) {
    ASSERT_GE(a[i].thread_index, a[i - 1].thread_index);
    if (a[i].thread_index == a[i - 1].thread_index) {
      ASSERT_EQ(a[i].seq, a[i - 1].seq + 1);
    }
  }
  const auto spans = obs::completed_spans();
  EXPECT_EQ(spans.size(), n_threads * per_thread);
  for (const auto& s : spans) {
    EXPECT_GE(s.rank, 0);
    EXPECT_LT(s.rank, static_cast<int>(n_threads));
  }
}

/// Minimal JSON well-formedness scan: balanced {} / [] outside strings,
/// valid escapes. Not a full parser, but catches truncation, stray commas
/// in structure, and unescaped quotes.
bool json_balanced(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false, escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) escaped = false;
      else if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return stack.empty() && !in_string;
}

TEST_F(ObsTest, ChromeTraceExportsValidJson) {
  {
    AEQP_TRACE_SCOPE("phase/outer");
    { AEQP_TRACE_SCOPE("phase/inner"); }
  }
  std::thread([] {
    const ScopedThreadRank tag(3);
    AEQP_TRACE_SCOPE("phase/ranked");
    obs::trace_instant("fault/test");
  }).join();

  const std::string path =
      (std::filesystem::temp_directory_path() / "aeqp_test_trace.json").string();
  ASSERT_TRUE(obs::write_chrome_trace(path, "unit test"));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  std::filesystem::remove(path);

  EXPECT_TRUE(json_balanced(text));
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"phase/inner\""), std::string::npos);
  // The ranked lane appears as pid 4 (rank + 1) with a process_name.
  EXPECT_NE(text.find("\"rank 3\""), std::string::npos);
  EXPECT_NE(text.find("\"host\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"i\""), std::string::npos);

  // Count complete events: one per completed span.
  std::size_t x_events = 0;
  for (std::size_t pos = 0;
       (pos = text.find("\"ph\": \"X\"", pos)) != std::string::npos; ++pos)
    ++x_events;
  EXPECT_EQ(x_events, obs::completed_spans().size());
}

TEST_F(ObsTest, DisabledModeRegistersNothing) {
  obs::set_mode(obs::TraceMode::Off);
  obs::reset();
  const std::size_t before = obs::registered_thread_count();
  // A fresh thread recording spans in off mode must not allocate a buffer
  // or register a lane.
  std::thread([] {
    for (int i = 0; i < 1000; ++i) {
      AEQP_TRACE_SCOPE("never/recorded");
    }
    obs::trace_instant("never/instant");
  }).join();
  EXPECT_EQ(obs::registered_thread_count(), before);
  EXPECT_TRUE(obs::collect_events().empty());
}

TEST_F(ObsTest, CountersAndSources) {
  obs::counter("test/alpha").add(3);
  obs::counter("test/alpha").increment();
  obs::counter("test/beta").add(7);
  {
    const obs::ScopedMetricsSource src([](std::vector<obs::MetricSample>& out) {
      out.push_back({"test/source_value", 1.5});
    });
    const auto snap = obs::metrics_snapshot();
    ASSERT_EQ(snap.size(), 3u);  // sorted by name
    EXPECT_EQ(snap[0].name, "test/alpha");
    EXPECT_EQ(snap[0].value, 4.0);
    EXPECT_EQ(snap[1].name, "test/beta");
    EXPECT_EQ(snap[1].value, 7.0);
    EXPECT_EQ(snap[2].name, "test/source_value");
    EXPECT_EQ(snap[2].value, 1.5);
  }
  // Source deregistered, zeroed counters disappear from the snapshot.
  obs::reset_counters();
  EXPECT_TRUE(obs::metrics_snapshot().empty());
}

TEST_F(ObsTest, PhaseReportAndProfileJson) {
  { AEQP_TRACE_SCOPE("report/phase"); }
  obs::trace_instant("report/instant");
  obs::counter("report/counter").add(42);

  std::ostringstream os;
  obs::write_phase_report(os, "unit");
  const std::string report = os.str();
  EXPECT_NE(report.find("report/phase"), std::string::npos);
  EXPECT_NE(report.find("report/instant"), std::string::npos);
  EXPECT_NE(report.find("report/counter"), std::string::npos);
  EXPECT_NE(report.find("profiled wall time"), std::string::npos);

  const std::string json = obs::profile_json();
  EXPECT_TRUE(json_balanced(json));
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"report/phase\""), std::string::npos);
  EXPECT_NE(json.find("\"report/counter\": 42"), std::string::npos);
}

TEST_F(ObsTest, FaultInstantsFromSimmpiRun) {
  parallel::FaultPlan plan;
  parallel::FaultEvent kill;
  kill.kind = parallel::FaultKind::Kill;
  kill.rank = 1;
  kill.collective = 2;
  plan.add(kill);
  parallel::FaultInjector injector(plan);
  const auto injector_metrics = parallel::register_metrics(injector);

  parallel::Cluster cluster(2, 2);
  cluster.set_fault_injector(&injector);
  EXPECT_THROW(cluster.run([](parallel::Communicator& c) {
                 const ScopedThreadRank tag(static_cast<int>(c.rank()));
                 std::vector<double> x(4, 1.0);
                 for (int i = 0; i < 8; ++i) c.allreduce_sum(x);
               }),
               parallel::RankFailure);

  std::size_t kills = 0, failures = 0;
  for (const auto& ce : obs::collect_events()) {
    if (ce.event.type != obs::EventType::Instant) continue;
    kills += std::string(ce.event.name) == "fault/kill";
    failures += std::string(ce.event.name) == "fault/rank_failure";
  }
  EXPECT_EQ(kills, 1u);
  EXPECT_EQ(failures, 1u);

  bool found = false;
  for (const auto& m : obs::metrics_snapshot())
    if (m.name == "fault/kills") {
      found = true;
      EXPECT_EQ(m.value, 1.0);
    }
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, LogSinkCapturesRankPrefixedLines) {
  Log::set_level(LogLevel::Info);
  std::vector<std::string> lines;
  Log::set_sink([&lines](LogLevel, const std::string& line) {
    lines.push_back(line);
  });
  AEQP_LOG_INFO << "host line";
  {
    const ScopedThreadRank tag(5);
    AEQP_LOG_INFO << "rank line";
  }
  AEQP_LOG_DEBUG << "dropped";  // below threshold
  Log::set_sink({});
  Log::set_level(LogLevel::Warn);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "[aeqp INFO] host line");
  EXPECT_EQ(lines[1], "[aeqp INFO r5] rank line");
}

scf::ScfResult run_small_scf() {
  grid::Structure h2;
  h2.add_atom(1, {0, 0, -0.7});
  h2.add_atom(1, {0, 0, 0.7});
  scf::ScfOptions opt;
  opt.tier = basis::BasisTier::Minimal;
  opt.grid.radial_points = 24;
  opt.grid.angular_degree = 7;
  opt.poisson.radial_points = 48;
  opt.poisson.l_max = 2;
  return scf::ScfSolver(h2, opt).run();
}

TEST_F(ObsTest, TracedScfIsBitIdenticalToUntraced) {
  obs::set_mode(obs::TraceMode::Off);
  const scf::ScfResult untraced = run_small_scf();
  obs::set_mode(obs::TraceMode::Full);
  obs::reset();
  const scf::ScfResult traced = run_small_scf();

  ASSERT_TRUE(untraced.converged);
  ASSERT_TRUE(traced.converged);
  // Tracing observes; it must not perturb a single bit of the physics.
  EXPECT_EQ(untraced.total_energy, traced.total_energy);
  EXPECT_EQ(untraced.density_matrix.max_abs_diff(traced.density_matrix), 0.0);
  EXPECT_EQ(untraced.iterations, traced.iterations);

  // And the traced run actually recorded the SCF phases.
  const auto aggs = obs::aggregate_spans();
  const auto has = [&](const char* name) {
    for (const auto& a : aggs)
      if (a.name == name) return true;
    return false;
  };
  EXPECT_TRUE(has("scf/run"));
  EXPECT_TRUE(has("scf/iteration"));
  EXPECT_TRUE(has("scf/hartree"));
  EXPECT_TRUE(has("scf/hamiltonian"));
  EXPECT_TRUE(has("scf/diagonalize"));
  EXPECT_TRUE(has("scf/density"));
  EXPECT_TRUE(has("poisson/project"));
  EXPECT_TRUE(has("poisson/solve"));
}

// ---------------------------------------------------------------------------
// Memory audit (obs/memaudit.hpp): observe-only contract and gauge
// semantics. Deeper comm-matrix / flight-recorder coverage lives in
// test_memobs.cpp.

TEST_F(ObsTest, MemauditOffRegistersNoGauges) {
  obs::set_memaudit(false);
  const std::size_t before = obs::registered_gauge_count();
  // Instrumented owners built with the audit off must not touch the
  // registry: the whole per-site cost is the single gate load.
  const scf::ScfResult r = run_small_scf();
  ASSERT_TRUE(r.converged);
  obs::mem_track("obs_test/never_armed", 4096);
  EXPECT_EQ(obs::registered_gauge_count(), before);
}

TEST_F(ObsTest, MemauditScfCpscfBitIdentical) {
  obs::set_mode(obs::TraceMode::Off);
  obs::set_memaudit(false);
  const scf::ScfResult ground_off = run_small_scf();
  ASSERT_TRUE(ground_off.converged);
  core::DfptOptions dopt;
  dopt.tolerance = 1e-8;
  const auto dfpt_off = core::DfptSolver(ground_off, dopt).solve_direction(2);

  obs::set_memaudit(true);
  obs::reset_mem_gauges();
  const scf::ScfResult ground_on = run_small_scf();
  ASSERT_TRUE(ground_on.converged);
  const auto dfpt_on = core::DfptSolver(ground_on, dopt).solve_direction(2);
  obs::set_memaudit(false);

  // The audit observes; it must not perturb a single bit of the physics.
  EXPECT_EQ(ground_off.total_energy, ground_on.total_energy);
  EXPECT_EQ(ground_off.density_matrix.max_abs_diff(ground_on.density_matrix),
            0.0);
  EXPECT_EQ(dfpt_off.iterations, dfpt_on.iterations);
  EXPECT_EQ(dfpt_off.dipole_response.z, dfpt_on.dipole_response.z);
  EXPECT_EQ(dfpt_off.p1.max_abs_diff(dfpt_on.p1), 0.0);

  // And the audited run actually measured the N-scaling structures.
  double spline_bytes = 0, table_bytes = 0;
  for (const auto& g : obs::mem_snapshot()) {
    if (g.name == "basis/spline_tables")
      spline_bytes = static_cast<double>(g.peak_bytes);
    if (g.name == "basis/function_table")
      table_bytes = static_cast<double>(g.peak_bytes);
  }
  EXPECT_GT(spline_bytes, 0.0);
  EXPECT_GT(table_bytes, 0.0);
}

TEST_F(ObsTest, MemGaugePeakUnderThreadPool) {
  obs::set_memaudit(true);
  obs::reset_mem_gauges();
  constexpr std::size_t kItems = 64;
  constexpr std::int64_t kBytes = 4096;
  // Concurrent adds only: every interleaving ends at the same current, and
  // peak equals it because the gauge never decreases during this phase.
  exec::parallel_for(0, kItems,
                     [](std::size_t) { obs::mem_track("obs_test/pool", kBytes); });
  obs::MemGauge& g = obs::mem_gauge("obs_test/pool");
  EXPECT_EQ(g.current(), static_cast<std::int64_t>(kItems) * kBytes);
  EXPECT_EQ(g.peak(), g.current());

  const std::int64_t high_water = g.peak();
  exec::parallel_for(0, kItems, [](std::size_t) {
    obs::mem_track("obs_test/pool", -kBytes);
  });
  EXPECT_EQ(g.current(), 0);
  EXPECT_EQ(g.peak(), high_water);  // the high-water mark survives release
  obs::set_memaudit(false);
}

}  // namespace
