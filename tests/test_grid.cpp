// Tests for src/grid: radial meshes, Gauss-Legendre, Lebedev and product
// angular rules, Becke partition of unity, molecular grid assembly, and
// cut-plane batching.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "grid/angular_grid.hpp"
#include "grid/batch.hpp"
#include "grid/molecular_grid.hpp"
#include "grid/partition.hpp"
#include "grid/quadrature.hpp"
#include "grid/radial_grid.hpp"
#include "grid/structure.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::grid;

TEST(RadialGrid, EndpointsAndMonotone) {
  const RadialGrid g(50, 1e-4, 12.0);
  EXPECT_NEAR(g.r_min(), 1e-4, 1e-12);
  EXPECT_NEAR(g.r_max(), 12.0, 1e-9);
  for (std::size_t i = 1; i < g.size(); ++i) EXPECT_GT(g.r(i), g.r(i - 1));
}

TEST(RadialGrid, IntegratesGaussianVolume) {
  // \int_0^inf e^{-r^2} r^2 dr = sqrt(pi)/4.
  const RadialGrid g(200, 1e-6, 15.0);
  const auto f = g.tabulate([](double r) { return std::exp(-r * r); });
  EXPECT_NEAR(g.integrate_volume(f), constants::sqrt_pi / 4.0, 1e-8);
}

TEST(RadialGrid, IntegratesExponentialLine) {
  // \int_0^inf e^{-2r} dr = 1/2 (hydrogen 1s-like decay).
  const RadialGrid g(300, 1e-7, 25.0);
  const auto f = g.tabulate([](double r) { return std::exp(-2.0 * r); });
  EXPECT_NEAR(g.integrate_line(f), 0.5, 1e-6);
}

TEST(RadialGrid, LocateBracketsRadius) {
  const RadialGrid g(64, 1e-3, 8.0);
  double t = 0.0;
  for (double r : {1e-3, 0.01, 0.5, 3.0, 7.99}) {
    const std::size_t i = g.locate(r, t);
    ASSERT_LT(i + 1, g.size());
    EXPECT_LE(g.r(i), r * (1 + 1e-12));
    EXPECT_GE(g.r(i + 1), r * (1 - 1e-12));
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 1.0);
  }
}

TEST(RadialGrid, RejectsBadArguments) {
  EXPECT_THROW(RadialGrid(2, 1e-4, 1.0), Error);
  EXPECT_THROW(RadialGrid(10, 0.0, 1.0), Error);
  EXPECT_THROW(RadialGrid(10, 2.0, 1.0), Error);
}

class GaussLegendreDegree : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GaussLegendreDegree, ExactForPolynomials) {
  const std::size_t n = GetParam();
  const GaussLegendreRule rule = gauss_legendre(n);
  // Exact for x^k, k <= 2n-1: integral over [-1,1] is 0 (odd) or 2/(k+1).
  for (std::size_t k = 0; k <= 2 * n - 1; ++k) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      s += rule.weights[i] * std::pow(rule.nodes[i], static_cast<double>(k));
    const double exact = (k % 2 == 1) ? 0.0 : 2.0 / (static_cast<double>(k) + 1.0);
    EXPECT_NEAR(s, exact, 1e-12) << "n=" << n << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, GaussLegendreDegree,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 31));

TEST(GaussLegendre, WeightsSumToTwo) {
  for (std::size_t n : {1u, 4u, 9u, 20u}) {
    const auto rule = gauss_legendre(n);
    const double sum = std::accumulate(rule.weights.begin(), rule.weights.end(), 0.0);
    EXPECT_NEAR(sum, 2.0, 1e-13);
  }
}

class AngularRuleTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AngularRuleTest, LebedevWeightsSumTo4Pi) {
  const AngularGrid g = AngularGrid::lebedev(GetParam());
  double sum = 0.0;
  for (std::size_t k = 0; k < g.size(); ++k) {
    sum += g.weight(k);
    EXPECT_NEAR(g.direction(k).norm(), 1.0, 1e-14);
  }
  EXPECT_NEAR(sum, constants::four_pi, 1e-12);
}

TEST_P(AngularRuleTest, LebedevExactForItsDegree) {
  const AngularGrid g = AngularGrid::lebedev(GetParam());
  // Monomials x^a y^b z^c: \int over S2 is zero when any exponent is odd,
  // else 4pi * prod (a-1)!! (b-1)!! (c-1)!! / (a+b+c+1)!!.
  auto dfact = [](int n) {
    double f = 1.0;
    for (int k = n; k > 1; k -= 2) f *= k;
    return f;
  };
  const int deg = static_cast<int>(g.degree());
  for (int a = 0; a <= deg; ++a)
    for (int b = 0; a + b <= deg; ++b)
      for (int c = 0; a + b + c <= deg; ++c) {
        double s = 0.0;
        for (std::size_t k = 0; k < g.size(); ++k) {
          const Vec3& d = g.direction(k);
          s += g.weight(k) * std::pow(d.x, a) * std::pow(d.y, b) * std::pow(d.z, c);
        }
        double exact = 0.0;
        if (a % 2 == 0 && b % 2 == 0 && c % 2 == 0)
          exact = constants::four_pi * dfact(a - 1) * dfact(b - 1) * dfact(c - 1) /
                  dfact(a + b + c + 1);
        EXPECT_NEAR(s, exact, 1e-10) << a << " " << b << " " << c;
      }
}

INSTANTIATE_TEST_SUITE_P(Lebedev, AngularRuleTest, ::testing::Values(6, 14, 26));

class ProductRuleTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ProductRuleTest, ExactForMonomialsUpToDegree) {
  const std::size_t degree = GetParam();
  const AngularGrid g = AngularGrid::product(degree);
  auto dfact = [](int n) {
    double f = 1.0;
    for (int k = n; k > 1; k -= 2) f *= k;
    return f;
  };
  for (int a = 0; a <= static_cast<int>(degree); ++a)
    for (int b = 0; a + b <= static_cast<int>(degree); ++b) {
      const int c = static_cast<int>(degree) - a - b;
      double s = 0.0;
      for (std::size_t k = 0; k < g.size(); ++k) {
        const Vec3& d = g.direction(k);
        s += g.weight(k) * std::pow(d.x, a) * std::pow(d.y, b) * std::pow(d.z, c);
      }
      double exact = 0.0;
      if (a % 2 == 0 && b % 2 == 0 && c % 2 == 0)
        exact = constants::four_pi * dfact(a - 1) * dfact(b - 1) * dfact(c - 1) /
                dfact(a + b + c + 1);
      EXPECT_NEAR(s, exact, 1e-10);
    }
}

INSTANTIATE_TEST_SUITE_P(Degrees, ProductRuleTest,
                         ::testing::Values(2, 5, 9, 13, 17));

TEST(AngularGrid, ForDegreePrefersLebedev) {
  EXPECT_EQ(AngularGrid::for_degree(3).size(), 6u);
  EXPECT_EQ(AngularGrid::for_degree(5).size(), 14u);
  EXPECT_EQ(AngularGrid::for_degree(7).size(), 26u);
  EXPECT_GT(AngularGrid::for_degree(11).size(), 26u);
}

TEST(AngularGrid, UnsupportedLebedevThrows) {
  EXPECT_THROW(AngularGrid::lebedev(10), Error);
}

TEST(Structure, ChargeRepulsionNeighbors) {
  Structure s;
  s.add_atom(8, {0, 0, 0});
  s.add_atom(1, {0, 0, 1.8});
  s.add_atom(1, {0, 1.7, -0.6});
  EXPECT_EQ(s.total_charge(), 10);
  EXPECT_GT(s.nuclear_repulsion(), 0.0);
  const auto nb = s.neighbors_of(0, 2.0);
  EXPECT_EQ(nb.size(), 2u);
  EXPECT_TRUE(s.neighbors_of(1, 0.5).empty());
}

TEST(Structure, BoundingBoxAndCentroid) {
  Structure s;
  s.add_atom(1, {-1, 0, 2});
  s.add_atom(1, {3, -2, 4});
  Vec3 lo, hi;
  s.bounding_box(lo, hi);
  EXPECT_DOUBLE_EQ(lo.x, -1);
  EXPECT_DOUBLE_EQ(hi.z, 4);
  EXPECT_DOUBLE_EQ(s.centroid().x, 1.0);
}

TEST(Becke, PartitionOfUnity) {
  Structure s;
  s.add_atom(8, {0, 0, 0});
  s.add_atom(1, {0, 0, 1.8});
  s.add_atom(1, {0, 1.7, -0.6});
  const BeckePartition part(s);
  Rng rng(21);
  for (int t = 0; t < 50; ++t) {
    const Vec3 p{rng.uniform(-3, 3), rng.uniform(-3, 3), rng.uniform(-3, 3)};
    double sum = 0.0;
    for (std::size_t a = 0; a < s.size(); ++a) {
      const double w = part.weight(a, p);
      EXPECT_GE(w, 0.0);
      EXPECT_LE(w, 1.0 + 1e-12);
      sum += w;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Becke, DominantNearOwnNucleus) {
  Structure s;
  s.add_atom(6, {0, 0, 0});
  s.add_atom(6, {0, 0, 2.8});
  const BeckePartition part(s);
  EXPECT_GT(part.weight(0, {0, 0, 0.1}), 0.99);
  EXPECT_GT(part.weight(1, {0, 0, 2.7}), 0.99);
  // Midpoint is an even split for identical atoms.
  EXPECT_NEAR(part.weight(0, {0, 0, 1.4}), 0.5, 1e-12);
}

TEST(Becke, SingleAtomIsAlwaysOne) {
  Structure s;
  s.add_atom(1, {0, 0, 0});
  const BeckePartition part(s);
  EXPECT_DOUBLE_EQ(part.weight(0, {5, 5, 5}), 1.0);
}

TEST(MolecularGrid, IntegratesUnitGaussianOnMolecule) {
  // A normalized Gaussian centered between two atoms must integrate to ~1
  // on the combined partitioned grid.
  Structure s;
  s.add_atom(1, {0, 0, -0.7});
  s.add_atom(1, {0, 0, 0.7});
  GridSpec spec;
  spec.radial_points = 60;
  spec.angular_degree = 11;
  spec.r_max = 12.0;
  const MolecularGrid g = MolecularGrid::build(s, spec);
  std::vector<double> f(g.size());
  const double alpha = 1.3;
  const double norm = std::pow(alpha / constants::pi, 1.5);
  for (std::size_t i = 0; i < g.size(); ++i) {
    const Vec3 d = g.point(i).pos;  // centered at origin = bond midpoint
    f[i] = norm * std::exp(-alpha * d.norm2());
  }
  EXPECT_NEAR(g.integrate(f), 1.0, 1e-3);
}

TEST(MolecularGrid, PointsCarryParentAtom) {
  Structure s;
  s.add_atom(6, {0, 0, 0});
  s.add_atom(8, {0, 0, 2.2});
  GridSpec spec;
  spec.radial_points = 20;
  spec.becke_weights = false;
  spec.weight_cutoff = 0.0;
  const MolecularGrid g = MolecularGrid::build(s, spec);
  std::set<std::uint32_t> atoms;
  for (const auto& p : g.points()) atoms.insert(p.atom);
  EXPECT_EQ(atoms.size(), 2u);
}

TEST(AngularRamp, SmallRulesNearNucleus) {
  EXPECT_EQ(angular_degree_for_shell(0, 40, 13), 3u);
  EXPECT_EQ(angular_degree_for_shell(39, 40, 13), 13u);
  EXPECT_LE(angular_degree_for_shell(12, 40, 13), 7u);
}

TEST(Batches, PartitionCoversAllPointsExactlyOnce) {
  Structure s;
  s.add_atom(8, {0, 0, 0});
  s.add_atom(1, {0, 0, 1.8});
  GridSpec spec;
  spec.radial_points = 24;
  const MolecularGrid g = MolecularGrid::build(s, spec);
  const auto batches = make_batches(g, 100);
  std::vector<int> seen(g.size(), 0);
  for (const auto& b : batches) {
    EXPECT_LE(b.size(), 100u);
    EXPECT_GE(b.size(), 1u);
    for (auto id : b.points) seen[id]++;
  }
  for (int c : seen) EXPECT_EQ(c, 1);
}

TEST(Batches, CentroidIsMeanOfMembers) {
  std::vector<Vec3> pos = {{0, 0, 0}, {2, 0, 0}, {0, 2, 0}, {0, 0, 2}};
  std::vector<std::uint32_t> parent = {0, 0, 1, 1};
  const auto batches = make_batches(pos, parent, 4);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_NEAR(batches[0].centroid.x, 0.5, 1e-15);
  EXPECT_NEAR(batches[0].centroid.y, 0.5, 1e-15);
  EXPECT_NEAR(batches[0].centroid.z, 0.5, 1e-15);
  EXPECT_EQ(batches[0].atoms.size(), 2u);
}

TEST(Batches, SplitsAlongWidestDimension) {
  // Points spread along z only: the first cut must separate low-z from
  // high-z, giving spatially compact batches.
  std::vector<Vec3> pos;
  std::vector<std::uint32_t> parent;
  for (int i = 0; i < 64; ++i) {
    pos.push_back({0.01 * i, 0.0, static_cast<double>(i)});
    parent.push_back(0);
  }
  const auto batches = make_batches(pos, parent, 32);
  ASSERT_EQ(batches.size(), 2u);
  double max_lo = -1e9, min_hi = 1e9;
  for (auto id : batches[0].points) max_lo = std::max(max_lo, pos[id].z);
  for (auto id : batches[1].points) min_hi = std::min(min_hi, pos[id].z);
  // One batch entirely below the other in z (order may swap).
  EXPECT_TRUE(max_lo < min_hi || min_hi > max_lo - 64);
  const bool disjoint = (max_lo < min_hi) ||
                        [&] {
                          double max_hi = -1e9, min_lo = 1e9;
                          for (auto id : batches[1].points)
                            max_hi = std::max(max_hi, pos[id].z);
                          for (auto id : batches[0].points)
                            min_lo = std::min(min_lo, pos[id].z);
                          return max_hi < min_lo;
                        }();
  EXPECT_TRUE(disjoint);
}

TEST(Batches, BalancedSizes) {
  Rng rng(33);
  std::vector<Vec3> pos;
  std::vector<std::uint32_t> parent;
  for (int i = 0; i < 1000; ++i) {
    pos.push_back({rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5)});
    parent.push_back(static_cast<std::uint32_t>(rng.uniform_index(10)));
  }
  const auto batches = make_batches(pos, parent, 100);
  for (const auto& b : batches) {
    EXPECT_GE(b.size(), 50u);  // median splits keep halves within 2x
    EXPECT_LE(b.size(), 100u);
  }
}

}  // namespace
