// Tests for the frequency-dependent DFPT extension: alpha(omega) from the
// dynamic Sternheimer amplitudes.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/dfpt.hpp"
#include "core/structures.hpp"
#include "scf/scf_solver.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::core;

const scf::ScfResult& ground_h2() {
  static const scf::ScfResult res = [] {
    grid::Structure s;
    s.add_atom(1, {0, 0, -0.7});
    s.add_atom(1, {0, 0, 0.7});
    scf::ScfOptions opt;
    opt.tier = basis::BasisTier::Light;
    opt.grid.radial_points = 36;
    opt.grid.angular_degree = 9;
    opt.poisson.radial_points = 72;
    opt.mixer = scf::Mixer::Diis;
    return scf::ScfSolver(s, opt).run();
  }();
  return res;
}

double alpha_zz_at(double omega) {
  DfptOptions opt;
  opt.frequency = omega;
  opt.tolerance = 1e-8;
  const DfptSolver dfpt(ground_h2(), opt);
  const auto r = dfpt.solve_direction(2);
  EXPECT_TRUE(r.converged) << "omega=" << omega;
  return r.dipole_response.z;
}

TEST(DynamicResponse, ZeroFrequencyReproducesStaticPath) {
  DfptOptions stat;
  stat.tolerance = 1e-9;
  DfptOptions dyn = stat;
  dyn.frequency = 0.0;
  const DfptSolver a(ground_h2(), stat), b(ground_h2(), dyn);
  const auto ra = a.solve_direction(2);
  const auto rb = b.solve_direction(2);
  EXPECT_NEAR(ra.dipole_response.z, rb.dipole_response.z, 1e-10);
}

TEST(DynamicResponse, DispersionIsNormalBelowFirstExcitation) {
  // alpha(omega) rises monotonically with omega below the first pole
  // (normal dispersion, Kramers-Kronig).
  const double a0 = alpha_zz_at(0.0);
  const double a1 = alpha_zz_at(0.05);
  const double a2 = alpha_zz_at(0.10);
  const double a3 = alpha_zz_at(0.15);
  EXPECT_GT(a1, a0);
  EXPECT_GT(a2, a1);
  EXPECT_GT(a3, a2);
  // Dispersion is quadratic at small omega: the Cauchy expansion
  // alpha(w) ~ alpha(0) + S(-4) w^2 predicts (a2-a0) ~ 4 (a1-a0).
  EXPECT_NEAR((a2 - a0) / (a1 - a0), 4.0, 0.5);
}

TEST(DynamicResponse, GrowsRapidlyApproachingResonance) {
  const auto& g = ground_h2();
  const double gap = g.lumo - g.homo;
  ASSERT_GT(gap, 0.2);
  const double near = alpha_zz_at(0.8 * gap);
  const double mid = alpha_zz_at(0.4 * gap);
  EXPECT_GT(near, 1.5 * mid);
}

TEST(DynamicResponse, ResonanceFrequencyRejected) {
  const auto& g = ground_h2();
  DfptOptions opt;
  opt.frequency = g.lumo - g.homo;  // exactly on the HOMO->LUMO pole
  const DfptSolver dfpt(g, opt);
  EXPECT_THROW(dfpt.solve_direction(2), Error);
}

TEST(DynamicResponse, TraceAndMomentStillAgree) {
  DfptOptions opt;
  opt.frequency = 0.08;
  const DfptSolver dfpt(ground_h2(), opt);
  const auto r = dfpt.solve_direction(2);
  for (int axis = 0; axis < 3; ++axis)
    EXPECT_NEAR(r.dipole_response[axis], r.dipole_response_trace[axis], 1e-8);
}

}  // namespace
