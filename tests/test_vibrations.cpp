// Tests for core/vibrations.hpp: finite-difference Hessians and harmonic
// normal-mode analysis on H2.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "core/vibrations.hpp"
#include "grid/structure.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::core;

grid::Structure h2() {
  grid::Structure s;
  s.add_atom(1, {0, 0, -0.7});
  s.add_atom(1, {0, 0, 0.7});
  return s;
}

HessianOptions coarse_options() {
  HessianOptions opt;
  opt.displacement = 0.02;
  opt.scf.tier = basis::BasisTier::Minimal;
  opt.scf.grid.radial_points = 36;
  opt.scf.grid.angular_degree = 9;
  opt.scf.poisson.radial_points = 72;
  opt.scf.density_tolerance = 1e-8;
  opt.scf.max_iterations = 200;
  return opt;
}

TEST(AtomicMass, KnownValues) {
  EXPECT_NEAR(atomic_mass(1), 1.008, 1e-3);
  EXPECT_NEAR(atomic_mass(8), 15.999, 1e-3);
  EXPECT_THROW(atomic_mass(92), Error);
}

TEST(Vibrations, H2StretchFrequencyAndSoftModes) {
  const auto structure = h2();
  const auto hess = energy_hessian(structure, coarse_options());

  // The Hessian is symmetric and translationally invariant: each row sums
  // to ~0 over equivalent coordinates of the two atoms.
  EXPECT_LT(hess.max_abs_diff(hess.transposed()), 1e-12);
  for (std::size_t i = 0; i < 6; ++i) {
    const double pair_sum = hess(i, i % 3) + hess(i, 3 + i % 3);
    EXPECT_NEAR(pair_sum, 0.0, 0.02) << "row " << i;
  }

  const auto modes = harmonic_analysis(structure, hess);
  ASSERT_EQ(modes.frequencies_cm.size(), 6u);

  // Exactly one hard mode (the stretch); the 5 translations/rotations are
  // at least an order of magnitude softer.
  std::vector<double> mags;
  for (double f : modes.frequencies_cm) mags.push_back(std::fabs(f));
  std::sort(mags.begin(), mags.end());
  const double stretch = mags.back();
  EXPECT_GT(stretch, 3000.0);  // LDA H2 stretch ~4200 cm^-1
  EXPECT_LT(stretch, 6500.0);
  EXPECT_LT(mags[4], 0.25 * stretch);

  // The stretch mode displaces the atoms along +-z.
  std::size_t stretch_col = 0;
  for (std::size_t p = 0; p < 6; ++p)
    if (std::fabs(modes.frequencies_cm[p]) == stretch) stretch_col = p;
  const auto& m = modes.cartesian_modes;
  EXPECT_GT(std::fabs(m(2, stretch_col)), 10.0 * std::fabs(m(0, stretch_col)));
  EXPECT_LT(m(2, stretch_col) * m(5, stretch_col), 0.0);  // opposite signs
}

TEST(Vibrations, HessianValidation) {
  grid::Structure single;
  single.add_atom(1, {0, 0, 0});
  EXPECT_THROW(energy_hessian(single, coarse_options()), Error);
  HessianOptions bad = coarse_options();
  bad.displacement = 0.0;
  EXPECT_THROW(energy_hessian(h2(), bad), Error);
  linalg::Matrix wrong(3, 3);
  EXPECT_THROW(harmonic_analysis(h2(), wrong), Error);
}

}  // namespace
