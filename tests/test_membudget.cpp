// Memory-budget governor tests (membudget.hpp): the idle-probe contract
// (governor off = bit-identical runs), budget parsing, hard-ceiling
// enforcement against live memaudit gauges, deterministic allocation-fault
// injection addressed by (site, invocation, rank), the pressure-relief
// reclaimer registry, buddy-replica spill to the disk-backed store, the
// warm cache's clear()/owned-bytes audit, admission-time memory estimation
// in the solve service, and the acceptance bar: a budgeted CPSCF run hit by
// injected allocation failures walks the relief ladder and recovers a
// result within 1e-8 of the unbudgeted reference.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/thread_ident.hpp"
#include "core/dfpt.hpp"
#include "core/parallel_dfpt.hpp"
#include "grid/structure.hpp"
#include "obs/flight.hpp"
#include "obs/memaudit.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/cluster.hpp"
#include "resilience/buddy.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/membudget.hpp"
#include "resilience/recovery.hpp"
#include "scf/scf_solver.hpp"
#include "service/job.hpp"
#include "service/server.hpp"
#include "service/warm_cache.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::resilience;

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// The governor and the observability layers are process-global; every test
/// starts and ends fully disarmed so state cannot leak across tests.
class MembudgetTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::set_mode(obs::TraceMode::Off);
    obs::set_flight(false);
    obs::reset();
    obs::reset_counters();
    install_oom_hook(nullptr);
    set_mem_budget(0);
    set_mem_soft_percent(80);
    obs::set_memaudit(false);
    obs::reset_mem_gauges();
  }
  void TearDown() override { SetUp(); }
};

const scf::ScfResult& ground_h2() {
  static const scf::ScfResult res = [] {
    grid::Structure s;
    s.add_atom(1, {0, 0, -0.7});
    s.add_atom(1, {0, 0, 0.7});
    scf::ScfOptions opt;
    opt.tier = basis::BasisTier::Light;
    opt.grid.radial_points = 30;
    opt.grid.angular_degree = 9;
    opt.poisson.radial_points = 72;
    return scf::ScfSolver(s, opt).run();
  }();
  return res;
}

// ---------------------------------------------------------------------------
// Budget parsing and arming semantics

TEST_F(MembudgetTest, ParseMemBytesAcceptsSuffixesRejectsGarbage) {
  using membudget_detail::parse_mem_bytes;
  EXPECT_EQ(parse_mem_bytes("1024"), 1024);
  EXPECT_EQ(parse_mem_bytes("64K"), std::int64_t{64} << 10);
  EXPECT_EQ(parse_mem_bytes("512M"), std::int64_t{512} << 20);
  EXPECT_EQ(parse_mem_bytes("512m"), std::int64_t{512} << 20);
  EXPECT_EQ(parse_mem_bytes("512MB"), std::int64_t{512} << 20);
  EXPECT_EQ(parse_mem_bytes("512MiB"), std::int64_t{512} << 20);
  EXPECT_EQ(parse_mem_bytes("8G"), std::int64_t{8} << 30);
  EXPECT_EQ(parse_mem_bytes("1T"), std::int64_t{1} << 40);
  EXPECT_EQ(parse_mem_bytes("1.5G"), (std::int64_t{3} << 30) / 2);
  // Malformed input disarms (-1) instead of silently enforcing 0.
  EXPECT_EQ(parse_mem_bytes(nullptr), -1);
  EXPECT_EQ(parse_mem_bytes(""), -1);
  EXPECT_EQ(parse_mem_bytes("abc"), -1);
  EXPECT_EQ(parse_mem_bytes("12X"), -1);
  EXPECT_EQ(parse_mem_bytes("-5"), -1);
  EXPECT_EQ(parse_mem_bytes("512Mfoo"), -1);
}

TEST_F(MembudgetTest, IdleGovernorProbeIsInert) {
  EXPECT_FALSE(mem_budget_enabled());
  EXPECT_EQ(mem_budget_bytes(), 0);
  EXPECT_NO_THROW(oom_probe("test/idle", std::size_t{1} << 40));
  const MemPressure p = mem_pressure();
  EXPECT_EQ(p.budget_bytes, 0);
  EXPECT_FALSE(p.over_soft);
}

TEST_F(MembudgetTest, SetBudgetArmsGovernorAndMemaudit) {
  set_mem_budget(std::int64_t{1} << 20);
  EXPECT_TRUE(mem_budget_enabled());
  EXPECT_EQ(mem_budget_bytes(), std::int64_t{1} << 20);
  // The gauges are the governor's only data source, so arming the budget
  // must arm the audit too.
  EXPECT_TRUE(obs::memaudit_enabled());
  set_mem_budget(0);
  EXPECT_FALSE(mem_budget_enabled());
}

// ---------------------------------------------------------------------------
// Hard-ceiling enforcement against live gauges

TEST_F(MembudgetTest, HardBreachThrowsStructuredOutOfMemoryBudget) {
  set_mem_budget(std::int64_t{1} << 20);  // 1 MiB
  obs::mem_track("test/ballast", 900 * 1024);
  const std::uint64_t throws_before =
      obs::counter("membudget/oom_throws").value();

  // A request that fits is admitted without any observable effect.
  EXPECT_NO_THROW(oom_probe("test/fits", 50 * 1024));
  // A request that would cross the ceiling throws the structured error.
  try {
    oom_probe("test/site", 200 * 1024);
    FAIL() << "over-budget probe did not throw";
  } catch (const OutOfMemoryBudget& e) {
    EXPECT_EQ(e.site(), "test/site");
    EXPECT_EQ(e.requested_bytes(), 200u * 1024u);
    EXPECT_EQ(e.budget_bytes(), std::size_t{1} << 20);
    EXPECT_GE(e.in_use_bytes(), 900u * 1024u);
    EXPECT_NE(std::string(e.what()).find("out of memory budget"),
              std::string::npos);
  }
  EXPECT_EQ(obs::counter("membudget/oom_throws").value(), throws_before + 1);

  // request_bytes == 0 re-checks committed usage: still under, passes.
  EXPECT_NO_THROW(oom_probe("test/recheck", 0));
  obs::mem_track("test/ballast", 200 * 1024);  // now 1100 KiB > 1 MiB
  EXPECT_THROW(oom_probe("test/recheck", 0), OutOfMemoryBudget);
  obs::mem_track("test/ballast", -1100 * 1024);
}

TEST_F(MembudgetTest, SoftWatermarkTracksGaugesWithoutThrowing) {
  set_mem_budget(std::int64_t{1} << 20);
  obs::mem_track("test/ballast", 900 * 1024);  // 88% of the budget
  MemPressure p = mem_pressure();
  EXPECT_TRUE(p.over_soft);  // default soft watermark is 80%
  EXPECT_EQ(p.soft_bytes, (std::int64_t{1} << 20) * 80 / 100);
  set_mem_soft_percent(95);
  EXPECT_FALSE(mem_pressure().over_soft);
  // Crossing soft never throws -- only the hard ceiling does.
  EXPECT_NO_THROW(oom_probe("test/soft", 0));
  obs::mem_track("test/ballast", -900 * 1024);
}

// ---------------------------------------------------------------------------
// Deterministic allocation-fault injection

TEST_F(MembudgetTest, TransientInjectionFiresExactlyOnceAtItsInvocation) {
  OomPlan plan;
  plan.add({"test/a", /*invocation=*/1, /*rank=*/-1, /*transient=*/true});
  OomInjector injector(std::move(plan));
  ScopedOomInjector scoped(injector);

  EXPECT_NO_THROW(oom_probe("test/a", 64));   // invocation 0: too early
  EXPECT_NO_THROW(oom_probe("test/b", 64));   // other site: no advance of a
  EXPECT_THROW(oom_probe("test/a", 64), OutOfMemoryBudget);  // invocation 1
  EXPECT_NO_THROW(oom_probe("test/a", 64));   // exhausted
  EXPECT_EQ(injector.stats().failures_injected, 1u);
  EXPECT_EQ(injector.stats().probes, 4u);
  EXPECT_EQ(injector.pending(), 0u);
  EXPECT_EQ(injector.invocations("test/a"), 3u);
  EXPECT_EQ(injector.invocations("test/b"), 1u);
}

TEST_F(MembudgetTest, PermanentInjectionKeepsFailingLikeAFullHeap) {
  OomPlan plan;
  plan.add({"test/perm", /*invocation=*/1, /*rank=*/-1, /*transient=*/false});
  OomInjector injector(std::move(plan));
  ScopedOomInjector scoped(injector);

  EXPECT_NO_THROW(oom_probe("test/perm", 1));  // before its invocation
  EXPECT_THROW(oom_probe("test/perm", 1), OutOfMemoryBudget);
  EXPECT_THROW(oom_probe("test/perm", 1), OutOfMemoryBudget);
  EXPECT_EQ(injector.stats().failures_injected, 2u);
}

TEST_F(MembudgetTest, RankFilterOnlyStrikesTheAddressedRank) {
  OomPlan plan;
  plan.add({"test/rank", /*invocation=*/0, /*rank=*/3, /*transient=*/true});
  OomInjector injector(std::move(plan));
  ScopedOomInjector scoped(injector);

  EXPECT_NO_THROW(oom_probe("test/rank", 1));  // main thread: rank -1
  {
    ScopedThreadRank as_rank(3);
    // invocation already advanced past 0 -- re-plan with a fresh injector
  }
  OomPlan plan2;
  plan2.add({"test/rank2", /*invocation=*/0, /*rank=*/3, /*transient=*/true});
  OomInjector injector2(std::move(plan2));
  install_oom_hook(&injector2);
  {
    ScopedThreadRank as_rank(3);
    EXPECT_THROW(oom_probe("test/rank2", 1), OutOfMemoryBudget);
  }
  install_oom_hook(nullptr);
  EXPECT_EQ(injector2.stats().failures_injected, 1u);
}

TEST_F(MembudgetTest, PlanRejectsEmptySiteAndMetricsSourceReports) {
  OomPlan plan;
  EXPECT_THROW(plan.add({"", 0, -1, true}), Error);
  plan.add({"test/m", 0, -1, true});
  OomInjector injector(std::move(plan));
  const auto reg = resilience::register_metrics(injector);
  ScopedOomInjector scoped(injector);
  EXPECT_THROW(oom_probe("test/m", 1), OutOfMemoryBudget);
  bool saw_probes = false, saw_failures = false;
  for (const auto& s : obs::metrics_snapshot()) {
    if (s.name == "membudget/inject/probes") saw_probes = s.value >= 1.0;
    if (s.name == "membudget/inject/failures_injected")
      saw_failures = s.value >= 1.0;
  }
  EXPECT_TRUE(saw_probes);
  EXPECT_TRUE(saw_failures);
}

// ---------------------------------------------------------------------------
// Pressure-relief reclaimer registry

TEST_F(MembudgetTest, ReclaimersRunInOrderAndStopUnderTheSoftWatermark) {
  obs::set_memaudit(true);
  obs::mem_track("test/ballast", 900 * 1024);
  set_mem_budget(std::int64_t{1} << 20);

  const std::size_t live_before = registered_reclaimer_count();
  int first_calls = 0, second_calls = 0;
  {
    ScopedMemReclaimer first("drop_ballast", [&] {
      ++first_calls;
      obs::mem_track("test/ballast", -900 * 1024);
      return std::int64_t{900 * 1024};
    });
    ScopedMemReclaimer second("never_needed", [&] {
      ++second_calls;
      return std::int64_t{0};
    });
    EXPECT_EQ(registered_reclaimer_count(), live_before + 2);
    const std::int64_t freed = relieve_pressure();
    EXPECT_EQ(freed, 900 * 1024);
    // The first reclaimer brought usage under soft, so the second never ran.
    EXPECT_EQ(first_calls, 1);
    EXPECT_EQ(second_calls, 0);
  }
  EXPECT_EQ(registered_reclaimer_count(), live_before);
}

TEST_F(MembudgetTest, ManualReliefWithoutBudgetRunsEveryReclaimer) {
  int calls = 0;
  ScopedMemReclaimer a("a", [&] { ++calls; return std::int64_t{16}; });
  ScopedMemReclaimer b("b", [&] { ++calls; return std::int64_t{0}; });
  EXPECT_EQ(relieve_pressure(), 16);
  EXPECT_EQ(calls, 2);
}

// ---------------------------------------------------------------------------
// Checkpoint raw-blob tier and buddy spill

TEST_F(MembudgetTest, RawBlobSaveLoadRoundTripAndMissingKey) {
  CheckpointStore store(fresh_dir("membudget_blob"));
  const std::vector<unsigned char> blob{1, 2, 3, 250, 251, 252};
  store.save_blob("spill-test", blob);
  const auto back = store.try_load_blob("spill-test");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, blob);
  EXPECT_FALSE(store.try_load_blob("no-such-key").has_value());
}

TEST_F(MembudgetTest, BuddySpillFreesGaugeAndSurvivesHolderDeath) {
  obs::set_memaudit(true);
  CheckpointStore store(fresh_dir("membudget_spill"));
  BuddyReplicator buddy(2);
  buddy.set_spill_store(&store);

  CpscfCheckpoint ckpt;
  ckpt.iteration = 2;
  ckpt.p1 = linalg::Matrix(6, 6);
  for (std::size_t i = 0; i < 6; ++i) ckpt.p1(i, i) = 1.0 + double(i);
  const auto blob = serialize(ckpt);

  parallel::Cluster cluster(2, 2);
  cluster.run([&](parallel::Communicator& comm) {
    buddy.replicate(comm, blob);
  });

  const auto gauge_bytes = [] {
    for (const auto& g : obs::mem_snapshot())
      if (g.name == "resilience/buddy_replicas") return g.current_bytes;
    return std::int64_t{0};
  };
  ASSERT_GT(gauge_bytes(), 0);

  const std::int64_t freed = buddy.spill();
  EXPECT_EQ(freed, static_cast<std::int64_t>(2 * blob.size()));
  EXPECT_EQ(gauge_bytes(), 0);  // resident replica bytes fully released
  EXPECT_EQ(buddy.stats().blobs_spilled, 2u);
  EXPECT_EQ(buddy.stats().bytes_spilled, 2 * blob.size());
  EXPECT_EQ(buddy.spill(), 0);  // idempotent: nothing resident to spill

  // blob_of transparently reloads the spilled bytes from the store.
  const auto replica = buddy.blob_of(0);
  ASSERT_TRUE(replica.has_value());
  EXPECT_EQ(replica->bytes, std::vector<unsigned char>(blob.begin(), blob.end()));
  EXPECT_NO_THROW((void)deserialize_cpscf(replica->bytes));

  // A spilled replica survives its holder's death: the bytes live on
  // shared disk, not in the dead rank's memory.
  const std::size_t holder = replica->holder;
  EXPECT_EQ(buddy.drop_holder(holder), 0u);
  EXPECT_TRUE(buddy.blob_of(0).has_value());
}

// ---------------------------------------------------------------------------
// Warm-cache owned-bytes audit, clear(), budget-aware puts

TEST_F(MembudgetTest, WarmCacheClearReturnsGaugeToZero) {
  obs::set_memaudit(true);
  service::WarmCache cache({});
  auto r = std::make_shared<scf::ScfResult>();
  r->density_matrix = linalg::Matrix(8, 8);
  r->overlap = linalg::Matrix(8, 8);
  cache.put_ground(11, std::shared_ptr<const scf::ScfResult>(r));
  cache.put_density(22, linalg::Matrix(8, 8));

  const auto gauge_bytes = [] {
    for (const auto& g : obs::mem_snapshot())
      if (g.name == "service/warm_cache") return g.current_bytes;
    return std::int64_t{0};
  };
  const std::int64_t owned = cache.owned_bytes();
  ASSERT_GT(owned, 0);
  // The internal audit and the global gauge agree byte for byte.
  EXPECT_EQ(gauge_bytes(), owned);

  EXPECT_EQ(cache.clear(), owned);
  EXPECT_EQ(cache.owned_bytes(), 0);
  EXPECT_EQ(gauge_bytes(), 0);  // the regression bar: gauge returns to zero
  EXPECT_EQ(cache.ground_size(), 0u);
  EXPECT_EQ(cache.density_size(), 0u);
  EXPECT_EQ(cache.clear(), 0);  // idempotent
}

TEST_F(MembudgetTest, WarmCachePutSkipsUnderMemoryPressure) {
  set_mem_budget(std::int64_t{1} << 20);
  obs::mem_track("test/ballast", 900 * 1024);  // over the 80% soft mark

  service::WarmCache cache({});
  auto r = std::make_shared<scf::ScfResult>();
  r->density_matrix = linalg::Matrix(4, 4);
  cache.put_ground(1, std::shared_ptr<const scf::ScfResult>(r));
  cache.put_density(2, linalg::Matrix(4, 4));
  // Best-effort admission: under pressure the inserts are skipped, counted,
  // and the job is unaffected.
  EXPECT_EQ(cache.ground_size(), 0u);
  EXPECT_EQ(cache.density_size(), 0u);
  EXPECT_EQ(cache.stats().budget_skips, 2u);

  obs::mem_track("test/ballast", -900 * 1024);
  cache.put_density(2, linalg::Matrix(4, 4));
  EXPECT_EQ(cache.density_size(), 1u);  // pressure gone, puts admitted again
}

// ---------------------------------------------------------------------------
// Admission-time memory estimation

TEST_F(MembudgetTest, EstimateGrowsWithAtomsAndShrinksWithRanks) {
  const MemModel model = MemModel::default_model();
  const auto est = [&](std::size_t atoms, std::size_t ranks) {
    return estimate_job_memory(atoms, ranks, model);
  };
  EXPECT_GT(est(8, 1), est(2, 1));
  EXPECT_GT(est(64, 1), est(8, 1));
  // Sharded terms divide by ranks, so more ranks = smaller per-rank
  // footprint -- and symmetrically, the ReducedRanks degradation rung
  // RAISES the estimate, which is why the service re-checks it.
  EXPECT_GT(est(16, 1), est(16, 4));
  EXPECT_GT(est(16, 2), est(16, 4));
  EXPECT_THROW((void)est(4, 0), Error);
}

TEST_F(MembudgetTest, ServiceRejectsJobsEstimatedOverBudget) {
  service::ServerOptions opt;
  opt.workers = 1;
  opt.queue_capacity = 2;
  opt.checkpoint_dir = fresh_dir("membudget_admission");
  service::SolveServer server(opt);
  // The server registers its warm cache as a relief reclaimer.
  EXPECT_GE(registered_reclaimer_count(), 1u);

  grid::Structure s;
  s.add_atom(1, {0, 0, -0.7});
  s.add_atom(1, {0, 0, 0.7});
  service::JobSpec spec;
  spec.structure = s;
  spec.scf.tier = basis::BasisTier::Light;
  spec.scf.grid.radial_points = 36;
  spec.scf.grid.angular_degree = 9;
  spec.scf.poisson.radial_points = 72;
  spec.dfpt.tolerance = 1e-6;
  spec.deadline = std::chrono::milliseconds(60000);

  // The default model estimates a couple of MiB even for H2 (the packed
  // staging window dominates); a 1 MiB budget cannot admit it.
  set_mem_budget(std::int64_t{1} << 20);
  try {
    (void)server.submit(spec);
    FAIL() << "over-budget job was admitted";
  } catch (const JobRejected& e) {
    EXPECT_EQ(e.kind(), "MemoryBudgetExceeded");
    EXPECT_NE(std::string(e.what()).find("memory"), std::string::npos);
  }
  EXPECT_EQ(server.stats().rejected_memory, 1u);
  EXPECT_EQ(server.stats().rejected_invalid, 0u);

  // With no budget armed the same job is admissible (shed it via shutdown
  // rather than burning a full solve here).
  set_mem_budget(0);
  EXPECT_NO_THROW((void)server.submit(spec));
  server.shutdown();
}

// ---------------------------------------------------------------------------
// Governor-idle / armed-but-unbreached bit-identity

TEST_F(MembudgetTest, ArmedButUnbreachedBudgetIsBitIdenticalToIdle) {
  const auto& ground = ground_h2();
  ASSERT_TRUE(ground.converged);
  core::DfptOptions dopt;
  dopt.tolerance = 1e-8;
  core::ParallelDfptOptions popt;
  popt.dfpt = dopt;
  popt.ranks = 2;
  popt.ranks_per_node = 2;

  // Governor fully idle: the probes are one relaxed load each.
  const auto idle = core::solve_direction_parallel(ground, popt, 2);
  ASSERT_TRUE(idle.direction.converged);

  // A huge budget arms every probe site (and the memory audit) but never
  // trips; a passing probe returns no verdict, so the run must be
  // bit-for-bit identical.
  set_mem_budget(std::int64_t{1} << 40);
  const auto armed = core::solve_direction_parallel(ground, popt, 2);
  set_mem_budget(0);
  ASSERT_TRUE(armed.direction.converged);
  EXPECT_EQ(armed.direction.iterations, idle.direction.iterations);
  EXPECT_EQ(armed.direction.p1.max_abs_diff(idle.direction.p1), 0.0);
  EXPECT_EQ(armed.direction.dipole_response.z, idle.direction.dipole_response.z);
}

// ---------------------------------------------------------------------------
// The relief ladder end to end

// Acceptance bar: an injected allocation failure at the point-eval cache
// surfaces as a structured OutOfMemoryBudget, the RecoveryDriver walks the
// relief ladder (rung 1: shed the cache, re-evaluate on the fly), and the
// recovered run matches the unbudgeted reference to 1e-8.
TEST_F(MembudgetTest, InjectedOomIsRelievedAndRecoversTheReference) {
  const auto& ground = ground_h2();
  core::DfptOptions dopt;
  dopt.tolerance = 1e-8;
  const auto ref = core::DfptSolver(ground, dopt).solve_direction(2);
  ASSERT_TRUE(ref.converged);

  OomPlan plan;
  plan.add({"dfpt/point_cache", /*invocation=*/0, /*rank=*/-1,
            /*transient=*/false});  // permanent: the cache NEVER fits
  OomInjector injector(std::move(plan));
  ScopedOomInjector scoped(injector);

  core::ParallelDfptOptions popt;
  popt.dfpt = dopt;
  popt.ranks = 2;
  popt.ranks_per_node = 2;

  CheckpointStore store(fresh_dir("membudget_relief"));
  RecoveryOptions ropt;
  ropt.max_retries = 3;
  RecoveryDriver driver(store, ropt);
  const auto rec = driver.solve_direction_parallel(ground, popt, 2);

  EXPECT_GE(injector.stats().failures_injected, 1u);
  EXPECT_TRUE(rec.direction.converged);
  EXPECT_GE(driver.last_stats().oom_events, 1u);
  EXPECT_GE(driver.last_stats().relief_actions, 1u);
  // Rung 1 re-evaluates basis points on the fly instead of caching them --
  // the arithmetic is identical, so the recovered answer matches the
  // reference within the acceptance tolerance.
  EXPECT_LT(rec.direction.p1.max_abs_diff(ref.p1), 1e-8);
  EXPECT_NEAR(rec.direction.dipole_response.z, ref.dipole_response.z, 1e-8);
}

TEST_F(MembudgetTest, WithoutReliefTheBudgetExhaustsStructurally) {
  const auto& ground = ground_h2();
  core::DfptOptions dopt;
  dopt.tolerance = 1e-8;

  OomPlan plan;
  plan.add({"dfpt/point_cache", /*invocation=*/0, /*rank=*/-1,
            /*transient=*/false});
  OomInjector injector(std::move(plan));
  ScopedOomInjector scoped(injector);

  core::ParallelDfptOptions popt;
  popt.dfpt = dopt;
  popt.ranks = 2;
  popt.ranks_per_node = 2;

  CheckpointStore store(fresh_dir("membudget_norelief"));
  RecoveryOptions ropt;
  ropt.max_retries = 1;
  ropt.memory_relief = false;  // surface the breach unrelieved
  RecoveryDriver driver(store, ropt);
  EXPECT_THROW((void)driver.solve_direction_parallel(ground, popt, 2),
               OutOfMemoryBudget);
  EXPECT_GE(driver.last_stats().oom_events, 2u);
  EXPECT_EQ(driver.last_stats().relief_actions, 0u);
}

// Soft-watermark relief mid-CPSCF: usage sits over the watermark (but under
// the ceiling) when the solve starts; the driver's observer polls the
// pressure between iterations and runs the registered reclaimers, and the
// result matches the unpressured reference.
TEST_F(MembudgetTest, SoftWatermarkCrossingMidCpscfTriggersRelief) {
  const auto& ground = ground_h2();
  core::DfptOptions dopt;
  dopt.tolerance = 1e-8;
  const auto ref = core::DfptSolver(ground, dopt).solve_direction(2);
  ASSERT_TRUE(ref.converged);

  set_mem_budget(std::int64_t{64} << 20);       // 64 MiB ceiling
  obs::mem_track("test/ballast", 60 * 1024 * 1024);  // 94% in use
  int reclaims = 0;
  ScopedMemReclaimer shed("test_ballast", [&] {
    ++reclaims;
    obs::mem_track("test/ballast", -60 * 1024 * 1024);
    return std::int64_t{60} * 1024 * 1024;
  });

  CheckpointStore store(fresh_dir("membudget_soft"));
  RecoveryOptions ropt;
  ropt.max_retries = 1;
  RecoveryDriver driver(store, ropt);
  const auto rec = driver.solve_direction(ground, dopt, 2);

  EXPECT_EQ(reclaims, 1);  // shed once, then the pressure is gone
  EXPECT_GE(driver.last_stats().relief_actions, 1u);
  EXPECT_EQ(driver.last_stats().oom_events, 0u);  // never reached the ceiling
  EXPECT_TRUE(rec.converged);
  EXPECT_EQ(rec.p1.max_abs_diff(ref.p1), 0.0);  // relief read, never wrote
}

}  // namespace
