// Tests for linalg/lu.hpp (general LU solver) and scf/diis.hpp (Pulay
// mixing), including an SCF integration test showing DIIS converges at
// least as fast as linear mixing.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/structures.hpp"
#include "linalg/eigen.hpp"
#include "linalg/lu.hpp"
#include "scf/diis.hpp"
#include "scf/scf_solver.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::linalg;

Matrix random_matrix(std::size_t n, Rng& rng) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) m(i, j) = rng.uniform(-1, 1);
  return m;
}

TEST(Lu, SolvesHandComputedSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 3;
  const Vector x = solve_linear(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-14);
  EXPECT_NEAR(x[1], 3.0, 1e-14);
}

class LuProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuProperty, ResidualSmallForRandomSystems) {
  Rng rng(400 + GetParam());
  const Matrix a = random_matrix(GetParam(), rng);
  Vector b(GetParam());
  for (auto& v : b) v = rng.uniform(-2, 2);
  const Vector x = solve_linear(a, b);
  const Vector ax = matvec(a, x);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuProperty, ::testing::Values(1, 2, 5, 13, 40));

TEST(Lu, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 0;
  const Vector x = solve_linear(a, {3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-14);
  EXPECT_NEAR(x[1], 3.0, 1e-14);
}

TEST(Lu, SingularThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 2; a(1, 1) = 4;
  EXPECT_THROW(LuDecomposition{a}, Error);
}

TEST(Lu, DeterminantMatchesKnownValues) {
  Matrix a(2, 2);
  a(0, 0) = 3; a(0, 1) = 1; a(1, 0) = 4; a(1, 1) = 2;
  EXPECT_NEAR(LuDecomposition(a).determinant(), 2.0, 1e-12);
  EXPECT_NEAR(LuDecomposition(Matrix::identity(5)).determinant(), 1.0, 1e-14);
}

TEST(Lu, DeterminantSignTracksPermutations) {
  Matrix a(2, 2);
  a(0, 1) = 1; a(1, 0) = 1;  // swap matrix, det = -1
  EXPECT_NEAR(LuDecomposition(a).determinant(), -1.0, 1e-14);
}

TEST(Diis, ResidualVanishesAtSelfConsistency) {
  // If [H, P S] = 0 (commuting), the residual is zero: take H and S = I and
  // P built from H's eigenvectors.
  Rng rng(9);
  Matrix h = random_matrix(6, rng);
  h.symmetrize();
  const auto sol = linalg::symmetric_eigen(h);
  Matrix p(6, 6);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t mu = 0; mu < 6; ++mu)
      for (std::size_t nu = 0; nu < 6; ++nu)
        p(mu, nu) += 2.0 * sol.eigenvectors(mu, i) * sol.eigenvectors(nu, i);
  const Matrix e = scf::DiisMixer::residual(h, p, Matrix::identity(6));
  EXPECT_LT(e.max_abs(), 1e-10);
}

TEST(Diis, FirstCallReturnsInputUnchanged) {
  scf::DiisMixer mixer(4);
  Rng rng(10);
  Matrix h = random_matrix(4, rng);
  h.symmetrize();
  const Matrix p = Matrix::identity(4);
  const Matrix out = mixer.extrapolate(h, p, Matrix::identity(4));
  EXPECT_LT(out.max_abs_diff(h), 1e-15);
  EXPECT_EQ(mixer.history_size(), 1u);
}

TEST(Diis, HistoryIsBounded) {
  scf::DiisMixer mixer(3);
  Rng rng(11);
  const Matrix s = Matrix::identity(5);
  for (int k = 0; k < 10; ++k) {
    Matrix h = random_matrix(5, rng);
    h.symmetrize();
    (void)mixer.extrapolate(h, Matrix::identity(5), s);
  }
  EXPECT_LE(mixer.history_size(), 3u);
}

TEST(Diis, CoefficientsSumToOneImplicitly) {
  // Extrapolating from a history of identical Hamiltonians returns that
  // Hamiltonian (any convex combination of equal entries).
  scf::DiisMixer mixer(4);
  Rng rng(12);
  Matrix h = random_matrix(4, rng);
  h.symmetrize();
  Matrix p = random_matrix(4, rng);
  p.symmetrize();
  const Matrix s = Matrix::identity(4);
  (void)mixer.extrapolate(h, p, s);
  // A second identical pair makes B singular; the mixer must recover
  // gracefully and still return a valid Hamiltonian.
  const Matrix out = mixer.extrapolate(h, p, s);
  EXPECT_LT(out.max_abs_diff(h), 1e-10);
}

TEST(Diis, RejectsTinyHistory) {
  EXPECT_THROW(scf::DiisMixer(1), Error);
}

TEST(ScfDiis, ConvergesWaterAndMatchesLinearMixing) {
  scf::ScfOptions linear;
  linear.tier = basis::BasisTier::Minimal;
  linear.grid.radial_points = 36;
  linear.grid.angular_degree = 9;
  linear.poisson.radial_points = 72;
  linear.density_tolerance = 1e-6;

  scf::ScfOptions diis = linear;
  diis.mixer = scf::Mixer::Diis;

  const auto mol = core::water();
  const auto r_lin = scf::ScfSolver(mol, linear).run();
  const auto r_diis = scf::ScfSolver(mol, diis).run();
  ASSERT_TRUE(r_lin.converged);
  ASSERT_TRUE(r_diis.converged);
  // Same fixed point...
  EXPECT_NEAR(r_lin.total_energy, r_diis.total_energy, 1e-5);
  // ...reached at least as fast.
  EXPECT_LE(r_diis.iterations, r_lin.iterations);
}

}  // namespace
