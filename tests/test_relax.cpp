// Tests for core/relax.hpp: finite-difference geometry relaxation.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/dfpt.hpp"
#include "core/relax.hpp"
#include "grid/structure.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::core;

RelaxOptions fast_options() {
  RelaxOptions opt;
  opt.scf.tier = basis::BasisTier::Minimal;
  opt.scf.grid.radial_points = 32;
  opt.scf.grid.angular_degree = 9;
  opt.scf.poisson.radial_points = 64;
  opt.scf.density_tolerance = 1e-8;
  opt.scf.max_iterations = 150;
  opt.force_tolerance = 3e-3;
  return opt;
}

grid::Structure h2_at(double r) {
  grid::Structure s;
  s.add_atom(1, {0, 0, -0.5 * r});
  s.add_atom(1, {0, 0, 0.5 * r});
  return s;
}

TEST(Relax, H2FindsEquilibriumFromBothSides) {
  const auto opt = fast_options();
  const RelaxResult from_short = relax_structure(h2_at(1.20), opt);
  const RelaxResult from_long = relax_structure(h2_at(1.75), opt);
  ASSERT_TRUE(from_short.converged);
  ASSERT_TRUE(from_long.converged);

  const double r_short =
      distance(from_short.structure.atom(0).pos, from_short.structure.atom(1).pos);
  const double r_long =
      distance(from_long.structure.atom(0).pos, from_long.structure.atom(1).pos);
  // Same minimum from both starting points...
  EXPECT_NEAR(r_short, r_long, 0.06);
  // ...in a physically sensible range for this basis (LDA H2 ~1.45 bohr).
  EXPECT_GT(r_short, 1.3);
  EXPECT_LT(r_short, 1.7);
  // Energies agree and beat the starting points.
  EXPECT_NEAR(from_short.energy, from_long.energy, 2e-4);
  EXPECT_GT(from_short.energy_evaluations, 10);
}

TEST(Relax, RelaxedEnergyIsLowerThanStart) {
  const auto opt = fast_options();
  const auto start = h2_at(1.20);
  const double e_start =
      scf::ScfSolver(start, opt.scf).run().total_energy;
  const RelaxResult res = relax_structure(start, opt);
  EXPECT_LT(res.energy, e_start - 1e-3);
  EXPECT_LT(res.max_force, 5.0 * opt.force_tolerance);
}

TEST(Relax, Validation) {
  grid::Structure single;
  single.add_atom(1, {0, 0, 0});
  EXPECT_THROW(relax_structure(single, fast_options()), Error);
}

TEST(DfptErrors, NoVirtualOrbitalsRejected) {
  // Minimal-basis H atom: one basis function, one (fractionally) occupied
  // orbital, zero virtuals -- DFPT must refuse cleanly.
  grid::Structure h;
  h.add_atom(1, {0, 0, 0});
  scf::ScfOptions opt;
  opt.tier = basis::BasisTier::Minimal;
  opt.grid.radial_points = 30;
  opt.poisson.radial_points = 64;
  const auto ground = scf::ScfSolver(h, opt).run();
  ASSERT_TRUE(ground.converged);
  EXPECT_THROW(core::DfptSolver(ground, {}), Error);
}

}  // namespace
