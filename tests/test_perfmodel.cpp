// Tests for src/perfmodel: calibration factors, phase composition, and the
// qualitative scaling behaviors the paper reports in Sec. 5.3.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "parallel/machine_model.hpp"
#include "perfmodel/dfpt_perf_model.hpp"
#include "simt/device.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::perfmodel;

const DfptPerfModel& hpc2_gpu() {
  static const DfptPerfModel model(parallel::MachineModel::hpc2_amd(),
                                   simt::DeviceModel::gcn_gpu(), true);
  return model;
}

const DfptPerfModel& hpc1() {
  static const DfptPerfModel model(parallel::MachineModel::hpc1_sunway(),
                                   simt::DeviceModel::sw39010(), true);
  return model;
}

TEST(PerfModel, CalibratedFactorsAreSensible) {
  const auto& m = hpc2_gpu();
  // Fig. 9b: phase-level dense-access gains of 7.5%-26.4%.
  EXPECT_GT(m.dense_access_factor(), 1.05);
  EXPECT_LT(m.dense_access_factor(), 1.30);
  // Fig. 12b: fusion speedups up to 2.4x on HPC#2.
  EXPECT_GT(m.fusion_factor(), 1.2);
  EXPECT_LT(m.fusion_factor(), 2.6);
  // Fig. 13: collapsing gains up to 1.34x.
  EXPECT_GT(m.collapse_factor(), 1.0);
  EXPECT_LT(m.collapse_factor(), 1.5);
  // Fig. 11: init-phase speedups well above 1.
  EXPECT_GT(m.indirect_factor(), 2.0);
}

TEST(PerfModel, SunwayGainsMoreFromIndirectElimination) {
  // Fig. 11: HPC#1 speedups (up to 6.2x) exceed HPC#2 (up to 3.9x).
  EXPECT_GT(hpc1().indirect_factor(), hpc2_gpu().indirect_factor());
}

TEST(PerfModel, OptimizationsReduceEveryCase) {
  const auto& m = hpc2_gpu();
  for (std::size_t n : {30002u, 60002u}) {
    for (std::size_t p : {1024u, 4096u}) {
      const double off = m.predict(n, p, OptimizationFlags::all_off()).total();
      const double on = m.predict(n, p, OptimizationFlags::all_on()).total();
      EXPECT_GT(off, on) << n << " atoms, " << p << " ranks";
    }
  }
}

TEST(PerfModel, MoreRanksShrinkComputePhases) {
  const auto& m = hpc2_gpu();
  const auto flags = OptimizationFlags::all_on();
  const auto a = m.predict(60002, 1024, flags);
  const auto b = m.predict(60002, 8192, flags);
  // Ideal 8x division of work, tempered by growing granularity imbalance.
  EXPECT_GT(a.rho / b.rho, 7.0);
  EXPECT_LT(a.rho / b.rho, 8.0);
  EXPECT_GT(a.sumup / b.sumup, 7.0);
  EXPECT_LT(a.sumup / b.sumup, 8.0);
}

TEST(PerfModel, DmShareGrowsWithRankCount) {
  // Fig. 15 discussion: the DM phase (compute + collectives) consumes a
  // growing share of the cycle as ranks increase (22.5% -> 39.1%).
  const auto& m = hpc2_gpu();
  const auto flags = OptimizationFlags::all_on();
  double prev_share = 0.0;
  for (std::size_t p : {1024u, 2048u, 4096u, 8192u}) {
    const auto t = m.predict(60002, p, flags);
    const double share = (t.dm + t.comm) / t.total();
    EXPECT_GT(share, prev_share) << p;
    prev_share = share;
  }
}

TEST(PerfModel, StrongScalingEfficiencyDegradesGently) {
  const auto& m = hpc1();
  const auto flags = OptimizationFlags::all_on();
  const double s2 = m.strong_speedup(60002, 5000, 10000, flags);
  EXPECT_GT(s2, 1.5);   // paper: 1.85x
  EXPECT_LT(s2, 2.0);
  const double s8 = m.strong_speedup(60002, 5000, 40000, flags);
  EXPECT_GT(s8, 3.0);   // paper: 4.88x
  EXPECT_LT(s8, 8.0);
}

TEST(PerfModel, WeakEfficiencyDropsAsSystemGrows) {
  // Fig. 16: ~75% efficiency at 200k atoms relative to 30k.
  const auto& m = hpc2_gpu();
  const auto flags = OptimizationFlags::all_on();
  const double e1 = m.weak_efficiency(30002, 2048, 30002, 2048, flags);
  EXPECT_NEAR(e1, 1.0, 1e-9);
  const double e_mid = m.weak_efficiency(30002, 2048, 117602, 8192, flags);
  const double e_end = m.weak_efficiency(30002, 2048, 200012, 16384, flags);
  EXPECT_LT(e_end, e_mid);
  EXPECT_GT(e_end, 0.45);
  EXPECT_LT(e_end, 1.0);
}

TEST(PerfModel, CpuOnlyModeIsSlower) {
  const DfptPerfModel gpu(parallel::MachineModel::hpc2_amd(),
                          simt::DeviceModel::gcn_gpu(), true);
  const DfptPerfModel cpu(parallel::MachineModel::hpc2_amd(),
                          simt::DeviceModel::gcn_gpu(), false);
  const auto flags = OptimizationFlags::all_on();
  EXPECT_GT(cpu.predict(30002, 2048, flags).total(),
            gpu.predict(30002, 2048, flags).total());
}

TEST(PerfModel, RejectsEmptyProblem) {
  EXPECT_THROW((void)hpc1().predict(0, 16, OptimizationFlags::all_on()), aeqp::Error);
}

}  // namespace
