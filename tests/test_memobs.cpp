// Tests for the memory-audit / comm-matrix / flight-recorder observability
// layers (ISSUE: memory & communication observability). The bit-identity
// contract of the memory audit against SCF+CPSCF lives in test_obs.cpp
// next to the tracing bit-identity test; this binary covers the accounting
// semantics: comm-matrix row sums against the PackedAllReducer's own byte
// counter, the post-mortem dump on an injected RankFailure, the disabled
// paths, MemScope RAII, and the scaling-exponent fit.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "comm/packed.hpp"
#include "common/thread_ident.hpp"
#include "obs/comm_matrix.hpp"
#include "obs/flight.hpp"
#include "obs/memaudit.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/cluster.hpp"
#include "parallel/fault.hpp"

namespace {

using namespace aeqp;

/// Clean observability state on both sides of every test so armed layers
/// cannot leak across tests (or into other binaries' expectations).
class MemObsTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::set_mode(obs::TraceMode::Off);
    obs::set_memaudit(false);
    obs::set_flight(false);
    obs::reset();
    obs::reset_counters();
    obs::reset_comm_matrix();
    obs::reset_flight();
  }
  void TearDown() override { SetUp(); }
};

// ---------------------------------------------------------------------------
// Communication matrix

TEST_F(MemObsTest, CommMatrixRowSumsMatchPackedReducerBytes) {
  obs::set_mode(obs::TraceMode::Summary);
  obs::reset_comm_matrix();

  constexpr std::size_t kRanks = 4, kRows = 24, kRowLen = 96;
  std::vector<std::uint64_t> reduced(kRanks, 0);
  parallel::Cluster cluster(kRanks, kRanks);
  cluster.run([&](parallel::Communicator& c) {
    const ScopedThreadRank tag(static_cast<int>(c.rank()));
    std::vector<std::vector<double>> rows(kRows,
                                          std::vector<double>(kRowLen, 1.0));
    comm::PackedAllReducer packer(c, comm::ReduceMode::Flat,
                                  /*max_bytes=*/8 * kRowLen * sizeof(double),
                                  /*verify=*/false);
    for (auto& r : rows) packer.add(r);
    packer.flush();
    reduced[c.rank()] = packer.bytes_reduced();  // each rank owns its slot
  });

  // An allreduce is modeled as src -> every dst != src, so a rank's heatmap
  // row must sum to exactly bytes_reduced() * (P - 1): the comm matrix and
  // the reducer's own counter are two independent accountings of the same
  // traffic.
  for (std::size_t r = 0; r < kRanks; ++r) {
    EXPECT_EQ(reduced[r], kRows * kRowLen * sizeof(double));
    EXPECT_EQ(obs::comm_row_bytes(static_cast<int>(r)),
              reduced[r] * (kRanks - 1));
  }

  const std::string json = obs::comm_matrix_json(2);
  EXPECT_NE(json.find("\"allreduce_sum\""), std::string::npos);
  EXPECT_NE(obs::comm_matrix_summary().find("4 ranks"), std::string::npos);
}

TEST_F(MemObsTest, CommMatrixRecordsNothingWhenTracingOff) {
  ASSERT_EQ(obs::mode(), obs::TraceMode::Off);
  obs::comm_record("allreduce_sum", 0, 1, 4096);
  obs::comm_record_all("allreduce_sum", 0, 4, 4096);
  EXPECT_TRUE(obs::comm_edges().empty());
  EXPECT_EQ(obs::comm_row_bytes(0), 0u);
  EXPECT_TRUE(obs::comm_matrix_summary().empty());
}

TEST_F(MemObsTest, CommMatrixJsonWritesAndParsesBack) {
  obs::set_mode(obs::TraceMode::Summary);
  obs::comm_record("broadcast", 0, 1, 100);
  obs::comm_record("broadcast", 0, 2, 100);
  obs::comm_record("allreduce_sum", 1, 0, 50);

  const std::string path =
      (std::filesystem::temp_directory_path() / "aeqp_comm_matrix_test.json")
          .string();
  ASSERT_TRUE(obs::write_comm_matrix(path));
  std::ifstream in(path);
  std::stringstream body;
  body << in.rdbuf();
  const std::string json = body.str();
  EXPECT_NE(json.find("\"schema_version\""), std::string::npos);
  EXPECT_NE(json.find("\"broadcast\""), std::string::npos);
  EXPECT_NE(json.find("\"allreduce_sum\""), std::string::npos);
  std::filesystem::remove(path);
  EXPECT_EQ(obs::comm_row_bytes(0), 200u);
  EXPECT_EQ(obs::comm_row_bytes(1), 50u);
}

// ---------------------------------------------------------------------------
// Flight recorder

TEST_F(MemObsTest, FlightDumpsPostMortemOnInjectedRankFailure) {
  // The post-mortem lands where AEQP_FLIGHT_FILE points (read at dump
  // time). CI uploads this exact file as the flight-postmortem artifact,
  // so it is deliberately left on disk.
  const char* kDumpFile = "flight_postmortem.json";
  ::setenv("AEQP_FLIGHT_FILE", kDumpFile, 1);
  std::filesystem::remove(kDumpFile);
  obs::set_flight(true);
  obs::reset_flight();
  const std::uint64_t dumps_before = obs::flight_dump_count();

  parallel::FaultPlan plan;
  parallel::FaultEvent kill;
  kill.kind = parallel::FaultKind::Kill;
  kill.rank = 1;
  kill.collective = 2;
  plan.add(kill);
  parallel::FaultInjector injector(plan);

  parallel::Cluster cluster(2, 2);
  cluster.set_fault_injector(&injector);
  EXPECT_THROW(cluster.run([](parallel::Communicator& c) {
                 const ScopedThreadRank tag(static_cast<int>(c.rank()));
                 std::vector<double> x(8, 1.0);
                 for (int i = 0; i < 6; ++i) c.allreduce_sum(x);
               }),
               parallel::RankFailure);

  EXPECT_EQ(obs::flight_dump_count(), dumps_before + 1);
  ASSERT_TRUE(std::filesystem::exists(kDumpFile));
  std::ifstream in(kDumpFile);
  std::stringstream body;
  body << in.rdbuf();
  const std::string json = body.str();
  EXPECT_NE(json.find("\"kind\": \"RankFailure\""), std::string::npos);
  EXPECT_NE(json.find("\"events\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  ::unsetenv("AEQP_FLIGHT_FILE");
}

TEST_F(MemObsTest, FlightDisabledDumpsNothing) {
  ASSERT_FALSE(obs::flight_enabled());
  const std::uint64_t dumps_before = obs::flight_dump_count();
  obs::flight_metric("test/never_recorded", 1.0);
  obs::flight_on_error("RankFailure", "synthetic error with recorder off");
  EXPECT_EQ(obs::flight_dump_count(), dumps_before);
}

TEST_F(MemObsTest, FlightRingCapturesMetricDeltas) {
  obs::set_flight(true);
  obs::reset_flight();
  obs::flight_metric("test/delta", 3.5);
  obs::flight_metric("test/delta", 1.5);
  double total = 0.0;
  std::size_t metric_events = 0;
  for (const auto& e : obs::flight_events()) {
    if (e.kind != obs::FlightKind::Metric) continue;
    if (std::string(e.name) == "test/delta") {
      ++metric_events;
      total += e.value;
    }
  }
  EXPECT_EQ(metric_events, 2u);
  EXPECT_DOUBLE_EQ(total, 5.0);
}

// ---------------------------------------------------------------------------
// Memory-audit gauge semantics

TEST_F(MemObsTest, MemScopeReleasesOnDestructionAndMove) {
  obs::set_memaudit(true);
  obs::reset_mem_gauges();
  obs::MemGauge& g = obs::mem_gauge("memobs_test/scope");
  {
    obs::MemScope outer("memobs_test/scope");
    outer.add(1000);
    {
      obs::MemScope inner("memobs_test/scope");
      inner.add(500);
      EXPECT_EQ(g.current(), 1500);
      obs::MemScope stolen(std::move(inner));
      EXPECT_EQ(g.current(), 1500);  // ownership moved, nothing released
    }                                // stolen releases inner's 500
    EXPECT_EQ(g.current(), 1000);
    outer.release();
    EXPECT_EQ(g.current(), 0);
    outer.release();  // idempotent
    EXPECT_EQ(g.current(), 0);
  }
  EXPECT_EQ(g.peak(), 1500);
}

TEST_F(MemObsTest, MemScopeIsInertWhenAuditOff) {
  ASSERT_FALSE(obs::memaudit_enabled());
  const std::size_t before = obs::registered_gauge_count();
  obs::MemScope scope("memobs_test/never_registered");
  scope.add(1 << 20);
  EXPECT_EQ(scope.held(), 0);
  EXPECT_EQ(obs::registered_gauge_count(), before);
}

TEST_F(MemObsTest, MemSnapshotFoldsIntoMetricsRegistry) {
  obs::set_memaudit(true);
  obs::reset_mem_gauges();
  obs::mem_track("memobs_test/registry", 4096);
  bool current_seen = false, peak_seen = false;
  for (const auto& m : obs::metrics_snapshot()) {
    if (m.name == "mem/memobs_test/registry/current_bytes") {
      current_seen = true;
      EXPECT_EQ(m.value, 4096.0);
    }
    if (m.name == "mem/memobs_test/registry/peak_bytes") {
      peak_seen = true;
      EXPECT_EQ(m.value, 4096.0);
    }
  }
  EXPECT_TRUE(current_seen);
  EXPECT_TRUE(peak_seen);
}

// ---------------------------------------------------------------------------
// Scaling-exponent fit (feeds BENCH_memory.json)

TEST_F(MemObsTest, FitScalingExponentRecoversExactPowerLaws) {
  const std::vector<double> n = {100, 200, 400, 800};
  std::vector<double> linear, quadratic, flat;
  for (double v : n) {
    linear.push_back(64.0 * v);
    quadratic.push_back(8.0 * v * v);
    flat.push_back(123456.0);
  }
  EXPECT_NEAR(obs::fit_scaling_exponent(n, linear), 1.0, 1e-9);
  EXPECT_NEAR(obs::fit_scaling_exponent(n, quadratic), 2.0, 1e-9);
  EXPECT_NEAR(obs::fit_scaling_exponent(n, flat), 0.0, 1e-9);
}

TEST_F(MemObsTest, FitScalingExponentRejectsDegenerateInput) {
  const std::vector<double> one_n = {100.0};
  const std::vector<double> one_b = {6400.0};
  EXPECT_EQ(obs::fit_scaling_exponent(one_n, one_b), 0.0);
  // Non-positive samples are skipped; with fewer than two valid points the
  // fit declines rather than extrapolating.
  const std::vector<double> n = {0.0, 100.0, 200.0};
  const std::vector<double> b = {512.0, 6400.0, 0.0};
  EXPECT_EQ(obs::fit_scaling_exponent(n, b), 0.0);
}

}  // namespace
