// Unit and property tests for src/linalg: dense ops, Cholesky, symmetric and
// generalized eigensolvers, CSR sparse matrices.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/eigen.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

namespace {

using namespace aeqp::linalg;
using aeqp::Rng;

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform(-1.0, 1.0);
  return m;
}

Matrix random_spd(std::size_t n, Rng& rng) {
  // A^T A + n * I is comfortably positive definite.
  const Matrix a = random_matrix(n, n, rng);
  Matrix spd = matmul_tn(a, a);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

Matrix random_symmetric(std::size_t n, Rng& rng) {
  Matrix m = random_matrix(n, n, rng);
  m.symmetrize();
  return m;
}

TEST(Matrix, IdentityAndTrace) {
  const Matrix i5 = Matrix::identity(5);
  EXPECT_DOUBLE_EQ(i5.trace(), 5.0);
  EXPECT_DOUBLE_EQ(i5(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(i5(1, 2), 0.0);
}

TEST(Matrix, MatmulAgainstHandComputed) {
  Matrix a(2, 3), b(3, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  b(0, 0) = 7; b(0, 1) = 8;
  b(1, 0) = 9; b(1, 1) = 10;
  b(2, 0) = 11; b(2, 1) = 12;
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, TransposedVariantsAgree) {
  Rng rng(3);
  const Matrix a = random_matrix(7, 5, rng);
  const Matrix b = random_matrix(7, 6, rng);
  const Matrix c1 = matmul_tn(a, b);                     // A^T B
  const Matrix c2 = matmul(a.transposed(), b);           // explicit transpose
  EXPECT_LT(c1.max_abs_diff(c2), 1e-13);

  const Matrix d = random_matrix(4, 5, rng);
  const Matrix e = random_matrix(6, 5, rng);
  const Matrix f1 = matmul_nt(d, e);                     // D E^T
  const Matrix f2 = matmul(d, e.transposed());
  EXPECT_LT(f1.max_abs_diff(f2), 1e-13);
}

TEST(Matrix, MatvecConsistentWithMatmul) {
  Rng rng(4);
  const Matrix a = random_matrix(6, 4, rng);
  Vector x(4);
  for (auto& v : x) v = rng.uniform(-1, 1);
  const Vector y = matvec(a, x);
  const Vector yt = matvec_t(a.transposed(), x);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], yt[i], 1e-13);
}

TEST(Matrix, SymmetrizeMakesSymmetric) {
  Rng rng(5);
  Matrix m = random_matrix(8, 8, rng);
  m.symmetrize();
  EXPECT_LT(m.max_abs_diff(m.transposed()), 1e-15);
}

TEST(Matrix, ShapeMismatchThrows) {
  const Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(matmul(a, b), aeqp::Error);
  Matrix c(2, 2);
  EXPECT_THROW(c.axpy(1.0, a), aeqp::Error);
}

TEST(Cholesky, ReconstructsInput) {
  Rng rng(6);
  const Matrix a = random_spd(12, rng);
  const Matrix l = cholesky(a);
  const Matrix rec = matmul_nt(l, l);  // L L^T
  EXPECT_LT(a.max_abs_diff(rec), 1e-10);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a = Matrix::identity(3);
  a(2, 2) = -1.0;
  EXPECT_THROW(cholesky(a), aeqp::Error);
}

TEST(Cholesky, SolveSpd) {
  Rng rng(7);
  const Matrix a = random_spd(10, rng);
  Vector b(10);
  for (auto& v : b) v = rng.uniform(-1, 1);
  const Vector x = solve_spd(a, b);
  const Vector ax = matvec(a, x);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(ax[i], b[i], 1e-10);
}

TEST(Cholesky, InvertLower) {
  Rng rng(8);
  const Matrix a = random_spd(9, rng);
  const Matrix l = cholesky(a);
  const Matrix linv = invert_lower(l);
  const Matrix prod = matmul(l, linv);
  EXPECT_LT(prod.max_abs_diff(Matrix::identity(9)), 1e-11);
}

TEST(Eigen, DiagonalMatrixHasItsEntriesAsEigenvalues) {
  Matrix d(4, 4);
  d(0, 0) = 3; d(1, 1) = -1; d(2, 2) = 7; d(3, 3) = 0.5;
  const EigenSolution sol = symmetric_eigen(d);
  EXPECT_NEAR(sol.eigenvalues[0], -1.0, 1e-12);
  EXPECT_NEAR(sol.eigenvalues[1], 0.5, 1e-12);
  EXPECT_NEAR(sol.eigenvalues[2], 3.0, 1e-12);
  EXPECT_NEAR(sol.eigenvalues[3], 7.0, 1e-12);
}

TEST(Eigen, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 2;
  const EigenSolution sol = symmetric_eigen(a);
  EXPECT_NEAR(sol.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(sol.eigenvalues[1], 3.0, 1e-12);
}

class EigenPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenPropertyTest, ResidualAndOrthonormality) {
  const std::size_t n = GetParam();
  Rng rng(100 + n);
  const Matrix a = random_symmetric(n, rng);
  const EigenSolution sol = symmetric_eigen(a);

  // Eigenvalues ascend.
  for (std::size_t p = 1; p < n; ++p)
    EXPECT_LE(sol.eigenvalues[p - 1], sol.eigenvalues[p] + 1e-12);

  // A v = w v for every pair.
  for (std::size_t p = 0; p < n; ++p) {
    Vector v(n);
    for (std::size_t k = 0; k < n; ++k) v[k] = sol.eigenvectors(k, p);
    const Vector av = matvec(a, v);
    for (std::size_t k = 0; k < n; ++k)
      EXPECT_NEAR(av[k], sol.eigenvalues[p] * v[k], 1e-9);
  }

  // V^T V = I.
  const Matrix vtv = matmul_tn(sol.eigenvectors, sol.eigenvectors);
  EXPECT_LT(vtv.max_abs_diff(Matrix::identity(n)), 1e-10);

  // Trace preserved.
  double wsum = 0.0;
  for (double w : sol.eigenvalues) wsum += w;
  EXPECT_NEAR(wsum, a.trace(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33, 64));

class GeneralizedEigenTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GeneralizedEigenTest, SolvesGeneralizedProblem) {
  const std::size_t n = GetParam();
  Rng rng(200 + n);
  const Matrix h = random_symmetric(n, rng);
  const Matrix s = random_spd(n, rng);
  const EigenSolution sol = generalized_symmetric_eigen(h, s);

  // H C = eps S C column by column.
  for (std::size_t p = 0; p < n; ++p) {
    Vector c(n);
    for (std::size_t k = 0; k < n; ++k) c[k] = sol.eigenvectors(k, p);
    const Vector hc = matvec(h, c);
    const Vector sc = matvec(s, c);
    for (std::size_t k = 0; k < n; ++k)
      EXPECT_NEAR(hc[k], sol.eigenvalues[p] * sc[k], 1e-8);
  }

  // S-orthonormal: C^T S C = I.
  const Matrix csc = matmul_tn(sol.eigenvectors, matmul(s, sol.eigenvectors));
  EXPECT_LT(csc.max_abs_diff(Matrix::identity(n)), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeneralizedEigenTest,
                         ::testing::Values(1, 2, 4, 9, 17, 40));

TEST(Csr, BuildFetchAndDensify) {
  std::vector<Triplet> t = {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0},
                            {2, 0, 4.0}, {2, 2, 5.0}, {0, 2, 0.5}};  // dup summed
  const CsrMatrix m(3, 3, t);
  EXPECT_EQ(m.nnz(), 5u);
  EXPECT_DOUBLE_EQ(m.fetch(0, 2), 2.5);
  EXPECT_DOUBLE_EQ(m.fetch(1, 0), 0.0);
  const Matrix d = m.to_dense();
  EXPECT_DOUBLE_EQ(d(2, 2), 5.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
}

TEST(Csr, MatvecMatchesDense) {
  Rng rng(9);
  std::vector<Triplet> trip;
  const std::size_t n = 40;
  for (int k = 0; k < 300; ++k)
    trip.push_back({rng.uniform_index(n), rng.uniform_index(n), rng.uniform(-1, 1)});
  const CsrMatrix sp(n, n, trip);
  const Matrix dn = sp.to_dense();
  Vector x(n);
  for (auto& v : x) v = rng.uniform(-1, 1);
  const Vector ys = sp.matvec(x);
  const Vector yd = matvec(dn, x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

TEST(Csr, GatherBlockMatchesDense) {
  Rng rng(10);
  std::vector<Triplet> trip;
  const std::size_t n = 30;
  for (int k = 0; k < 200; ++k)
    trip.push_back({rng.uniform_index(n), rng.uniform_index(n), rng.uniform(-1, 1)});
  const CsrMatrix sp(n, n, trip);
  const Matrix dn = sp.to_dense();
  const std::vector<std::size_t> rows = {3, 7, 11}, cols = {0, 5, 29};
  const Matrix blk = sp.gather_block(rows, cols);
  for (std::size_t i = 0; i < rows.size(); ++i)
    for (std::size_t j = 0; j < cols.size(); ++j)
      EXPECT_DOUBLE_EQ(blk(i, j), dn(rows[i], cols[j]));
}

TEST(Csr, EmptyRowsHandled) {
  const CsrMatrix m(4, 4, {{0, 0, 1.0}, {3, 3, 2.0}});
  EXPECT_DOUBLE_EQ(m.fetch(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.fetch(3, 3), 2.0);
  EXPECT_EQ(m.nnz(), 2u);
}

TEST(Csr, BytesAccountsAllArrays) {
  const CsrMatrix m(4, 4, {{0, 0, 1.0}, {3, 3, 2.0}});
  EXPECT_EQ(m.bytes(), 2 * sizeof(double) + 2 * sizeof(std::uint32_t) +
                           5 * sizeof(std::size_t));
}

TEST(Csr, OutOfRangeTripletThrows) {
  EXPECT_THROW(CsrMatrix(2, 2, {{2, 0, 1.0}}), aeqp::Error);
}

}  // namespace
