// Elastic rank-failure recovery tests: communicator shrink with origin
// tracking, permanent (re-firing) fault semantics, locality-aware survivor
// re-mapping, buddy-replicated checkpoints, and the RecoveryDriver's
// shrink-and-continue escalation. The acceptance bar: a distributed CPSCF
// run that permanently loses a rank completes on the survivors via
// buddy-restore + shrink + re-map and matches the fault-free reference to
// 1e-8; the same scenario without elastic recovery surfaces a structured
// RankFailure instead of deadlocking.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/dfpt.hpp"
#include "core/parallel_dfpt.hpp"
#include "comm/packed.hpp"
#include "grid/batch.hpp"
#include "mapping/task_mapping.hpp"
#include "parallel/cluster.hpp"
#include "parallel/fault.hpp"
#include "parallel/straggler.hpp"
#include "resilience/buddy.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/recovery.hpp"
#include "scf/scf_solver.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::resilience;

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir;
}

linalg::Matrix test_matrix(std::size_t rows, std::size_t cols, double scale) {
  linalg::Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      m(i, j) = scale * (1.0 + std::sin(static_cast<double>(i * cols + j)));
  return m;
}

// ---------------------------------------------------------------------------
// Cluster shrink (ULFM analogue)

TEST(ClusterShrink, RenumbersSurvivorsAndTracksOrigins) {
  parallel::Cluster cluster(4, 2);
  EXPECT_EQ(cluster.original_rank(3), 3u);

  const auto shrunk = cluster.shrink({1});
  ASSERT_EQ(shrunk->size(), 3u);
  EXPECT_EQ(shrunk->original_rank(0), 0u);
  EXPECT_EQ(shrunk->original_rank(1), 2u);
  EXPECT_EQ(shrunk->original_rank(2), 3u);

  // Shrinks compose: failed ids are in the CURRENT numbering, origins map
  // all the way back to the initial world.
  const auto twice = shrunk->shrink({0});
  ASSERT_EQ(twice->size(), 2u);
  EXPECT_EQ(twice->original_rank(0), 2u);
  EXPECT_EQ(twice->original_rank(1), 3u);

  // Collectives still work on the shrunken world, and every rank sees its
  // original id through the communicator.
  std::vector<double> got(2, -1.0);
  twice->run([&](parallel::Communicator& comm) {
    std::vector<double> data{1.0};
    comm.allreduce_sum(data);
    got[comm.rank()] = data[0];
    EXPECT_EQ(comm.original_rank(), comm.rank() == 0 ? 2u : 3u);
    EXPECT_EQ(comm.original_rank_of(0), 2u);
  });
  EXPECT_EQ(got[0], 2.0);
  EXPECT_EQ(got[1], 2.0);

  EXPECT_THROW((void)cluster.shrink({4}), Error);          // out of range
  EXPECT_THROW((void)cluster.shrink({0, 1, 2, 3}), Error); // nobody left
}

TEST(ClusterShrink, CarriesStragglerStateAndAdaptiveArmToSurvivors) {
  parallel::StragglerDetector::Options dopt;
  dopt.min_window_ms = 1.0;
  parallel::StragglerDetector detector(4, dopt);
  parallel::Cluster cluster(4, 2);
  cluster.set_straggler_detector(&detector);
  cluster.set_adaptive_deadlines(true, /*floor_ms=*/100.0);

  // Give the old world some learned latency structure and a degraded rank.
  cluster.run([](parallel::Communicator& comm) {
    for (int i = 0; i < 8; ++i) comm.barrier();
  });
  ASSERT_NE(cluster.deadline_estimator(), nullptr);
  EXPECT_GT(cluster.deadline_estimator()->total_samples(), 0u);
  for (int w = 0; w < 2; ++w) {
    for (std::size_t r = 0; r < 4; ++r)
      detector.record_work(r, r == 1 ? 50.0 : 10.0);
    detector.classify();
  }
  ASSERT_EQ(detector.degraded_ranks(), (std::vector<std::size_t>{1}));

  const auto shrunk = cluster.shrink({1});

  // The detector carries over -- same ledger, original-id addressing -- but
  // the dead rank is retired and its stale verdict cleared.
  EXPECT_EQ(shrunk->straggler_detector(), &detector);
  EXPECT_FALSE(detector.any_degraded());
  EXPECT_FALSE(detector.snapshot()[1].active);
  EXPECT_TRUE(detector.snapshot()[2].active);

  // The adaptive-deadline ARM carries, but with a FRESH estimator: latency
  // structure learned on the 4-rank world must not time out the 3-rank one.
  EXPECT_TRUE(shrunk->adaptive_deadlines());
  ASSERT_NE(shrunk->deadline_estimator(), nullptr);
  EXPECT_NE(shrunk->deadline_estimator(), cluster.deadline_estimator());
  EXPECT_EQ(shrunk->deadline_estimator()->total_samples(), 0u);
  EXPECT_DOUBLE_EQ(shrunk->deadline_estimator()->options().floor_ms, 100.0);

  // Survivors keep feeding the carried ledger under their ORIGINAL ids;
  // the dead rank's row stays quiet.
  const auto survivor_before = detector.snapshot()[3].samples;
  const auto dead_before = detector.snapshot()[1].samples;
  shrunk->run([](parallel::Communicator& comm) {
    for (int i = 0; i < 4; ++i) comm.barrier();
  });
  EXPECT_GT(detector.snapshot()[3].samples, survivor_before);
  EXPECT_EQ(detector.snapshot()[1].samples, dead_before);
}

TEST(ClusterShrink, FaultPlanKeepsAddressingOriginalRanks) {
  // The plan kills ORIGINAL rank 2. After shrinking away rank 1, original
  // rank 2 runs as current rank 1 -- the fault must follow the physical
  // rank, not the slot number.
  parallel::FaultPlan plan;
  parallel::FaultEvent ev;
  ev.kind = parallel::FaultKind::Kill;
  ev.rank = 2;
  ev.collective = 0;
  plan.add(ev);
  parallel::FaultInjector injector(std::move(plan));

  parallel::Cluster cluster(4, 2);
  cluster.set_fault_injector(&injector);
  const auto shrunk = cluster.shrink({1});
  const auto outcomes =
      shrunk->run_collect([](parallel::Communicator& comm) { comm.barrier(); });
  ASSERT_EQ(outcomes.size(), 3u);
  int failures = 0;
  for (const auto& e : outcomes) {
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const parallel::RankFailure& f) {
      ++failures;
      EXPECT_EQ(f.failed_rank(), 1u);  // current id of original rank 2
      EXPECT_NE(std::string(f.what()).find("original rank 2"),
                std::string::npos)
          << f.what();
    }
  }
  EXPECT_GE(failures, 1);

  // Excluding the victim silences the fault entirely.
  parallel::FaultPlan plan2;
  plan2.add(ev);
  parallel::FaultInjector injector2(std::move(plan2));
  parallel::Cluster cluster2(4, 2);
  cluster2.set_fault_injector(&injector2);
  const auto survivors = cluster2.shrink({2});
  std::vector<double> got(3, 0.0);
  survivors->run([&](parallel::Communicator& comm) {
    std::vector<double> data{1.0};
    comm.allreduce_sum(data);
    got[comm.rank()] = data[0];
  });
  EXPECT_EQ(got[0], 3.0);
  EXPECT_EQ(injector2.stats().kills, 0u);
}

// ---------------------------------------------------------------------------
// Permanent fault semantics

TEST(PermanentFaults, PermanentKillRefiresOnEveryRetry) {
  parallel::FaultPlan plan;
  parallel::FaultEvent ev;
  ev.kind = parallel::FaultKind::Kill;
  ev.rank = 1;
  ev.collective = 2;
  ev.transient = false;
  plan.add(ev);
  parallel::FaultInjector injector(std::move(plan));

  parallel::Cluster cluster(2, 2);
  cluster.set_fault_injector(&injector);
  const auto attempt = [&] {
    return cluster.run_collect([](parallel::Communicator& comm) {
      for (int i = 0; i < 4; ++i) comm.barrier();
    });
  };

  // First run: fires at the planned collective #2.
  auto outcomes = attempt();
  ASSERT_TRUE(outcomes[1] != nullptr);
  EXPECT_EQ(injector.stats().kills, 1u);
  EXPECT_EQ(injector.pending(), 0u);  // fired -> no longer pending ...

  // ... but NOT exhausted: a retry at the same world size dies again, now
  // at the victim's very first collective (a dead node is dead).
  outcomes = attempt();
  ASSERT_TRUE(outcomes[1] != nullptr);
  try {
    std::rethrow_exception(outcomes[1]);
  } catch (const parallel::RankFailure& e) {
    EXPECT_EQ(e.failed_rank(), 1u);
    const std::string what = e.what();
    EXPECT_NE(what.find("permanently"), std::string::npos) << what;
    EXPECT_NE(what.find("collective #0"), std::string::npos) << what;
  }
  EXPECT_EQ(injector.stats().kills, 2u);
}

TEST(PermanentFaults, RandomPlanDrawsDistinctPermanentKills) {
  const auto a = parallel::FaultPlan::random(99, 0, 4, 5, 25, {}, 3);
  const auto b = parallel::FaultPlan::random(99, 0, 4, 5, 25, {}, 3);
  ASSERT_EQ(a.size(), 3u);
  std::set<std::size_t> victims;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& e = a.events()[i];
    EXPECT_EQ(static_cast<int>(e.kind),
              static_cast<int>(parallel::FaultKind::Kill));
    EXPECT_FALSE(e.transient);
    EXPECT_LT(e.rank, 4u);
    EXPECT_GE(e.collective, 5u);
    EXPECT_LT(e.collective, 25u);
    victims.insert(e.rank);
    EXPECT_EQ(e.rank, b.events()[i].rank);  // seed-deterministic
    EXPECT_EQ(e.collective, b.events()[i].collective);
  }
  EXPECT_EQ(victims.size(), 3u);  // distinct ranks

  // Capped at n_ranks - 1: at least one rank must survive.
  const auto capped = parallel::FaultPlan::random(99, 0, 4, 5, 25, {}, 40);
  EXPECT_EQ(capped.size(), 3u);
}

// ---------------------------------------------------------------------------
// Locality-aware survivor re-mapping

std::vector<grid::Batch> synthetic_batches(std::size_t n) {
  std::vector<grid::Batch> batches(n);
  for (std::size_t i = 0; i < n; ++i) {
    batches[i].points.resize(8 + (i % 5) * 4);  // varied sizes
    batches[i].centroid = {static_cast<double>(i % 7),
                           static_cast<double>(i % 3), 0.0};
    batches[i].atoms = {static_cast<std::uint32_t>(i % 4)};
  }
  return batches;
}

TEST(Remap, SurvivorsKeepBatchesAndOrphansAreCovered) {
  const auto batches = synthetic_batches(40);
  const auto initial = mapping::locality_enhancing_mapping(batches, 4);
  ASSERT_EQ(initial.rank_count(), 4u);

  const std::vector<std::size_t> survivors{0, 2, 3};
  const auto remap = mapping::remap_for_survivors(initial, batches, survivors);
  ASSERT_EQ(remap.assignment.rank_count(), 3u);

  // Survivors keep everything they owned (their caches stay valid).
  for (std::size_t s = 0; s < survivors.size(); ++s) {
    for (const auto id : initial.batches_of_rank[survivors[s]]) {
      const auto& mine = remap.assignment.batches_of_rank[s];
      EXPECT_NE(std::find(mine.begin(), mine.end(), id), mine.end())
          << "survivor " << survivors[s] << " lost batch " << id;
    }
  }

  // Every batch is owned exactly once, and the move counters account for
  // exactly the dead rank's former load.
  std::set<std::uint32_t> owned;
  for (std::size_t s = 0; s < 3; ++s)
    for (const auto id : remap.assignment.batches_of_rank[s])
      EXPECT_TRUE(owned.insert(id).second) << "batch " << id << " owned twice";
  EXPECT_EQ(owned.size(), batches.size());
  EXPECT_EQ(remap.moved_batches, initial.batches_of_rank[1].size());
  EXPECT_EQ(remap.moved_points, initial.points_of_rank(1, batches));

  // Deterministic: same inputs, identical placement.
  const auto again = mapping::remap_for_survivors(initial, batches, survivors);
  for (std::size_t s = 0; s < 3; ++s)
    EXPECT_EQ(again.assignment.batches_of_rank[s],
              remap.assignment.batches_of_rank[s]);

  EXPECT_THROW(
      (void)mapping::remap_for_survivors(initial, batches, {}), Error);
  EXPECT_THROW(
      (void)mapping::remap_for_survivors(initial, batches, {2, 0}), Error);
  EXPECT_THROW(
      (void)mapping::remap_for_survivors(initial, batches, {0, 7}), Error);
}

// ---------------------------------------------------------------------------
// Buddy replication

TEST(Buddy, ReplicateRoundTripTracksHolders) {
  parallel::Cluster cluster(4, 2);
  BuddyReplicator buddy(4);
  cluster.run([&](parallel::Communicator& comm) {
    CpscfCheckpoint ckpt;
    ckpt.direction = 2;
    ckpt.iteration = static_cast<int>(comm.rank()) + 1;
    ckpt.mixing = 0.3;
    ckpt.last_delta = 1e-5;
    ckpt.p1 = test_matrix(6, 6, 0.1 * (comm.rank() + 1));
    buddy.replicate(comm, serialize(ckpt));
  });

  for (std::size_t r = 0; r < 4; ++r) {
    const auto blob = buddy.blob_of(r);
    ASSERT_TRUE(blob.has_value()) << "no replica of rank " << r;
    EXPECT_EQ(blob->holder, (r + 1) % 4);
    const auto ckpt = deserialize_cpscf(blob->bytes, "test");
    EXPECT_EQ(ckpt.iteration, static_cast<int>(r) + 1);
    EXPECT_EQ(ckpt.p1.max_abs_diff(test_matrix(6, 6, 0.1 * (r + 1))), 0.0);
  }
  EXPECT_EQ(buddy.stats().rounds, 1u);
  EXPECT_EQ(buddy.stats().blobs_mirrored, 4u);

  // A dead rank's memory takes the replicas it held with it.
  EXPECT_EQ(buddy.drop_holder(1), 1u);  // rank 1 held the replica of rank 0
  EXPECT_FALSE(buddy.blob_of(0).has_value());
  EXPECT_TRUE(buddy.blob_of(1).has_value());
  EXPECT_EQ(buddy.drop_holder(1), 0u);  // idempotent
}

TEST(Buddy, ShrunkWorldReplicatesAmongSurvivors) {
  parallel::Cluster cluster(3, 3);
  const auto shrunk = cluster.shrink({1});  // survivors: original 0 and 2
  BuddyReplicator buddy(3);
  shrunk->run([&](parallel::Communicator& comm) {
    CpscfCheckpoint ckpt;
    ckpt.iteration = 5;
    ckpt.p1 = test_matrix(4, 4, 1.0 + comm.original_rank());
    buddy.replicate(comm, serialize(ckpt));
  });
  // Blobs are slotted by ORIGINAL ids; the dead rank 1 has none.
  const auto of0 = buddy.blob_of(0);
  const auto of2 = buddy.blob_of(2);
  ASSERT_TRUE(of0.has_value());
  ASSERT_TRUE(of2.has_value());
  EXPECT_FALSE(buddy.blob_of(1).has_value());
  EXPECT_EQ(of0->holder, 2u);  // ring order on the CURRENT world
  EXPECT_EQ(of2->holder, 0u);
  EXPECT_EQ(deserialize_cpscf(of2->bytes, "t").p1.max_abs_diff(
                test_matrix(4, 4, 3.0)),
            0.0);
}

// ---------------------------------------------------------------------------
// Checkpoint store hardening (satellite: atomic, collision-free writes)

TEST(Checkpoint, ConcurrentSavesNeverTearTheFile) {
  CheckpointStore store(fresh_dir("ckpt_concurrent"));
  constexpr int kThreads = 8;
  constexpr int kSaves = 12;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kSaves; ++i) {
        CpscfCheckpoint ckpt;
        ckpt.direction = t;
        ckpt.iteration = i + 1;
        ckpt.p1 = test_matrix(10, 10, 0.5 + t);
        store.save("contended", ckpt);
      }
    });
  }
  for (auto& th : threads) th.join();

  // Whatever save won, the file is a complete, CRC-valid checkpoint from
  // exactly one writer -- never an interleaving of two.
  const CpscfCheckpoint out = store.load_cpscf("contended");
  ASSERT_GE(out.direction, 0);
  ASSERT_LT(out.direction, kThreads);
  EXPECT_EQ(out.p1.max_abs_diff(test_matrix(10, 10, 0.5 + out.direction)), 0.0);

  // No temp-file debris survives the races.
  std::size_t files = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(store.directory())) {
    ++files;
    EXPECT_EQ(entry.path().extension(), ".ckpt") << entry.path();
  }
  EXPECT_EQ(files, 1u);
}

// ---------------------------------------------------------------------------
// End-to-end elastic recovery on a real molecule

const scf::ScfResult& ground_h2() {
  static const scf::ScfResult res = [] {
    grid::Structure s;
    s.add_atom(1, {0, 0, -0.7});
    s.add_atom(1, {0, 0, 0.7});
    scf::ScfOptions opt;
    opt.tier = basis::BasisTier::Light;
    opt.grid.radial_points = 30;
    opt.grid.angular_degree = 9;
    opt.poisson.radial_points = 72;
    return scf::ScfSolver(s, opt).run();
  }();
  return res;
}

core::ParallelDfptOptions elastic_popt(parallel::FaultInjector* injector) {
  core::ParallelDfptOptions popt;
  popt.dfpt.tolerance = 1e-9;
  popt.ranks = 4;
  popt.ranks_per_node = 2;
  popt.reduce_mode = comm::ReduceMode::Flat;
  popt.batch_points = 96;
  popt.fault_injector = injector;
  popt.collective_timeout_ms = 30000;
  return popt;
}

// The tentpole acceptance: rank 0 -- which hosts the checkpoint writer, so
// its death also takes the file checkpoint down -- dies permanently
// mid-run. The elastic driver classifies it permanent after one free
// retry, restores the last checkpoint from a buddy replica, shrinks the
// world to the three survivors, re-homes the dead rank's batches, resumes,
// and the result matches the fault-free serial reference to 1e-8.
TEST(ElasticRecovery, PermanentRankLossCompletesOnSurvivors) {
  const auto& ground = ground_h2();
  ASSERT_TRUE(ground.converged);
  core::DfptOptions ref_opt;
  ref_opt.tolerance = 1e-9;
  const core::DfptDirectionResult ref =
      core::DfptSolver(ground, ref_opt).solve_direction(2);
  ASSERT_TRUE(ref.converged);

  parallel::FaultPlan plan;
  parallel::FaultEvent ev;
  ev.kind = parallel::FaultKind::Kill;
  ev.rank = 0;
  ev.collective = 40;  // a few iterations in: checkpoints + replicas exist
  ev.transient = false;
  plan.add(ev);
  parallel::FaultInjector injector(std::move(plan));

  CheckpointStore store(fresh_dir("elastic_accept"));
  RecoveryOptions ropt;
  ropt.elastic = true;
  ropt.max_retries = 6;
  ropt.mixing_damping = 1.0;  // the fault is mechanical, not numerical
  RecoveryDriver driver(store, ropt);

  const core::ParallelDfptResult rec =
      driver.solve_direction_parallel(ground, elastic_popt(&injector), 2);

  EXPECT_TRUE(rec.direction.converged);
  EXPECT_GE(injector.stats().kills, 2u);  // fired on the retry too
  EXPECT_EQ(rec.stats.shrinks, 1u);
  EXPECT_EQ(rec.stats.survivor_ranks, 3u);
  EXPECT_EQ(rec.stats.lost_ranks, 1u);
  EXPECT_GE(rec.stats.buddy_restores, 1u);  // the file died with rank 0
  EXPECT_GE(rec.stats.remap_batches_moved, 1u);
  EXPECT_GE(rec.stats.faults_detected, 2u);
  EXPECT_NEAR(rec.direction.dipole_response.z, ref.dipole_response.z, 1e-8);
  EXPECT_LT(rec.direction.p1.max_abs_diff(ref.p1), 1e-8);

  const auto& s = driver.last_stats();
  EXPECT_EQ(s.shrinks, 1u);
  EXPECT_EQ(s.lost_ranks, 1u);
  EXPECT_GE(s.buddy_restores, 1u);
}

// The same dead node WITHOUT elastic recovery: the retry budget burns down
// against the permanent failure and surfaces as a structured RankFailure
// carrying the budget diagnostics -- never a deadlock.
TEST(ElasticRecovery, NonElasticDriverSurfacesStructuredRankFailure) {
  const auto& ground = ground_h2();
  parallel::FaultPlan plan;
  parallel::FaultEvent ev;
  ev.kind = parallel::FaultKind::Kill;
  ev.rank = 0;
  ev.collective = 40;
  ev.transient = false;
  plan.add(ev);
  parallel::FaultInjector injector(std::move(plan));

  CheckpointStore store(fresh_dir("elastic_nonelastic"));
  RecoveryOptions ropt;
  ropt.max_retries = 2;  // elastic stays off
  RecoveryDriver driver(store, ropt);
  try {
    (void)driver.solve_direction_parallel(ground, elastic_popt(&injector), 2);
    FAIL() << "permanent kill did not surface";
  } catch (const parallel::RankFailure& e) {
    EXPECT_EQ(e.failed_rank(), 0u);
    const std::string what = e.what();
    EXPECT_NE(what.find("retry budget exhausted"), std::string::npos) << what;
    EXPECT_NE(what.find("killed"), std::string::npos) << what;
  }
  EXPECT_EQ(injector.stats().kills, 3u);  // initial attempt + 2 retries
}

// A bare solver run (no driver at all) with a permanent kill raises the
// structured failure directly.
TEST(ElasticRecovery, BareRunWithPermanentKillRaisesRankFailure) {
  const auto& ground = ground_h2();
  parallel::FaultPlan plan;
  parallel::FaultEvent ev;
  ev.kind = parallel::FaultKind::Kill;
  ev.rank = 2;
  ev.collective = 10;
  ev.transient = false;
  plan.add(ev);
  parallel::FaultInjector injector(std::move(plan));
  try {
    (void)core::solve_direction_parallel(ground, elastic_popt(&injector), 2);
    FAIL() << "permanent kill did not surface";
  } catch (const parallel::RankFailure& e) {
    EXPECT_EQ(e.failed_rank(), 2u);
    EXPECT_NE(std::string(e.what()).find("permanently"), std::string::npos);
  }
}

// Chaos soak: seeded random fault plans mixing payload corruption with
// multi-rank permanent kills, swept over the elastic driver. Every
// scenario either converges to the fault-free reference or throws a
// structured error -- and never deadlocks (the collective deadline plus
// the ctest timeout guard that).
TEST(ElasticRecovery, ChaosSoakConvergesOrFailsStructurally) {
  const auto& ground = ground_h2();
  core::DfptOptions ref_opt;
  ref_opt.tolerance = 1e-9;
  const core::DfptDirectionResult ref =
      core::DfptSolver(ground, ref_opt).solve_direction(2);
  ASSERT_TRUE(ref.converged);

  int converged = 0;
  int structured = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::size_t permanent_kills = seed % 3;  // 0, 1 or 2 dead ranks
    auto plan = parallel::FaultPlan::random(
        seed, /*n_events=*/2, /*n_ranks=*/4, /*first_collective=*/5,
        /*last_collective=*/120,
        {parallel::FaultKind::BitFlip, parallel::FaultKind::NanPayload,
         parallel::FaultKind::InfPayload},
        permanent_kills);
    parallel::FaultInjector injector(std::move(plan));

    CheckpointStore store(
        fresh_dir("elastic_soak_" + std::to_string(seed)));
    RecoveryOptions ropt;
    ropt.elastic = true;
    ropt.max_retries = 10;
    ropt.mixing_damping = 1.0;
    RecoveryDriver driver(store, ropt);
    try {
      const auto rec =
          driver.solve_direction_parallel(ground, elastic_popt(&injector), 2);
      EXPECT_TRUE(rec.direction.converged) << "seed " << seed;
      EXPECT_NEAR(rec.direction.dipole_response.z, ref.dipole_response.z, 1e-8)
          << "seed " << seed;
      EXPECT_LT(rec.direction.p1.max_abs_diff(ref.p1), 1e-8)
          << "seed " << seed;
      EXPECT_EQ(rec.stats.lost_ranks, rec.stats.shrinks) << "seed " << seed;
      EXPECT_LE(rec.stats.shrinks, permanent_kills) << "seed " << seed;
      ++converged;
    } catch (const parallel::RankFailure&) {
      ++structured;  // budget exhausted against the plan -- acceptable
    } catch (const parallel::CollectiveTimeout&) {
      ++structured;
    } catch (const Error&) {
      ++structured;
    }
  }
  EXPECT_EQ(converged + structured, 5);
  EXPECT_GE(converged, 3) << "elastic recovery should save most scenarios";
}

}  // namespace
