// Tests for src/simt (device models, counted runtime) and src/kernels
// (the four optimization-experiment kernel families). Variant-equivalence
// property tests guarantee every optimization preserves results exactly.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "kernels/density_kernels.hpp"
#include "kernels/hartree_pm_kernel.hpp"
#include "kernels/init_kernel.hpp"
#include "kernels/rho_kernels.hpp"
#include "simt/device.hpp"
#include "simt/runtime.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::simt;
using namespace aeqp::kernels;

TEST(Device, ModelsReflectArchitectures) {
  const DeviceModel sw = DeviceModel::sw39010();
  const DeviceModel gpu = DeviceModel::gcn_gpu();
  EXPECT_TRUE(sw.has_rma);
  EXPECT_FALSE(gpu.has_rma);
  EXPECT_EQ(sw.rma_limit_bytes, 64u * 1024u);
  EXPECT_EQ(gpu.wavefront, 64u);
  EXPECT_TRUE(gpu.persistent_device_buffers);
  // Fig. 11 rationale: Sunway pays more per dependent access.
  EXPECT_GT(sw.dependent_access_cost, gpu.dependent_access_cost);
}

TEST(Device, ModeledSecondsMonotoneInCounts) {
  const DeviceModel gpu = DeviceModel::gcn_gpu();
  KernelStats a;
  a.launches = 1;
  a.offchip_read_bytes = 1 << 20;
  KernelStats b = a;
  b.dependent_accesses = 1 << 20;
  EXPECT_GT(b.modeled_seconds(gpu), a.modeled_seconds(gpu));
  KernelStats c = b;
  c.host_transfer_bytes = 1 << 24;
  EXPECT_GT(c.modeled_seconds(gpu), b.modeled_seconds(gpu));
}

TEST(Runtime, CountsLaunchesItemsAndTraffic) {
  SimtRuntime rt(DeviceModel::gcn_gpu());
  std::vector<double> data(256, 1.0);
  auto buf = rt.bind(data);
  rt.launch(4, 64, [&](WorkGroup& wg) {
    for (std::size_t i = 0; i < 64; ++i) {
      const std::size_t idx = wg.group_id() * 64 + i;
      buf.store(idx, buf.load(idx) * 2.0);
    }
    wg.issue_simt(64);
    wg.barrier();
  });
  EXPECT_EQ(rt.stats().launches, 1u);
  EXPECT_EQ(rt.stats().work_items, 256u);
  EXPECT_EQ(rt.stats().offchip_read_bytes, 256u * 8u);
  EXPECT_EQ(rt.stats().offchip_write_bytes, 256u * 8u);
  EXPECT_EQ(rt.stats().barriers, 4u);
  EXPECT_EQ(rt.stats().wavefront_steps, 4u);  // 64 lanes = 1 step per group
  EXPECT_DOUBLE_EQ(data[0], 2.0);
}

TEST(Runtime, LocalMemRespectsCapacity) {
  SimtRuntime rt(DeviceModel::sw39010());
  rt.launch(1, 1, [&](WorkGroup& wg) {
    auto mem = wg.local_mem(1024);
    EXPECT_EQ(mem.size(), 1024u);
    EXPECT_THROW((void)wg.local_mem(64 * 1024), Error);  // > 64 KB
  });
}

TEST(Runtime, WavefrontSteppingRoundsUp) {
  SimtRuntime rt(DeviceModel::gcn_gpu());
  rt.launch(1, 1, [&](WorkGroup& wg) {
    wg.issue_simt(65);      // 2 steps on a 64-wide machine
    wg.issue_simt(10, 12);  // 12 bundles of 1 step
  });
  EXPECT_EQ(rt.stats().wavefront_steps, 14u);
}

TEST(InitKernel, DirectEqualsIndirect) {
  const auto in = make_init_input(500, 20000);
  const auto rearranged = build_rearranged_coords(in);
  SimtRuntime rt(DeviceModel::sw39010());
  const auto a = run_init_kernel_indirect(rt, in);
  const auto b = run_init_kernel_direct(rt, in, rearranged);
  ASSERT_EQ(a.center_coords.size(), b.center_coords.size());
  for (std::size_t i = 0; i < a.center_coords.size(); ++i)
    EXPECT_DOUBLE_EQ(a.center_coords[i], b.center_coords[i]);
}

TEST(InitKernel, IndirectCostsDependentAccesses) {
  const auto in = make_init_input(200, 5000);
  const auto rearranged = build_rearranged_coords(in);

  SimtRuntime rt_ind(DeviceModel::sw39010());
  run_init_kernel_indirect(rt_ind, in);
  SimtRuntime rt_dir(DeviceModel::sw39010());
  run_init_kernel_direct(rt_dir, in, rearranged);

  EXPECT_EQ(rt_ind.stats().dependent_accesses, 3u * 5000u);
  EXPECT_EQ(rt_dir.stats().dependent_accesses, 0u);
  EXPECT_GT(rt_ind.modeled_seconds(), rt_dir.modeled_seconds());
}

TEST(InitKernel, EliminationWinsMoreOnSunway) {
  // Fig. 11: larger speedups on HPC#1 due to longer off-chip latency.
  // Use a work size large enough that launch overhead does not mask the
  // asymptotic access costs.
  const auto in = make_init_input(20000, 1000000);
  const auto rearranged = build_rearranged_coords(in);
  auto speedup_on = [&](const DeviceModel& d) {
    SimtRuntime a(d), b(d);
    run_init_kernel_indirect(a, in);
    run_init_kernel_direct(b, in, rearranged);
    return a.modeled_seconds() / b.modeled_seconds();
  };
  const double sw = speedup_on(DeviceModel::sw39010());
  const double gpu = speedup_on(DeviceModel::gcn_gpu());
  EXPECT_GT(sw, gpu);
  EXPECT_GT(gpu, 1.0);
}

class RhoFusionEquivalence : public ::testing::TestWithParam<FusionMode> {};

TEST_P(RhoFusionEquivalence, PotentialIdenticalAcrossModes) {
  RhoPhaseConfig cfg;
  cfg.n_atoms = 4;
  cfg.l_max = 3;
  cfg.radial_points = 48;
  cfg.grid_points_per_rank = 256;
  cfg.ranks_per_device = 4;

  SimtRuntime ref_rt(DeviceModel::gcn_gpu());
  const auto ref = run_rho_phase(ref_rt, cfg, FusionMode::Unfused);

  SimtRuntime rt(GetParam() == FusionMode::VerticalFused
                     ? DeviceModel::sw39010()
                     : DeviceModel::gcn_gpu());
  const auto got = run_rho_phase(rt, cfg, GetParam());
  ASSERT_EQ(got.potential.size(), ref.potential.size());
  for (std::size_t i = 0; i < ref.potential.size(); ++i)
    EXPECT_DOUBLE_EQ(got.potential[i], ref.potential[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(Modes, RhoFusionEquivalence,
                         ::testing::Values(FusionMode::Unfused,
                                           FusionMode::VerticalFused,
                                           FusionMode::HorizontalFused));

TEST(RhoFusion, HorizontalEliminatesRedundantProducers) {
  RhoPhaseConfig cfg;
  cfg.n_atoms = 4;
  cfg.l_max = 3;
  cfg.radial_points = 48;
  cfg.grid_points_per_rank = 128;
  cfg.ranks_per_device = 8;

  SimtRuntime gpu(DeviceModel::gcn_gpu());
  const auto unfused = run_rho_phase(gpu, cfg, FusionMode::Unfused);
  const auto fused = run_rho_phase(gpu, cfg, FusionMode::HorizontalFused);
  EXPECT_EQ(unfused.producer_runs, 8u);
  EXPECT_EQ(fused.producer_runs, 1u);
  // Host round trips eliminated.
  EXPECT_GT(unfused.stats.host_transfer_bytes, 0u);
  EXPECT_EQ(fused.stats.host_transfer_bytes, 0u);
  // Fewer kernel launches: 2 vs 16.
  EXPECT_EQ(fused.stats.launches, 2u);
  EXPECT_EQ(unfused.stats.launches, 16u);
  // And the modeled time improves.
  EXPECT_LT(fused.stats.modeled_seconds(gpu.model()),
            unfused.stats.modeled_seconds(gpu.model()));
}

TEST(RhoFusion, VerticalGatedByRmaLimit) {
  RhoPhaseConfig small;
  small.n_atoms = 2;
  small.l_max = 2;        // 9 channels * 48 knots * 4 rows * 8 B = 13.8 KB
  small.radial_points = 48;
  small.grid_points_per_rank = 64;
  small.ranks_per_device = 2;
  ASSERT_LT(small.spline_bytes_per_atom(), 64u * 1024u);

  RhoPhaseConfig big = small;
  big.l_max = 7;          // 64 channels -> ~98 KB > 64 KB RMA limit
  ASSERT_GT(big.spline_bytes_per_atom(), 64u * 1024u);

  SimtRuntime sw(DeviceModel::sw39010());
  const auto ok = run_rho_phase(sw, small, FusionMode::VerticalFused);
  EXPECT_TRUE(ok.vertical_applicable);
  const auto blocked = run_rho_phase(sw, big, FusionMode::VerticalFused);
  EXPECT_FALSE(blocked.vertical_applicable);  // falls back, still correct

  SimtRuntime gpu(DeviceModel::gcn_gpu());
  const auto no_rma = run_rho_phase(gpu, small, FusionMode::VerticalFused);
  EXPECT_FALSE(no_rma.vertical_applicable);  // GPU has no RMA at all
}

TEST(PmLoop, CollapsedEqualsNested) {
  SimtRuntime rt(DeviceModel::gcn_gpu());
  for (int pmax : {0, 1, 3, 5, 9}) {
    const auto nested = run_pm_loop_nested(rt, 17, pmax);
    const auto collapsed = run_pm_loop_collapsed(rt, 17, pmax);
    ASSERT_EQ(nested.values.size(), collapsed.values.size());
    for (std::size_t i = 0; i < nested.values.size(); ++i)
      EXPECT_DOUBLE_EQ(nested.values[i], collapsed.values[i])
          << "pmax=" << pmax << " i=" << i;
  }
}

TEST(PmLoop, IndexRecoveryCoversAllPairs) {
  // The sqrt-based (p, m) recovery is a bijection onto the triangle.
  for (int pmax : {2, 5, 9}) {
    const std::size_t nlm = static_cast<std::size_t>((pmax + 1) * (pmax + 1));
    std::vector<int> seen(nlm, 0);
    for (std::size_t idx = 0; idx < nlm; ++idx) {
      const int p = static_cast<int>(std::sqrt(static_cast<double>(idx)));
      const int m = static_cast<int>(idx) - p * p - p;
      ASSERT_GE(m, -p);
      ASSERT_LE(m, p);
      seen[static_cast<std::size_t>(p * p + m + p)]++;
    }
    for (auto c : seen) EXPECT_EQ(c, 1);
  }
}

TEST(PmLoop, CollapsedUsesFewerWavefrontSteps) {
  SimtRuntime rt(DeviceModel::gcn_gpu());
  const auto nested = run_pm_loop_nested(rt, 100, 9);
  const auto collapsed = run_pm_loop_collapsed(rt, 100, 9);
  EXPECT_LT(collapsed.stats.wavefront_steps, nested.stats.wavefront_steps);
  EXPECT_LT(collapsed.stats.modeled_seconds(rt.model()),
            nested.stats.modeled_seconds(rt.model()));
}

TEST(DensityKernel, DenseEqualsSparse) {
  const auto w = DensityKernelWorkload::make(48, 512, 256, 16);
  SimtRuntime rt(DeviceModel::gcn_gpu());
  const auto dense = run_sumup_dense(rt, w);
  const auto sparse = run_sumup_sparse(rt, w);
  ASSERT_EQ(dense.density.size(), sparse.density.size());
  for (std::size_t i = 0; i < dense.density.size(); ++i)
    EXPECT_NEAR(dense.density[i], sparse.density[i], 1e-12);
}

TEST(DensityKernel, DenseFasterThanSparse) {
  const auto w = DensityKernelWorkload::make(96, 1359, 2048, 24);
  SimtRuntime rt(DeviceModel::gcn_gpu());
  const auto dense = run_sumup_dense(rt, w);
  const auto sparse = run_sumup_sparse(rt, w);
  // Real measured host time: binary-search fetches lose to direct indexing.
  EXPECT_LT(dense.host_seconds, sparse.host_seconds);
  // And the counted model agrees on both devices.
  EXPECT_LT(dense.stats.modeled_seconds(DeviceModel::sw39010()),
            sparse.stats.modeled_seconds(DeviceModel::sw39010()));
}

TEST(DensityKernel, WorkloadValidation) {
  EXPECT_THROW(DensityKernelWorkload::make(8, 512, 10, 16), Error);   // support>local
  EXPECT_THROW(DensityKernelWorkload::make(64, 32, 10, 16), Error);   // local>global
}

}  // namespace
