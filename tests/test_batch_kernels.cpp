// Tests for kernels/batch_kernels.hpp: the Sumup and H phases in the
// OpenCL-style batch execution model, validated against the serial
// BatchIntegrator on real molecules.

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/structures.hpp"
#include "grid/batch.hpp"
#include "kernels/batch_kernels.hpp"
#include "scf/integrator.hpp"
#include "simt/device.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::kernels;

struct Workbench {
  std::shared_ptr<const basis::BasisSet> basis;
  std::shared_ptr<const grid::MolecularGrid> grid;
  std::vector<grid::Batch> batches;
  std::vector<BatchSupport> supports;
  std::unique_ptr<scf::BatchIntegrator> integ;
};

Workbench make_workbench(const grid::Structure& s, std::size_t batch_points = 96) {
  Workbench setup;
  setup.basis =
      std::make_shared<const basis::BasisSet>(s, basis::BasisTier::Minimal);
  grid::GridSpec spec;
  spec.radial_points = 28;
  spec.angular_degree = 9;
  setup.grid = std::make_shared<const grid::MolecularGrid>(
      grid::MolecularGrid::build(s, spec));
  setup.batches = grid::make_batches(*setup.grid, batch_points);
  setup.supports = build_batch_supports(*setup.basis, *setup.grid, setup.batches);
  setup.integ = std::make_unique<scf::BatchIntegrator>(setup.basis, setup.grid);
  return setup;
}

linalg::Matrix random_symmetric(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) m(i, j) = m(j, i) = rng.uniform(-1, 1);
  return m;
}

TEST(BatchSupports, CoverEveryPointOnce) {
  const Workbench s = make_workbench(core::water());
  std::vector<int> seen(s.grid->size(), 0);
  for (const auto& sup : s.supports) {
    EXPECT_EQ(sup.offsets.size(), sup.point_ids.size() + 1);
    for (auto pid : sup.point_ids) seen[pid]++;
    // Local indices stay within the block.
    for (auto li : sup.local_index) EXPECT_LT(li, sup.basis_ids.size());
    // Global basis ids are sorted and unique.
    for (std::size_t i = 1; i < sup.basis_ids.size(); ++i)
      EXPECT_LT(sup.basis_ids[i - 1], sup.basis_ids[i]);
  }
  for (int c : seen) EXPECT_EQ(c, 1);
}

class BatchKernelDevices : public ::testing::TestWithParam<bool> {};

TEST_P(BatchKernelDevices, SumupMatchesIntegrator) {
  const bool sunway = GetParam();
  const Workbench s = make_workbench(core::water());
  const auto p1 = random_symmetric(s.basis->size(), 42);

  simt::SimtRuntime rt(sunway ? simt::DeviceModel::sw39010()
                              : simt::DeviceModel::gcn_gpu());
  std::vector<double> n1(s.grid->size(), 0.0);
  sumup_kernel(rt, *s.grid, s.supports, p1, n1);

  const auto reference = s.integ->density(p1);
  ASSERT_EQ(n1.size(), reference.size());
  for (std::size_t i = 0; i < n1.size(); ++i)
    EXPECT_NEAR(n1[i], reference[i], 1e-12) << i;
  EXPECT_EQ(rt.stats().launches, 1u);
  EXPECT_GT(rt.stats().barriers, 0u);
}

TEST_P(BatchKernelDevices, HKernelMatchesIntegrator) {
  const bool sunway = GetParam();
  const Workbench s = make_workbench(core::water());
  Rng rng(43);
  std::vector<double> v(s.grid->size());
  for (auto& x : v) x = rng.uniform(-0.5, 0.5);

  simt::SimtRuntime rt(sunway ? simt::DeviceModel::sw39010()
                              : simt::DeviceModel::gcn_gpu());
  linalg::Matrix h(s.basis->size(), s.basis->size());
  h_kernel(rt, *s.grid, s.supports, v, h);

  const auto reference = s.integ->potential_matrix(v);
  EXPECT_LT(h.max_abs_diff(reference), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Devices, BatchKernelDevices, ::testing::Bool());

TEST(BatchKernels, AccumulationComposesAcrossCalls) {
  // Two successive h_kernel calls add their contributions.
  const Workbench s = make_workbench(core::water());
  std::vector<double> v(s.grid->size(), 0.2);
  simt::SimtRuntime rt(simt::DeviceModel::gcn_gpu());
  linalg::Matrix h(s.basis->size(), s.basis->size());
  h_kernel(rt, *s.grid, s.supports, v, h);
  h_kernel(rt, *s.grid, s.supports, v, h);
  auto reference = s.integ->potential_matrix(v);
  reference.scale(2.0);
  EXPECT_LT(h.max_abs_diff(reference), 1e-12);
}

TEST(BatchKernels, WorksOnMethaneWithManyBatches) {
  const Workbench s = make_workbench(core::methane(), 48);
  EXPECT_GT(s.supports.size(), 8u);
  const auto p1 = random_symmetric(s.basis->size(), 44);
  simt::SimtRuntime rt(simt::DeviceModel::sw39010());
  std::vector<double> n1(s.grid->size(), 0.0);
  sumup_kernel(rt, *s.grid, s.supports, p1, n1);
  const auto reference = s.integ->density(p1);
  for (std::size_t i = 0; i < n1.size(); ++i) EXPECT_NEAR(n1[i], reference[i], 1e-12);
}

TEST(BatchKernels, ShapeValidation) {
  const Workbench s = make_workbench(core::water());
  simt::SimtRuntime rt(simt::DeviceModel::gcn_gpu());
  std::vector<double> wrong(3, 0.0);
  const auto p1 = random_symmetric(s.basis->size(), 45);
  EXPECT_THROW(sumup_kernel(rt, *s.grid, s.supports, p1, wrong), Error);
  linalg::Matrix h(2, 3);
  std::vector<double> v(s.grid->size(), 0.0);
  EXPECT_THROW(h_kernel(rt, *s.grid, s.supports, v, h), Error);
}

}  // namespace
