// Tests for the device-engine DFPT path: the Sumup/H phases executed
// through the OpenCL-style SIMT runtime must reproduce the host-integrator
// results, while the runtime accumulates the architectural counters the
// device models consume.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/dfpt.hpp"
#include "core/structures.hpp"
#include "scf/scf_solver.hpp"
#include "simt/device.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::core;

const scf::ScfResult& ground_h2() {
  static const scf::ScfResult res = [] {
    grid::Structure s;
    s.add_atom(1, {0, 0, -0.7});
    s.add_atom(1, {0, 0, 0.7});
    scf::ScfOptions opt;
    opt.tier = basis::BasisTier::Light;
    opt.grid.radial_points = 30;
    opt.grid.angular_degree = 9;
    opt.poisson.radial_points = 72;
    opt.mixer = scf::Mixer::Diis;
    return scf::ScfSolver(s, opt).run();
  }();
  return res;
}

class DeviceEngine : public ::testing::TestWithParam<bool> {};

TEST_P(DeviceEngine, MatchesHostIntegratorPath) {
  const bool sunway = GetParam();
  const auto& ground = ground_h2();
  ASSERT_TRUE(ground.converged);

  DfptOptions host;
  host.tolerance = 1e-8;
  const DfptSolver serial(ground, host);
  const auto ref = serial.solve_direction(2);

  DfptOptions dev = host;
  dev.device = std::make_shared<simt::SimtRuntime>(
      sunway ? simt::DeviceModel::sw39010() : simt::DeviceModel::gcn_gpu());
  dev.device_batch_points = 96;
  const DfptSolver on_device(ground, dev);
  const auto got = on_device.solve_direction(2);

  EXPECT_TRUE(got.converged);
  EXPECT_EQ(got.iterations, ref.iterations);
  EXPECT_NEAR(got.dipole_response.z, ref.dipole_response.z, 1e-9);
  EXPECT_LT(got.p1.max_abs_diff(ref.p1), 1e-10);
  ASSERT_EQ(got.n1_samples.size(), ref.n1_samples.size());
  for (std::size_t i = 0; i < ref.n1_samples.size(); ++i)
    ASSERT_NEAR(got.n1_samples[i], ref.n1_samples[i], 1e-11);

  // The runtime really executed kernels: two launches per CPSCF iteration
  // past the first (Sumup on every iteration, H once v1 exists).
  const auto& stats = dev.device->stats();
  EXPECT_GT(stats.launches, static_cast<std::size_t>(got.iterations));
  EXPECT_GT(stats.offchip_read_bytes, 0u);
  EXPECT_GT(stats.barriers, 0u);
  EXPECT_GT(dev.device->modeled_seconds(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Devices, DeviceEngine, ::testing::Bool());

TEST(DeviceEngineCounts, LaunchCountMatchesPhaseStructure) {
  const auto& ground = ground_h2();
  DfptOptions dev;
  dev.device = std::make_shared<simt::SimtRuntime>(simt::DeviceModel::gcn_gpu());
  const DfptSolver solver(ground, dev);
  const auto r = solver.solve_direction(0);
  // Sumup launches every iteration; H launches from iteration 2 onward.
  const std::size_t expected =
      static_cast<std::size_t>(r.iterations) +
      static_cast<std::size_t>(r.iterations - 1);
  EXPECT_EQ(dev.device->stats().launches, expected);
}

}  // namespace
