// Cross-module integration and physics-property tests that exercise the
// whole stack (basis + grid + Poisson + SCF + DFPT) on real molecules.

#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "core/dfpt.hpp"
#include "core/structures.hpp"
#include "scf/scf_solver.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::core;

scf::ScfOptions light_options() {
  scf::ScfOptions opt;
  opt.tier = basis::BasisTier::Light;
  opt.grid.radial_points = 36;
  opt.grid.angular_degree = 9;
  opt.poisson.radial_points = 72;
  opt.poisson.l_max = 4;
  opt.mixer = scf::Mixer::Diis;
  return opt;
}

grid::Structure h2() {
  grid::Structure s;
  s.add_atom(1, {0, 0, -0.7});
  s.add_atom(1, {0, 0, 0.7});
  return s;
}

TEST(Integration, LargerBasisIsVariationallyLower) {
  auto minimal = light_options();
  minimal.tier = basis::BasisTier::Minimal;
  minimal.mixer = scf::Mixer::Linear;
  const auto e_min = scf::ScfSolver(h2(), minimal).run();
  const auto e_light = scf::ScfSolver(h2(), light_options()).run();
  ASSERT_TRUE(e_min.converged);
  ASSERT_TRUE(e_light.converged);
  EXPECT_LT(e_light.total_energy, e_min.total_energy);
}

TEST(Integration, FieldEnergyIsQuadraticWithAlphaCurvature) {
  // E(xi) = E(0) - 1/2 alpha xi^2 + O(xi^4): a third independent route to
  // the polarizability, via total energies only.
  const auto opt = light_options();
  const auto structure = h2();
  const auto ground = scf::ScfSolver(structure, opt).run();
  ASSERT_TRUE(ground.converged);
  const DfptSolver dfpt(ground, {});
  const double alpha = dfpt.solve_direction(2).dipole_response.z;

  const double xi = 5e-3;
  auto opt_p = opt, opt_m = opt;
  opt_p.external_field = {0, 0, +xi};
  opt_m.external_field = {0, 0, -xi};
  const auto rp = scf::ScfSolver(structure, opt_p).run();
  const auto rm = scf::ScfSolver(structure, opt_m).run();
  ASSERT_TRUE(rp.converged);
  ASSERT_TRUE(rm.converged);

  // Curvature from the symmetric second difference.
  const double curvature =
      (rp.total_energy + rm.total_energy - 2.0 * ground.total_energy) / (xi * xi);
  EXPECT_NEAR(-curvature, alpha, 0.05 * alpha);
  // Both field signs lower the energy of the symmetric molecule equally.
  EXPECT_LT(rp.total_energy, ground.total_energy);
  EXPECT_NEAR(rp.total_energy, rm.total_energy, 1e-6);
}

TEST(Integration, WaterTensorStructure) {
  // H2O in our geometry: H atoms span the y axis, C2v axis along z. The
  // in-plane y response (along the H-H direction) is the largest; off-
  // diagonal elements vanish by symmetry except the tiny grid noise.
  const auto ground = scf::ScfSolver(water(), light_options()).run();
  ASSERT_TRUE(ground.converged);
  const DfptSolver dfpt(ground, {});
  const DfptResult r = dfpt.solve_all();
  const double axx = r.polarizability(0, 0);
  const double ayy = r.polarizability(1, 1);
  const double azz = r.polarizability(2, 2);
  EXPECT_GT(ayy, axx);
  EXPECT_GT(ayy, azz);
  EXPECT_GT(axx, 0.0);
  // Symmetry of the tensor: alpha_yz == alpha_zy etc. The off-diagonals are
  // themselves grid noise (~1e-3) at light settings, so compare loosely.
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      EXPECT_NEAR(r.polarizability(i, j), r.polarizability(j, i), 2e-3)
          << i << j;
  // All directions converged.
  for (const auto& d : r.directions) EXPECT_TRUE(d.converged);
}

TEST(Integration, ScfEnergyStableUnderGridRefinement) {
  auto coarse = light_options();
  coarse.tier = basis::BasisTier::Minimal;
  coarse.mixer = scf::Mixer::Linear;
  coarse.grid.radial_points = 30;
  auto fine = coarse;
  fine.grid.radial_points = 60;
  fine.grid.angular_degree = 11;
  const auto e_c = scf::ScfSolver(h2(), coarse).run();
  const auto e_f = scf::ScfSolver(h2(), fine).run();
  ASSERT_TRUE(e_c.converged);
  ASSERT_TRUE(e_f.converged);
  EXPECT_NEAR(e_c.total_energy, e_f.total_energy, 5e-3);
}

TEST(Integration, NuclearRepulsionIncludedInTotalEnergy) {
  // Pull the two protons apart: at large separation the energy approaches
  // twice the isolated-atom value from above.
  auto opt = light_options();
  opt.tier = basis::BasisTier::Minimal;
  opt.mixer = scf::Mixer::Linear;
  // Moderately stretched bond (full dissociation is pathological for a
  // restricted closed-shell reference, as in any spin-restricted code).
  grid::Structure far;
  far.add_atom(1, {0, 0, -1.5});
  far.add_atom(1, {0, 0, 1.5});
  const auto bonded = scf::ScfSolver(h2(), opt).run();
  const auto stretched = scf::ScfSolver(far, opt).run();
  ASSERT_TRUE(bonded.converged);
  ASSERT_TRUE(stretched.converged);
  EXPECT_LT(bonded.total_energy, stretched.total_energy);
}

TEST(Integration, DipoleOfWaterPointsAlongC2Axis) {
  const auto ground = scf::ScfSolver(water(), light_options()).run();
  ASSERT_TRUE(ground.converged);
  // Electronic dipole: x and y components vanish by symmetry up to the
  // light grid's anisotropy noise (~1e-3); z is finite (both H atoms sit
  // at positive z in this geometry).
  EXPECT_NEAR(ground.dipole.x, 0.0, 5e-3);
  EXPECT_NEAR(ground.dipole.y, 0.0, 5e-3);
  EXPECT_GT(std::fabs(ground.dipole.z), 0.5);
}

TEST(Integration, TraceOfPSEqualsElectronCountAfterScf) {
  const auto ground = scf::ScfSolver(water(), light_options()).run();
  ASSERT_TRUE(ground.converged);
  EXPECT_NEAR(linalg::trace_product(ground.density_matrix, ground.overlap), 10.0,
              1e-9);
}

}  // namespace
