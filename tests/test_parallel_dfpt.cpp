// Integration tests for the distributed DFPT driver: the parallel
// decomposition (distributed Sumup/H, replicated Sternheimer/Poisson,
// packed hierarchical synthesis) must reproduce the serial DfptSolver.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/dfpt.hpp"
#include "core/parallel_dfpt.hpp"
#include "core/structures.hpp"
#include "scf/scf_solver.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::core;

const scf::ScfResult& ground_h2() {
  static const scf::ScfResult res = [] {
    grid::Structure s;
    s.add_atom(1, {0, 0, -0.7});
    s.add_atom(1, {0, 0, 0.7});
    scf::ScfOptions opt;
    opt.tier = basis::BasisTier::Light;
    opt.grid.radial_points = 30;
    opt.grid.angular_degree = 9;
    opt.poisson.radial_points = 72;
    return scf::ScfSolver(s, opt).run();
  }();
  return res;
}

class ParallelDfptTopology
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, comm::ReduceMode>> {};

TEST_P(ParallelDfptTopology, MatchesSerialSolver) {
  const auto [ranks, per_node, mode] = GetParam();
  const auto& ground = ground_h2();
  ASSERT_TRUE(ground.converged);

  DfptOptions dopt;
  dopt.tolerance = 1e-8;
  const DfptSolver serial(ground, dopt);
  const DfptDirectionResult ref = serial.solve_direction(2);
  ASSERT_TRUE(ref.converged);

  ParallelDfptOptions popt;
  popt.dfpt = dopt;
  popt.ranks = ranks;
  popt.ranks_per_node = per_node;
  popt.reduce_mode = mode;
  popt.batch_points = 96;
  const ParallelDfptResult par = solve_direction_parallel(ground, popt, 2);

  EXPECT_TRUE(par.direction.converged);
  EXPECT_EQ(par.direction.iterations, ref.iterations);
  EXPECT_NEAR(par.direction.dipole_response.z, ref.dipole_response.z, 1e-7);
  EXPECT_LT(par.direction.p1.max_abs_diff(ref.p1), 1e-8);
  // The distributed response density matches point by point.
  ASSERT_EQ(par.direction.n1_samples.size(), ref.n1_samples.size());
  double max_dn = 0.0;
  for (std::size_t i = 0; i < ref.n1_samples.size(); ++i)
    max_dn = std::max(max_dn,
                      std::fabs(par.direction.n1_samples[i] - ref.n1_samples[i]));
  EXPECT_LT(max_dn, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, ParallelDfptTopology,
    ::testing::Values(
        std::tuple<std::size_t, std::size_t, comm::ReduceMode>{
            1, 1, comm::ReduceMode::Flat},
        std::tuple<std::size_t, std::size_t, comm::ReduceMode>{
            2, 2, comm::ReduceMode::Flat},
        std::tuple<std::size_t, std::size_t, comm::ReduceMode>{
            4, 2, comm::ReduceMode::Hierarchical},
        std::tuple<std::size_t, std::size_t, comm::ReduceMode>{
            8, 4, comm::ReduceMode::Hierarchical}));

TEST(ParallelDfpt, DistributedRhoProducerMatchesSerialSolver) {
  // distribute_rho splits the Poisson producer's projection rows across
  // ranks and synthesizes them with a packed rho_multipole AllReduce; the
  // result must match the serial reference exactly like the replicated
  // producer does, with or without speed-weighted shares.
  const auto& ground = ground_h2();
  ASSERT_TRUE(ground.converged);
  DfptOptions dopt;
  dopt.tolerance = 1e-8;
  const DfptSolver serial(ground, dopt);
  const DfptDirectionResult ref = serial.solve_direction(2);

  ParallelDfptOptions popt;
  popt.dfpt = dopt;
  popt.ranks = 4;
  popt.ranks_per_node = 2;
  popt.reduce_mode = comm::ReduceMode::Hierarchical;
  popt.batch_points = 96;
  popt.distribute_rho = true;
  const ParallelDfptResult par = solve_direction_parallel(ground, popt, 2);
  EXPECT_TRUE(par.direction.converged);
  EXPECT_EQ(par.direction.iterations, ref.iterations);
  EXPECT_LT(par.direction.p1.max_abs_diff(ref.p1), 1e-8);

  // Weighted shares change which rank computes which rows, never the sum.
  ParallelDfptOptions wopt = popt;
  wopt.rank_speed_weights = {1.0, 0.125, 1.0, 1.0};
  const ParallelDfptResult wpar = solve_direction_parallel(ground, wopt, 2);
  EXPECT_TRUE(wpar.direction.converged);
  EXPECT_LT(wpar.direction.p1.max_abs_diff(ref.p1), 1e-8);
}

TEST(ParallelDfpt, StatsReportLoadAndCommunication) {
  const auto& ground = ground_h2();
  ParallelDfptOptions popt;
  popt.ranks = 4;
  popt.batch_points = 64;
  const ParallelDfptResult par = solve_direction_parallel(ground, popt, 2);
  EXPECT_GT(par.stats.batches, 4u);
  EXPECT_GT(par.stats.collectives, 0u);
  EXPECT_GT(par.stats.rows_reduced, 0u);
  // Median-split batches keep the point load within ~2x of the mean.
  EXPECT_LT(par.stats.max_rank_points_share, 2.0);
  EXPECT_GE(par.stats.max_rank_points_share, 1.0);
}

TEST(ParallelDfpt, RejectsBadArguments) {
  const auto& ground = ground_h2();
  ParallelDfptOptions popt;
  EXPECT_THROW(solve_direction_parallel(ground, popt, 3), Error);
  popt.ranks = 100000;  // more ranks than batches
  EXPECT_THROW(solve_direction_parallel(ground, popt, 0), Error);
}

}  // namespace
