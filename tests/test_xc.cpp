// Tests for src/xc: LDA exchange and PZ81 correlation values, potentials,
// thermodynamic consistency, and the DFPT kernel f_xc.

#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "xc/lda.hpp"

namespace {

using namespace aeqp::xc;

TEST(Lda, ExchangeKnownValueAtUnitDensity) {
  // e_x(n=1) = -(3/4)(3/pi)^{1/3} = -0.738558766...
  EXPECT_NEAR(slater_exchange_energy(1.0), -0.7385587663820224, 1e-12);
  EXPECT_NEAR(slater_exchange_potential(1.0), 4.0 / 3.0 * -0.7385587663820224,
              1e-12);
}

TEST(Lda, ExchangeScalesAsCubeRoot) {
  const double e1 = slater_exchange_energy(2.0);
  const double e2 = slater_exchange_energy(16.0);
  EXPECT_NEAR(e2 / e1, 2.0, 1e-12);  // (16/2)^{1/3} = 2
}

TEST(Lda, PotentialIsEnergyDerivative) {
  // v_xc = d(n * e_xc)/dn; verify by finite difference across densities,
  // including both PZ81 branches (rs < 1 and rs > 1).
  for (double n : {1e-4, 1e-3, 0.01, 0.05, 0.238, 0.5, 1.0, 5.0}) {
    const double h = 1e-6 * n;
    auto f = [](double d) {
      return d * (slater_exchange_energy(d) + pz81_correlation_energy(d));
    };
    const double v_fd = (f(n + h) - f(n - h)) / (2.0 * h);
    const double v = slater_exchange_potential(n) + pz81_correlation_potential(n);
    EXPECT_NEAR(v, v_fd, 1e-6 * std::fabs(v)) << "n=" << n;
  }
}

TEST(Lda, CorrelationNegativeAndSmallerThanExchange) {
  for (double n : {0.001, 0.01, 0.1, 1.0, 10.0}) {
    EXPECT_LT(pz81_correlation_energy(n), 0.0);
    EXPECT_GT(pz81_correlation_energy(n), slater_exchange_energy(n));
  }
}

TEST(Lda, BranchesNearlyMeetAtRsOne) {
  // PZ81's two parameterizations famously match only to ~3e-5 hartree at
  // rs = 1 (n = 3/(4 pi)); assert the known magnitude of the seam.
  const double n1 = 3.0 / (4.0 * aeqp::constants::pi);
  const double below = pz81_correlation_energy(n1 * (1 + 1e-7));
  const double above = pz81_correlation_energy(n1 * (1 - 1e-7));
  EXPECT_NEAR(below, above, 1e-4);
  EXPECT_NEAR(below, -0.0596, 1e-4);
}

TEST(Lda, EvaluateBundlesConsistently) {
  const LdaPoint p = lda_evaluate(0.3);
  EXPECT_NEAR(p.exc, slater_exchange_energy(0.3) + pz81_correlation_energy(0.3),
              1e-14);
  EXPECT_NEAR(p.vxc,
              slater_exchange_potential(0.3) + pz81_correlation_potential(0.3),
              1e-14);
}

TEST(Lda, KernelIsPotentialDerivative) {
  for (double n : {1e-3, 0.02, 0.238, 1.0, 4.0}) {
    const double h = 1e-5 * n;
    const double f_fd =
        (lda_evaluate(n + h).vxc - lda_evaluate(n - h).vxc) / (2.0 * h);
    EXPECT_NEAR(lda_evaluate(n).fxc, f_fd, 1e-4 * std::fabs(f_fd)) << "n=" << n;
  }
}

TEST(Lda, KernelNegative) {
  // dv_xc/dn < 0 for all physical densities (attractive response).
  for (double n : {1e-3, 0.1, 1.0, 100.0}) EXPECT_LT(lda_evaluate(n).fxc, 0.0);
}

TEST(Lda, VanishingDensityIsSafe) {
  const LdaPoint p = lda_evaluate(0.0);
  EXPECT_EQ(p.exc, 0.0);
  EXPECT_EQ(p.vxc, 0.0);
  EXPECT_EQ(p.fxc, 0.0);
  EXPECT_EQ(lda_evaluate(-1.0).vxc, 0.0);  // negative densities clamp safely
}

}  // namespace
