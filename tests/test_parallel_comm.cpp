// Tests for src/parallel (simmpi runtime, machine cost models) and src/comm
// (packed and hierarchical collectives). Property tests compare every
// communication algorithm against the flat reference bit-for-bit.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "comm/hierarchical.hpp"
#include "comm/packed.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "parallel/cluster.hpp"
#include "parallel/machine_model.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::parallel;
using namespace aeqp::comm;

TEST(Cluster, TopologyMapping) {
  Cluster cluster(10, 4);
  EXPECT_EQ(cluster.node_count(), 3u);
  std::atomic<int> checks{0};
  cluster.run([&](Communicator& c) {
    EXPECT_EQ(c.size(), 10u);
    EXPECT_EQ(c.node(), c.rank() / 4);
    EXPECT_EQ(c.node_rank(), c.rank() % 4);
    if (c.node() == 2) {
      EXPECT_EQ(c.node_size(), 2u);  // 10 = 4+4+2
    }
    checks++;
  });
  EXPECT_EQ(checks.load(), 10);
}

TEST(Cluster, AllreduceSumsAcrossRanks) {
  Cluster cluster(8, 4);
  cluster.run([&](Communicator& c) {
    std::vector<double> v = {static_cast<double>(c.rank()), 1.0,
                             static_cast<double>(c.rank()) * 0.5};
    c.allreduce_sum(v);
    EXPECT_DOUBLE_EQ(v[0], 28.0);  // 0+..+7
    EXPECT_DOUBLE_EQ(v[1], 8.0);
    EXPECT_DOUBLE_EQ(v[2], 14.0);
  });
}

TEST(Cluster, RepeatedAllreducesDoNotInterfere) {
  Cluster cluster(6, 3);
  cluster.run([&](Communicator& c) {
    for (int round = 1; round <= 5; ++round) {
      std::vector<double> v = {static_cast<double>(round)};
      c.allreduce_sum(v);
      EXPECT_DOUBLE_EQ(v[0], 6.0 * round);
    }
  });
}

TEST(Cluster, BroadcastFromEveryRoot) {
  Cluster cluster(5, 2);
  cluster.run([&](Communicator& c) {
    for (std::size_t root = 0; root < c.size(); ++root) {
      std::vector<double> v = {c.rank() == root ? 42.5 : 0.0};
      c.broadcast(v, root);
      EXPECT_DOUBLE_EQ(v[0], 42.5);
    }
  });
}

TEST(Cluster, NodeWindowIsSharedWithinNode) {
  Cluster cluster(8, 4);
  cluster.run([&](Communicator& c) {
    auto w = c.node_window(4);
    c.node_critical([&] { w[0] += 1.0; });
    c.node_barrier();
    EXPECT_DOUBLE_EQ(w[0], static_cast<double>(c.node_size()));
  });
}

TEST(Cluster, LeaderAllreduceOnlySumsLeaders) {
  Cluster cluster(8, 4);
  cluster.run([&](Communicator& c) {
    std::vector<double> v = {1000.0 + static_cast<double>(c.node())};
    c.allreduce_sum_leaders(v);
    if (c.node_rank() == 0) {
      EXPECT_DOUBLE_EQ(v[0], 2001.0);  // nodes 0 and 1
    }
  });
}

class HierarchicalProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(HierarchicalProperty, MatchesFlatAllreduce) {
  const auto [ranks, per_node, elems] = GetParam();
  Cluster cluster(ranks, per_node);
  cluster.run([&](Communicator& c) {
    Rng rng(1000 + c.rank());
    std::vector<double> data(elems), reference(elems);
    for (std::size_t i = 0; i < elems; ++i) data[i] = rng.uniform(-1, 1);
    reference = data;

    hierarchical_allreduce_sum(c, data);
    c.allreduce_sum(reference);
    for (std::size_t i = 0; i < elems; ++i)
      EXPECT_NEAR(data[i], reference[i], 1e-12) << "i=" << i;
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HierarchicalProperty,
    ::testing::Values(std::tuple<std::size_t, std::size_t, std::size_t>{4, 2, 16},
                      std::tuple<std::size_t, std::size_t, std::size_t>{8, 4, 7},
                      std::tuple<std::size_t, std::size_t, std::size_t>{12, 4, 33},
                      std::tuple<std::size_t, std::size_t, std::size_t>{6, 6, 5},
                      std::tuple<std::size_t, std::size_t, std::size_t>{9, 4, 64},
                      std::tuple<std::size_t, std::size_t, std::size_t>{1, 1, 3}));

TEST(Packed, PacksManyRowsIntoFewCollectives) {
  Cluster cluster(4, 2);
  cluster.run([&](Communicator& c) {
    std::vector<std::vector<double>> rows(100, std::vector<double>(8));
    for (std::size_t r = 0; r < rows.size(); ++r)
      for (std::size_t i = 0; i < 8; ++i)
        rows[r][i] = static_cast<double>(c.rank() + r) + 0.25 * i;

    PackedAllReducer packer(c, ReduceMode::Flat, /*max_bytes=*/25 * 8 * sizeof(double));
    for (auto& row : rows) packer.add(row);
    packer.flush();

    EXPECT_EQ(packer.rows_packed(), 100u);
    EXPECT_EQ(packer.collective_count(), 4u);  // 100 rows / 25-row budget

    // Values must equal the flat per-row reduction.
    for (std::size_t r = 0; r < rows.size(); ++r)
      for (std::size_t i = 0; i < 8; ++i) {
        const double expect = 4.0 * (static_cast<double>(r) + 0.25 * i) + 6.0;
        EXPECT_NEAR(rows[r][i], expect, 1e-12);
      }
  });
}

TEST(Packed, HierarchicalModeMatchesFlat) {
  Cluster cluster(8, 4);
  cluster.run([&](Communicator& c) {
    Rng rng(77 + c.rank());
    std::vector<std::vector<double>> a(20, std::vector<double>(5)), b;
    for (auto& row : a)
      for (auto& v : row) v = rng.uniform(-2, 2);
    b = a;

    PackedAllReducer flat(c, ReduceMode::Flat);
    for (auto& row : a) flat.add(row);
    flat.flush();

    PackedAllReducer hier(c, ReduceMode::Hierarchical);
    for (auto& row : b) hier.add(row);
    hier.flush();

    for (std::size_t r = 0; r < a.size(); ++r)
      for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(a[r][i], b[r][i], 1e-12);
  });
}

TEST(Packed, OversizedSingleRowStillGoesOut) {
  Cluster cluster(2, 2);
  cluster.run([&](Communicator& c) {
    std::vector<double> big(64, 1.0);
    PackedAllReducer packer(c, ReduceMode::Flat, /*max_bytes=*/16);
    packer.add(big);
    EXPECT_EQ(packer.collective_count(), 1u);  // auto-flushed
    EXPECT_DOUBLE_EQ(big[0], 2.0);
    packer.flush();  // no-op
    EXPECT_EQ(packer.collective_count(), 1u);
  });
}

TEST(MachineModel, PackingWinsAndGrowsWithScale) {
  const CommCostModel model(MachineModel::hpc2_amd());
  const std::size_t row = 8192;  // bytes
  const std::size_t c = 512;
  double prev_speedup = 1.0;
  for (std::size_t ranks : {256u, 1024u, 4096u}) {
    const double base = model.repeated_allreduce_seconds(row, c, ranks);
    const double packed = model.packed_allreduce_seconds(row, c, ranks);
    const double speedup = base / packed;
    EXPECT_GT(speedup, prev_speedup);  // grows with rank count (Fig. 10)
    prev_speedup = speedup;
  }
  EXPECT_GT(prev_speedup, 50.0);
}

TEST(MachineModel, HierarchyHelpsOnHpc2Only) {
  const CommCostModel hpc2(MachineModel::hpc2_amd());
  const std::size_t row = 8192, c = 512, ranks = 4096;
  const double packed = hpc2.packed_allreduce_seconds(row, c, ranks);
  const auto hier = hpc2.packed_hierarchical_seconds(row, c, ranks);
  EXPECT_LT(hier.total(), packed);  // hierarchical wins at scale
  EXPECT_GT(hier.local_update, 0.0);

  const CommCostModel hpc1(MachineModel::hpc1_sunway());
  EXPECT_THROW((void)hpc1.packed_hierarchical_seconds(row, c, ranks), Error);
}

TEST(MachineModel, SingleRankCostsNothing) {
  const CommCostModel model(MachineModel::hpc1_sunway());
  EXPECT_DOUBLE_EQ(model.allreduce_seconds(1024, 1), 0.0);
  EXPECT_DOUBLE_EQ(model.barrier_seconds(1), 0.0);
}

}  // namespace
