// Silent-data-corruption defense tests: ABFT-checksummed matmuls (detect /
// locate / correct), compute-site fault injection, physics invariant
// guards, CRC/checksum-verified collectives, and the escalation ladder
// integration. The acceptance bar: a seeded bit-flip inside the DM-build
// matmul is detected by ABFT, corrected in place, and the run's
// polarizability matches the fault-free reference to 1e-8; a planted
// non-finite density batch trips a guard within the same CPSCF iteration
// and is healed by a local recompute; a corrupted collective payload is
// named at the collective, on the rank where it happened.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "comm/packed.hpp"
#include "common/error.hpp"
#include "core/dfpt.hpp"
#include "core/parallel_dfpt.hpp"
#include "linalg/abft.hpp"
#include "linalg/matrix.hpp"
#include "obs/metrics.hpp"
#include "parallel/cluster.hpp"
#include "parallel/fault.hpp"
#include "resilience/buddy.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/guards.hpp"
#include "resilience/recovery.hpp"
#include "resilience/sdc_inject.hpp"
#include "scf/diis.hpp"
#include "scf/scf_solver.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::resilience;

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir;
}

linalg::Matrix test_matrix(std::size_t rows, std::size_t cols, double scale) {
  linalg::Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      m(i, j) = scale * (1.0 + std::sin(static_cast<double>(i * cols + j)));
  return m;
}

/// Guards are process-global; tests that disable them must restore the
/// default even on assertion failure.
struct GuardsOn {
  GuardsOn() { set_guards(true); }
  ~GuardsOn() { set_guards(true); }
};

// ---------------------------------------------------------------------------
// ABFT-checksummed matmul

TEST(Abft, FaultFreeProductIsBitIdentical) {
  const auto a = test_matrix(7, 5, 1.0);
  const auto b = test_matrix(5, 6, 0.5);
  const auto ref = linalg::matmul(a, b);
  const auto c = linalg::abft_matmul(a, b, "test/abft");
  EXPECT_EQ(c.max_abs_diff(ref), 0.0);

  const auto at = test_matrix(5, 7, 1.0);
  const auto ref_tn = linalg::matmul_tn(at, b);
  const auto c_tn = linalg::abft_matmul_tn(at, b, "test/abft");
  EXPECT_EQ(c_tn.max_abs_diff(ref_tn), 0.0);
}

TEST(Abft, SingleBitFlipIsLocatedAndCorrectedExactly) {
  const auto before = linalg::abft_stats();
  SdcPlan plan;
  plan.add({SdcKind::BitFlip, "test/abft_flip", /*invocation=*/0,
            /*element=*/9, /*bit=*/62});
  SdcInjector injector(std::move(plan));
  ScopedSdcInjector scoped(injector);

  const auto a = test_matrix(8, 8, 1.0);
  const auto b = test_matrix(8, 8, 0.25);
  const auto ref = linalg::matmul(a, b);
  const auto c = linalg::abft_matmul(a, b, "test/abft_flip");
  // The recompute restores the kernel's exact accumulation, so the repaired
  // product is bit-identical, not merely close.
  EXPECT_EQ(c.max_abs_diff(ref), 0.0);
  EXPECT_EQ(injector.stats().bit_flips, 1u);
  const auto after = linalg::abft_stats();
  EXPECT_EQ(after.detections - before.detections, 1u);
  EXPECT_EQ(after.corrections - before.corrections, 1u);
  EXPECT_EQ(after.uncorrectable - before.uncorrectable, 0u);
}

TEST(Abft, NanPayloadIsCorrected) {
  SdcPlan plan;
  plan.add({SdcKind::NanPayload, "test/abft_nan", /*invocation=*/0,
            /*element=*/3, /*bit=*/62});
  SdcInjector injector(std::move(plan));
  ScopedSdcInjector scoped(injector);

  const auto a = test_matrix(6, 4, 2.0);
  const auto b = test_matrix(4, 5, 1.0);
  const auto ref = linalg::matmul(a, b);
  const auto c = linalg::abft_matmul(a, b, "test/abft_nan");
  EXPECT_EQ(c.max_abs_diff(ref), 0.0);
  EXPECT_EQ(injector.stats().nans_planted, 1u);
}

TEST(Abft, TransposedVariantCorrectsToo) {
  SdcPlan plan;
  plan.add({SdcKind::BitFlip, "test/abft_tn", /*invocation=*/0,
            /*element=*/5, /*bit=*/62});
  SdcInjector injector(std::move(plan));
  ScopedSdcInjector scoped(injector);

  const auto a = test_matrix(6, 4, 1.0);  // used as A^T: product is 4x5
  const auto b = test_matrix(6, 5, 0.5);
  const auto ref = linalg::matmul_tn(a, b);
  const auto c = linalg::abft_matmul_tn(a, b, "test/abft_tn");
  EXPECT_EQ(c.max_abs_diff(ref), 0.0);
  EXPECT_EQ(injector.stats().corruptions, 1u);
}

TEST(Abft, DetectOnlyModeThrowsInsteadOfCorrecting) {
  SdcPlan plan;
  plan.add({SdcKind::BitFlip, "test/abft_detect", /*invocation=*/0,
            /*element=*/2, /*bit=*/62});
  SdcInjector injector(std::move(plan));
  ScopedSdcInjector scoped(injector);

  const auto a = test_matrix(5, 5, 1.0);
  const auto b = test_matrix(5, 5, 1.0);
  try {
    (void)linalg::abft_matmul(a, b, "test/abft_detect",
                              linalg::AbftMode::DetectOnly);
    FAIL() << "detect-only corruption did not throw";
  } catch (const linalg::AbftError& e) {
    EXPECT_EQ(e.site(), "test/abft_detect");
    EXPECT_NE(std::string(e.what()).find("ABFT"), std::string::npos);
  }
}

TEST(Abft, MultiElementCorruptionIsUncorrectable) {
  const auto before = linalg::abft_stats();
  SdcPlan plan;
  // Two corrupted elements in distinct rows AND columns: the row/column
  // residual intersection is ambiguous, so correction must refuse.
  plan.add({SdcKind::BitFlip, "test/abft_multi", /*invocation=*/0,
            /*element=*/0, /*bit=*/62});
  plan.add({SdcKind::BitFlip, "test/abft_multi", /*invocation=*/0,
            /*element=*/9, /*bit=*/62});
  SdcInjector injector(std::move(plan));
  ScopedSdcInjector scoped(injector);

  const auto a = test_matrix(8, 8, 1.0);
  const auto b = test_matrix(8, 8, 1.0);
  EXPECT_THROW((void)linalg::abft_matmul(a, b, "test/abft_multi"),
               linalg::AbftError);
  const auto after = linalg::abft_stats();
  EXPECT_GE(after.uncorrectable - before.uncorrectable, 1u);
}

// ---------------------------------------------------------------------------
// Compute-site injector plumbing

TEST(SdcInjector, PlanValidationRejectsBadFields) {
  SdcPlan plan;
  SdcEvent bad_bit;
  bad_bit.bit = 64;
  EXPECT_THROW(plan.add(bad_bit), Error);
  SdcEvent bad_site;
  bad_site.site = "";
  EXPECT_THROW(plan.add(bad_site), Error);
  EXPECT_EQ(plan.size(), 0u);
}

TEST(SdcInjector, RandomPlansAreSeedDeterministic) {
  const std::vector<std::string> sites{"linalg/matmul", "cpscf/rho_batch"};
  const auto a = SdcPlan::random(99, 6, sites, 20);
  const auto b = SdcPlan::random(99, 6, sites, 20);
  ASSERT_EQ(a.size(), 6u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(static_cast<int>(a.events()[i].kind),
              static_cast<int>(b.events()[i].kind));
    EXPECT_EQ(a.events()[i].site, b.events()[i].site);
    EXPECT_EQ(a.events()[i].invocation, b.events()[i].invocation);
    EXPECT_EQ(a.events()[i].element, b.events()[i].element);
    EXPECT_GE(a.events()[i].bit, 48);
    EXPECT_LT(a.events()[i].bit, 64);
    EXPECT_LT(a.events()[i].invocation, 20u);
  }
}

TEST(SdcInjector, ProbeWithoutHookIsInert) {
  std::vector<double> data{1.0, 2.0, 3.0};
  sdc_probe("test/no_hook", data);
  EXPECT_EQ(data[0], 1.0);
  EXPECT_EQ(data[1], 2.0);
  EXPECT_EQ(data[2], 3.0);
}

TEST(SdcInjector, TransientEventFiresExactlyOnceAtItsInvocation) {
  SdcPlan plan;
  plan.add({SdcKind::NanPayload, "test/site", /*invocation=*/1,
            /*element=*/0, /*bit=*/62});
  SdcInjector injector(std::move(plan));
  ScopedSdcInjector scoped(injector);

  std::vector<double> data{1.0};
  sdc_probe("test/site", data);  // invocation 0: too early
  EXPECT_TRUE(std::isfinite(data[0]));
  sdc_probe("test/other", data);  // different site: does not advance "test/site"
  EXPECT_TRUE(std::isfinite(data[0]));
  sdc_probe("test/site", data);  // invocation 1: fires
  EXPECT_TRUE(std::isnan(data[0]));
  data[0] = 1.0;
  sdc_probe("test/site", data);  // exhausted
  EXPECT_TRUE(std::isfinite(data[0]));
  EXPECT_EQ(injector.stats().corruptions, 1u);
  EXPECT_EQ(injector.pending(), 0u);
  EXPECT_EQ(injector.invocations("test/site"), 3u);
}

// ---------------------------------------------------------------------------
// Physics invariant guards

TEST(Guards, FiniteSweepRaisesStructuredViolation) {
  GuardsOn guards;
  std::vector<double> ok{1.0, -2.0, 0.0};
  EXPECT_NO_THROW(guard_finite(ok, "test/finite"));
  std::vector<double> bad{1.0, std::numeric_limits<double>::quiet_NaN()};
  try {
    guard_finite(bad, "test/finite");
    FAIL() << "NaN passed the finiteness guard";
  } catch (const InvariantViolation& e) {
    EXPECT_EQ(e.invariant(), "finite");
    EXPECT_EQ(e.site(), "test/finite");
    EXPECT_NE(std::string(e.what()).find("invariant violation"),
              std::string::npos);
  }
}

TEST(Guards, HermiticityCatchesAsymmetryAndNonFinite) {
  GuardsOn guards;
  auto m = test_matrix(5, 5, 1.0);
  m.symmetrize();
  EXPECT_NO_THROW(guard_hermitian(m, "test/herm"));
  auto bad = m;
  bad(1, 3) += 1.0;  // far beyond roundoff asymmetry
  EXPECT_THROW(guard_hermitian(bad, "test/herm"), InvariantViolation);
  auto inf = m;
  inf(2, 4) = std::numeric_limits<double>::infinity();
  EXPECT_THROW(guard_hermitian(inf, "test/herm"), InvariantViolation);
}

TEST(Guards, ElectronCountAndTraceIdentity) {
  GuardsOn guards;
  EXPECT_NO_THROW(guard_electron_count(10.0001, 10.0, "test/ne"));
  EXPECT_THROW(guard_electron_count(11.0, 10.0, "test/ne"), InvariantViolation);
  EXPECT_THROW(
      guard_electron_count(std::numeric_limits<double>::quiet_NaN(), 10.0,
                           "test/ne"),
      InvariantViolation);

  // tr(P S) with S = I is just tr(P).
  linalg::Matrix p(3, 3), s(3, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    p(i, i) = 2.0;
    s(i, i) = 1.0;
  }
  EXPECT_NO_THROW(guard_trace_identity(p, s, 6.0, "test/tr"));
  p(0, 0) = 3.0;
  EXPECT_THROW(guard_trace_identity(p, s, 6.0, "test/tr"), InvariantViolation);
}

TEST(Guards, DisabledGuardsSkipEveryCheck) {
  GuardsOn guards;
  const std::uint64_t before = obs::counter("guards/violations").value();
  set_guards(false);
  EXPECT_FALSE(guards_enabled());
  std::vector<double> bad{std::numeric_limits<double>::quiet_NaN()};
  EXPECT_NO_THROW(guard_finite(bad, "test/off"));
  linalg::Matrix asym(2, 2);
  asym(0, 1) = 1.0;
  EXPECT_NO_THROW(guard_hermitian(asym, "test/off"));
  EXPECT_NO_THROW(guard_electron_count(99.0, 2.0, "test/off"));
  EXPECT_EQ(obs::counter("guards/violations").value(), before);
  set_guards(true);
  EXPECT_TRUE(guards_enabled());
}

TEST(Guards, DiisRefusesNonFiniteInput) {
  GuardsOn guards;
  scf::DiisMixer mixer(4);
  auto h = test_matrix(4, 4, 1.0);
  h.symmetrize();
  const auto p = test_matrix(4, 4, 0.5);
  linalg::Matrix s(4, 4);
  for (std::size_t i = 0; i < 4; ++i) s(i, i) = 1.0;
  EXPECT_NO_THROW((void)mixer.extrapolate(h, p, s));
  auto bad = h;
  bad(2, 2) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)mixer.extrapolate(bad, p, s), InvariantViolation);
}

// ---------------------------------------------------------------------------
// Collective-layer fault plan validation (satellite)

TEST(FaultPlanValidation, RejectsOutOfRangeFields) {
  parallel::FaultPlan plan;
  parallel::FaultEvent bad_bit;
  bad_bit.bit = 64;
  EXPECT_THROW(plan.add(bad_bit), Error);
  bad_bit.bit = -1;
  EXPECT_THROW(plan.add(bad_bit), Error);
  parallel::FaultEvent bad_repeat;
  bad_repeat.kind = parallel::FaultKind::Stall;
  bad_repeat.repeat = 0;
  EXPECT_THROW(plan.add(bad_repeat), Error);
  EXPECT_EQ(plan.size(), 0u);
}

TEST(FaultPlanValidation, InjectorRankOutsideWorldIsRejectedAtAttach) {
  parallel::FaultPlan plan;
  plan.add({parallel::FaultKind::BitFlip, /*rank=*/5, /*collective=*/0,
            /*element=*/0, /*bit=*/62});
  parallel::FaultInjector injector(std::move(plan));
  parallel::Cluster cluster(2, 2);
  EXPECT_THROW(cluster.set_fault_injector(&injector), Error);
}

// ---------------------------------------------------------------------------
// Checksum-verified collectives

TEST(VerifiedCollectives, CrcNamesCollectiveAndRankOfInFlightCorruption) {
  parallel::FaultPlan plan;
  plan.add({parallel::FaultKind::BitFlip, /*rank=*/1, /*collective=*/0,
            /*element=*/0, /*bit=*/62});
  parallel::FaultInjector injector(std::move(plan));

  parallel::Cluster cluster(2, 2);
  cluster.set_fault_injector(&injector);
  cluster.set_verify_payloads(true);
  const auto outcomes = cluster.run_collect([](parallel::Communicator& comm) {
    std::vector<double> data{1.0, 2.0};
    comm.allreduce_sum(data);
  });
  ASSERT_EQ(outcomes.size(), 2u);
  int corruptions = 0;
  for (const auto& e : outcomes) {
    ASSERT_TRUE(e != nullptr);
    try {
      std::rethrow_exception(e);
    } catch (const parallel::PayloadCorruption& pc) {
      ++corruptions;
      EXPECT_EQ(pc.original_rank(), 1u);
      EXPECT_EQ(pc.collective(), "allreduce_sum");
      EXPECT_NE(std::string(pc.what()).find("CRC"), std::string::npos);
    } catch (const parallel::RankFailure& rf) {
      // The peer observes the corrupted rank's failure, not the corruption.
      EXPECT_EQ(rf.failed_rank(), 1u);
    }
  }
  EXPECT_EQ(corruptions, 1);
}

TEST(VerifiedCollectives, CleanPayloadsPassCrcVerification) {
  parallel::Cluster cluster(2, 2);
  cluster.set_verify_payloads(true);
  std::vector<double> got(2, 0.0);
  cluster.run([&](parallel::Communicator& comm) {
    std::vector<double> data{static_cast<double>(comm.rank() + 1)};
    comm.allreduce_sum(data);
    got[comm.rank()] = data[0];
  });
  EXPECT_EQ(got[0], 3.0);
  EXPECT_EQ(got[1], 3.0);
}

TEST(VerifiedCollectives, PackedReducerChecksumDetectsCorruption) {
  parallel::FaultPlan plan;
  plan.add({parallel::FaultKind::BitFlip, /*rank=*/1, /*collective=*/0,
            /*element=*/0, /*bit=*/62});
  parallel::FaultInjector injector(std::move(plan));

  parallel::Cluster cluster(2, 2);
  cluster.set_fault_injector(&injector);
  const auto outcomes = cluster.run_collect([](parallel::Communicator& comm) {
    std::vector<double> row(4, static_cast<double>(comm.rank() + 1));
    comm::PackedAllReducer reducer(comm, comm::ReduceMode::Flat,
                                   comm::kDefaultPackBytes, /*verify=*/true);
    reducer.add(row);
    reducer.flush();
  });
  // The linear checksum mismatch is computed from the REDUCED payload, which
  // is identical on every rank -- so every rank detects it together.
  ASSERT_EQ(outcomes.size(), 2u);
  for (const auto& e : outcomes) {
    ASSERT_TRUE(e != nullptr);
    try {
      std::rethrow_exception(e);
    } catch (const parallel::PayloadCorruption& pc) {
      EXPECT_EQ(pc.collective(), "packed_allreduce");
    } catch (const parallel::RankFailure&) {
      // Acceptable ordering artifact: a rank may observe its peer's abort
      // before reaching its own verification.
    }
  }
}

TEST(VerifiedCollectives, PackedReducerVerifyModeIsExactWhenClean) {
  parallel::Cluster cluster(2, 2);
  std::vector<std::vector<double>> rows(2, std::vector<double>(5, 0.0));
  cluster.run([&](parallel::Communicator& comm) {
    std::vector<double> row{1.0, 2.0, 3.0, 4.0, 5.0};
    comm::PackedAllReducer reducer(comm, comm::ReduceMode::Flat,
                                   comm::kDefaultPackBytes, /*verify=*/true);
    reducer.add(row);
    reducer.flush();
    rows[comm.rank()] = row;
  });
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t i = 0; i < 5; ++i)
      EXPECT_EQ(rows[r][i], 2.0 * static_cast<double>(i + 1));
}

// ---------------------------------------------------------------------------
// Checkpoint / buddy corruption handling (satellite)

TEST(SdcStorage, CheckpointCrcMismatchRefusesLoad) {
  CheckpointStore store(fresh_dir("sdc_ckpt_crc"));
  CpscfCheckpoint in;
  in.iteration = 5;
  in.p1 = test_matrix(6, 6, 1.0);
  store.save("k", in);

  // Flip one payload byte on disk: a silent storage corruption.
  {
    std::fstream f(store.path_of("k"),
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(48);
    char byte = 0;
    f.seekg(48);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    f.seekp(48);
    f.write(&byte, 1);
  }
  EXPECT_THROW((void)store.load_cpscf("k"), Error);
  EXPECT_THROW((void)store.try_load_cpscf("k"), Error);
}

TEST(SdcStorage, BuddyReplicaWithCorruptPayloadFailsFrameCrc) {
  BuddyReplicator buddy(2);
  CpscfCheckpoint ckpt;
  ckpt.iteration = 3;
  ckpt.p1 = test_matrix(5, 5, 1.0);
  const auto blob = serialize(ckpt);

  parallel::Cluster cluster(2, 2);
  cluster.run([&](parallel::Communicator& comm) {
    buddy.replicate(comm, blob);
  });
  auto replica = buddy.blob_of(0);
  ASSERT_TRUE(replica.has_value());
  EXPECT_NO_THROW((void)deserialize_cpscf(replica->bytes));
  replica->bytes[replica->bytes.size() / 2] ^= 0x40;  // silent memory upset
  EXPECT_THROW((void)deserialize_cpscf(replica->bytes), Error);
}

TEST(SdcStorage, BuddyCorruptSizeAnnounceSkipsSlotInsteadOfAllocating) {
  parallel::FaultPlan plan;
  // Strike rank 0's size broadcast (its first non-empty payload): the
  // announced size turns non-finite and every rank must skip the slot.
  plan.add({parallel::FaultKind::InfPayload, /*rank=*/0, /*collective=*/0,
            /*element=*/0});
  parallel::FaultInjector injector(std::move(plan));

  BuddyReplicator buddy(2);
  CpscfCheckpoint ckpt;
  ckpt.iteration = 1;
  ckpt.p1 = test_matrix(4, 4, 1.0);
  const auto blob = serialize(ckpt);

  parallel::Cluster cluster(2, 2);
  cluster.set_fault_injector(&injector);
  cluster.run([&](parallel::Communicator& comm) {
    buddy.replicate(comm, blob);
  });
  EXPECT_GE(buddy.stats().slots_skipped, 1u);
  EXPECT_FALSE(buddy.blob_of(0).has_value());  // the struck slot
  EXPECT_TRUE(buddy.blob_of(1).has_value());   // the clean slot still mirrors
}

// ---------------------------------------------------------------------------
// Solver-level SDC defense on a real molecule

const scf::ScfResult& ground_h2() {
  static const scf::ScfResult res = [] {
    grid::Structure s;
    s.add_atom(1, {0, 0, -0.7});
    s.add_atom(1, {0, 0, 0.7});
    scf::ScfOptions opt;
    opt.tier = basis::BasisTier::Light;
    opt.grid.radial_points = 30;
    opt.grid.angular_degree = 9;
    opt.poisson.radial_points = 72;
    return scf::ScfSolver(s, opt).run();
  }();
  return res;
}

// The acceptance bar of the tentpole: a seeded bit flip inside the DM-build
// matmul is detected by ABFT, located, corrected in place (no rollback),
// and the resulting polarizability matches the fault-free reference.
TEST(SdcSolver, DmMatmulBitFlipIsCorrectedAndMatchesReference) {
  GuardsOn guards;
  const auto& ground = ground_h2();
  ASSERT_TRUE(ground.converged);
  core::DfptOptions dopt;
  dopt.tolerance = 1e-8;
  const auto ref = core::DfptSolver(ground, dopt).solve_direction(2);
  ASSERT_TRUE(ref.converged);
  ASSERT_GT(ref.iterations, 2);

  const auto before = linalg::abft_stats();
  SdcPlan plan;
  plan.add({SdcKind::BitFlip, "cpscf/dm_matmul", /*invocation=*/2,
            /*element=*/1, /*bit=*/62});
  SdcInjector injector(std::move(plan));
  ScopedSdcInjector scoped(injector);

  const auto hit = core::DfptSolver(ground, dopt).solve_direction(2);
  EXPECT_EQ(injector.pending(), 0u);  // the planned corruption actually fired
  EXPECT_EQ(injector.stats().bit_flips, 1u);
  const auto after = linalg::abft_stats();
  EXPECT_GE(after.detections - before.detections, 1u);
  EXPECT_GE(after.corrections - before.corrections, 1u);
  EXPECT_TRUE(hit.converged);
  // In-place correction is bit-exact, so the whole trajectory is too.
  EXPECT_EQ(hit.iterations, ref.iterations);
  EXPECT_EQ(hit.p1.max_abs_diff(ref.p1), 0.0);
  EXPECT_NEAR(hit.dipole_response.z, ref.dipole_response.z, 1e-8);
}

// A NaN planted in a Sumup density batch trips the finiteness guard within
// the same iteration and is healed by the local-recompute rung (the batch
// is a pure function of P^(1)) -- no rollback, no retry.
TEST(SdcSolver, RhoBatchNanTriggersSameIterationLocalRecompute) {
  GuardsOn guards;
  const auto& ground = ground_h2();
  core::DfptOptions dopt;
  dopt.tolerance = 1e-8;
  const auto ref = core::DfptSolver(ground, dopt).solve_direction(2);
  ASSERT_TRUE(ref.converged);

  const std::uint64_t recomputes_before =
      obs::counter("sdc/local_recomputes").value();
  SdcPlan plan;
  plan.add({SdcKind::NanPayload, "cpscf/rho_batch", /*invocation=*/2,
            /*element=*/7, /*bit=*/62});
  SdcInjector injector(std::move(plan));
  ScopedSdcInjector scoped(injector);

  const auto hit = core::DfptSolver(ground, dopt).solve_direction(2);
  EXPECT_EQ(injector.pending(), 0u);
  EXPECT_EQ(obs::counter("sdc/local_recomputes").value(),
            recomputes_before + 1);
  EXPECT_TRUE(hit.converged);
  // The recomputed batch is clean, so the run is bit-identical again.
  EXPECT_EQ(hit.iterations, ref.iterations);
  EXPECT_EQ(hit.p1.max_abs_diff(ref.p1), 0.0);
}

// A NaN that strikes a kernel with no recompute rung (the multipole
// projection feeding the Poisson solve) escalates: the guard raises a
// structured InvariantViolation, and the RecoveryDriver treats it as a
// fault -- rollback, retry, converge to the reference.
TEST(SdcSolver, MultipoleNanEscalatesThroughRecoveryDriver) {
  GuardsOn guards;
  const auto& ground = ground_h2();
  core::DfptOptions dopt;
  dopt.tolerance = 1e-8;
  const auto ref = core::DfptSolver(ground, dopt).solve_direction(2);
  ASSERT_TRUE(ref.converged);

  SdcPlan plan;
  SdcEvent ev;
  ev.kind = SdcKind::NanPayload;
  ev.site = "poisson/rho_multipole";
  // Fire well into the CPSCF cycle so at least one checkpoint exists. Each
  // Hartree solve projects atoms * nlm channels; a late invocation lands in
  // iteration 2+.
  ev.invocation = 40;
  ev.element = 3;
  plan.add(ev);
  SdcInjector injector(std::move(plan));
  ScopedSdcInjector scoped(injector);

  CheckpointStore store(fresh_dir("sdc_escalate"));
  RecoveryOptions ropt;
  ropt.max_retries = 3;
  RecoveryDriver driver(store, ropt);
  const auto rec = driver.solve_direction(ground, dopt, 2);
  EXPECT_EQ(injector.pending(), 0u);
  EXPECT_TRUE(rec.converged);
  EXPECT_GE(driver.last_stats().faults_detected, 1u);
  EXPECT_GE(driver.last_stats().invariant_violations, 1u);
  EXPECT_NEAR(rec.dipole_response.z, ref.dipole_response.z, 1e-8);
}

// A guarded, ABFT-verified, fault-free run is bit-identical to a fully
// unguarded one: the defense layers only read.
TEST(SdcSolver, GuardedFaultFreeRunIsBitIdenticalToUnguarded) {
  GuardsOn guards;
  const auto& ground = ground_h2();
  core::DfptOptions dopt;
  dopt.tolerance = 1e-8;
  const auto guarded = core::DfptSolver(ground, dopt).solve_direction(2);
  ASSERT_TRUE(guarded.converged);

  set_guards(false);
  core::DfptOptions plain = dopt;
  plain.abft = false;
  const auto unguarded = core::DfptSolver(ground, plain).solve_direction(2);
  set_guards(true);
  ASSERT_TRUE(unguarded.converged);
  EXPECT_EQ(guarded.iterations, unguarded.iterations);
  EXPECT_EQ(guarded.p1.max_abs_diff(unguarded.p1), 0.0);
  EXPECT_EQ(guarded.dipole_response.z, unguarded.dipole_response.z);
  EXPECT_EQ(guarded.n1_samples, unguarded.n1_samples);
}

// Verified collectives inside the distributed solver: an in-flight bit flip
// surfaces as PayloadCorruption at the collective, and the RecoveryDriver
// rolls back and recovers the reference answer.
TEST(SdcSolver, ParallelVerifiedCollectiveCorruptionIsRecovered) {
  GuardsOn guards;
  const auto& ground = ground_h2();
  core::DfptOptions dopt;
  dopt.tolerance = 1e-8;
  const auto ref = core::DfptSolver(ground, dopt).solve_direction(2);
  ASSERT_TRUE(ref.converged);

  parallel::FaultPlan plan;
  plan.add({parallel::FaultKind::BitFlip, /*rank=*/1, /*collective=*/4,
            /*element=*/2, /*bit=*/62});
  parallel::FaultInjector injector(std::move(plan));

  core::ParallelDfptOptions popt;
  popt.dfpt = dopt;
  popt.ranks = 4;
  popt.ranks_per_node = 2;
  popt.reduce_mode = comm::ReduceMode::Flat;
  popt.batch_points = 96;
  popt.fault_injector = &injector;
  popt.verify_collectives = true;

  CheckpointStore store(fresh_dir("sdc_parallel"));
  RecoveryOptions ropt;
  ropt.max_retries = 3;
  RecoveryDriver driver(store, ropt);
  const auto rec = driver.solve_direction_parallel(ground, popt, 2);

  EXPECT_EQ(injector.pending(), 0u);
  EXPECT_TRUE(rec.direction.converged);
  EXPECT_GE(rec.stats.faults_detected, 1u);
  EXPECT_GE(rec.stats.payload_corruptions, 1u);
  EXPECT_NEAR(rec.direction.dipole_response.z, ref.dipole_response.z, 1e-8);
  EXPECT_LT(rec.direction.p1.max_abs_diff(ref.p1), 1e-8);
}

}  // namespace
