#!/usr/bin/env bash
# Tier-1 verification: full release build + test suite, then the threading
# layer and the simmpi runtime under ThreadSanitizer (AEQP_SANITIZE=thread).
# Run from the repository root:  scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: release build + full ctest =="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

echo "== tier 1: perf-regression sentinel self-test =="
python3 scripts/bench_history.py self-test

echo "== tier 1: TSan build (AEQP_SANITIZE=thread) =="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DAEQP_SANITIZE=thread
cmake --build build-tsan -j --target test_exec test_parallel_comm test_obs test_memobs test_elastic test_sdc test_service test_membudget test_rho_batch test_straggler

echo "== tier 1: exec + simmpi + obs + memobs + elastic + sdc + service + membudget + rho-batch + straggler tests under TSan =="
TSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir build-tsan --output-on-failure -R 'test_exec|test_parallel_comm|test_obs|test_memobs|test_elastic|test_sdc|test_service|test_membudget|test_rho_batch|test_straggler'

echo "tier1: OK"
