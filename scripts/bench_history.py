#!/usr/bin/env python3
"""Continuous perf-regression sentinel over the BENCH_*.json outputs.

The benches emit standardized JSON (see bench/bench_output.hpp: every file
carries schema_version / bench / timestamp). This script maintains a
committed append-only ledger of those results under bench/history/ --
one JSON-lines file per bench series -- and gates CI against it:

  append  -- flatten BENCH_*.json files into ledger entries
  check   -- compare fresh BENCH_*.json files against the rolling baseline
             (median of the last N ledger entries per metric); exit 1 when
             any gated metric regressed beyond the noise tolerance
  report  -- markdown trend report of every series in the ledger
  self-test -- end-to-end sanity: a synthetic 10% regression MUST fail and
             an in-tolerance wobble MUST pass; exit 1 otherwise

Only metrics with a known "better" direction are gated (throughputs up,
latencies/overheads/exponents down); everything else is recorded and
reported but never fails the build. The tolerance default (5%) absorbs
machine noise; the rolling median absorbs single-run outliers.

Stdlib only -- no pip dependencies.
"""

from __future__ import annotations

import argparse
import json
import math
import statistics
import sys
import tempfile
from pathlib import Path

DEFAULT_LEDGER = Path("bench/history")
DEFAULT_WINDOW = 5
DEFAULT_TOLERANCE = 0.05


def machine_tag() -> str:
    """Ledger entries are only comparable within one environment: absolute
    rates differ several-fold between a laptop, a CI runner, and a cluster
    node. Entries carry this tag and `check` gates only against history
    from the same tag (set AEQP_BENCH_MACHINE in CI)."""
    import os

    return os.environ.get("AEQP_BENCH_MACHINE", "local")

# Keys whose subtree is diagnostic payload, not a comparable metric.
SKIP_KEYS = {"schema_version", "timestamp", "profile", "samples"}

# Substring -> direction. "up": larger is better; "down": smaller is
# better. Metrics matching neither are tracked but not gated.
DIRECTION_RULES = [
    ("sweep/threads=", "down"),  # thread-sweep phase wall-clock seconds
    ("per_second", "up"),
    ("per_atom", None),  # workload descriptor, not a rate
    ("speedup", "up"),
    ("saving", "up"),
    ("_hits", "up"),
    ("latency_seconds", "down"),
    ("latency_iterations", None),  # fault-injection count, not perf
    ("wall_seconds", "down"),
    ("_seconds", "down"),
    ("overhead", "down"),
    ("exponent", "down"),  # memory scaling exponent: growth is the regression
    ("max_diff", None),  # correctness rail, asserted by the bench itself
]


def direction_of(metric: str) -> str | None:
    low = metric.lower()
    for needle, direction in DIRECTION_RULES:
        if needle in low:
            return direction
    return None


def flatten(node, prefix="", out=None):
    """Flatten numeric leaves into {"a/b/c": value}. Lists of objects that
    carry a "name" field (e.g. the memory bench's gauges) key by that name;
    other lists are skipped (per-point sweep tables live in the raw JSON)."""
    if out is None:
        out = {}
    if isinstance(node, dict):
        for key, value in node.items():
            if key in SKIP_KEYS:
                continue
            path = f"{prefix}/{key}" if prefix else key
            flatten(value, path, out)
    elif isinstance(node, list):
        for item in node:
            if not isinstance(item, dict):
                continue
            # Self-labelling rows: gauges carry "name", thread-sweep rows
            # carry "threads"; key the row by its label so each becomes a
            # stable metric path.
            for label_key, fmt in (("name", "{}"), ("threads", "threads={}")):
                if label_key in item:
                    flatten(
                        {k: v for k, v in item.items() if k != label_key},
                        f"{prefix}/{fmt.format(item[label_key])}",
                        out,
                    )
                    break
    elif isinstance(node, bool):
        pass
    elif isinstance(node, (int, float)) and math.isfinite(node):
        out[prefix] = float(node)
    return out


def load_bench(path: Path):
    with open(path) as f:
        data = json.load(f)
    name = data.get("bench")
    if not name:
        raise ValueError(f"{path}: missing 'bench' field (not a BENCH_*.json?)")
    entry = {
        "timestamp": data.get("timestamp", ""),
        "machine": machine_tag(),
        "metrics": flatten(data),
    }
    return name, entry


def ledger_file(ledger: Path, bench: str) -> Path:
    return ledger / f"{bench}.jsonl"


def read_ledger(ledger: Path, bench: str):
    path = ledger_file(ledger, bench)
    if not path.exists():
        return []
    entries = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line:
            entries.append(json.loads(line))
    return entries


def cmd_append(args) -> int:
    ledger = Path(args.ledger)
    ledger.mkdir(parents=True, exist_ok=True)
    for file in args.files:
        bench, entry = load_bench(Path(file))
        with open(ledger_file(ledger, bench), "a") as f:
            f.write(json.dumps(entry, sort_keys=True) + "\n")
        print(f"appended {file} -> {ledger_file(ledger, bench)} "
              f"({len(entry['metrics'])} metrics)")
    return 0


def check_entry(bench, entry, history, window, tolerance):
    """Return (regressions, lines) comparing one fresh entry to history.

    The effective tolerance per metric is max(tolerance, 3 x the relative
    median-absolute-deviation of its history): deterministic metrics
    (byte counts, scaling exponents) stay gated at the base tolerance,
    while short smoke-workload timings -- which wobble tens of percent on
    shared machines -- self-calibrate from their own observed noise
    instead of producing false alarms.
    """
    regressions = []
    lines = []
    recent = history[-window:]
    for metric, value in sorted(entry["metrics"].items()):
        direction = direction_of(metric)
        past = [
            e["metrics"][metric]
            for e in recent
            if metric in e.get("metrics", {})
        ]
        if not past:
            lines.append(f"  {metric}: {value:g} (new metric, no baseline)")
            continue
        baseline = statistics.median(past)
        if direction is None or baseline == 0:
            continue
        mad = statistics.median(abs(v - baseline) for v in past)
        effective_tol = max(tolerance, 3.0 * mad / abs(baseline))
        delta = (value - baseline) / abs(baseline)
        worse = -delta if direction == "up" else delta
        tag = "ok"
        if worse > effective_tol:
            tag = "REGRESSION"
            regressions.append(
                f"{bench}:{metric}: {value:g} vs baseline {baseline:g} "
                f"({delta:+.1%}, tolerance {effective_tol:.0%}, "
                f"better={direction})"
            )
        lines.append(
            f"  {metric}: {value:g} vs {baseline:g} ({delta:+.1%}, "
            f"tol {effective_tol:.0%}) [{tag}]"
        )
    return regressions, lines


def cmd_check(args) -> int:
    ledger = Path(args.ledger)
    all_regressions = []
    tag = machine_tag()
    for file in args.files:
        bench, entry = load_bench(Path(file))
        history = [
            e
            for e in read_ledger(ledger, bench)
            if e.get("machine", "local") == tag
        ]
        if not history:
            # Empty-ledger seeding: a brand-new bench series has nothing to
            # gate against, but silently skipping it forever means the gate
            # never arms. Seed the ledger with this first entry (the next
            # check has a baseline) and pass.
            ledger.mkdir(parents=True, exist_ok=True)
            with open(ledger_file(ledger, bench), "a") as f:
                f.write(json.dumps(entry, sort_keys=True) + "\n")
            print(f"{bench}: no ledger history for machine '{tag}' -- "
                  f"seeded {ledger_file(ledger, bench)} with this run "
                  f"({len(entry['metrics'])} metrics); gating starts next run")
            continue
        regressions, lines = check_entry(
            bench, entry, history, args.window, args.tolerance
        )
        print(f"{bench}: checked against median of last "
              f"{min(args.window, len(history))} '{tag}' ledger entries")
        for line in lines:
            print(line)
        all_regressions.extend(regressions)
    if all_regressions:
        print("\nPERF REGRESSIONS DETECTED:")
        for r in all_regressions:
            print(f"  {r}")
        return 1
    print("\nno regressions beyond tolerance")
    return 0


def sparkline(values) -> str:
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    if hi == lo:
        return blocks[3] * len(values)
    return "".join(
        blocks[int((v - lo) / (hi - lo) * (len(blocks) - 1))] for v in values
    )


def cmd_report(args) -> int:
    ledger = Path(args.ledger)
    files = sorted(ledger.glob("*.jsonl")) if ledger.is_dir() else []
    if not files:
        print(f"no ledger series under {ledger}")
        return 0
    print("# Bench trend report\n")
    for path in files:
        bench = path.stem
        history = read_ledger(ledger, bench)
        if not history:
            continue
        print(f"## {bench} ({len(history)} entries)\n")
        print("| metric | latest | baseline | delta | trend |")
        print("|---|---|---|---|---|")
        latest = history[-1]["metrics"]
        for metric in sorted(latest):
            series = [
                e["metrics"][metric]
                for e in history
                if metric in e.get("metrics", {})
            ]
            prior = series[:-1][-args.window:]
            baseline = statistics.median(prior) if prior else series[-1]
            delta = (
                (series[-1] - baseline) / abs(baseline)
                if baseline
                else 0.0
            )
            print(
                f"| {metric} | {series[-1]:g} | {baseline:g} "
                f"| {delta:+.1%} | {sparkline(series[-12:])} |"
            )
        print()
    return 0


def cmd_self_test(args) -> int:
    """The sentinel's own regression test: seed a synthetic ledger, then a
    10% throughput drop must FAIL and a 1% wobble must PASS."""
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        ledger = tmp / "history"
        ledger.mkdir()
        with open(ledger / "synthetic.jsonl", "w") as f:
            for v in (100.0, 101.0, 99.0, 100.5, 100.0):
                f.write(json.dumps({
                    "timestamp": "",
                    "machine": machine_tag(),
                    "metrics": {"points_per_second/kernel": v,
                                "wall_seconds": 10.0},
                }) + "\n")

        def candidate(pps, wall):
            path = tmp / "BENCH_synthetic.json"
            path.write_text(json.dumps({
                "schema_version": 1,
                "bench": "synthetic",
                "timestamp": "",
                "points_per_second": {"kernel": pps},
                "wall_seconds": wall,
            }))
            ns = argparse.Namespace(
                ledger=str(ledger), files=[str(path)],
                window=DEFAULT_WINDOW, tolerance=DEFAULT_TOLERANCE,
            )
            return cmd_check(ns)

        print("-- self-test: 10% throughput regression (must fail) --")
        if candidate(90.0, 10.0) == 0:
            failures.append("10% throughput drop was NOT flagged")
        print("-- self-test: 10% wall-clock regression (must fail) --")
        if candidate(100.0, 11.0) == 0:
            failures.append("10% wall-clock increase was NOT flagged")
        print("-- self-test: 1% wobble (must pass) --")
        if candidate(99.0, 10.05) != 0:
            failures.append("1% wobble was flagged as a regression")
        print("-- self-test: improvement (must pass) --")
        if candidate(120.0, 8.0) != 0:
            failures.append("an improvement was flagged as a regression")

        # Empty-ledger seeding: the FIRST check of a new series must pass
        # and write the seed entry; a 10% regression against that seed on
        # the SECOND check must then fail (single-entry history has zero
        # MAD, so the base tolerance gates it).
        fresh = tmp / "fresh-history"

        def fresh_candidate(pps):
            path = tmp / "BENCH_fresh.json"
            path.write_text(json.dumps({
                "schema_version": 1,
                "bench": "fresh",
                "timestamp": "",
                "points_per_second": {"kernel": pps},
            }))
            ns = argparse.Namespace(
                ledger=str(fresh), files=[str(path)],
                window=DEFAULT_WINDOW, tolerance=DEFAULT_TOLERANCE,
            )
            return cmd_check(ns)

        print("-- self-test: empty ledger (must pass and seed) --")
        if fresh_candidate(100.0) != 0:
            failures.append("first check on an empty ledger did not pass")
        if not (fresh / "fresh.jsonl").exists():
            failures.append("first check on an empty ledger did not seed it")
        print("-- self-test: 10% regression against the seed (must fail) --")
        if fresh_candidate(90.0) == 0:
            failures.append("10% regression against the seeded entry "
                            "was NOT flagged")

    if failures:
        print("\nSELF-TEST FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nself-test OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, with_files):
        p.add_argument("--ledger", default=str(DEFAULT_LEDGER),
                       help="ledger directory (default: bench/history)")
        p.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                       help="rolling-baseline window (median of last N)")
        p.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                       help="relative noise tolerance (default 0.05)")
        if with_files:
            p.add_argument("files", nargs="+", help="BENCH_*.json files")

    common(sub.add_parser("append", help="append results to the ledger"), True)
    common(sub.add_parser("check", help="gate results against the ledger"), True)
    common(sub.add_parser("report", help="markdown trend report"), False)
    common(sub.add_parser("self-test", help="verify the gate itself"), False)

    args = parser.parse_args(argv)
    return {
        "append": cmd_append,
        "check": cmd_check,
        "report": cmd_report,
        "self-test": cmd_self_test,
    }[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
