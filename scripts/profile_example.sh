#!/usr/bin/env bash
# Profile the distributed DFPT example: runs it with AEQP_TRACE=full so it
# emits a per-phase report (stderr) and a Chrome trace-event file loadable
# in chrome://tracing or https://ui.perfetto.dev. See docs/observability.md.
#
# Usage:  scripts/profile_example.sh [output-trace.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-trace.json}"

if [[ ! -x build/examples/example_distributed_dfpt ]]; then
  echo "== building example_distributed_dfpt =="
  cmake -B build -S .
  cmake --build build -j --target example_distributed_dfpt
fi

echo "== profiled run (AEQP_TRACE=full, AEQP_TRACE_FILE=$out) =="
AEQP_TRACE=full AEQP_TRACE_FILE="$out" ./build/examples/example_distributed_dfpt

if [[ ! -s "$out" ]]; then
  echo "profile_example: FAILED ($out missing or empty)" >&2
  exit 1
fi

# Validate the trace is well-formed JSON and carries the paper's four
# CPSCF phases when a python interpreter is around.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$out" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
names = {e.get("name") for e in trace["traceEvents"]}
missing = {"cpscf/dm", "cpscf/sumup", "cpscf/rho", "cpscf/h"} - names
if missing:
    sys.exit(f"trace is missing phase spans: {sorted(missing)}")
print(f"trace OK: {len(trace['traceEvents'])} events, "
      f"{len(names)} distinct span names")
PY
fi

echo "profile_example: OK -- load $out in chrome://tracing or ui.perfetto.dev"
