// Reproduces paper Fig. 14: per-phase execution time per DFPT cycle before
// and after all optimizations, for the typical cases of the paper (RBD on
// HPC#1 with 64 ranks, RBD on HPC#2, H(C2H4)5000H = 30,002 atoms with
// 512/2048 ranks), plus the headline Sec. 5.2.6 numbers: 36.5x DM speedup
// (RBD, 64 ranks, HPC#1), 6.47x Rho speedup (poly, 2048 ranks, HPC#2), and
// ~90% communication reduction.
//
// "Before" is the unoptimized OpenCL baseline [38]: legacy task mapping,
// per-row collectives, no fusion/collapsing/indirect elimination, and the
// response-density-matrix phase still on the host CPU.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/table.hpp"
#include "parallel/machine_model.hpp"
#include "perfmodel/dfpt_perf_model.hpp"
#include "simt/device.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::perfmodel;

void print_case(const DfptPerfModel& model, const char* label,
                std::size_t atoms, std::size_t ranks) {
  const auto before = model.predict(atoms, ranks, OptimizationFlags::all_off());
  const auto after = model.predict(atoms, ranks, OptimizationFlags::all_on());

  Table t({"phase", "before (s)", "after (s)", "speedup"});
  auto row = [&](const char* name, double b, double a) {
    t.add_row({name, Table::num(b, 4), Table::num(a, 4),
               Table::num(a > 0 ? b / a : 0.0, 2) + "x"});
  };
  row("Init", before.init, after.init);
  row("DM", before.dm, after.dm);
  row("Sumup", before.sumup, after.sumup);
  row("Rho", before.rho, after.rho);
  row("H", before.h, after.h);
  row("Comm", before.comm, after.comm);
  row("TOTAL", before.total(), after.total());
  t.print(std::string("Fig 14 case: ") + label);
}

void print_headline(const DfptPerfModel& hpc1, const DfptPerfModel& hpc2) {
  const auto rbd_b = hpc1.predict(3006, 64, OptimizationFlags::all_off());
  const auto rbd_a = hpc1.predict(3006, 64, OptimizationFlags::all_on());
  const auto poly_b = hpc2.predict(30002, 2048, OptimizationFlags::all_off());
  const auto poly_a = hpc2.predict(30002, 2048, OptimizationFlags::all_on());
  std::printf(
      "\nSec 5.2.6 headline numbers:\n"
      "  DM speedup, RBD/64 ranks/HPC#1:   %.1fx (paper: 36.5x)\n"
      "  Rho speedup, poly/2048/HPC#2:     %.2fx (paper: 6.47x)\n"
      "  Comm reduction, poly/2048/HPC#2:  %.1f%% (paper: 90.7%%)\n"
      "  Overall speedup, poly/2048/HPC#2: %.1fx (paper: up to 11.1x)\n",
      rbd_b.dm / rbd_a.dm, poly_b.rho / poly_a.rho,
      100.0 * (1.0 - poly_a.comm / poly_b.comm), poly_b.total() / poly_a.total());
}

void BM_PerfModelPredict(benchmark::State& state) {
  const DfptPerfModel model(parallel::MachineModel::hpc2_amd(),
                            simt::DeviceModel::gcn_gpu(), true);
  const auto flags = OptimizationFlags::all_on();
  for (auto _ : state) {
    auto t = model.predict(60002, static_cast<std::size_t>(state.range(0)), flags);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_PerfModelPredict)->Arg(1024)->Arg(8192);

}  // namespace

int main(int argc, char** argv) {
  const DfptPerfModel hpc1(parallel::MachineModel::hpc1_sunway(),
                           simt::DeviceModel::sw39010(), true);
  const DfptPerfModel hpc2(parallel::MachineModel::hpc2_amd(),
                           simt::DeviceModel::gcn_gpu(), true);
  print_case(hpc1, "RBD (3006 atoms), 64 ranks, HPC#1", 3006, 64);
  print_case(hpc1, "RBD (3006 atoms), 512 ranks, HPC#1", 3006, 512);
  print_case(hpc2, "RBD (3006 atoms), 512 ranks, HPC#2", 3006, 512);
  print_case(hpc2, "H(C2H4)5000H (30,002 atoms), 512 ranks, HPC#2", 30002, 512);
  print_case(hpc2, "H(C2H4)5000H (30,002 atoms), 2048 ranks, HPC#2", 30002, 2048);
  print_headline(hpc1, hpc2);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
