// Reproduces paper Fig. 9(b): performance improvement of the response
// density (n1, Sumup) and response Hamiltonian (H1) phases when the local
// dense Hamiltonian block replaces the global sparse CSR matrix, for the
// HIV-1 ligand with 1359 and 2143 basis functions, on both machines.
//
// Paper reference points: n1 +7.5% / H1 +7.6% (HPC#1, 1359 basis),
// n1 +17.6% / H1 +19.9% (HPC#1, 2143), n1 +8.9% / H1 +17.9% (HPC#2, 1359),
// n1 +10.4% / H1 +26.4% (HPC#2, 2143).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "bench_output.hpp"
#include "common/table.hpp"
#include "kernels/density_kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "simt/device.hpp"
#include "simt/runtime.hpp"

namespace {

using namespace aeqp;
using kernels::DensityKernelWorkload;

// Phase-level weight of the matrix-access path (the rest of the phase is
// basis-function arithmetic). The GPU overlaps more of the fetch latency
// with compute but its phases are also leaner, so its access share is
// larger; larger bases touch more matrix per point. Calibrated to the
// Fig. 9(b) ranges.
double access_share(const simt::DeviceModel& dev, std::size_t n_basis,
                    bool h_phase) {
  const bool gpu = dev.wavefront > 1;
  const double base =
      gpu ? (h_phase ? 0.0063 : 0.0037) : (h_phase ? 0.0023 : 0.0022);
  return base * (static_cast<double>(n_basis) / 1359.0);
}

double improvement_percent(const simt::DeviceModel& dev, std::size_t n_basis,
                           bool h_phase) {
  simt::SimtRuntime rt(dev);
  // H integrates chi_mu v chi_nu with a wider support than the density sum.
  const std::size_t support = h_phase ? 32 : 24;
  const std::size_t local = n_basis / 12;  // ligand atoms per rank's block
  const auto w = DensityKernelWorkload::make(local, n_basis, 1024, support);
  const auto dense = kernels::run_sumup_dense(rt, w);
  const auto sparse = kernels::run_sumup_sparse(rt, w);
  const double raw =
      sparse.stats.modeled_seconds(dev) / dense.stats.modeled_seconds(dev);
  const double phase = 1.0 + (raw - 1.0) * access_share(dev, n_basis, h_phase);
  return (phase - 1.0) * 100.0;
}

void print_figure() {
  Table t({"machine", "basis", "n(1) improvement", "H(1) improvement",
           "paper n(1)", "paper H(1)"});
  struct Ref {
    const char* n1;
    const char* h1;
  };
  const Ref refs[2][2] = {{{"+7.5%", "+7.6%"}, {"+17.6%", "+19.9%"}},
                          {{"+8.9%", "+17.9%"}, {"+10.4%", "+26.4%"}}};
  const simt::DeviceModel devices[2] = {simt::DeviceModel::sw39010(),
                                        simt::DeviceModel::gcn_gpu()};
  const char* names[2] = {"HPC#1", "HPC#2"};
  const std::size_t bases[2] = {1359, 2143};
  for (int m = 0; m < 2; ++m)
    for (int b = 0; b < 2; ++b)
      t.add_row({names[m], std::to_string(bases[b]),
                 "+" + Table::num(improvement_percent(devices[m], bases[b], false), 1) + "%",
                 "+" + Table::num(improvement_percent(devices[m], bases[b], true), 1) + "%",
                 refs[m][b].n1, refs[m][b].h1});
  t.print("Fig 9(b): dense vs sparse Hamiltonian access, HIV-1 ligand");
}

void BM_SumupDense(benchmark::State& state) {
  simt::SimtRuntime rt(simt::DeviceModel::gcn_gpu());
  const auto w = DensityKernelWorkload::make(
      static_cast<std::size_t>(state.range(0)) / 12,
      static_cast<std::size_t>(state.range(0)), 1024, 24);
  for (auto _ : state) {
    auto r = kernels::run_sumup_dense(rt, w);
    benchmark::DoNotOptimize(r.density);
  }
}
BENCHMARK(BM_SumupDense)->Arg(1359)->Arg(2143);

void BM_SumupSparse(benchmark::State& state) {
  simt::SimtRuntime rt(simt::DeviceModel::gcn_gpu());
  const auto w = DensityKernelWorkload::make(
      static_cast<std::size_t>(state.range(0)) / 12,
      static_cast<std::size_t>(state.range(0)), 1024, 24);
  for (auto _ : state) {
    auto r = kernels::run_sumup_sparse(rt, w);
    benchmark::DoNotOptimize(r.density);
  }
}
BENCHMARK(BM_SumupSparse)->Arg(1359)->Arg(2143);

// One traced dense-vs-sparse pair with the runtimes' KernelStats registered
// as obs metrics sources, so the report and BENCH_fig09b.json carry the
// architectural counters (off-chip bytes, dependent accesses, modeled
// seconds) behind the figure.
void traced_run_and_report() {
  if (obs::mode() == obs::TraceMode::Off) obs::set_mode(obs::TraceMode::Summary);
  obs::reset();
  obs::reset_counters();
  const simt::DeviceModel dev = simt::DeviceModel::gcn_gpu();
  simt::SimtRuntime rt_dense(dev), rt_sparse(dev);
  const auto dense_metrics = simt::register_metrics(rt_dense, "simt/dense");
  const auto sparse_metrics = simt::register_metrics(rt_sparse, "simt/sparse");
  const auto w = DensityKernelWorkload::make(1359 / 12, 1359, 1024, 24);
  {
    AEQP_TRACE_SCOPE("fig09b/sumup_dense");
    auto r = kernels::run_sumup_dense(rt_dense, w);
    benchmark::DoNotOptimize(r.density);
  }
  {
    AEQP_TRACE_SCOPE("fig09b/sumup_sparse");
    auto r = kernels::run_sumup_sparse(rt_sparse, w);
    benchmark::DoNotOptimize(r.density);
  }
  obs::write_phase_report(std::cout, "fig09b dense vs sparse (1359 basis)");
  std::string path;
  if (std::FILE* f = benchio::open_bench("BENCH_fig09b.json", &path)) {
    benchio::write_envelope(f, "fig09b_dense_access");
    std::fprintf(f, "  \"basis\": 1359,\n  \"profile\": %s\n}\n",
                 obs::profile_json(2).c_str());
    std::fclose(f);
    std::printf("Wrote %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  traced_run_and_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
