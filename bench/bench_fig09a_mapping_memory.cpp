// Reproduces paper Fig. 9(a): per-process memory required for the
// Hamiltonian matrix of the RBD system (3006 atoms, ~9210 basis functions)
// under the existing load-balancing strategy (global sparse CSR held by
// every rank) vs the proposed locality-enhancing mapping (local dense
// block), for 64-512 MPI processes.
//
// Paper reference points: existing = 21,373 KB per task; proposed =
// 58-455 KB on average across tasks.
//
// Beyond the analytic table, the bench now BUILDS the real structures at a
// sweep of system sizes with the memory audit armed and reads every
// ROADMAP-item-3 gauge back from obs::mem_snapshot() -- instrumented bytes,
// not hand-counted estimates -- then fits each gauge's scaling exponent
// (log bytes vs log atoms) and publishes the whole sweep as
// BENCH_memory.json for the perf-regression ledger.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "basis/basis_set.hpp"
#include "basis/element.hpp"
#include "bench_output.hpp"
#include "comm/packed.hpp"
#include "common/table.hpp"
#include "core/structures.hpp"
#include "grid/batch.hpp"
#include "linalg/matrix.hpp"
#include "mapping/hamiltonian_analysis.hpp"
#include "mapping/synthetic_points.hpp"
#include "mapping/task_mapping.hpp"
#include "obs/memaudit.hpp"
#include "parallel/cluster.hpp"
#include "resilience/buddy.hpp"
#include "resilience/checkpoint.hpp"
#include "service/warm_cache.hpp"

namespace {

using namespace aeqp;

// FHI-aims-style light cutoffs: orbitals confined to ~5 bohr, so orbital
// pairs interact within ~10 bohr.
constexpr double kHaloCutoff = 5.0;
constexpr double kInteractionCutoff = 10.0;

void print_figure() {
  const auto rbd = core::rbd_like_cluster(3006, 1);
  const auto counts =
      mapping::basis_function_counts(rbd, basis::BasisTier::Minimal);
  std::size_t n_basis = 0;
  for (auto c : counts) n_basis += c;

  const auto cloud = mapping::synthetic_point_cloud(rbd, 12);
  const auto batches = grid::make_batches(cloud.positions, cloud.parent_atom, 96);

  Table t({"ranks", "existing (KB/task)", "proposed avg (KB/task)",
           "proposed min (KB)", "proposed max (KB)", "saving"});
  for (std::size_t ranks : {64u, 128u, 256u, 512u}) {
    const auto assignment = mapping::locality_enhancing_mapping(batches, ranks);
    const auto mem = mapping::hamiltonian_memory(
        rbd, counts, kInteractionCutoff, kHaloCutoff, assignment, batches);
    const double kb = 1024.0;
    t.add_row({std::to_string(ranks),
               Table::num(static_cast<double>(mem.existing_bytes_per_rank) / kb, 0),
               Table::num(mem.proposed_mean() / kb, 0),
               Table::num(static_cast<double>(mem.proposed_min()) / kb, 0),
               Table::num(static_cast<double>(mem.proposed_max()) / kb, 0),
               Table::num(static_cast<double>(mem.existing_bytes_per_rank) /
                              mem.proposed_mean(),
                          1) +
                   "x"});
  }
  std::printf("RBD-like system: %zu atoms, %zu basis functions "
              "(paper: 3006 atoms, 9210 basis functions)\n",
              rbd.size(), n_basis);
  t.print("Fig 9(a): per-process Hamiltonian memory, existing vs proposed "
          "(paper: 21,373 KB vs 58-455 KB)");
}

// ---------------------------------------------------------------------------
// Instrumented memory sweep: one sample per system size, gauges read back
// from the audit rather than computed by hand.

struct SizeSample {
  std::size_t atoms = 0;
  std::size_t n_basis = 0;
  std::map<std::string, double> bytes;  ///< gauge name -> measured bytes
};

/// Build every N-scaling structure the audit instruments for an RBD-like
/// cluster of `n_atoms`, with one rank's view taken from a `ranks`-way
/// locality mapping, and read the gauges while everything is live.
SizeSample measure(std::size_t n_atoms, std::size_t ranks) {
  obs::reset_mem_gauges();
  SizeSample out;
  out.atoms = n_atoms;

  const auto rbd = core::rbd_like_cluster(n_atoms, 1);
  const auto counts =
      mapping::basis_function_counts(rbd, basis::BasisTier::Minimal);
  for (auto c : counts) out.n_basis += c;
  const auto cloud = mapping::synthetic_point_cloud(rbd, 12);
  const auto batches =
      grid::make_batches(cloud.positions, cloud.parent_atom, 96);
  const auto assignment = mapping::locality_enhancing_mapping(batches, ranks);

  // Real structures, each charging its own gauge on construction:
  // basis/spline_tables + basis/function_table ...
  const basis::BasisSet basis_set(rbd, basis::BasisTier::Minimal, kHaloCutoff);
  // ... mapping/assignment ...
  const obs::MemScope assign_mem = mapping::track_assignment(assignment);
  // ... mapping/global_csr (what every rank holds under the legacy
  // mapping) and mapping/local_block (rank 0's dense block under the
  // proposed mapping) ...
  const auto csr = mapping::materialize_global_csr(rbd, counts,
                                                   kInteractionCutoff);
  const auto block = mapping::materialize_local_block(
      rbd, counts, kHaloCutoff, assignment, batches, /*rank=*/0);
  const std::size_t local_nb = block.block.rows();

  // ... resilience/checkpoint_frame (peak of the serialized density-matrix
  // frame a rank writes), resilience/buddy_replicas (the in-memory copies
  // buddies hold), service/warm_cache (the cached density entry).
  resilience::ScfCheckpoint ckpt;
  ckpt.iteration = 1;
  ckpt.density_matrix = linalg::Matrix(local_nb, local_nb);
  const std::vector<unsigned char> frame = resilience::serialize(ckpt);

  resilience::BuddyReplicator buddy(2);
  {
    parallel::Cluster pair(2, 2);
    pair.run([&](parallel::Communicator& c) { buddy.replicate(c, frame); });
  }

  service::WarmCache cache(service::WarmCacheOptions{});
  cache.put_density(1, ckpt.density_matrix);

  // comm/packed_buffer: stage a pack window of local-block rows, then read
  // all gauges while the reducer (and everything above) is still alive.
  parallel::Cluster solo(1, 1);
  solo.run([&](parallel::Communicator& c) {
    comm::PackedAllReducer packer(c, comm::ReduceMode::Flat);
    std::vector<double> row(local_nb > 0 ? local_nb : 1, 1.0);
    for (int i = 0; i < 32; ++i) packer.add(row);
    packer.flush();
    for (const auto& g : obs::mem_snapshot()) {
      // checkpoint_frame is peak-only (the blob is transient); every other
      // gauge reports its live resident bytes.
      const double b = g.current_bytes > 0
                           ? static_cast<double>(g.current_bytes)
                           : static_cast<double>(g.peak_bytes);
      if (b > 0) out.bytes[g.name] = b;
    }
  });
  return out;
}

void memory_sweep_and_json() {
  const bool was_on = obs::memaudit_enabled();
  obs::set_memaudit(true);
  // 16 ranks keeps at least one batch per rank down to the smallest sweep
  // size (188 atoms x 12 points / 96-point batches = 23 batches).
  constexpr std::size_t kRanks = 16;
  const std::vector<std::size_t> sizes = {188, 376, 752, 1503, 3006};

  std::vector<SizeSample> samples;
  samples.reserve(sizes.size());
  for (const std::size_t n : sizes) samples.push_back(measure(n, kRanks));
  obs::reset_mem_gauges();
  obs::set_memaudit(was_on);

  // Collate per-gauge series and fit the scaling exponent vs atom count.
  std::map<std::string, std::vector<std::pair<std::size_t, double>>> series;
  for (const SizeSample& s : samples)
    for (const auto& [name, bytes] : s.bytes)
      series[name].push_back({s.atoms, bytes});

  Table t({"gauge", "bytes @ smallest", "bytes @ largest", "exponent"});
  std::string path;
  std::FILE* f = benchio::open_bench("BENCH_memory.json", &path);
  if (f != nullptr) {
    benchio::write_envelope(f, "mapping_memory");
    std::fprintf(f, "  \"ranks\": %zu,\n  \"gauges\": [\n", kRanks);
  }
  std::size_t emitted = 0;
  for (const auto& [name, pts] : series) {
    std::vector<double> n, b;
    for (const auto& [atoms, bytes] : pts) {
      n.push_back(static_cast<double>(atoms));
      b.push_back(bytes);
    }
    const double exp = obs::fit_scaling_exponent(n, b);
    t.add_row({name, Table::num(b.front(), 0), Table::num(b.back(), 0),
               Table::num(exp, 3)});
    if (f != nullptr) {
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"exponent\": %.4f, \"samples\": [",
                   name.c_str(), exp);
      for (std::size_t i = 0; i < pts.size(); ++i)
        std::fprintf(f, "{\"atoms\": %zu, \"bytes\": %.0f}%s", pts[i].first,
                     pts[i].second, i + 1 < pts.size() ? ", " : "");
      std::fprintf(f, "]}%s\n", ++emitted < series.size() ? "," : "");
    }
  }
  if (f != nullptr) {
    std::fprintf(f, "  ],\n  \"sizes\": [");
    for (std::size_t i = 0; i < samples.size(); ++i)
      std::fprintf(f, "{\"atoms\": %zu, \"n_basis\": %zu}%s",
                   samples[i].atoms, samples[i].n_basis,
                   i + 1 < samples.size() ? ", " : "");
    std::fprintf(f, "]\n}\n");
    std::fclose(f);
    std::printf("Wrote %s\n", path.c_str());
  }
  t.print("Memory-audit gauges across the size sweep (instrumented bytes; "
          "exponent = d log bytes / d log atoms)");
}

void BM_LocalityMapping3006Atoms(benchmark::State& state) {
  const auto rbd = core::rbd_like_cluster(3006, 1);
  const auto cloud = mapping::synthetic_point_cloud(rbd, 12);
  const auto batches = grid::make_batches(cloud.positions, cloud.parent_atom, 96);
  for (auto _ : state) {
    auto a = mapping::locality_enhancing_mapping(
        batches, static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_LocalityMapping3006Atoms)->Arg(64)->Arg(256)->Arg(512);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  memory_sweep_and_json();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
