// Reproduces paper Fig. 9(a): per-process memory required for the
// Hamiltonian matrix of the RBD system (3006 atoms, ~9210 basis functions)
// under the existing load-balancing strategy (global sparse CSR held by
// every rank) vs the proposed locality-enhancing mapping (local dense
// block), for 64-512 MPI processes.
//
// Paper reference points: existing = 21,373 KB per task; proposed =
// 58-455 KB on average across tasks.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "basis/element.hpp"
#include "common/table.hpp"
#include "core/structures.hpp"
#include "grid/batch.hpp"
#include "mapping/hamiltonian_analysis.hpp"
#include "mapping/synthetic_points.hpp"
#include "mapping/task_mapping.hpp"

namespace {

using namespace aeqp;

// FHI-aims-style light cutoffs: orbitals confined to ~5 bohr, so orbital
// pairs interact within ~10 bohr.
constexpr double kHaloCutoff = 5.0;
constexpr double kInteractionCutoff = 10.0;

void print_figure() {
  const auto rbd = core::rbd_like_cluster(3006, 1);
  const auto counts =
      mapping::basis_function_counts(rbd, basis::BasisTier::Minimal);
  std::size_t n_basis = 0;
  for (auto c : counts) n_basis += c;

  const auto cloud = mapping::synthetic_point_cloud(rbd, 12);
  const auto batches = grid::make_batches(cloud.positions, cloud.parent_atom, 96);

  Table t({"ranks", "existing (KB/task)", "proposed avg (KB/task)",
           "proposed min (KB)", "proposed max (KB)", "saving"});
  for (std::size_t ranks : {64u, 128u, 256u, 512u}) {
    const auto assignment = mapping::locality_enhancing_mapping(batches, ranks);
    const auto mem = mapping::hamiltonian_memory(
        rbd, counts, kInteractionCutoff, kHaloCutoff, assignment, batches);
    const double kb = 1024.0;
    t.add_row({std::to_string(ranks),
               Table::num(static_cast<double>(mem.existing_bytes_per_rank) / kb, 0),
               Table::num(mem.proposed_mean() / kb, 0),
               Table::num(static_cast<double>(mem.proposed_min()) / kb, 0),
               Table::num(static_cast<double>(mem.proposed_max()) / kb, 0),
               Table::num(static_cast<double>(mem.existing_bytes_per_rank) /
                              mem.proposed_mean(),
                          1) +
                   "x"});
  }
  std::printf("RBD-like system: %zu atoms, %zu basis functions "
              "(paper: 3006 atoms, 9210 basis functions)\n",
              rbd.size(), n_basis);
  t.print("Fig 9(a): per-process Hamiltonian memory, existing vs proposed "
          "(paper: 21,373 KB vs 58-455 KB)");
}

void BM_LocalityMapping3006Atoms(benchmark::State& state) {
  const auto rbd = core::rbd_like_cluster(3006, 1);
  const auto cloud = mapping::synthetic_point_cloud(rbd, 12);
  const auto batches = grid::make_batches(cloud.positions, cloud.parent_atom, 96);
  for (auto _ : state) {
    auto a = mapping::locality_enhancing_mapping(
        batches, static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_LocalityMapping3006Atoms)->Arg(64)->Arg(256)->Arg(512);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
