// Ablation: packing-window size for the packed collective scheme
// (paper Sec. 3.2.1). The paper packs until the staging buffer reaches
// 30 MB (512 rows in the Fig. 10 runs), arguing the window should stay
// within the last-level cache. This sweep shows the trade-off directly:
// tiny windows forfeit the latency amortization, while the returns flatten
// well before the 30 MB cap -- validating the heuristic.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/table.hpp"
#include "parallel/machine_model.hpp"

namespace {

using namespace aeqp;
using parallel::CommCostModel;
using parallel::MachineModel;

constexpr std::size_t kRowBytes = 16384;
constexpr std::size_t kRows = 30002;

void print_sweep(const MachineModel& machine, std::size_t ranks) {
  const CommCostModel model(machine);
  const double baseline =
      model.repeated_allreduce_seconds(kRowBytes, kRows, ranks);
  Table t({"pack rows", "window (MB)", "time (s)", "speedup vs per-row"});
  for (std::size_t pack : {1u, 8u, 32u, 128u, 512u, 2048u, 8192u}) {
    const std::size_t windows = (kRows + pack - 1) / pack;
    const double time = static_cast<double>(windows) *
                        model.packed_allreduce_seconds(kRowBytes, pack, ranks);
    t.add_row({std::to_string(pack),
               Table::num(static_cast<double>(pack * kRowBytes) / (1 << 20), 2),
               Table::num(time, 3), Table::num(baseline / time, 1) + "x"});
  }
  t.print("Ablation: pack-window sweep on " + machine.name + ", " +
          std::to_string(ranks) + " ranks, 30,002 rows "
          "(paper heuristic: <= 30 MB, 512 rows)");
}

void BM_PackedCostEvaluation(benchmark::State& state) {
  const CommCostModel model(MachineModel::hpc2_amd());
  for (auto _ : state) {
    double t = model.packed_allreduce_seconds(
        kRowBytes, static_cast<std::size_t>(state.range(0)), 4096);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_PackedCostEvaluation)->Arg(8)->Arg(512)->Arg(8192);

}  // namespace

int main(int argc, char** argv) {
  print_sweep(MachineModel::hpc1_sunway(), 4096);
  print_sweep(MachineModel::hpc2_amd(), 4096);
  std::printf("\nReturns flatten once the per-window latency is amortized; "
              "beyond the LLC-sized\nwindow the only effect is extra staging "
              "memory -- the paper's 30 MB cap is safe.\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
