// Reproduces paper Fig. 15: strong scaling of the optimized DFPT cycle.
//
// (a) Log-log strong speedup for 60,002 atoms on HPC#1 (5000-40000 ranks)
//     and HPC#2 with CPU only / with GPUs (1024-8192 ranks).
//     Paper: HPC#1 1.85x/2.81x/4.88x at 2x/4x/8x ranks (92.6% parallel
//     efficiency at 2x); HPC#2 CPU 1.86x/3.10x/6.08x; GPU slightly less.
// (b) Time to solution per cycle on HPC#2 (with GPUs) for the five
//     polyethylene systems; the 200,002-atom system completes a cycle in
//     under one minute.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/table.hpp"
#include "parallel/machine_model.hpp"
#include "perfmodel/dfpt_perf_model.hpp"
#include "simt/device.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::perfmodel;

void print_strong_speedups() {
  const auto flags = OptimizationFlags::all_on();
  const DfptPerfModel hpc1(parallel::MachineModel::hpc1_sunway(),
                           simt::DeviceModel::sw39010(), true);
  const DfptPerfModel cpu(parallel::MachineModel::hpc2_amd(),
                          simt::DeviceModel::gcn_gpu(), false);
  const DfptPerfModel gpu(parallel::MachineModel::hpc2_amd(),
                          simt::DeviceModel::gcn_gpu(), true);

  Table t({"machine", "base ranks", "ranks", "speedup", "efficiency", "paper"});
  struct Case {
    const DfptPerfModel* m;
    const char* name;
    std::size_t base;
    std::size_t ranks;
    const char* paper;
  };
  const Case cases[] = {
      {&hpc1, "HPC#1", 5000, 10000, "1.85x"},
      {&hpc1, "HPC#1", 5000, 20000, "2.81x"},
      {&hpc1, "HPC#1", 5000, 40000, "4.88x"},
      {&cpu, "HPC#2 (CPU)", 1024, 2048, "1.86x"},
      {&cpu, "HPC#2 (CPU)", 1024, 4096, "3.10x"},
      {&cpu, "HPC#2 (CPU)", 1024, 8192, "6.08x"},
      {&gpu, "HPC#2 (GPU)", 1024, 2048, "<1.86x"},
      {&gpu, "HPC#2 (GPU)", 1024, 4096, "<3.10x"},
      {&gpu, "HPC#2 (GPU)", 1024, 8192, "<6.08x"},
  };
  for (const auto& c : cases) {
    const double s = c.m->strong_speedup(60002, c.base, c.ranks, flags);
    const double ideal =
        static_cast<double>(c.ranks) / static_cast<double>(c.base);
    t.add_row({c.name, std::to_string(c.base), std::to_string(c.ranks),
               Table::num(s, 2) + "x", Table::num(100.0 * s / ideal, 1) + "%",
               c.paper});
  }
  t.print("Fig 15(a): strong scaling, 60,002 atoms");
}

void print_time_to_solution() {
  const auto flags = OptimizationFlags::all_on();
  const DfptPerfModel gpu(parallel::MachineModel::hpc2_amd(),
                          simt::DeviceModel::gcn_gpu(), true);
  struct Sys {
    std::size_t atoms;
    std::size_t ranks[4];
  };
  const Sys systems[] = {{15002, {128, 256, 512, 1024}},
                         {30002, {256, 512, 1024, 2048}},
                         {60002, {1024, 2048, 4096, 8192}},
                         {117602, {4096, 8192, 16384, 32768}},
                         {200002, {8192, 16384, 32768, 65536}}};
  Table t({"atoms", "ranks", "time/cycle (s)", "DM share", "Rho share"});
  for (const auto& s : systems)
    for (std::size_t r : s.ranks) {
      const auto bd = gpu.predict(s.atoms, r, flags);
      t.add_row({std::to_string(s.atoms), std::to_string(r),
                 Table::num(bd.total(), 2),
                 Table::num(100.0 * (bd.dm + bd.comm) / bd.total(), 1) + "%",
                 Table::num(100.0 * bd.rho / bd.total(), 1) + "%"});
    }
  t.print("Fig 15(b): time to solution per DFPT cycle on HPC#2 (GPUs)");

  const auto big = gpu.predict(200002, 16384, flags);
  std::printf("200,002 atoms on 16384 ranks: %.1f s/cycle (paper: "
              "within 1 minute)\n",
              big.total());
}

void BM_StrongSpeedupEvaluation(benchmark::State& state) {
  const DfptPerfModel gpu(parallel::MachineModel::hpc2_amd(),
                          simt::DeviceModel::gcn_gpu(), true);
  const auto flags = OptimizationFlags::all_on();
  for (auto _ : state) {
    double s = gpu.strong_speedup(60002, 1024,
                                  static_cast<std::size_t>(state.range(0)), flags);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_StrongSpeedupEvaluation)->Arg(2048)->Arg(8192);

}  // namespace

int main(int argc, char** argv) {
  print_strong_speedups();
  print_time_to_solution();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
