// Straggler-defense bench: the cost of the arrival-lag ledger and the win
// of rebalance-before-shrink.
//
// Two promises are priced here. First, the observe-only hot path: every
// collective entry pays one ring store + two relaxed accumulates into the
// StragglerDetector and (when adaptive deadlines are armed) one relaxed
// load for the per-class deadline -- nanoseconds, cheap enough to leave on
// for every governed run. Second, the ladder's rebalance rung: with one
// rank persistently 8x slow, the governed run must complete at FULL world
// size (no shrink), with the weighted re-mapping holding the walltime to
// under 2x the clean run -- against the ~8x a do-nothing schedule would
// cost. The JSON lands in BENCH_straggler.json for the perf-regression
// sentinel (scripts/bench_history.py); the correctness rails (full world,
// rebalance engaged, 1e-8 vs reference, ratio < 2) hard-fail the harness.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_output.hpp"
#include "common/table.hpp"
#include "comm/packed.hpp"
#include "core/dfpt.hpp"
#include "core/parallel_dfpt.hpp"
#include "grid/structure.hpp"
#include "parallel/fault.hpp"
#include "parallel/straggler.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/recovery.hpp"
#include "scf/scf_solver.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::resilience;
using Clock = std::chrono::steady_clock;

// A 4-atom hydrogen chain rather than H2: the rebalance win is bounded by
// the ratio of distributed grid work (which the weighted re-mapping can
// move off the straggler) to the replicated per-iteration tail (Sternheimer
// update, P^(1) assembly, radial Poisson solve -- paid by every rank, so an
// 8x rank pays it at 8x no matter the mapping). Four atoms quadruple the
// distributed share while the replicated tail grows slowly, which keeps a
// governed run with one 8x rank comfortably inside the 2x walltime rail
// even on an oversubscribed CI box.
grid::Structure hydrogen_chain() {
  grid::Structure s;
  for (int a = 0; a < 4; ++a) s.add_atom(1, {0, 0, -2.1 + 1.4 * a});
  return s;
}

scf::ScfResult light_ground() {
  scf::ScfOptions opt;
  opt.tier = basis::BasisTier::Light;
  opt.grid.radial_points = 40;
  opt.grid.angular_degree = 11;
  opt.poisson.radial_points = 72;
  return scf::ScfSolver(hydrogen_chain(), opt).run();
}

core::ParallelDfptOptions bench_popt(parallel::FaultInjector* injector) {
  core::ParallelDfptOptions popt;
  popt.dfpt.tolerance = 1e-8;
  popt.ranks = 4;
  popt.ranks_per_node = 2;
  popt.reduce_mode = comm::ReduceMode::Flat;
  popt.batch_points = 96;
  // Weighted Rho-producer shares: under a persistent straggler the
  // replicated producer would run at the slowest rank's speed no matter how
  // the grid batches are re-homed, capping the rebalance win far above 2x.
  popt.distribute_rho = true;
  popt.fault_injector = injector;
  popt.collective_timeout_ms = 30000;
  return popt;
}

double governed_seconds(const scf::ScfResult& ground,
                        parallel::FaultInjector* injector, const char* tag,
                        core::ParallelDfptResult* out) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("aeqp_bench_straggler_") + tag);
  std::filesystem::remove_all(dir);
  CheckpointStore store(dir);
  RecoveryOptions ropt;
  ropt.elastic = true;
  ropt.max_retries = 6;
  ropt.mixing_damping = 1.0;
  ropt.backoff_base_ms = 0;
  // Per-iteration checkpointing serializes a buddy exchange against the
  // straggler's delayed arrivals; every 4th iteration bounds the rollback
  // at 3 iterations while keeping the steady-state sync cost off the
  // critical path.
  ropt.checkpoint_every = 4;
  RecoveryDriver driver(store, ropt);
  // This molecule's per-collective work windows are a few ms; drop the
  // ledger's noise floor (production default 5 ms) so they carry signal.
  // min_relative comes down from the production 4x as well: with all rank
  // threads time-slicing one oversubscribed host core, a healthy rank's
  // wall window contains the whole pack's interleaved compute, which
  // compresses the straggler's observable arrival-lag ratio to about
  // 1 + (factor-1)/ranks (~2.7 here) -- on dedicated cores the same 8x
  // rank shows the full 8x ratio. degrade_after stays at the default 2:
  // one-window classification is measurably trigger-happy (scheduler
  // jitter degrades healthy ranks and burns the retry budget on spurious
  // rebalances).
  parallel::StragglerDetector::Options dopt;
  dopt.min_window_ms = 0.5;
  dopt.min_relative = 2.5;
  parallel::StragglerDetector detector(4, dopt);
  auto popt = bench_popt(injector);
  popt.straggler_detector = &detector;
  const auto t0 = Clock::now();
  *out = driver.solve_direction_parallel(ground, popt, 2);
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void straggler_run() {
  // --- Ledger hot-path cost -------------------------------------------
  // One record_work per collective entry per rank: a relaxed ring store
  // plus two relaxed accumulates.
  parallel::StragglerDetector detector(4);
  constexpr std::size_t kRecords = 10'000'000;
  const auto d0 = Clock::now();
  for (std::size_t i = 0; i < kRecords; ++i) {
    detector.record_work(i % 4, 1.0);
    benchmark::ClobberMemory();
  }
  const double record_ns =
      std::chrono::duration<double, std::nano>(Clock::now() - d0).count() /
      static_cast<double>(kRecords);

  // Adaptive deadline lookup: one relaxed load of the cached estimate plus
  // clamping, paid per collective when the estimator is armed.
  parallel::DeadlineEstimator estimator;
  for (int i = 0; i < 64; ++i)
    estimator.record(parallel::CollectiveClass::AllreduceSum, 5.0);
  constexpr std::size_t kLookups = 10'000'000;
  const auto l0 = Clock::now();
  std::chrono::milliseconds sink{0};
  for (std::size_t i = 0; i < kLookups; ++i) {
    sink += estimator.deadline(parallel::CollectiveClass::AllreduceSum,
                               std::chrono::milliseconds(120000));
    benchmark::DoNotOptimize(sink);
  }
  const double deadline_ns =
      std::chrono::duration<double, std::nano>(Clock::now() - l0).count() /
      static_cast<double>(kLookups);

  // --- Clean vs persistently-slow governed runs ------------------------
  // Each side is timed twice and the minimum kept: walltime on a shared CI
  // box carries ambient load spikes, and min-of-N is the standard estimator
  // of the undisturbed run. Correctness rails are asserted on EVERY slow
  // trial (a missed detection would otherwise hide inside the discarded
  // sample).
  const auto ground = light_ground();
  core::DfptOptions ref_opt;
  ref_opt.tolerance = 1e-8;
  const auto ref = core::DfptSolver(ground, ref_opt).solve_direction(2);

  core::ParallelDfptResult clean;
  double clean_seconds = governed_seconds(ground, nullptr, "clean0", &clean);
  {
    core::ParallelDfptResult again;
    clean_seconds = std::min(
        clean_seconds, governed_seconds(ground, nullptr, "clean1", &again));
  }

  const auto slow_trial = [&](const char* tag, core::ParallelDfptResult* out,
                              double* injected_ms) {
    parallel::FaultPlan plan;
    parallel::FaultEvent ev;
    ev.kind = parallel::FaultKind::Slowdown;
    ev.rank = 1;
    ev.collective = 10;
    ev.slow_factor = 8.0;
    ev.transient = false;  // slow until the ladder rebalances around it
    plan.add(ev);
    parallel::FaultInjector injector(std::move(plan));
    const double secs = governed_seconds(ground, &injector, tag, out);
    *injected_ms = injector.stats().slowdown_ms;
    return secs;
  };
  core::ParallelDfptResult slow;
  double injected_ms = 0.0;
  double slow_seconds = slow_trial("slow0", &slow, &injected_ms);
  bool slow_rails = slow.direction.converged && slow.stats.shrinks == 0 &&
                    slow.stats.survivor_ranks == 4 &&
                    slow.stats.rebalances >= 1;
  {
    core::ParallelDfptResult again;
    double again_ms = 0.0;
    const double secs = slow_trial("slow1", &again, &again_ms);
    slow_rails = slow_rails && again.direction.converged &&
                 again.stats.shrinks == 0 &&
                 again.stats.survivor_ranks == 4 &&
                 again.stats.rebalances >= 1;
    if (secs < slow_seconds) {
      slow_seconds = secs;
      slow = again;
      injected_ms = again_ms;
    }
  }
  const double ratio = slow_seconds / clean_seconds;
  const double max_diff = slow.direction.p1.max_abs_diff(ref.p1);

  // --- Rails ----------------------------------------------------------
  // The acceptance bar of the rebalance rung: full world kept, rebalance
  // engaged, reference-accurate, and the walltime win is real.
  const bool rails_ok = clean.direction.converged && slow_rails &&
                        max_diff <= 1e-8 && ratio < 2.0;
  if (!rails_ok) {
    std::fprintf(stderr,
                 "bench_straggler: rebalance rung FAILED its rails "
                 "(converged=%d/%d shrinks=%zu survivors=%zu rebalances=%zu "
                 "max_diff=%g clean=%.3fs slow=%.3fs ratio=%.2f)\n",
                 clean.direction.converged ? 1 : 0,
                 slow.direction.converged ? 1 : 0, slow.stats.shrinks,
                 slow.stats.survivor_ranks, slow.stats.rebalances, max_diff,
                 clean_seconds, slow_seconds, ratio);
    std::exit(1);
  }

  // --- Report ----------------------------------------------------------
  Table t({"record_work (ns)", "deadline lookup (ns)"});
  t.add_row({Table::num(record_ns, 2), Table::num(deadline_ns, 2)});
  t.print("Straggler ledger hot-path cost (paid once per collective entry "
          "per rank; observe-only)");

  Table g({"clean (s)", "8x-slow (s)", "ratio", "rebalances",
           "batches moved", "shrinks", "max |diff| vs ref"});
  g.add_row({Table::num(clean_seconds, 3), Table::num(slow_seconds, 3),
             Table::num(ratio, 2), std::to_string(slow.stats.rebalances),
             std::to_string(slow.stats.rebalance_batches_moved),
             std::to_string(slow.stats.shrinks), Table::num(max_diff, 3)});
  g.print("Governed CPSCF with one rank persistently 8x slow: the rebalance "
          "rung keeps the full world and holds walltime under 2x clean");

  std::string path;
  if (std::FILE* f = benchio::open_bench("BENCH_straggler.json", &path)) {
    benchio::write_envelope(f, "straggler_defense");
    std::fprintf(
        f,
        "  \"detector_record_overhead_ns\": %.4f,\n"
        "  \"deadline_lookup_overhead_ns\": %.4f,\n"
        "  \"slowdown_walltime_ratio\": %.4f,\n"
        "  \"injected_slowdown_ms\": %.2f,\n"
        "  \"governed_rebalances\": %zu,\n"
        "  \"governed_rebalance_batches_moved\": %zu,\n"
        "  \"governed_shrinks\": %zu,\n"
        "  \"governed_degraded_ranks\": %zu,\n"
        "  \"straggler_max_diff\": %.3e\n}\n",
        record_ns, deadline_ns, ratio, injected_ms, slow.stats.rebalances,
        slow.stats.rebalance_batches_moved, slow.stats.shrinks,
        slow.stats.degraded_ranks, max_diff);
    std::fclose(f);
    std::printf("Wrote %s\n", path.c_str());
  }
}

/// Google-benchmark probes for interactive tuning (the JSON numbers above
/// come from the deterministic loop, not these).
void BM_DetectorRecordWork(benchmark::State& state) {
  parallel::StragglerDetector detector(4);
  std::size_t i = 0;
  for (auto _ : state) {
    detector.record_work(i++ % 4, 1.0);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_DetectorRecordWork);

void BM_DeadlineLookup(benchmark::State& state) {
  parallel::DeadlineEstimator estimator;
  for (int i = 0; i < 64; ++i)
    estimator.record(parallel::CollectiveClass::Barrier, 1.0);
  for (auto _ : state) {
    auto d = estimator.deadline(parallel::CollectiveClass::Barrier,
                                std::chrono::milliseconds(120000));
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_DeadlineLookup);

}  // namespace

int main(int argc, char** argv) {
  straggler_run();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
