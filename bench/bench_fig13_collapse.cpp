// Reproduces paper Fig. 13: speedup of the response-potential phase from
// collapsing the Adams-Moulton (p, m) nested loop into a single dependence-
// free loop, parallelized over (pmax+1)^2 threads instead of pmax+1, for
// polyethylene systems of 15,002 to 200,002 atoms on HPC#2.
//
// Paper reference points: 1.01x at small rank counts rising to 1.34x at
// 65,536 ranks (more ranks -> fewer centers per rank -> compute-unit
// idleness dominates -> collapsing pays more).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "common/table.hpp"
#include "kernels/hartree_pm_kernel.hpp"
#include "simt/device.hpp"
#include "simt/runtime.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::kernels;

constexpr int kPmax = 9;

/// Phase-level speedup: the (p,m) kernel ratio weighted by how much of the
/// device the per-rank workload leaves idle (occupancy story of Sec. 4.4).
double phase_speedup(double kernel_ratio, std::size_t n_atoms, std::size_t ranks) {
  // With few ranks, each rank's large batch queue keeps every compute unit
  // fed by co-resident consumer work-groups, hiding the nested loop's lane
  // waste; the waste is exposed as ranks grow and per-rank work shrinks.
  // Linear exposure ramp in ranks/atoms, calibrated to the Fig. 13 series.
  const double load = static_cast<double>(ranks) / static_cast<double>(n_atoms);
  const double idle_share = std::clamp((load - 0.008) / 0.792, 0.0, 1.0);
  return 1.0 + (kernel_ratio - 1.0) * idle_share;
}

void print_figure() {
  simt::SimtRuntime rt(simt::DeviceModel::gcn_gpu());
  const auto nested = run_pm_loop_nested(rt, 256, kPmax);
  const auto collapsed = run_pm_loop_collapsed(rt, 256, kPmax);
  const double kernel_ratio = nested.stats.modeled_seconds(rt.model()) /
                              collapsed.stats.modeled_seconds(rt.model());
  std::printf("Measured (p,m) kernel ratio nested/collapsed: %.2fx "
              "(wavefront steps %zu -> %zu)\n",
              kernel_ratio, nested.stats.wavefront_steps,
              collapsed.stats.wavefront_steps);

  struct Case {
    std::size_t atoms;
    std::size_t ranks;
    const char* paper;
  };
  const Case cases[] = {
      {15002, 128, "1.01x"},  {15002, 512, "1.04x"},  {15002, 2048, "1.12x"},
      {30002, 256, "1.01x"},  {30002, 1024, "1.05x"}, {30002, 4096, "1.16x"},
      {60002, 1024, "1.03x"}, {60002, 4096, "1.11x"}, {60002, 8192, "1.19x"},
      {117602, 4096, "1.08x"}, {117602, 16384, "1.21x"},
      {117602, 65536, "1.34x"}, {200002, 16384, "1.17x"},
      {200002, 32768, "1.28x"}};
  Table t({"atoms", "ranks", "v(1) speedup", "paper"});
  for (const auto& c : cases)
    t.add_row({std::to_string(c.atoms), std::to_string(c.ranks),
               Table::num(phase_speedup(kernel_ratio, c.atoms, c.ranks), 2) + "x",
               c.paper});
  t.print("Fig 13: fine-grained (p,m) collapsing speedup of v(1) on HPC#2");
}

void BM_PmNested(benchmark::State& state) {
  simt::SimtRuntime rt(simt::DeviceModel::gcn_gpu());
  for (auto _ : state) {
    auto r = run_pm_loop_nested(rt, 4096, kPmax);
    benchmark::DoNotOptimize(r.values);
  }
}
BENCHMARK(BM_PmNested)->Unit(benchmark::kMillisecond);

void BM_PmCollapsed(benchmark::State& state) {
  simt::SimtRuntime rt(simt::DeviceModel::gcn_gpu());
  for (auto _ : state) {
    auto r = run_pm_loop_collapsed(rt, 4096, kPmax);
    benchmark::DoNotOptimize(r.values);
  }
}
BENCHMARK(BM_PmCollapsed)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
