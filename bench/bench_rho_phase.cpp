// Rho-phase microbench (ISSUE 7): points/sec for the three Rho hot loops --
// density contraction (Sumup-style basis contraction feeding the
// projection), multipole projection (producer), and partitioned-potential
// interpolation (consumer) -- each measured through the batched kernels and
// through the legacy per-point call chain, with screening on and off.
// Writes BENCH_rho.json with the rates and speedups.
//
// Correctness rails built into the run: at tau = 0 the batched paths must
// agree with the per-point paths bit for bit (max |diff| printed and
// asserted 0), and at the default tau the density error bound is printed.
//
// `--tune` runs the persistent autotuner (src/tune/) and saves the best
// configuration to $AEQP_TUNE_FILE (or ./aeqp_tune.json); subsequent solver
// runs in the same environment pick it up automatically.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "basis/basis_set.hpp"
#include "bench_output.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/structures.hpp"
#include "exec/thread_pool.hpp"
#include "grid/angular_grid.hpp"
#include "scf/scf_solver.hpp"
#include "tune/tune.hpp"

namespace {

using namespace aeqp;

struct Rates {
  double contract_batched = 0, contract_batched_unscreened = 0,
         contract_per_point = 0;
  double project_batched = 0, project_per_point = 0;  // density evals / s
  double potential_batched = 0, potential_per_point = 0;
  double batched_vs_per_point_max_diff = 0;  // at tau = 0, must be 0
  std::size_t grid_points = 0, basis_size = 0, density_evals = 0;
};

/// Repeat `body` until it has run for >= min_seconds (>= 1 rep); returns
/// work_per_rep * reps / elapsed.
template <typename F>
double rate(double work_per_rep, double min_seconds, F&& body) {
  Timer timer;
  int reps = 0;
  do {
    body();
    ++reps;
  } while (timer.seconds() < min_seconds);
  return work_per_rep * reps / timer.seconds();
}

Rates run(bool smoke) {
  Rates out;
  const double min_s = smoke ? 0.01 : 0.25;

  scf::ScfOptions opt;
  opt.tier = basis::BasisTier::Light;
  opt.grid.radial_points = smoke ? 26 : 48;
  opt.grid.angular_degree = smoke ? 7 : 11;
  opt.poisson.radial_points = smoke ? 60 : 96;
  opt.poisson.l_max = smoke ? 2 : 4;
  const scf::ScfResult ground = scf::ScfSolver(core::water(), opt).run();
  if (!ground.converged) {
    std::fprintf(stderr, "bench_rho_phase: SCF did not converge\n");
    return out;
  }
  const auto& basis = *ground.basis;
  const auto& grid = *ground.grid;
  const auto& hartree = *ground.hartree;
  const linalg::Matrix& p = ground.density_matrix;
  const std::size_t np = grid.size();
  out.grid_points = np;
  out.basis_size = basis.size();

  std::vector<Vec3> pts(np);
  for (std::size_t i = 0; i < np; ++i) pts[i] = grid.point(i).pos;

  const std::vector<double> screen_tau = basis.screening_radii(1e-12);
  const std::vector<double> no_screen;  // empty = unscreened
  const std::size_t block = tune::rho_block_size(0);

  // --- Density contraction: n(p) over the whole grid. ---
  std::vector<double> n_batch(np), n_point(np);
  const auto contract_all = [&](std::span<const double> s, double* outp) {
    basis::BatchEval ev;
    for (std::size_t b = 0; b < np; b += block) {
      const std::size_t e = std::min(np, b + block);
      basis.evaluate_batch(pts.data() + b, e - b, s, ev);
      basis::contract_density(p, ev, outp + b);
    }
  };
  out.contract_batched =
      rate(static_cast<double>(np), min_s, [&] { contract_all(screen_tau, n_batch.data()); });
  out.contract_batched_unscreened =
      rate(static_cast<double>(np), min_s, [&] { contract_all(no_screen, n_batch.data()); });
  out.contract_per_point = rate(static_cast<double>(np), min_s, [&] {
    basis::PointEval ev;
    for (std::size_t i = 0; i < np; ++i) {
      basis.evaluate(pts[i], false, ev);
      double n = 0.0;
      for (std::size_t a = 0; a < ev.indices.size(); ++a)
        for (std::size_t b = 0; b < ev.indices.size(); ++b)
          n += p(ev.indices[a], ev.indices[b]) * ev.values[a] * ev.values[b];
      n_point[i] = n;
    }
  });
  // Rail: unscreened batched vs per-point must agree bit for bit.
  contract_all(no_screen, n_batch.data());
  for (std::size_t i = 0; i < np; ++i)
    out.batched_vs_per_point_max_diff = std::max(
        out.batched_vs_per_point_max_diff, std::fabs(n_batch[i] - n_point[i]));

  // --- Projection (producer): batched ring callback vs per-point. ---
  const poisson::BatchDensityFn batch_fn = [&](const Vec3* bp, std::size_t m,
                                               double* outp) {
    thread_local basis::BatchEval ev;
    basis.evaluate_batch(bp, m, screen_tau, ev);
    basis::contract_density(p, ev, outp);
  };
  const poisson::DensityFn point_fn = [&](const Vec3& pos) {
    basis::PointEval ev;
    basis.evaluate(pos, false, ev);
    double n = 0.0;
    for (std::size_t a = 0; a < ev.indices.size(); ++a)
      for (std::size_t b = 0; b < ev.indices.size(); ++b)
        n += p(ev.indices[a], ev.indices[b]) * ev.values[a] * ev.values[b];
    return n;
  };
  // Density evaluations per projection: atoms x radial shells x angular pts
  // (same angular rule the solver builds internally).
  const std::size_t n_ang =
      grid::AngularGrid::for_degree(
          static_cast<std::size_t>(2 * opt.poisson.l_max + 2))
          .size();
  out.density_evals =
      basis.structure().size() * opt.poisson.radial_points * n_ang;
  out.project_batched = rate(static_cast<double>(out.density_evals), min_s,
                             [&] { (void)hartree.project(batch_fn); });
  out.project_per_point = rate(static_cast<double>(out.density_evals), min_s,
                               [&] { (void)hartree.project(point_fn); });

  // --- Potential interpolation (consumer). ---
  const auto v_part = hartree.solve_density(batch_fn);
  std::vector<double> vh(np);
  out.potential_batched = rate(static_cast<double>(np), min_s, [&] {
    for (std::size_t b = 0; b < np; b += block) {
      const std::size_t e = std::min(np, b + block);
      hartree.potential_batch(v_part, pts.data() + b, e - b, vh.data() + b);
    }
  });
  out.potential_per_point = rate(static_cast<double>(np), min_s, [&] {
    for (std::size_t i = 0; i < np; ++i)
      vh[i] = hartree.potential(v_part, pts[i]);
  });
  return out;
}

void print_table(const Rates& r) {
  Table t({"kernel", "batched (pts/s)", "per-point (pts/s)", "speedup"});
  const auto row = [&](const char* name, double b, double pp) {
    t.add_row({name, Table::num(b, 0), Table::num(pp, 0),
               Table::num(pp > 0 ? b / pp : 0.0, 2) + "x"});
  };
  row("density contraction (screened)", r.contract_batched, r.contract_per_point);
  row("density contraction (unscreened)", r.contract_batched_unscreened,
      r.contract_per_point);
  row("projection (density evals)", r.project_batched, r.project_per_point);
  row("potential interpolation", r.potential_batched, r.potential_per_point);
  std::printf("\nWorkload: water, %zu grid points, %zu basis functions, "
              "single thread.\n",
              r.grid_points, r.basis_size);
  t.print("Rho-phase kernels: batched vs per-point");
  std::printf("batched vs per-point max |dn| (tau = 0): %g%s\n",
              r.batched_vs_per_point_max_diff,
              r.batched_vs_per_point_max_diff == 0.0 ? " (bit-identical)"
                                                     : "  ** MISMATCH **");
}

void write_json(const Rates& r, const char* filename) {
  std::string path;
  std::FILE* f = benchio::open_bench(filename, &path);
  if (!f) {
    std::fprintf(stderr, "bench_rho_phase: cannot write %s\n", path.c_str());
    return;
  }
  benchio::write_envelope(f, "rho_phase");
  std::fprintf(
      f,
      "  \"molecule\": \"H2O\",\n"
      "  \"grid_points\": %zu,\n"
      "  \"basis_size\": %zu,\n"
      "  \"density_evals_per_projection\": %zu,\n"
      "  \"points_per_second\": {\n"
      "    \"contract_batched_screened\": %.1f,\n"
      "    \"contract_batched_unscreened\": %.1f,\n"
      "    \"contract_per_point\": %.1f,\n"
      "    \"project_batched\": %.1f,\n"
      "    \"project_per_point\": %.1f,\n"
      "    \"potential_batched\": %.1f,\n"
      "    \"potential_per_point\": %.1f\n"
      "  },\n"
      "  \"speedups\": {\n"
      "    \"contract\": %.3f,\n"
      "    \"project\": %.3f,\n"
      "    \"potential\": %.3f\n"
      "  },\n"
      "  \"batched_vs_per_point_max_diff\": %g\n"
      "}\n",
      r.grid_points, r.basis_size, r.density_evals, r.contract_batched,
      r.contract_batched_unscreened, r.contract_per_point, r.project_batched,
      r.project_per_point, r.potential_batched, r.potential_per_point,
      r.contract_per_point > 0 ? r.contract_batched / r.contract_per_point : 0,
      r.project_per_point > 0 ? r.project_batched / r.project_per_point : 0,
      r.potential_per_point > 0 ? r.potential_batched / r.potential_per_point
                                : 0,
      r.batched_vs_per_point_max_diff);
  std::fclose(f);
  std::printf("Wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false, do_tune = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strstr(argv[i], "--benchmark_filter=__none__")) smoke = true;
    if (std::strcmp(argv[i], "--tune") == 0) do_tune = true;
  }

  if (do_tune) {
    const tune::AutotuneResult res = tune::autotune();
    std::fputs(res.report.c_str(), stdout);
    const char* env = std::getenv("AEQP_TUNE_FILE");
    const std::string path = (env && *env) ? env : "aeqp_tune.json";
    if (tune::save_file(path, res.best))
      std::printf("Saved tuned configuration to %s\n", path.c_str());
    else
      std::fprintf(stderr, "bench_rho_phase: cannot write %s\n", path.c_str());
    tune::set_config_for_testing(res.best);
  }

  // Single-thread rates: the acceptance criterion is raw kernel speed, and
  // one thread keeps the numbers free of scheduler noise.
  exec::ThreadPool::set_global_threads(1);
  const Rates r = run(smoke);
  exec::ThreadPool::set_global_threads(0);
  if (r.grid_points == 0) return 1;
  print_table(r);
  write_json(r, "BENCH_rho.json");
  return r.batched_vs_per_point_max_diff == 0.0 ? 0 : 2;
}
