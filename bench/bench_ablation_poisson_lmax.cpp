// Ablation: multipole expansion order of the Hartree solver (the accuracy
// knob of the Rho phase). Runs *real* DFPT on water at increasing l_max and
// shows the polarizability converging, together with the producer-side cost
// growth (spline channels ~ (l_max+1)^2, the Fig. 12(a) volume driver).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "basis/spline.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/dfpt.hpp"
#include "core/structures.hpp"
#include "scf/scf_solver.hpp"

namespace {

using namespace aeqp;

void print_sweep() {
  Table t({"poisson l_max", "alpha_zz (bohr^3)", "DFPT seconds",
           "splines built", "spline KB"});
  double reference = 0.0;
  for (int lmax : {0, 1, 2, 4, 6}) {
    scf::ScfOptions opt;
    opt.tier = basis::BasisTier::Light;
    opt.grid.radial_points = 32;
    opt.grid.angular_degree = 9;
    opt.poisson.l_max = lmax;
    opt.poisson.radial_points = 64;
    opt.mixer = scf::Mixer::Diis;
    const auto ground = scf::ScfSolver(core::water(), opt).run();
    if (!ground.converged) continue;

    basis::CubicSpline::reset_construction_counter();
    Timer timer;
    const core::DfptSolver dfpt(ground, {});
    const auto r = dfpt.solve_direction(2);
    const double seconds = timer.seconds();
    const std::size_t splines = basis::CubicSpline::constructions();
    if (lmax == 6) reference = r.dipole_response.z;

    t.add_row({std::to_string(lmax), Table::num(r.dipole_response.z, 4),
               Table::num(seconds, 2), std::to_string(splines),
               Table::num(static_cast<double>(splines) * 64 * 2 * 8 / 1024.0, 0)});
  }
  t.print("Ablation: Hartree multipole order vs DFPT polarizability (water)");
  std::printf("alpha converges by l_max ~ 4 (reference at l_max=6: %.4f); "
              "producer cost grows as (l_max+1)^2.\n",
              reference);
}

void BM_HartreeSolve(benchmark::State& state) {
  const auto mol = core::water();
  poisson::PoissonSpec spec;
  spec.l_max = static_cast<int>(state.range(0));
  spec.radial_points = 64;
  const poisson::HartreeSolver solver(mol, spec);
  const auto density = [](const Vec3& p) { return std::exp(-p.norm2()); };
  const auto rho = solver.project(density);
  for (auto _ : state) {
    auto v = solver.solve(rho);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_HartreeSolve)->Arg(0)->Arg(2)->Arg(4)->Arg(6);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
