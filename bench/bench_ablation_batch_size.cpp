// Ablation: batch size for the grid-adapted cut-plane method (paper
// Sec. 3.1, ref [23] -- batches "typically consisting of 100-300 grid
// points"). Small batches give the task mapper fine placement granularity
// (good load balance) but more per-batch overhead; large batches the
// reverse. The sweep shows the paper's 100-300-point regime balancing both.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/table.hpp"
#include "core/structures.hpp"
#include "grid/batch.hpp"
#include "mapping/synthetic_points.hpp"
#include "mapping/task_mapping.hpp"

namespace {

using namespace aeqp;

void print_sweep() {
  const auto chain = core::polyethylene_chain(300);  // 1802 atoms
  const auto cloud = mapping::synthetic_point_cloud(chain, 48);
  const std::size_t ranks = 64;

  Table t({"batch target", "batches", "load imbalance", "mean rank spread",
           "atoms/rank (avg)"});
  for (std::size_t target : {32u, 64u, 128u, 256u, 512u, 1024u, 2048u}) {
    const auto batches =
        grid::make_batches(cloud.positions, cloud.parent_atom, target);
    if (batches.size() < ranks) {
      t.add_row({std::to_string(target), std::to_string(batches.size()),
                 "(fewer batches than ranks)", "-", "-"});
      continue;
    }
    const auto a = mapping::locality_enhancing_mapping(batches, ranks);
    double atoms = 0;
    for (std::size_t r = 0; r < ranks; ++r)
      atoms += static_cast<double>(a.atoms_of_rank(r, batches).size());
    t.add_row({std::to_string(target), std::to_string(batches.size()),
               Table::num(mapping::load_imbalance(a, batches), 3),
               Table::num(mapping::mean_rank_spread(a, batches), 2),
               Table::num(atoms / ranks, 1)});
  }
  t.print("Ablation: cut-plane batch size, H(C2H4)300H on 64 ranks "
          "(paper regime: 100-300 points/batch)");
}

void BM_MakeBatches(benchmark::State& state) {
  const auto chain = core::polyethylene_chain(300);
  const auto cloud = mapping::synthetic_point_cloud(chain, 48);
  for (auto _ : state) {
    auto b = grid::make_batches(cloud.positions, cloud.parent_atom,
                                static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_MakeBatches)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
