// Reproduces paper Fig. 9(c): number of cubic splines performed per MPI
// process when calculating the response potential for the RBD system on
// 512 processes, existing load-balancing vs the proposed locality mapping.
//
// Under the legacy mapping each rank's scattered grid points touch almost
// every atom, so each rank rebuilds (l_max+1)^2 splines per touched atom;
// the locality mapping shrinks the touched-atom set dramatically (the
// paper reports a 9.5% phase improvement on HPC#1 from the reuse).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "common/table.hpp"
#include "core/structures.hpp"
#include "grid/batch.hpp"
#include "mapping/hamiltonian_analysis.hpp"
#include "mapping/synthetic_points.hpp"
#include "mapping/task_mapping.hpp"

namespace {

using namespace aeqp;

constexpr int kPoissonLmax = 4;  // 25 (l,m) spline channels per atom
constexpr std::size_t kRanks = 512;

void print_figure() {
  const auto rbd = core::rbd_like_cluster(3006, 1);
  // ~100 points per atom so every rank owns several batches (the regime
  // where the two strategies actually differ).
  const auto cloud = mapping::synthetic_point_cloud(rbd, 96);
  const auto batches = grid::make_batches(cloud.positions, cloud.parent_atom, 128);

  const auto legacy = mapping::least_loaded_mapping(batches, kRanks);
  const auto local = mapping::locality_enhancing_mapping(batches, kRanks);
  const auto s_legacy = mapping::splines_per_rank(legacy, batches, kPoissonLmax);
  const auto s_local = mapping::splines_per_rank(local, batches, kPoissonLmax);

  auto stats = [](const std::vector<std::size_t>& v) {
    std::vector<std::size_t> s = v;
    std::sort(s.begin(), s.end());
    double total = 0;
    for (auto x : s) total += static_cast<double>(x);
    return std::tuple<std::size_t, std::size_t, std::size_t, double>{
        s.front(), s[s.size() / 2], s.back(), total};
  };
  const auto [lmin, lmed, lmax_v, ltot] = stats(s_legacy);
  const auto [pmin, pmed, pmax_v, ptot] = stats(s_local);

  Table t({"strategy", "min/rank", "median/rank", "max/rank", "total"});
  t.add_row({"existing (least-loaded)", std::to_string(lmin), std::to_string(lmed),
             std::to_string(lmax_v), Table::num(ltot, 0)});
  t.add_row({"proposed (locality)", std::to_string(pmin), std::to_string(pmed),
             std::to_string(pmax_v), Table::num(ptot, 0)});
  t.print("Fig 9(c): cubic splines performed per rank, RBD on 512 ranks "
          "(paper: existing ~32768/rank flat, proposed 1..4096)");
  std::printf("Total spline reduction: %.1fx (paper reports a 9.5%% response-"
              "potential phase improvement on HPC#1 from this reuse)\n",
              ltot / ptot);
}

void BM_SplineCounting(benchmark::State& state) {
  const auto rbd = core::rbd_like_cluster(1000, 1);
  const auto cloud = mapping::synthetic_point_cloud(rbd, 12);
  const auto batches = grid::make_batches(cloud.positions, cloud.parent_atom, 96);
  const auto a = mapping::locality_enhancing_mapping(batches, 64);
  for (auto _ : state) {
    auto s = mapping::splines_per_rank(a, batches, kPoissonLmax);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SplineCounting);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
