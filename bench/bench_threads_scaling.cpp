// Thread-scaling harness for the shared-memory execution layer: sweeps the
// pool size over {1, 2, 4, hw} on a fixed molecule, times the four paper
// phases (DM, Sumup, Rho, H) of a fixed-length CPSCF cycle at each size,
// prints the scaling table, and writes BENCH_threads.json -- the first real
// (wall-clock, not modeled) datapoint of the perf trajectory.
//
// Determinism cross-check: the response density matrix must be bit-for-bit
// identical at every thread count (docs/parallelism.md contract); the sweep
// aborts loudly if it is not.
//
// Timing comes from the obs tracing spans the solver records (AEQP_TRACE is
// forced to at least summary mode); the end-of-run phase report and the
// "profile" object in BENCH_threads.json carry the full span/metric
// breakdown of the last sweep point.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_output.hpp"
#include "common/table.hpp"
#include "core/dfpt.hpp"
#include "core/structures.hpp"
#include "exec/thread_pool.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "scf/scf_solver.hpp"

namespace {

using namespace aeqp;

struct PhaseSample {
  std::size_t threads = 0;
  double dm = 0, sumup = 0, rho = 0, h = 0;
  [[nodiscard]] double total() const { return dm + sumup + rho + h; }
};

struct SweepResult {
  std::vector<PhaseSample> samples;
  std::size_t grid_points = 0;
  std::size_t atoms = 0;
  std::size_t basis_size = 0;
  int iterations = 0;
};

SweepResult run_sweep(bool smoke) {
  SweepResult out;
  const grid::Structure molecule = core::water();
  out.atoms = molecule.size();

  scf::ScfOptions opt;
  opt.tier = basis::BasisTier::Light;
  // Full mode targets >= 500 grid points per atom (the acceptance
  // criterion's workload floor); smoke mode shrinks everything so the CTest
  // smoke run stays fast.
  opt.grid.radial_points = smoke ? 26 : 48;
  opt.grid.angular_degree = smoke ? 7 : 11;
  opt.poisson.radial_points = smoke ? 60 : 96;
  opt.poisson.l_max = smoke ? 2 : 4;
  opt.max_iterations = 120;
  opt.density_tolerance = 1e-6;

  const scf::ScfResult ground = scf::ScfSolver(molecule, opt).run();
  if (!ground.converged) {
    std::fprintf(stderr, "bench_threads_scaling: SCF did not converge\n");
    return out;
  }
  out.grid_points = ground.grid->size();
  out.basis_size = ground.density_matrix.rows();

  core::DfptOptions dopt;
  dopt.max_iterations = smoke ? 2 : 3;
  dopt.tolerance = 0.0;  // run the full fixed-length cycle at every size
  dopt.require_convergence = false;

  std::vector<std::size_t> sizes = {1, 2, 4, exec::hardware_threads()};
  if (smoke) sizes = {1, 2};
  std::sort(sizes.begin(), sizes.end());
  sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());

  linalg::Matrix p1_reference;
  for (const std::size_t threads : sizes) {
    exec::ThreadPool::set_global_threads(threads);
    obs::reset();  // each sweep point gets its own span window
    const core::DfptSolver solver(ground, dopt);
    const core::DfptDirectionResult res = solver.solve_direction(2);
    out.iterations = res.iterations;

    // Phase timings from the tracing spans the solver records.
    const auto aggs = obs::aggregate_spans();
    const auto span_seconds = [&](const char* name) {
      for (const auto& a : aggs)
        if (a.name == name) return a.total_s;
      return 0.0;
    };
    PhaseSample s;
    s.threads = threads;
    s.dm = span_seconds("cpscf/dm");
    s.sumup = span_seconds("cpscf/sumup");
    s.rho = span_seconds("cpscf/rho");
    s.h = span_seconds("cpscf/h");
    out.samples.push_back(s);

    if (p1_reference.empty()) {
      p1_reference = res.p1;
    } else if (res.p1.max_abs_diff(p1_reference) != 0.0) {
      std::fprintf(stderr,
                   "bench_threads_scaling: DETERMINISM VIOLATION at %zu "
                   "threads (max |dP1| = %g)\n",
                   threads, res.p1.max_abs_diff(p1_reference));
    }
  }
  exec::ThreadPool::set_global_threads(0);
  return out;
}

void print_table(const SweepResult& r) {
  Table t({"threads", "DM (s)", "Sumup (s)", "Rho (s)", "H (s)", "total (s)",
           "Rho+H speedup"});
  const PhaseSample* base = r.samples.empty() ? nullptr : &r.samples.front();
  for (const PhaseSample& s : r.samples) {
    const double rh_base = base->rho + base->h;
    const double rh = s.rho + s.h;
    t.add_row({std::to_string(s.threads), Table::num(s.dm, 4),
               Table::num(s.sumup, 4), Table::num(s.rho, 4), Table::num(s.h, 4),
               Table::num(s.total(), 4),
               Table::num(rh > 0 ? rh_base / rh : 0.0, 2) + "x"});
  }
  std::printf(
      "\nWorkload: water, %zu grid points (%zu per atom), %zu basis "
      "functions, %d CPSCF iterations per sweep point.\n",
      r.grid_points, r.atoms ? r.grid_points / r.atoms : 0, r.basis_size,
      r.iterations);
  t.print("Thread scaling: CPSCF phase wall-clock vs AEQP_NUM_THREADS");
}

void write_json(const SweepResult& r, const char* filename) {
  std::string path;
  std::FILE* f = benchio::open_bench(filename, &path);
  if (!f) {
    std::fprintf(stderr, "bench_threads_scaling: cannot write %s\n",
                 path.c_str());
    return;
  }
  benchio::write_envelope(f, "threads_scaling");
  std::fprintf(f,
               "  \"molecule\": \"H2O\",\n"
               "  \"grid_points\": %zu,\n"
               "  \"points_per_atom\": %zu,\n"
               "  \"basis_size\": %zu,\n"
               "  \"cpscf_iterations\": %d,\n"
               "  \"hardware_threads\": %zu,\n"
               "  \"sweep\": [\n",
               r.grid_points, r.atoms ? r.grid_points / r.atoms : 0,
               r.basis_size, r.iterations, exec::hardware_threads());
  for (std::size_t i = 0; i < r.samples.size(); ++i) {
    const PhaseSample& s = r.samples[i];
    std::fprintf(f,
                 "    {\"threads\": %zu, \"DM\": %.6f, \"Sumup\": %.6f, "
                 "\"Rho\": %.6f, \"H\": %.6f, \"total\": %.6f}%s\n",
                 s.threads, s.dm, s.sumup, s.rho, s.h, s.total(),
                 i + 1 < r.samples.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"profile\": %s\n}\n",
               aeqp::obs::profile_json(2).c_str());
  std::fclose(f);
  std::printf("Wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strstr(argv[i], "--benchmark_filter=__none__")) smoke = true;

  // The sweep needs spans: force at least summary mode unless the user
  // asked for something explicitly (e.g. AEQP_TRACE=full for a trace.json).
  if (obs::mode() == obs::TraceMode::Off) obs::set_mode(obs::TraceMode::Summary);

  const SweepResult r = run_sweep(smoke);
  if (r.samples.empty()) return 1;
  print_table(r);
  obs::write_phase_report(std::cout, "bench_threads_scaling (last sweep point)");
  write_json(r, "BENCH_threads.json");
  return 0;
}
