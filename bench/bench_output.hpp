#pragma once

/// \file bench_output.hpp
/// Standardized BENCH_*.json output shared by every bench driver.
///
/// Two conventions, enforced here so the perf-regression sentinel
/// (scripts/bench_history.py) can ingest any bench without per-file
/// special cases:
///
///  - **Path**: files land under AEQP_BENCH_DIR (default: the working
///    directory). CI points this at the artifact staging directory; local
///    runs keep today's behaviour.
///  - **Envelope**: every file opens with the same three fields --
///    "schema_version" (bumped when the envelope itself changes),
///    "bench" (the ledger series name), and "timestamp". The timestamp is
///    PASSED IN via AEQP_BENCH_TIMESTAMP (CI sets it to the commit's ISO
///    date) rather than read from the wall clock, so re-running the same
///    commit reproduces byte-identical output and the history ledger stays
///    deterministic. Unset means the field is emitted empty.
///
/// Header-only; benches are standalone executables and this keeps the
/// bench/ directory free of its own library target.

#include <cstdio>
#include <cstdlib>
#include <string>

namespace aeqp::benchio {

/// Version of the common envelope (not of any bench's payload fields).
inline constexpr int kSchemaVersion = 1;

/// Directory BENCH_*.json files are written to: AEQP_BENCH_DIR or ".".
[[nodiscard]] inline std::string bench_dir() {
  const char* env = std::getenv("AEQP_BENCH_DIR");
  return (env != nullptr && *env != '\0') ? env : ".";
}

/// Full path for a bench output file name (e.g. "BENCH_rho.json").
[[nodiscard]] inline std::string bench_path(const char* filename) {
  return bench_dir() + "/" + filename;
}

/// The run timestamp recorded in the envelope: AEQP_BENCH_TIMESTAMP
/// verbatim, empty when unset. Deliberately NOT derived from the clock --
/// see the file comment.
[[nodiscard]] inline std::string bench_timestamp() {
  const char* env = std::getenv("AEQP_BENCH_TIMESTAMP");
  return env != nullptr ? env : "";
}

/// fopen the standardized path for writing. Returns nullptr on failure
/// (caller reports). When `out_path` is non-null it receives the resolved
/// path for the "Wrote ..." message.
[[nodiscard]] inline std::FILE* open_bench(const char* filename,
                                           std::string* out_path = nullptr) {
  const std::string path = bench_path(filename);
  if (out_path != nullptr) *out_path = path;
  return std::fopen(path.c_str(), "w");
}

/// Emit the opening brace plus the common envelope fields. The caller
/// continues with its payload fields and the closing brace:
///
///   write_envelope(f, "rho_phase");
///   std::fprintf(f, "  \"grid_points\": %zu,\n...", ...);
inline void write_envelope(std::FILE* f, const char* bench_name) {
  std::fprintf(f,
               "{\n"
               "  \"schema_version\": %d,\n"
               "  \"bench\": \"%s\",\n"
               "  \"timestamp\": \"%s\",\n",
               kSchemaVersion, bench_name, bench_timestamp().c_str());
}

}  // namespace aeqp::benchio
