// Reproduces paper Fig. 12: fusing the widely-dependent producer/consumer
// kernel pair of the response-potential phase.
//
// (a) Data volumes of the two inter-kernel spline sets (rho_multipole_spl,
//     delta_v_hart_part_spl) versus the multipole order, against the 64 KB
//     RMA volume limit of SW39010 (paper: 28 KB / 498 KB at production
//     settings, the latter ruling out vertical fusion on HPC#1).
// (b) Horizontal-fusion speedup of the v(1) phase on HPC#2, growing with
//     rank count as per-rank work shrinks (paper: up to 2.4x).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/table.hpp"
#include "kernels/rho_kernels.hpp"
#include "simt/device.hpp"
#include "simt/runtime.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::kernels;

// Phase-level weight of the fusible producer/consumer pair within v(1).
constexpr double kFusionShare = 0.35;

void print_volume_table() {
  Table t({"l_max", "rho_multipole_spl (KB)", "delta_v_hart_part_spl (KB)",
           "fits 64KB RMA"});
  for (int lmax = 0; lmax <= 9; ++lmax) {
    RhoPhaseConfig cfg;
    cfg.l_max = lmax;
    // Each set stores value + second-derivative rows per channel.
    // rho_multipole_spl lives on the 72-point projection mesh; the Hartree
    // set keeps the splined potential on the dense ~1275-point output mesh
    // (paper production settings: 28 KB vs 498 KB at l_max = 4).
    const std::size_t rho_b = cfg.lm_channels() * 72 * 2 * 8;
    const std::size_t v_b = cfg.lm_channels() * 1275 * 2 * 8;
    t.add_row({std::to_string(lmax), std::to_string(rho_b / 1024),
               std::to_string(v_b / 1024),
               (rho_b + v_b) <= 64 * 1024 ? "yes" : "no (vertical "
                                                    "fusion blocked)"});
  }
  t.print("Fig 12(a): inter-kernel spline data volume vs multipole order "
          "(SW39010 RMA limit: 64 KB)");
}

double fusion_speedup(std::size_t n_atoms, std::size_t ranks) {
  simt::SimtRuntime rt(simt::DeviceModel::gcn_gpu());
  RhoPhaseConfig cfg;
  cfg.n_atoms = 6;
  cfg.l_max = 4;
  cfg.radial_points = 64;
  cfg.ranks_per_device = 8;  // 32-core node / 4 GPUs
  // Consumer work per rank shrinks as the machine partition grows.
  cfg.grid_points_per_rank =
      std::max<std::size_t>(128, std::min<std::size_t>(8192, n_atoms * 40 / ranks));

  const auto unfused = run_rho_phase(rt, cfg, FusionMode::Unfused);
  const auto fused = run_rho_phase(rt, cfg, FusionMode::HorizontalFused);
  const double raw = unfused.stats.modeled_seconds(rt.model()) /
                     fused.stats.modeled_seconds(rt.model());
  return 1.0 + (raw - 1.0) * kFusionShare;
}

void print_speedup_table() {
  struct Case {
    std::size_t atoms;
    std::size_t ranks[4];
    int n;
  };
  const Case cases[] = {{30002, {256, 512, 1024, 2048}, 4},
                        {30002, {4096, 0, 0, 0}, 1},
                        {60002, {1024, 2048, 4096, 8192}, 4},
                        {117602, {4096, 8192, 16384, 0}, 3}};
  Table t({"atoms", "ranks", "v(1) speedup (horizontal fusion)"});
  for (const auto& c : cases)
    for (int i = 0; i < c.n; ++i)
      t.add_row({std::to_string(c.atoms), std::to_string(c.ranks[i]),
                 Table::num(fusion_speedup(c.atoms, c.ranks[i]), 2) + "x"});
  t.print("Fig 12(b): horizontal-fusion speedup of v(1) on HPC#2 "
          "(paper: 1.1x-2.4x, growing with rank count)");
}

void BM_RhoUnfused(benchmark::State& state) {
  simt::SimtRuntime rt(simt::DeviceModel::gcn_gpu());
  RhoPhaseConfig cfg;
  cfg.grid_points_per_rank = 1024;
  for (auto _ : state) {
    auto r = run_rho_phase(rt, cfg, FusionMode::Unfused);
    benchmark::DoNotOptimize(r.potential);
  }
}
BENCHMARK(BM_RhoUnfused)->Unit(benchmark::kMillisecond);

void BM_RhoHorizontalFused(benchmark::State& state) {
  simt::SimtRuntime rt(simt::DeviceModel::gcn_gpu());
  RhoPhaseConfig cfg;
  cfg.grid_points_per_rank = 1024;
  for (auto _ : state) {
    auto r = run_rho_phase(rt, cfg, FusionMode::HorizontalFused);
    benchmark::DoNotOptimize(r.potential);
  }
}
BENCHMARK(BM_RhoHorizontalFused)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_volume_table();
  print_speedup_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
