// Reproduces paper Fig. 11: speedup of the initialization (3-D grid
// partitioning) phase from eliminating the indirect access
// coord_center[atom_list[i_center]], for polyethylene systems of
// 30,002 / 60,002 / 117,602 atoms across the paper's rank counts, on both
// machines.
//
// The kernels execute for real on the host (outputs bit-compared in the
// test suite); per-machine speedups come from the counted event model.
// Paper reference points: up to 6.2x on HPC#1 and 3.9x on HPC#2, shrinking
// as rank counts grow (less work per rank, fixed launch overhead).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/table.hpp"
#include "kernels/init_kernel.hpp"
#include "simt/device.hpp"
#include "simt/runtime.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::kernels;

// Grid-partitioning centers per atom: the init loop visits every grid
// point's center lookup, ~1500 points per atom at light settings.
constexpr std::size_t kCentersPerAtom = 1500;

double modeled_speedup(const simt::DeviceModel& dev, std::size_t n_atoms,
                       std::size_t ranks) {
  // Per-rank slice of the gather loop.
  const std::size_t centers =
      std::max<std::size_t>(1, n_atoms * kCentersPerAtom / ranks);
  // Representative sub-sampled execution (counters scale linearly, so a
  // capped host run models any size exactly).
  const std::size_t sample = std::min<std::size_t>(centers, 200000);
  const double scale = static_cast<double>(centers) / sample;
  const auto in = make_init_input(std::min<std::size_t>(n_atoms, 20000), sample);
  const auto rearranged = build_rearranged_coords(in);

  simt::SimtRuntime ind(dev), dir(dev);
  run_init_kernel_indirect(ind, in);
  run_init_kernel_direct(dir, in, rearranged);
  auto scaled_seconds = [&](const simt::KernelStats& s) {
    simt::KernelStats scaled = s;
    scaled.offchip_read_bytes = static_cast<std::size_t>(s.offchip_read_bytes * scale);
    scaled.offchip_write_bytes =
        static_cast<std::size_t>(s.offchip_write_bytes * scale);
    scaled.dependent_accesses =
        static_cast<std::size_t>(s.dependent_accesses * scale);
    scaled.wavefront_steps = static_cast<std::size_t>(s.wavefront_steps * scale);
    return scaled.modeled_seconds(dev);  // launches stay fixed per rank
  };
  return scaled_seconds(ind.stats()) / scaled_seconds(dir.stats());
}

void print_figure() {
  struct Row {
    std::size_t atoms;
    std::size_t hpc1_ranks;
    std::size_t hpc2_ranks;
  };
  const Row rows[] = {{30002, 256, 1024},   {30002, 512, 2048},
                      {30002, 1024, 4096},  {30002, 2048, 8192},
                      {30002, 4096, 8192},  {60002, 1024, 4096},
                      {60002, 2048, 8192},  {60002, 4096, 16384},
                      {60002, 8192, 16384}, {117602, 4096, 16384},
                      {117602, 8192, 16384}, {117602, 16384, 16384}};
  Table t({"atoms", "HPC#1 ranks", "HPC#1 speedup", "HPC#2 ranks",
           "HPC#2 speedup"});
  const auto sw = simt::DeviceModel::sw39010();
  const auto gpu = simt::DeviceModel::gcn_gpu();
  for (const auto& r : rows)
    t.add_row({std::to_string(r.atoms), std::to_string(r.hpc1_ranks),
               Table::num(modeled_speedup(sw, r.atoms, r.hpc1_ranks), 2) + "x",
               std::to_string(r.hpc2_ranks),
               Table::num(modeled_speedup(gpu, r.atoms, r.hpc2_ranks), 2) + "x"});
  t.print("Fig 11: init-phase speedup from eliminating indirect accesses "
          "(paper: up to 6.2x on HPC#1, 3.9x on HPC#2)");
}

// Real host-time measurement of the two access patterns (manual timing:
// only the gather loop counts, not the kernel-argument setup). Note that on
// a host CPU with a large cache the small coordinate table may stay
// resident, so the *modeled* device times above carry the figure; these
// numbers record what this host actually does.
void BM_InitIndirect(benchmark::State& state) {
  const auto in = make_init_input(2000000, 4000000);
  simt::SimtRuntime rt(simt::DeviceModel::sw39010());
  for (auto _ : state) {
    auto r = run_init_kernel_indirect(rt, in);
    benchmark::DoNotOptimize(r.center_coords);
    state.SetIterationTime(r.host_seconds);
  }
}
BENCHMARK(BM_InitIndirect)->Unit(benchmark::kMillisecond)->UseManualTime();

void BM_InitDirect(benchmark::State& state) {
  const auto in = make_init_input(2000000, 4000000);
  const auto rearranged = build_rearranged_coords(in);
  simt::SimtRuntime rt(simt::DeviceModel::sw39010());
  for (auto _ : state) {
    auto r = run_init_kernel_direct(rt, in, rearranged);
    benchmark::DoNotOptimize(r.center_coords);
    state.SetIterationTime(r.host_seconds);
  }
}
BENCHMARK(BM_InitDirect)->Unit(benchmark::kMillisecond)->UseManualTime();

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
