// Integration benchmark: the paper's full parallel decomposition executing
// for real on the threaded simmpi runtime -- distributed Sumup/H phases,
// replicated Poisson producers, packed (hierarchical) synthesis of the
// response Hamiltonian -- across rank counts, reduce schemes, and the two
// Hamiltonian storage modes of Fig. 3. Everything here is measured, not
// modeled; the table shows how the communication-count savings and the
// dense-storage advantage materialize in the real DFPT cycle.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <memory>

#include "bench_output.hpp"
#include "common/table.hpp"
#include "core/dfpt.hpp"
#include "core/parallel_dfpt.hpp"
#include "core/structures.hpp"
#include "linalg/abft.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "parallel/fault.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/guards.hpp"
#include "resilience/recovery.hpp"
#include "resilience/sdc_inject.hpp"
#include "scf/scf_solver.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::core;

const scf::ScfResult& ground_state() {
  static const scf::ScfResult res = [] {
    grid::Structure s;
    s.add_atom(1, {0, 0, -0.7});
    s.add_atom(1, {0, 0, 0.7});
    scf::ScfOptions opt;
    opt.tier = basis::BasisTier::Light;
    opt.grid.radial_points = 36;
    opt.grid.angular_degree = 9;
    opt.poisson.radial_points = 72;
    opt.mixer = scf::Mixer::Diis;
    return scf::ScfSolver(s, opt).run();
  }();
  return res;
}

void print_table() {
  const auto& ground = ground_state();
  if (!ground.converged) {
    std::printf("ground state failed to converge\n");
    return;
  }

  Table t({"ranks", "reduce", "storage", "alpha_zz", "iters",
           "collectives/rank", "wall (s)"});
  struct Case {
    std::size_t ranks;
    comm::ReduceMode mode;
    HamiltonianStorage storage;
    const char* mode_name;
    const char* storage_name;
  };
  const Case cases[] = {
      {1, comm::ReduceMode::Flat, HamiltonianStorage::LocalDense, "flat", "dense"},
      {2, comm::ReduceMode::Flat, HamiltonianStorage::LocalDense, "flat", "dense"},
      {4, comm::ReduceMode::Flat, HamiltonianStorage::LocalDense, "flat", "dense"},
      {4, comm::ReduceMode::Hierarchical, HamiltonianStorage::LocalDense,
       "hierarchical", "dense"},
      {8, comm::ReduceMode::Hierarchical, HamiltonianStorage::LocalDense,
       "hierarchical", "dense"},
      {4, comm::ReduceMode::Flat, HamiltonianStorage::GlobalSparseCsr, "flat",
       "global CSR"},
  };
  for (const auto& c : cases) {
    ParallelDfptOptions opt;
    opt.ranks = c.ranks;
    opt.ranks_per_node = 4;
    opt.reduce_mode = c.mode;
    opt.storage = c.storage;
    opt.batch_points = 96;
    // Wall time from the per-rank "cpscf/parallel_direction" span the
    // solver records (the max over ranks is the run's critical path).
    obs::reset();
    const auto r = solve_direction_parallel(ground, opt, 2);
    double wall = 0.0;
    for (const auto& a : obs::aggregate_spans())
      if (a.name == std::string("cpscf/parallel_direction"))
        wall = a.ranks > 0 ? a.max_rank_s : a.total_s;
    t.add_row({std::to_string(c.ranks), c.mode_name, c.storage_name,
               Table::num(r.direction.dipole_response.z, 6),
               std::to_string(r.direction.iterations),
               std::to_string(r.stats.collectives), Table::num(wall, 2)});
  }
  t.print("Distributed DFPT on the threaded simmpi runtime (H2, light "
          "settings) -- identical physics across all configurations");
  obs::write_phase_report(std::cout,
                          "bench_distributed_dfpt (last configuration)");
  std::printf("Note: this host has one core, so the *replicated* Poisson "
              "producers make wall time\ngrow with rank count -- the honest "
              "single-core cost of the paper's communication-\navoidance "
              "trade; on real nodes the replicas run concurrently.\n");
}

// Degraded-mode run: the same molecule, but one rank dies permanently a
// few iterations in. The elastic RecoveryDriver restores from a buddy
// replica, shrinks the world, re-maps the orphaned batches and finishes on
// the survivors; the cost breakdown (wasted iterations, re-map time,
// survivor count) lands in BENCH_elastic.json.
void elastic_degraded_run() {
  const auto& ground = ground_state();
  if (!ground.converged) return;

  parallel::FaultPlan plan;
  parallel::FaultEvent ev;
  ev.kind = parallel::FaultKind::Kill;
  ev.rank = 0;  // the checkpoint writer: forces the buddy-restore path
  ev.collective = 40;
  ev.transient = false;
  plan.add(ev);
  parallel::FaultInjector injector(std::move(plan));

  ParallelDfptOptions opt;
  opt.ranks = 4;
  opt.ranks_per_node = 4;
  opt.batch_points = 96;
  opt.fault_injector = &injector;

  const auto dir =
      std::filesystem::temp_directory_path() / "aeqp_bench_elastic";
  std::filesystem::remove_all(dir);
  resilience::CheckpointStore store(dir);
  resilience::RecoveryOptions ropt;
  ropt.elastic = true;
  ropt.max_retries = 6;
  ropt.mixing_damping = 1.0;
  resilience::RecoveryDriver driver(store, ropt);

  obs::reset();
  const auto rec = driver.solve_direction_parallel(ground, opt, 2);
  const auto& s = rec.stats;

  Table t({"survivors", "shrinks", "buddy restores", "wasted iters",
           "batches moved", "re-map (ms)", "alpha_zz"});
  t.add_row({std::to_string(s.survivor_ranks), std::to_string(s.shrinks),
             std::to_string(s.buddy_restores),
             std::to_string(s.wasted_iterations),
             std::to_string(s.remap_batches_moved),
             Table::num(s.remap_seconds * 1e3, 3),
             Table::num(rec.direction.dipole_response.z, 6)});
  t.print("Elastic recovery after a permanent rank-0 loss (4 -> 3 ranks): "
          "buddy-restore + shrink + re-map + resume");

  std::string path;
  if (std::FILE* f = benchio::open_bench("BENCH_elastic.json", &path)) {
    benchio::write_envelope(f, "elastic_recovery");
    std::fprintf(
        f,
        "  \"ranks\": %zu,\n"
        "  \"survivor_ranks\": %zu,\n  \"lost_ranks\": %zu,\n"
        "  \"shrinks\": %zu,\n  \"buddy_restores\": %zu,\n"
        "  \"retries\": %zu,\n  \"wasted_iterations\": %zu,\n"
        "  \"remap_batches_moved\": %zu,\n  \"remap_seconds\": %.6f,\n"
        "  \"converged\": %s,\n  \"alpha_zz\": %.9f\n}\n",
        opt.ranks, s.survivor_ranks, s.lost_ranks, s.shrinks,
        s.buddy_restores, s.retries, s.wasted_iterations,
        s.remap_batches_moved, s.remap_seconds,
        rec.direction.converged ? "true" : "false",
        rec.direction.dipole_response.z);
    std::fclose(f);
    std::printf("Wrote %s\n", path.c_str());
  }
}

// SDC-injected run: the same molecule under a compute-site fault plan --
// one bit flip inside the DM-build matmul (healed in place by ABFT) and
// one NaN in a multipole density channel (tripping a physics guard and
// escalating to checkpoint rollback). The table and BENCH_sdc.json report
// correction-vs-rollback counts, detection latency (iterations discarded
// by the rollback), and the wall-clock overhead of running with the guard
// and ABFT layers on versus fully off.
void sdc_injected_run() {
  const auto& ground = ground_state();
  if (!ground.converged) return;
  using clock = std::chrono::steady_clock;

  core::DfptOptions dopt;
  dopt.tolerance = 1e-8;

  // Overhead of the defense layers on a fault-free run: guards + ABFT on
  // (the shipped default) vs everything off.
  resilience::set_guards(true);
  const auto t0 = clock::now();
  const auto guarded = core::DfptSolver(ground, dopt).solve_direction(2);
  const double guards_on_s =
      std::chrono::duration<double>(clock::now() - t0).count();

  resilience::set_guards(false);
  core::DfptOptions plain = dopt;
  plain.abft = false;
  const auto t1 = clock::now();
  const auto unguarded = core::DfptSolver(ground, plain).solve_direction(2);
  const double guards_off_s =
      std::chrono::duration<double>(clock::now() - t1).count();
  resilience::set_guards(true);
  const double overhead_pct =
      guards_off_s > 0.0 ? 100.0 * (guards_on_s - guards_off_s) / guards_off_s
                         : 0.0;

  // The injected run, wrapped in the recovery ladder.
  resilience::SdcPlan plan;
  plan.add({resilience::SdcKind::BitFlip, "cpscf/dm_matmul",
            /*invocation=*/2, /*element=*/1, /*bit=*/62});
  resilience::SdcEvent nan_ev;
  nan_ev.kind = resilience::SdcKind::NanPayload;
  nan_ev.site = "poisson/rho_multipole";
  nan_ev.invocation = 40;
  nan_ev.element = 3;
  plan.add(nan_ev);
  resilience::SdcInjector injector(std::move(plan));
  resilience::ScopedSdcInjector scoped(injector);

  const auto dir = std::filesystem::temp_directory_path() / "aeqp_bench_sdc";
  std::filesystem::remove_all(dir);
  resilience::CheckpointStore store(dir);
  resilience::RecoveryOptions ropt;
  ropt.max_retries = 4;
  resilience::RecoveryDriver driver(store, ropt);
  const auto abft_before = linalg::abft_stats();
  const auto rec = driver.solve_direction(ground, dopt, 2);
  const auto abft_after = linalg::abft_stats();
  const auto& s = driver.last_stats();
  const double alpha_err =
      std::abs(rec.dipole_response.z - unguarded.dipole_response.z);

  Table t({"abft corrections", "guard violations", "rollbacks",
           "detect latency (iters)", "guards-on (s)", "guards-off (s)",
           "overhead", "|alpha err|"});
  t.add_row({std::to_string(s.abft_corrections),
             std::to_string(s.invariant_violations), std::to_string(s.restores),
             std::to_string(s.wasted_iterations), Table::num(guards_on_s, 2),
             Table::num(guards_off_s, 2),
             Table::num(overhead_pct, 1) + "%", Table::num(alpha_err, 12)});
  t.print("SDC defense under injected faults (H2): ABFT heals the matmul "
          "flip in place; the multipole NaN trips a guard and rolls back");

  std::string path;
  if (std::FILE* f = benchio::open_bench("BENCH_sdc.json", &path)) {
    benchio::write_envelope(f, "sdc_defense");
    std::fprintf(
        f,
        "  \"abft_checks\": %zu,\n  \"abft_detections\": %zu,\n"
        "  \"abft_corrections\": %zu,\n  \"invariant_violations\": %zu,\n"
        "  \"rollbacks\": %zu,\n  \"retries\": %zu,\n"
        "  \"detection_latency_iterations\": %zu,\n"
        "  \"guards_on_seconds\": %.6f,\n  \"guards_off_seconds\": %.6f,\n"
        "  \"overhead_percent\": %.3f,\n  \"converged\": %s,\n"
        "  \"alpha_zz\": %.9f,\n  \"alpha_abs_error\": %.3e\n}\n",
        abft_after.checks - abft_before.checks,
        abft_after.detections - abft_before.detections, s.abft_corrections,
        s.invariant_violations, s.restores, s.retries, s.wasted_iterations,
        guards_on_s, guards_off_s, overhead_pct,
        rec.converged ? "true" : "false", rec.dipole_response.z, alpha_err);
    std::fclose(f);
    std::printf("Wrote %s\n", path.c_str());
  }
  (void)guarded;
}

void BM_DistributedIteration(benchmark::State& state) {
  const auto& ground = ground_state();
  ParallelDfptOptions opt;
  opt.ranks = static_cast<std::size_t>(state.range(0));
  opt.ranks_per_node = 4;
  opt.dfpt.max_iterations = 3;  // fixed small cycle count per measurement
  opt.dfpt.tolerance = 0.0;
  for (auto _ : state) {
    auto r = solve_direction_parallel(ground, opt, 2);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DistributedIteration)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  if (obs::mode() == obs::TraceMode::Off) obs::set_mode(obs::TraceMode::Summary);
  print_table();
  elastic_degraded_run();
  sdc_injected_run();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
