// Integration benchmark: the paper's full parallel decomposition executing
// for real on the threaded simmpi runtime -- distributed Sumup/H phases,
// replicated Poisson producers, packed (hierarchical) synthesis of the
// response Hamiltonian -- across rank counts, reduce schemes, and the two
// Hamiltonian storage modes of Fig. 3. Everything here is measured, not
// modeled; the table shows how the communication-count savings and the
// dense-storage advantage materialize in the real DFPT cycle.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "core/parallel_dfpt.hpp"
#include "core/structures.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "parallel/fault.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/recovery.hpp"
#include "scf/scf_solver.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::core;

const scf::ScfResult& ground_state() {
  static const scf::ScfResult res = [] {
    grid::Structure s;
    s.add_atom(1, {0, 0, -0.7});
    s.add_atom(1, {0, 0, 0.7});
    scf::ScfOptions opt;
    opt.tier = basis::BasisTier::Light;
    opt.grid.radial_points = 36;
    opt.grid.angular_degree = 9;
    opt.poisson.radial_points = 72;
    opt.mixer = scf::Mixer::Diis;
    return scf::ScfSolver(s, opt).run();
  }();
  return res;
}

void print_table() {
  const auto& ground = ground_state();
  if (!ground.converged) {
    std::printf("ground state failed to converge\n");
    return;
  }

  Table t({"ranks", "reduce", "storage", "alpha_zz", "iters",
           "collectives/rank", "wall (s)"});
  struct Case {
    std::size_t ranks;
    comm::ReduceMode mode;
    HamiltonianStorage storage;
    const char* mode_name;
    const char* storage_name;
  };
  const Case cases[] = {
      {1, comm::ReduceMode::Flat, HamiltonianStorage::LocalDense, "flat", "dense"},
      {2, comm::ReduceMode::Flat, HamiltonianStorage::LocalDense, "flat", "dense"},
      {4, comm::ReduceMode::Flat, HamiltonianStorage::LocalDense, "flat", "dense"},
      {4, comm::ReduceMode::Hierarchical, HamiltonianStorage::LocalDense,
       "hierarchical", "dense"},
      {8, comm::ReduceMode::Hierarchical, HamiltonianStorage::LocalDense,
       "hierarchical", "dense"},
      {4, comm::ReduceMode::Flat, HamiltonianStorage::GlobalSparseCsr, "flat",
       "global CSR"},
  };
  for (const auto& c : cases) {
    ParallelDfptOptions opt;
    opt.ranks = c.ranks;
    opt.ranks_per_node = 4;
    opt.reduce_mode = c.mode;
    opt.storage = c.storage;
    opt.batch_points = 96;
    // Wall time from the per-rank "cpscf/parallel_direction" span the
    // solver records (the max over ranks is the run's critical path).
    obs::reset();
    const auto r = solve_direction_parallel(ground, opt, 2);
    double wall = 0.0;
    for (const auto& a : obs::aggregate_spans())
      if (a.name == std::string("cpscf/parallel_direction"))
        wall = a.ranks > 0 ? a.max_rank_s : a.total_s;
    t.add_row({std::to_string(c.ranks), c.mode_name, c.storage_name,
               Table::num(r.direction.dipole_response.z, 6),
               std::to_string(r.direction.iterations),
               std::to_string(r.stats.collectives), Table::num(wall, 2)});
  }
  t.print("Distributed DFPT on the threaded simmpi runtime (H2, light "
          "settings) -- identical physics across all configurations");
  obs::write_phase_report(std::cout,
                          "bench_distributed_dfpt (last configuration)");
  std::printf("Note: this host has one core, so the *replicated* Poisson "
              "producers make wall time\ngrow with rank count -- the honest "
              "single-core cost of the paper's communication-\navoidance "
              "trade; on real nodes the replicas run concurrently.\n");
}

// Degraded-mode run: the same molecule, but one rank dies permanently a
// few iterations in. The elastic RecoveryDriver restores from a buddy
// replica, shrinks the world, re-maps the orphaned batches and finishes on
// the survivors; the cost breakdown (wasted iterations, re-map time,
// survivor count) lands in BENCH_elastic.json.
void elastic_degraded_run() {
  const auto& ground = ground_state();
  if (!ground.converged) return;

  parallel::FaultPlan plan;
  parallel::FaultEvent ev;
  ev.kind = parallel::FaultKind::Kill;
  ev.rank = 0;  // the checkpoint writer: forces the buddy-restore path
  ev.collective = 40;
  ev.transient = false;
  plan.add(ev);
  parallel::FaultInjector injector(std::move(plan));

  ParallelDfptOptions opt;
  opt.ranks = 4;
  opt.ranks_per_node = 4;
  opt.batch_points = 96;
  opt.fault_injector = &injector;

  const auto dir =
      std::filesystem::temp_directory_path() / "aeqp_bench_elastic";
  std::filesystem::remove_all(dir);
  resilience::CheckpointStore store(dir);
  resilience::RecoveryOptions ropt;
  ropt.elastic = true;
  ropt.max_retries = 6;
  ropt.mixing_damping = 1.0;
  resilience::RecoveryDriver driver(store, ropt);

  obs::reset();
  const auto rec = driver.solve_direction_parallel(ground, opt, 2);
  const auto& s = rec.stats;

  Table t({"survivors", "shrinks", "buddy restores", "wasted iters",
           "batches moved", "re-map (ms)", "alpha_zz"});
  t.add_row({std::to_string(s.survivor_ranks), std::to_string(s.shrinks),
             std::to_string(s.buddy_restores),
             std::to_string(s.wasted_iterations),
             std::to_string(s.remap_batches_moved),
             Table::num(s.remap_seconds * 1e3, 3),
             Table::num(rec.direction.dipole_response.z, 6)});
  t.print("Elastic recovery after a permanent rank-0 loss (4 -> 3 ranks): "
          "buddy-restore + shrink + re-map + resume");

  if (std::FILE* f = std::fopen("BENCH_elastic.json", "w")) {
    std::fprintf(
        f,
        "{\n  \"bench\": \"elastic_recovery\",\n  \"ranks\": %zu,\n"
        "  \"survivor_ranks\": %zu,\n  \"lost_ranks\": %zu,\n"
        "  \"shrinks\": %zu,\n  \"buddy_restores\": %zu,\n"
        "  \"retries\": %zu,\n  \"wasted_iterations\": %zu,\n"
        "  \"remap_batches_moved\": %zu,\n  \"remap_seconds\": %.6f,\n"
        "  \"converged\": %s,\n  \"alpha_zz\": %.9f\n}\n",
        opt.ranks, s.survivor_ranks, s.lost_ranks, s.shrinks,
        s.buddy_restores, s.retries, s.wasted_iterations,
        s.remap_batches_moved, s.remap_seconds,
        rec.direction.converged ? "true" : "false",
        rec.direction.dipole_response.z);
    std::fclose(f);
    std::printf("Wrote BENCH_elastic.json\n");
  }
}

void BM_DistributedIteration(benchmark::State& state) {
  const auto& ground = ground_state();
  ParallelDfptOptions opt;
  opt.ranks = static_cast<std::size_t>(state.range(0));
  opt.ranks_per_node = 4;
  opt.dfpt.max_iterations = 3;  // fixed small cycle count per measurement
  opt.dfpt.tolerance = 0.0;
  for (auto _ : state) {
    auto r = solve_direction_parallel(ground, opt, 2);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DistributedIteration)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  if (obs::mode() == obs::TraceMode::Off) obs::set_mode(obs::TraceMode::Summary);
  print_table();
  elastic_degraded_run();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
