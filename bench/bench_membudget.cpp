// Memory-budget governor microbench: the cost of the oom_probe fast path.
//
// The governor's whole design rests on one promise: with no budget armed a
// probe is a single relaxed atomic load, cheap enough to leave compiled
// into the hot allocation sites of core and comm unconditionally. This
// harness measures that promise in nanoseconds (idle, armed-with-budget,
// and injector-armed), prices the admission estimator, and then runs one
// governed CPSCF recovery under a permanent injected allocation failure to
// report the end-to-end cost of walking the relief ladder. The JSON lands
// in BENCH_membudget.json for the perf-regression sentinel
// (scripts/bench_history.py): the probe overheads are gated metrics --
// creeping fat on the idle path is exactly the regression this file exists
// to catch.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_output.hpp"
#include "common/table.hpp"
#include "core/dfpt.hpp"
#include "core/parallel_dfpt.hpp"
#include "grid/structure.hpp"
#include "obs/memaudit.hpp"
#include "obs/trace.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/membudget.hpp"
#include "resilience/recovery.hpp"
#include "scf/scf_solver.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::resilience;
using Clock = std::chrono::steady_clock;

grid::Structure h2() {
  grid::Structure s;
  s.add_atom(1, {0, 0, -0.7});
  s.add_atom(1, {0, 0, 0.7});
  return s;
}

scf::ScfResult light_ground() {
  scf::ScfOptions opt;
  opt.tier = basis::BasisTier::Light;
  opt.grid.radial_points = 30;
  opt.grid.angular_degree = 9;
  opt.poisson.radial_points = 72;
  return scf::ScfSolver(h2(), opt).run();
}

/// Nanoseconds per oom_probe over `iters` calls in the CURRENT governor
/// state (caller arms/disarms around this).
double probe_ns(std::size_t iters) {
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    oom_probe("bench/probe", 0);
    benchmark::ClobberMemory();
  }
  const double ns =
      std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
  return ns / static_cast<double>(iters);
}

void governor_run() {
  // --- Probe fast-path costs ------------------------------------------
  // Idle: no budget, no hook. The contract is one relaxed load.
  set_mem_budget(0);
  install_oom_hook(nullptr);
  const double idle_ns = probe_ns(20'000'000);

  // Armed with a generous budget: the slow path consults the live memaudit
  // gauges on every probe. Populate a realistic handful of gauges first.
  obs::set_memaudit(true);
  obs::mem_track("bench/gauge_a", 1 << 20);
  obs::mem_track("bench/gauge_b", 2 << 20);
  obs::mem_track("bench/gauge_c", 3 << 20);
  set_mem_budget(std::int64_t{1} << 34);  // 16 GiB: never trips
  const double armed_ns = probe_ns(2'000'000);
  set_mem_budget(0);

  // Injector-armed (no byte ceiling): the chaos-testing configuration. An
  // empty plan is a benign hook, so this prices pure bookkeeping.
  OomInjector injector((OomPlan()));
  install_oom_hook(&injector);
  const double injector_ns = probe_ns(2'000'000);
  install_oom_hook(nullptr);
  obs::mem_track("bench/gauge_a", -(1 << 20));
  obs::mem_track("bench/gauge_b", -(2 << 20));
  obs::mem_track("bench/gauge_c", -(3 << 20));

  // --- Admission estimator --------------------------------------------
  const MemModel model = MemModel::default_model();
  std::int64_t sink = 0;
  const auto e0 = Clock::now();
  constexpr std::size_t kEstimates = 1'000'000;
  for (std::size_t i = 0; i < kEstimates; ++i) {
    sink += estimate_job_memory(2 + i % 62, 1 + i % 8, model);
    benchmark::DoNotOptimize(sink);
  }
  const double estimate_ns =
      std::chrono::duration<double, std::nano>(Clock::now() - e0).count() /
      static_cast<double>(kEstimates);

  // --- One governed recovery under injected allocation failure --------
  // A permanent failure at the point-eval cache: every attempt that caches
  // dies, so the relief ladder must shed the cache and re-evaluate on the
  // fly. Reports the wall cost of that detection + relief + recovery cycle
  // and asserts the correctness rail (recovered == reference).
  const auto ground = light_ground();
  core::DfptOptions dopt;
  dopt.tolerance = 1e-8;
  const auto ref = core::DfptSolver(ground, dopt).solve_direction(2);

  OomPlan plan;
  plan.add({"dfpt/point_cache", /*invocation=*/0, /*rank=*/-1,
            /*transient=*/false});
  OomInjector chaos(std::move(plan));
  ScopedOomInjector scoped(chaos);

  core::ParallelDfptOptions popt;
  popt.dfpt = dopt;
  popt.ranks = 2;
  popt.ranks_per_node = 2;
  const auto dir =
      std::filesystem::temp_directory_path() / "aeqp_bench_membudget";
  std::filesystem::remove_all(dir);
  CheckpointStore store(dir);
  RecoveryOptions ropt;
  ropt.max_retries = 3;
  ropt.backoff_base_ms = 0;
  RecoveryDriver driver(store, ropt);

  const auto r0 = Clock::now();
  const auto rec = driver.solve_direction_parallel(ground, popt, 2);
  const double recovery_seconds =
      std::chrono::duration<double>(Clock::now() - r0).count();
  const double max_diff = rec.direction.p1.max_abs_diff(ref.p1);
  const auto& rstats = driver.last_stats();
  if (!rec.direction.converged || max_diff > 1e-8) {
    std::fprintf(stderr,
                 "bench_membudget: governed recovery FAILED the correctness "
                 "rail (converged=%d max_diff=%g)\n",
                 rec.direction.converged ? 1 : 0, max_diff);
    std::exit(1);
  }

  // --- Report ----------------------------------------------------------
  Table t({"idle probe (ns)", "armed probe (ns)", "injector probe (ns)",
           "estimate (ns)"});
  t.add_row({Table::num(idle_ns, 2), Table::num(armed_ns, 2),
             Table::num(injector_ns, 2), Table::num(estimate_ns, 2)});
  t.print("oom_probe fast-path cost by governor state (idle = one relaxed "
          "atomic load; armed pays a gauge walk)");

  Table g({"oom events", "relief actions", "retries", "recovery (s)",
           "max |diff| vs ref"});
  g.add_row({std::to_string(rstats.oom_events),
             std::to_string(rstats.relief_actions),
             std::to_string(rstats.retries), Table::num(recovery_seconds, 3),
             Table::num(max_diff, 3)});
  g.print("Governed CPSCF under a permanent injected allocation failure: "
          "relief ladder sheds the point cache, recovered == reference");

  std::string path;
  if (std::FILE* f = benchio::open_bench("BENCH_membudget.json", &path)) {
    benchio::write_envelope(f, "membudget_governor");
    std::fprintf(
        f,
        "  \"idle_probe_overhead_ns\": %.4f,\n"
        "  \"armed_probe_overhead_ns\": %.4f,\n"
        "  \"injector_probe_overhead_ns\": %.4f,\n"
        "  \"estimate_overhead_ns\": %.4f,\n"
        "  \"governed_recovery_oom_events\": %zu,\n"
        "  \"governed_recovery_relief_actions\": %zu,\n"
        "  \"governed_recovery_retries\": %zu,\n"
        "  \"governed_recovery_max_diff\": %.3e\n}\n",
        idle_ns, armed_ns, injector_ns, estimate_ns, rstats.oom_events,
        rstats.relief_actions, rstats.retries, max_diff);
    std::fclose(f);
    std::printf("Wrote %s\n", path.c_str());
  }
}

/// Google-benchmark probes for interactive tuning (the JSON numbers above
/// come from the deterministic loop, not these).
void BM_OomProbeIdle(benchmark::State& state) {
  set_mem_budget(0);
  install_oom_hook(nullptr);
  for (auto _ : state) {
    oom_probe("bench/probe", 0);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_OomProbeIdle);

void BM_OomProbeArmed(benchmark::State& state) {
  set_mem_budget(std::int64_t{1} << 34);
  for (auto _ : state) {
    oom_probe("bench/probe", 0);
    benchmark::ClobberMemory();
  }
  set_mem_budget(0);
}
BENCHMARK(BM_OomProbeArmed);

}  // namespace

int main(int argc, char** argv) {
  governor_run();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
