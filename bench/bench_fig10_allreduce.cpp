// Reproduces paper Fig. 10: AllReduce time spent synthesizing
// rho_multipole after the Sumup phase for H(C2H4)nH systems, comparing the
// per-row baseline, the packed scheme (512 rows per collective), and on
// HPC#2 the packed hierarchical scheme (one data copy per 32-rank node).
//
// Figure-scale timings come from the calibrated alpha-beta cost model
// (DESIGN.md substitution); the google-benchmark section below measures
// the real packed/hierarchical algorithms executing on the threaded simmpi
// runtime, which is also bit-compared against the flat reference in the
// test suite.
//
// Paper reference points: packed speedups 8.2x-34.9x on HPC#1 and
// 9.2x-269.6x on HPC#2; packed hierarchical up to 567.2x on HPC#2.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_output.hpp"
#include "comm/hierarchical.hpp"
#include "comm/packed.hpp"
#include "common/table.hpp"
#include "common/thread_ident.hpp"
#include "obs/comm_matrix.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "parallel/cluster.hpp"
#include "parallel/machine_model.hpp"

namespace {

using namespace aeqp;
using parallel::CommCostModel;
using parallel::MachineModel;

// One rho_multipole row: (l_max+1)^2 = 25 channels x 80 radial points x 8 B.
constexpr std::size_t kRowBytes = 16384;
constexpr std::size_t kPackRows = 512;    // paper's packing window

void print_machine(const MachineModel& machine, bool with_hierarchical) {
  const CommCostModel model(machine);
  std::vector<std::string> header = {"atoms", "ranks", "baseline (s)",
                                     "packed (s)", "packed speedup"};
  if (with_hierarchical) {
    header.push_back("hier local+global (s)");
    header.push_back("hier speedup");
  }
  Table t(header);

  const std::size_t rank_sets[2][5] = {{256, 512, 1024, 2048, 4096},
                                       {512, 1024, 2048, 4096, 8192}};
  const std::size_t atom_counts[2] = {30002, 60002};
  for (int sys = 0; sys < 2; ++sys) {
    const std::size_t rows = atom_counts[sys];
    for (std::size_t ranks : rank_sets[sys]) {
      const double base =
          model.repeated_allreduce_seconds(kRowBytes, rows, ranks);
      const std::size_t windows = (rows + kPackRows - 1) / kPackRows;
      const double packed =
          static_cast<double>(windows) *
          model.packed_allreduce_seconds(kRowBytes, kPackRows, ranks);
      std::vector<std::string> row = {
          std::to_string(atom_counts[sys]), std::to_string(ranks),
          Table::num(base, 3), Table::num(packed, 3),
          Table::num(base / packed, 1) + "x"};
      if (with_hierarchical) {
        const auto h = model.packed_hierarchical_seconds(kRowBytes, kPackRows, ranks);
        const double hier = static_cast<double>(windows) * h.total();
        row.push_back(Table::num(static_cast<double>(windows) * h.local_update, 3) +
                      "+" + Table::num(static_cast<double>(windows) * h.global, 3));
        row.push_back(Table::num(base / hier, 1) + "x");
      }
      t.add_row(std::move(row));
    }
  }
  t.print("Fig 10: rho_multipole AllReduce time on " + machine.name);
}

// Real execution of the three schemes on the threaded runtime (small rank
// counts; demonstrates the mechanisms, not figure-scale timing).
void BM_AllReduce(benchmark::State& state, comm::ReduceMode mode, bool packed) {
  const std::size_t ranks = 8, rows = 64, row_len = 256;
  parallel::Cluster cluster(ranks, 4);
  for (auto _ : state) {
    cluster.run([&](parallel::Communicator& c) {
      std::vector<std::vector<double>> data(rows,
                                            std::vector<double>(row_len, 1.0));
      if (packed) {
        comm::PackedAllReducer packer(c, mode);
        for (auto& r : data) packer.add(r);
        packer.flush();
      } else {
        for (auto& r : data) c.allreduce_sum(r);
      }
    });
  }
}
void BM_Baseline(benchmark::State& s) {
  BM_AllReduce(s, comm::ReduceMode::Flat, false);
}
void BM_Packed(benchmark::State& s) { BM_AllReduce(s, comm::ReduceMode::Flat, true); }
void BM_PackedHierarchical(benchmark::State& s) {
  BM_AllReduce(s, comm::ReduceMode::Hierarchical, true);
}
BENCHMARK(BM_Baseline)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Packed)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PackedHierarchical)->Unit(benchmark::kMillisecond);

// One traced real run of the packed hierarchical scheme: the obs phase
// report splits rank wall time into work vs collective wait, and the
// packed_* counters carry the bytes/rows/collective counts through the
// reducer. Embedded into BENCH_fig10.json as "profile".
void traced_run_and_report() {
  if (obs::mode() == obs::TraceMode::Off) obs::set_mode(obs::TraceMode::Summary);
  obs::reset();
  obs::reset_counters();
  const std::size_t ranks = 8, rows = 64, row_len = 256;
  parallel::Cluster cluster(ranks, 4);
  cluster.run([&](parallel::Communicator& c) {
    const ScopedThreadRank rank_tag(static_cast<int>(c.rank()));
    AEQP_TRACE_SCOPE("fig10/packed_hierarchical");
    std::vector<std::vector<double>> data(rows,
                                          std::vector<double>(row_len, 1.0));
    comm::PackedAllReducer packer(c, comm::ReduceMode::Hierarchical);
    for (auto& r : data) packer.add(r);
    packer.flush();
  });
  obs::write_phase_report(std::cout,
                          "fig10 packed hierarchical (8 ranks, real run)");
  // The packed-allreduce bench is the natural producer of the comm-matrix
  // heatmap: dump the rank-x-rank byte/message matrix recorded by the run
  // (the CI artifact next to the trace; see docs/observability.md).
  if (!obs::comm_edges().empty()) {
    const char* env = std::getenv("AEQP_COMM_MATRIX_FILE");
    const std::string cm = (env != nullptr && *env != '\0')
                               ? env
                               : benchio::bench_path("comm_matrix.json");
    if (obs::write_comm_matrix(cm)) std::printf("Wrote %s\n", cm.c_str());
  }
  std::string path;
  if (std::FILE* f = benchio::open_bench("BENCH_fig10.json", &path)) {
    benchio::write_envelope(f, "fig10_allreduce");
    std::fprintf(f,
                 "  \"ranks\": %zu,\n"
                 "  \"rows\": %zu,\n  \"row_len\": %zu,\n  \"profile\": %s\n}\n",
                 ranks, rows, row_len, obs::profile_json(2).c_str());
    std::fclose(f);
    std::printf("Wrote %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_machine(MachineModel::hpc1_sunway(), /*with_hierarchical=*/false);
  print_machine(MachineModel::hpc2_amd(), /*with_hierarchical=*/true);
  std::printf("\nPaper speedup ranges: HPC#1 packed 8.2x-34.9x; "
              "HPC#2 packed 9.2x-269.6x, hierarchical 12.4x-567.2x\n");
  traced_run_and_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
