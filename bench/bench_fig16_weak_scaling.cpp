// Reproduces paper Fig. 16: weak scaling from 30,002 to 200,012 atoms with
// proportional rank counts (HPC#1: 2500/5000/10000/20480 ranks; HPC#2:
// 2048/4096/8192/16384).
//
// Paper: parallel efficiencies at 200,012 atoms of 76.7% (HPC#1), 75.3%
// (HPC#2 CPU only) and 74.1% (HPC#2 with GPUs). The efficiency drop is
// driven by the superlinear phases: the response-density-matrix scaling
// (~O(N^1.2)) dominates small systems, the response potential (~O(N^1.7))
// takes over for large ones.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/table.hpp"
#include "parallel/machine_model.hpp"
#include "perfmodel/dfpt_perf_model.hpp"
#include "simt/device.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::perfmodel;

void print_series(const DfptPerfModel& model, const char* name,
                  const std::size_t (&ranks)[4], const char* paper_final) {
  const auto flags = OptimizationFlags::all_on();
  const std::size_t atoms[4] = {30002, 60002, 117602, 200012};
  Table t({"atoms", "ranks", "time/cycle (s)", "weak efficiency", "paper"});
  for (int i = 0; i < 4; ++i) {
    const double e =
        model.weak_efficiency(atoms[0], ranks[0], atoms[i], ranks[i], flags);
    t.add_row({std::to_string(atoms[i]), std::to_string(ranks[i]),
               Table::num(model.predict(atoms[i], ranks[i], flags).total(), 2),
               Table::num(100.0 * e, 1) + "%",
               i == 3 ? paper_final : (i == 0 ? "100%" : "-")});
  }
  t.print(std::string("Fig 16 weak scaling: ") + name);
}

void BM_WeakEfficiencyEvaluation(benchmark::State& state) {
  const DfptPerfModel gpu(parallel::MachineModel::hpc2_amd(),
                          simt::DeviceModel::gcn_gpu(), true);
  const auto flags = OptimizationFlags::all_on();
  for (auto _ : state) {
    double e = gpu.weak_efficiency(30002, 2048, 200012, 16384, flags);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_WeakEfficiencyEvaluation);

}  // namespace

int main(int argc, char** argv) {
  const DfptPerfModel hpc1(parallel::MachineModel::hpc1_sunway(),
                           simt::DeviceModel::sw39010(), true);
  const DfptPerfModel cpu(parallel::MachineModel::hpc2_amd(),
                          simt::DeviceModel::gcn_gpu(), false);
  const DfptPerfModel gpu(parallel::MachineModel::hpc2_amd(),
                          simt::DeviceModel::gcn_gpu(), true);
  print_series(hpc1, "HPC#1", {2500, 5000, 10000, 20480}, "76.7%");
  print_series(cpu, "HPC#2 (CPU only)", {2048, 4096, 8192, 16384}, "75.3%");
  print_series(gpu, "HPC#2 (with GPUs)", {2048, 4096, 8192, 16384}, "74.1%");
  std::printf("\nScaling regimes: response density matrix ~O(N^1.2) dominates "
              "small systems;\nresponse potential ~O(N^1.7) takes over for "
              "large ones, lowering weak efficiency.\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
