// Synthetic traffic generator for the multi-tenant solve service: a seeded
// mix of good, poisoned, oversized, malformed, and hopeless-deadline jobs
// submitted in bursts against a small SolveServer while a chaos plan kills
// and corrupts simmpi ranks inside the parallel jobs. The point is the
// headline robustness contract measured end to end: the server survives the
// whole mix with every admitted job terminal, and the table/JSON report the
// service-level numbers (jobs/sec, p50/p99 latency, shed rate, degradation
// counts, cache effectiveness) that docs/service.md quotes.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench_output.hpp"
#include "common/table.hpp"
#include "grid/structure.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/fault.hpp"
#include "service/server.hpp"
#include "scf/scf_solver.hpp"

namespace {

using namespace aeqp;
using Clock = std::chrono::steady_clock;

/// H2 with a tweakable bond length: distinct `stretch` values are distinct
/// cache keys, repeats are warm-cache hits.
grid::Structure h2(double stretch = 0.0) {
  grid::Structure s;
  s.add_atom(1, {0, 0, -0.7 - stretch});
  s.add_atom(1, {0, 0, 0.7 + stretch});
  return s;
}

scf::ScfOptions light_scf() {
  scf::ScfOptions opt;
  opt.tier = basis::BasisTier::Light;
  opt.grid.radial_points = 36;
  opt.grid.angular_degree = 9;
  opt.poisson.radial_points = 72;
  opt.mixer = scf::Mixer::Diis;
  return opt;
}

service::JobSpec good_job(double stretch) {
  service::JobSpec spec;
  spec.structure = h2(stretch);
  spec.scf = light_scf();
  spec.dfpt.tolerance = 1e-6;
  spec.deadline = std::chrono::milliseconds(120000);
  return spec;
}

struct TrafficReport {
  std::size_t submitted = 0;
  std::size_t shed = 0;             ///< QueueFull at submission
  std::size_t rejected = 0;         ///< JobRejected at submission
  std::vector<service::JobOutcome> outcomes;
  double wall_seconds = 0.0;
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size()));
  return v[std::min(idx, v.size() - 1)];
}

void traffic_run() {
  const auto dir = std::filesystem::temp_directory_path() / "aeqp_bench_service";
  std::filesystem::remove_all(dir);

  service::ServerOptions sopt;
  sopt.workers = 2;
  sopt.queue_capacity = 4;  // small on purpose: the burst must shed
  sopt.max_atoms = 8;
  sopt.checkpoint_dir = dir;
  sopt.recovery.max_retries = 3;
  sopt.recovery.backoff_base_ms = 0;   // simulation: no real sleeping
  sopt.recovery.backoff_jitter = 0.25; // still exercises the jitter path
  service::SolveServer server(sopt);
  const auto server_metrics = service::register_metrics(server);
  const auto cache_metrics = service::register_metrics(server.cache());

  // Seeded chaos for the parallel jobs: random payload corruption plus one
  // permanent rank kill (original-world rank ids, reproducible by seed).
  parallel::FaultPlan chaos = parallel::FaultPlan::random(
      /*seed=*/42, /*n_events=*/2, /*n_ranks=*/4, /*first_collective=*/10,
      /*last_collective=*/60, {parallel::FaultKind::BitFlip,
                               parallel::FaultKind::NanPayload},
      /*permanent_kills=*/1);
  parallel::FaultEvent stall;
  stall.kind = parallel::FaultKind::Stall;
  stall.rank = 1;
  stall.collective = 20;
  stall.stall_ms = 20;
  stall.repeat = 3;
  chaos.add(stall);
  parallel::FaultInjector injector(std::move(chaos));

  TrafficReport rep;
  std::vector<std::uint64_t> ids;
  const auto submit = [&](service::JobSpec spec) {
    ++rep.submitted;
    try {
      ids.push_back(server.submit(std::move(spec)));
    } catch (const QueueFull&) {
      ++rep.shed;  // backpressure: the client is told to come back later
    } catch (const JobRejected&) {
      ++rep.rejected;  // the job itself is unservable
    }
  };
  // A well-behaved client: honors the QueueFull backpressure signal by
  // backing off and resubmitting (sheds still counted).
  const auto submit_retry = [&](const service::JobSpec& spec) {
    ++rep.submitted;
    for (;;) {
      try {
        ids.push_back(server.submit(spec));
        return;
      } catch (const QueueFull&) {
        ++rep.shed;
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      } catch (const JobRejected&) {
        ++rep.rejected;
        return;
      }
    }
  };

  const auto t0 = Clock::now();

  // Burst 1: eight good serial jobs over four geometries -- repeats become
  // warm-cache hits; the burst overruns the queue so some submissions shed.
  for (int k = 0; k < 8; ++k) submit(good_job(0.01 * (k % 4)));

  // Poisoned inputs: NaN coordinate, oversized structure, bad direction --
  // all must bounce at admission, before they can reach a worker.
  {
    service::JobSpec nan_job = good_job(0.0);
    nan_job.structure = grid::Structure();
    nan_job.structure.add_atom(1, {0, 0, std::numeric_limits<double>::quiet_NaN()});
    nan_job.structure.add_atom(1, {0, 0, 0.7});
    submit(std::move(nan_job));

    service::JobSpec oversized = good_job(0.0);
    oversized.structure = grid::Structure();
    for (int k = 0; k < 9; ++k)
      oversized.structure.add_atom(1, {0, 0, 1.5 * k});
    submit(std::move(oversized));

    service::JobSpec bad_dir = good_job(0.0);
    bad_dir.direction = 7;
    submit(std::move(bad_dir));
  }

  // Let the queue drain before the chaos burst so the parallel jobs are
  // admitted rather than shed.
  std::vector<service::JobOutcome> first;
  for (const auto id : ids) first.push_back(server.wait(id));
  ids.clear();

  // Hopeless deadline: admitted (the queue is empty now), then expires --
  // terminal DeadlineExpired, never a wedged queue entry.
  {
    service::JobSpec tight = good_job(0.02);
    tight.deadline = std::chrono::milliseconds(1);
    submit_retry(tight);
  }

  // Burst 2: two parallel jobs under the seeded chaos plan (kill + flips +
  // stall). The recovery ladder and, if it exhausts, the degradation ladder
  // must still terminate them.
  for (int k = 0; k < 2; ++k) {
    service::JobSpec chaotic = good_job(0.03 + 0.01 * k);
    chaotic.ranks = 4;
    chaotic.ranks_per_node = 4;
    chaotic.fault_injector = &injector;
    submit_retry(chaotic);
  }

  // Cache-poisoning probe: corrupt the cached density of a known geometry,
  // then request the same geometry under different SCF options -- the
  // ground tier misses, the poisoned density entry must be detected by its
  // CRC, dropped, and recomputed (never served).
  {
    const std::uint64_t s_hash = service::structure_hash(h2(0.01));
    server.cache().corrupt_density_for_test(s_hash);
    service::JobSpec probe = good_job(0.01);
    probe.scf.mixing = 0.30;  // different options: new ground-tier key
    submit_retry(probe);

    // And the healthy counterpart: same geometry as a finished good job but
    // new options -- ground tier misses, the intact cached density seeds a
    // warm start.
    service::JobSpec warm = good_job(0.0);
    warm.scf.mixing = 0.30;
    submit_retry(warm);
  }

  for (const auto id : ids) first.push_back(server.wait(id));
  rep.outcomes = std::move(first);
  rep.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();

  // --- Report ---
  std::size_t succeeded = 0, failed = 0, deadline = 0, degradations = 0;
  std::size_t ground_hits = 0, warm_starts = 0, retries = 0;
  std::vector<double> latencies;
  for (const auto& out : rep.outcomes) {
    succeeded += out.state == service::JobState::Succeeded ? 1 : 0;
    failed += out.state == service::JobState::Failed ? 1 : 0;
    deadline += out.state == service::JobState::DeadlineExpired ? 1 : 0;
    degradations += static_cast<std::size_t>(out.degradations);
    ground_hits += out.ground_cache_hit ? 1 : 0;
    warm_starts += out.density_warm_start ? 1 : 0;
    retries += out.recovery.retries;
    latencies.push_back(out.queue_seconds + out.run_seconds);
  }
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);
  const double jobs_per_sec =
      rep.wall_seconds > 0.0
          ? static_cast<double>(rep.outcomes.size()) / rep.wall_seconds
          : 0.0;
  const double shed_rate =
      rep.submitted > 0
          ? static_cast<double>(rep.shed) / static_cast<double>(rep.submitted)
          : 0.0;
  const auto cache = server.cache().stats();
  const auto sstats = server.stats();

  Table t({"submitted", "shed", "rejected", "succeeded", "failed",
           "deadline", "degradations", "jobs/s", "p50 (s)", "p99 (s)"});
  t.add_row({std::to_string(rep.submitted), std::to_string(rep.shed),
             std::to_string(rep.rejected), std::to_string(succeeded),
             std::to_string(failed), std::to_string(deadline),
             std::to_string(degradations), Table::num(jobs_per_sec, 2),
             Table::num(p50, 2), Table::num(p99, 2)});
  t.print("Solve-service traffic mix under seeded chaos (kill + corruption "
          "+ stall + poisoned inputs): every admitted job terminal");

  Table c({"ground hits", "density warm starts", "poisoned dropped",
           "evictions", "recovery retries", "queue-full sheds"});
  c.add_row({std::to_string(cache.ground_hits),
             std::to_string(cache.density_hits),
             std::to_string(cache.poisoned_dropped),
             std::to_string(cache.evictions), std::to_string(retries),
             std::to_string(sstats.rejected_queue_full)});
  c.print("Warm-state cache and recovery during the run (the corrupted "
          "density entry was CRC-detected and dropped, never served)");

  std::string path;
  if (std::FILE* f = benchio::open_bench("BENCH_service.json", &path)) {
    benchio::write_envelope(f, "solve_service_traffic");
    std::fprintf(
        f,
        "  \"submitted\": %zu,\n  \"admitted\": %zu,\n"
        "  \"shed_queue_full\": %zu,\n  \"rejected_invalid\": %zu,\n"
        "  \"completed\": %zu,\n  \"succeeded\": %zu,\n  \"failed\": %zu,\n"
        "  \"deadline_expired\": %zu,\n  \"degradations\": %zu,\n"
        "  \"shed_rate\": %.4f,\n  \"jobs_per_second\": %.4f,\n"
        "  \"p50_latency_seconds\": %.4f,\n  \"p99_latency_seconds\": %.4f,\n"
        "  \"cache_ground_hits\": %zu,\n  \"cache_density_hits\": %zu,\n"
        "  \"cache_poisoned_dropped\": %zu,\n  \"cache_evictions\": %zu,\n"
        "  \"recovery_retries\": %zu,\n  \"ground_cache_hit_jobs\": %zu,\n"
        "  \"density_warm_start_jobs\": %zu,\n"
        "  \"wall_seconds\": %.4f\n}\n",
        rep.submitted, sstats.admitted, rep.shed, rep.rejected,
        sstats.completed, succeeded, failed, deadline, degradations,
        shed_rate, jobs_per_sec, p50, p99, cache.ground_hits,
        cache.density_hits, cache.poisoned_dropped, cache.evictions, retries,
        ground_hits, warm_starts, rep.wall_seconds);
    std::fclose(f);
    std::printf("Wrote %s\n", path.c_str());
  }
}

/// Steady-state serviced solve on a warm cache: the ground state is served
/// from the ground tier, so the measured cost is CPSCF + service overhead.
void BM_ServicedSolveWarm(benchmark::State& state) {
  const auto dir =
      std::filesystem::temp_directory_path() / "aeqp_bench_service_warm";
  std::filesystem::remove_all(dir);
  service::ServerOptions sopt;
  sopt.workers = 1;
  sopt.queue_capacity = 2;
  sopt.checkpoint_dir = dir;
  service::SolveServer server(sopt);
  // Prime the cache.
  {
    const auto id = server.submit(good_job(0.0));
    const auto out = server.wait(id);
    if (out.state != service::JobState::Succeeded) {
      state.SkipWithError("priming job failed");
      return;
    }
  }
  for (auto _ : state) {
    const auto id = server.submit(good_job(0.0));
    auto out = server.wait(id);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ServicedSolveWarm)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  if (aeqp::obs::mode() == aeqp::obs::TraceMode::Off)
    aeqp::obs::set_mode(aeqp::obs::TraceMode::Summary);
  traffic_run();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
