file(REMOVE_RECURSE
  "../bench/bench_fig13_collapse"
  "../bench/bench_fig13_collapse.pdb"
  "CMakeFiles/bench_fig13_collapse.dir/bench_fig13_collapse.cpp.o"
  "CMakeFiles/bench_fig13_collapse.dir/bench_fig13_collapse.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_collapse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
