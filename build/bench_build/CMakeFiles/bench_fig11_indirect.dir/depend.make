# Empty dependencies file for bench_fig11_indirect.
# This may be replaced when dependencies are built.
