file(REMOVE_RECURSE
  "../bench/bench_fig11_indirect"
  "../bench/bench_fig11_indirect.pdb"
  "CMakeFiles/bench_fig11_indirect.dir/bench_fig11_indirect.cpp.o"
  "CMakeFiles/bench_fig11_indirect.dir/bench_fig11_indirect.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_indirect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
