# Empty compiler generated dependencies file for bench_fig09a_mapping_memory.
# This may be replaced when dependencies are built.
