# Empty dependencies file for bench_ablation_poisson_lmax.
# This may be replaced when dependencies are built.
