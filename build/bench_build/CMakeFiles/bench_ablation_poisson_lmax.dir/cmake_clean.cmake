file(REMOVE_RECURSE
  "../bench/bench_ablation_poisson_lmax"
  "../bench/bench_ablation_poisson_lmax.pdb"
  "CMakeFiles/bench_ablation_poisson_lmax.dir/bench_ablation_poisson_lmax.cpp.o"
  "CMakeFiles/bench_ablation_poisson_lmax.dir/bench_ablation_poisson_lmax.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_poisson_lmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
