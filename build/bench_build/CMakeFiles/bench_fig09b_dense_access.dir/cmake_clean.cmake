file(REMOVE_RECURSE
  "../bench/bench_fig09b_dense_access"
  "../bench/bench_fig09b_dense_access.pdb"
  "CMakeFiles/bench_fig09b_dense_access.dir/bench_fig09b_dense_access.cpp.o"
  "CMakeFiles/bench_fig09b_dense_access.dir/bench_fig09b_dense_access.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09b_dense_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
