# Empty dependencies file for bench_fig09b_dense_access.
# This may be replaced when dependencies are built.
