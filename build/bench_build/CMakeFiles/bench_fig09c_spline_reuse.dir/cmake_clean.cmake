file(REMOVE_RECURSE
  "../bench/bench_fig09c_spline_reuse"
  "../bench/bench_fig09c_spline_reuse.pdb"
  "CMakeFiles/bench_fig09c_spline_reuse.dir/bench_fig09c_spline_reuse.cpp.o"
  "CMakeFiles/bench_fig09c_spline_reuse.dir/bench_fig09c_spline_reuse.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09c_spline_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
