# Empty compiler generated dependencies file for bench_fig09c_spline_reuse.
# This may be replaced when dependencies are built.
