file(REMOVE_RECURSE
  "../bench/bench_fig12_fusion"
  "../bench/bench_fig12_fusion.pdb"
  "CMakeFiles/bench_fig12_fusion.dir/bench_fig12_fusion.cpp.o"
  "CMakeFiles/bench_fig12_fusion.dir/bench_fig12_fusion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
