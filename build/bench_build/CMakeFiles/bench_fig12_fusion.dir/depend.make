# Empty dependencies file for bench_fig12_fusion.
# This may be replaced when dependencies are built.
