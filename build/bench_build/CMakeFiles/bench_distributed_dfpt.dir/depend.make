# Empty dependencies file for bench_distributed_dfpt.
# This may be replaced when dependencies are built.
