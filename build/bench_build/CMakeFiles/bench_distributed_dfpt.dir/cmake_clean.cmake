file(REMOVE_RECURSE
  "../bench/bench_distributed_dfpt"
  "../bench/bench_distributed_dfpt.pdb"
  "CMakeFiles/bench_distributed_dfpt.dir/bench_distributed_dfpt.cpp.o"
  "CMakeFiles/bench_distributed_dfpt.dir/bench_distributed_dfpt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distributed_dfpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
