# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench_build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_bench_ablation_batch_size "/root/repo/build/bench/bench_ablation_batch_size" "--benchmark_filter=__none__")
set_tests_properties(smoke_bench_ablation_batch_size PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_ablation_pack_window "/root/repo/build/bench/bench_ablation_pack_window" "--benchmark_filter=__none__")
set_tests_properties(smoke_bench_ablation_pack_window PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_ablation_poisson_lmax "/root/repo/build/bench/bench_ablation_poisson_lmax" "--benchmark_filter=__none__")
set_tests_properties(smoke_bench_ablation_poisson_lmax PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_distributed_dfpt "/root/repo/build/bench/bench_distributed_dfpt" "--benchmark_filter=__none__")
set_tests_properties(smoke_bench_distributed_dfpt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig09a_mapping_memory "/root/repo/build/bench/bench_fig09a_mapping_memory" "--benchmark_filter=__none__")
set_tests_properties(smoke_bench_fig09a_mapping_memory PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig09b_dense_access "/root/repo/build/bench/bench_fig09b_dense_access" "--benchmark_filter=__none__")
set_tests_properties(smoke_bench_fig09b_dense_access PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig09c_spline_reuse "/root/repo/build/bench/bench_fig09c_spline_reuse" "--benchmark_filter=__none__")
set_tests_properties(smoke_bench_fig09c_spline_reuse PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig10_allreduce "/root/repo/build/bench/bench_fig10_allreduce" "--benchmark_filter=__none__")
set_tests_properties(smoke_bench_fig10_allreduce PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig11_indirect "/root/repo/build/bench/bench_fig11_indirect" "--benchmark_filter=__none__")
set_tests_properties(smoke_bench_fig11_indirect PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig12_fusion "/root/repo/build/bench/bench_fig12_fusion" "--benchmark_filter=__none__")
set_tests_properties(smoke_bench_fig12_fusion PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig13_collapse "/root/repo/build/bench/bench_fig13_collapse" "--benchmark_filter=__none__")
set_tests_properties(smoke_bench_fig13_collapse PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig14_overall "/root/repo/build/bench/bench_fig14_overall" "--benchmark_filter=__none__")
set_tests_properties(smoke_bench_fig14_overall PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig15_strong_scaling "/root/repo/build/bench/bench_fig15_strong_scaling" "--benchmark_filter=__none__")
set_tests_properties(smoke_bench_fig15_strong_scaling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig16_weak_scaling "/root/repo/build/bench/bench_fig16_weak_scaling" "--benchmark_filter=__none__")
set_tests_properties(smoke_bench_fig16_weak_scaling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;0;")
