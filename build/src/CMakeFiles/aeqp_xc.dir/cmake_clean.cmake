file(REMOVE_RECURSE
  "CMakeFiles/aeqp_xc.dir/xc/lda.cpp.o"
  "CMakeFiles/aeqp_xc.dir/xc/lda.cpp.o.d"
  "libaeqp_xc.a"
  "libaeqp_xc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeqp_xc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
