file(REMOVE_RECURSE
  "libaeqp_xc.a"
)
