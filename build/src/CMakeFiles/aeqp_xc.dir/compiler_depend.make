# Empty compiler generated dependencies file for aeqp_xc.
# This may be replaced when dependencies are built.
