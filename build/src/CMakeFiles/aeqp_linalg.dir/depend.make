# Empty dependencies file for aeqp_linalg.
# This may be replaced when dependencies are built.
