file(REMOVE_RECURSE
  "libaeqp_linalg.a"
)
