file(REMOVE_RECURSE
  "CMakeFiles/aeqp_linalg.dir/linalg/cholesky.cpp.o"
  "CMakeFiles/aeqp_linalg.dir/linalg/cholesky.cpp.o.d"
  "CMakeFiles/aeqp_linalg.dir/linalg/eigen.cpp.o"
  "CMakeFiles/aeqp_linalg.dir/linalg/eigen.cpp.o.d"
  "CMakeFiles/aeqp_linalg.dir/linalg/lu.cpp.o"
  "CMakeFiles/aeqp_linalg.dir/linalg/lu.cpp.o.d"
  "CMakeFiles/aeqp_linalg.dir/linalg/matrix.cpp.o"
  "CMakeFiles/aeqp_linalg.dir/linalg/matrix.cpp.o.d"
  "CMakeFiles/aeqp_linalg.dir/linalg/sparse.cpp.o"
  "CMakeFiles/aeqp_linalg.dir/linalg/sparse.cpp.o.d"
  "libaeqp_linalg.a"
  "libaeqp_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeqp_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
