file(REMOVE_RECURSE
  "libaeqp_grid.a"
)
