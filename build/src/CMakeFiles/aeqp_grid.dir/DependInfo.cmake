
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/angular_grid.cpp" "src/CMakeFiles/aeqp_grid.dir/grid/angular_grid.cpp.o" "gcc" "src/CMakeFiles/aeqp_grid.dir/grid/angular_grid.cpp.o.d"
  "/root/repo/src/grid/batch.cpp" "src/CMakeFiles/aeqp_grid.dir/grid/batch.cpp.o" "gcc" "src/CMakeFiles/aeqp_grid.dir/grid/batch.cpp.o.d"
  "/root/repo/src/grid/molecular_grid.cpp" "src/CMakeFiles/aeqp_grid.dir/grid/molecular_grid.cpp.o" "gcc" "src/CMakeFiles/aeqp_grid.dir/grid/molecular_grid.cpp.o.d"
  "/root/repo/src/grid/partition.cpp" "src/CMakeFiles/aeqp_grid.dir/grid/partition.cpp.o" "gcc" "src/CMakeFiles/aeqp_grid.dir/grid/partition.cpp.o.d"
  "/root/repo/src/grid/quadrature.cpp" "src/CMakeFiles/aeqp_grid.dir/grid/quadrature.cpp.o" "gcc" "src/CMakeFiles/aeqp_grid.dir/grid/quadrature.cpp.o.d"
  "/root/repo/src/grid/radial_grid.cpp" "src/CMakeFiles/aeqp_grid.dir/grid/radial_grid.cpp.o" "gcc" "src/CMakeFiles/aeqp_grid.dir/grid/radial_grid.cpp.o.d"
  "/root/repo/src/grid/structure.cpp" "src/CMakeFiles/aeqp_grid.dir/grid/structure.cpp.o" "gcc" "src/CMakeFiles/aeqp_grid.dir/grid/structure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aeqp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
