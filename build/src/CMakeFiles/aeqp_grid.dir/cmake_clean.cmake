file(REMOVE_RECURSE
  "CMakeFiles/aeqp_grid.dir/grid/angular_grid.cpp.o"
  "CMakeFiles/aeqp_grid.dir/grid/angular_grid.cpp.o.d"
  "CMakeFiles/aeqp_grid.dir/grid/batch.cpp.o"
  "CMakeFiles/aeqp_grid.dir/grid/batch.cpp.o.d"
  "CMakeFiles/aeqp_grid.dir/grid/molecular_grid.cpp.o"
  "CMakeFiles/aeqp_grid.dir/grid/molecular_grid.cpp.o.d"
  "CMakeFiles/aeqp_grid.dir/grid/partition.cpp.o"
  "CMakeFiles/aeqp_grid.dir/grid/partition.cpp.o.d"
  "CMakeFiles/aeqp_grid.dir/grid/quadrature.cpp.o"
  "CMakeFiles/aeqp_grid.dir/grid/quadrature.cpp.o.d"
  "CMakeFiles/aeqp_grid.dir/grid/radial_grid.cpp.o"
  "CMakeFiles/aeqp_grid.dir/grid/radial_grid.cpp.o.d"
  "CMakeFiles/aeqp_grid.dir/grid/structure.cpp.o"
  "CMakeFiles/aeqp_grid.dir/grid/structure.cpp.o.d"
  "libaeqp_grid.a"
  "libaeqp_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeqp_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
