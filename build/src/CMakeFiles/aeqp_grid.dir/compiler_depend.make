# Empty compiler generated dependencies file for aeqp_grid.
# This may be replaced when dependencies are built.
