
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/poisson/adams_moulton.cpp" "src/CMakeFiles/aeqp_poisson.dir/poisson/adams_moulton.cpp.o" "gcc" "src/CMakeFiles/aeqp_poisson.dir/poisson/adams_moulton.cpp.o.d"
  "/root/repo/src/poisson/multipole.cpp" "src/CMakeFiles/aeqp_poisson.dir/poisson/multipole.cpp.o" "gcc" "src/CMakeFiles/aeqp_poisson.dir/poisson/multipole.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aeqp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_basis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
