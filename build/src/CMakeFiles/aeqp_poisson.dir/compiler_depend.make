# Empty compiler generated dependencies file for aeqp_poisson.
# This may be replaced when dependencies are built.
