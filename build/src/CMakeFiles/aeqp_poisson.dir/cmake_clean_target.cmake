file(REMOVE_RECURSE
  "libaeqp_poisson.a"
)
