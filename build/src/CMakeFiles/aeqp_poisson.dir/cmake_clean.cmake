file(REMOVE_RECURSE
  "CMakeFiles/aeqp_poisson.dir/poisson/adams_moulton.cpp.o"
  "CMakeFiles/aeqp_poisson.dir/poisson/adams_moulton.cpp.o.d"
  "CMakeFiles/aeqp_poisson.dir/poisson/multipole.cpp.o"
  "CMakeFiles/aeqp_poisson.dir/poisson/multipole.cpp.o.d"
  "libaeqp_poisson.a"
  "libaeqp_poisson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeqp_poisson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
