file(REMOVE_RECURSE
  "CMakeFiles/aeqp_kernels.dir/kernels/batch_kernels.cpp.o"
  "CMakeFiles/aeqp_kernels.dir/kernels/batch_kernels.cpp.o.d"
  "CMakeFiles/aeqp_kernels.dir/kernels/density_kernels.cpp.o"
  "CMakeFiles/aeqp_kernels.dir/kernels/density_kernels.cpp.o.d"
  "CMakeFiles/aeqp_kernels.dir/kernels/hartree_pm_kernel.cpp.o"
  "CMakeFiles/aeqp_kernels.dir/kernels/hartree_pm_kernel.cpp.o.d"
  "CMakeFiles/aeqp_kernels.dir/kernels/init_kernel.cpp.o"
  "CMakeFiles/aeqp_kernels.dir/kernels/init_kernel.cpp.o.d"
  "CMakeFiles/aeqp_kernels.dir/kernels/rho_kernels.cpp.o"
  "CMakeFiles/aeqp_kernels.dir/kernels/rho_kernels.cpp.o.d"
  "libaeqp_kernels.a"
  "libaeqp_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeqp_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
