file(REMOVE_RECURSE
  "libaeqp_kernels.a"
)
