# Empty compiler generated dependencies file for aeqp_kernels.
# This may be replaced when dependencies are built.
