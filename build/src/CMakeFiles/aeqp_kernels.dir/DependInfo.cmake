
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/batch_kernels.cpp" "src/CMakeFiles/aeqp_kernels.dir/kernels/batch_kernels.cpp.o" "gcc" "src/CMakeFiles/aeqp_kernels.dir/kernels/batch_kernels.cpp.o.d"
  "/root/repo/src/kernels/density_kernels.cpp" "src/CMakeFiles/aeqp_kernels.dir/kernels/density_kernels.cpp.o" "gcc" "src/CMakeFiles/aeqp_kernels.dir/kernels/density_kernels.cpp.o.d"
  "/root/repo/src/kernels/hartree_pm_kernel.cpp" "src/CMakeFiles/aeqp_kernels.dir/kernels/hartree_pm_kernel.cpp.o" "gcc" "src/CMakeFiles/aeqp_kernels.dir/kernels/hartree_pm_kernel.cpp.o.d"
  "/root/repo/src/kernels/init_kernel.cpp" "src/CMakeFiles/aeqp_kernels.dir/kernels/init_kernel.cpp.o" "gcc" "src/CMakeFiles/aeqp_kernels.dir/kernels/init_kernel.cpp.o.d"
  "/root/repo/src/kernels/rho_kernels.cpp" "src/CMakeFiles/aeqp_kernels.dir/kernels/rho_kernels.cpp.o" "gcc" "src/CMakeFiles/aeqp_kernels.dir/kernels/rho_kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aeqp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_poisson.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_scf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_xc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_basis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
