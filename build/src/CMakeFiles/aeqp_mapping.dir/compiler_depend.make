# Empty compiler generated dependencies file for aeqp_mapping.
# This may be replaced when dependencies are built.
