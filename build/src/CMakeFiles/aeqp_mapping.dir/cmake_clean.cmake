file(REMOVE_RECURSE
  "CMakeFiles/aeqp_mapping.dir/mapping/hamiltonian_analysis.cpp.o"
  "CMakeFiles/aeqp_mapping.dir/mapping/hamiltonian_analysis.cpp.o.d"
  "CMakeFiles/aeqp_mapping.dir/mapping/synthetic_points.cpp.o"
  "CMakeFiles/aeqp_mapping.dir/mapping/synthetic_points.cpp.o.d"
  "CMakeFiles/aeqp_mapping.dir/mapping/task_mapping.cpp.o"
  "CMakeFiles/aeqp_mapping.dir/mapping/task_mapping.cpp.o.d"
  "libaeqp_mapping.a"
  "libaeqp_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeqp_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
