
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapping/hamiltonian_analysis.cpp" "src/CMakeFiles/aeqp_mapping.dir/mapping/hamiltonian_analysis.cpp.o" "gcc" "src/CMakeFiles/aeqp_mapping.dir/mapping/hamiltonian_analysis.cpp.o.d"
  "/root/repo/src/mapping/synthetic_points.cpp" "src/CMakeFiles/aeqp_mapping.dir/mapping/synthetic_points.cpp.o" "gcc" "src/CMakeFiles/aeqp_mapping.dir/mapping/synthetic_points.cpp.o.d"
  "/root/repo/src/mapping/task_mapping.cpp" "src/CMakeFiles/aeqp_mapping.dir/mapping/task_mapping.cpp.o" "gcc" "src/CMakeFiles/aeqp_mapping.dir/mapping/task_mapping.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aeqp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_basis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
