file(REMOVE_RECURSE
  "libaeqp_mapping.a"
)
