# Empty dependencies file for aeqp_simt.
# This may be replaced when dependencies are built.
