file(REMOVE_RECURSE
  "libaeqp_simt.a"
)
