file(REMOVE_RECURSE
  "CMakeFiles/aeqp_simt.dir/simt/device.cpp.o"
  "CMakeFiles/aeqp_simt.dir/simt/device.cpp.o.d"
  "CMakeFiles/aeqp_simt.dir/simt/runtime.cpp.o"
  "CMakeFiles/aeqp_simt.dir/simt/runtime.cpp.o.d"
  "libaeqp_simt.a"
  "libaeqp_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeqp_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
