file(REMOVE_RECURSE
  "libaeqp_scf.a"
)
