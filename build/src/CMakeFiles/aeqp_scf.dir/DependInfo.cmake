
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scf/diis.cpp" "src/CMakeFiles/aeqp_scf.dir/scf/diis.cpp.o" "gcc" "src/CMakeFiles/aeqp_scf.dir/scf/diis.cpp.o.d"
  "/root/repo/src/scf/integrator.cpp" "src/CMakeFiles/aeqp_scf.dir/scf/integrator.cpp.o" "gcc" "src/CMakeFiles/aeqp_scf.dir/scf/integrator.cpp.o.d"
  "/root/repo/src/scf/occupations.cpp" "src/CMakeFiles/aeqp_scf.dir/scf/occupations.cpp.o" "gcc" "src/CMakeFiles/aeqp_scf.dir/scf/occupations.cpp.o.d"
  "/root/repo/src/scf/scf_solver.cpp" "src/CMakeFiles/aeqp_scf.dir/scf/scf_solver.cpp.o" "gcc" "src/CMakeFiles/aeqp_scf.dir/scf/scf_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aeqp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_basis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_xc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_poisson.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
