file(REMOVE_RECURSE
  "CMakeFiles/aeqp_scf.dir/scf/diis.cpp.o"
  "CMakeFiles/aeqp_scf.dir/scf/diis.cpp.o.d"
  "CMakeFiles/aeqp_scf.dir/scf/integrator.cpp.o"
  "CMakeFiles/aeqp_scf.dir/scf/integrator.cpp.o.d"
  "CMakeFiles/aeqp_scf.dir/scf/occupations.cpp.o"
  "CMakeFiles/aeqp_scf.dir/scf/occupations.cpp.o.d"
  "CMakeFiles/aeqp_scf.dir/scf/scf_solver.cpp.o"
  "CMakeFiles/aeqp_scf.dir/scf/scf_solver.cpp.o.d"
  "libaeqp_scf.a"
  "libaeqp_scf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeqp_scf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
