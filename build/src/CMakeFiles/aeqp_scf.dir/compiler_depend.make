# Empty compiler generated dependencies file for aeqp_scf.
# This may be replaced when dependencies are built.
