file(REMOVE_RECURSE
  "libaeqp_perfmodel.a"
)
