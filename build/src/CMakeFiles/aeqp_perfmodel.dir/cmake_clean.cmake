file(REMOVE_RECURSE
  "CMakeFiles/aeqp_perfmodel.dir/perfmodel/dfpt_perf_model.cpp.o"
  "CMakeFiles/aeqp_perfmodel.dir/perfmodel/dfpt_perf_model.cpp.o.d"
  "libaeqp_perfmodel.a"
  "libaeqp_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeqp_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
