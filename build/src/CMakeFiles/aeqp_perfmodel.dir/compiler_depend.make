# Empty compiler generated dependencies file for aeqp_perfmodel.
# This may be replaced when dependencies are built.
