file(REMOVE_RECURSE
  "libaeqp_common.a"
)
