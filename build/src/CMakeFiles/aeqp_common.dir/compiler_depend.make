# Empty compiler generated dependencies file for aeqp_common.
# This may be replaced when dependencies are built.
