file(REMOVE_RECURSE
  "CMakeFiles/aeqp_common.dir/common/error.cpp.o"
  "CMakeFiles/aeqp_common.dir/common/error.cpp.o.d"
  "CMakeFiles/aeqp_common.dir/common/log.cpp.o"
  "CMakeFiles/aeqp_common.dir/common/log.cpp.o.d"
  "CMakeFiles/aeqp_common.dir/common/rng.cpp.o"
  "CMakeFiles/aeqp_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/aeqp_common.dir/common/table.cpp.o"
  "CMakeFiles/aeqp_common.dir/common/table.cpp.o.d"
  "libaeqp_common.a"
  "libaeqp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeqp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
