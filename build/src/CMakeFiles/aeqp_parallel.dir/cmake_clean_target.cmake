file(REMOVE_RECURSE
  "libaeqp_parallel.a"
)
