# Empty dependencies file for aeqp_parallel.
# This may be replaced when dependencies are built.
