file(REMOVE_RECURSE
  "CMakeFiles/aeqp_parallel.dir/parallel/cluster.cpp.o"
  "CMakeFiles/aeqp_parallel.dir/parallel/cluster.cpp.o.d"
  "CMakeFiles/aeqp_parallel.dir/parallel/machine_model.cpp.o"
  "CMakeFiles/aeqp_parallel.dir/parallel/machine_model.cpp.o.d"
  "libaeqp_parallel.a"
  "libaeqp_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeqp_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
