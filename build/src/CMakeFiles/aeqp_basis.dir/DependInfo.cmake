
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/basis/basis_set.cpp" "src/CMakeFiles/aeqp_basis.dir/basis/basis_set.cpp.o" "gcc" "src/CMakeFiles/aeqp_basis.dir/basis/basis_set.cpp.o.d"
  "/root/repo/src/basis/element.cpp" "src/CMakeFiles/aeqp_basis.dir/basis/element.cpp.o" "gcc" "src/CMakeFiles/aeqp_basis.dir/basis/element.cpp.o.d"
  "/root/repo/src/basis/radial_function.cpp" "src/CMakeFiles/aeqp_basis.dir/basis/radial_function.cpp.o" "gcc" "src/CMakeFiles/aeqp_basis.dir/basis/radial_function.cpp.o.d"
  "/root/repo/src/basis/spherical_harmonics.cpp" "src/CMakeFiles/aeqp_basis.dir/basis/spherical_harmonics.cpp.o" "gcc" "src/CMakeFiles/aeqp_basis.dir/basis/spherical_harmonics.cpp.o.d"
  "/root/repo/src/basis/spline.cpp" "src/CMakeFiles/aeqp_basis.dir/basis/spline.cpp.o" "gcc" "src/CMakeFiles/aeqp_basis.dir/basis/spline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aeqp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_grid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
