file(REMOVE_RECURSE
  "libaeqp_basis.a"
)
