file(REMOVE_RECURSE
  "CMakeFiles/aeqp_basis.dir/basis/basis_set.cpp.o"
  "CMakeFiles/aeqp_basis.dir/basis/basis_set.cpp.o.d"
  "CMakeFiles/aeqp_basis.dir/basis/element.cpp.o"
  "CMakeFiles/aeqp_basis.dir/basis/element.cpp.o.d"
  "CMakeFiles/aeqp_basis.dir/basis/radial_function.cpp.o"
  "CMakeFiles/aeqp_basis.dir/basis/radial_function.cpp.o.d"
  "CMakeFiles/aeqp_basis.dir/basis/spherical_harmonics.cpp.o"
  "CMakeFiles/aeqp_basis.dir/basis/spherical_harmonics.cpp.o.d"
  "CMakeFiles/aeqp_basis.dir/basis/spline.cpp.o"
  "CMakeFiles/aeqp_basis.dir/basis/spline.cpp.o.d"
  "libaeqp_basis.a"
  "libaeqp_basis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeqp_basis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
