# Empty compiler generated dependencies file for aeqp_basis.
# This may be replaced when dependencies are built.
