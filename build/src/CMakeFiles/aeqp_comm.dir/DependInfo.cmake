
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/hierarchical.cpp" "src/CMakeFiles/aeqp_comm.dir/comm/hierarchical.cpp.o" "gcc" "src/CMakeFiles/aeqp_comm.dir/comm/hierarchical.cpp.o.d"
  "/root/repo/src/comm/packed.cpp" "src/CMakeFiles/aeqp_comm.dir/comm/packed.cpp.o" "gcc" "src/CMakeFiles/aeqp_comm.dir/comm/packed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aeqp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
