file(REMOVE_RECURSE
  "libaeqp_comm.a"
)
