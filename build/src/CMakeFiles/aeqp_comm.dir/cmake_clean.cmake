file(REMOVE_RECURSE
  "CMakeFiles/aeqp_comm.dir/comm/hierarchical.cpp.o"
  "CMakeFiles/aeqp_comm.dir/comm/hierarchical.cpp.o.d"
  "CMakeFiles/aeqp_comm.dir/comm/packed.cpp.o"
  "CMakeFiles/aeqp_comm.dir/comm/packed.cpp.o.d"
  "libaeqp_comm.a"
  "libaeqp_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeqp_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
