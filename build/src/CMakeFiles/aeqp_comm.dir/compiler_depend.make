# Empty compiler generated dependencies file for aeqp_comm.
# This may be replaced when dependencies are built.
