
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cube.cpp" "src/CMakeFiles/aeqp_core.dir/core/cube.cpp.o" "gcc" "src/CMakeFiles/aeqp_core.dir/core/cube.cpp.o.d"
  "/root/repo/src/core/dfpt.cpp" "src/CMakeFiles/aeqp_core.dir/core/dfpt.cpp.o" "gcc" "src/CMakeFiles/aeqp_core.dir/core/dfpt.cpp.o.d"
  "/root/repo/src/core/parallel_dfpt.cpp" "src/CMakeFiles/aeqp_core.dir/core/parallel_dfpt.cpp.o" "gcc" "src/CMakeFiles/aeqp_core.dir/core/parallel_dfpt.cpp.o.d"
  "/root/repo/src/core/polarizability_invariants.cpp" "src/CMakeFiles/aeqp_core.dir/core/polarizability_invariants.cpp.o" "gcc" "src/CMakeFiles/aeqp_core.dir/core/polarizability_invariants.cpp.o.d"
  "/root/repo/src/core/relax.cpp" "src/CMakeFiles/aeqp_core.dir/core/relax.cpp.o" "gcc" "src/CMakeFiles/aeqp_core.dir/core/relax.cpp.o.d"
  "/root/repo/src/core/spectrum.cpp" "src/CMakeFiles/aeqp_core.dir/core/spectrum.cpp.o" "gcc" "src/CMakeFiles/aeqp_core.dir/core/spectrum.cpp.o.d"
  "/root/repo/src/core/structures.cpp" "src/CMakeFiles/aeqp_core.dir/core/structures.cpp.o" "gcc" "src/CMakeFiles/aeqp_core.dir/core/structures.cpp.o.d"
  "/root/repo/src/core/vibrations.cpp" "src/CMakeFiles/aeqp_core.dir/core/vibrations.cpp.o" "gcc" "src/CMakeFiles/aeqp_core.dir/core/vibrations.cpp.o.d"
  "/root/repo/src/core/xyz.cpp" "src/CMakeFiles/aeqp_core.dir/core/xyz.cpp.o" "gcc" "src/CMakeFiles/aeqp_core.dir/core/xyz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aeqp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_basis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_xc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_poisson.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_scf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_perfmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
