file(REMOVE_RECURSE
  "CMakeFiles/aeqp_core.dir/core/cube.cpp.o"
  "CMakeFiles/aeqp_core.dir/core/cube.cpp.o.d"
  "CMakeFiles/aeqp_core.dir/core/dfpt.cpp.o"
  "CMakeFiles/aeqp_core.dir/core/dfpt.cpp.o.d"
  "CMakeFiles/aeqp_core.dir/core/parallel_dfpt.cpp.o"
  "CMakeFiles/aeqp_core.dir/core/parallel_dfpt.cpp.o.d"
  "CMakeFiles/aeqp_core.dir/core/polarizability_invariants.cpp.o"
  "CMakeFiles/aeqp_core.dir/core/polarizability_invariants.cpp.o.d"
  "CMakeFiles/aeqp_core.dir/core/relax.cpp.o"
  "CMakeFiles/aeqp_core.dir/core/relax.cpp.o.d"
  "CMakeFiles/aeqp_core.dir/core/spectrum.cpp.o"
  "CMakeFiles/aeqp_core.dir/core/spectrum.cpp.o.d"
  "CMakeFiles/aeqp_core.dir/core/structures.cpp.o"
  "CMakeFiles/aeqp_core.dir/core/structures.cpp.o.d"
  "CMakeFiles/aeqp_core.dir/core/vibrations.cpp.o"
  "CMakeFiles/aeqp_core.dir/core/vibrations.cpp.o.d"
  "CMakeFiles/aeqp_core.dir/core/xyz.cpp.o"
  "CMakeFiles/aeqp_core.dir/core/xyz.cpp.o.d"
  "libaeqp_core.a"
  "libaeqp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeqp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
