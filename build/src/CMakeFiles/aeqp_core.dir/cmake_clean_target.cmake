file(REMOVE_RECURSE
  "libaeqp_core.a"
)
