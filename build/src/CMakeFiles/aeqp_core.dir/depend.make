# Empty dependencies file for aeqp_core.
# This may be replaced when dependencies are built.
