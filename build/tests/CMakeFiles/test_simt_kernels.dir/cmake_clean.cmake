file(REMOVE_RECURSE
  "CMakeFiles/test_simt_kernels.dir/test_simt_kernels.cpp.o"
  "CMakeFiles/test_simt_kernels.dir/test_simt_kernels.cpp.o.d"
  "test_simt_kernels"
  "test_simt_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simt_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
