# Empty dependencies file for test_occupations_cube.
# This may be replaced when dependencies are built.
