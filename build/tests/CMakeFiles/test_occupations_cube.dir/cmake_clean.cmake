file(REMOVE_RECURSE
  "CMakeFiles/test_occupations_cube.dir/test_occupations_cube.cpp.o"
  "CMakeFiles/test_occupations_cube.dir/test_occupations_cube.cpp.o.d"
  "test_occupations_cube"
  "test_occupations_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_occupations_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
