file(REMOVE_RECURSE
  "CMakeFiles/test_device_dfpt.dir/test_device_dfpt.cpp.o"
  "CMakeFiles/test_device_dfpt.dir/test_device_dfpt.cpp.o.d"
  "test_device_dfpt"
  "test_device_dfpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device_dfpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
