# Empty dependencies file for test_device_dfpt.
# This may be replaced when dependencies are built.
