file(REMOVE_RECURSE
  "CMakeFiles/test_vibrations.dir/test_vibrations.cpp.o"
  "CMakeFiles/test_vibrations.dir/test_vibrations.cpp.o.d"
  "test_vibrations"
  "test_vibrations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vibrations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
