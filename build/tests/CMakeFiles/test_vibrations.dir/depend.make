# Empty dependencies file for test_vibrations.
# This may be replaced when dependencies are built.
