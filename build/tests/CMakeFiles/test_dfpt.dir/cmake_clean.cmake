file(REMOVE_RECURSE
  "CMakeFiles/test_dfpt.dir/test_dfpt.cpp.o"
  "CMakeFiles/test_dfpt.dir/test_dfpt.cpp.o.d"
  "test_dfpt"
  "test_dfpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
