file(REMOVE_RECURSE
  "CMakeFiles/test_batch_kernels.dir/test_batch_kernels.cpp.o"
  "CMakeFiles/test_batch_kernels.dir/test_batch_kernels.cpp.o.d"
  "test_batch_kernels"
  "test_batch_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batch_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
