# Empty dependencies file for test_batch_kernels.
# This may be replaced when dependencies are built.
