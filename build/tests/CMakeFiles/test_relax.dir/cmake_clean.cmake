file(REMOVE_RECURSE
  "CMakeFiles/test_relax.dir/test_relax.cpp.o"
  "CMakeFiles/test_relax.dir/test_relax.cpp.o.d"
  "test_relax"
  "test_relax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
