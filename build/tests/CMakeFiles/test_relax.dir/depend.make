# Empty dependencies file for test_relax.
# This may be replaced when dependencies are built.
