
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_grid.cpp" "tests/CMakeFiles/test_grid.dir/test_grid.cpp.o" "gcc" "tests/CMakeFiles/test_grid.dir/test_grid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aeqp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_scf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_xc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_poisson.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_basis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aeqp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
