file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_response.dir/test_dynamic_response.cpp.o"
  "CMakeFiles/test_dynamic_response.dir/test_dynamic_response.cpp.o.d"
  "test_dynamic_response"
  "test_dynamic_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
