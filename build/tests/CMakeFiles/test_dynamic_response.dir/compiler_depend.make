# Empty compiler generated dependencies file for test_dynamic_response.
# This may be replaced when dependencies are built.
