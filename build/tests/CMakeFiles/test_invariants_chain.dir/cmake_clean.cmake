file(REMOVE_RECURSE
  "CMakeFiles/test_invariants_chain.dir/test_invariants_chain.cpp.o"
  "CMakeFiles/test_invariants_chain.dir/test_invariants_chain.cpp.o.d"
  "test_invariants_chain"
  "test_invariants_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_invariants_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
