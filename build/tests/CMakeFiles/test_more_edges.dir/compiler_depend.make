# Empty compiler generated dependencies file for test_more_edges.
# This may be replaced when dependencies are built.
