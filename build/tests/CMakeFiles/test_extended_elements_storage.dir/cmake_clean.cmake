file(REMOVE_RECURSE
  "CMakeFiles/test_extended_elements_storage.dir/test_extended_elements_storage.cpp.o"
  "CMakeFiles/test_extended_elements_storage.dir/test_extended_elements_storage.cpp.o.d"
  "test_extended_elements_storage"
  "test_extended_elements_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extended_elements_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
