# Empty compiler generated dependencies file for test_extended_elements_storage.
# This may be replaced when dependencies are built.
