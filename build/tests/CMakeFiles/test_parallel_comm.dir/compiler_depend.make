# Empty compiler generated dependencies file for test_parallel_comm.
# This may be replaced when dependencies are built.
