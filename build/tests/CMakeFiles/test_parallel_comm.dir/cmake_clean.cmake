file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_comm.dir/test_parallel_comm.cpp.o"
  "CMakeFiles/test_parallel_comm.dir/test_parallel_comm.cpp.o.d"
  "test_parallel_comm"
  "test_parallel_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
