file(REMOVE_RECURSE
  "CMakeFiles/test_lu_diis.dir/test_lu_diis.cpp.o"
  "CMakeFiles/test_lu_diis.dir/test_lu_diis.cpp.o.d"
  "test_lu_diis"
  "test_lu_diis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lu_diis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
