# Empty dependencies file for test_lu_diis.
# This may be replaced when dependencies are built.
