# Empty dependencies file for test_parallel_dfpt.
# This may be replaced when dependencies are built.
