file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_dfpt.dir/test_parallel_dfpt.cpp.o"
  "CMakeFiles/test_parallel_dfpt.dir/test_parallel_dfpt.cpp.o.d"
  "test_parallel_dfpt"
  "test_parallel_dfpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_dfpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
