file(REMOVE_RECURSE
  "CMakeFiles/example_raman_mode.dir/raman_mode.cpp.o"
  "CMakeFiles/example_raman_mode.dir/raman_mode.cpp.o.d"
  "example_raman_mode"
  "example_raman_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_raman_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
