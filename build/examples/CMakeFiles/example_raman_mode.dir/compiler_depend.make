# Empty compiler generated dependencies file for example_raman_mode.
# This may be replaced when dependencies are built.
