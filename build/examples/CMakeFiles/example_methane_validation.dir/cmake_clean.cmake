file(REMOVE_RECURSE
  "CMakeFiles/example_methane_validation.dir/methane_validation.cpp.o"
  "CMakeFiles/example_methane_validation.dir/methane_validation.cpp.o.d"
  "example_methane_validation"
  "example_methane_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_methane_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
