# Empty compiler generated dependencies file for example_methane_validation.
# This may be replaced when dependencies are built.
