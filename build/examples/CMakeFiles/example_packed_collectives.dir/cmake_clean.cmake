file(REMOVE_RECURSE
  "CMakeFiles/example_packed_collectives.dir/packed_collectives.cpp.o"
  "CMakeFiles/example_packed_collectives.dir/packed_collectives.cpp.o.d"
  "example_packed_collectives"
  "example_packed_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_packed_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
