# Empty dependencies file for example_packed_collectives.
# This may be replaced when dependencies are built.
