# Empty compiler generated dependencies file for example_distributed_dfpt.
# This may be replaced when dependencies are built.
