file(REMOVE_RECURSE
  "CMakeFiles/example_distributed_dfpt.dir/distributed_dfpt.cpp.o"
  "CMakeFiles/example_distributed_dfpt.dir/distributed_dfpt.cpp.o.d"
  "example_distributed_dfpt"
  "example_distributed_dfpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_distributed_dfpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
