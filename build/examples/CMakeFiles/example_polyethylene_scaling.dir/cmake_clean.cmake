file(REMOVE_RECURSE
  "CMakeFiles/example_polyethylene_scaling.dir/polyethylene_scaling.cpp.o"
  "CMakeFiles/example_polyethylene_scaling.dir/polyethylene_scaling.cpp.o.d"
  "example_polyethylene_scaling"
  "example_polyethylene_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_polyethylene_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
