# Empty compiler generated dependencies file for example_polyethylene_scaling.
# This may be replaced when dependencies are built.
