# Empty dependencies file for example_aeqp_run.
# This may be replaced when dependencies are built.
