file(REMOVE_RECURSE
  "CMakeFiles/example_aeqp_run.dir/aeqp_run.cpp.o"
  "CMakeFiles/example_aeqp_run.dir/aeqp_run.cpp.o.d"
  "example_aeqp_run"
  "example_aeqp_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_aeqp_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
