file(REMOVE_RECURSE
  "CMakeFiles/example_water_raman_spectrum.dir/water_raman_spectrum.cpp.o"
  "CMakeFiles/example_water_raman_spectrum.dir/water_raman_spectrum.cpp.o.d"
  "example_water_raman_spectrum"
  "example_water_raman_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_water_raman_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
