# Empty compiler generated dependencies file for example_water_raman_spectrum.
# This may be replaced when dependencies are built.
