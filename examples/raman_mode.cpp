// Raman activity of the H2 stretch mode.
//
// The paper's lineage is Raman simulation for biological systems (its
// ref. [37] accelerated all-electron ab initio Raman spectra); the Raman
// activity of a vibrational mode is governed by the derivative of the DFPT
// polarizability along the normal coordinate, d(alpha)/dQ. This example
// computes alpha(Q) with the DFPT solver at displaced geometries and
// differentiates numerically -- the exact workflow a Raman spectrum
// calculation repeats per mode.
//
//   ./example_raman_mode

#include <cmath>
#include <cstdio>

#include "common/error.hpp"
#include "core/dfpt.hpp"
#include "core/polarizability_invariants.hpp"
#include "grid/structure.hpp"
#include "scf/scf_solver.hpp"

namespace {

using namespace aeqp;

/// H2 at bond length r (bohr), centered at the origin along z.
grid::Structure h2_at(double r) {
  grid::Structure s;
  s.add_atom(1, {0, 0, -0.5 * r});
  s.add_atom(1, {0, 0, +0.5 * r});
  return s;
}

struct AlphaPair {
  double par;   // alpha_zz
  double perp;  // alpha_xx
};

AlphaPair polarizability_at(double bond) {
  scf::ScfOptions opt;
  opt.tier = basis::BasisTier::Light;
  opt.grid.radial_points = 40;
  opt.grid.angular_degree = 9;
  opt.poisson.radial_points = 80;
  opt.mixer = scf::Mixer::Diis;
  const scf::ScfResult ground = scf::ScfSolver(h2_at(bond), opt).run();
  if (!ground.converged) throw Error("SCF did not converge at r=" + std::to_string(bond));
  const core::DfptSolver dfpt(ground, {});
  return {dfpt.solve_direction(2).dipole_response.z,
          dfpt.solve_direction(0).dipole_response.x};
}

}  // namespace

int main() {
  const double r0 = 1.4;    // equilibrium bond length, bohr
  const double dq = 0.02;   // displacement along the stretch coordinate

  std::printf("H2 stretch mode: alpha(Q) around r0 = %.2f bohr\n", r0);
  const AlphaPair minus = polarizability_at(r0 - dq);
  const AlphaPair zero = polarizability_at(r0);
  const AlphaPair plus = polarizability_at(r0 + dq);

  std::printf("  r = %.3f: alpha_par = %8.4f, alpha_perp = %8.4f bohr^3\n",
              r0 - dq, minus.par, minus.perp);
  std::printf("  r = %.3f: alpha_par = %8.4f, alpha_perp = %8.4f bohr^3\n", r0,
              zero.par, zero.perp);
  std::printf("  r = %.3f: alpha_par = %8.4f, alpha_perp = %8.4f bohr^3\n",
              r0 + dq, plus.par, plus.perp);

  // Central differences assembled into the tensor derivative (axial
  // symmetry: xx = yy = perp, zz = par).
  const double da_par = (plus.par - minus.par) / (2.0 * dq);
  const double da_perp = (plus.perp - minus.perp) / (2.0 * dq);
  const core::Tensor3 da = {da_perp, 0, 0, 0, da_perp, 0, 0, 0, da_par};
  const double activity = core::raman_activity(da);

  std::printf("\n  d(alpha_par)/dQ  = %8.4f bohr^2\n", da_par);
  std::printf("  d(alpha_perp)/dQ = %8.4f bohr^2\n", da_perp);
  std::printf("  Raman activity (45 a'^2 + 7 g'^2) = %.3f bohr^4\n", activity);
  std::printf("\nA stretched bond must polarize more easily: d(alpha)/dQ > 0 "
              "-> %s\n", da_par > 0.0 ? "PASS" : "FAIL");
  return da_par > 0.0 ? 0 : 1;
}
