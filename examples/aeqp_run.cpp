// aeqp_run: command-line driver -- the library as a standalone tool.
//
// Usage:
//   ./example_aeqp_run <geometry.xyz> [options]
//     --tier minimal|light     basis tier (default light)
//     --no-dfpt                stop after the ground state
//     --diis                   use Pulay mixing
//     --sigma <hartree>        Fermi-Dirac smearing width
//     --cube <file>            write the ground density as a cube file
//     --builtin water|ch4|h2   use a built-in geometry instead of a file
//
// Example:
//   ./example_aeqp_run --builtin water --diis

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "core/cube.hpp"
#include "core/dfpt.hpp"
#include "core/structures.hpp"
#include "core/xyz.hpp"
#include "obs/report.hpp"
#include "scf/scf_solver.hpp"

namespace {

using namespace aeqp;

grid::Structure load_structure(const std::string& source, bool builtin) {
  if (builtin) {
    if (source == "water") return core::water();
    if (source == "ch4") return core::methane();
    if (source == "h2") {
      grid::Structure s;
      s.add_atom(1, {0, 0, -0.7});
      s.add_atom(1, {0, 0, 0.7});
      return s;
    }
    AEQP_THROW("unknown builtin geometry '" + source + "'");
  }
  std::ifstream in(source);
  AEQP_CHECK(in.good(), "cannot open geometry file '" + source + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return core::from_xyz(text.str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string source;
  bool builtin = false, run_dfpt = true;
  std::string cube_path;
  scf::ScfOptions opt;
  opt.grid.radial_points = 40;
  opt.grid.angular_degree = 9;
  opt.poisson.radial_points = 80;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        std::exit(2);
      }
      return std::string(argv[++i]);
    };
    if (arg == "--tier") {
      const std::string t = next("--tier");
      opt.tier = (t == "minimal") ? basis::BasisTier::Minimal
                                  : basis::BasisTier::Light;
    } else if (arg == "--no-dfpt") {
      run_dfpt = false;
    } else if (arg == "--diis") {
      opt.mixer = scf::Mixer::Diis;
    } else if (arg == "--sigma") {
      opt.smearing_sigma = std::stod(next("--sigma"));
    } else if (arg == "--cube") {
      cube_path = next("--cube");
    } else if (arg == "--builtin") {
      source = next("--builtin");
      builtin = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 2;
    } else {
      source = arg;
    }
  }
  if (source.empty()) {
    std::fprintf(stderr,
                 "usage: %s <geometry.xyz> | --builtin water|ch4|h2 "
                 "[--tier minimal|light] [--diis] [--sigma s] [--no-dfpt] "
                 "[--cube out.cube]\n",
                 argv[0]);
    return 2;
  }

  // Per-run profile (AEQP_TRACE=summary|full); no-op when tracing is off.
  const obs::ScopedRunProfile profile("aeqp_run " + source);
  try {
    const grid::Structure mol = load_structure(source, builtin);
    std::printf("atoms: %zu, electrons: %d\n", mol.size(), mol.total_charge());

    const scf::ScfResult ground = scf::ScfSolver(mol, opt).run();
    std::printf("scf: %s in %d iterations\n",
                ground.converged ? "converged" : "NOT CONVERGED",
                ground.iterations);
    if (!ground.converged) return 1;
    std::printf("total_energy_ha: %.8f\n", ground.total_energy);
    std::printf("homo_lumo_gap_ev: %.4f\n",
                (ground.lumo - ground.homo) * constants::hartree_to_ev);

    if (!cube_path.empty()) {
      const auto& basis = *ground.basis;
      const auto& p = ground.density_matrix;
      const auto field = [&](const Vec3& r) {
        basis::PointEval ev;
        basis.evaluate(r, false, ev);
        double n = 0.0;
        for (std::size_t i = 0; i < ev.indices.size(); ++i)
          for (std::size_t j = 0; j < ev.indices.size(); ++j)
            n += p(ev.indices[i], ev.indices[j]) * ev.values[i] * ev.values[j];
        return n;
      };
      std::ofstream out(cube_path);
      out << core::to_cube(mol, field, {}, "AEQP ground-state density");
      std::printf("density_cube: %s\n", cube_path.c_str());
    }

    if (run_dfpt) {
      const core::DfptSolver dfpt(ground, {});
      const core::DfptResult r = dfpt.solve_all();
      std::printf("polarizability_bohr3:\n");
      for (int i = 0; i < 3; ++i)
        std::printf("  %12.6f %12.6f %12.6f\n", r.polarizability(i, 0),
                    r.polarizability(i, 1), r.polarizability(i, 2));
      std::printf("isotropic_polarizability_bohr3: %.6f\n",
                  r.isotropic_polarizability());
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
