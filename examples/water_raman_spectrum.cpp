// Full ab initio Raman workflow for water -- the end-to-end pipeline the
// paper's lineage targets (ref. [37]: all-electron Raman spectra for
// biological systems):
//
//   1. finite-difference energy Hessian  -> harmonic normal modes
//   2. DFPT polarizabilities at +-dQ along each mode -> d(alpha)/dQ
//   3. Raman activity invariants 45 a'^2 + 7 gamma'^2 per mode
//
// Takes about a minute at the coarse settings used here.
//
//   ./example_water_raman_spectrum

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "core/dfpt.hpp"
#include "core/polarizability_invariants.hpp"
#include "core/spectrum.hpp"
#include "core/structures.hpp"
#include "core/vibrations.hpp"
#include "scf/scf_solver.hpp"

namespace {

using namespace aeqp;
using namespace aeqp::core;

scf::ScfOptions scf_options() {
  scf::ScfOptions opt;
  opt.tier = basis::BasisTier::Light;  // polarization functions keep the
                                       // bend potential physical
  opt.grid.radial_points = 36;
  opt.grid.angular_degree = 9;
  opt.poisson.radial_points = 72;
  opt.density_tolerance = 1e-8;
  opt.max_iterations = 200;
  opt.mixer = scf::Mixer::Diis;
  return opt;
}

/// Polarizability tensor at a displaced geometry (light basis for the
/// response; the p functions matter for alpha even when the Hessian is
/// converged with the minimal set).
std::array<double, 9> alpha_at(const grid::Structure& s) {
  scf::ScfOptions opt = scf_options();
  opt.tier = basis::BasisTier::Light;
  opt.mixer = scf::Mixer::Diis;
  const auto ground = scf::ScfSolver(s, opt).run();
  if (!ground.converged) throw Error("alpha_at: SCF not converged");
  const DfptSolver dfpt(ground, {});
  const DfptResult r = dfpt.solve_all();
  std::array<double, 9> a{};
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      a[static_cast<std::size_t>(3 * i + j)] = r.polarizability(i, j);
  return a;
}

grid::Structure displace_along(const grid::Structure& s,
                               const linalg::Matrix& modes, std::size_t col,
                               double dq) {
  std::vector<grid::Atom> atoms = s.atoms();
  for (std::size_t k = 0; k < 3 * atoms.size(); ++k)
    atoms[k / 3].pos[static_cast<int>(k % 3)] += dq * modes(k, col);
  return grid::Structure(atoms);
}

}  // namespace

namespace {

/// C2v water with bond length r (bohr) and HOH angle (degrees).
grid::Structure water_geometry(double r, double angle_deg) {
  grid::Structure s;
  const double half = 0.5 * angle_deg * constants::pi / 180.0;
  s.add_atom(8, {0.0, 0.0, 0.0});
  s.add_atom(1, {0.0, r * std::sin(half), r * std::cos(half)});
  s.add_atom(1, {0.0, -r * std::sin(half), r * std::cos(half)});
  return s;
}

double energy_of(double r, double angle_deg) {
  const auto res = scf::ScfSolver(water_geometry(r, angle_deg), scf_options()).run();
  if (!res.converged) throw Error("geometry scan: SCF not converged");
  return res.total_energy;
}

}  // namespace

int main() {
  // Step 0: relax the two symmetry-unique parameters on this basis's own
  // potential surface, so the Hessian is evaluated at a true minimum
  // (otherwise soft modes turn imaginary).
  std::printf("Step 0: relaxing r(OH) and the HOH angle (coordinate "
              "descent)...\n");
  double r = 1.85, angle = 104.5;
  // Robust shrinking-step descent on each parameter in turn: only ever move
  // downhill, halve the step when bracketed.
  auto relax = [&](double& x, double step, double step_min, bool is_r) {
    while (step >= step_min) {
      const double e0 = energy_of(r, angle);
      const double saved = x;
      x = saved + step;
      const double ep = energy_of(r, angle);
      x = saved - step;
      const double em = energy_of(r, angle);
      x = saved;
      if (ep < e0 - 1e-9 && ep <= em)
        x = saved + step;
      else if (em < e0 - 1e-9)
        x = saved - step;
      else
        step *= 0.5;
      (void)is_r;
    }
  };
  for (int sweep = 0; sweep < 2; ++sweep) {
    relax(r, 0.06, 0.01, true);
    relax(angle, 3.0, 0.5, false);
  }
  std::printf("  relaxed: r(OH) = %.4f bohr, angle = %.2f deg\n", r, angle);
  const grid::Structure h2o = water_geometry(r, angle);

  std::printf("Step 1: 9x9 finite-difference Hessian of H2O "
              "(~90 SCF runs)...\n");
  HessianOptions hopt;
  hopt.scf = scf_options();
  const auto hess = energy_hessian(h2o, hopt);
  const auto modes = harmonic_analysis(h2o, hess);

  // The three hardest modes are the vibrations (bend + two stretches).
  std::vector<std::size_t> order(9);
  for (std::size_t i = 0; i < 9; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return std::fabs(modes.frequencies_cm[a]) > std::fabs(modes.frequencies_cm[b]);
  });

  std::printf("Step 2: DFPT polarizability derivatives along each mode...\n");
  std::printf("\n  %-10s %-14s %-14s\n", "mode", "freq (cm^-1)",
              "Raman activity");
  const double dq = 0.05;
  std::vector<SpectralLine> sticks;
  for (int m = 0; m < 3; ++m) {
    const std::size_t col = order[static_cast<std::size_t>(m)];
    // Normalize the Cartesian mode vector for a well-defined step.
    double norm = 0.0;
    for (std::size_t k = 0; k < 9; ++k)
      norm += modes.cartesian_modes(k, col) * modes.cartesian_modes(k, col);
    norm = std::sqrt(norm);
    linalg::Matrix unit = modes.cartesian_modes;
    for (std::size_t k = 0; k < 9; ++k) unit(k, col) /= norm;

    const auto ap = alpha_at(displace_along(h2o, unit, col, +dq));
    const auto am = alpha_at(displace_along(h2o, unit, col, -dq));
    Tensor3 da{};
    for (std::size_t k = 0; k < 9; ++k) da[k] = (ap[k] - am[k]) / (2.0 * dq);

    std::printf("  #%-9d %-14.1f %-14.3f\n", m + 1, modes.frequencies_cm[col],
                raman_activity(da));
    if (modes.frequencies_cm[col] > 0)
      sticks.push_back({modes.frequencies_cm[col], raman_activity(da)});
  }

  // Step 3: broadened spectrum and peak list.
  if (!sticks.empty()) {
    const auto spec = lorentzian_spectrum(sticks, 500.0, 9000.0, 1701, 40.0);
    std::printf("\nBroadened Raman spectrum peaks (Lorentzian, HWHM 40 "
                "cm^-1):\n");
    for (auto i : find_peaks(spec))
      std::printf("  %7.0f cm^-1  intensity %8.2f\n", spec.frequency_at(i),
                  spec.intensity[i]);
  }
  std::printf(
      "\n(Water reference: bend ~1600 cm^-1, stretches ~3700-3900 cm^-1, with "
      "the symmetric\n stretch carrying the strongest Raman activity. The "
      "compact STO basis used here\n overbinds, stiffening all frequencies by "
      "~1.5-2x; the mode ordering, the real\n (non-imaginary) spectrum at the "
      "relaxed geometry, and the activity ranking are\n the quantities this "
      "example validates.)\n");
  return 0;
}
