// Scaling workflow on polyethylene chains H(C2H4)nH -- the paper's scaling
// workload (Sec. 5.3) at laptop scale, plus model extrapolation to the two
// supercomputers.
//
// Demonstrates: structure generation, batch formation (grid-adapted
// cut-plane), the two task-mapping strategies, per-rank Hamiltonian memory
// analysis, and the calibrated performance model projecting strong/weak
// scaling at figure-scale rank counts.
//
//   ./example_polyethylene_scaling [n_monomers]

#include <cstdio>
#include <cstdlib>

#include "basis/element.hpp"
#include "core/structures.hpp"
#include "grid/batch.hpp"
#include "mapping/hamiltonian_analysis.hpp"
#include "mapping/synthetic_points.hpp"
#include "mapping/task_mapping.hpp"
#include "parallel/machine_model.hpp"
#include "perfmodel/dfpt_perf_model.hpp"
#include "simt/device.hpp"

int main(int argc, char** argv) {
  using namespace aeqp;

  std::size_t n = 200;
  if (argc > 1) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(argv[1], &end, 10);
    if (end == argv[1] || *end != '\0' || parsed == 0) {
      std::fprintf(stderr, "usage: %s [n_monomers >= 1]\n", argv[0]);
      return 2;
    }
    n = parsed;
  }
  const grid::Structure chain = core::polyethylene_chain(n);
  std::printf("H(C2H4)%zuH: %zu atoms\n", n, chain.size());

  // Grid points and batches.
  const auto cloud = mapping::synthetic_point_cloud(chain, 48);
  const auto batches = grid::make_batches(cloud.positions, cloud.parent_atom, 128);
  std::printf("Grid: %zu points in %zu batches\n", cloud.positions.size(),
              batches.size());

  // Compare the two task-mapping strategies on 32 ranks.
  const std::size_t ranks = 32;
  const auto legacy = mapping::least_loaded_mapping(batches, ranks);
  const auto local = mapping::locality_enhancing_mapping(batches, ranks);
  std::printf("\nTask mapping on %zu ranks:\n", ranks);
  std::printf("  load imbalance:     legacy %.3f, locality %.3f\n",
              mapping::load_imbalance(legacy, batches),
              mapping::load_imbalance(local, batches));
  std::printf("  mean rank spread:   legacy %.2f bohr, locality %.2f bohr\n",
              mapping::mean_rank_spread(legacy, batches),
              mapping::mean_rank_spread(local, batches));

  const auto counts = mapping::basis_function_counts(chain, basis::BasisTier::Light);
  const auto mem =
      mapping::hamiltonian_memory(chain, counts, 14.0, 7.0, local, batches);
  std::printf("  Hamiltonian memory: global sparse %.1f KB/rank, local dense "
              "%.1f KB/rank avg (%.0fx saving)\n",
              mem.existing_bytes_per_rank / 1024.0, mem.proposed_mean() / 1024.0,
              mem.existing_bytes_per_rank / mem.proposed_mean());

  // Model extrapolation to the paper's machines.
  const perfmodel::DfptPerfModel hpc2(parallel::MachineModel::hpc2_amd(),
                                      simt::DeviceModel::gcn_gpu(), true);
  const auto flags = perfmodel::OptimizationFlags::all_on();
  std::printf("\nProjected DFPT cycle times on HPC#2 (GPUs):\n");
  for (std::size_t monomers : {5000u, 10000u, 19600u, 33335u}) {
    const std::size_t atoms = 6 * monomers + 2;
    const std::size_t p = atoms / 15;  // ~15 atoms per rank
    const auto t = hpc2.predict(atoms, p, flags);
    std::printf("  %7zu atoms on %6zu ranks: %7.2f s/cycle "
                "(DM %4.1f%%, Rho %4.1f%%, comm %4.1f%%)\n",
                atoms, p, t.total(), 100.0 * t.dm / t.total(),
                100.0 * t.rho / t.total(), 100.0 * t.comm / t.total());
  }
  return 0;
}
