// Distributed DFPT demo: the paper's parallel decomposition running on the
// simulated MPI cluster -- locality-mapped grid batches, distributed
// Sumup/H phases, replicated Poisson producers, packed hierarchical
// synthesis of the response Hamiltonian -- checked against the serial
// solver.
//
//   ./example_distributed_dfpt
//
// Profiling: AEQP_TRACE=summary prints the per-phase report on exit;
// AEQP_TRACE=full additionally writes trace.json (chrome://tracing /
// Perfetto) with one lane per simulated rank. See docs/observability.md.

#include <cmath>
#include <cstdio>

#include "core/dfpt.hpp"
#include "core/parallel_dfpt.hpp"
#include "core/structures.hpp"
#include "obs/report.hpp"
#include "scf/scf_solver.hpp"

int main() {
  using namespace aeqp;
  obs::ScopedRunProfile profile("distributed_dfpt example");

  const grid::Structure h2o = core::water();
  scf::ScfOptions opt;
  opt.tier = basis::BasisTier::Light;
  opt.grid.radial_points = 36;
  opt.grid.angular_degree = 9;
  opt.poisson.radial_points = 72;
  opt.mixer = scf::Mixer::Diis;

  std::printf("Ground-state SCF for H2O...\n");
  const scf::ScfResult ground = scf::ScfSolver(h2o, opt).run();
  if (!ground.converged) {
    std::printf("SCF failed to converge\n");
    return 1;
  }

  std::printf("Serial DFPT (z direction)...\n");
  const core::DfptSolver serial(ground, {});
  const auto ref = serial.solve_direction(2);
  std::printf("  alpha_zz = %.6f bohr^3 in %d iterations\n",
              ref.dipole_response.z, ref.iterations);

  core::ParallelDfptOptions popt;
  popt.ranks = 8;
  popt.ranks_per_node = 4;
  popt.reduce_mode = comm::ReduceMode::Hierarchical;
  popt.batch_points = 96;
  std::printf("Distributed DFPT on %zu simulated ranks (%zu/node, packed "
              "hierarchical reduce)...\n",
              popt.ranks, popt.ranks_per_node);
  const auto par = core::solve_direction_parallel(ground, popt, 2);
  const auto par_metrics = core::register_metrics(par.stats);

  std::printf("  alpha_zz = %.6f bohr^3 in %d iterations\n",
              par.direction.dipole_response.z, par.direction.iterations);
  std::printf("  batches: %zu, load (max/mean points): %.2f\n",
              par.stats.batches, par.stats.max_rank_points_share);
  std::printf("  packed collectives per rank: %zu (synthesizing %zu matrix "
              "rows)\n",
              par.stats.collectives, par.stats.rows_reduced);

  const double diff =
      std::fabs(par.direction.dipole_response.z - ref.dipole_response.z);
  std::printf("  |serial - distributed| = %.2e  -> %s\n", diff,
              diff < 1e-7 ? "PASS" : "FAIL");
  // Emit the report while the run-stats metrics source is still registered
  // (it deregisters when par_metrics goes out of scope).
  profile.finish();
  return diff < 1e-7 ? 0 : 1;
}
