// Validation example: DFPT polarizability of methane cross-checked against
// finite-difference SCF, the repository's strongest end-to-end property
// (DESIGN.md item 5). CH4 is isotropic by symmetry, so the tensor must be
// ~diagonal with equal entries, and the DFPT value must match the numeric
// dipole derivative d mu / d xi.
//
//   ./example_methane_validation

#include <cmath>
#include <cstdio>

#include "core/dfpt.hpp"
#include "core/structures.hpp"
#include "scf/scf_solver.hpp"

int main() {
  using namespace aeqp;

  const grid::Structure ch4 = core::methane();
  std::printf("System: CH4, %zu atoms, %d electrons\n", ch4.size(),
              ch4.total_charge());

  scf::ScfOptions opt;
  opt.tier = basis::BasisTier::Light;
  opt.grid.radial_points = 36;
  opt.grid.angular_degree = 9;
  opt.poisson.l_max = 4;
  opt.poisson.radial_points = 72;

  std::printf("Ground-state SCF...\n");
  const scf::ScfResult ground = scf::ScfSolver(ch4, opt).run();
  std::printf("  converged=%s  E=%.6f Ha  gap=%.4f Ha\n",
              ground.converged ? "yes" : "NO", ground.total_energy,
              ground.lumo - ground.homo);
  if (!ground.converged) return 1;

  std::printf("DFPT along z...\n");
  const core::DfptSolver dfpt(ground, {});
  const auto rz = dfpt.solve_direction(2);
  std::printf("  alpha_zz (DFPT)              = %.4f bohr^3 (%d iterations)\n",
              rz.dipole_response.z, rz.iterations);

  // Finite-difference reference: two field-perturbed SCF runs.
  const double xi = 2e-3;
  auto opt_p = opt, opt_m = opt;
  opt_p.external_field = {0, 0, +xi};
  opt_m.external_field = {0, 0, -xi};
  std::printf("Finite-difference SCF at xi = +/-%.0e...\n", xi);
  const auto rp = scf::ScfSolver(ch4, opt_p).run();
  const auto rm = scf::ScfSolver(ch4, opt_m).run();
  const double alpha_fd = (rp.dipole.z - rm.dipole.z) / (2.0 * xi);
  std::printf("  alpha_zz (finite difference) = %.4f bohr^3\n", alpha_fd);

  const double rel = std::fabs(rz.dipole_response.z - alpha_fd) /
                     std::fabs(alpha_fd);
  std::printf("  relative deviation           = %.3f%%  -> %s\n", 100.0 * rel,
              rel < 0.02 ? "PASS" : "FAIL");

  // Isotropy check.
  const auto rx = dfpt.solve_direction(0);
  std::printf("  alpha_xx = %.4f, alpha_zz = %.4f (isotropic molecule)\n",
              rx.dipole_response.x, rz.dipole_response.z);
  return rel < 0.02 ? 0 : 1;
}
