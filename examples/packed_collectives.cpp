// Communication substrate demo: run the simulated MPI cluster (simmpi) and
// synthesize rho_multipole-style rows three ways -- per-row baseline,
// packed, and packed hierarchical (paper Sec. 3.2) -- verifying that all
// three produce identical results while the packed schemes collapse the
// number of collective invocations.
//
//   ./example_packed_collectives

#include <cmath>
#include <cstdio>
#include <vector>

#include "comm/hierarchical.hpp"
#include "comm/packed.hpp"
#include "common/rng.hpp"
#include "parallel/cluster.hpp"
#include "parallel/machine_model.hpp"

int main() {
  using namespace aeqp;

  const std::size_t ranks = 16, per_node = 4, rows = 200, row_len = 128;
  parallel::Cluster cluster(ranks, per_node);
  std::printf("simmpi cluster: %zu ranks on %zu nodes (%zu ranks/node)\n",
              ranks, cluster.node_count(), per_node);

  std::vector<double> checksum(3, 0.0);
  std::vector<std::size_t> collectives(3, 0);

  cluster.run([&](parallel::Communicator& c) {
    auto make_rows = [&] {
      Rng rng(17 + c.rank());
      std::vector<std::vector<double>> data(rows, std::vector<double>(row_len));
      for (auto& r : data)
        for (auto& v : r) v = rng.uniform(-1, 1);
      return data;
    };
    auto sum_all = [&](const std::vector<std::vector<double>>& data) {
      double s = 0.0;
      for (const auto& r : data)
        for (double v : r) s += v;
      return s;
    };

    {  // Baseline: one AllReduce per row.
      auto data = make_rows();
      for (auto& r : data) c.allreduce_sum(r);
      if (c.rank() == 0) {
        checksum[0] = sum_all(data);
        collectives[0] = rows;
      }
    }
    {  // Packed: rows staged into 30 MB windows.
      auto data = make_rows();
      comm::PackedAllReducer packer(c, comm::ReduceMode::Flat,
                                    /*max_bytes=*/50 * row_len * sizeof(double));
      for (auto& r : data) packer.add(r);
      packer.flush();
      if (c.rank() == 0) {
        checksum[1] = sum_all(data);
        collectives[1] = packer.collective_count();
      }
    }
    {  // Packed hierarchical: node-shared copy + leader AllReduce.
      auto data = make_rows();
      comm::PackedAllReducer packer(c, comm::ReduceMode::Hierarchical,
                                    /*max_bytes=*/50 * row_len * sizeof(double));
      for (auto& r : data) packer.add(r);
      packer.flush();
      if (c.rank() == 0) {
        checksum[2] = sum_all(data);
        collectives[2] = packer.collective_count();
      }
    }
  });

  std::printf("  baseline:            %4zu collectives, checksum %.10f\n",
              collectives[0], checksum[0]);
  std::printf("  packed:              %4zu collectives, checksum %.10f\n",
              collectives[1], checksum[1]);
  std::printf("  packed hierarchical: %4zu collectives, checksum %.10f\n",
              collectives[2], checksum[2]);
  const bool ok = std::fabs(checksum[0] - checksum[1]) < 1e-9 &&
                  std::fabs(checksum[0] - checksum[2]) < 1e-9;
  std::printf("  results identical: %s\n", ok ? "yes" : "NO");

  // Projected cost of the same pattern at figure scale.
  const parallel::CommCostModel model(parallel::MachineModel::hpc2_amd());
  const std::size_t big_rows = 30002, row_bytes = 16384, pack = 512;
  for (std::size_t p : {1024u, 4096u}) {
    const double base = model.repeated_allreduce_seconds(row_bytes, big_rows, p);
    const double packed =
        static_cast<double>((big_rows + pack - 1) / pack) *
        model.packed_allreduce_seconds(row_bytes, pack, p);
    std::printf("  projected on HPC#2, %5zu ranks: baseline %.2f s -> packed "
                "%.3f s (%.0fx)\n",
                p, base, packed, base / packed);
  }
  return ok ? 0 : 1;
}
