// Quickstart: all-electron DFPT polarizability of a water molecule.
//
// This is the library's end-to-end "hello world": build a structure, run
// the ground-state Kohn-Sham SCF (the DFT phase of paper Fig. 1), then run
// the DFPT self-consistency cycle (DM -> Sumup -> Rho -> H) for all three
// field directions and print the polarizability tensor of Eq. (13).
//
//   ./example_quickstart
//
// Profiling: AEQP_TRACE=summary prints the per-phase report on exit;
// AEQP_TRACE=full additionally writes trace.json. See docs/observability.md.

#include <cstdio>

#include "common/constants.hpp"
#include "core/dfpt.hpp"
#include "core/structures.hpp"
#include "obs/report.hpp"
#include "scf/scf_solver.hpp"

int main() {
  using namespace aeqp;
  const obs::ScopedRunProfile profile("quickstart example");

  const grid::Structure h2o = core::water();
  std::printf("System: H2O, %zu atoms, %d electrons\n", h2o.size(),
              h2o.total_charge());

  // Light settings (paper Sec. 5.1): light basis tier + LDA.
  scf::ScfOptions opt;
  opt.tier = basis::BasisTier::Light;
  opt.grid.radial_points = 40;
  opt.grid.angular_degree = 9;
  opt.poisson.l_max = 4;
  opt.poisson.radial_points = 80;
  opt.verbose = false;

  std::printf("Running ground-state SCF...\n");
  const scf::ScfResult ground = scf::ScfSolver(h2o, opt).run();
  std::printf("  converged: %s in %d iterations\n",
              ground.converged ? "yes" : "NO", ground.iterations);
  std::printf("  total energy:   %12.6f Ha\n", ground.total_energy);
  std::printf("  HOMO / LUMO:    %8.4f / %8.4f Ha (gap %.3f eV)\n", ground.homo,
              ground.lumo,
              (ground.lumo - ground.homo) * constants::hartree_to_ev);
  std::printf("  dipole moment:  (%.4f, %.4f, %.4f) e*bohr\n", ground.dipole.x,
              ground.dipole.y, ground.dipole.z);

  std::printf("Running DFPT (quantum perturbation cycle) for E-field "
              "perturbations...\n");
  core::DfptOptions dopt;
  dopt.tolerance = 1e-7;
  const core::DfptSolver dfpt(ground, dopt);
  const core::DfptResult result = dfpt.solve_all();

  std::printf("\nPolarizability tensor alpha_IJ (bohr^3):\n");
  for (int i = 0; i < 3; ++i)
    std::printf("  [ %9.4f %9.4f %9.4f ]\n", result.polarizability(i, 0),
                result.polarizability(i, 1), result.polarizability(i, 2));
  std::printf("Isotropic polarizability: %.4f bohr^3 (%.4f angstrom^3)\n",
              result.isotropic_polarizability(),
              result.isotropic_polarizability() * constants::bohr3_to_angstrom3);

  std::printf("\nPer-phase DFPT time (all directions):\n");
  for (const auto& [phase, sec] : result.total_phase_seconds())
    std::printf("  %-12s %8.3f s\n", core::phase_name(phase).c_str(), sec);
  return 0;
}
