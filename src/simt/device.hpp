#pragma once

/// \file device.hpp
/// Device models for the two accelerator architectures of the paper's
/// evaluation (Sec. 5.1): the SW39010 heterogeneous many-core CPU (HPC#1)
/// and an AMD GCN GPU (HPC#2, MI50-class). The SIMT runtime executes
/// kernels on the host for correctness and *counts* architectural events
/// (launches, off-chip traffic, dependent accesses, host transfers,
/// wavefront steps); these models convert the counts into seconds on each
/// target, which is how the portability figures are reproduced without the
/// hardware (DESIGN.md substitution table).

#include <cstddef>
#include <string>

namespace aeqp::simt {

/// Architectural parameters of one accelerator.
struct DeviceModel {
  std::string name;
  std::size_t onchip_bytes = 0;       ///< __local / LDM capacity per group
  std::size_t rma_limit_bytes = 0;    ///< on-chip RMA transfer cap (0 = none)
  std::size_t wavefront = 1;          ///< SIMT lanes executing in lockstep
  std::size_t compute_units = 1;      ///< parallel work-group slots
  double launch_overhead = 0.0;       ///< seconds per kernel launch
  double offchip_bandwidth = 1.0;     ///< bytes/s streaming
  double dependent_access_cost = 0.0; ///< s per serialized (pointer-chase) access
  double flop_time = 0.0;             ///< seconds per floating-point op
  double host_transfer_bandwidth = 0.0;  ///< host<->device bytes/s (0 = n/a)
  bool persistent_device_buffers = false;  ///< data may stay resident (GPU)
  bool has_rma = false;               ///< on-chip RMA between cores (Sunway)

  /// SW39010: 384 accelerating cores, 64 KB scratchpad per core, RMA up to
  /// 64 KB between neighbouring cores, long off-chip latency (Sec. 5.2.4).
  static DeviceModel sw39010();

  /// AMD GCN GPU (MI50-class): 64 CUs x 64 lanes, device-resident HBM,
  /// PCIe host link, no inter-group RMA.
  static DeviceModel gcn_gpu();
};

/// Event counters accumulated while kernels execute on the host.
struct KernelStats {
  std::size_t launches = 0;
  std::size_t work_items = 0;
  std::size_t offchip_read_bytes = 0;
  std::size_t offchip_write_bytes = 0;
  std::size_t dependent_accesses = 0;  ///< serialized A[B[i]]-style reads
  std::size_t flops = 0;
  std::size_t barriers = 0;
  std::size_t host_transfer_bytes = 0;  ///< host<->device copies
  std::size_t wavefront_steps = 0;      ///< lockstep issue slots consumed

  KernelStats& operator+=(const KernelStats& o);

  /// Projected execution time on a device.
  [[nodiscard]] double modeled_seconds(const DeviceModel& d) const;

  void reset() { *this = KernelStats{}; }
};

}  // namespace aeqp::simt
