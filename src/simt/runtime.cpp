#include "simt/runtime.hpp"

namespace aeqp::simt {

double GlobalBuffer::load(std::size_t i) const {
  AEQP_ASSERT(i < data_.size());
  rt_->stats_.offchip_read_bytes += sizeof(double);
  return data_[i];
}

double GlobalBuffer::load_dependent(std::size_t i) const {
  AEQP_ASSERT(i < data_.size());
  rt_->stats_.offchip_read_bytes += sizeof(double);
  rt_->stats_.dependent_accesses += 1;
  return data_[i];
}

void GlobalBuffer::store(std::size_t i, double v) {
  AEQP_ASSERT(i < data_.size());
  rt_->stats_.offchip_write_bytes += sizeof(double);
  data_[i] = v;
}

std::span<double> WorkGroup::local_mem(std::size_t doubles) {
  AEQP_CHECK(doubles * sizeof(double) <= rt_->model_.onchip_bytes,
             "WorkGroup::local_mem: request exceeds on-chip capacity");
  local_.assign(doubles, 0.0);
  return local_;
}

void WorkGroup::barrier() { rt_->stats_.barriers += 1; }

void WorkGroup::issue_simt(std::size_t active_lanes, std::size_t bundles) {
  const std::size_t wf = rt_->model_.wavefront;
  const std::size_t steps = (active_lanes + wf - 1) / wf;
  rt_->stats_.wavefront_steps += steps * bundles;
}

void WorkGroup::flops(std::size_t n) { rt_->stats_.flops += n; }

void SimtRuntime::launch(std::size_t n_groups, std::size_t group_size,
                         const std::function<void(WorkGroup&)>& body) {
  AEQP_CHECK(group_size >= 1, "SimtRuntime::launch: empty work-group");
  stats_.launches += 1;
  stats_.work_items += n_groups * group_size;
  for (std::size_t g = 0; g < n_groups; ++g) {
    WorkGroup wg(*this, g, group_size);
    body(wg);
  }
}

}  // namespace aeqp::simt
