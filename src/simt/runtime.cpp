#include "simt/runtime.hpp"

namespace aeqp::simt {

namespace detail {
namespace {
thread_local KernelStats* tl_shard = nullptr;
}  // namespace

KernelStats* active_shard() { return tl_shard; }

ScopedStatsShard::ScopedStatsShard(KernelStats* shard) : prev_(tl_shard) {
  tl_shard = shard;
}

ScopedStatsShard::~ScopedStatsShard() { tl_shard = prev_; }
}  // namespace detail

double GlobalBuffer::load(std::size_t i) const {
  AEQP_ASSERT(i < data_.size());
  rt_->stats().offchip_read_bytes += sizeof(double);
  return data_[i];
}

double GlobalBuffer::load_dependent(std::size_t i) const {
  AEQP_ASSERT(i < data_.size());
  KernelStats& s = rt_->stats();
  s.offchip_read_bytes += sizeof(double);
  s.dependent_accesses += 1;
  return data_[i];
}

void GlobalBuffer::store(std::size_t i, double v) {
  AEQP_ASSERT(i < data_.size());
  rt_->stats().offchip_write_bytes += sizeof(double);
  data_[i] = v;
}

std::span<double> WorkGroup::local_mem(std::size_t doubles) {
  AEQP_CHECK(doubles * sizeof(double) <= rt_->model_.onchip_bytes,
             "WorkGroup::local_mem: request exceeds on-chip capacity");
  local_.assign(doubles, 0.0);
  return local_;
}

void WorkGroup::barrier() { rt_->stats().barriers += 1; }

void WorkGroup::issue_simt(std::size_t active_lanes, std::size_t bundles) {
  const std::size_t wf = rt_->model_.wavefront;
  const std::size_t steps = (active_lanes + wf - 1) / wf;
  rt_->stats().wavefront_steps += steps * bundles;
}

void WorkGroup::flops(std::size_t n) { rt_->stats().flops += n; }

obs::ScopedMetricsSource register_metrics(const SimtRuntime& rt,
                                          std::string prefix) {
  return obs::ScopedMetricsSource(
      [&rt, prefix = std::move(prefix)](std::vector<obs::MetricSample>& out) {
        const KernelStats& s = rt.stats();
        const auto push = [&](const char* name, double v) {
          out.push_back({prefix + "/" + name, v});
        };
        push("launches", static_cast<double>(s.launches));
        push("work_items", static_cast<double>(s.work_items));
        push("offchip_read_bytes", static_cast<double>(s.offchip_read_bytes));
        push("offchip_write_bytes", static_cast<double>(s.offchip_write_bytes));
        push("dependent_accesses", static_cast<double>(s.dependent_accesses));
        push("flops", static_cast<double>(s.flops));
        push("barriers", static_cast<double>(s.barriers));
        push("host_transfer_bytes",
             static_cast<double>(s.host_transfer_bytes));
        push("wavefront_steps", static_cast<double>(s.wavefront_steps));
        push("modeled_seconds", rt.modeled_seconds());
      });
}

}  // namespace aeqp::simt
