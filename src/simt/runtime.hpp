#pragma once

/// \file runtime.hpp
/// Host-executed OpenCL-style kernel runtime (paper Sec. 4.1).
///
/// The execution model mirrors OpenCL: an NDRange of work-groups, each made
/// of work-items; per-group __local scratch; barriers only within a group.
/// Kernels run on the host (sequentially per group, preserving barrier
/// semantics for group-phased code) and produce real numerical results,
/// while every architectural event is counted in KernelStats so the device
/// models can project execution time on SW39010 / GCN hardware.
///
/// Work-groups are independent by construction (the OpenCL contract), so
/// `launch` dispatches them across the exec thread pool. Each group charges
/// its events to a private KernelStats shard; shards merge into the
/// runtime's totals in group order after the join, so counters are
/// bit-identical to a serial launch for every thread count. Kernel bodies
/// must only write group-disjoint global data (batch-owned grid points,
/// per-center rows, ...) -- shared-output kernels stage per-group blocks
/// and flush them in group order after the launch returns (see
/// kernels::h_kernel).

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "simt/device.hpp"

namespace aeqp::simt {

class SimtRuntime;

namespace detail {
/// The KernelStats shard the current thread charges to (null outside a
/// parallel launch; the runtime then charges its own totals directly).
[[nodiscard]] KernelStats* active_shard();

/// RAII switch of the current thread's stats shard.
class ScopedStatsShard {
public:
  explicit ScopedStatsShard(KernelStats* shard);
  ~ScopedStatsShard();
  ScopedStatsShard(const ScopedStatsShard&) = delete;
  ScopedStatsShard& operator=(const ScopedStatsShard&) = delete;

private:
  KernelStats* prev_;
};
}  // namespace detail

/// A __global buffer whose accesses are charged to the runtime's counters.
/// Wraps caller-owned storage; loads/stores move real data.
class GlobalBuffer {
public:
  GlobalBuffer(SimtRuntime& rt, std::span<double> storage)
      : rt_(&rt), data_(storage) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }

  /// Streaming (coalesced) read.
  [[nodiscard]] double load(std::size_t i) const;

  /// Dependent (pointer-chase) read, e.g. the A[B[i]] pattern of Sec. 4.3;
  /// counted separately because latency cannot be hidden.
  [[nodiscard]] double load_dependent(std::size_t i) const;

  /// Streaming write.
  void store(std::size_t i, double v);

private:
  SimtRuntime* rt_;
  std::span<double> data_;
};

/// Handle passed to kernel bodies; one per work-group execution.
class WorkGroup {
public:
  [[nodiscard]] std::size_t group_id() const { return group_id_; }
  [[nodiscard]] std::size_t group_size() const { return group_size_; }

  /// __local scratch shared by the group's items (allocated per group,
  /// bounded by the device's on-chip capacity).
  [[nodiscard]] std::span<double> local_mem(std::size_t doubles);

  /// Work-group barrier (counted; sequential host execution makes the
  /// ordering trivially correct for group-phased kernels).
  void barrier();

  /// Record `n` lanes of SIMT work: consumes ceil(n / wavefront) issue
  /// steps per instruction bundle, the quantity fine-grained parallelism
  /// (Sec. 4.4) improves.
  void issue_simt(std::size_t active_lanes, std::size_t bundles = 1);

  /// Charge floating-point work.
  void flops(std::size_t n);

private:
  friend class SimtRuntime;
  WorkGroup(SimtRuntime& rt, std::size_t id, std::size_t size)
      : rt_(&rt), group_id_(id), group_size_(size) {}
  SimtRuntime* rt_;
  std::size_t group_id_;
  std::size_t group_size_;
  std::vector<double> local_;
};

/// The device runtime: executes kernels, owns the counters.
class SimtRuntime {
public:
  explicit SimtRuntime(DeviceModel model) : model_(std::move(model)) {}

  [[nodiscard]] const DeviceModel& model() const { return model_; }
  /// Inside a parallel launch this is the calling group's private shard;
  /// everywhere else it is the runtime's accumulated totals.
  [[nodiscard]] KernelStats& stats() {
    KernelStats* shard = detail::active_shard();
    return shard ? *shard : stats_;
  }
  [[nodiscard]] const KernelStats& stats() const { return stats_; }

  /// Wrap host storage as a __global buffer.
  [[nodiscard]] GlobalBuffer bind(std::span<double> storage) {
    return GlobalBuffer(*this, storage);
  }

  /// Launch a kernel: `body` runs once per work-group and loops its items
  /// internally (the idiom the paper's group-phased kernels use). The body
  /// is a template parameter -- no per-group std::function dispatch on the
  /// hot path. Groups run across the exec pool; per-group stat shards merge
  /// in group order, keeping the counters identical to a serial launch.
  template <typename Body>
  void launch(std::size_t n_groups, std::size_t group_size, Body&& body) {
    AEQP_CHECK(group_size >= 1, "SimtRuntime::launch: empty work-group");
    stats_.launches += 1;
    stats_.work_items += n_groups * group_size;
    exec::ThreadPool& pool = exec::ThreadPool::global();
    if (n_groups <= 1 || pool.size() <= 1 || exec::ThreadPool::in_worker()) {
      for (std::size_t g = 0; g < n_groups; ++g) {
        WorkGroup wg(*this, g, group_size);
        body(wg);
      }
      return;
    }
    std::vector<KernelStats> shards(n_groups);
    pool.parallel_for(0, n_groups, [&](std::size_t g) {
      const detail::ScopedStatsShard guard(&shards[g]);
      WorkGroup wg(*this, g, group_size);
      body(wg);
    });
    for (const KernelStats& s : shards) stats_ += s;
  }

  /// Charge an explicit host<->device transfer (kernel argument upload /
  /// result download). On devices with persistent buffers the caller skips
  /// these for data that stays resident (Sec. 4.2.2).
  void host_transfer(std::size_t bytes) { stats().host_transfer_bytes += bytes; }

  /// Projected time of everything recorded so far on this runtime's device.
  [[nodiscard]] double modeled_seconds() const {
    return stats_.modeled_seconds(model_);
  }

private:
  friend class GlobalBuffer;
  friend class WorkGroup;
  DeviceModel model_;
  KernelStats stats_;
};

/// Register `rt`'s KernelStats plus its modeled seconds as an obs metrics
/// source; every sample name is "<prefix>/..." (e.g. "simt/launches",
/// "simt/modeled_seconds"). `rt` must outlive the returned registration.
/// Snapshots must be taken at quiescent points (no launch in flight).
[[nodiscard]] obs::ScopedMetricsSource register_metrics(const SimtRuntime& rt,
                                                        std::string prefix);

}  // namespace aeqp::simt
