#include "simt/device.hpp"

#include <cmath>

namespace aeqp::simt {

DeviceModel DeviceModel::sw39010() {
  DeviceModel d;
  d.name = "SW39010";
  d.onchip_bytes = 64 * 1024;       // per-core scratchpad (LDM)
  d.rma_limit_bytes = 64 * 1024;    // paper Sec. 4.2.1
  d.wavefront = 1;                  // scalar cores, no lockstep SIMT
  d.compute_units = 384;            // accelerating cores per chip
  d.launch_overhead = 2.8e-4;       // Athread-style spawn across 384 cores
  d.offchip_bandwidth = 4.0e10;
  d.dependent_access_cost = 6.8e-9; // long off-chip latency (Fig. 11: bigger win)
  d.flop_time = 5.0e-11;
  d.host_transfer_bandwidth = 0.0;  // unified memory, no PCIe hop
  d.persistent_device_buffers = false;
  d.has_rma = true;
  return d;
}

DeviceModel DeviceModel::gcn_gpu() {
  DeviceModel d;
  d.name = "AMD GCN GPU";
  d.onchip_bytes = 64 * 1024;       // LDS per CU
  d.rma_limit_bytes = 0;            // no inter-group RMA
  d.wavefront = 64;
  d.compute_units = 64;
  d.launch_overhead = 1.5e-5;
  d.offchip_bandwidth = 2.0e11;     // HBM2, effective per-kernel share
  d.dependent_access_cost = 7.0e-10;  // deep multithreading hides most latency
  d.flop_time = 1.5e-11;
  d.host_transfer_bandwidth = 1.3e10;  // PCIe 3 x16
  d.persistent_device_buffers = true;
  d.has_rma = false;
  return d;
}

KernelStats& KernelStats::operator+=(const KernelStats& o) {
  launches += o.launches;
  work_items += o.work_items;
  offchip_read_bytes += o.offchip_read_bytes;
  offchip_write_bytes += o.offchip_write_bytes;
  dependent_accesses += o.dependent_accesses;
  flops += o.flops;
  barriers += o.barriers;
  host_transfer_bytes += o.host_transfer_bytes;
  wavefront_steps += o.wavefront_steps;
  return *this;
}

double KernelStats::modeled_seconds(const DeviceModel& d) const {
  const double launch = static_cast<double>(launches) * d.launch_overhead;
  const double stream =
      static_cast<double>(offchip_read_bytes + offchip_write_bytes) /
      d.offchip_bandwidth;
  const double chase =
      static_cast<double>(dependent_accesses) * d.dependent_access_cost;
  const double compute = static_cast<double>(flops) * d.flop_time;
  const double host = d.host_transfer_bandwidth > 0.0
                          ? static_cast<double>(host_transfer_bytes) /
                                d.host_transfer_bandwidth
                          : 0.0;
  // A wavefront step occupies the full SIMD width of execution resources
  // regardless of how many lanes are active, which is exactly the cost
  // lane under-utilization incurs (Sec. 4.4).
  const double issue = static_cast<double>(wavefront_steps) * d.flop_time *
                       static_cast<double>(d.wavefront);
  return launch + stream + chase + compute + host + issue;
}

}  // namespace aeqp::simt
