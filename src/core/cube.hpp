#pragma once

/// \file cube.hpp
/// Gaussian cube-file export of scalar fields (densities, response
/// densities, potentials) evaluated on a regular grid around a structure --
/// the standard route for visualizing n(r) and n^(1)(r) in any molecular
/// viewer.

#include <functional>
#include <string>

#include "common/vec3.hpp"
#include "grid/structure.hpp"

namespace aeqp::core {

/// Regular-grid description for cube export.
struct CubeSpec {
  std::size_t points_per_axis = 24;  ///< grid points along each axis
  double margin = 4.0;               ///< bohr of padding around the structure
};

/// Scalar field callback.
using ScalarField = std::function<double(const Vec3&)>;

/// Render `field` over a regular grid enclosing the structure into the
/// Gaussian cube format (atomic units throughout, as the format requires).
std::string to_cube(const grid::Structure& structure, const ScalarField& field,
                    const CubeSpec& spec = {},
                    const std::string& title = "AEQP scalar field");

}  // namespace aeqp::core
