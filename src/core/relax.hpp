#pragma once

/// \file relax.hpp
/// Geometry relaxation by finite-difference gradient descent with
/// backtracking line search. Forces come from central differences of SCF
/// total energies (no analytic Pulay forces needed), which is affordable
/// for the molecule sizes the examples and tests optimize and is the
/// natural preparation step for the vibrational/Raman workflow (the Hessian
/// must be evaluated at a minimum).

#include "grid/structure.hpp"
#include "scf/scf_solver.hpp"

namespace aeqp::core {

/// Relaxation configuration.
struct RelaxOptions {
  scf::ScfOptions scf;            ///< settings for every energy evaluation
  double gradient_step = 0.01;    ///< FD displacement for forces (bohr)
  double force_tolerance = 2e-3;  ///< max |dE/dR| convergence (hartree/bohr)
  double initial_step = 0.3;      ///< first line-search trial step (bohr)
  int max_steps = 40;             ///< geometry steps
};

/// Result of a relaxation run.
struct RelaxResult {
  grid::Structure structure;   ///< final geometry
  double energy = 0.0;         ///< final SCF total energy
  double max_force = 0.0;      ///< final max |gradient| component
  int steps = 0;               ///< geometry steps taken
  int energy_evaluations = 0;  ///< SCF runs consumed
  bool converged = false;
};

/// Relax all Cartesian coordinates of `structure`.
RelaxResult relax_structure(const grid::Structure& structure,
                            const RelaxOptions& options);

}  // namespace aeqp::core
