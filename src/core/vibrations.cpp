#include "core/vibrations.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/eigen.hpp"

namespace aeqp::core {
namespace {

/// amu -> electron masses.
constexpr double kAmuToMe = 1822.888486209;
/// Angular frequency in atomic units -> wavenumbers (cm^-1).
constexpr double kAuToCm = 219474.6313632;

double scf_energy(const grid::Structure& s, const scf::ScfOptions& opt) {
  const scf::ScfResult r = scf::ScfSolver(s, opt).run();
  AEQP_CHECK(r.converged, "energy_hessian: displaced SCF did not converge");
  return r.total_energy;
}

grid::Structure displaced(const grid::Structure& s, std::size_t coord,
                          double delta) {
  std::vector<grid::Atom> atoms = s.atoms();
  atoms[coord / 3].pos[static_cast<int>(coord % 3)] += delta;
  return grid::Structure(atoms);
}

}  // namespace

double atomic_mass(int z) {
  switch (z) {
    case 1: return 1.008;
    case 6: return 12.011;
    case 7: return 14.007;
    case 8: return 15.999;
    case 15: return 30.974;
    case 16: return 32.06;
    default: AEQP_THROW("atomic_mass: unparameterized element Z=" + std::to_string(z));
  }
}

linalg::Matrix energy_hessian(const grid::Structure& structure,
                              const HessianOptions& options) {
  AEQP_CHECK(structure.size() >= 2, "energy_hessian: need at least two atoms");
  const double d = options.displacement;
  AEQP_CHECK(d > 0.0, "energy_hessian: displacement must be positive");
  const std::size_t dof = 3 * structure.size();

  const double e0 = scf_energy(structure, options.scf);

  // Singly displaced energies (reused by the diagonal and cross terms).
  std::vector<double> ep(dof), em(dof);
  for (std::size_t i = 0; i < dof; ++i) {
    ep[i] = scf_energy(displaced(structure, i, +d), options.scf);
    em[i] = scf_energy(displaced(structure, i, -d), options.scf);
  }

  linalg::Matrix h(dof, dof);
  for (std::size_t i = 0; i < dof; ++i)
    h(i, i) = (ep[i] - 2.0 * e0 + em[i]) / (d * d);

  for (std::size_t i = 0; i < dof; ++i) {
    for (std::size_t j = i + 1; j < dof; ++j) {
      const double epp =
          scf_energy(displaced(displaced(structure, i, +d), j, +d), options.scf);
      const double emm =
          scf_energy(displaced(displaced(structure, i, -d), j, -d), options.scf);
      // Mixed second derivative from the compact 4-point stencil:
      // d2E/didj = [E(+,+) + E(-,-) - E(+i) - E(-i) - E(+j) - E(-j) + 2E0]
      //            / (2 d^2).
      const double hij =
          (epp + emm - ep[i] - em[i] - ep[j] - em[j] + 2.0 * e0) / (2.0 * d * d);
      h(i, j) = h(j, i) = hij;
    }
  }
  return h;
}

NormalModes harmonic_analysis(const grid::Structure& structure,
                              const linalg::Matrix& hessian) {
  const std::size_t dof = 3 * structure.size();
  AEQP_CHECK(hessian.rows() == dof && hessian.cols() == dof,
             "harmonic_analysis: Hessian shape mismatch");

  // Mass-weight: H~_ij = H_ij / sqrt(m_i m_j)  (masses in electron masses).
  std::vector<double> inv_sqrt_m(dof);
  for (std::size_t i = 0; i < dof; ++i)
    inv_sqrt_m[i] =
        1.0 / std::sqrt(atomic_mass(structure.atom(i / 3).z) * kAmuToMe);
  linalg::Matrix mw(dof, dof);
  for (std::size_t i = 0; i < dof; ++i)
    for (std::size_t j = 0; j < dof; ++j)
      mw(i, j) = hessian(i, j) * inv_sqrt_m[i] * inv_sqrt_m[j];
  mw.symmetrize();

  const linalg::EigenSolution sol = linalg::symmetric_eigen(mw);
  NormalModes modes;
  modes.frequencies_cm.resize(dof);
  modes.cartesian_modes = linalg::Matrix(dof, dof);
  for (std::size_t p = 0; p < dof; ++p) {
    const double lambda = sol.eigenvalues[p];
    const double omega = std::sqrt(std::fabs(lambda)) * kAuToCm;
    modes.frequencies_cm[p] = lambda >= 0.0 ? omega : -omega;
    // Back-transform the mass-weighted eigenvector to Cartesian space.
    for (std::size_t k = 0; k < dof; ++k)
      modes.cartesian_modes(k, p) = sol.eigenvectors(k, p) * inv_sqrt_m[k];
  }
  return modes;
}

}  // namespace aeqp::core
