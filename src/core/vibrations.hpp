#pragma once

/// \file vibrations.hpp
/// Harmonic vibrational analysis: finite-difference energy Hessians,
/// mass-weighted normal modes and frequencies. Combined with the DFPT
/// polarizability this completes the Raman workflow of the paper's lineage
/// (its ref. [37] computed ab initio Raman spectra): frequencies come from
/// the Hessian, intensities from d(alpha)/dQ along each normal mode.

#include "grid/structure.hpp"
#include "linalg/matrix.hpp"
#include "scf/scf_solver.hpp"

namespace aeqp::core {

/// Configuration for the numeric Hessian.
struct HessianOptions {
  double displacement = 0.02;  ///< Cartesian step in bohr
  scf::ScfOptions scf;         ///< settings used for every displaced SCF
};

/// Standard atomic mass (amu) of the parameterized elements.
double atomic_mass(int z);

/// 3N x 3N Cartesian Hessian d^2E/dR_i dR_j by central finite differences
/// of SCF total energies (2*3N + 2*3N*(3N-1) displaced calculations).
linalg::Matrix energy_hessian(const grid::Structure& structure,
                              const HessianOptions& options);

/// Result of the normal-mode analysis.
struct NormalModes {
  linalg::Vector frequencies_cm;   ///< harmonic frequencies (cm^-1); negative
                                   ///< entries flag imaginary modes
  linalg::Matrix cartesian_modes;  ///< columns: mass-weighted displacement
                                   ///< patterns back-transformed to Cartesian
};

/// Diagonalize the mass-weighted Hessian. The six (five for linear
/// molecules) smallest-|omega| modes are the translations/rotations.
NormalModes harmonic_analysis(const grid::Structure& structure,
                              const linalg::Matrix& hessian);

}  // namespace aeqp::core
