#include "core/dfpt.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "exec/thread_pool.hpp"
#include "linalg/abft.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resilience/guards.hpp"
#include "resilience/sdc_inject.hpp"
#include "tune/tune.hpp"
#include "xc/lda.hpp"

namespace aeqp::core {

using linalg::Matrix;
using linalg::Vector;

std::string phase_name(Phase p) {
  switch (p) {
    case Phase::DM: return "DM";
    case Phase::Sumup: return "Sumup";
    case Phase::Rho: return "Rho";
    case Phase::H: return "H";
    case Phase::Sternheimer: return "Sternheimer";
  }
  return "?";
}

PhaseTimes DfptResult::total_phase_seconds() const {
  PhaseTimes total;
  for (const auto& dir : directions)
    for (const auto& [phase, sec] : dir.phase_seconds) total[phase] += sec;
  return total;
}

DfptSolver::DfptSolver(const scf::ScfResult& ground, DfptOptions options)
    : ground_(ground), options_(options) {
  AEQP_CHECK(ground_.converged, "DfptSolver: ground state is not converged");
  AEQP_CHECK(ground_.basis && ground_.grid && ground_.integrator && ground_.hartree,
             "DfptSolver: ground state lacks shared machinery");
  const std::size_t nb = ground_.coefficients.rows();
  const std::size_t n_occ = static_cast<std::size_t>(ground_.n_occupied);
  AEQP_CHECK(n_occ >= 1 && n_occ < nb,
             "DfptSolver: need at least one occupied and one virtual orbital");
  // Finite gap required by the sum-over-states Sternheimer solution.
  AEQP_CHECK(ground_.lumo - ground_.homo > 1e-8,
             "DfptSolver: vanishing HOMO-LUMO gap");

  c_occ_ = Matrix(nb, n_occ);
  c_virt_ = Matrix(nb, nb - n_occ);
  for (std::size_t mu = 0; mu < nb; ++mu) {
    for (std::size_t i = 0; i < n_occ; ++i) c_occ_(mu, i) = ground_.coefficients(mu, i);
    for (std::size_t a = n_occ; a < nb; ++a)
      c_virt_(mu, a - n_occ) = ground_.coefficients(mu, a);
  }

  fxc_.resize(ground_.density_samples.size());
  for (std::size_t p = 0; p < fxc_.size(); ++p)
    fxc_[p] = xc::lda_evaluate(std::max(ground_.density_samples[p], 0.0)).fxc;

  screen_radii_ = ground_.basis->screening_radii(options_.screening_threshold);

  if (options_.device) {
    // Device engine: precompute batches and per-batch basis supports once
    // (the initialization phase the paper's Fig. 11 targets).
    device_batches_ = grid::make_batches(
        *ground_.grid, tune::grid_batch_points(options_.device_batch_points));
    device_supports_ = kernels::build_batch_supports(*ground_.basis, *ground_.grid,
                                                     device_batches_);
  }
}

DfptDirectionResult DfptSolver::solve_direction(int j) const {
  AEQP_TRACE_SCOPE("cpscf/direction");
  AEQP_CHECK(j >= 0 && j < 3, "solve_direction: direction must be 0..2");
  const auto& integ = *ground_.integrator;
  const auto& grid = *ground_.grid;
  const auto& basis = *ground_.basis;
  const auto& hartree = *ground_.hartree;

  const std::size_t nb = ground_.coefficients.rows();
  const std::size_t n_occ = c_occ_.cols();
  const std::size_t n_virt = c_virt_.cols();
  const std::size_t np = grid.size();

  DfptDirectionResult res;
  auto& t = res.phase_seconds;
  t[Phase::DM] = t[Phase::Sumup] = t[Phase::Rho] = t[Phase::H] =
      t[Phase::Sternheimer] = 0.0;

  // Bare perturbation matrix: -r_J (paper Eq. 11).
  Matrix h1_ext = integ.dipole_matrix(j);
  h1_ext.scale(-1.0);

  Matrix p1(nb, nb);                   // response density matrix
  std::vector<double> n1(np, 0.0);     // response density on the grid
  std::vector<double> v1(np, 0.0);     // v^(1)_es,tot + v^(1)_xc on the grid
  bool have_response = false;

  // Sumup and Rho as functions of P^(1); shared by the iteration body and
  // the warm-start path (the response potential is derived state, so a
  // checkpoint only has to carry P^(1)).
  const auto compute_sumup = [&](const Matrix& p) {
    if (options_.device) {
      kernels::sumup_kernel(*options_.device, grid, device_supports_, p, n1);
    } else {
      n1 = integ.density(p);
    }
    // Compute-site probe: a planted fault corrupts the freshly accumulated
    // density batch here, exactly where a real kernel upset would land.
    resilience::sdc_probe("cpscf/rho_batch", {n1.data(), n1.size()});
  };
  const auto compute_rho = [&](const Matrix& p) {
    // Batched producer: the projection hands whole angular rings to this
    // callback; the basis layer screens atoms per ring and evaluates into
    // reusable thread-local scratch (no per-point allocation).
    const poisson::BatchDensityFn n1_fn = [&](const Vec3* pts, std::size_t m,
                                              double* outp) {
      thread_local basis::BatchEval ev;
      basis.evaluate_batch(pts, m, screen_radii_, ev);
      basis::contract_density(p, ev, outp);
    };
    const auto v1_part = hartree.solve_density(n1_fn);
    // Batched consumer: interpolate the partitioned potential block by
    // block. Each point's value is independent, so the block size is pure
    // cache tuning and never changes v1.
    const std::size_t block = tune::rho_block_size(options_.rho_block_size);
    exec::parallel_for_ranges(0, np, block, [&](std::size_t b, std::size_t e) {
      thread_local std::vector<Vec3> ppos;
      thread_local std::vector<double> vh;
      ppos.resize(e - b);
      vh.resize(e - b);
      for (std::size_t pt = b; pt < e; ++pt) ppos[pt - b] = grid.point(pt).pos;
      hartree.potential_batch(v1_part, ppos.data(), e - b, vh.data());
      for (std::size_t pt = b; pt < e; ++pt)
        v1[pt] = vh[pt - b] + fxc_[pt] * n1[pt];
    });
  };

  int start_iteration = 0;
  if (options_.warm_start) {
    const auto& ws = *options_.warm_start;
    AEQP_CHECK(ws.p1.rows() == nb && ws.p1.cols() == nb,
               "DfptSolver: warm start P^(1) has wrong dimensions");
    AEQP_CHECK(ws.iteration >= 1 && ws.iteration < options_.max_iterations,
               "DfptSolver: warm start iteration outside (0, max_iterations)");
    p1 = ws.p1;
    have_response = true;
    start_iteration = ws.iteration;
    compute_sumup(p1);
    compute_rho(p1);
  }

  double last_delta = 0.0;
  bool aborted = false;
  for (int iter = start_iteration + 1; iter <= options_.max_iterations; ++iter) {
    Timer timer;

    // --- H phase: response Hamiltonian H^(1) (Eqs. 10-12), on the host
    //     integrator or through the SIMT batch kernel. ---
    timer.reset();
    Matrix h1 = h1_ext;
    {
      AEQP_TRACE_SCOPE("cpscf/h");
      if (have_response) {
        if (options_.device) {
          Matrix vmat(nb, nb);
          kernels::h_kernel(*options_.device, grid, device_supports_, v1, vmat);
          h1.axpy(1.0, vmat);
        } else {
          h1.axpy(1.0, integ.potential_matrix(v1));
        }
        h1.symmetrize();
      }
      // Phase-boundary invariant: the response Hamiltonian is Hermitian by
      // construction; asymmetry or a non-finite entry is corruption.
      resilience::guard_hermitian(h1, "cpscf/h1");
    }
    t[Phase::H] += timer.seconds();

    // --- Sternheimer update. Static: U_ai = H^(1)_ai / (eps_i - eps_a).
    //     Dynamic (omega != 0): the +omega and -omega amplitudes
    //     X_ai, Y_ai of the coupled-perturbed equations. ---
    timer.reset();
    // Manual span object: the phase's outputs (c1x/c1y) outlive the phase
    // region, so a braced scope cannot delimit it.
    obs::PhaseSpan phase_span;
    phase_span.begin("cpscf/sternheimer");
    const double omega = options_.frequency;
    // The Sternheimer contraction H^(1)_ai = C_virt^T (H^(1) C_occ): with
    // ABFT on, both products carry Huang-Abraham checksums, so a single
    // corrupted element is corrected in place before it can steer the
    // whole CPSCF trajectory.
    const Matrix h1_vo =
        options_.abft
            ? linalg::abft_matmul_tn(
                  c_virt_,
                  linalg::abft_matmul(h1, c_occ_, "cpscf/sternheimer_matmul"),
                  "cpscf/sternheimer_matmul")
            : linalg::matmul_tn(c_virt_, linalg::matmul(h1, c_occ_));
    Matrix x(n_virt, n_occ), y(n_virt, n_occ);
    for (std::size_t a = 0; a < n_virt; ++a)
      for (std::size_t i = 0; i < n_occ; ++i) {
        const double gap =
            ground_.eigenvalues[i] - ground_.eigenvalues[n_occ + a];
        AEQP_CHECK(std::fabs(gap + omega) > 1e-10 && std::fabs(gap - omega) > 1e-10,
                   "DfptSolver: frequency hits an excitation resonance");
        x(a, i) = h1_vo(a, i) / (gap + omega);
        y(a, i) = h1_vo(a, i) / (gap - omega);
      }
    // C^(1)+ = C_virt X, C^(1)- = C_virt Y (equal in the static limit).
    // These products feed the DM build directly -- the paper's DM phase --
    // so they are the DM-build matmuls the ABFT layer protects.
    const Matrix c1x = options_.abft
                           ? linalg::abft_matmul(c_virt_, x, "cpscf/dm_matmul")
                           : linalg::matmul(c_virt_, x);
    const Matrix c1y = options_.abft
                           ? linalg::abft_matmul(c_virt_, y, "cpscf/dm_matmul")
                           : linalg::matmul(c_virt_, y);
    phase_span.end();
    t[Phase::Sternheimer] += timer.seconds();

    // --- DM phase: P^(1) = sum_i f_i (C^(1)+ C^T + C C^(1)-T), the
    //     omega-generalization of Eq. (7). ---
    timer.reset();
    phase_span.begin("cpscf/dm");
    Matrix p1_new(nb, nb);
    // Row-parallel over mu; the per-element accumulation over occupied
    // orbitals keeps its serial (ascending i) order, so P^(1) is
    // bit-identical for every thread count.
    exec::parallel_for_ranges(0, nb, 8, [&](std::size_t mb, std::size_t me) {
      for (std::size_t mu = mb; mu < me; ++mu) {
        double* prow = p1_new.data() + mu * nb;
        for (std::size_t i = 0; i < n_occ; ++i) {
          const double f = ground_.occupations[i];
          const double c1xmi = c1x(mu, i), cmi = c_occ_(mu, i);
          for (std::size_t nu = 0; nu < nb; ++nu)
            prow[nu] += f * (c1xmi * c_occ_(nu, i) + cmi * c1y(nu, i));
        }
      }
    });
    // Linear mixing stabilizes the CPSCF cycle.
    if (have_response) {
      p1_new.scale(options_.mixing);
      p1_new.axpy(1.0 - options_.mixing, p1);
    }
    const double delta = p1_new.max_abs_diff(p1);
    p1 = std::move(p1_new);
    last_delta = delta;
    // Phase-boundary invariants: P^(1) finite, and tr(P^(1) S) = 0 -- the
    // perturbation conserves the electron count, so the response DM is
    // traceless against the overlap metric.
    resilience::guard_finite(p1, "cpscf/p1");
    resilience::guard_trace_identity(p1, ground_.overlap, 0.0, "cpscf/p1");
    phase_span.end();
    t[Phase::DM] += timer.seconds();

    res.iterations = iter;
    if (options_.observer) {
      const CpscfIterationState state{j, iter, delta, options_.mixing, &p1};
      if (options_.observer(state) == CpscfAction::Abort) {
        aborted = true;
        break;
      }
    }

    // --- Sumup phase: n^(1)(r) on the grid (Eq. 8). ---
    timer.reset();
    {
      AEQP_TRACE_SCOPE("cpscf/sumup");
      compute_sumup(p1);
      // Second rung of the SDC ladder: the batch is a pure function of
      // P^(1), so a corrupted accumulation (transient by nature -- the
      // injector models an upset, not a broken unit) is repaired by one
      // local recompute, far cheaper than a checkpoint rollback. A second
      // violation means the corruption is not transient here; escalate.
      try {
        resilience::guard_finite({n1.data(), n1.size()}, "cpscf/n1");
      } catch (const InvariantViolation&) {
        obs::counter("sdc/local_recomputes").increment();
        obs::trace_instant("sdc/recompute");
        compute_sumup(p1);
        resilience::guard_finite({n1.data(), n1.size()}, "cpscf/n1");
      }
    }
    t[Phase::Sumup] += timer.seconds();

    // --- Rho phase: v^(1)_H by multipole Poisson solve (Eq. 9) plus the
    //     XC kernel term f_xc n^(1) (Eq. 12). ---
    timer.reset();
    {
      AEQP_TRACE_SCOPE("cpscf/rho");
      compute_rho(p1);
      resilience::guard_finite({v1.data(), v1.size()}, "cpscf/v1");
    }
    t[Phase::Rho] += timer.seconds();

    have_response = true;
    if (options_.verbose)
      AEQP_LOG_INFO << "DFPT dir " << j << " iter " << iter
                    << " max|dP1|=" << delta;
    if (delta < options_.tolerance && iter > 1) {
      res.converged = true;
      break;
    }
  }

  res.aborted = aborted;
  if (!res.converged && !aborted && options_.require_convergence) {
    std::ostringstream msg;
    msg << "DfptSolver: CPSCF failed to converge for direction " << j << ": "
        << res.iterations << " iterations, last max|dP1|=" << last_delta
        << ", tolerance=" << options_.tolerance
        << ", mixing=" << options_.mixing;
    AEQP_THROW(msg.str());
  }
  res.p1 = p1;
  res.n1_samples = n1;
  for (int axis = 0; axis < 3; ++axis) {
    res.dipole_response[axis] = integ.moment(n1, axis);
    // Independent path: mu_I = Tr(P D_I) => alpha_IJ = Tr(P^(1)_J D_I).
    res.dipole_response_trace[axis] =
        linalg::trace_product(p1, integ.dipole_matrix(axis));
  }
  return res;
}

DfptResult DfptSolver::solve_all() const {
  DfptResult res;
  for (int j = 0; j < 3; ++j)
    res.directions[static_cast<std::size_t>(j)] = solve_direction(j);
  return res;
}

}  // namespace aeqp::core
