#pragma once

/// \file polarizability_invariants.hpp
/// Rotational invariants of (derivatives of) the polarizability tensor and
/// the standard Raman activity combination, shared by the Raman examples
/// and downstream spectrum tools.

#include <array>

namespace aeqp::core {

/// Row-major 3x3 tensor.
using Tensor3 = std::array<double, 9>;

/// Isotropic mean a = (a_xx + a_yy + a_zz)/3.
double isotropic_mean(const Tensor3& t);

/// Anisotropy invariant gamma^2 = 1/2[(xx-yy)^2 + (yy-zz)^2 + (zz-xx)^2]
///                              + 3[xy^2 + xz^2 + yz^2].
double anisotropy_squared(const Tensor3& t);

/// Raman activity of a mode with polarizability derivative da/dQ:
/// 45 a'^2 + 7 gamma'^2 (the invariant combination entering scattering
/// cross sections for randomly oriented molecules).
double raman_activity(const Tensor3& dalpha_dq);

/// Depolarization ratio rho = 3 gamma'^2 / (45 a'^2 + 4 gamma'^2);
/// 0 for a purely isotropic derivative, 0.75 for purely anisotropic.
double depolarization_ratio(const Tensor3& dalpha_dq);

}  // namespace aeqp::core
