#include "core/structures.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace aeqp::core {

using constants::angstrom_to_bohr;

grid::Structure water() {
  // r(OH) = 0.9572 A, angle 104.52 deg; oxygen at origin, C2v axis = z.
  grid::Structure s;
  const double r = 0.9572 * angstrom_to_bohr;
  const double half = 0.5 * 104.52 * constants::pi / 180.0;
  s.add_atom(8, {0.0, 0.0, 0.0});
  s.add_atom(1, {0.0, r * std::sin(half), r * std::cos(half)});
  s.add_atom(1, {0.0, -r * std::sin(half), r * std::cos(half)});
  return s;
}

grid::Structure methane() {
  grid::Structure s;
  const double d = 1.087 * angstrom_to_bohr / std::sqrt(3.0);
  s.add_atom(6, {0, 0, 0});
  s.add_atom(1, {d, d, d});
  s.add_atom(1, {d, -d, -d});
  s.add_atom(1, {-d, d, -d});
  s.add_atom(1, {-d, -d, d});
  return s;
}

grid::Structure polyethylene_chain(std::size_t n) {
  AEQP_CHECK(n >= 1, "polyethylene_chain: n must be >= 1");
  grid::Structure s;
  // All-trans zigzag backbone in the xz plane: C-C 1.54 A, angle 113.5 deg,
  // C-H 1.09 A perpendicular to the local backbone plane.
  const double cc = 1.54 * angstrom_to_bohr;
  const double ch = 1.09 * angstrom_to_bohr;
  const double half_angle = 0.5 * 113.5 * constants::pi / 180.0;
  const double dz = cc * std::sin(half_angle);   // advance along the chain
  const double dx = cc * std::cos(half_angle);   // zigzag amplitude

  const std::size_t n_carbon = 2 * n;
  std::vector<Vec3> carbons(n_carbon);
  for (std::size_t k = 0; k < n_carbon; ++k) {
    carbons[k] = {(k % 2 == 0) ? 0.0 : dx, 0.0, dz * static_cast<double>(k)};
  }

  // Terminal H capping the first carbon (placed along -z).
  s.add_atom(1, carbons.front() + Vec3{0.0, 0.0, -ch});
  for (std::size_t k = 0; k < n_carbon; ++k) {
    s.add_atom(6, carbons[k]);
    // Two H atoms per carbon, splayed in +-y.
    const double xoff = (k % 2 == 0) ? -0.4 * ch : 0.4 * ch;
    s.add_atom(1, carbons[k] + Vec3{xoff, ch * 0.9, 0.0});
    s.add_atom(1, carbons[k] + Vec3{xoff, -ch * 0.9, 0.0});
  }
  s.add_atom(1, carbons.back() + Vec3{0.0, 0.0, ch});
  AEQP_ASSERT(s.size() == 6 * n + 2);
  return s;
}

grid::Structure rbd_like_cluster(std::size_t n_atoms, std::uint64_t seed) {
  AEQP_CHECK(n_atoms >= 1, "rbd_like_cluster: need at least one atom");
  Rng rng(seed);
  // Protein-like packing: ~0.0156 atoms/bohr^3 (one atom per ~9.5 A^3).
  const double density = 0.0156;
  const double radius =
      std::cbrt(3.0 * static_cast<double>(n_atoms) / (4.0 * constants::pi * density));
  const double min_dist = 1.9;  // shortest heavy-atom/H contact, bohr

  // Hash-grid rejection sampling keeps generation O(n).
  const double cell = min_dist;
  const int ncell = std::max(1, static_cast<int>(std::ceil(2.0 * radius / cell)));
  std::vector<std::vector<std::uint32_t>> cells(
      static_cast<std::size_t>(ncell) * ncell * ncell);
  std::vector<Vec3> placed;
  placed.reserve(n_atoms);

  auto cell_of = [&](const Vec3& p) {
    auto idx = [&](double x) {
      return std::clamp(static_cast<int>((x + radius) / cell), 0, ncell - 1);
    };
    return (static_cast<std::size_t>(idx(p.x)) * ncell + idx(p.y)) * ncell +
           idx(p.z);
  };
  auto clashes = [&](const Vec3& p) {
    auto idx = [&](double x) {
      return std::clamp(static_cast<int>((x + radius) / cell), 0, ncell - 1);
    };
    const int cx = idx(p.x), cy = idx(p.y), cz = idx(p.z);
    for (int ix = std::max(0, cx - 1); ix <= std::min(ncell - 1, cx + 1); ++ix)
      for (int iy = std::max(0, cy - 1); iy <= std::min(ncell - 1, cy + 1); ++iy)
        for (int iz = std::max(0, cz - 1); iz <= std::min(ncell - 1, cz + 1); ++iz)
          for (std::uint32_t id :
               cells[(static_cast<std::size_t>(ix) * ncell + iy) * ncell + iz])
            if (distance(placed[id], p) < min_dist) return true;
    return false;
  };

  grid::Structure s;
  int guard = 0;
  while (placed.size() < n_atoms) {
    Vec3 p{rng.uniform(-radius, radius), rng.uniform(-radius, radius),
           rng.uniform(-radius, radius)};
    if (p.norm() > radius || clashes(p)) {
      AEQP_CHECK(++guard < 100000000, "rbd_like_cluster: packing failed");
      continue;
    }
    cells[cell_of(p)].push_back(static_cast<std::uint32_t>(placed.size()));
    placed.push_back(p);
    // Protein atom composition: ~49% H, 32% C, 9% N, 10% O.
    const double u = rng.uniform();
    const int z = (u < 0.49) ? 1 : (u < 0.81) ? 6 : (u < 0.90) ? 7 : 8;
    s.add_atom(z, p);
  }
  return s;
}

grid::Structure ligand_like(std::size_t n_atoms, std::uint64_t seed) {
  AEQP_CHECK(n_atoms >= 2, "ligand_like: need at least two atoms");
  Rng rng(seed);
  grid::Structure s;
  // Self-avoiding random walk of heavy atoms with hydrogens attached:
  // roughly half heavy, half hydrogen, like a drug-sized organic.
  const double bond = 1.5 * angstrom_to_bohr;
  std::vector<Vec3> heavy;
  heavy.push_back({0, 0, 0});
  s.add_atom(6, heavy.back());

  auto random_unit = [&]() {
    // Marsaglia rejection for a uniform direction.
    for (;;) {
      const double x = rng.uniform(-1, 1), y = rng.uniform(-1, 1),
                   z = rng.uniform(-1, 1);
      const double n2 = x * x + y * y + z * z;
      if (n2 > 0.05 && n2 <= 1.0) {
        const double inv = 1.0 / std::sqrt(n2);
        return Vec3{x * inv, y * inv, z * inv};
      }
    }
  };
  auto far_enough = [&](const Vec3& p, double d) {
    for (std::size_t i = 0; i < s.size(); ++i)
      if (distance(s.atom(i).pos, p) < d) return false;
    return true;
  };

  while (s.size() < n_atoms) {
    // Grow from a random existing heavy atom.
    const Vec3 base = heavy[rng.uniform_index(heavy.size())];
    const Vec3 p = base + bond * random_unit();
    if (!far_enough(p, 0.85 * bond)) continue;
    const double u = rng.uniform();
    if (u < 0.5 && s.size() + 1 < n_atoms) {
      const double v = rng.uniform();
      const int z = (v < 0.70) ? 6 : (v < 0.85) ? 7 : 8;
      heavy.push_back(p);
      s.add_atom(z, p);
    } else {
      s.add_atom(1, p);
    }
  }
  return s;
}

}  // namespace aeqp::core
