#pragma once

/// \file parallel_dfpt.hpp
/// Distributed DFPT on the simulated MPI runtime -- the paper's parallel
/// decomposition executed for real at laptop scale.
///
/// Division of labour per CPSCF iteration (paper Secs. 3-4):
///  - The grid-heavy phases (Sumup: n^(1) on grid points; H: response-
///    Hamiltonian integrals) are distributed over ranks by the
///    locality-enhancing batch mapping; partial H^(1) contributions are
///    synthesized with a packed (optionally hierarchical) AllReduce.
///  - The Poisson producer (multipole projection + radial solves) is
///    replicated on every rank by default, "trading redundant calculations
///    for communication avoidance" exactly as the paper's producer kernels
///    do. With `distribute_rho` the projection rows are split across ranks
///    (weighted by measured rank speeds) and synthesized with a packed
///    rho_multipole AllReduce -- bit-identical output, used by the
///    straggler-rebalance rung so a slow rank sheds producer work too.
///  - The Sternheimer update and P^(1) assembly are replicated (identical
///    inputs -> identical outputs on every rank).
///
/// The result is bit-wise deterministic and equals the serial DfptSolver
/// reference, which the test suite asserts.

#include <string>

#include "comm/packed.hpp"
#include "core/dfpt.hpp"
#include "grid/batch.hpp"
#include "mapping/task_mapping.hpp"
#include "obs/metrics.hpp"

namespace aeqp::core {

/// How each rank stores the response density matrix it contracts against
/// in the Sumup phase (the storage axis of paper Figs. 3 and 9(b)).
enum class HamiltonianStorage {
  LocalDense,       ///< direct dense indexing (locality-enhanced mapping)
  GlobalSparseCsr,  ///< legacy path: CSR fetches with dependent accesses
};

/// Parallel-run configuration.
struct ParallelDfptOptions {
  DfptOptions dfpt;                 ///< convergence/mixing settings
  std::size_t ranks = 4;            ///< simulated MPI ranks
  std::size_t ranks_per_node = 2;   ///< SHM node width
  /// Cut-plane batch size; 0 = the tuned value (default 128).
  std::size_t batch_points = 0;
  /// Packed-AllReduce staging window in bytes; 0 = the tuned value
  /// (default comm::kDefaultPackBytes). Packing regroups rows without
  /// reordering the reduction, so the window never changes results.
  std::size_t pack_bytes = 0;
  comm::ReduceMode reduce_mode = comm::ReduceMode::Hierarchical;
  HamiltonianStorage storage = HamiltonianStorage::LocalDense;
  /// Keep the per-rank basis point-eval cache resident (default). The
  /// memory-budget relief ladder clears this to re-evaluate basis functions
  /// on the fly: slower, bit-identical (same evaluator, same accumulation
  /// order), and it sheds the O(points/rank) "dfpt/point_cache" structure
  /// when the AEQP_MEM_BUDGET ceiling is under pressure.
  bool cache_point_evals = true;
  /// Optional fault injection replayed by the simmpi runtime (must outlive
  /// the call); null = fault-free run.
  parallel::FaultInjector* fault_injector = nullptr;
  /// Collective deadline handed to the cluster; a rank stalled past it
  /// surfaces as CollectiveTimeout on the surviving ranks.
  std::size_t collective_timeout_ms = 120000;
  /// Adaptive per-collective-class deadlines (parallel::DeadlineEstimator):
  /// -1 = follow the AEQP_ADAPTIVE_TIMEOUT env gate (default), 0 = force
  /// off, 1 = force on. The fixed collective_timeout_ms stays the ceiling
  /// either way -- the smaller deadline always wins.
  int adaptive_deadlines = -1;
  /// Optional floor override (ms) for the adaptive deadline; 0 = estimator
  /// default. Tests drop it so an injected straggler times out in tens of
  /// milliseconds instead of seconds.
  double adaptive_floor_ms = 0.0;
  /// Optional straggler detector fed by the runtime with per-rank work
  /// intervals (must outlive the call); null = no arrival-lag ledger and a
  /// bit-identical collective schedule to the un-instrumented baseline.
  parallel::StragglerDetector* straggler_detector = nullptr;
  /// Measured per-rank speed weights, ORIGINAL-world indexed (size
  /// `ranks`); non-empty = re-home batches with
  /// mapping::rebalance_for_slow_ranks so slow ranks carry
  /// proportionally less grid work. World size and rank numbering are
  /// unchanged -- this is the recovery ladder's rebalance rung, fired
  /// before any shrink. Empty = keep the locality mapping as-is.
  std::vector<double> rank_speed_weights;
  /// Distribute the Rho-phase Poisson producer: each rank projects a
  /// contiguous share of the (atom, radial shell) rho_multipole rows --
  /// sized by rank_speed_weights when present -- and the partial
  /// projections are synthesized with a packed row-by-row AllReduce (the
  /// paper's rho_multipole reduction). Every row is computed by exactly one
  /// rank and x + 0 is exact in IEEE addition, so the summed projection is
  /// bit-identical to the replicated producer. Off by default: replicating
  /// the producer trades redundant compute for communication avoidance,
  /// the right call when ranks are homogeneous -- but under a straggler
  /// the replicated producer runs at the slowest rank's speed, so the
  /// rebalance rung enables this to shed producer work too.
  bool distribute_rho = false;
  /// CRC-verify every collective payload (Cluster::set_verify_payloads) and
  /// run the packed H-phase AllReduce with a linear checksum element, so
  /// in-flight corruption surfaces as parallel::PayloadCorruption at the
  /// collective instead of as eventual CPSCF divergence.
  bool verify_collectives = false;
  /// Elastic world (shrink-and-continue re-entry): when non-empty, the run
  /// executes on these survivor ranks only -- ids in the ORIGINAL
  /// [0, ranks) world, strictly increasing. The grid batches of the lost
  /// ranks are re-homed onto the survivors by mapping::remap_for_survivors
  /// (same locality objective as the initial mapping), and fault-plan
  /// events keep addressing original ids through the cluster's origin map.
  /// Empty = full world.
  std::vector<std::size_t> active_ranks;
  /// Optional hook run on EVERY rank after each iteration's observer
  /// broadcast, with communicator access -- the entry point elastic
  /// recovery uses to buddy-replicate per-rank checkpoints through the
  /// collective layer. Must follow the collective discipline (all ranks
  /// call the same collectives in the same order).
  std::function<void(parallel::Communicator&, const CpscfIterationState&)>
      rank_hook;
};

/// Communication statistics of one distributed run.
struct ParallelDfptStats {
  std::size_t collectives = 0;      ///< packed AllReduce invocations
  std::size_t rows_reduced = 0;     ///< matrix rows synthesized
  std::size_t batches = 0;          ///< total grid batches
  double max_rank_points_share = 0; ///< load balance: max/mean points
  // Elastic-world shape of this run (filled by the solver).
  std::size_t survivor_ranks = 0;   ///< ranks the run actually executed on
  std::size_t lost_ranks = 0;       ///< original ranks excluded by shrinks
  std::size_t remap_batches_moved = 0; ///< orphaned batches re-homed
  double remap_seconds = 0.0;       ///< wall time of the survivor re-mapping
  // Straggler-rebalance shape of this run (filled by the solver).
  std::size_t rebalances = 0;           ///< weighted re-mappings applied
  std::size_t rebalance_batches_moved = 0; ///< batches moved off slow ranks
  double rebalance_seconds = 0.0;       ///< wall time of weighted re-mapping
  std::size_t degraded_ranks = 0;       ///< ranks rebalanced around
  // Recovery counters, filled by resilience::RecoveryDriver when a run is
  // wrapped in fault recovery (zero for bare runs).
  std::size_t faults_detected = 0;  ///< health violations + rank failures
  std::size_t restores = 0;         ///< checkpoint restorations
  std::size_t retries = 0;          ///< solver re-executions
  std::size_t wasted_iterations = 0;///< iterations discarded by rollbacks
  std::size_t shrinks = 0;          ///< world-shrink escalations
  std::size_t buddy_restores = 0;   ///< restores served from a buddy replica
  // SDC-defense counters (see docs/sdc.md), filled by the RecoveryDriver.
  std::size_t abft_corrections = 0;     ///< matmul elements fixed in place
  std::size_t invariant_violations = 0; ///< physics guards tripped
  std::size_t payload_corruptions = 0;  ///< CRC/checksum collective failures
};

/// Result plus run statistics.
struct ParallelDfptResult {
  DfptDirectionResult direction;
  ParallelDfptStats stats;
};

/// Solve one perturbation direction with the grid phases distributed over a
/// simulated cluster. `ground` must be a converged ScfResult.
ParallelDfptResult solve_direction_parallel(const scf::ScfResult& ground,
                                            const ParallelDfptOptions& options,
                                            int direction);

/// Register `stats` as an obs metrics source; sample names are
/// "<prefix>/collectives", "<prefix>/rows_reduced", ... `stats` must
/// outlive the returned registration.
[[nodiscard]] obs::ScopedMetricsSource register_metrics(
    const ParallelDfptStats& stats, std::string prefix = "cpscf");

}  // namespace aeqp::core
