#include "core/xyz.hpp"

#include <sstream>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace aeqp::core {

std::string to_xyz(const grid::Structure& structure, const std::string& comment) {
  std::ostringstream os;
  os << structure.size() << "\n" << comment << "\n";
  os.setf(std::ios::fixed);
  os.precision(8);
  for (const auto& a : structure.atoms()) {
    os << grid::element_symbol(a.z);
    for (int d = 0; d < 3; ++d)
      os << " " << a.pos[d] * constants::bohr_to_angstrom;
    os << "\n";
  }
  return os.str();
}

namespace {
int z_of_symbol(const std::string& sym) {
  if (sym == "H") return 1;
  if (sym == "C") return 6;
  if (sym == "N") return 7;
  if (sym == "O") return 8;
  if (sym == "P") return 15;
  if (sym == "S") return 16;
  AEQP_THROW("from_xyz: unsupported element symbol '" + sym + "'");
}
}  // namespace

grid::Structure from_xyz(const std::string& text) {
  std::istringstream is(text);
  std::size_t n = 0;
  AEQP_CHECK(static_cast<bool>(is >> n), "from_xyz: missing atom count");
  std::string line;
  std::getline(is, line);  // rest of count line
  AEQP_CHECK(static_cast<bool>(std::getline(is, line)),
             "from_xyz: missing comment line");

  grid::Structure s;
  for (std::size_t i = 0; i < n; ++i) {
    std::string sym;
    double x = 0, y = 0, z = 0;
    AEQP_CHECK(static_cast<bool>(is >> sym >> x >> y >> z),
               "from_xyz: truncated atom record " + std::to_string(i));
    s.add_atom(z_of_symbol(sym), Vec3{x, y, z} * constants::angstrom_to_bohr);
  }
  return s;
}

}  // namespace aeqp::core
