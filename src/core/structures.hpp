#pragma once

/// \file structures.hpp
/// Generators for the evaluation systems of paper Fig. 8 and Sec. 5.1.
///
/// The polyethylene chains H(C2H4)nH are built exactly (they are defined by
/// their chemistry). The two biomolecules -- the SARS-CoV-2 RBD (3006
/// atoms) and the HIV-1 protease ligand (PDB 1a30, 49 atoms) -- are not
/// redistributable here, so synthetic stand-ins with matching atom counts,
/// element composition and spatial statistics (globular packing vs small
/// branched organic) are generated instead; the figures those systems feed
/// depend only on these statistics (see DESIGN.md).

#include <cstdint>

#include "grid/structure.hpp"

namespace aeqp::core {

/// Bent water molecule (bohr units, experimental geometry).
grid::Structure water();

/// Tetrahedral methane.
grid::Structure methane();

/// Polyethylene H(C2H4)nH: zigzag all-trans backbone, 6n+2 atoms
/// (n = 5000 gives the paper's 30,002-atom system).
grid::Structure polyethylene_chain(std::size_t n);

/// Globular H/C/N/O cluster with protein-like composition and packing
/// density; n_atoms = 3006 reproduces the RBD-scale workload of Fig. 8(a).
grid::Structure rbd_like_cluster(std::size_t n_atoms, std::uint64_t seed = 1);

/// Small branched organic molecule standing in for the 49-atom HIV-1
/// protease ligand of Fig. 8(b).
grid::Structure ligand_like(std::size_t n_atoms = 49, std::uint64_t seed = 7);

}  // namespace aeqp::core
