#pragma once

/// \file dfpt.hpp
/// Density-functional perturbation theory for homogeneous electric fields
/// (paper Sec. 2.1, Eqs. 7-13) -- the quantum perturbation self-consistency
/// cycle of Fig. 1, organized in the four OpenCL-accelerated phases of the
/// paper's artifact:
///
///   DM     response of the density matrix P^(1)            (Eq. 7)
///   Sumup  real-space response density n^(1)(r)            (Eq. 8)
///   Rho    response electrostatic potential v^(1)_es,tot   (Eq. 9)
///   H      response Hamiltonian H^(1)                      (Eqs. 10-12)
///
/// The cycle updates the coefficient response C^(1) through the Sternheimer
/// (sum-over-states) solution and iterates until self-consistency, then
/// forms the polarizability (Eq. 13).

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "grid/batch.hpp"
#include "kernels/batch_kernels.hpp"
#include "linalg/matrix.hpp"
#include "scf/scf_solver.hpp"
#include "simt/runtime.hpp"

namespace aeqp::core {

/// Names of the timed DFPT phases, matching the paper's Fig. 14 legend.
enum class Phase { DM, Sumup, Rho, H, Sternheimer };

/// Wall-clock seconds accumulated per phase.
using PhaseTimes = std::map<Phase, double>;

[[nodiscard]] std::string phase_name(Phase p);

/// Snapshot handed to a CpscfObserver after the DM update of every CPSCF
/// iteration (P^(1) and the residual are final for the iteration at that
/// point; the Sumup/Rho phases that follow are derived from P^(1) alone).
struct CpscfIterationState {
  int direction = 0;
  int iteration = 0;
  double delta = 0.0;   ///< max |Delta P^(1)| of this iteration
  double mixing = 0.0;  ///< mixing factor in effect
  const linalg::Matrix* p1 = nullptr;  ///< response density matrix
};

/// What the observer wants the cycle to do next. Abort ends the cycle
/// immediately (result reports converged = false); the resilience layer
/// uses it to cut off a numerically poisoned run before it wastes more
/// iterations.
enum class CpscfAction { Continue, Abort };

/// Per-iteration hook (health validation, checkpointing). In the parallel
/// solver it runs on rank 0 only and its decision is broadcast, so side
/// effects happen exactly once.
using CpscfObserver = std::function<CpscfAction(const CpscfIterationState&)>;

/// Resume point for a CPSCF cycle: the response density matrix after
/// `iteration` completed iterations. The response potential is recomputed
/// from P^(1) on resume, which reproduces the uninterrupted trajectory
/// bit-for-bit.
struct CpscfWarmStart {
  int iteration = 0;
  linalg::Matrix p1;
};

/// DFPT configuration.
struct DfptOptions {
  int max_iterations = 40;
  double tolerance = 1e-6;     ///< max |Delta P^(1)| convergence threshold
  double mixing = 0.5;         ///< linear mixing of P^(1) between cycles
  /// Perturbation frequency omega in hartree (0 = static response). The
  /// dynamic Sternheimer amplitudes X_ai = H1_ai/(eps_i - eps_a + omega)
  /// and Y_ai = H1_ai/(eps_i - eps_a - omega) yield the frequency-dependent
  /// polarizability alpha(omega); omega must stay below the first
  /// excitation (|eps_i - eps_a| > omega) for a real response.
  double frequency = 0.0;
  /// Execute the grid-heavy Sumup and H phases through the OpenCL-style
  /// SIMT runtime (work-group per batch, __local dense blocks) instead of
  /// the host integrator. Results are identical; the runtime's counters
  /// feed the device models. Null = host execution.
  std::shared_ptr<simt::SimtRuntime> device;
  /// Batch size used when `device` is set; 0 = the tuned value
  /// (tune::config().grid_batch_points, default 128).
  std::size_t device_batch_points = 0;
  /// Cutoff-screening threshold tau for the batched Rho-phase evaluation
  /// (BasisSet::screening_radii). 0 disables screening entirely, which is
  /// bit-identical to the unscreened path; the default drops contributions
  /// of magnitude <= ~1e-12, far below the 1e-6 CPSCF tolerance. Screening
  /// decisions derive from geometry and tau only, so any tau preserves the
  /// thread/rank determinism contract (docs/performance.md).
  double screening_threshold = 1e-12;
  /// Grid points per potential_batch block in the Rho phase; 0 = the tuned
  /// value. Blocking never changes results (each point's potential is
  /// independent), only cache behavior.
  std::size_t rho_block_size = 0;
  bool verbose = false;
  /// Run the Sternheimer/DM matmuls through the ABFT-checksummed variants
  /// (linalg/abft.hpp): a single corrupted product element is located and
  /// corrected in place, wider corruption raises linalg::AbftError for the
  /// recovery ladder. Fault-free the verified products are bit-identical to
  /// the plain kernels, at an O(n^2)-per-O(n^3) verification cost.
  bool abft = true;
  /// Per-iteration hook for health validation and checkpointing; may abort
  /// the cycle. Null = no observation.
  CpscfObserver observer;
  /// Resume from a previous iteration's state instead of from scratch.
  std::shared_ptr<const CpscfWarmStart> warm_start;
  /// Throw a detailed aeqp::Error (iterations, last residual, mixing) when
  /// the cycle exhausts max_iterations without converging, instead of
  /// returning converged = false.
  bool require_convergence = false;
};

/// Result of one perturbation direction J.
struct DfptDirectionResult {
  bool converged = false;
  bool aborted = false;  ///< an observer cut the cycle off (see CpscfAction)
  int iterations = 0;
  Vec3 dipole_response{};            ///< d mu_I / d xi_J via \int r_I n^(1)
  /// Same quantity via the matrix trace Tr(P^(1) D_I) -- an independent
  /// code path (density-matrix contraction instead of grid moments); the
  /// two agree to grid accuracy and are cross-checked in the tests.
  Vec3 dipole_response_trace{};
  linalg::Matrix p1;                 ///< converged P^(1)
  std::vector<double> n1_samples;    ///< n^(1) on the integration grid
  PhaseTimes phase_seconds;
};

/// Full polarizability run.
struct DfptResult {
  std::array<DfptDirectionResult, 3> directions;
  /// alpha_IJ = d mu_I / d xi_J (Eq. 13), bohr^3.
  [[nodiscard]] double polarizability(int i, int j) const {
    return directions[static_cast<std::size_t>(j)].dipole_response[i];
  }
  [[nodiscard]] double isotropic_polarizability() const {
    return (polarizability(0, 0) + polarizability(1, 1) + polarizability(2, 2)) /
           3.0;
  }
  [[nodiscard]] PhaseTimes total_phase_seconds() const;
};

/// DFPT driver bound to a converged ground state.
class DfptSolver {
public:
  /// `ground` must come from a converged ScfSolver::run() on the same
  /// structure; its basis/grid/integrator/Hartree machinery is reused.
  DfptSolver(const scf::ScfResult& ground, DfptOptions options);

  /// Solve the CPSCF cycle for one field direction J in {0,1,2}.
  [[nodiscard]] DfptDirectionResult solve_direction(int j) const;

  /// All three directions -> polarizability tensor.
  [[nodiscard]] DfptResult solve_all() const;

private:
  const scf::ScfResult& ground_;
  DfptOptions options_;
  linalg::Matrix c_occ_;   ///< occupied orbital coefficients
  linalg::Matrix c_virt_;  ///< virtual orbital coefficients
  std::vector<double> fxc_;  ///< LDA kernel f_xc(n_0(r)) per grid point
  /// Per-atom screening radii for the batched Rho evaluation, from
  /// options.screening_threshold (empty span semantics handled downstream).
  std::vector<double> screen_radii_;
  // Device-engine state (populated when options.device is set).
  std::vector<grid::Batch> device_batches_;
  std::vector<kernels::BatchSupport> device_supports_;
};

}  // namespace aeqp::core
