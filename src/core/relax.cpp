#include "core/relax.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/log.hpp"

namespace aeqp::core {
namespace {

grid::Structure with_coords(const grid::Structure& ref,
                            const std::vector<double>& x) {
  std::vector<grid::Atom> atoms = ref.atoms();
  for (std::size_t k = 0; k < x.size(); ++k)
    atoms[k / 3].pos[static_cast<int>(k % 3)] = x[k];
  return grid::Structure(atoms);
}

}  // namespace

RelaxResult relax_structure(const grid::Structure& structure,
                            const RelaxOptions& options) {
  AEQP_CHECK(structure.size() >= 2, "relax_structure: need at least two atoms");
  const std::size_t dof = 3 * structure.size();

  RelaxResult res;
  std::vector<double> x(dof);
  for (std::size_t k = 0; k < dof; ++k)
    x[k] = structure.atom(k / 3).pos[static_cast<int>(k % 3)];

  auto energy_at = [&](const std::vector<double>& coords) {
    const auto r = scf::ScfSolver(with_coords(structure, coords), options.scf).run();
    AEQP_CHECK(r.converged, "relax_structure: SCF failed at a trial geometry");
    ++res.energy_evaluations;
    return r.total_energy;
  };

  double e = energy_at(x);
  double trial_step = options.initial_step;

  for (res.steps = 1; res.steps <= options.max_steps; ++res.steps) {
    // Central-difference gradient.
    std::vector<double> g(dof);
    res.max_force = 0.0;
    for (std::size_t k = 0; k < dof; ++k) {
      auto xp = x, xm = x;
      xp[k] += options.gradient_step;
      xm[k] -= options.gradient_step;
      g[k] = (energy_at(xp) - energy_at(xm)) / (2.0 * options.gradient_step);
      res.max_force = std::max(res.max_force, std::fabs(g[k]));
    }
    if (res.max_force < options.force_tolerance) {
      res.converged = true;
      break;
    }

    // Normalized steepest-descent direction with backtracking line search.
    double gnorm = 0.0;
    for (double v : g) gnorm += v * v;
    gnorm = std::sqrt(gnorm);
    double step = trial_step;
    bool improved = false;
    for (int bt = 0; bt < 8; ++bt) {
      auto xt = x;
      for (std::size_t k = 0; k < dof; ++k) xt[k] -= step * g[k] / gnorm;
      const double et = energy_at(xt);
      if (et < e - 1e-10) {
        x = std::move(xt);
        e = et;
        improved = true;
        trial_step = step * 1.3;  // be braver next time
        break;
      }
      step *= 0.4;
    }
    if (!improved) {
      // The surface is flat below the line-search resolution; declare
      // convergence at the measured residual force.
      res.converged = res.max_force < 5.0 * options.force_tolerance;
      break;
    }
    AEQP_LOG_DEBUG << "relax step " << res.steps << " E=" << e
                   << " max|F|=" << res.max_force;
  }

  res.structure = with_coords(structure, x);
  res.energy = e;
  return res;
}

}  // namespace aeqp::core
