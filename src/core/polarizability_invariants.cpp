#include "core/polarizability_invariants.hpp"

namespace aeqp::core {
namespace {
constexpr int kXX = 0, kXY = 1, kXZ = 2, kYY = 4, kYZ = 5, kZZ = 8;
}

double isotropic_mean(const Tensor3& t) {
  return (t[kXX] + t[kYY] + t[kZZ]) / 3.0;
}

double anisotropy_squared(const Tensor3& t) {
  const double dxy = t[kXX] - t[kYY];
  const double dyz = t[kYY] - t[kZZ];
  const double dzx = t[kZZ] - t[kXX];
  return 0.5 * (dxy * dxy + dyz * dyz + dzx * dzx) +
         3.0 * (t[kXY] * t[kXY] + t[kXZ] * t[kXZ] + t[kYZ] * t[kYZ]);
}

double raman_activity(const Tensor3& d) {
  const double a = isotropic_mean(d);
  return 45.0 * a * a + 7.0 * anisotropy_squared(d);
}

double depolarization_ratio(const Tensor3& d) {
  const double a = isotropic_mean(d);
  const double g2 = anisotropy_squared(d);
  const double denom = 45.0 * a * a + 4.0 * g2;
  return denom > 0.0 ? 3.0 * g2 / denom : 0.0;
}

}  // namespace aeqp::core
