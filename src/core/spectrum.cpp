#include "core/spectrum.hpp"

#include "common/error.hpp"

namespace aeqp::core {

Spectrum lorentzian_spectrum(const std::vector<SpectralLine>& lines,
                             double freq_min, double freq_max,
                             std::size_t points, double hwhm) {
  AEQP_CHECK(points >= 2, "lorentzian_spectrum: need >= 2 grid points");
  AEQP_CHECK(freq_max > freq_min, "lorentzian_spectrum: empty frequency window");
  AEQP_CHECK(hwhm > 0.0, "lorentzian_spectrum: hwhm must be positive");

  Spectrum s;
  s.freq_min = freq_min;
  s.freq_step = (freq_max - freq_min) / static_cast<double>(points - 1);
  s.intensity.assign(points, 0.0);
  const double g2 = hwhm * hwhm;
  for (std::size_t i = 0; i < points; ++i) {
    const double w = s.frequency_at(i);
    double acc = 0.0;
    for (const auto& line : lines) {
      const double d = w - line.frequency;
      acc += line.intensity * g2 / (d * d + g2);
    }
    s.intensity[i] = acc;
  }
  return s;
}

std::vector<std::size_t> find_peaks(const Spectrum& spectrum) {
  std::vector<std::size_t> peaks;
  const auto& y = spectrum.intensity;
  for (std::size_t i = 1; i + 1 < y.size(); ++i)
    if (y[i] > y[i - 1] && y[i] >= y[i + 1]) peaks.push_back(i);
  return peaks;
}

}  // namespace aeqp::core
