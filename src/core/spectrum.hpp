#pragma once

/// \file spectrum.hpp
/// Broadened spectra from discrete (frequency, intensity) sticks -- the
/// last step of the Raman pipeline (and of any simulated vibrational
/// spectrum): convolve the stick spectrum with a Lorentzian line shape on
/// a uniform frequency grid.

#include <cstddef>
#include <vector>

namespace aeqp::core {

/// One discrete transition.
struct SpectralLine {
  double frequency = 0.0;  ///< cm^-1
  double intensity = 0.0;  ///< arbitrary units (e.g. Raman activity)
};

/// Uniformly sampled broadened spectrum.
struct Spectrum {
  double freq_min = 0.0;
  double freq_step = 0.0;
  std::vector<double> intensity;

  [[nodiscard]] double frequency_at(std::size_t i) const {
    return freq_min + freq_step * static_cast<double>(i);
  }
};

/// Convolve sticks with Lorentzians of half-width-at-half-maximum `hwhm`:
/// I(w) = sum_k I_k * (hwhm^2 / ((w - w_k)^2 + hwhm^2)).
Spectrum lorentzian_spectrum(const std::vector<SpectralLine>& lines,
                             double freq_min, double freq_max,
                             std::size_t points, double hwhm);

/// Indices of local maxima of a spectrum (peak picking).
std::vector<std::size_t> find_peaks(const Spectrum& spectrum);

}  // namespace aeqp::core
