#include "core/parallel_dfpt.hpp"

#include <chrono>
#include <cmath>
#include <sstream>
#include <utility>

#include "basis/basis_set.hpp"
#include "common/error.hpp"
#include "common/thread_ident.hpp"
#include "common/timer.hpp"
#include "linalg/abft.hpp"
#include "linalg/sparse.hpp"
#include "obs/memaudit.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/cluster.hpp"
#include "parallel/fault.hpp"
#include "poisson/multipole.hpp"
#include "resilience/guards.hpp"
#include "resilience/membudget.hpp"
#include "resilience/sdc_inject.hpp"
#include "tune/tune.hpp"
#include "xc/lda.hpp"

namespace aeqp::core {

using linalg::Matrix;

ParallelDfptResult solve_direction_parallel(const scf::ScfResult& ground,
                                            const ParallelDfptOptions& options,
                                            int direction) {
  AEQP_CHECK(direction >= 0 && direction < 3,
             "solve_direction_parallel: direction must be 0..2");
  AEQP_CHECK(ground.converged, "solve_direction_parallel: unconverged ground state");
  AEQP_CHECK(ground.basis && ground.grid && ground.integrator && ground.hartree,
             "solve_direction_parallel: ground state lacks shared machinery");

  const auto& basis = *ground.basis;
  const auto& grid = *ground.grid;
  const auto& integ = *ground.integrator;
  const auto& hartree = *ground.hartree;
  const std::size_t nb = ground.coefficients.rows();
  const std::size_t n_occ = static_cast<std::size_t>(ground.n_occupied);
  const std::size_t n_virt = nb - n_occ;
  const std::size_t np = grid.size();

  // Elastic world: a non-empty active_ranks list re-enters the solver at a
  // reduced world size after permanent rank loss. n_active is the world the
  // run executes on; options.ranks stays the original world fault plans and
  // the initial mapping are expressed in.
  const std::vector<std::size_t>& active = options.active_ranks;
  const std::size_t n_active = active.empty() ? options.ranks : active.size();
  for (std::size_t s = 0; s < active.size(); ++s) {
    AEQP_CHECK(active[s] < options.ranks,
               "solve_direction_parallel: active rank out of range");
    AEQP_CHECK(s == 0 || active[s - 1] < active[s],
               "solve_direction_parallel: active_ranks must be strictly "
               "increasing");
  }

  // Shared, read-only setup: batches, locality mapping, XC kernel, the
  // occupied/virtual splits and the bare perturbation (identical to the
  // serial DfptSolver; see dfpt.cpp).
  const auto batches =
      grid::make_batches(grid, tune::grid_batch_points(options.batch_points));
  AEQP_CHECK(batches.size() >= options.ranks,
             "solve_direction_parallel: more ranks than batches");
  auto assignment = mapping::locality_enhancing_mapping(batches, options.ranks);
  ParallelDfptResult out;
  if (n_active < options.ranks) {
    // Survivor re-mapping: re-home the dead ranks' batches with the same
    // locality objective, keeping the survivors' own batches in place.
    Timer remap_timer;
    auto remap = mapping::remap_for_survivors(assignment, batches, active);
    out.stats.remap_seconds = remap_timer.seconds();
    out.stats.remap_batches_moved = remap.moved_batches;
    assignment = std::move(remap.assignment);
    obs::trace_instant("elastic/remap");
  }
  out.stats.survivor_ranks = n_active;
  out.stats.lost_ranks = options.ranks - n_active;

  // Current-world speed weights (1.0 = healthy); reused by the weighted
  // Rho-producer row split when distribute_rho is on.
  std::vector<double> world_weights(n_active, 1.0);
  if (!options.rank_speed_weights.empty()) {
    // Straggler rebalance rung: re-home batches around the measured rank
    // speeds. Weights are original-world indexed; translate to the running
    // world's slots (identity when no shrink happened). Every rank computes
    // the same deterministic mapping, so results stay bit-identical to a
    // run that started from this assignment.
    AEQP_CHECK(options.rank_speed_weights.size() == options.ranks,
               "solve_direction_parallel: rank_speed_weights must cover the "
               "original world");
    std::size_t n_slow = 0;
    for (std::size_t s = 0; s < n_active; ++s) {
      world_weights[s] =
          options.rank_speed_weights[active.empty() ? s : active[s]];
      if (world_weights[s] < 1.0) ++n_slow;
    }
    Timer rebalance_timer;
    auto rebalance =
        mapping::rebalance_for_slow_ranks(assignment, batches, world_weights);
    out.stats.rebalance_seconds = rebalance_timer.seconds();
    out.stats.rebalance_batches_moved = rebalance.moved_batches;
    out.stats.rebalances = 1;
    out.stats.degraded_ranks = n_slow;
    assignment = std::move(rebalance.assignment);
    obs::trace_instant("mapping/rebalance");
  }

  // Weighted contiguous row ranges of the Poisson producer (empty = the
  // replicated producer). Shares are proportional to the measured speed
  // weights -- an 8x-slow rank projects ~1/8 as many rho_multipole rows --
  // and every rank derives the identical split, so the packed synthesis
  // below sums disjoint contributions in a fixed order.
  std::vector<std::size_t> rho_row_begin;
  if (options.distribute_rho && n_active > 1) {
    const std::size_t nrows = hartree.projection_row_count();
    rho_row_begin.assign(n_active + 1, 0);
    double wsum = 0.0;
    for (double wv : world_weights) wsum += wv;
    double acc = 0.0;
    for (std::size_t s = 0; s + 1 < n_active; ++s) {
      acc += world_weights[s];
      rho_row_begin[s + 1] = std::max(
          rho_row_begin[s],
          static_cast<std::size_t>(std::llround(
              static_cast<double>(nrows) * acc / wsum)));
    }
    rho_row_begin[n_active] = nrows;
    for (std::size_t s = 0; s < n_active; ++s)
      rho_row_begin[s + 1] = std::max(rho_row_begin[s + 1], rho_row_begin[s]);
  }

  std::vector<double> fxc(np);
  for (std::size_t p = 0; p < np; ++p)
    fxc[p] = xc::lda_evaluate(std::max(ground.density_samples[p], 0.0)).fxc;

  // Screening radii are shared read-only state: geometry + threshold only,
  // so every rank derives identical screening decisions.
  const std::vector<double> screen_radii =
      basis.screening_radii(options.dfpt.screening_threshold);

  Matrix c_occ(nb, n_occ), c_virt(nb, n_virt);
  for (std::size_t mu = 0; mu < nb; ++mu) {
    for (std::size_t i = 0; i < n_occ; ++i) c_occ(mu, i) = ground.coefficients(mu, i);
    for (std::size_t a = 0; a < n_virt; ++a)
      c_virt(mu, a - 0) = ground.coefficients(mu, n_occ + a);
  }
  Matrix h1_ext = integ.dipole_matrix(direction);
  h1_ext.scale(-1.0);

  out.stats.batches = batches.size();
  std::size_t total_pts = 0, max_pts = 0;
  for (std::size_t r = 0; r < n_active; ++r) {
    const std::size_t pts = assignment.points_of_rank(r, batches);
    total_pts += pts;
    max_pts = std::max(max_pts, pts);
  }
  out.stats.max_rank_points_share =
      static_cast<double>(max_pts) * n_active / static_cast<double>(total_pts);

  // Shared output buffers; ranks write disjoint point sets.
  std::vector<double> n1_full(np, 0.0);
  std::vector<std::size_t> collectives(n_active, 0);
  std::vector<std::size_t> rows(n_active, 0);
  DfptDirectionResult result;
  result.phase_seconds[Phase::DM] = result.phase_seconds[Phase::Sumup] =
      result.phase_seconds[Phase::Rho] = result.phase_seconds[Phase::H] =
          result.phase_seconds[Phase::Sternheimer] = 0.0;

  double final_delta = 0.0;  // written by rank 0 (deltas are replicated)

  parallel::Cluster cluster(n_active, options.ranks_per_node,
                            std::vector<std::size_t>(active));
  cluster.set_collective_timeout(
      std::chrono::milliseconds(options.collective_timeout_ms));
  cluster.set_fault_injector(options.fault_injector);
  cluster.set_verify_payloads(options.verify_collectives);
  cluster.set_straggler_detector(options.straggler_detector);
  // The constructor already armed adaptive deadlines when the env gate is
  // on (adaptive_deadlines == -1 keeps that); 0/1 force the state.
  if (options.adaptive_deadlines == 0)
    cluster.set_adaptive_deadlines(false);
  else if (options.adaptive_deadlines == 1 ||
           (cluster.adaptive_deadlines() && options.adaptive_floor_ms > 0.0))
    cluster.set_adaptive_deadlines(true, options.adaptive_floor_ms);
  cluster.run([&](parallel::Communicator& comm) {
    // Tag this rank thread: the log sink prefixes its lines and the trace
    // exporter gives it its own lane. Purely observational.
    const ScopedThreadRank rank_tag(static_cast<int>(comm.rank()));
    AEQP_TRACE_SCOPE("cpscf/parallel_direction");
    const auto& my_batches = assignment.batches_of_rank[comm.rank()];
    // Cache this rank's point ids and basis values.
    std::vector<std::uint32_t> my_points;
    for (auto b : my_batches)
      my_points.insert(my_points.end(), batches[b].points.begin(),
                       batches[b].points.end());
    // Governor probes (resilience/membudget.hpp) fire before the two
    // dominant per-rank allocations are committed: an over-budget rank
    // raises the structured OutOfMemoryBudget here, where the recovery
    // ladder can catch it, instead of dying in std::bad_alloc mid-resize.
    std::vector<basis::PointEval> my_eval;
    basis::PointEval eval_scratch;  // on-the-fly slot when the cache is shed
    if (options.cache_point_evals) {
      resilience::oom_probe("dfpt/point_cache",
                            my_points.size() * (sizeof(basis::PointEval) +
                                                sizeof(std::uint32_t)));
      my_eval.resize(my_points.size());
      for (std::size_t k = 0; k < my_points.size(); ++k)
        basis.evaluate(grid.point(my_points[k]).pos, false, my_eval[k]);
    }
    resilience::oom_probe("dfpt/p1_replicated", nb * nb * sizeof(double));
    Matrix p1(nb, nb);
    // Memory audit (ROADMAP item 3): P^(1) is fully replicated per rank
    // (O(N^2) in global basis size) and the point-eval cache scales with
    // the rank's point share -- the two dominant per-rank structures this
    // solver holds. Scopes release when the rank lambda returns.
    obs::MemScope p1_mem("dfpt/p1_replicated");
    obs::MemScope eval_mem("dfpt/point_cache");
    if (obs::memaudit_enabled()) {
      p1_mem.add(static_cast<std::int64_t>(nb * nb * sizeof(double)));
      std::int64_t eval_bytes = static_cast<std::int64_t>(
          my_eval.capacity() * sizeof(basis::PointEval) +
          my_points.capacity() * sizeof(std::uint32_t));
      for (const auto& ev : my_eval)
        eval_bytes += static_cast<std::int64_t>(
            ev.indices.capacity() * sizeof(std::uint32_t) +
            (ev.values.capacity() + ev.laplacians.capacity()) *
                sizeof(double));
      eval_mem.add(eval_bytes);
    }
    // Re-check committed usage now that the measured cache bytes are on the
    // gauges: the pre-allocation probe used a per-slot estimate, this one
    // is exact (request 0 = audit the ceiling, admit nothing new).
    resilience::oom_probe("dfpt/point_cache_commit", 0);
    std::vector<double> v1_own(my_points.size(), 0.0);
    std::vector<double> n1_own(my_points.size(), 0.0);
    bool have_response = false;
    Timer timer;

    // Point-eval accessor shared by the Sumup and H loops: the cached slot
    // when the cache is resident, deterministic re-evaluation into the
    // scratch slot when the relief ladder shed it. Bit-identical either
    // way: same evaluator, same points, same accumulation order.
    const auto eval_of = [&](std::size_t k) -> const basis::PointEval& {
      if (options.cache_point_evals) return my_eval[k];
      basis.evaluate(grid.point(my_points[k]).pos, false, eval_scratch);
      return eval_scratch;
    };

    // Sumup and Rho restricted to this rank's points, as functions of the
    // (replicated) P^(1); shared by the iteration body and the warm-start
    // path so a resume recomputes the derived response state identically.
    const auto compute_sumup_own = [&]() {
      linalg::CsrMatrix p1_csr;
      if (options.storage == HamiltonianStorage::GlobalSparseCsr) {
        std::vector<linalg::Triplet> trips;
        trips.reserve(nb * nb);
        for (std::size_t i = 0; i < nb; ++i)
          for (std::size_t j = 0; j < nb; ++j)
            if (p1(i, j) != 0.0) trips.push_back({i, j, p1(i, j)});
        p1_csr = linalg::CsrMatrix(nb, nb, std::move(trips));
      }
      for (std::size_t k = 0; k < my_points.size(); ++k) {
        const auto& ev = eval_of(k);
        double acc = 0.0;
        if (options.storage == HamiltonianStorage::GlobalSparseCsr) {
          for (std::size_t i = 0; i < ev.indices.size(); ++i) {
            double rowsum = 0.0;
            for (std::size_t j = 0; j < ev.indices.size(); ++j)
              rowsum += p1_csr.fetch(ev.indices[i], ev.indices[j]) * ev.values[j];
            acc += ev.values[i] * rowsum;
          }
        } else {
          for (std::size_t i = 0; i < ev.indices.size(); ++i) {
            const double* prow = p1.data() + ev.indices[i] * nb;
            double rowsum = 0.0;
            for (std::size_t j = 0; j < ev.indices.size(); ++j)
              rowsum += prow[ev.indices[j]] * ev.values[j];
            acc += ev.values[i] * rowsum;
          }
        }
        n1_own[k] = acc;
      }
      // Compute-site probe for this rank's density batch; events can
      // target one rank through the thread's rank tag.
      resilience::sdc_probe("cpscf/rho_batch", {n1_own.data(), n1_own.size()});
    };
    const auto compute_rho_own = [&]() {
      // Batched producer: angular rings are evaluated through the screened
      // batch path (ring blocks are geometry-defined, hence rank-identical).
      const poisson::BatchDensityFn n1_fn = [&](const Vec3* pts, std::size_t m,
                                                double* outp) {
        thread_local basis::BatchEval ev;
        basis.evaluate_batch(pts, m, screen_radii, ev);
        basis::contract_density(p1, ev, outp);
      };
      poisson::PartitionedPotential v1_part;
      if (!rho_row_begin.empty()) {
        // Distributed producer: this rank projects only its weighted share
        // of the (atom, shell) rows; the full rho_multipole is synthesized
        // with a packed row-by-row AllReduce. Each row is computed by
        // exactly one rank and summed with exact zeros, so the synthesized
        // samples -- and everything downstream -- are bit-identical to the
        // replicated producer.
        auto rho_m = hartree.project_rows(n1_fn, rho_row_begin[comm.rank()],
                                          rho_row_begin[comm.rank() + 1]);
        comm::PackedAllReducer packer(
            comm, options.reduce_mode,
            tune::pack_window_bytes(options.pack_bytes),
            options.verify_collectives);
        for (auto& per_atom : rho_m.samples)
          for (auto& channel : per_atom)
            packer.add(std::span<double>(channel.data(), channel.size()));
        packer.flush();
        collectives[comm.rank()] += packer.collective_count();
        rows[comm.rank()] += packer.rows_packed();
        hartree.finalize_splines(rho_m);
        v1_part = hartree.solve(rho_m);
      } else {
        v1_part = hartree.solve_density(n1_fn);
      }
      // Batched consumer over this rank's points; per-point values are
      // independent, so blocking never changes v1_own.
      const std::size_t block = tune::rho_block_size(options.dfpt.rho_block_size);
      std::vector<Vec3> ppos;
      std::vector<double> vh;
      for (std::size_t b0 = 0; b0 < my_points.size(); b0 += block) {
        const std::size_t e0 = std::min(my_points.size(), b0 + block);
        ppos.resize(e0 - b0);
        vh.resize(e0 - b0);
        for (std::size_t k = b0; k < e0; ++k)
          ppos[k - b0] = grid.point(my_points[k]).pos;
        hartree.potential_batch(v1_part, ppos.data(), e0 - b0, vh.data());
        for (std::size_t k = b0; k < e0; ++k)
          v1_own[k] = vh[k - b0] + fxc[my_points[k]] * n1_own[k];
      }
    };

    int start_iteration = 0;
    if (options.dfpt.warm_start) {
      const auto& ws = *options.dfpt.warm_start;
      AEQP_CHECK(ws.p1.rows() == nb && ws.p1.cols() == nb,
                 "solve_direction_parallel: warm start P^(1) has wrong dimensions");
      AEQP_CHECK(ws.iteration >= 1 && ws.iteration < options.dfpt.max_iterations,
                 "solve_direction_parallel: warm start iteration outside "
                 "(0, max_iterations)");
      p1 = ws.p1;
      have_response = true;
      start_iteration = ws.iteration;
      compute_sumup_own();
      compute_rho_own();
    }

    for (int iter = start_iteration + 1; iter <= options.dfpt.max_iterations;
         ++iter) {
      // --- H phase (distributed): partial response-Hamiltonian integrals
      //     over this rank's grid points, synthesized by packed AllReduce.
      timer.reset();
      obs::PhaseSpan phase_span;
      phase_span.begin("cpscf/h");
      Matrix h1 = h1_ext;
      if (have_response) {
        Matrix partial(nb, nb);
        for (std::size_t k = 0; k < my_points.size(); ++k) {
          const double w = grid.point(my_points[k]).weight * v1_own[k];
          const auto& ev = eval_of(k);
          for (std::size_t i = 0; i < ev.indices.size(); ++i) {
            const double wi = w * ev.values[i];
            for (std::size_t j = 0; j < ev.indices.size(); ++j)
              partial(ev.indices[i], ev.indices[j]) += wi * ev.values[j];
          }
        }
        comm::PackedAllReducer packer(comm, options.reduce_mode,
                                      tune::pack_window_bytes(options.pack_bytes),
                                      options.verify_collectives);
        for (std::size_t row = 0; row < nb; ++row)
          packer.add(std::span<double>(partial.data() + row * nb, nb));
        packer.flush();
        collectives[comm.rank()] += packer.collective_count();
        rows[comm.rank()] += packer.rows_packed();
        h1.axpy(1.0, partial);
        h1.symmetrize();
      }
      // Synthesized response Hamiltonian must be Hermitian and finite on
      // every rank (replicated value -- all ranks check, all ranks throw
      // together on violation, keeping the collective schedule aligned).
      resilience::guard_hermitian(h1, "cpscf/h1");
      phase_span.end();
      if (comm.rank() == 0) result.phase_seconds[Phase::H] += timer.seconds();

      // --- Sternheimer + DM (replicated; identical on every rank). ---
      timer.reset();
      phase_span.begin("cpscf/sternheimer");
      // With ABFT on, the replicated Sternheimer/DM products carry
      // checksums on every rank: a compute-site fault on one rank is
      // corrected locally before it can de-synchronize the replicas.
      const Matrix h1_vo =
          options.dfpt.abft
              ? linalg::abft_matmul_tn(
                    c_virt,
                    linalg::abft_matmul(h1, c_occ, "cpscf/sternheimer_matmul"),
                    "cpscf/sternheimer_matmul")
              : linalg::matmul_tn(c_virt, linalg::matmul(h1, c_occ));
      Matrix u(n_virt, n_occ);
      for (std::size_t a = 0; a < n_virt; ++a)
        for (std::size_t i = 0; i < n_occ; ++i)
          u(a, i) = h1_vo(a, i) / (ground.eigenvalues[i] -
                                   ground.eigenvalues[n_occ + a]);
      const Matrix c1 = options.dfpt.abft
                            ? linalg::abft_matmul(c_virt, u, "cpscf/dm_matmul")
                            : linalg::matmul(c_virt, u);
      phase_span.end();
      if (comm.rank() == 0)
        result.phase_seconds[Phase::Sternheimer] += timer.seconds();

      timer.reset();
      phase_span.begin("cpscf/dm");
      Matrix p1_new(nb, nb);
      for (std::size_t i = 0; i < n_occ; ++i) {
        const double f = ground.occupations[i];
        for (std::size_t mu = 0; mu < nb; ++mu) {
          const double c1mi = c1(mu, i), cmi = c_occ(mu, i);
          for (std::size_t nu = 0; nu < nb; ++nu)
            p1_new(mu, nu) += f * (c1mi * c_occ(nu, i) + cmi * c1(nu, i));
        }
      }
      if (have_response) {
        p1_new.scale(options.dfpt.mixing);
        p1_new.axpy(1.0 - options.dfpt.mixing, p1);
      }
      const double delta = p1_new.max_abs_diff(p1);
      p1 = std::move(p1_new);
      // Phase-boundary invariants on the replicated P^(1): finite, and
      // traceless against the overlap metric (electron-count conservation).
      resilience::guard_finite(p1, "cpscf/p1");
      resilience::guard_trace_identity(p1, ground.overlap, 0.0, "cpscf/p1");
      phase_span.end();
      if (comm.rank() == 0) {
        result.phase_seconds[Phase::DM] += timer.seconds();
        result.iterations = iter;
        final_delta = delta;
      }

      // --- Observer hook (health validation / checkpointing). The hook
      //     runs on rank 0 only, so side effects happen exactly once; its
      //     decision is broadcast so every rank takes the same branch. The
      //     extra collective exists only when an observer is installed,
      //     leaving the baseline collective sequence untouched. ---
      if (options.dfpt.observer) {
        std::vector<double> action(1, 0.0);
        if (comm.rank() == 0) {
          const CpscfIterationState state{direction, iter, delta,
                                          options.dfpt.mixing, &p1};
          if (options.dfpt.observer(state) == CpscfAction::Abort)
            action[0] = 1.0;
        }
        comm.broadcast(action, 0);
        if (action[0] != 0.0) {
          if (comm.rank() == 0) result.aborted = true;
          break;
        }
      }

      // --- Elastic hook: runs on EVERY rank with communicator access and
      //     the (replicated) iteration state -- the buddy-replication entry
      //     point. Placed after the abort broadcast so all ranks take the
      //     same branch and the collective schedule stays uniform. ---
      if (options.rank_hook) {
        const CpscfIterationState state{direction, iter, delta,
                                        options.dfpt.mixing, &p1};
        options.rank_hook(comm, state);
      }

      // --- Sumup phase (distributed): n^(1) on this rank's points. Under
      //     the legacy storage mode the contraction fetches every matrix
      //     element from a CSR copy (row pointer + column search + value,
      //     the inefficiency Fig. 3(a) illustrates); the values are
      //     identical either way. ---
      timer.reset();
      {
        AEQP_TRACE_SCOPE("cpscf/sumup");
        compute_sumup_own();
        // Second rung of the SDC ladder, rank-locally: the batch is a pure
        // function of the replicated P^(1), so one recompute repairs a
        // transient corruption without any collective traffic. A repeat
        // violation escalates (throws; peers see RankFailure and the
        // RecoveryDriver takes over).
        try {
          resilience::guard_finite({n1_own.data(), n1_own.size()},
                                   "cpscf/n1");
        } catch (const InvariantViolation&) {
          obs::counter("sdc/local_recomputes").increment();
          obs::trace_instant("sdc/recompute");
          compute_sumup_own();
          resilience::guard_finite({n1_own.data(), n1_own.size()},
                                   "cpscf/n1");
        }
      }
      if (comm.rank() == 0) result.phase_seconds[Phase::Sumup] += timer.seconds();

      // --- Rho phase: the Poisson producer is replicated on every rank
      //     (communication avoidance) or, with distribute_rho, split into
      //     weighted row shares and synthesized by packed AllReduce; the
      //     consumer runs on own points either way. ---
      timer.reset();
      {
        AEQP_TRACE_SCOPE("cpscf/rho");
        compute_rho_own();
        resilience::guard_finite({v1_own.data(), v1_own.size()}, "cpscf/v1");
      }
      if (comm.rank() == 0) result.phase_seconds[Phase::Rho] += timer.seconds();

      have_response = true;
      if (delta < options.dfpt.tolerance && iter > 1) {
        if (comm.rank() == 0) result.converged = true;
        break;
      }
    }

    // Publish this rank's share of n^(1) (disjoint indices) and the moment.
    for (std::size_t k = 0; k < my_points.size(); ++k)
      n1_full[my_points[k]] = n1_own[k];
    std::vector<double> moments(3, 0.0);
    for (std::size_t k = 0; k < my_points.size(); ++k) {
      const grid::GridPoint& gp = grid.point(my_points[k]);
      for (int axis = 0; axis < 3; ++axis)
        moments[static_cast<std::size_t>(axis)] +=
            gp.weight * gp.pos[axis] * n1_own[k];
    }
    comm.allreduce_sum(moments);
    if (comm.rank() == 0) {
      result.dipole_response = {moments[0], moments[1], moments[2]};
      result.p1 = p1;
      for (int axis = 0; axis < 3; ++axis)
        result.dipole_response_trace[axis] =
            linalg::trace_product(p1, integ.dipole_matrix(axis));
    }
  });

  if (!result.converged && !result.aborted && options.dfpt.require_convergence) {
    std::ostringstream msg;
    msg << "solve_direction_parallel: CPSCF failed to converge for direction "
        << direction << ": " << result.iterations
        << " iterations, last max|dP1|=" << final_delta
        << ", tolerance=" << options.dfpt.tolerance
        << ", mixing=" << options.dfpt.mixing << " (" << n_active << " of "
        << options.ranks << " ranks)";
    AEQP_THROW(msg.str());
  }

  result.n1_samples = std::move(n1_full);
  out.direction = std::move(result);
  for (std::size_t r = 0; r < n_active; ++r) {
    out.stats.collectives += collectives[r];
    out.stats.rows_reduced += rows[r];
  }
  out.stats.collectives /= n_active;  // same count on every rank
  out.stats.rows_reduced /= n_active;
  return out;
}

obs::ScopedMetricsSource register_metrics(const ParallelDfptStats& stats,
                                          std::string prefix) {
  return obs::ScopedMetricsSource(
      [&stats, prefix = std::move(prefix)](std::vector<obs::MetricSample>& out) {
        const auto push = [&](const char* name, double v) {
          out.push_back({prefix + "/" + name, v});
        };
        push("collectives", static_cast<double>(stats.collectives));
        push("rows_reduced", static_cast<double>(stats.rows_reduced));
        push("batches", static_cast<double>(stats.batches));
        push("max_rank_points_share", stats.max_rank_points_share);
        push("faults_detected", static_cast<double>(stats.faults_detected));
        push("restores", static_cast<double>(stats.restores));
        push("retries", static_cast<double>(stats.retries));
        push("wasted_iterations", static_cast<double>(stats.wasted_iterations));
        push("survivor_ranks", static_cast<double>(stats.survivor_ranks));
        push("lost_ranks", static_cast<double>(stats.lost_ranks));
        push("remap_batches_moved",
             static_cast<double>(stats.remap_batches_moved));
        push("remap_seconds", stats.remap_seconds);
        push("rebalances", static_cast<double>(stats.rebalances));
        push("rebalance_batches_moved",
             static_cast<double>(stats.rebalance_batches_moved));
        push("rebalance_seconds", stats.rebalance_seconds);
        push("degraded_ranks", static_cast<double>(stats.degraded_ranks));
        push("shrinks", static_cast<double>(stats.shrinks));
        push("buddy_restores", static_cast<double>(stats.buddy_restores));
        push("abft_corrections", static_cast<double>(stats.abft_corrections));
        push("invariant_violations",
             static_cast<double>(stats.invariant_violations));
        push("payload_corruptions",
             static_cast<double>(stats.payload_corruptions));
      });
}

}  // namespace aeqp::core
