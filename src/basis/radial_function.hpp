#pragma once

/// \file radial_function.hpp
/// Numeric radial functions: Slater-type shells tabulated on a logarithmic
/// mesh, smoothly truncated at a cutoff radius and renormalized. The cutoff
/// is what makes the Hamiltonian sparse at scale -- atoms only interact with
/// neighbours whose orbital spheres overlap -- which is the entire premise
/// of the paper's locality-enhancing task mapping.

#include <vector>

#include "basis/element.hpp"
#include "basis/spline.hpp"
#include "grid/radial_grid.hpp"

namespace aeqp::basis {

/// One tabulated radial function R(r) with spline interpolation.
class NumericRadialFunction {
public:
  /// Tabulate the shell on `mesh`, multiply by a cosine cutoff switched on
  /// at `cutoff_onset * r_cut` and zero beyond `r_cut`, then renormalize so
  /// \int R^2 r^2 dr = 1.
  NumericRadialFunction(const RadialShell& shell, const grid::RadialGrid& mesh,
                        double r_cut, double cutoff_onset = 0.7);

  /// R(r); exactly zero beyond the cutoff radius.
  [[nodiscard]] double value(double r) const;

  /// dR/dr (zero beyond cutoff).
  [[nodiscard]] double derivative(double r) const;

  /// d^2R/dr^2 (zero beyond cutoff).
  [[nodiscard]] double second_derivative(double r) const;

  [[nodiscard]] double cutoff() const { return r_cut_; }
  [[nodiscard]] int l() const { return shell_.l; }
  [[nodiscard]] const RadialShell& shell() const { return shell_; }

  /// Tabulated samples aligned with the construction mesh.
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

  /// Interpolating spline (all shells of one basis share the construction
  /// mesh, so callers can pack them into a SplineBundle).
  [[nodiscard]] const CubicSpline& spline() const { return spline_; }

private:
  RadialShell shell_;
  double r_cut_ = 0.0;
  std::vector<double> samples_;
  CubicSpline spline_;
};

/// Smooth cosine cutoff: 1 for r <= on, 0 for r >= off, C^1 in between.
double cutoff_function(double r, double on, double off);

}  // namespace aeqp::basis
