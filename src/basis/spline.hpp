#pragma once

/// \file spline.hpp
/// Natural cubic spline interpolation. Splines are the central data object
/// of the paper's Rho phase: the multipole expansion of the response density
/// (`rho_multipole_spl`) and the partitioned Hartree potential
/// (`delta_v_hart_part_spl`) are both stored as radial cubic splines, built
/// by the producer kernel and interpolated by the consumer kernel.

#include <cstddef>
#include <vector>

namespace aeqp::basis {

/// Natural cubic spline over strictly increasing knots.
class CubicSpline {
public:
  CubicSpline() = default;

  /// Build from knots x (strictly increasing) and samples y.
  CubicSpline(std::vector<double> x, std::vector<double> y);

  [[nodiscard]] bool empty() const { return x_.empty(); }
  [[nodiscard]] std::size_t size() const { return x_.size(); }

  /// Interpolated value; clamped linear extrapolation outside the knot span.
  [[nodiscard]] double value(double x) const;

  /// First derivative of the interpolant.
  [[nodiscard]] double derivative(double x) const;

  /// Second derivative of the interpolant.
  [[nodiscard]] double second_derivative(double x) const;

  /// Number of spline segments (knots - 1).
  [[nodiscard]] std::size_t segments() const { return x_.empty() ? 0 : x_.size() - 1; }

  /// Bytes of coefficient storage; used by the Fig. 12(a) data-volume model.
  [[nodiscard]] std::size_t bytes() const {
    return (x_.size() + y_.size() + y2_.size()) * sizeof(double);
  }

  /// Total CubicSpline constructions since process start (the "number of
  /// cubic splines performed" counter behind paper Fig. 9(c)).
  static std::size_t constructions();
  static void reset_construction_counter();

private:
  [[nodiscard]] std::size_t interval(double x) const;

  std::vector<double> x_, y_, y2_;
};

}  // namespace aeqp::basis
