#pragma once

/// \file spline.hpp
/// Natural cubic spline interpolation. Splines are the central data object
/// of the paper's Rho phase: the multipole expansion of the response density
/// (`rho_multipole_spl`) and the partitioned Hartree potential
/// (`delta_v_hart_part_spl`) are both stored as radial cubic splines, built
/// by the producer kernel and interpolated by the consumer kernel.

#include <cstddef>
#include <vector>

namespace aeqp::basis {

/// Natural cubic spline over strictly increasing knots.
class CubicSpline {
public:
  CubicSpline() = default;

  /// Build from knots x (strictly increasing) and samples y.
  CubicSpline(std::vector<double> x, std::vector<double> y);

  [[nodiscard]] bool empty() const { return x_.empty(); }
  [[nodiscard]] std::size_t size() const { return x_.size(); }

  /// Interpolated value; clamped linear extrapolation outside the knot span.
  [[nodiscard]] double value(double x) const;

  /// First derivative of the interpolant.
  [[nodiscard]] double derivative(double x) const;

  /// Second derivative of the interpolant.
  [[nodiscard]] double second_derivative(double x) const;

  /// Number of spline segments (knots - 1).
  [[nodiscard]] std::size_t segments() const { return x_.empty() ? 0 : x_.size() - 1; }

  /// Bytes of coefficient storage; used by the Fig. 12(a) data-volume model.
  [[nodiscard]] std::size_t bytes() const {
    return (x_.size() + y_.size() + y2_.size()) * sizeof(double);
  }

  /// Total CubicSpline constructions since process start (the "number of
  /// cubic splines performed" counter behind paper Fig. 9(c)).
  static std::size_t constructions();
  static void reset_construction_counter();

  /// Read access for bulk repacking (SplineBundle).
  [[nodiscard]] const std::vector<double>& knots() const { return x_; }
  [[nodiscard]] const std::vector<double>& samples() const { return y_; }
  [[nodiscard]] const std::vector<double>& second_derivs() const { return y2_; }

private:
  [[nodiscard]] std::size_t interval(double x) const;

  std::vector<double> x_, y_, y2_;
};

/// Many cubic splines sharing one knot mesh, packed channel-contiguous so a
/// single evaluation point costs ONE interval search plus an elementwise
/// loop over channels (contiguous loads, no per-channel binary search).
/// This is the Rho-phase consumer layout: the (l,m) channels of one atom's
/// partitioned potential and the radial shells of one element are all
/// evaluated at the same radius. Per-channel arithmetic replicates
/// CubicSpline::value() exactly -- including the boundary extrapolation --
/// so eval_all() is bit-identical to calling value() channel by channel
/// (asserted in tests/test_rho_batch.cpp).
class SplineBundle {
public:
  SplineBundle() = default;

  /// Pack splines with identical knot vectors (checked).
  static SplineBundle pack(const std::vector<const CubicSpline*>& splines);
  /// Convenience overload over a contiguous container of splines.
  static SplineBundle pack(const std::vector<CubicSpline>& splines);

  [[nodiscard]] bool empty() const { return nch_ == 0; }
  [[nodiscard]] std::size_t channels() const { return nch_; }
  [[nodiscard]] std::size_t knots() const { return x_.size(); }

  /// Evaluate every channel at x into out[0..channels()).
  void eval_all(double x, double* out) const;

  /// Bytes of packed coefficient storage (knots, per-channel samples and
  /// second derivatives, boundary slopes); feeds the memory audit.
  [[nodiscard]] std::size_t bytes() const {
    return (x_.size() + y_.size() + y2_.size() + slope_front_.size() +
            slope_back_.size()) *
           sizeof(double);
  }

private:
  std::size_t nch_ = 0;
  std::vector<double> x_;        // shared knots
  std::vector<double> y_, y2_;   // [knot * nch_ + channel]
  // Boundary slopes (CubicSpline::derivative at the end knots), for the
  // clamped linear extrapolation outside the knot span.
  std::vector<double> slope_front_, slope_back_;
};

}  // namespace aeqp::basis
