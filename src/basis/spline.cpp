#include "basis/spline.hpp"

#include <algorithm>
#include <atomic>

#include "common/error.hpp"

namespace aeqp::basis {
namespace {
std::atomic<std::size_t> g_spline_constructions{0};
}

std::size_t CubicSpline::constructions() { return g_spline_constructions.load(); }
void CubicSpline::reset_construction_counter() { g_spline_constructions.store(0); }

CubicSpline::CubicSpline(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  AEQP_CHECK(x_.size() == y_.size(), "CubicSpline: knot/value count mismatch");
  AEQP_CHECK(x_.size() >= 2, "CubicSpline: need at least 2 knots");
  for (std::size_t i = 1; i < x_.size(); ++i)
    AEQP_CHECK(x_[i] > x_[i - 1], "CubicSpline: knots must strictly increase");

  // Solve the tridiagonal system for second derivatives, natural boundary
  // conditions (y'' = 0 at both ends).
  const std::size_t n = x_.size();
  y2_.assign(n, 0.0);
  std::vector<double> u(n, 0.0);
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double sig = (x_[i] - x_[i - 1]) / (x_[i + 1] - x_[i - 1]);
    const double p = sig * y2_[i - 1] + 2.0;
    y2_[i] = (sig - 1.0) / p;
    u[i] = (y_[i + 1] - y_[i]) / (x_[i + 1] - x_[i]) -
           (y_[i] - y_[i - 1]) / (x_[i] - x_[i - 1]);
    u[i] = (6.0 * u[i] / (x_[i + 1] - x_[i - 1]) - sig * u[i - 1]) / p;
  }
  for (std::size_t k = n - 1; k-- > 0;) y2_[k] = y2_[k] * y2_[k + 1] + u[k];

  g_spline_constructions.fetch_add(1, std::memory_order_relaxed);
}

std::size_t CubicSpline::interval(double x) const {
  // Binary search for the segment containing x, clamped to the span.
  const auto it = std::upper_bound(x_.begin(), x_.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - x_.begin());
  if (hi == 0) return 0;
  if (hi >= x_.size()) return x_.size() - 2;
  return hi - 1;
}

double CubicSpline::value(double x) const {
  AEQP_ASSERT(!x_.empty());
  if (x <= x_.front()) {
    // Linear extrapolation using the boundary slope keeps values finite.
    const double slope = derivative(x_.front());
    return y_.front() + slope * (x - x_.front());
  }
  if (x >= x_.back()) {
    const double slope = derivative(x_.back());
    return y_.back() + slope * (x - x_.back());
  }
  const std::size_t i = interval(x);
  const double h = x_[i + 1] - x_[i];
  const double a = (x_[i + 1] - x) / h;
  const double b = (x - x_[i]) / h;
  return a * y_[i] + b * y_[i + 1] +
         ((a * a * a - a) * y2_[i] + (b * b * b - b) * y2_[i + 1]) * (h * h) / 6.0;
}

double CubicSpline::derivative(double x) const {
  AEQP_ASSERT(!x_.empty());
  const double xc = std::clamp(x, x_.front(), x_.back());
  const std::size_t i = interval(xc);
  const double h = x_[i + 1] - x_[i];
  const double a = (x_[i + 1] - xc) / h;
  const double b = (xc - x_[i]) / h;
  return (y_[i + 1] - y_[i]) / h -
         (3.0 * a * a - 1.0) / 6.0 * h * y2_[i] +
         (3.0 * b * b - 1.0) / 6.0 * h * y2_[i + 1];
}

SplineBundle SplineBundle::pack(const std::vector<const CubicSpline*>& splines) {
  SplineBundle b;
  if (splines.empty()) return b;
  const std::vector<double>& x0 = splines.front()->knots();
  b.nch_ = splines.size();
  b.x_ = x0;
  const std::size_t nk = x0.size();
  b.y_.resize(nk * b.nch_);
  b.y2_.resize(nk * b.nch_);
  b.slope_front_.resize(b.nch_);
  b.slope_back_.resize(b.nch_);
  for (std::size_t ch = 0; ch < b.nch_; ++ch) {
    const CubicSpline& s = *splines[ch];
    AEQP_CHECK(s.knots() == x0, "SplineBundle: splines must share one knot mesh");
    for (std::size_t k = 0; k < nk; ++k) {
      b.y_[k * b.nch_ + ch] = s.samples()[k];
      b.y2_[k * b.nch_ + ch] = s.second_derivs()[k];
    }
    // The spline's own derivative at the end knots reproduces value()'s
    // extrapolation slopes bit for bit.
    b.slope_front_[ch] = s.derivative(x0.front());
    b.slope_back_[ch] = s.derivative(x0.back());
  }
  return b;
}

SplineBundle SplineBundle::pack(const std::vector<CubicSpline>& splines) {
  std::vector<const CubicSpline*> ptrs;
  ptrs.reserve(splines.size());
  for (const auto& s : splines) ptrs.push_back(&s);
  return pack(ptrs);
}

void SplineBundle::eval_all(double x, double* out) const {
  AEQP_ASSERT(nch_ > 0);
  const std::size_t nch = nch_;
  if (x <= x_.front()) {
    const double dx = x - x_.front();
    const double* y0 = y_.data();
    for (std::size_t ch = 0; ch < nch; ++ch)
      out[ch] = y0[ch] + slope_front_[ch] * dx;
    return;
  }
  if (x >= x_.back()) {
    const double dx = x - x_.back();
    const double* yb = y_.data() + (x_.size() - 1) * nch;
    for (std::size_t ch = 0; ch < nch; ++ch)
      out[ch] = yb[ch] + slope_back_[ch] * dx;
    return;
  }
  // Same interval search as CubicSpline::interval, run once for the bundle.
  const auto it = std::upper_bound(x_.begin(), x_.end(), x);
  std::size_t hi = static_cast<std::size_t>(it - x_.begin());
  if (hi >= x_.size()) hi = x_.size() - 1;
  const std::size_t i = (hi == 0) ? 0 : hi - 1;
  const double h = x_[i + 1] - x_[i];
  const double a = (x_[i + 1] - x) / h;
  const double b = (x - x_[i]) / h;
  const double wa = a * a * a - a;
  const double wb = b * b * b - b;
  const double hh = h * h;
  const double* yi = y_.data() + i * nch;
  const double* yj = y_.data() + (i + 1) * nch;
  const double* zi = y2_.data() + i * nch;
  const double* zj = y2_.data() + (i + 1) * nch;
  // Elementwise over contiguous channels: no gather, no reduction, no
  // branch -- the loop the vectorizer is meant to eat (value()'s exact
  // expression, including the trailing * (h*h) / 6.0 association).
  for (std::size_t ch = 0; ch < nch; ++ch)
    out[ch] = a * yi[ch] + b * yj[ch] + (wa * zi[ch] + wb * zj[ch]) * hh / 6.0;
}

double CubicSpline::second_derivative(double x) const {
  AEQP_ASSERT(!x_.empty());
  const double xc = std::clamp(x, x_.front(), x_.back());
  const std::size_t i = interval(xc);
  const double h = x_[i + 1] - x_[i];
  const double a = (x_[i + 1] - xc) / h;
  const double b = (xc - x_[i]) / h;
  return a * y2_[i] + b * y2_[i + 1];
}

}  // namespace aeqp::basis
