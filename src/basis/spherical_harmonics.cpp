#include "basis/spherical_harmonics.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace aeqp::basis {
namespace {

/// Normalization sqrt((2l+1)/(4 pi) (l-m)!/(l+m)!) for m >= 0.
double ylm_norm(int l, int m) {
  double ratio = 1.0;  // (l-m)! / (l+m)!
  for (int k = l - m + 1; k <= l + m; ++k) ratio /= static_cast<double>(k);
  return std::sqrt((2.0 * l + 1.0) / constants::four_pi * ratio);
}

}  // namespace

double assoc_legendre(int l, int m, double x) {
  AEQP_CHECK(m >= 0 && m <= l, "assoc_legendre requires 0 <= m <= l");
  AEQP_CHECK(std::fabs(x) <= 1.0 + 1e-12, "assoc_legendre requires |x| <= 1");
  // P_m^m by the closed form, then upward recurrence in l.
  double pmm = 1.0;
  if (m > 0) {
    const double somx2 = std::sqrt(std::max(0.0, (1.0 - x) * (1.0 + x)));
    double fact = 1.0;
    for (int i = 1; i <= m; ++i) {
      pmm *= -fact * somx2;  // Condon-Shortley phase
      fact += 2.0;
    }
  }
  if (l == m) return pmm;
  double pmmp1 = x * (2.0 * m + 1.0) * pmm;
  if (l == m + 1) return pmmp1;
  double pll = 0.0;
  for (int ll = m + 2; ll <= l; ++ll) {
    pll = (x * (2.0 * ll - 1.0) * pmmp1 - (ll + m - 1.0) * pmm) / (ll - m);
    pmm = pmmp1;
    pmmp1 = pll;
  }
  return pll;
}

double real_ylm(int l, int m, const Vec3& u) {
  const int am = std::abs(m);
  const double ct = u.z;
  const double st = std::sqrt(std::max(0.0, 1.0 - ct * ct));
  const double plm = assoc_legendre(l, am, ct);
  if (m == 0) return ylm_norm(l, 0) * plm;

  double cphi = 1.0, sphi = 0.0;
  if (st > 1e-15) {
    cphi = u.x / st;
    sphi = u.y / st;
  }
  // cos(am*phi), sin(am*phi) by Chebyshev-style recurrence.
  double c = cphi, s = sphi;
  for (int k = 1; k < am; ++k) {
    const double cn = c * cphi - s * sphi;
    s = s * cphi + c * sphi;
    c = cn;
  }
  // Cancel the Condon-Shortley phase carried by assoc_legendre so the real
  // harmonics follow the solid-harmonic convention (Y_11 ~ +x, Y_1-1 ~ +y).
  const double cs = (am % 2 == 1) ? -1.0 : 1.0;
  const double norm = cs * std::sqrt(2.0) * ylm_norm(l, am) * plm;
  return m > 0 ? norm * c : norm * s;
}

void real_ylm_all(int l_max, const Vec3& u, std::vector<double>& out) {
  out.resize(lm_count(l_max));
  real_ylm_all(l_max, u, out.data());
}

namespace {

/// Cached normalization factors: n0[l] = ylm_norm(l, 0) for the m = 0
/// harmonics and n2[l][m] = sqrt(2) * ylm_norm(l, m) for m > 0, computed
/// once with exactly the arithmetic real_ylm() uses per call (multiplying
/// by the cached product is bit-identical because the +-1 Condon-Shortley
/// sign commutes exactly through the product).
struct NormTable {
  static constexpr int kLMax = 12;
  double n0[kLMax + 1];
  double n2[kLMax + 1][kLMax + 1];
  NormTable() {
    const double sqrt2 = std::sqrt(2.0);
    for (int l = 0; l <= kLMax; ++l) {
      n0[l] = ylm_norm(l, 0);
      for (int m = 1; m <= l; ++m) n2[l][m] = sqrt2 * ylm_norm(l, m);
    }
  }
};

}  // namespace

void real_ylm_all(int l_max, const Vec3& u, double* out) {
  static const NormTable norms;
  AEQP_CHECK(l_max >= 0 && l_max <= NormTable::kLMax,
             "real_ylm_all: l_max exceeds the cached normalization table");
  const double ct = u.z;
  // Two distinct sine expressions, matching real_ylm()/assoc_legendre()
  // bit for bit: the Legendre seed uses (1-x)(1+x), the azimuthal phase
  // uses 1 - x^2.
  const double somx2 = std::sqrt(std::max(0.0, (1.0 - ct) * (1.0 + ct)));
  const double st = std::sqrt(std::max(0.0, 1.0 - ct * ct));
  double cphi = 1.0, sphi = 0.0;
  if (st > 1e-15) {
    cphi = u.x / st;
    sphi = u.y / st;
  }

  // March m upward, carrying P_m^m, cos(m phi), sin(m phi) incrementally;
  // each per-m update replays one step of the loops real_ylm() runs from
  // scratch, so every intermediate is identical to the per-harmonic path.
  double pmm = 1.0;   // P_m^m (Condon-Shortley phase included)
  double fact = 1.0;  // 2m - 1 accumulated by += 2.0, as in assoc_legendre
  double c = 1.0, s = 0.0;  // cos(m phi), sin(m phi)
  for (int m = 0; m <= l_max; ++m) {
    if (m > 0) {
      pmm *= -fact * somx2;
      fact += 2.0;
      if (m == 1) {
        c = cphi;
        s = sphi;
      } else {
        const double cn = c * cphi - s * sphi;
        s = s * cphi + c * sphi;
        c = cn;
      }
    }
    const double sign = (m % 2 == 1) ? -1.0 : 1.0;
    const auto emit = [&](int l, double plm) {
      if (m == 0) {
        out[lm_index(l, 0)] = norms.n0[l] * plm;
      } else {
        const double t = sign * (norms.n2[l][m] * plm);
        out[lm_index(l, m)] = t * c;
        out[lm_index(l, -m)] = t * s;
      }
    };
    emit(m, pmm);
    if (m < l_max) {
      double pa = pmm;                        // P_m^m
      double pb = ct * (2.0 * m + 1.0) * pmm;  // P_{m+1}^m
      emit(m + 1, pb);
      for (int ll = m + 2; ll <= l_max; ++ll) {
        const double pc =
            (ct * (2.0 * ll - 1.0) * pb - (ll + m - 1.0) * pa) / (ll - m);
        pa = pb;
        pb = pc;
        emit(ll, pc);
      }
    }
  }
}

}  // namespace aeqp::basis
