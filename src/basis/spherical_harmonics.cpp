#include "basis/spherical_harmonics.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace aeqp::basis {
namespace {

/// Normalization sqrt((2l+1)/(4 pi) (l-m)!/(l+m)!) for m >= 0.
double ylm_norm(int l, int m) {
  double ratio = 1.0;  // (l-m)! / (l+m)!
  for (int k = l - m + 1; k <= l + m; ++k) ratio /= static_cast<double>(k);
  return std::sqrt((2.0 * l + 1.0) / constants::four_pi * ratio);
}

}  // namespace

double assoc_legendre(int l, int m, double x) {
  AEQP_CHECK(m >= 0 && m <= l, "assoc_legendre requires 0 <= m <= l");
  AEQP_CHECK(std::fabs(x) <= 1.0 + 1e-12, "assoc_legendre requires |x| <= 1");
  // P_m^m by the closed form, then upward recurrence in l.
  double pmm = 1.0;
  if (m > 0) {
    const double somx2 = std::sqrt(std::max(0.0, (1.0 - x) * (1.0 + x)));
    double fact = 1.0;
    for (int i = 1; i <= m; ++i) {
      pmm *= -fact * somx2;  // Condon-Shortley phase
      fact += 2.0;
    }
  }
  if (l == m) return pmm;
  double pmmp1 = x * (2.0 * m + 1.0) * pmm;
  if (l == m + 1) return pmmp1;
  double pll = 0.0;
  for (int ll = m + 2; ll <= l; ++ll) {
    pll = (x * (2.0 * ll - 1.0) * pmmp1 - (ll + m - 1.0) * pmm) / (ll - m);
    pmm = pmmp1;
    pmmp1 = pll;
  }
  return pll;
}

double real_ylm(int l, int m, const Vec3& u) {
  const int am = std::abs(m);
  const double ct = u.z;
  const double st = std::sqrt(std::max(0.0, 1.0 - ct * ct));
  const double plm = assoc_legendre(l, am, ct);
  if (m == 0) return ylm_norm(l, 0) * plm;

  double cphi = 1.0, sphi = 0.0;
  if (st > 1e-15) {
    cphi = u.x / st;
    sphi = u.y / st;
  }
  // cos(am*phi), sin(am*phi) by Chebyshev-style recurrence.
  double c = cphi, s = sphi;
  for (int k = 1; k < am; ++k) {
    const double cn = c * cphi - s * sphi;
    s = s * cphi + c * sphi;
    c = cn;
  }
  // Cancel the Condon-Shortley phase carried by assoc_legendre so the real
  // harmonics follow the solid-harmonic convention (Y_11 ~ +x, Y_1-1 ~ +y).
  const double cs = (am % 2 == 1) ? -1.0 : 1.0;
  const double norm = cs * std::sqrt(2.0) * ylm_norm(l, am) * plm;
  return m > 0 ? norm * c : norm * s;
}

void real_ylm_all(int l_max, const Vec3& u, std::vector<double>& out) {
  out.resize(lm_count(l_max));
  for (int l = 0; l <= l_max; ++l)
    for (int m = -l; m <= l; ++m) out[lm_index(l, m)] = real_ylm(l, m, u);
}

}  // namespace aeqp::basis
