#include "basis/element.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace aeqp::basis {

int ElementBasis::l_max() const {
  int l = 0;
  for (const auto& s : shells) l = std::max(l, s.l);
  return l;
}

std::size_t ElementBasis::function_count() const {
  std::size_t n = 0;
  for (const auto& s : shells) n += static_cast<std::size_t>(2 * s.l + 1);
  return n;
}

ElementBasis ElementBasis::standard(int z, BasisTier tier) {
  ElementBasis e;
  e.z = z;
  const bool light = tier == BasisTier::Light;
  switch (z) {
    case 1:
      e.symbol = "H";
      e.shells = {{1, 0, 1.00, 1.0}};
      if (light) {
        e.shells.push_back({2, 0, 0.65, 0.0});   // diffuse s
        e.shells.push_back({2, 1, 1.10, 0.0});   // p polarization
      }
      break;
    case 6:
      e.symbol = "C";
      e.shells = {{1, 0, 5.67, 2.0}, {2, 0, 1.61, 2.0}, {2, 1, 1.57, 2.0}};
      if (light) e.shells.push_back({3, 2, 1.80, 0.0});  // d polarization
      break;
    case 7:
      e.symbol = "N";
      e.shells = {{1, 0, 6.67, 2.0}, {2, 0, 1.92, 2.0}, {2, 1, 1.92, 3.0}};
      if (light) e.shells.push_back({3, 2, 2.00, 0.0});
      break;
    case 8:
      e.symbol = "O";
      e.shells = {{1, 0, 7.66, 2.0}, {2, 0, 2.25, 2.0}, {2, 1, 2.27, 4.0}};
      if (light) e.shells.push_back({3, 2, 2.20, 0.0});
      break;
    case 15:
      e.symbol = "P";
      e.shells = {{1, 0, 14.56, 2.0}, {2, 0, 4.62, 2.0}, {2, 1, 5.52, 6.0},
                  {3, 0, 1.88, 2.0}, {3, 1, 1.63, 3.0}};
      if (light) e.shells.push_back({3, 2, 1.40, 0.0});
      break;
    case 16:
      e.symbol = "S";
      e.shells = {{1, 0, 15.54, 2.0}, {2, 0, 5.31, 2.0}, {2, 1, 5.99, 6.0},
                  {3, 0, 2.12, 2.0}, {3, 1, 1.83, 4.0}};
      if (light) e.shells.push_back({3, 2, 1.50, 0.0});
      break;
    default:
      AEQP_THROW("ElementBasis: unparameterized element Z=" + std::to_string(z));
  }
  return e;
}

}  // namespace aeqp::basis
