#pragma once

/// \file element.hpp
/// Per-element numeric atomic orbital definitions. AEQP parameterizes the
/// biomolecular elements the paper's systems contain (H, C, N, O) with
/// Slater-type radial shells (Clementi-Raimondi-style exponents) that are
/// tabulated, smoothly truncated, and renormalized on a logarithmic mesh --
/// the same construction FHI-aims applies to its all-electron NAO basis.

#include <string>
#include <vector>

namespace aeqp::basis {

/// Basis-set quality tier. `Light` mirrors the paper's "light settings":
/// occupied shells plus one polarization shell per element.
enum class BasisTier { Minimal, Light };

/// One radial shell: principal quantum number n, angular momentum l, Slater
/// exponent zeta, and the free-atom electron count occupying the shell
/// (summed over its 2l+1 members; zero for polarization shells).
struct RadialShell {
  int n = 1;
  int l = 0;
  double zeta = 1.0;
  double occupation = 0.0;
};

/// Basis definition for one element.
struct ElementBasis {
  int z = 1;
  std::string symbol;
  std::vector<RadialShell> shells;

  /// Highest angular momentum in the set.
  [[nodiscard]] int l_max() const;

  /// Number of basis functions (sum of 2l+1 over shells).
  [[nodiscard]] std::size_t function_count() const;

  /// Standard parameterization for H, C, N, O; throws for other elements.
  static ElementBasis standard(int z, BasisTier tier);
};

}  // namespace aeqp::basis
