#pragma once

/// \file basis_set.hpp
/// The molecular basis set: every atom contributes the numeric atomic
/// orbitals of its element, chi_mu(r) = R(|r-R_A|) * Y_lm(r-R_A). This is
/// the finite basis of paper Eq. (4); overlap/Hamiltonian/density matrices
/// are indexed by mu over this set.

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "basis/element.hpp"
#include "basis/radial_function.hpp"
#include "common/vec3.hpp"
#include "grid/radial_grid.hpp"
#include "grid/structure.hpp"
#include "linalg/matrix.hpp"
#include "obs/memaudit.hpp"

namespace aeqp::basis {

/// Metadata of one basis function.
struct BasisFunction {
  std::uint32_t atom = 0;    ///< owning atom index in the structure
  std::uint32_t radial = 0;  ///< index into BasisSet radial table
  int l = 0;
  int m = 0;
};

/// Scratch/result container for evaluating all nonzero basis functions at a
/// point. Reused across points to avoid allocation in the integration loop.
struct PointEval {
  std::vector<std::uint32_t> indices;  ///< global basis indices mu
  std::vector<double> values;          ///< chi_mu(point)
  std::vector<double> laplacians;      ///< nabla^2 chi_mu(point) (if requested)
  void clear() {
    indices.clear();
    values.clear();
    laplacians.clear();
  }
};

/// Result + scratch of one batched basis evaluation: the nonzero basis
/// values of a whole block of points in one CSR-like SoA layout
/// (offsets/indices/values), plus the per-point working buffers the batch
/// kernel reuses across calls. Keeping the container alive across batches
/// eliminates the per-point heap traffic (ylm vector, PointEval push_back
/// growth) of the per-point path.
struct BatchEval {
  std::vector<std::uint32_t> offsets;  ///< size n_points + 1
  std::vector<std::uint32_t> indices;  ///< global basis index per entry
  std::vector<double> values;          ///< chi values per entry

  [[nodiscard]] std::size_t points() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }

  // Internal scratch (sized by the batch kernel; contents transient).
  std::vector<double> ylm;      ///< one point's Y_lm values
  std::vector<double> radial;   ///< one point's radial shell values
};

/// All-electron numeric atomic orbital basis over a structure.
class BasisSet {
public:
  /// Build the basis. `r_cut` is the orbital confinement radius in bohr and
  /// controls the sparsity/locality trade-off.
  BasisSet(const grid::Structure& structure, BasisTier tier, double r_cut = 7.0);

  [[nodiscard]] std::size_t size() const { return functions_.size(); }
  [[nodiscard]] const BasisFunction& function(std::size_t mu) const {
    return functions_[mu];
  }
  [[nodiscard]] const NumericRadialFunction& radial(std::size_t idx) const {
    return *radials_[idx];
  }
  [[nodiscard]] const grid::Structure& structure() const { return structure_; }
  [[nodiscard]] double r_cut() const { return r_cut_; }
  [[nodiscard]] BasisTier tier() const { return tier_; }

  /// Contiguous [first, last) basis-function range of atom a.
  [[nodiscard]] std::pair<std::size_t, std::size_t> atom_range(std::size_t a) const;

  /// Highest angular momentum over all elements present.
  [[nodiscard]] int l_max() const { return l_max_; }

  /// Evaluate every basis function that is nonzero at `p`; optionally also
  /// the Laplacians needed for kinetic-energy integrals.
  void evaluate(const Vec3& p, bool with_laplacian, PointEval& out) const;

  /// Per-atom screening radii for the batched evaluation path: atom a may
  /// be skipped for a whole point block when every block point is at least
  /// radii[a] away from it. At tau = 0 the radius is exactly r_cut (the
  /// support of the orbitals), so screening drops only exact zeros and the
  /// batched path stays bit-identical to the per-point one. At tau > 0 the
  /// radius shrinks to the outermost mesh point where any shell's |R|
  /// envelope still exceeds tau, dropping contributions of magnitude
  /// <= ~tau. The radii depend on geometry and tau only -- never on thread
  /// count, rank count, or block partition -- preserving the determinism
  /// contract (docs/performance.md).
  [[nodiscard]] std::vector<double> screening_radii(double tau) const;

  /// Evaluate a block of points at once into `out` (values only, the Rho
  /// hot path). Per point, the emitted (index, value) entries and their
  /// order are identical to evaluate(p, false, ev) -- same atom/shell/m
  /// order, same v == 0 skip -- so per-point consumers are bit-identical.
  /// `screen` is either empty (no screening) or one radius per atom from
  /// screening_radii(). Screening decisions are made per (atom, block)
  /// from geometry alone; obs counters rho/screen/* record them.
  void evaluate_batch(const Vec3* pts, std::size_t n,
                      std::span<const double> screen, BatchEval& out) const;

  /// Spherical free-atom density n_atom(r) of element z (occupied shells,
  /// 1/(4 pi) angular average); the SCF initial guess superposes these.
  [[nodiscard]] double free_atom_density(int z, double r) const;

  /// Number of electrons for the neutral system.
  [[nodiscard]] int electron_count() const { return structure_.total_charge(); }

private:
  struct ElementEntry {
    ElementBasis def;
    std::vector<std::size_t> radial_indices;  // one per shell
    /// Shell splines packed channel-contiguous (all share mesh_): one
    /// interval search serves every shell of the element at a point.
    SplineBundle radial_bundle;
    /// Suffix maximum of max_s |R_s(r_i)| over the mesh -- the tail
    /// envelope screening_radii() thresholds against.
    std::vector<double> tail_envelope;
  };

  grid::Structure structure_;
  BasisTier tier_;
  double r_cut_;
  grid::RadialGrid mesh_;
  std::map<int, ElementEntry> elements_;
  std::vector<std::unique_ptr<NumericRadialFunction>> radials_;
  std::vector<BasisFunction> functions_;
  std::vector<std::size_t> atom_first_;  // first function of each atom, +sentinel
  /// Per-atom element entry, resolved once at construction so the hot
  /// paths never touch the elements_ map (satellite of ISSUE 7).
  std::vector<const ElementEntry*> atom_entries_;
  int l_max_ = 0;
  /// Memory-audit registrations (released when the BasisSet dies):
  /// per-element spline/envelope tables vs per-function O(N) tables.
  obs::MemScope spline_mem_{"basis/spline_tables"};
  obs::MemScope table_mem_{"basis/function_table"};
};

/// Density contraction n(p) = sum_{mu,nu} P_mu_nu chi_mu(p) chi_nu(p) for
/// every point of a batched evaluation (Eq. 8 -- serves both n and the
/// response n^(1)). The per-point accumulation runs over the point's entry
/// pairs in ascending order with the exact multiply order of the per-point
/// path, so results are bit-identical to it.
void contract_density(const linalg::Matrix& p, const BatchEval& ev, double* out);

}  // namespace aeqp::basis
