#pragma once

/// \file basis_set.hpp
/// The molecular basis set: every atom contributes the numeric atomic
/// orbitals of its element, chi_mu(r) = R(|r-R_A|) * Y_lm(r-R_A). This is
/// the finite basis of paper Eq. (4); overlap/Hamiltonian/density matrices
/// are indexed by mu over this set.

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "basis/element.hpp"
#include "basis/radial_function.hpp"
#include "common/vec3.hpp"
#include "grid/radial_grid.hpp"
#include "grid/structure.hpp"

namespace aeqp::basis {

/// Metadata of one basis function.
struct BasisFunction {
  std::uint32_t atom = 0;    ///< owning atom index in the structure
  std::uint32_t radial = 0;  ///< index into BasisSet radial table
  int l = 0;
  int m = 0;
};

/// Scratch/result container for evaluating all nonzero basis functions at a
/// point. Reused across points to avoid allocation in the integration loop.
struct PointEval {
  std::vector<std::uint32_t> indices;  ///< global basis indices mu
  std::vector<double> values;          ///< chi_mu(point)
  std::vector<double> laplacians;      ///< nabla^2 chi_mu(point) (if requested)
  void clear() {
    indices.clear();
    values.clear();
    laplacians.clear();
  }
};

/// All-electron numeric atomic orbital basis over a structure.
class BasisSet {
public:
  /// Build the basis. `r_cut` is the orbital confinement radius in bohr and
  /// controls the sparsity/locality trade-off.
  BasisSet(const grid::Structure& structure, BasisTier tier, double r_cut = 7.0);

  [[nodiscard]] std::size_t size() const { return functions_.size(); }
  [[nodiscard]] const BasisFunction& function(std::size_t mu) const {
    return functions_[mu];
  }
  [[nodiscard]] const NumericRadialFunction& radial(std::size_t idx) const {
    return *radials_[idx];
  }
  [[nodiscard]] const grid::Structure& structure() const { return structure_; }
  [[nodiscard]] double r_cut() const { return r_cut_; }
  [[nodiscard]] BasisTier tier() const { return tier_; }

  /// Contiguous [first, last) basis-function range of atom a.
  [[nodiscard]] std::pair<std::size_t, std::size_t> atom_range(std::size_t a) const;

  /// Highest angular momentum over all elements present.
  [[nodiscard]] int l_max() const { return l_max_; }

  /// Evaluate every basis function that is nonzero at `p`; optionally also
  /// the Laplacians needed for kinetic-energy integrals.
  void evaluate(const Vec3& p, bool with_laplacian, PointEval& out) const;

  /// Spherical free-atom density n_atom(r) of element z (occupied shells,
  /// 1/(4 pi) angular average); the SCF initial guess superposes these.
  [[nodiscard]] double free_atom_density(int z, double r) const;

  /// Number of electrons for the neutral system.
  [[nodiscard]] int electron_count() const { return structure_.total_charge(); }

private:
  struct ElementEntry {
    ElementBasis def;
    std::vector<std::size_t> radial_indices;  // one per shell
  };

  grid::Structure structure_;
  BasisTier tier_;
  double r_cut_;
  grid::RadialGrid mesh_;
  std::map<int, ElementEntry> elements_;
  std::vector<std::unique_ptr<NumericRadialFunction>> radials_;
  std::vector<BasisFunction> functions_;
  std::vector<std::size_t> atom_first_;  // first function of each atom, +sentinel
  int l_max_ = 0;
};

}  // namespace aeqp::basis
