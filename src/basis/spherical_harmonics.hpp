#pragma once

/// \file spherical_harmonics.hpp
/// Real spherical harmonics Y_lm used both by the numeric atomic orbitals
/// (chi = R(r) Y_lm) and the multipole expansion of densities/potentials in
/// the Poisson solver. Normalized so that \int Y_lm Y_l'm' dOmega = delta.

#include <cstddef>
#include <vector>

#include "common/vec3.hpp"

namespace aeqp::basis {

/// Flat index of (l, m): l^2 + l + m; m runs -l..l.
constexpr std::size_t lm_index(int l, int m) {
  return static_cast<std::size_t>(l * l + l + m);
}

/// Total number of (l, m) channels with l <= l_max: (l_max + 1)^2.
constexpr std::size_t lm_count(int l_max) {
  return static_cast<std::size_t>((l_max + 1) * (l_max + 1));
}

/// Evaluate one real Y_lm for the *unit* direction d.
double real_ylm(int l, int m, const Vec3& unit_dir);

/// Evaluate all real Y_lm with l <= l_max for a unit direction, in
/// lm_index order. `out` is resized to lm_count(l_max).
void real_ylm_all(int l_max, const Vec3& unit_dir, std::vector<double>& out);

/// Allocation-free variant writing into caller-owned scratch of at least
/// lm_count(l_max) doubles. One upward pass shares the Legendre and phase
/// recurrences across all (l, m) instead of recomputing them per harmonic;
/// the recurrence arithmetic is replayed in exactly the order the
/// per-harmonic real_ylm() uses, so the values are bit-identical to it
/// (asserted in tests/test_rho_batch.cpp). This is the Rho-phase hot path:
/// it runs once per (grid point, atom) pair.
void real_ylm_all(int l_max, const Vec3& unit_dir, double* out);

/// Associated Legendre P_l^m(x) (m >= 0) with Condon-Shortley phase.
double assoc_legendre(int l, int m, double x);

}  // namespace aeqp::basis
