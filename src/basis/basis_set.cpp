#include "basis/basis_set.hpp"

#include <algorithm>
#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "basis/spherical_harmonics.hpp"
#include "obs/metrics.hpp"

namespace aeqp::basis {

BasisSet::BasisSet(const grid::Structure& structure, BasisTier tier, double r_cut)
    : structure_(structure),
      tier_(tier),
      r_cut_(r_cut),
      mesh_(220, 1e-5, r_cut) {
  AEQP_CHECK(structure_.size() > 0, "BasisSet: empty structure");

  for (std::size_t a = 0; a < structure_.size(); ++a) {
    const int z = structure_.atom(a).z;
    if (!elements_.contains(z)) {
      ElementEntry entry;
      entry.def = ElementBasis::standard(z, tier);
      for (const auto& shell : entry.def.shells) {
        entry.radial_indices.push_back(radials_.size());
        radials_.push_back(
            std::make_unique<NumericRadialFunction>(shell, mesh_, r_cut));
        l_max_ = std::max(l_max_, shell.l);
      }
      // Pack the element's shell splines channel-contiguous (they all live
      // on mesh_) and record the radial tail envelope for screening.
      std::vector<const CubicSpline*> shell_splines;
      for (const std::size_t idx : entry.radial_indices)
        shell_splines.push_back(&radials_[idx]->spline());
      entry.radial_bundle = SplineBundle::pack(shell_splines);
      entry.tail_envelope.assign(mesh_.size(), 0.0);
      for (const std::size_t idx : entry.radial_indices) {
        const auto& samples = radials_[idx]->samples();
        for (std::size_t i = 0; i < samples.size(); ++i)
          entry.tail_envelope[i] =
              std::max(entry.tail_envelope[i], std::fabs(samples[i]));
      }
      for (std::size_t i = mesh_.size() - 1; i-- > 0;)
        entry.tail_envelope[i] =
            std::max(entry.tail_envelope[i], entry.tail_envelope[i + 1]);
      elements_.emplace(z, std::move(entry));
    }
  }

  atom_first_.reserve(structure_.size() + 1);
  for (std::size_t a = 0; a < structure_.size(); ++a) {
    atom_first_.push_back(functions_.size());
    const ElementEntry& entry = elements_.at(structure_.atom(a).z);
    for (std::size_t s = 0; s < entry.def.shells.size(); ++s) {
      const int l = entry.def.shells[s].l;
      for (int m = -l; m <= l; ++m) {
        BasisFunction f;
        f.atom = static_cast<std::uint32_t>(a);
        f.radial = static_cast<std::uint32_t>(entry.radial_indices[s]);
        f.l = l;
        f.m = m;
        functions_.push_back(f);
      }
    }
  }
  atom_first_.push_back(functions_.size());

  // Resolve each atom's element entry once; elements_ never changes after
  // construction, so the pointers stay valid for the BasisSet lifetime.
  atom_entries_.reserve(structure_.size());
  for (std::size_t a = 0; a < structure_.size(); ++a)
    atom_entries_.push_back(&elements_.at(structure_.atom(a).z));

  // Memory audit (ROADMAP item 3): the spline tables are per-element (O(1)
  // in atom count), while the function/atom tables replicate O(N) per rank
  // -- exactly the split the fig09a memory bench fits exponents for.
  if (obs::memaudit_enabled()) {
    std::size_t spline_bytes = 0;
    for (const auto& [z, entry] : elements_) {
      spline_bytes += entry.radial_bundle.bytes();
      spline_bytes += entry.tail_envelope.capacity() * sizeof(double);
    }
    for (const auto& rad : radials_)
      spline_bytes += rad->samples().capacity() * sizeof(double) +
                      rad->spline().bytes();
    spline_mem_.add(static_cast<std::int64_t>(spline_bytes));
    const std::size_t table_bytes =
        functions_.capacity() * sizeof(BasisFunction) +
        atom_first_.capacity() * sizeof(std::size_t) +
        atom_entries_.capacity() * sizeof(const ElementEntry*);
    table_mem_.add(static_cast<std::int64_t>(table_bytes));
  }
}

std::pair<std::size_t, std::size_t> BasisSet::atom_range(std::size_t a) const {
  AEQP_CHECK(a < structure_.size(), "atom_range: atom index out of range");
  return {atom_first_[a], atom_first_[a + 1]};
}

void BasisSet::evaluate(const Vec3& p, bool with_laplacian, PointEval& out) const {
  out.clear();
  std::vector<double> ylm;
  for (std::size_t a = 0; a < structure_.size(); ++a) {
    const Vec3 d = p - structure_.atom(a).pos;
    const double r2 = d.norm2();
    if (r2 >= r_cut_ * r_cut_) continue;
    const double r = std::sqrt(r2);
    const ElementEntry& entry = *atom_entries_[a];

    const Vec3 u = (r > 1e-12) ? d / r : Vec3{0.0, 0.0, 1.0};
    real_ylm_all(entry.def.l_max(), u, ylm);
    // Clamp the radius used in the Laplacian's 1/r terms to the innermost
    // mesh point; integration weights (~r^2) vanish there anyway.
    const double r_safe = std::max(r, mesh_.r_min());

    std::size_t mu = atom_first_[a];
    for (std::size_t s = 0; s < entry.def.shells.size(); ++s) {
      const NumericRadialFunction& rad = *radials_[entry.radial_indices[s]];
      const int l = rad.l();
      const double rv = rad.value(r);
      double lap_radial = 0.0;
      if (with_laplacian) {
        const double d1 = rad.derivative(r);
        const double d2 = rad.second_derivative(r);
        lap_radial = d2 + 2.0 * d1 / r_safe -
                     static_cast<double>(l * (l + 1)) * rv / (r_safe * r_safe);
      }
      for (int m = -l; m <= l; ++m, ++mu) {
        const double y = ylm[lm_index(l, m)];
        const double v = rv * y;
        if (v == 0.0 && (!with_laplacian || lap_radial == 0.0)) continue;
        out.indices.push_back(static_cast<std::uint32_t>(mu));
        out.values.push_back(v);
        if (with_laplacian) out.laplacians.push_back(lap_radial * y);
      }
    }
  }
}

std::vector<double> BasisSet::screening_radii(double tau) const {
  std::vector<double> radii(structure_.size(), r_cut_);
  if (tau <= 0.0) return radii;
  for (std::size_t a = 0; a < structure_.size(); ++a) {
    const ElementEntry& entry = *atom_entries_[a];
    // Outermost mesh point whose tail envelope still exceeds tau; the next
    // point bounds the radius beyond which every shell is <= ~tau.
    std::size_t last = 0;
    for (std::size_t i = mesh_.size(); i-- > 0;) {
      if (entry.tail_envelope[i] > tau) {
        last = i;
        break;
      }
    }
    const std::size_t bound = std::min(last + 1, mesh_.size() - 1);
    radii[a] = std::min(r_cut_, mesh_.r(bound));
  }
  return radii;
}

void BasisSet::evaluate_batch(const Vec3* pts, std::size_t n,
                              std::span<const double> screen,
                              BatchEval& out) const {
  AEQP_CHECK(screen.empty() || screen.size() == structure_.size(),
             "evaluate_batch: screening radii must match the atom count");
  static obs::Counter& c_skipped = obs::counter("rho/screen/atom_blocks_skipped");
  static obs::Counter& c_kept = obs::counter("rho/screen/atom_blocks_evaluated");
  static obs::Counter& c_points = obs::counter("rho/batch_points_evaluated");

  out.offsets.assign(1, 0);
  out.indices.clear();
  out.values.clear();
  out.offsets.reserve(n + 1);
  out.ylm.resize(lm_count(l_max_));
  out.radial.resize(radials_.size());
  c_points.add(n);

  // Block bounds for the per-(atom, block) screening decision: the points
  // lie in a spherical shell [r_lo, r_hi] around their centroid. The shell
  // is tight for the projection's angular rings (hollow: r_lo = r_hi = ring
  // radius), where a plain bounding ball would contain the ring center and
  // never screen anything; for compact grid blocks r_lo ~ 0 and the shell
  // degenerates to the ball. Geometry-only, so the decision is identical on
  // every thread and rank.
  Vec3 centroid{};
  for (std::size_t k = 0; k < n; ++k) centroid += pts[k];
  if (n > 0) centroid = centroid / static_cast<double>(n);
  double lo2 = n > 0 ? (pts[0] - centroid).norm2() : 0.0, hi2 = lo2;
  for (std::size_t k = 1; k < n; ++k) {
    const double d2 = (pts[k] - centroid).norm2();
    lo2 = std::min(lo2, d2);
    hi2 = std::max(hi2, d2);
  }
  const double r_lo = std::sqrt(lo2), r_hi = std::sqrt(hi2);

  // Active-atom list for the whole block: skip atom a when every block
  // point is at least `reach` away (min distance from the atom to the
  // shell). Skipping at tau = 0 only drops points with r >= r_cut --
  // exactly the entries the per-point path skips -- so the batched CSR
  // matches it entry for entry.
  thread_local std::vector<std::uint32_t> active;
  active.clear();
  for (std::size_t a = 0; a < structure_.size(); ++a) {
    const double reach = screen.empty() ? r_cut_ : screen[a];
    const double dist = (structure_.atom(a).pos - centroid).norm();
    const double min_dist = std::max(dist - r_hi, r_lo - dist);
    if (min_dist >= reach) {
      c_skipped.increment();
      continue;
    }
    c_kept.increment();
    active.push_back(static_cast<std::uint32_t>(a));
  }

  const double* screen_radii = screen.empty() ? nullptr : screen.data();
  for (std::size_t k = 0; k < n; ++k) {
    const Vec3 p = pts[k];
    for (const std::uint32_t a : active) {
      const Vec3 d = p - structure_.atom(a).pos;
      const double r2 = d.norm2();
      if (r2 >= r_cut_ * r_cut_) continue;
      const double r = std::sqrt(r2);
      // Per-point refinement of the block decision (tau > 0 only): the
      // same tau envelope, applied at point resolution.
      if (screen_radii && r >= screen_radii[a]) continue;
      const ElementEntry& entry = *atom_entries_[a];

      const Vec3 u = (r > 1e-12) ? d / r : Vec3{0.0, 0.0, 1.0};
      real_ylm_all(entry.def.l_max(), u, out.ylm.data());
      // One interval search for every shell of the element; bit-identical
      // to NumericRadialFunction::value per shell (r < r_cut here).
      entry.radial_bundle.eval_all(r, out.radial.data());

      std::size_t mu = atom_first_[a];
      for (std::size_t s = 0; s < entry.def.shells.size(); ++s) {
        const int l = entry.def.shells[s].l;
        const double rv = out.radial[s];
        for (int m = -l; m <= l; ++m, ++mu) {
          const double v = rv * out.ylm[lm_index(l, m)];
          if (v == 0.0) continue;
          out.indices.push_back(static_cast<std::uint32_t>(mu));
          out.values.push_back(v);
        }
      }
    }
    out.offsets.push_back(static_cast<std::uint32_t>(out.indices.size()));
  }
}

double BasisSet::free_atom_density(int z, double r) const {
  const auto it = elements_.find(z);
  AEQP_CHECK(it != elements_.end(), "free_atom_density: element not in basis");
  double n = 0.0;
  for (std::size_t s = 0; s < it->second.def.shells.size(); ++s) {
    const double occ = it->second.def.shells[s].occupation;
    if (occ == 0.0) continue;
    const double rv = radials_[it->second.radial_indices[s]]->value(r);
    n += occ * rv * rv / constants::four_pi;
  }
  return n;
}

void contract_density(const linalg::Matrix& p, const BatchEval& ev, double* out) {
  const std::size_t nb = p.cols();
  for (std::size_t k = 0; k < ev.points(); ++k) {
    const std::uint32_t* idx = ev.indices.data() + ev.offsets[k];
    const double* val = ev.values.data() + ev.offsets[k];
    const std::size_t ne = ev.offsets[k + 1] - ev.offsets[k];
    double n = 0.0;
    for (std::size_t a = 0; a < ne; ++a) {
      const double* prow = p.data() + static_cast<std::size_t>(idx[a]) * nb;
      const double va = val[a];
      for (std::size_t b = 0; b < ne; ++b) n += prow[idx[b]] * va * val[b];
    }
    out[k] = n;
  }
}

}  // namespace aeqp::basis
