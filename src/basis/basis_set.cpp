#include "basis/basis_set.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "basis/spherical_harmonics.hpp"

namespace aeqp::basis {

BasisSet::BasisSet(const grid::Structure& structure, BasisTier tier, double r_cut)
    : structure_(structure),
      tier_(tier),
      r_cut_(r_cut),
      mesh_(220, 1e-5, r_cut) {
  AEQP_CHECK(structure_.size() > 0, "BasisSet: empty structure");

  for (std::size_t a = 0; a < structure_.size(); ++a) {
    const int z = structure_.atom(a).z;
    if (!elements_.contains(z)) {
      ElementEntry entry;
      entry.def = ElementBasis::standard(z, tier);
      for (const auto& shell : entry.def.shells) {
        entry.radial_indices.push_back(radials_.size());
        radials_.push_back(
            std::make_unique<NumericRadialFunction>(shell, mesh_, r_cut));
        l_max_ = std::max(l_max_, shell.l);
      }
      elements_.emplace(z, std::move(entry));
    }
  }

  atom_first_.reserve(structure_.size() + 1);
  for (std::size_t a = 0; a < structure_.size(); ++a) {
    atom_first_.push_back(functions_.size());
    const ElementEntry& entry = elements_.at(structure_.atom(a).z);
    for (std::size_t s = 0; s < entry.def.shells.size(); ++s) {
      const int l = entry.def.shells[s].l;
      for (int m = -l; m <= l; ++m) {
        BasisFunction f;
        f.atom = static_cast<std::uint32_t>(a);
        f.radial = static_cast<std::uint32_t>(entry.radial_indices[s]);
        f.l = l;
        f.m = m;
        functions_.push_back(f);
      }
    }
  }
  atom_first_.push_back(functions_.size());
}

std::pair<std::size_t, std::size_t> BasisSet::atom_range(std::size_t a) const {
  AEQP_CHECK(a < structure_.size(), "atom_range: atom index out of range");
  return {atom_first_[a], atom_first_[a + 1]};
}

void BasisSet::evaluate(const Vec3& p, bool with_laplacian, PointEval& out) const {
  out.clear();
  std::vector<double> ylm;
  for (std::size_t a = 0; a < structure_.size(); ++a) {
    const Vec3 d = p - structure_.atom(a).pos;
    const double r2 = d.norm2();
    if (r2 >= r_cut_ * r_cut_) continue;
    const double r = std::sqrt(r2);
    const ElementEntry& entry = elements_.at(structure_.atom(a).z);

    const Vec3 u = (r > 1e-12) ? d / r : Vec3{0.0, 0.0, 1.0};
    real_ylm_all(entry.def.l_max(), u, ylm);
    // Clamp the radius used in the Laplacian's 1/r terms to the innermost
    // mesh point; integration weights (~r^2) vanish there anyway.
    const double r_safe = std::max(r, mesh_.r_min());

    std::size_t mu = atom_first_[a];
    for (std::size_t s = 0; s < entry.def.shells.size(); ++s) {
      const NumericRadialFunction& rad = *radials_[entry.radial_indices[s]];
      const int l = rad.l();
      const double rv = rad.value(r);
      double lap_radial = 0.0;
      if (with_laplacian) {
        const double d1 = rad.derivative(r);
        const double d2 = rad.second_derivative(r);
        lap_radial = d2 + 2.0 * d1 / r_safe -
                     static_cast<double>(l * (l + 1)) * rv / (r_safe * r_safe);
      }
      for (int m = -l; m <= l; ++m, ++mu) {
        const double y = ylm[lm_index(l, m)];
        const double v = rv * y;
        if (v == 0.0 && (!with_laplacian || lap_radial == 0.0)) continue;
        out.indices.push_back(static_cast<std::uint32_t>(mu));
        out.values.push_back(v);
        if (with_laplacian) out.laplacians.push_back(lap_radial * y);
      }
    }
  }
}

double BasisSet::free_atom_density(int z, double r) const {
  const auto it = elements_.find(z);
  AEQP_CHECK(it != elements_.end(), "free_atom_density: element not in basis");
  double n = 0.0;
  for (std::size_t s = 0; s < it->second.def.shells.size(); ++s) {
    const double occ = it->second.def.shells[s].occupation;
    if (occ == 0.0) continue;
    const double rv = radials_[it->second.radial_indices[s]]->value(r);
    n += occ * rv * rv / constants::four_pi;
  }
  return n;
}

}  // namespace aeqp::basis
