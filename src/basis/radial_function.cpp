#include "basis/radial_function.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace aeqp::basis {

double cutoff_function(double r, double on, double off) {
  if (r <= on) return 1.0;
  if (r >= off) return 0.0;
  const double t = (r - on) / (off - on);
  return 0.5 * (1.0 + std::cos(constants::pi * t));
}

NumericRadialFunction::NumericRadialFunction(const RadialShell& shell,
                                             const grid::RadialGrid& mesh,
                                             double r_cut, double cutoff_onset)
    : shell_(shell), r_cut_(r_cut) {
  AEQP_CHECK(shell.n >= 1 && shell.l >= 0 && shell.l < shell.n,
             "NumericRadialFunction: invalid quantum numbers");
  AEQP_CHECK(shell.zeta > 0.0, "NumericRadialFunction: zeta must be positive");
  AEQP_CHECK(r_cut > mesh.r_min(), "NumericRadialFunction: cutoff inside mesh");
  AEQP_CHECK(cutoff_onset > 0.0 && cutoff_onset < 1.0,
             "NumericRadialFunction: onset fraction must be in (0,1)");

  const double on = cutoff_onset * r_cut;
  samples_.resize(mesh.size());
  for (std::size_t i = 0; i < mesh.size(); ++i) {
    const double r = mesh.r(i);
    const double sto = std::pow(r, shell.n - 1) * std::exp(-shell.zeta * r);
    samples_[i] = sto * cutoff_function(r, on, r_cut);
  }
  // Renormalize numerically on the mesh: \int R^2 r^2 dr = 1.
  std::vector<double> r2(samples_.size());
  for (std::size_t i = 0; i < samples_.size(); ++i) r2[i] = samples_[i] * samples_[i];
  const double norm2 = mesh.integrate_volume(r2);
  AEQP_CHECK(norm2 > 1e-30, "NumericRadialFunction: vanishing norm");
  const double inv = 1.0 / std::sqrt(norm2);
  for (auto& v : samples_) v *= inv;

  spline_ = CubicSpline(mesh.points(), samples_);
}

double NumericRadialFunction::value(double r) const {
  if (r >= r_cut_) return 0.0;
  return spline_.value(r);
}

double NumericRadialFunction::derivative(double r) const {
  if (r >= r_cut_) return 0.0;
  return spline_.derivative(r);
}

double NumericRadialFunction::second_derivative(double r) const {
  if (r >= r_cut_) return 0.0;
  return spline_.second_derivative(r);
}

}  // namespace aeqp::basis
