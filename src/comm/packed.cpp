#include "comm/packed.hpp"

#include <cmath>
#include <exception>

#include "comm/hierarchical.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resilience/membudget.hpp"

namespace aeqp::comm {

PackedAllReducer::PackedAllReducer(parallel::Communicator& comm, ReduceMode mode,
                                   std::size_t max_bytes, bool verify)
    : comm_(&comm), mode_(mode), max_bytes_(max_bytes), verify_(verify) {
  AEQP_CHECK(max_bytes_ >= sizeof(double),
             "PackedAllReducer: byte budget too small");
}

PackedAllReducer::~PackedAllReducer() {
  // Collective destructors are a deadlock hazard; require explicit flush.
  // Exception unwinding (e.g. a RankFailure raised mid-flush) is exempt:
  // the queued rows are abandoned with the failed collective, and aborting
  // would turn a recoverable rank fault into a process death.
  if (std::uncaught_exceptions() == 0) AEQP_ASSERT(pending_.empty());
}

void PackedAllReducer::account_buffer() {
  buf_mem_.add(
      static_cast<std::int64_t>(buffer_.capacity() * sizeof(double)) -
      buf_mem_.held());
}

void PackedAllReducer::add(std::span<double> row) {
  if ((buffer_.size() + row.size()) * sizeof(double) > max_bytes_ &&
      !pending_.empty())
    flush();
  // Governor probe before the staging buffer grows: the relief ladder
  // shrinks pack_window_bytes precisely so this request gets smaller.
  const std::size_t need = (buffer_.size() + row.size()) * sizeof(double);
  if (need > buffer_.capacity() * sizeof(double))
    resilience::oom_probe("comm/packed_buffer",
                          need - buffer_.capacity() * sizeof(double));
  buffer_.insert(buffer_.end(), row.begin(), row.end());
  account_buffer();
  pending_.push_back(row);
  ++rows_total_;
  // A single oversized row still has to go out in one piece.
  if (buffer_.size() * sizeof(double) >= max_bytes_) flush();
}

void PackedAllReducer::flush() {
  if (pending_.empty()) return;
  AEQP_TRACE_SCOPE("comm/packed_flush");
  const Timer flush_timer;
  if (obs::enabled()) {
    static obs::Counter& bytes = obs::counter("comm/packed_bytes");
    static obs::Counter& collectives = obs::counter("comm/packed_collectives");
    static obs::Counter& rows = obs::counter("comm/packed_rows");
    bytes.add(buffer_.size() * sizeof(double));
    collectives.add(1);
    rows.add(pending_.size());
  }
  const std::size_t payload_size = buffer_.size();
  bytes_reduced_ += payload_size * sizeof(double);
  obs::flight_metric("comm/packed_bytes",
                     static_cast<double>(payload_size * sizeof(double)));
  if (verify_) {
    // Linear checksum element: the reduction is linear, so the reduced
    // checksum must equal the sum of the reduced payload. Computed per
    // rank over its own staged contribution before the collective.
    double local_sum = 0.0;
    for (std::size_t i = 0; i < payload_size; ++i) local_sum += buffer_[i];
    buffer_.push_back(local_sum);
  }
  switch (mode_) {
    case ReduceMode::Flat:
      comm_->allreduce_sum(buffer_);
      break;
    case ReduceMode::Hierarchical:
      hierarchical_allreduce_sum(*comm_, buffer_);
      break;
  }
  ++flushes_;
  if (verify_) {
    const double reduced_checksum = buffer_.back();
    buffer_.pop_back();
    double sum = 0.0, abs_sum = 0.0;
    for (std::size_t i = 0; i < payload_size; ++i) {
      sum += buffer_[i];
      abs_sum += std::fabs(buffer_[i]);
    }
    // Tolerance: summation roundoff scales with element count and payload
    // magnitude; real corruption (high-bit flip, NaN, Inf) overshoots this
    // by many orders of magnitude. The !(.. <= ..) form also fails -- and
    // therefore detects -- a NaN poisoning either sum.
    const double tau = 1e-6 * std::max(1.0, abs_sum);
    if (!(std::fabs(reduced_checksum - sum) <= tau)) {
      obs::counter("comm/packed_verify_failures").increment();
      obs::trace_instant("sdc/detect");
      // Every rank computes the same reduced sums, so every rank throws
      // together and the collective schedule stays aligned.
      throw parallel::PayloadCorruption(
          comm_->rank(), comm_->original_rank(), "packed_allreduce",
          "PackedAllReducer: reduced payload fails its linear checksum "
          "(checksum " + std::to_string(reduced_checksum) + ", payload sum " +
              std::to_string(sum) + ", " + std::to_string(payload_size) +
              " doubles): corruption detected at the reduction");
    }
  }
  std::size_t offset = 0;
  for (auto row : pending_) {
    for (std::size_t i = 0; i < row.size(); ++i) row[i] = buffer_[offset + i];
    offset += row.size();
  }
  AEQP_ASSERT(offset == buffer_.size());
  buffer_.clear();
  pending_.clear();
  flush_seconds_ += flush_timer.seconds();
}

void flat_allreduce_sum(parallel::Communicator& comm, std::span<double> data) {
  comm.allreduce_sum(data);
}

}  // namespace aeqp::comm
