#include "comm/packed.hpp"

#include <exception>

#include "comm/hierarchical.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace aeqp::comm {

PackedAllReducer::PackedAllReducer(parallel::Communicator& comm, ReduceMode mode,
                                   std::size_t max_bytes)
    : comm_(&comm), mode_(mode), max_bytes_(max_bytes) {
  AEQP_CHECK(max_bytes_ >= sizeof(double),
             "PackedAllReducer: byte budget too small");
}

PackedAllReducer::~PackedAllReducer() {
  // Collective destructors are a deadlock hazard; require explicit flush.
  // Exception unwinding (e.g. a RankFailure raised mid-flush) is exempt:
  // the queued rows are abandoned with the failed collective, and aborting
  // would turn a recoverable rank fault into a process death.
  if (std::uncaught_exceptions() == 0) AEQP_ASSERT(pending_.empty());
}

void PackedAllReducer::add(std::span<double> row) {
  if ((buffer_.size() + row.size()) * sizeof(double) > max_bytes_ &&
      !pending_.empty())
    flush();
  buffer_.insert(buffer_.end(), row.begin(), row.end());
  pending_.push_back(row);
  ++rows_total_;
  // A single oversized row still has to go out in one piece.
  if (buffer_.size() * sizeof(double) >= max_bytes_) flush();
}

void PackedAllReducer::flush() {
  if (pending_.empty()) return;
  AEQP_TRACE_SCOPE("comm/packed_flush");
  if (obs::enabled()) {
    static obs::Counter& bytes = obs::counter("comm/packed_bytes");
    static obs::Counter& collectives = obs::counter("comm/packed_collectives");
    static obs::Counter& rows = obs::counter("comm/packed_rows");
    bytes.add(buffer_.size() * sizeof(double));
    collectives.add(1);
    rows.add(pending_.size());
  }
  switch (mode_) {
    case ReduceMode::Flat:
      comm_->allreduce_sum(buffer_);
      break;
    case ReduceMode::Hierarchical:
      hierarchical_allreduce_sum(*comm_, buffer_);
      break;
  }
  ++flushes_;
  std::size_t offset = 0;
  for (auto row : pending_) {
    for (std::size_t i = 0; i < row.size(); ++i) row[i] = buffer_[offset + i];
    offset += row.size();
  }
  AEQP_ASSERT(offset == buffer_.size());
  buffer_.clear();
  pending_.clear();
}

void flat_allreduce_sum(parallel::Communicator& comm, std::span<double> data) {
  comm.allreduce_sum(data);
}

}  // namespace aeqp::comm
