#pragma once

/// \file packed.hpp
/// Packed collective communication (paper Sec. 3.2.1): several invocations
/// of the same MPI collective are fused into one call that synthesizes all
/// their payloads at once. The paper's driving use case is the row-by-row
/// AllReduce of rho_multipole after the Sumup phase; packing every c rows
/// turns c collectives into one, bounded by a ~30 MB memory heuristic so
/// the staging buffer stays inside the last-level cache budget.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "obs/memaudit.hpp"
#include "parallel/cluster.hpp"

namespace aeqp::comm {

/// How a packed buffer is synthesized when flushed.
enum class ReduceMode {
  Flat,          ///< one AllReduce over all ranks
  Hierarchical,  ///< node-local SHM update + leader AllReduce (Sec. 3.2.2)
};

/// Default packing budget from the paper: 30 MB.
inline constexpr std::size_t kDefaultPackBytes = 30u * 1024u * 1024u;

/// Accumulates rows destined for sum-AllReduce and flushes them as a single
/// packed collective. Row memory is scattered back in place on flush.
class PackedAllReducer {
public:
  /// With `verify` set, every flush appends a linear checksum element (the
  /// sum of the staged payload) to the packed buffer; the reduction is
  /// linear, so after the collective the reduced checksum must equal the
  /// sum of the reduced payload within floating-point tolerance. A
  /// violation -- payload corrupted in flight or at the reduction -- raises
  /// parallel::PayloadCorruption on every rank instead of silently
  /// scattering damaged rows. Catches large (high-bit / non-finite)
  /// corruption end-to-end; pair with Cluster::set_verify_payloads for
  /// bit-exact CRC coverage of each rank's contribution.
  PackedAllReducer(parallel::Communicator& comm, ReduceMode mode,
                   std::size_t max_bytes = kDefaultPackBytes,
                   bool verify = false);

  /// Callers MUST flush() before destruction: a collective from a
  /// destructor (running at different times on different ranks) is a
  /// deadlock hazard, so destroying a reducer with queued rows is a
  /// programming error enforced by AEQP_ASSERT. The one exemption is
  /// exception unwinding (a rank failure mid-flush), where the queued rows
  /// are abandoned with the failed collective.
  ~PackedAllReducer();

  PackedAllReducer(const PackedAllReducer&) = delete;
  PackedAllReducer& operator=(const PackedAllReducer&) = delete;

  /// Queue one row. All ranks must queue rows in the same order with the
  /// same sizes (collective contract). Triggers a flush when the buffer
  /// would exceed the byte budget. The row memory must stay valid until the
  /// next flush() (or destruction).
  void add(std::span<double> row);

  /// Reduce everything queued in ONE collective and scatter results back to
  /// the original row storage. No-op when empty. Collective: all ranks must
  /// call flush the same number of times (add() keeps this aligned because
  /// every rank sees the same row sequence).
  void flush();

  /// Number of collective invocations so far (the count packing minimizes).
  [[nodiscard]] std::size_t collective_count() const { return flushes_; }

  /// Rows accepted so far.
  [[nodiscard]] std::size_t rows_packed() const { return rows_total_; }

  /// Bytes currently staged.
  [[nodiscard]] std::size_t queued_bytes() const {
    return buffer_.size() * sizeof(double);
  }

  /// Payload bytes this rank's reducer has pushed through flushed
  /// collectives so far (excluding the verify checksum element). With P
  /// ranks, the comm-matrix row of this rank carries exactly
  /// bytes_reduced() * (P - 1) bytes for the underlying collective.
  [[nodiscard]] std::uint64_t bytes_reduced() const { return bytes_reduced_; }

  /// Wall time this rank has spent inside flush() so far -- the comm/wait
  /// share of the packed H-phase synthesis. On a straggler's PEERS this is
  /// dominated by barrier wait for the slow rank, which makes it the
  /// natural span to cross-check the arrival-lag ledger against.
  [[nodiscard]] double flush_seconds() const { return flush_seconds_; }

private:
  /// Re-sync the "comm/packed_buffer" gauge with the staging buffer's
  /// current capacity (ROADMAP item 3: the pack window is per-rank state
  /// bounded by max_bytes_, and the audit should show it).
  void account_buffer();

  parallel::Communicator* comm_;
  ReduceMode mode_;
  std::size_t max_bytes_;
  bool verify_ = false;
  std::vector<double> buffer_;
  std::vector<std::span<double>> pending_;
  std::size_t flushes_ = 0;
  std::size_t rows_total_ = 0;
  std::uint64_t bytes_reduced_ = 0;
  double flush_seconds_ = 0.0;
  obs::MemScope buf_mem_{"comm/packed_buffer"};
};

/// One-shot convenience: flat sum-AllReduce of `data` (baseline of Fig. 10).
void flat_allreduce_sum(parallel::Communicator& comm, std::span<double> data);

}  // namespace aeqp::comm
