#pragma once

/// \file hierarchical.hpp
/// Hierarchical collective communication (paper Sec. 3.2.2): one data copy
/// per shared-memory node instead of one per rank. Each node's m ranks
/// update the node copy in m chunk rounds sequenced by node barriers (no
/// write conflicts), then only the N/m node leaders run the inter-node
/// AllReduce, and every rank reads the result back from its node window.
/// Memory per node drops from m copies to 1 and the expensive collective
/// narrows from N to N/m participants.

#include <span>

#include "parallel/cluster.hpp"

namespace aeqp::comm {

/// In-place hierarchical sum-AllReduce over all ranks of the cluster.
/// Collective: every rank must call with the same element count.
void hierarchical_allreduce_sum(parallel::Communicator& comm,
                                std::span<double> data);

}  // namespace aeqp::comm
