#include "comm/hierarchical.hpp"

#include "common/error.hpp"

namespace aeqp::comm {

void hierarchical_allreduce_sum(parallel::Communicator& comm,
                                std::span<double> data) {
  const std::size_t m = comm.node_size();
  std::span<double> window = comm.node_window(data.size());

  // Reset the node copy (it persists across calls).
  if (comm.node_rank() == 0)
    for (auto& v : window) v = 0.0;
  comm.node_barrier();

  // Local phase: m chunk rounds; in round s, node-rank r owns chunk
  // (r + s) mod m, so no two ranks ever write the same chunk concurrently.
  const std::size_t chunk = (data.size() + m - 1) / m;
  for (std::size_t s = 0; s < m; ++s) {
    const std::size_t c = (comm.node_rank() + s) % m;
    const std::size_t begin = std::min(c * chunk, data.size());
    const std::size_t end = std::min(begin + chunk, data.size());
    for (std::size_t i = begin; i < end; ++i) window[i] += data[i];
    comm.node_barrier();
  }

  // Global phase: node leaders reduce the per-node copies.
  comm.allreduce_sum_leaders(window);
  comm.node_barrier();

  // Every rank reads the synthesized result back from its node window.
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = window[i];
  comm.barrier();
}

}  // namespace aeqp::comm
