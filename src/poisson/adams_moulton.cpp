#include "poisson/adams_moulton.hpp"

#include "common/error.hpp"

namespace aeqp::poisson {

std::vector<double> cumulative_integral_am4(double h, const std::vector<double>& g) {
  AEQP_CHECK(h > 0.0, "cumulative_integral_am4: step must be positive");
  const std::size_t n = g.size();
  std::vector<double> out(n, 0.0);
  if (n < 2) return out;

  // Bootstrap with cubic-exact interpolatory formulas so the whole scheme
  // stays 4th order: forward AM-style step for I_1, Simpson for I_2.
  if (n >= 4) {
    out[1] = h / 24.0 * (9.0 * g[0] + 19.0 * g[1] - 5.0 * g[2] + g[3]);
  } else {
    out[1] = h * 0.5 * (g[0] + g[1]);
  }
  if (n > 2) out[2] = h / 3.0 * (g[0] + 4.0 * g[1] + g[2]);
  for (std::size_t k = 3; k < n; ++k)
    out[k] = out[k - 1] +
             h / 24.0 * (9.0 * g[k] + 19.0 * g[k - 1] - 5.0 * g[k - 2] + g[k - 3]);
  return out;
}

double integral_am4(double h, const std::vector<double>& g) {
  if (g.empty()) return 0.0;
  return cumulative_integral_am4(h, g).back();
}

}  // namespace aeqp::poisson
