#include "poisson/multipole.hpp"

#include <cmath>

#include "basis/spherical_harmonics.hpp"
#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/ipow.hpp"
#include "exec/thread_pool.hpp"
#include "grid/angular_grid.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "poisson/adams_moulton.hpp"
#include "resilience/guards.hpp"
#include "resilience/sdc_inject.hpp"

namespace aeqp::poisson {

using basis::lm_count;
using basis::lm_index;

std::size_t MultipoleDensity::spline_bytes() const {
  std::size_t b = 0;
  for (const auto& per_atom : splines)
    for (const auto& s : per_atom) b += s.bytes();
  return b;
}

std::size_t PartitionedPotential::spline_bytes() const {
  std::size_t b = 0;
  for (const auto& per_atom : splines)
    for (const auto& s : per_atom) b += s.bytes();
  return b;
}

HartreeSolver::HartreeSolver(const grid::Structure& structure,
                             const PoissonSpec& spec)
    : structure_(structure),
      spec_(spec),
      mesh_(spec.radial_points, spec.r_min, spec.r_max),
      partition_(structure) {
  AEQP_CHECK(spec.l_max >= 0 && spec.l_max <= 9,
             "HartreeSolver: l_max must be in [0, 9]");
  // Projection must integrate Y_lm * Y_l'm' exactly through l = l_max.
  const grid::AngularGrid ang =
      grid::AngularGrid::for_degree(static_cast<std::size_t>(2 * spec.l_max + 2));
  ang_dirs_ = ang.directions();
  ang_weights_ = ang.weights();
  ang_ylm_.resize(ang_dirs_.size());
  std::vector<double> ylm;
  for (std::size_t k = 0; k < ang_dirs_.size(); ++k) {
    basis::real_ylm_all(spec.l_max, ang_dirs_[k], ylm);
    ang_ylm_[k] = ylm;
  }
}

MultipoleDensity HartreeSolver::project(const DensityFn& density) const {
  // Ring-at-a-time adapter: the batched path evaluates the same points in
  // the same order with the same arithmetic, so delegation is bit-exact.
  return project(BatchDensityFn(
      [&density](const Vec3* pts, std::size_t n, double* out) {
        for (std::size_t k = 0; k < n; ++k) out[k] = density(pts[k]);
      }));
}

MultipoleDensity HartreeSolver::project(const BatchDensityFn& density) const {
  MultipoleDensity rho = project_rows(density, 0, projection_row_count());
  finalize_splines(rho);
  return rho;
}

std::size_t HartreeSolver::projection_row_count() const {
  return structure_.size() * mesh_.size();
}

MultipoleDensity HartreeSolver::project_rows(const BatchDensityFn& density,
                                             std::size_t row_begin,
                                             std::size_t row_end) const {
  AEQP_TRACE_SCOPE("poisson/project");
  const std::size_t n_atoms = structure_.size();
  const std::size_t nlm = lm_count(spec_.l_max);
  const std::size_t nr = mesh_.size();
  AEQP_CHECK(row_begin <= row_end && row_end <= n_atoms * nr,
             "HartreeSolver::project_rows: row range out of bounds");

  MultipoleDensity rho;
  rho.samples.assign(n_atoms,
                     std::vector<std::vector<double>>(nlm, std::vector<double>(nr, 0.0)));
  rho.splines.resize(n_atoms);

  // Parallel over (atom, radial shell): each task owns the [a][*][i] slots
  // it writes, and the angular loop order inside one shell is unchanged, so
  // the projection is bit-identical for every thread count. One task hands
  // its whole angular ring to the density callback at once -- the ring is a
  // geometry-defined block (atom center, shell radius, fixed angular rule),
  // so batch-level screening decisions inside the callback are identical on
  // every thread and rank. The callback must be thread-safe (pure
  // evaluation; every caller in the codebase captures only const state).
  exec::parallel_for(row_begin, row_end, [&](std::size_t task) {
    const std::size_t a = task / nr;
    const std::size_t i = task % nr;
    const Vec3 center = structure_.atom(a).pos;
    const double r = mesh_.r(i);
    auto& per_lm = rho.samples[a];
    thread_local std::vector<Vec3> ring;
    thread_local std::vector<double> dens;
    const std::size_t nk = ang_dirs_.size();
    ring.resize(nk);
    dens.resize(nk);
    for (std::size_t k = 0; k < nk; ++k) ring[k] = center + r * ang_dirs_[k];
    density(ring.data(), nk, dens.data());
    for (std::size_t k = 0; k < nk; ++k) {
      const double val = dens[k] * partition_.weight(a, ring[k]) * ang_weights_[k];
      if (val == 0.0) continue;
      const std::vector<double>& ylm = ang_ylm_[k];
      for (std::size_t lm = 0; lm < nlm; ++lm) per_lm[lm][i] += val * ylm[lm];
    }
  });
  return rho;
}

void HartreeSolver::finalize_splines(MultipoleDensity& rho) const {
  AEQP_CHECK(rho.atom_count() == structure_.size(),
             "HartreeSolver::finalize_splines: density built for a different "
             "structure");
  const std::size_t nlm = lm_count(spec_.l_max);
  rho.splines.resize(rho.samples.size());
  for (std::size_t a = 0; a < rho.samples.size(); ++a) {
    rho.splines[a].resize(nlm);
    exec::parallel_for(0, nlm, [&](std::size_t lm) {
      // SDC probe + finiteness guard before the spline fit: a struck sample
      // would otherwise be smeared over the whole radial channel by the
      // spline's tridiagonal solve and surface only as slow divergence.
      resilience::sdc_probe("poisson/rho_multipole", rho.samples[a][lm]);
      resilience::guard_finite(rho.samples[a][lm], "poisson/rho_multipole");
      rho.splines[a][lm] = basis::CubicSpline(mesh_.points(), rho.samples[a][lm]);
    });
  }
}

PartitionedPotential HartreeSolver::solve(const MultipoleDensity& rho) const {
  AEQP_TRACE_SCOPE("poisson/solve");
  AEQP_CHECK(rho.atom_count() == structure_.size(),
             "HartreeSolver::solve: density built for a different structure");
  const std::size_t nlm = lm_count(spec_.l_max);
  const std::size_t nr = mesh_.size();
  const double h = mesh_.log_step();

  PartitionedPotential out;
  out.l_max = spec_.l_max;
  out.r_max = mesh_.r_max();
  out.splines.resize(structure_.size());
  out.moments.assign(structure_.size(), std::vector<double>(nlm, 0.0));

  for (std::size_t a = 0; a < structure_.size(); ++a) out.splines[a].resize(nlm);

  // Every (atom, l, m) channel is an independent radial solve writing its
  // own spline and moment slot; flatten the loops and run them across the
  // pool with task-local scratch.
  exec::parallel_for(0, structure_.size() * nlm, [&](std::size_t task) {
    const std::size_t a = task / nlm;
    const std::size_t lm = task % nlm;
    int l = 0;
    while (static_cast<std::size_t>((l + 1) * (l + 1)) <= lm) ++l;

    std::vector<double> g_inner(nr), g_outer(nr), v(nr);
    const std::vector<double>& rho_lm = rho.samples[a][lm];
    // Integrands in t = log r: ds = s dt. Small integer powers by repeated
    // multiplication (ipow): elementwise, branch-free, vectorizable --
    // std::pow's transcendental path is neither.
    for (std::size_t i = 0; i < nr; ++i) {
      const double s = mesh_.r(i);
      g_inner[i] = ipow(s, l + 3) * rho_lm[i];
      g_outer[i] = ipow(s, 2 - l) * rho_lm[i];
    }
    const std::vector<double> inner = cumulative_integral_am4(h, g_inner);
    const std::vector<double> outer = cumulative_integral_am4(h, g_outer);
    // Tail below r_min, where the density is treated as constant; only
    // the inner integral reaches into [0, r_min).
    const double r0 = mesh_.r_min();
    const double inner0 = rho_lm[0] * ipow(r0, l + 3) / (l + 3);

    const double prefac = constants::four_pi / (2.0 * l + 1.0);
    for (std::size_t i = 0; i < nr; ++i) {
      const double r = mesh_.r(i);
      const double q_in = inner0 + inner[i];
      const double q_out = (outer.back() - outer[i]);
      v[i] = prefac * (q_in / ipow(r, l + 1) + ipow(r, l) * q_out);
    }
    out.moments[a][lm] = inner0 + inner.back();
    out.splines[a][lm] = basis::CubicSpline(mesh_.points(), v);
  });
  // Repack each atom's channels for the consumer kernel: one interval
  // search per (atom, point) instead of one per (atom, lm, point).
  out.bundles.resize(structure_.size());
  for (std::size_t a = 0; a < structure_.size(); ++a)
    out.bundles[a] = basis::SplineBundle::pack(out.splines[a]);
  return out;
}

double HartreeSolver::potential(const PartitionedPotential& v, const Vec3& p) const {
  double out = 0.0;
  potential_batch(v, &p, 1, &out);
  return out;
}

void HartreeSolver::potential_batch(const PartitionedPotential& v,
                                    const Vec3* pts, std::size_t n,
                                    double* out) const {
  AEQP_CHECK(v.splines.size() == structure_.size(),
             "HartreeSolver::potential: potential built for a different structure");
  static obs::Counter& c_far = obs::counter("rho/screen/potential_far_blocks");
  static obs::Counter& c_near = obs::counter("rho/screen/potential_near_blocks");
  static obs::Counter& c_mixed = obs::counter("rho/screen/potential_mixed_blocks");

  const std::size_t nlm = lm_count(v.l_max);
  const double r_floor = mesh_.r_min();
  thread_local std::vector<double> ylm, vch;
  ylm.resize(nlm);
  vch.resize(nlm);
  for (std::size_t k = 0; k < n; ++k) out[k] = 0.0;

  // Block bounds around the centroid (spherical shell [r_lo, r_hi], tight
  // for hollow rings) for the per-(atom, block) near/far classification.
  // Geometry only: the classification never changes a point's branch
  // outcome (it only skips re-deriving it per point), so results are
  // independent of blocking, thread count, and rank count.
  Vec3 centroid{};
  for (std::size_t k = 0; k < n; ++k) centroid += pts[k];
  if (n > 0) centroid = centroid / static_cast<double>(n);
  double lo2 = n > 0 ? (pts[0] - centroid).norm2() : 0.0, hi2 = lo2;
  for (std::size_t k = 1; k < n; ++k) {
    const double d2 = (pts[k] - centroid).norm2();
    lo2 = std::min(lo2, d2);
    hi2 = std::max(hi2, d2);
  }
  const double r_lo = std::sqrt(lo2), r_hi = std::sqrt(hi2);

  for (std::size_t a = 0; a < structure_.size(); ++a) {
    const Vec3 center = structure_.atom(a).pos;
    const double dist = (center - centroid).norm();
    const bool all_far = n > 1 && std::max(dist - r_hi, r_lo - dist) > v.r_max;
    const bool all_near = n > 1 && dist + r_hi <= v.r_max;
    if (n > 1) (all_far ? c_far : all_near ? c_near : c_mixed).increment();

    const basis::SplineBundle& bundle = v.bundles[a];
    const std::vector<double>& moments = v.moments[a];
    for (std::size_t k = 0; k < n; ++k) {
      const Vec3 d = pts[k] - center;
      const double r = d.norm();
      const Vec3 u = (r > 1e-12) ? d / r : Vec3{0.0, 0.0, 1.0};
      basis::real_ylm_all(v.l_max, u, ylm.data());
      if (all_near || (!all_far && r <= v.r_max)) {
        // Near field: one interval search for all channels, then the same
        // per-lm accumulation (and ylm == 0 skip) as the scalar path.
        bundle.eval_all(std::max(r, r_floor), vch.data());
        double total = out[k];
        for (std::size_t lm = 0; lm < nlm; ++lm) {
          const double ylm_v = ylm[lm];
          if (ylm_v == 0.0) continue;
          total += vch[lm] * ylm_v;
        }
        out[k] = total;
      } else {
        // Far field from the stored moments.
        double total = out[k];
        for (int l = 0; l <= v.l_max; ++l) {
          const double radial =
              constants::four_pi / (2.0 * l + 1.0) / ipow(r, l + 1);
          for (int m = -l; m <= l; ++m)
            total += radial * moments[lm_index(l, m)] * ylm[lm_index(l, m)];
        }
        out[k] = total;
      }
    }
  }
}

PartitionedPotential HartreeSolver::solve_density(const DensityFn& density) const {
  return solve(project(density));
}

PartitionedPotential HartreeSolver::solve_density(const BatchDensityFn& density) const {
  return solve(project(density));
}

double HartreeSolver::total_charge(const MultipoleDensity& rho) const {
  const double y00 = 1.0 / std::sqrt(constants::four_pi);
  double q = 0.0;
  for (std::size_t a = 0; a < rho.atom_count(); ++a)
    q += mesh_.integrate_volume(rho.samples[a][0]) / y00;
  return q;
}

}  // namespace aeqp::poisson
