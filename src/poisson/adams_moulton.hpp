#pragma once

/// \file adams_moulton.hpp
/// Cumulative integration with the 4th-order Adams-Moulton linear multistep
/// formula on a uniform mesh. The paper's response-potential phase computes
/// the partitioned Hartree potential with exactly this integrator (Sec. 4.4
/// shows its (p, m) loop); AEQP uses it for the radial Poisson integrals on
/// the logarithmic mesh (uniform in t = log r).

#include <vector>

namespace aeqp::poisson {

/// Cumulative integral I_k = \int_{t_0}^{t_k} g dt for uniformly spaced
/// samples g with step h. I_0 = 0; the first two steps bootstrap with
/// trapezoid and Simpson, then the AM4 corrector formula
///   I_k = I_{k-1} + h/24 (9 g_k + 19 g_{k-1} - 5 g_{k-2} + g_{k-3})
/// takes over.
std::vector<double> cumulative_integral_am4(double h, const std::vector<double>& g);

/// Convenience: the total integral (last element of the cumulative result).
double integral_am4(double h, const std::vector<double>& g);

}  // namespace aeqp::poisson
