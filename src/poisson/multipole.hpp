#pragma once

/// \file multipole.hpp
/// Per-atom multipole decomposition of a density and the partitioned
/// Hartree potential (paper Eqs. 8-9 and the Rho phase of Fig. 1).
///
/// Pipeline (identical for the ground-state density and the DFPT response
/// density):
///   1. project():  partition the density with Becke weights and project
///      each atom's share onto Y_lm per radial shell -> rho_multipole,
///      splined as rho_multipole_spl (the producer kernel's first output).
///   2. solve():    integrate the radial Poisson equation per (atom, l, m)
///      with the Adams-Moulton integrator -> delta_v_hart_part_spl
///      (the producer kernel's second output).
///   3. potential(): interpolate and sum the per-atom splines at arbitrary
///      points (the consumer kernel).

#include <functional>
#include <vector>

#include "basis/spline.hpp"
#include "common/vec3.hpp"
#include "grid/partition.hpp"
#include "grid/radial_grid.hpp"
#include "grid/structure.hpp"

namespace aeqp::poisson {

/// Density callback n(r) evaluated at arbitrary Cartesian points.
using DensityFn = std::function<double(const Vec3&)>;

/// Configuration of the multipole Poisson solver.
struct PoissonSpec {
  int l_max = 4;                  ///< multipole expansion order
  std::size_t radial_points = 96; ///< radial mesh points per atom
  double r_min = 1e-4;
  double r_max = 12.0;            ///< radial mesh extent (covers the density)
};

/// rho_multipole: per atom, per (l,m), the radial profile of the Becke-
/// partitioned density component, plus its spline (rho_multipole_spl).
struct MultipoleDensity {
  // samples[a][lm][i] on the solver's radial mesh.
  std::vector<std::vector<std::vector<double>>> samples;
  // rho_multipole_spl[a][lm]
  std::vector<std::vector<basis::CubicSpline>> splines;

  [[nodiscard]] std::size_t atom_count() const { return samples.size(); }
  /// Payload bytes of all splines (Fig. 12(a) volume accounting).
  [[nodiscard]] std::size_t spline_bytes() const;
};

/// The partitioned Hartree potential: per atom, per (l,m), a radial spline
/// (delta_v_hart_part_spl) plus the far-field multipole moment.
struct PartitionedPotential {
  std::vector<std::vector<basis::CubicSpline>> splines;  // [a][lm]
  std::vector<std::vector<double>> moments;              // [a][lm] outer moments
  int l_max = 0;
  double r_max = 0.0;

  [[nodiscard]] std::size_t spline_bytes() const;
};

/// Multipole-expansion Hartree solver over a fixed structure.
class HartreeSolver {
public:
  HartreeSolver(const grid::Structure& structure, const PoissonSpec& spec);

  /// Step 1: project a density onto per-atom multipole components.
  [[nodiscard]] MultipoleDensity project(const DensityFn& density) const;

  /// Step 2: radial Poisson solve for every (atom, l, m) channel.
  [[nodiscard]] PartitionedPotential solve(const MultipoleDensity& rho) const;

  /// Step 3: evaluate the summed potential at a point.
  [[nodiscard]] double potential(const PartitionedPotential& v, const Vec3& p) const;

  /// Convenience: all three steps.
  [[nodiscard]] PartitionedPotential solve_density(const DensityFn& density) const;

  [[nodiscard]] const PoissonSpec& spec() const { return spec_; }
  [[nodiscard]] const grid::RadialGrid& mesh() const { return mesh_; }
  [[nodiscard]] const grid::Structure& structure() const { return structure_; }

  /// Total charge contained in a projected density (l=0 moments); a cheap
  /// consistency diagnostic.
  [[nodiscard]] double total_charge(const MultipoleDensity& rho) const;

private:
  grid::Structure structure_;
  PoissonSpec spec_;
  grid::RadialGrid mesh_;
  grid::BeckePartition partition_;
  // Angular rule used for the multipole projection (exact through 2*l_max).
  std::vector<Vec3> ang_dirs_;
  std::vector<double> ang_weights_;
  std::vector<std::vector<double>> ang_ylm_;  // [k][lm]
};

}  // namespace aeqp::poisson
