#pragma once

/// \file multipole.hpp
/// Per-atom multipole decomposition of a density and the partitioned
/// Hartree potential (paper Eqs. 8-9 and the Rho phase of Fig. 1).
///
/// Pipeline (identical for the ground-state density and the DFPT response
/// density):
///   1. project():  partition the density with Becke weights and project
///      each atom's share onto Y_lm per radial shell -> rho_multipole,
///      splined as rho_multipole_spl (the producer kernel's first output).
///   2. solve():    integrate the radial Poisson equation per (atom, l, m)
///      with the Adams-Moulton integrator -> delta_v_hart_part_spl
///      (the producer kernel's second output).
///   3. potential(): interpolate and sum the per-atom splines at arbitrary
///      points (the consumer kernel).

#include <functional>
#include <vector>

#include "basis/spline.hpp"
#include "common/vec3.hpp"
#include "grid/partition.hpp"
#include "grid/radial_grid.hpp"
#include "grid/structure.hpp"

namespace aeqp::poisson {

/// Density callback n(r) evaluated at arbitrary Cartesian points.
using DensityFn = std::function<double(const Vec3&)>;

/// Batched density callback: evaluate n at `n` points into out[0..n). The
/// Rho-phase hot path hands whole angular rings to the callback at once so
/// the basis layer can amortize screening and scratch across the ring.
using BatchDensityFn =
    std::function<void(const Vec3* pts, std::size_t n, double* out)>;

/// Configuration of the multipole Poisson solver.
struct PoissonSpec {
  int l_max = 4;                  ///< multipole expansion order
  std::size_t radial_points = 96; ///< radial mesh points per atom
  double r_min = 1e-4;
  double r_max = 12.0;            ///< radial mesh extent (covers the density)
};

/// rho_multipole: per atom, per (l,m), the radial profile of the Becke-
/// partitioned density component, plus its spline (rho_multipole_spl).
struct MultipoleDensity {
  // samples[a][lm][i] on the solver's radial mesh.
  std::vector<std::vector<std::vector<double>>> samples;
  // rho_multipole_spl[a][lm]
  std::vector<std::vector<basis::CubicSpline>> splines;

  [[nodiscard]] std::size_t atom_count() const { return samples.size(); }
  /// Payload bytes of all splines (Fig. 12(a) volume accounting).
  [[nodiscard]] std::size_t spline_bytes() const;
};

/// The partitioned Hartree potential: per atom, per (l,m), a radial spline
/// (delta_v_hart_part_spl) plus the far-field multipole moment.
struct PartitionedPotential {
  std::vector<std::vector<basis::CubicSpline>> splines;  // [a][lm]
  std::vector<std::vector<double>> moments;              // [a][lm] outer moments
  /// splines[a] repacked channel-contiguous: one interval search serves all
  /// (l,m) channels of an atom in the consumer kernel (potential_batch).
  std::vector<basis::SplineBundle> bundles;              // [a]
  int l_max = 0;
  double r_max = 0.0;

  [[nodiscard]] std::size_t spline_bytes() const;
};

/// Multipole-expansion Hartree solver over a fixed structure.
class HartreeSolver {
public:
  HartreeSolver(const grid::Structure& structure, const PoissonSpec& spec);

  /// Step 1: project a density onto per-atom multipole components. The
  /// batched overload hands each (atom, radial shell)'s full angular ring to
  /// the callback in one call; the per-point overload wraps the density in a
  /// ring-at-a-time adapter, so both produce bit-identical projections.
  [[nodiscard]] MultipoleDensity project(const BatchDensityFn& density) const;
  [[nodiscard]] MultipoleDensity project(const DensityFn& density) const;

  /// Number of independent projection rows -- the (atom-major) x (radial
  /// shell) task list -- the unit of distribution for project_rows.
  [[nodiscard]] std::size_t projection_row_count() const;

  /// Step 1, partial: project only rows [row_begin, row_end) of the task
  /// list; every other row's samples stay exactly 0.0 and no splines are
  /// fitted. Each owned row runs the same arithmetic in the same order as
  /// project(), so summing disjoint partial projections across ranks
  /// reproduces the replicated projection bit-for-bit (x + 0 is exact in
  /// IEEE addition). Call finalize_splines on the summed samples before
  /// solve().
  [[nodiscard]] MultipoleDensity project_rows(const BatchDensityFn& density,
                                              std::size_t row_begin,
                                              std::size_t row_end) const;

  /// Fit rho_multipole_spl from complete samples: SDC probe + finiteness
  /// guard + cubic-spline fit per (atom, lm) channel -- the tail of
  /// project(), split out so a distributed producer can run it after the
  /// partial projections have been summed.
  void finalize_splines(MultipoleDensity& rho) const;

  /// Step 2: radial Poisson solve for every (atom, l, m) channel.
  [[nodiscard]] PartitionedPotential solve(const MultipoleDensity& rho) const;

  /// Step 3: evaluate the summed potential at a point. Delegates to
  /// potential_batch with a single-point block.
  [[nodiscard]] double potential(const PartitionedPotential& v, const Vec3& p) const;

  /// Step 3, batched: evaluate the summed potential at a block of points
  /// into out[0..n). Per point the accumulation order (atom-major, then lm,
  /// with the ylm == 0 skip) matches the scalar potential() exactly, so the
  /// two are bit-identical. Whole blocks provably inside/outside an atom's
  /// spline span skip the per-point near/far branch (geometry-only
  /// classification; counters under rho/screen/*).
  void potential_batch(const PartitionedPotential& v, const Vec3* pts,
                       std::size_t n, double* out) const;

  /// Convenience: all three steps.
  [[nodiscard]] PartitionedPotential solve_density(const DensityFn& density) const;
  [[nodiscard]] PartitionedPotential solve_density(const BatchDensityFn& density) const;

  [[nodiscard]] const PoissonSpec& spec() const { return spec_; }
  [[nodiscard]] const grid::RadialGrid& mesh() const { return mesh_; }
  [[nodiscard]] const grid::Structure& structure() const { return structure_; }

  /// Total charge contained in a projected density (l=0 moments); a cheap
  /// consistency diagnostic.
  [[nodiscard]] double total_charge(const MultipoleDensity& rho) const;

private:
  grid::Structure structure_;
  PoissonSpec spec_;
  grid::RadialGrid mesh_;
  grid::BeckePartition partition_;
  // Angular rule used for the multipole projection (exact through 2*l_max).
  std::vector<Vec3> ang_dirs_;
  std::vector<double> ang_weights_;
  std::vector<std::vector<double>> ang_ylm_;  // [k][lm]
};

}  // namespace aeqp::poisson
