#pragma once

/// \file timer.hpp
/// Wall-clock timing utilities used by benchmarks and the performance model
/// calibration pass.

#include <chrono>

namespace aeqp {

/// Monotonic wall-clock stopwatch.
class Timer {
public:
  Timer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace aeqp
