#pragma once

/// \file vec3.hpp
/// Small 3-vector used for atomic coordinates and grid points.

#include <array>
#include <cmath>
#include <ostream>

namespace aeqp {

/// Plain 3-D Cartesian vector in atomic units (bohr).
struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  constexpr double& operator[](int i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr const double& operator[](int i) const {
    return i == 0 ? x : (i == 1 ? y : z);
  }

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  Vec3& operator+=(const Vec3& o) {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x; y -= o.y; z -= o.z;
    return *this;
  }
  Vec3& operator*=(double s) {
    x *= s; y *= s; z *= s;
    return *this;
  }

  [[nodiscard]] constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  [[nodiscard]] constexpr double norm2() const { return dot(*this); }
  [[nodiscard]] double norm() const { return std::sqrt(norm2()); }
  [[nodiscard]] Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

/// Euclidean distance between two points.
inline double distance(const Vec3& a, const Vec3& b) { return (a - b).norm(); }

}  // namespace aeqp
