#include "common/crc32.hpp"

#include <array>

namespace aeqp {

namespace {

/// Reflected CRC-32 table for the IEEE 802.3 polynomial 0xedb88320.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const unsigned char> data, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xffffffffu;
  for (unsigned char byte : data)
    c = crc_table()[(c ^ byte) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

}  // namespace aeqp
