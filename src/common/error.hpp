#pragma once

/// \file error.hpp
/// Error handling primitives shared by every AEQP module.
///
/// Library code throws aeqp::Error for recoverable misuse and uses
/// AEQP_ASSERT for internal invariants that indicate a programming bug.

#include <cstddef>
#include <stdexcept>
#include <string>

namespace aeqp {

/// Exception type thrown by all AEQP components on invalid input or
/// unsatisfiable requests (bad dimensions, non-convergence, ...).
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A physics or numerical invariant failed its check: the all-electron
/// formulation guarantees exact conserved quantities (electron count,
/// Hermiticity, trace identities, finiteness) whose violation is the
/// signature of silent data corruption, not of a user mistake. Carries the
/// invariant's name and site so the recovery ladder (ABFT correct ->
/// recompute -> rollback -> shrink; see docs/sdc.md) can report and route it.
class InvariantViolation : public Error {
public:
  InvariantViolation(std::string invariant, std::string site, double measured,
                     double expected)
      : Error("invariant violation: " + invariant + " at " + site +
              " (measured " + std::to_string(measured) + ", expected " +
              std::to_string(expected) + ")"),
        invariant_(std::move(invariant)),
        site_(std::move(site)),
        measured_(measured),
        expected_(expected) {}

  /// Which invariant failed, e.g. "finite", "hermitian", "electron_count".
  [[nodiscard]] const std::string& invariant() const noexcept {
    return invariant_;
  }
  /// Where it was checked, e.g. "cpscf/rho" or "scf/hamiltonian".
  [[nodiscard]] const std::string& site() const noexcept { return site_; }
  [[nodiscard]] double measured() const noexcept { return measured_; }
  [[nodiscard]] double expected() const noexcept { return expected_; }

private:
  std::string invariant_;
  std::string site_;
  double measured_;
  double expected_;
};

/// Admission control rejected a request because the bounded queue is at
/// capacity (backpressure / load shedding). Structured so clients can tell
/// "try again later" apart from "this request is wrong": a QueueFull is
/// never the job's fault, and the carried depth/capacity let callers size
/// their retry policy.
class QueueFull : public Error {
public:
  QueueFull(std::size_t depth, std::size_t capacity)
      : Error("queue full: " + std::to_string(depth) + "/" +
              std::to_string(capacity) + " jobs queued; request shed"),
        depth_(depth),
        capacity_(capacity) {}

  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

private:
  std::size_t depth_;
  std::size_t capacity_;
};

/// Admission control rejected a request on its merits: oversized, malformed
/// (non-finite coordinates, empty structure), estimated to exceed the
/// per-rank memory budget, or otherwise unservable. The request itself is at
/// fault -- retrying unchanged will be rejected again. `kind` refines the
/// rejection for the structured-error taxonomy ("JobRejected" for plain
/// validation failures, "MemoryBudgetExceeded" for admission-time memory
/// estimates that cannot fit AEQP_MEM_BUDGET).
class JobRejected : public Error {
public:
  explicit JobRejected(const std::string& reason,
                       std::string kind = "JobRejected")
      : Error("job rejected: " + reason),
        reason_(reason),
        kind_(std::move(kind)) {}

  [[nodiscard]] const std::string& reason() const noexcept { return reason_; }
  /// Taxonomy kind: "JobRejected" or "MemoryBudgetExceeded".
  [[nodiscard]] const std::string& kind() const noexcept { return kind_; }

private:
  std::string reason_;
  std::string kind_;
};

/// A deadline-bounded computation ran out of budget. Raised by the
/// resilience layer when a RecoveryOptions::cancel hook trips mid-solve and
/// by the service layer when a job's wall-clock budget expires before any
/// degradation rung can finish. Carries budget and elapsed milliseconds so
/// clients can distinguish "barely missed" from "hopelessly oversized".
class DeadlineExceeded : public Error {
public:
  DeadlineExceeded(const std::string& what, std::size_t budget_ms,
                   std::size_t elapsed_ms)
      : Error("deadline exceeded: " + what + " (budget " +
              std::to_string(budget_ms) + " ms, elapsed " +
              std::to_string(elapsed_ms) + " ms)"),
        budget_ms_(budget_ms),
        elapsed_ms_(elapsed_ms) {}

  /// Raised by layers that only see the cancellation verdict, not the
  /// budget (e.g. a RecoveryDriver whose cancel hook tripped); budget_ms()
  /// and elapsed_ms() report 0 = unknown.
  explicit DeadlineExceeded(const std::string& what)
      : Error("deadline exceeded: " + what) {}

  [[nodiscard]] std::size_t budget_ms() const noexcept { return budget_ms_; }
  [[nodiscard]] std::size_t elapsed_ms() const noexcept { return elapsed_ms_; }

private:
  std::size_t budget_ms_ = 0;
  std::size_t elapsed_ms_ = 0;
};

/// The per-rank memory-budget governor (resilience/membudget.hpp) refused an
/// allocation: admitting `requested_bytes` more at `site` would cross the
/// hard watermark of the AEQP_MEM_BUDGET ceiling (or an OomInjector fired
/// there). This is the structured replacement for an unrecoverable
/// std::bad_alloc: it names the allocation site and carries the live byte
/// accounting so the pressure-relief ladder (drop point cache, evict warm
/// cache, shrink staging windows, spill buddy replicas) can route it like
/// any other fault class instead of aborting the run.
class OutOfMemoryBudget : public Error {
public:
  OutOfMemoryBudget(std::string site, std::size_t requested_bytes,
                    std::size_t budget_bytes, std::size_t in_use_bytes)
      : Error("out of memory budget: " + site + " requested " +
              std::to_string(requested_bytes) + " bytes with " +
              std::to_string(in_use_bytes) + " of " +
              std::to_string(budget_bytes) + " budget bytes in use"),
        site_(std::move(site)),
        requested_bytes_(requested_bytes),
        budget_bytes_(budget_bytes),
        in_use_bytes_(in_use_bytes) {}

  /// The allocation site that breached, e.g. "dfpt/point_cache".
  [[nodiscard]] const std::string& site() const noexcept { return site_; }
  [[nodiscard]] std::size_t requested_bytes() const noexcept {
    return requested_bytes_;
  }
  /// The hard ceiling in force; 0 when the breach came from an injector
  /// with no byte budget armed.
  [[nodiscard]] std::size_t budget_bytes() const noexcept {
    return budget_bytes_;
  }
  [[nodiscard]] std::size_t in_use_bytes() const noexcept {
    return in_use_bytes_;
  }

private:
  std::string site_;
  std::size_t requested_bytes_;
  std::size_t budget_bytes_;
  std::size_t in_use_bytes_;
};

namespace detail {
[[noreturn]] void throw_error(const char* file, int line, const std::string& msg);
[[noreturn]] void assert_fail(const char* file, int line, const char* expr);
}  // namespace detail

}  // namespace aeqp

/// Throw aeqp::Error with file/line context.
#define AEQP_THROW(msg) ::aeqp::detail::throw_error(__FILE__, __LINE__, (msg))

/// Validate a user-facing precondition; throws aeqp::Error when violated.
#define AEQP_CHECK(cond, msg)                                  \
  do {                                                         \
    if (!(cond)) ::aeqp::detail::throw_error(__FILE__, __LINE__, (msg)); \
  } while (0)

/// Internal invariant check; enabled in all build types because the library
/// is numerical and silent corruption is worse than an abort.
#define AEQP_ASSERT(expr)                                      \
  do {                                                         \
    if (!(expr)) ::aeqp::detail::assert_fail(__FILE__, __LINE__, #expr); \
  } while (0)
