#pragma once

/// \file error.hpp
/// Error handling primitives shared by every AEQP module.
///
/// Library code throws aeqp::Error for recoverable misuse and uses
/// AEQP_ASSERT for internal invariants that indicate a programming bug.

#include <stdexcept>
#include <string>

namespace aeqp {

/// Exception type thrown by all AEQP components on invalid input or
/// unsatisfiable requests (bad dimensions, non-convergence, ...).
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A physics or numerical invariant failed its check: the all-electron
/// formulation guarantees exact conserved quantities (electron count,
/// Hermiticity, trace identities, finiteness) whose violation is the
/// signature of silent data corruption, not of a user mistake. Carries the
/// invariant's name and site so the recovery ladder (ABFT correct ->
/// recompute -> rollback -> shrink; see docs/sdc.md) can report and route it.
class InvariantViolation : public Error {
public:
  InvariantViolation(std::string invariant, std::string site, double measured,
                     double expected)
      : Error("invariant violation: " + invariant + " at " + site +
              " (measured " + std::to_string(measured) + ", expected " +
              std::to_string(expected) + ")"),
        invariant_(std::move(invariant)),
        site_(std::move(site)),
        measured_(measured),
        expected_(expected) {}

  /// Which invariant failed, e.g. "finite", "hermitian", "electron_count".
  [[nodiscard]] const std::string& invariant() const noexcept {
    return invariant_;
  }
  /// Where it was checked, e.g. "cpscf/rho" or "scf/hamiltonian".
  [[nodiscard]] const std::string& site() const noexcept { return site_; }
  [[nodiscard]] double measured() const noexcept { return measured_; }
  [[nodiscard]] double expected() const noexcept { return expected_; }

private:
  std::string invariant_;
  std::string site_;
  double measured_;
  double expected_;
};

namespace detail {
[[noreturn]] void throw_error(const char* file, int line, const std::string& msg);
[[noreturn]] void assert_fail(const char* file, int line, const char* expr);
}  // namespace detail

}  // namespace aeqp

/// Throw aeqp::Error with file/line context.
#define AEQP_THROW(msg) ::aeqp::detail::throw_error(__FILE__, __LINE__, (msg))

/// Validate a user-facing precondition; throws aeqp::Error when violated.
#define AEQP_CHECK(cond, msg)                                  \
  do {                                                         \
    if (!(cond)) ::aeqp::detail::throw_error(__FILE__, __LINE__, (msg)); \
  } while (0)

/// Internal invariant check; enabled in all build types because the library
/// is numerical and silent corruption is worse than an abort.
#define AEQP_ASSERT(expr)                                      \
  do {                                                         \
    if (!(expr)) ::aeqp::detail::assert_fail(__FILE__, __LINE__, #expr); \
  } while (0)
