#pragma once

/// \file thread_ident.hpp
/// Per-thread role tags shared by the log sink (rank prefixes) and the obs
/// tracing layer (one trace lane per rank x thread). A simmpi rank thread
/// tags itself for the duration of the rank function via ScopedThreadRank;
/// host threads and pool workers stay untagged (rank -1).

namespace aeqp {

namespace detail {
inline thread_local int tl_thread_rank = -1;
}  // namespace detail

/// Rank tag of the calling thread; -1 when the thread is not a simmpi rank.
[[nodiscard]] inline int thread_rank() { return detail::tl_thread_rank; }

/// Tag the calling thread with a rank (-1 clears the tag).
inline void set_thread_rank(int rank) { detail::tl_thread_rank = rank; }

/// RAII rank tag: tags on construction, restores the previous tag on exit.
class ScopedThreadRank {
public:
  explicit ScopedThreadRank(int rank) : prev_(thread_rank()) {
    set_thread_rank(rank);
  }
  ~ScopedThreadRank() { set_thread_rank(prev_); }
  ScopedThreadRank(const ScopedThreadRank&) = delete;
  ScopedThreadRank& operator=(const ScopedThreadRank&) = delete;

private:
  int prev_;
};

}  // namespace aeqp
