#pragma once

/// \file task_scope.hpp
/// Opaque per-task context pointer, thread-local like the rank tag of
/// thread_ident.hpp but *inherited* by the threads a task spawns: the simmpi
/// Cluster copies the spawning thread's scope onto every rank thread for the
/// duration of the rank function. Layers that keep process-global counters
/// (the ABFT stats of linalg/abft are the first user) walk this pointer to
/// attribute work to the task that caused it, so a long-lived multi-tenant
/// process can produce accurate per-job reports even while jobs run
/// concurrently -- without the layers above and below knowing about each
/// other (the pointer is opaque here; only its owner interprets it).

namespace aeqp {

namespace detail {
inline thread_local void* tl_task_scope = nullptr;
}  // namespace detail

/// The calling thread's task scope; nullptr when the thread is not working
/// on behalf of a scoped task.
[[nodiscard]] inline void* task_scope() { return detail::tl_task_scope; }

/// Set the calling thread's task scope (nullptr clears it).
inline void set_task_scope(void* scope) { detail::tl_task_scope = scope; }

/// RAII scope tag: installs on construction, restores the previous scope on
/// exit. Used both by scope owners (push a fresh context) and by thread
/// spawners (replicate the parent thread's context onto a child).
class ScopedTaskScope {
public:
  explicit ScopedTaskScope(void* scope) : prev_(task_scope()) {
    set_task_scope(scope);
  }
  ~ScopedTaskScope() { set_task_scope(prev_); }
  ScopedTaskScope(const ScopedTaskScope&) = delete;
  ScopedTaskScope& operator=(const ScopedTaskScope&) = delete;

private:
  void* prev_;
};

}  // namespace aeqp
