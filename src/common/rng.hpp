#pragma once

/// \file rng.hpp
/// Deterministic, seedable random number generation (xoshiro256**).
/// All stochastic choices in AEQP (synthetic structures, property tests)
/// flow through this generator so that runs are reproducible bit-for-bit.

#include <cstdint>

namespace aeqp {

/// xoshiro256** by Blackman & Vigna; small, fast, and high quality.
class Rng {
public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) { return n ? next_u64() % n : 0; }

  /// Standard normal via Box–Muller (one value per call; the pair's second
  /// member is discarded to keep the generator state trivially resumable).
  double normal();

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace aeqp
