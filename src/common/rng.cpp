#include "common/rng.hpp"

#include <cmath>

namespace aeqp {

double Rng::normal() {
  // Box–Muller; guard against log(0).
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

}  // namespace aeqp
