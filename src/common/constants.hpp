#pragma once

/// \file constants.hpp
/// Physical constants and unit conversions. AEQP works internally in
/// Hartree atomic units: length in bohr, energy in hartree, ħ = m_e = e = 1.

namespace aeqp::constants {

inline constexpr double pi = 3.14159265358979323846;
inline constexpr double four_pi = 4.0 * pi;
inline constexpr double sqrt_pi = 1.7724538509055160273;

/// 1 bohr in angstrom.
inline constexpr double bohr_to_angstrom = 0.529177210903;
inline constexpr double angstrom_to_bohr = 1.0 / bohr_to_angstrom;

/// 1 hartree in electron volt.
inline constexpr double hartree_to_ev = 27.211386245988;

/// Polarizability conversion: 1 bohr^3 in angstrom^3.
inline constexpr double bohr3_to_angstrom3 =
    bohr_to_angstrom * bohr_to_angstrom * bohr_to_angstrom;

}  // namespace aeqp::constants
