#include "common/log.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/thread_ident.hpp"

namespace aeqp {

std::mutex Log::mutex_;
LogLevel Log::level_ = LogLevel::Warn;
LogSink Log::sink_;
bool Log::timestamps_ = false;
bool Log::ts_env_checked_ = false;

void Log::set_level(LogLevel lvl) {
  std::lock_guard<std::mutex> lock(mutex_);
  level_ = lvl;
}

LogLevel Log::level() {
  std::lock_guard<std::mutex> lock(mutex_);
  return level_;
}

void Log::set_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_ = std::move(sink);
}

void Log::enable_timestamps(bool on) {
  std::lock_guard<std::mutex> lock(mutex_);
  timestamps_ = on;
  ts_env_checked_ = true;  // explicit choice wins over the environment
}

void Log::write(LogLevel lvl, const std::string& msg) {
  static const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::lock_guard<std::mutex> lock(mutex_);
  if (!ts_env_checked_) {
    ts_env_checked_ = true;
    const char* env = std::getenv("AEQP_LOG_TS");
    timestamps_ = env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
  }
  if (static_cast<int>(lvl) < static_cast<int>(level_)) return;

  std::string line = "[aeqp ";
  line += names[static_cast<int>(lvl)];
  if (timestamps_) {
    // Seconds since the first logged line (steady clock).
    static const auto epoch = std::chrono::steady_clock::now();
    const double t = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - epoch)
                         .count();
    char buf[32];
    std::snprintf(buf, sizeof(buf), " t=%.3f", t);
    line += buf;
  }
  if (const int rank = thread_rank(); rank >= 0) {
    line += " r";
    line += std::to_string(rank);
  }
  line += "] ";
  line += msg;

  if (sink_) {
    sink_(lvl, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace aeqp
