#include "common/log.hpp"

#include <cstdio>

namespace aeqp {

std::mutex Log::mutex_;
LogLevel Log::level_ = LogLevel::Warn;

void Log::set_level(LogLevel lvl) {
  std::lock_guard<std::mutex> lock(mutex_);
  level_ = lvl;
}

LogLevel Log::level() {
  std::lock_guard<std::mutex> lock(mutex_);
  return level_;
}

void Log::write(LogLevel lvl, const std::string& msg) {
  static const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::lock_guard<std::mutex> lock(mutex_);
  if (static_cast<int>(lvl) < static_cast<int>(level_)) return;
  std::fprintf(stderr, "[aeqp %s] %s\n", names[static_cast<int>(lvl)], msg.c_str());
}

}  // namespace aeqp
