#include "common/error.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace aeqp::detail {

void throw_error(const char* file, int line, const std::string& msg) {
  std::ostringstream os;
  os << msg << " (" << file << ":" << line << ")";
  throw Error(os.str());
}

void assert_fail(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "AEQP_ASSERT failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace aeqp::detail
