#pragma once

/// \file table.hpp
/// Console table printer used by the bench harnesses to emit the rows and
/// series of each paper table/figure in a uniform, diff-friendly format.

#include <string>
#include <vector>

namespace aeqp {

/// Accumulates rows of string cells and prints them with aligned columns.
class Table {
public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render to stdout with a title banner.
  void print(const std::string& title) const;

  /// Format helper: fixed-point double.
  static std::string num(double v, int precision = 3);
  /// Format helper: scientific double.
  static std::string sci(double v, int precision = 3);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aeqp
