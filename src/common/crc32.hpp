#pragma once

/// \file crc32.hpp
/// CRC-32 (IEEE 802.3 polynomial, reflected) shared by the checkpoint frame
/// format (src/resilience/checkpoint) and the payload-verified collectives
/// (src/parallel/cluster). Lives in common so the simmpi layer can tag and
/// verify collective payloads without depending on the resilience module.

#include <cstdint>
#include <span>

namespace aeqp {

/// CRC-32 of a byte range. `seed` chains partial computations:
/// crc32(ab) == crc32(b, crc32(a)).
[[nodiscard]] std::uint32_t crc32(std::span<const unsigned char> data,
                                  std::uint32_t seed = 0);

}  // namespace aeqp
