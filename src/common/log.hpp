#pragma once

/// \file log.hpp
/// Minimal leveled logger. Thread-safe, writes to stderr. Benchmarks and
/// examples raise the level to keep figure output clean.

#include <mutex>
#include <sstream>
#include <string>

namespace aeqp {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log configuration. Levels below the threshold are discarded.
class Log {
public:
  static void set_level(LogLevel lvl);
  static LogLevel level();
  static void write(LogLevel lvl, const std::string& msg);

private:
  static std::mutex mutex_;
  static LogLevel level_;
};

namespace detail {
class LogLine {
public:
  explicit LogLine(LogLevel lvl) : lvl_(lvl) {}
  ~LogLine() { Log::write(lvl_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

private:
  LogLevel lvl_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace aeqp

#define AEQP_LOG_DEBUG ::aeqp::detail::LogLine(::aeqp::LogLevel::Debug)
#define AEQP_LOG_INFO ::aeqp::detail::LogLine(::aeqp::LogLevel::Info)
#define AEQP_LOG_WARN ::aeqp::detail::LogLine(::aeqp::LogLevel::Warn)
#define AEQP_LOG_ERROR ::aeqp::detail::LogLine(::aeqp::LogLevel::Error)
