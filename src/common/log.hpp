#pragma once

/// \file log.hpp
/// Minimal leveled logger. Thread-safe; every message is formatted into a
/// single line ("[aeqp LEVEL t=SECONDS r<rank>] message") and routed
/// through one sink. The default sink writes to stderr; set_sink redirects
/// the stream (test capture, file logging) without touching call sites.
/// Timestamps (seconds since the first logged line) are off by default;
/// enable with enable_timestamps(true) or the AEQP_LOG_TS environment
/// variable. Lines emitted from a simmpi rank thread (common/thread_ident.hpp)
/// carry an "r<rank>" prefix so interleaved rank output stays attributable.
/// Benchmarks and examples raise the level to keep figure output clean.

#include <functional>
#include <mutex>
#include <sstream>
#include <string>

namespace aeqp {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Receives every formatted line (no trailing newline). Runs under the log
/// mutex: keep it fast and never log from inside it.
using LogSink = std::function<void(LogLevel, const std::string& line)>;

/// Global log configuration. Levels below the threshold are discarded.
class Log {
public:
  static void set_level(LogLevel lvl);
  static LogLevel level();

  /// Replace the output sink; an empty function restores the stderr default.
  static void set_sink(LogSink sink);

  /// Prefix lines with "t=<seconds since first line>".
  static void enable_timestamps(bool on);

  static void write(LogLevel lvl, const std::string& msg);

private:
  static std::mutex mutex_;
  static LogLevel level_;
  static LogSink sink_;
  static bool timestamps_;
  static bool ts_env_checked_;
};

namespace detail {
class LogLine {
public:
  explicit LogLine(LogLevel lvl) : lvl_(lvl) {}
  ~LogLine() { Log::write(lvl_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

private:
  LogLevel lvl_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace aeqp

#define AEQP_LOG_DEBUG ::aeqp::detail::LogLine(::aeqp::LogLevel::Debug)
#define AEQP_LOG_INFO ::aeqp::detail::LogLine(::aeqp::LogLevel::Info)
#define AEQP_LOG_WARN ::aeqp::detail::LogLine(::aeqp::LogLevel::Warn)
#define AEQP_LOG_ERROR ::aeqp::detail::LogLine(::aeqp::LogLevel::Error)
