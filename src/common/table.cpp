#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace aeqp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  AEQP_CHECK(!header_.empty(), "Table requires at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  AEQP_CHECK(row.size() == header_.size(), "Table row arity mismatch");
  rows_.push_back(std::move(row));
}

void Table::print(const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::size_t total = 1;
  for (auto w : width) total += w + 3;

  std::string bar(total, '-');
  std::printf("\n== %s ==\n%s\n", title.c_str(), bar.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (std::size_t c = 0; c < row.size(); ++c)
      std::printf(" %-*s |", static_cast<int>(width[c]), row[c].c_str());
    std::printf("\n");
  };
  print_row(header_);
  std::printf("%s\n", bar.c_str());
  for (const auto& row : rows_) print_row(row);
  std::printf("%s\n", bar.c_str());
  std::fflush(stdout);
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::sci(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::scientific);
  os.precision(precision);
  os << v;
  return os.str();
}

}  // namespace aeqp
