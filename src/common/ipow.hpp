#pragma once

/// \file ipow.hpp
/// Small-integer powers by iterative multiplication. The Rho-phase inner
/// loops need r^(l+1), s^(l+3), s^(2-l) for l <= 9; `std::pow` is a libm
/// call that blocks autovectorization and costs ~50-100 cycles, while a
/// short multiply chain inlines, vectorizes, and differs from the
/// correctly-rounded pow by at most a few ulps (documented in
/// docs/performance.md -- the determinism contract is about thread-count
/// invariance, which a fixed multiply chain preserves exactly).

namespace aeqp {

/// x^n for small integer n (negative n via one final division). The chain
/// is a plain left-to-right product, so the rounding sequence is fixed and
/// identical on every thread/rank.
[[nodiscard]] constexpr double ipow(double x, int n) {
  if (n < 0) return 1.0 / ipow(x, -n);
  double r = 1.0;
  for (int k = 0; k < n; ++k) r *= x;
  return r;
}

}  // namespace aeqp
