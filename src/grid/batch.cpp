#include "grid/batch.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace aeqp::grid {
namespace {

void bisect(const std::vector<Vec3>& pos, std::vector<std::uint32_t>& ids,
            std::size_t begin, std::size_t end, std::size_t target,
            std::vector<std::pair<std::size_t, std::size_t>>& out) {
  const std::size_t count = end - begin;
  if (count <= target) {
    out.emplace_back(begin, end);
    return;
  }
  // Widest dimension of the current point set's bounding box.
  Vec3 lo = pos[ids[begin]], hi = pos[ids[begin]];
  for (std::size_t k = begin + 1; k < end; ++k)
    for (int d = 0; d < 3; ++d) {
      lo[d] = std::min(lo[d], pos[ids[k]][d]);
      hi[d] = std::max(hi[d], pos[ids[k]][d]);
    }
  int dim = 0;
  double best = hi[0] - lo[0];
  for (int d = 1; d < 3; ++d)
    if (hi[d] - lo[d] > best) {
      best = hi[d] - lo[d];
      dim = d;
    }
  // Median split keeps both halves balanced regardless of clustering.
  const std::size_t mid = begin + count / 2;
  std::nth_element(ids.begin() + static_cast<std::ptrdiff_t>(begin),
                   ids.begin() + static_cast<std::ptrdiff_t>(mid),
                   ids.begin() + static_cast<std::ptrdiff_t>(end),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return pos[a][dim] < pos[b][dim];
                   });
  bisect(pos, ids, begin, mid, target, out);
  bisect(pos, ids, mid, end, target, out);
}

std::vector<Batch> batches_from_cloud(const std::vector<Vec3>& positions,
                                      const std::vector<std::uint32_t>& parent_atom,
                                      std::size_t target_points) {
  AEQP_CHECK(target_points >= 1, "make_batches: target must be >= 1");
  AEQP_CHECK(positions.size() == parent_atom.size(),
             "make_batches: positions/parents size mismatch");
  std::vector<std::uint32_t> ids(positions.size());
  std::iota(ids.begin(), ids.end(), 0u);

  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  if (!ids.empty()) bisect(positions, ids, 0, ids.size(), target_points, ranges);

  std::vector<Batch> batches;
  batches.reserve(ranges.size());
  for (const auto& [begin, end] : ranges) {
    Batch b;
    b.points.assign(ids.begin() + static_cast<std::ptrdiff_t>(begin),
                    ids.begin() + static_cast<std::ptrdiff_t>(end));
    Vec3 c{};
    for (auto id : b.points) {
      c += positions[id];
      b.atoms.push_back(parent_atom[id]);
    }
    b.centroid = c / static_cast<double>(b.points.size());
    std::sort(b.atoms.begin(), b.atoms.end());
    b.atoms.erase(std::unique(b.atoms.begin(), b.atoms.end()), b.atoms.end());
    batches.push_back(std::move(b));
  }
  return batches;
}

}  // namespace

std::vector<Batch> make_batches(const MolecularGrid& grid, std::size_t target_points) {
  std::vector<Vec3> pos(grid.size());
  std::vector<std::uint32_t> parent(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    pos[i] = grid.point(i).pos;
    parent[i] = grid.point(i).atom;
  }
  return batches_from_cloud(pos, parent, target_points);
}

std::vector<Batch> make_batches(const std::vector<Vec3>& positions,
                                const std::vector<std::uint32_t>& parent_atom,
                                std::size_t target_points) {
  return batches_from_cloud(positions, parent_atom, target_points);
}

}  // namespace aeqp::grid
