#pragma once

/// \file quadrature.hpp
/// One-dimensional Gauss-Legendre quadrature, used to build product angular
/// grids and for reference integrals in tests.

#include <cstddef>
#include <vector>

namespace aeqp::grid {

/// Nodes and weights of an n-point rule on [-1, 1], exact for polynomials
/// of degree <= 2n-1.
struct GaussLegendreRule {
  std::vector<double> nodes;
  std::vector<double> weights;
};

/// Compute the n-point Gauss-Legendre rule by Newton iteration on P_n.
GaussLegendreRule gauss_legendre(std::size_t n);

/// Evaluate Legendre polynomial P_n(x) by upward recurrence.
double legendre_p(std::size_t n, double x);

}  // namespace aeqp::grid
