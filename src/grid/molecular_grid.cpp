#include "grid/molecular_grid.hpp"

#include <cmath>

#include "common/error.hpp"

namespace aeqp::grid {

std::size_t angular_degree_for_shell(std::size_t i, std::size_t n,
                                     std::size_t outer_degree) {
  const double frac = static_cast<double>(i) / static_cast<double>(n);
  if (frac < 0.25) return std::min<std::size_t>(3, outer_degree);
  if (frac < 0.45) return std::min<std::size_t>(5, outer_degree);
  if (frac < 0.65) return std::min<std::size_t>(7, outer_degree);
  return outer_degree;
}

MolecularGrid MolecularGrid::build(const Structure& structure, const GridSpec& spec) {
  AEQP_CHECK(structure.size() > 0, "MolecularGrid: empty structure");
  MolecularGrid grid;
  grid.spec_ = spec;

  const RadialGrid radial(spec.radial_points, spec.r_min, spec.r_max);

  // Pre-build the angular rules the ramp can request.
  std::vector<AngularGrid> rules;
  std::vector<std::size_t> rule_of_shell(spec.radial_points);
  {
    std::vector<std::size_t> degrees;
    for (std::size_t i = 0; i < spec.radial_points; ++i) {
      const std::size_t deg =
          angular_degree_for_shell(i, spec.radial_points, spec.angular_degree);
      std::size_t idx = degrees.size();
      for (std::size_t k = 0; k < degrees.size(); ++k)
        if (degrees[k] == deg) idx = k;
      if (idx == degrees.size()) {
        degrees.push_back(deg);
        rules.push_back(AngularGrid::for_degree(deg));
      }
      rule_of_shell[i] = idx;
    }
  }

  const BeckePartition* partition = nullptr;
  Structure trivial;
  trivial.add_atom(1, {0.0, 0.0, 0.0});
  const BeckePartition becke_storage(spec.becke_weights ? structure : trivial);
  if (spec.becke_weights) partition = &becke_storage;

  for (std::size_t a = 0; a < structure.size(); ++a) {
    const Vec3 center = structure.atom(a).pos;
    for (std::size_t i = 0; i < spec.radial_points; ++i) {
      const AngularGrid& ang = rules[rule_of_shell[i]];
      const double r = radial.r(i);
      const double wr = radial.volume_weight(i);
      for (std::size_t k = 0; k < ang.size(); ++k) {
        GridPoint p;
        p.pos = center + r * ang.direction(k);
        p.atom = static_cast<std::uint32_t>(a);
        double w = wr * ang.weight(k);
        if (partition) w *= partition->weight(a, p.pos);
        if (w < spec.weight_cutoff) continue;
        p.weight = w;
        grid.points_.push_back(p);
      }
    }
  }
  return grid;
}

double MolecularGrid::integrate(const std::vector<double>& samples) const {
  AEQP_CHECK(samples.size() == points_.size(), "integrate: sample count mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) s += points_[i].weight * samples[i];
  return s;
}

}  // namespace aeqp::grid
