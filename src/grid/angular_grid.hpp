#pragma once

/// \file angular_grid.hpp
/// Unit-sphere quadrature rules for the atom-centered grids (paper Sec. 3.1,
/// refs [21, 22]).
///
/// Two families are provided:
///  - Lebedev rules of octahedral symmetry for orders 3/5/7 (6/14/26 points)
///    with exact rational weights; these are the small rules FHI-aims uses
///    close to the nucleus.
///  - Gauss-Legendre (in cos(theta)) x trapezoid (in phi) product rules of
///    arbitrary degree, substituting for the large Lebedev orders whose
///    tabulated coefficients are not redistributable here; they integrate
///    spherical harmonics exactly up to the requested degree, which is the
///    property the integrals rely on (documented in DESIGN.md).
///
/// Weights sum to 4*pi, so  \int_S2 f dOmega ~= sum_k w_k f(s_k).

#include <cstddef>
#include <vector>

#include "common/vec3.hpp"

namespace aeqp::grid {

/// Quadrature rule on the unit sphere.
class AngularGrid {
public:
  /// Lebedev rule with the given point count; supported: 6, 14, 26.
  static AngularGrid lebedev(std::size_t points);

  /// Product rule exact for spherical harmonics of degree <= degree.
  static AngularGrid product(std::size_t degree);

  /// Smallest available rule exact to at least the requested degree,
  /// preferring Lebedev when one qualifies.
  static AngularGrid for_degree(std::size_t degree);

  [[nodiscard]] std::size_t size() const { return dirs_.size(); }
  [[nodiscard]] const Vec3& direction(std::size_t k) const { return dirs_[k]; }
  [[nodiscard]] double weight(std::size_t k) const { return w_[k]; }
  [[nodiscard]] const std::vector<Vec3>& directions() const { return dirs_; }
  [[nodiscard]] const std::vector<double>& weights() const { return w_; }

  /// Polynomial exactness degree of this rule.
  [[nodiscard]] std::size_t degree() const { return degree_; }

private:
  AngularGrid() = default;
  std::vector<Vec3> dirs_;
  std::vector<double> w_;
  std::size_t degree_ = 0;
};

}  // namespace aeqp::grid
