#include "grid/structure.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace aeqp::grid {

int Structure::total_charge() const {
  int q = 0;
  for (const auto& a : atoms_) q += a.z;
  return q;
}

double Structure::nuclear_repulsion() const {
  double e = 0.0;
  for (std::size_t i = 0; i < atoms_.size(); ++i)
    for (std::size_t j = i + 1; j < atoms_.size(); ++j) {
      const double d = distance(atoms_[i].pos, atoms_[j].pos);
      AEQP_CHECK(d > 1e-8, "Structure: coincident nuclei");
      e += static_cast<double>(atoms_[i].z) * atoms_[j].z / d;
    }
  return e;
}

std::vector<std::size_t> Structure::neighbors_of(std::size_t i, double cutoff) const {
  AEQP_CHECK(i < atoms_.size(), "neighbors_of: atom index out of range");
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < atoms_.size(); ++j) {
    if (j == i) continue;
    if (distance(atoms_[i].pos, atoms_[j].pos) <= cutoff) out.push_back(j);
  }
  return out;
}

void Structure::bounding_box(Vec3& lo, Vec3& hi) const {
  constexpr double inf = std::numeric_limits<double>::infinity();
  lo = {inf, inf, inf};
  hi = {-inf, -inf, -inf};
  for (const auto& a : atoms_)
    for (int d = 0; d < 3; ++d) {
      lo[d] = std::min(lo[d], a.pos[d]);
      hi[d] = std::max(hi[d], a.pos[d]);
    }
}

Vec3 Structure::centroid() const {
  Vec3 c{};
  if (atoms_.empty()) return c;
  for (const auto& a : atoms_) c += a.pos;
  return c / static_cast<double>(atoms_.size());
}

std::string element_symbol(int z) {
  switch (z) {
    case 1: return "H";
    case 6: return "C";
    case 7: return "N";
    case 8: return "O";
    case 15: return "P";
    case 16: return "S";
    default: return "Z" + std::to_string(z);
  }
}

}  // namespace aeqp::grid
