#pragma once

/// \file radial_grid.hpp
/// Logarithmic radial meshes for all-electron atom-centered integration and
/// for tabulating numeric atomic orbitals.
///
/// All-electron densities have nuclear cusps, so the mesh must be dense near
/// r = 0 and sparse far out: r_i = r_min * exp(i*h). The same mesh carries
/// the radial quadrature weights (including the r^2 Jacobian) and is where
/// the Adams-Moulton radial Poisson integration (src/poisson) runs.

#include <cstddef>
#include <functional>
#include <vector>

namespace aeqp::grid {

/// Logarithmic radial mesh r_i = r_min * exp(i * h), i = 0 .. n-1.
class RadialGrid {
public:
  /// Build a mesh with n points spanning [r_min, r_max].
  RadialGrid(std::size_t n, double r_min, double r_max);

  [[nodiscard]] std::size_t size() const { return r_.size(); }
  [[nodiscard]] double r(std::size_t i) const { return r_[i]; }
  [[nodiscard]] const std::vector<double>& points() const { return r_; }
  [[nodiscard]] double r_min() const { return r_.front(); }
  [[nodiscard]] double r_max() const { return r_.back(); }
  [[nodiscard]] double log_step() const { return h_; }

  /// Quadrature weight for \int f(r) r^2 dr  (volume integrals of spherical
  /// shells): w_i = r_i^3 * h with trapezoid end corrections.
  [[nodiscard]] double volume_weight(std::size_t i) const { return w_vol_[i]; }

  /// Quadrature weight for \int f(r) dr (plain line integrals).
  [[nodiscard]] double line_weight(std::size_t i) const { return w_line_[i]; }

  /// \int f(r) r^2 dr over the mesh span.
  [[nodiscard]] double integrate_volume(const std::vector<double>& f) const;

  /// \int f(r) dr over the mesh span.
  [[nodiscard]] double integrate_line(const std::vector<double>& f) const;

  /// Tabulate a callable on the mesh.
  [[nodiscard]] std::vector<double> tabulate(
      const std::function<double(double)>& f) const;

  /// Index of the largest mesh point <= r (clamped to [0, n-2]); the
  /// fractional offset within the log step is returned through t.
  [[nodiscard]] std::size_t locate(double r, double& t) const;

private:
  std::vector<double> r_;
  std::vector<double> w_vol_;
  std::vector<double> w_line_;
  double h_ = 0.0;
};

}  // namespace aeqp::grid
