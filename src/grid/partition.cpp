#include "grid/partition.hpp"

#include <cmath>

#include "common/error.hpp"

namespace aeqp::grid {
namespace {

/// Becke's smoothing polynomial f(mu) = 1.5 mu - 0.5 mu^3 iterated 3 times.
double becke_s(double mu) {
  double f = mu;
  for (int k = 0; k < 3; ++k) f = 1.5 * f - 0.5 * f * f * f;
  return 0.5 * (1.0 - f);
}

}  // namespace

BeckePartition::BeckePartition(const Structure& structure) {
  const std::size_t n = structure.size();
  positions_.reserve(n);
  for (const auto& a : structure.atoms()) positions_.push_back(a.pos);
  inv_pair_dist_.assign(n * n, 0.0);
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      const double d = distance(positions_[a], positions_[b]);
      AEQP_CHECK(d > 1e-8, "BeckePartition: coincident nuclei");
      inv_pair_dist_[a * n + b] = 1.0 / d;
    }
}

double BeckePartition::cell(std::size_t a, const Vec3& /*point*/,
                            const std::vector<double>& dist) const {
  const std::size_t n = positions_.size();
  double p = 1.0;
  for (std::size_t b = 0; b < n; ++b) {
    if (b == a) continue;
    const double mu = (dist[a] - dist[b]) * inv_pair_dist_[a * n + b];
    p *= becke_s(mu);
    if (p == 0.0) break;
  }
  return p;
}

double BeckePartition::weight(std::size_t center, const Vec3& point) const {
  const std::size_t n = positions_.size();
  AEQP_CHECK(center < n, "BeckePartition: atom index out of range");
  if (n == 1) return 1.0;

  std::vector<double> dist(n);
  for (std::size_t a = 0; a < n; ++a) dist[a] = distance(positions_[a], point);

  const double pc = cell(center, point, dist);
  if (pc == 0.0) return 0.0;
  double total = 0.0;
  for (std::size_t a = 0; a < n; ++a) total += cell(a, point, dist);
  return pc / total;
}

}  // namespace aeqp::grid
