#include "grid/quadrature.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace aeqp::grid {

double legendre_p(std::size_t n, double x) {
  if (n == 0) return 1.0;
  double pm1 = 1.0, p = x;
  for (std::size_t k = 2; k <= n; ++k) {
    const double pk = ((2.0 * k - 1.0) * x * p - (k - 1.0) * pm1) / k;
    pm1 = p;
    p = pk;
  }
  return p;
}

GaussLegendreRule gauss_legendre(std::size_t n) {
  AEQP_CHECK(n >= 1, "gauss_legendre needs n >= 1");
  GaussLegendreRule rule;
  rule.nodes.resize(n);
  rule.weights.resize(n);
  const std::size_t m = (n + 1) / 2;  // roots come in +/- pairs
  for (std::size_t i = 0; i < m; ++i) {
    // Chebyshev-based initial guess for the i-th root.
    double x = std::cos(constants::pi * (static_cast<double>(i) + 0.75) /
                        (static_cast<double>(n) + 0.5));
    double dp = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      // Evaluate P_n and its derivative together.
      double pm1 = 1.0, p = x;
      for (std::size_t k = 2; k <= n; ++k) {
        const double pk = ((2.0 * k - 1.0) * x * p - (k - 1.0) * pm1) / k;
        pm1 = p;
        p = pk;
      }
      dp = static_cast<double>(n) * (x * p - pm1) / (x * x - 1.0);
      const double dx = p / dp;
      x -= dx;
      if (std::fabs(dx) < 1e-15) break;
    }
    const double w = 2.0 / ((1.0 - x * x) * dp * dp);
    rule.nodes[i] = -x;
    rule.nodes[n - 1 - i] = x;
    rule.weights[i] = w;
    rule.weights[n - 1 - i] = w;
  }
  if (n % 2 == 1) rule.nodes[n / 2] = 0.0;  // exact central root
  return rule;
}

}  // namespace aeqp::grid
