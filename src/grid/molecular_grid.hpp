#pragma once

/// \file molecular_grid.hpp
/// Assembly of the discretized 3-D integration grid of paper Fig. 2:
/// non-uniform radial-spherical shells centered on every nucleus, weighted
/// by the Becke partition of unity, then flattened into one array of grid
/// points ready to be cut into batches.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/vec3.hpp"
#include "grid/angular_grid.hpp"
#include "grid/partition.hpp"
#include "grid/radial_grid.hpp"
#include "grid/structure.hpp"

namespace aeqp::grid {

/// One integration point. `atom` is the atom whose shells generated it
/// (the "grid points of atom X" coloring in the paper's Fig. 2).
struct GridPoint {
  Vec3 pos{};
  double weight = 0.0;  ///< radial x angular x Becke weight
  std::uint32_t atom = 0;
};

/// Knobs for grid construction. Defaults correspond to the "light" settings
/// the paper's evaluation uses.
struct GridSpec {
  std::size_t radial_points = 36;     ///< log-mesh points per atom
  double r_min = 1e-4;                ///< innermost shell radius (bohr)
  double r_max = 10.0;                ///< outermost shell radius (bohr)
  std::size_t angular_degree = 9;     ///< outer-region angular exactness
  bool becke_weights = true;          ///< false: positions only (mapping studies)
  double weight_cutoff = 1e-12;       ///< drop points with tinier weights
};

/// The flattened molecular integration grid.
class MolecularGrid {
public:
  static MolecularGrid build(const Structure& structure, const GridSpec& spec);

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] const GridPoint& point(std::size_t i) const { return points_[i]; }
  [[nodiscard]] const std::vector<GridPoint>& points() const { return points_; }
  [[nodiscard]] const GridSpec& spec() const { return spec_; }

  /// \int f dV as sum of w_i * f_i over samples aligned with points().
  [[nodiscard]] double integrate(const std::vector<double>& samples) const;

private:
  std::vector<GridPoint> points_;
  GridSpec spec_;
};

/// Angular exactness used for the shell at radial index i of n: small rules
/// near the nucleus, the full requested degree outside (FHI-aims-style ramp).
std::size_t angular_degree_for_shell(std::size_t i, std::size_t n,
                                     std::size_t outer_degree);

}  // namespace aeqp::grid
