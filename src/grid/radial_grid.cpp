#include "grid/radial_grid.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace aeqp::grid {

RadialGrid::RadialGrid(std::size_t n, double r_min, double r_max) {
  AEQP_CHECK(n >= 4, "RadialGrid needs at least 4 points");
  AEQP_CHECK(r_min > 0.0 && r_max > r_min, "RadialGrid needs 0 < r_min < r_max");
  h_ = std::log(r_max / r_min) / static_cast<double>(n - 1);
  r_.resize(n);
  w_vol_.resize(n);
  w_line_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    r_[i] = r_min * std::exp(static_cast<double>(i) * h_);
    // dr = r * h * di; trapezoid endpoints carry half weight.
    const double trap = (i == 0 || i == n - 1) ? 0.5 : 1.0;
    w_line_[i] = r_[i] * h_ * trap;
    w_vol_[i] = r_[i] * r_[i] * w_line_[i];
  }
}

double RadialGrid::integrate_volume(const std::vector<double>& f) const {
  AEQP_CHECK(f.size() == r_.size(), "integrate_volume: sample count mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) s += w_vol_[i] * f[i];
  return s;
}

double RadialGrid::integrate_line(const std::vector<double>& f) const {
  AEQP_CHECK(f.size() == r_.size(), "integrate_line: sample count mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) s += w_line_[i] * f[i];
  return s;
}

std::vector<double> RadialGrid::tabulate(
    const std::function<double(double)>& f) const {
  std::vector<double> out(r_.size());
  for (std::size_t i = 0; i < r_.size(); ++i) out[i] = f(r_[i]);
  return out;
}

std::size_t RadialGrid::locate(double r, double& t) const {
  const double u = std::log(std::max(r, r_.front()) / r_.front()) / h_;
  const auto n = static_cast<double>(r_.size());
  const double clamped = std::clamp(u, 0.0, n - 2.0 + 0.999999);
  const auto i = static_cast<std::size_t>(clamped);
  t = clamped - static_cast<double>(i);
  return i;
}

}  // namespace aeqp::grid
