#pragma once

/// \file structure.hpp
/// Atomic structure description shared by the grid generator, the basis-set
/// builder, the task-mapping experiments and the synthetic biomolecule
/// generators.

#include <cstddef>
#include <string>
#include <vector>

#include "common/vec3.hpp"

namespace aeqp::grid {

/// One nucleus: atomic number and Cartesian position in bohr.
struct Atom {
  int z = 1;
  Vec3 pos{};
};

/// A molecule / cluster. Positions are in bohr.
class Structure {
public:
  Structure() = default;
  explicit Structure(std::vector<Atom> atoms) : atoms_(std::move(atoms)) {}

  void add_atom(int z, const Vec3& pos) { atoms_.push_back({z, pos}); }

  [[nodiscard]] std::size_t size() const { return atoms_.size(); }
  [[nodiscard]] const Atom& atom(std::size_t i) const { return atoms_[i]; }
  [[nodiscard]] const std::vector<Atom>& atoms() const { return atoms_; }

  /// Total nuclear charge == electron count for a neutral system.
  [[nodiscard]] int total_charge() const;

  /// Nucleus-nucleus repulsion energy, E_nuc-nuc of paper Eq. (1).
  [[nodiscard]] double nuclear_repulsion() const;

  /// Indices of atoms within cutoff of atom i (excluding i itself).
  [[nodiscard]] std::vector<std::size_t> neighbors_of(std::size_t i,
                                                      double cutoff) const;

  /// Axis-aligned bounding box corners.
  void bounding_box(Vec3& lo, Vec3& hi) const;

  /// Geometric center.
  [[nodiscard]] Vec3 centroid() const;

private:
  std::vector<Atom> atoms_;
};

/// Element symbol for the handful of species AEQP parameterizes.
std::string element_symbol(int z);

}  // namespace aeqp::grid
