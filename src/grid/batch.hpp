#pragma once

/// \file batch.hpp
/// Batches of grid points (paper Fig. 2): disjoint, spatially compact groups
/// formed with the grid-adapted cut-plane method of Havu et al. [23]. These
/// batches are the unit of work the task-mapping strategies (src/mapping)
/// distribute over MPI processes and the unit an OpenCL work-group handles
/// in the kernels.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/vec3.hpp"
#include "grid/molecular_grid.hpp"

namespace aeqp::grid {

/// A batch of grid points. `points` index into the owning MolecularGrid.
struct Batch {
  std::vector<std::uint32_t> points;
  Vec3 centroid{};                     ///< average position of member points
  std::vector<std::uint32_t> atoms;   ///< sorted unique parent atoms touched

  [[nodiscard]] std::size_t size() const { return points.size(); }
};

/// Cut the grid into batches of at most `target_points` points each by
/// recursively bisecting along the widest spatial dimension at the point
/// median, producing the variable-size compact batches of the paper
/// (typically 100-300 points).
std::vector<Batch> make_batches(const MolecularGrid& grid,
                                std::size_t target_points);

/// Same cut-plane batching over a bare point cloud (used by the synthetic
/// large-scale mapping experiments where building full weights would be
/// wasteful). parent_atom[i] labels each point.
std::vector<Batch> make_batches(const std::vector<Vec3>& positions,
                                const std::vector<std::uint32_t>& parent_atom,
                                std::size_t target_points);

}  // namespace aeqp::grid
