#pragma once

/// \file partition.hpp
/// Becke space partitioning: every integration point carries a partition
/// weight per atom so that overlapping atom-centered grids add up to a
/// single well-defined molecular integral (the "partitioned" quantities of
/// the paper, e.g. the partitioned Hartree potential).

#include <cstddef>
#include <vector>

#include "common/vec3.hpp"
#include "grid/structure.hpp"

namespace aeqp::grid {

/// Becke fuzzy-cell partition of unity (A. D. Becke, JCP 88, 2547 (1988))
/// with the standard k = 3 iterated smoothing polynomial.
class BeckePartition {
public:
  explicit BeckePartition(const Structure& structure);

  /// Relative weight of atom `center` at `point`; weights over all atoms sum
  /// to one at every point in space.
  [[nodiscard]] double weight(std::size_t center, const Vec3& point) const;

  /// Number of atoms the partition was built for.
  [[nodiscard]] std::size_t size() const { return positions_.size(); }

private:
  /// Cell function P_A(point) before normalization.
  [[nodiscard]] double cell(std::size_t a, const Vec3& point,
                            const std::vector<double>& dist) const;

  std::vector<Vec3> positions_;
  std::vector<double> inv_pair_dist_;  // 1 / |R_a - R_b|, row-major
};

}  // namespace aeqp::grid
