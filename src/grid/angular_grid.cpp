#include "grid/angular_grid.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "grid/quadrature.hpp"

namespace aeqp::grid {
namespace {

constexpr double k4pi = constants::four_pi;

/// Octahedral point class a1: the 6 axis points (+-1, 0, 0) & perms.
void add_a1(std::vector<Vec3>& d, std::vector<double>& w, double weight) {
  for (int axis = 0; axis < 3; ++axis)
    for (int sgn : {+1, -1}) {
      Vec3 v{0, 0, 0};
      v[axis] = sgn;
      d.push_back(v);
      w.push_back(weight * k4pi);
    }
}

/// Octahedral point class a2: the 12 edge midpoints (+-1/sqrt2, +-1/sqrt2, 0).
void add_a2(std::vector<Vec3>& d, std::vector<double>& w, double weight) {
  const double s = 1.0 / std::sqrt(2.0);
  for (int i = 0; i < 3; ++i) {
    const int j = (i + 1) % 3;
    for (int si : {+1, -1})
      for (int sj : {+1, -1}) {
        Vec3 v{0, 0, 0};
        v[i] = si * s;
        v[j] = sj * s;
        d.push_back(v);
        w.push_back(weight * k4pi);
      }
  }
}

/// Octahedral point class a3: the 8 cube corners (+-1, +-1, +-1)/sqrt3.
void add_a3(std::vector<Vec3>& d, std::vector<double>& w, double weight) {
  const double s = 1.0 / std::sqrt(3.0);
  for (int sx : {+1, -1})
    for (int sy : {+1, -1})
      for (int sz : {+1, -1}) {
        d.push_back({sx * s, sy * s, sz * s});
        w.push_back(weight * k4pi);
      }
}

}  // namespace

AngularGrid AngularGrid::lebedev(std::size_t points) {
  AngularGrid g;
  switch (points) {
    case 6:  // order 3
      add_a1(g.dirs_, g.w_, 1.0 / 6.0);
      g.degree_ = 3;
      break;
    case 14:  // order 5
      add_a1(g.dirs_, g.w_, 1.0 / 15.0);
      add_a3(g.dirs_, g.w_, 3.0 / 40.0);
      g.degree_ = 5;
      break;
    case 26:  // order 7
      add_a1(g.dirs_, g.w_, 1.0 / 21.0);
      add_a2(g.dirs_, g.w_, 4.0 / 105.0);
      add_a3(g.dirs_, g.w_, 27.0 / 840.0);
      g.degree_ = 7;
      break;
    default:
      AEQP_THROW("AngularGrid::lebedev: supported point counts are 6, 14, 26");
  }
  AEQP_ASSERT(g.dirs_.size() == points);
  return g;
}

AngularGrid AngularGrid::product(std::size_t degree) {
  // Gauss-Legendre in cos(theta) integrates degree <= 2*n_theta - 1;
  // the uniform phi rule integrates trig polynomials of degree < n_phi.
  const std::size_t n_theta = degree / 2 + 1;
  const std::size_t n_phi = degree + 1;
  const GaussLegendreRule gl = gauss_legendre(n_theta);

  AngularGrid g;
  g.degree_ = degree;
  g.dirs_.reserve(n_theta * n_phi);
  g.w_.reserve(n_theta * n_phi);
  for (std::size_t it = 0; it < n_theta; ++it) {
    const double ct = gl.nodes[it];
    const double st = std::sqrt(std::max(0.0, 1.0 - ct * ct));
    const double wt = gl.weights[it] * (2.0 * constants::pi / n_phi);
    for (std::size_t ip = 0; ip < n_phi; ++ip) {
      const double phi = 2.0 * constants::pi * (static_cast<double>(ip) + 0.5) /
                         static_cast<double>(n_phi);
      g.dirs_.push_back({st * std::cos(phi), st * std::sin(phi), ct});
      g.w_.push_back(wt);
    }
  }
  return g;
}

AngularGrid AngularGrid::for_degree(std::size_t degree) {
  if (degree <= 3) return lebedev(6);
  if (degree <= 5) return lebedev(14);
  if (degree <= 7) return lebedev(26);
  return product(degree);
}

}  // namespace aeqp::grid
