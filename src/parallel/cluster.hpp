#pragma once

/// \file cluster.hpp
/// simmpi: a simulated MPI runtime. Ranks are host threads; collectives are
/// executed for real (blocking semantics, actual data movement through
/// shared buffers), so every communication algorithm in src/comm can be
/// verified bit-for-bit at small scale. Node topology (ranks_per_node) maps
/// ranks onto "shared-memory nodes", exposing the MPI SHM-style windows the
/// paper's hierarchical scheme relies on (Sec. 3.2.2, ref [24]).
///
/// Fault tolerance: every collective carries a deadline. When a rank dies
/// (its rank function throws, or a planned Kill fault fires) the surviving
/// ranks are woken from their barriers and raise a structured RankFailure
/// instead of blocking forever; when a rank merely stalls past the deadline
/// the waiters raise CollectiveTimeout. A FaultInjector (see fault.hpp) can
/// be attached to corrupt payloads, stall ranks, or kill them at chosen
/// collectives, deterministically.
///
/// Elastic recovery (ULFM-style shrink): Cluster::shrink derives a smaller
/// cluster that excludes permanently failed ranks. Survivors are renumbered
/// densely, the collective timeout and the fault injector carry over, and
/// every rank keeps its *original* (pre-shrink chain) id, which fault plans
/// keep addressing -- so a permanent Kill planned for a dead rank can never
/// strike a renumbered survivor.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace aeqp::parallel {

class Cluster;
class FaultInjector;
class StragglerDetector;
class DeadlineEstimator;
enum class CollectiveClass : int;

/// Structured error raised on every surviving rank when a peer rank died
/// mid-collective (and on the dying rank itself when a Kill fault fires).
class RankFailure : public Error {
public:
  RankFailure(std::size_t failed_rank, std::size_t observer_rank,
              const std::string& what)
      : Error(what), failed_rank_(failed_rank), observer_rank_(observer_rank) {}
  /// Rank that died.
  [[nodiscard]] std::size_t failed_rank() const { return failed_rank_; }
  /// Rank on which this exception was raised.
  [[nodiscard]] std::size_t observer_rank() const { return observer_rank_; }

private:
  std::size_t failed_rank_;
  std::size_t observer_rank_;
};

/// Raised when a collective exceeds the cluster deadline (a rank stalled or
/// the collective schedule diverged) instead of deadlocking.
class CollectiveTimeout : public Error {
public:
  CollectiveTimeout(std::size_t observer_rank, const std::string& what)
      : Error(what), observer_rank_(observer_rank) {}
  [[nodiscard]] std::size_t observer_rank() const { return observer_rank_; }

private:
  std::size_t observer_rank_;
};

/// Raised by a payload-verified collective (Cluster::set_verify_payloads)
/// when a rank's in-transit contribution no longer matches the CRC-32 tag
/// computed when the rank entered the collective -- silent corruption
/// caught *at the reduction* instead of by eventual divergence. Names the
/// collective and the rank (both running and original-world ids) whose
/// payload was damaged.
class PayloadCorruption : public Error {
public:
  PayloadCorruption(std::size_t rank, std::size_t original_rank,
                    std::string collective, const std::string& what)
      : Error(what),
        rank_(rank),
        original_rank_(original_rank),
        collective_(std::move(collective)) {}
  /// Rank whose payload failed verification (running-world id).
  [[nodiscard]] std::size_t rank() const { return rank_; }
  /// The same rank's id in the original (pre-shrink) world.
  [[nodiscard]] std::size_t original_rank() const { return original_rank_; }
  /// Collective in which the corruption was caught, e.g. "allreduce_sum".
  [[nodiscard]] const std::string& collective() const { return collective_; }

private:
  std::size_t rank_;
  std::size_t original_rank_;
  std::string collective_;
};

/// Per-rank handle passed to the rank function; provides the collective
/// operations of the simulated MPI world.
class Communicator {
public:
  [[nodiscard]] std::size_t rank() const { return rank_; }
  /// Id of this rank in the original world before any shrink (equal to
  /// rank() on a never-shrunk cluster).
  [[nodiscard]] std::size_t original_rank() const;
  /// Original-world id of world rank `r`.
  [[nodiscard]] std::size_t original_rank_of(std::size_t r) const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t node() const;       ///< node index of this rank
  [[nodiscard]] std::size_t node_rank() const;  ///< rank within the node
  [[nodiscard]] std::size_t node_size() const;  ///< ranks on this node
  [[nodiscard]] std::size_t node_count() const;

  /// Number of collectives this rank has entered so far -- the sequence
  /// axis fault plans are addressed against.
  [[nodiscard]] std::size_t collective_index() const { return seq_; }

  /// Global barrier across all ranks.
  void barrier();

  /// Barrier across the ranks of this node only.
  void node_barrier();

  /// In-place sum-AllReduce over all ranks; every rank must pass the same
  /// element count (mismatches raise aeqp::Error naming both ranks).
  void allreduce_sum(std::span<double> data);

  /// In-place elementwise max-AllReduce (used for global convergence
  /// criteria like max |delta n| across ranks).
  void allreduce_max(std::span<double> data);

  /// In-place sum-AllReduce across node leaders (node_rank 0); other ranks
  /// wait at the enclosing barrier. `data` is ignored for non-leaders.
  void allreduce_sum_leaders(std::span<double> data);

  /// Broadcast from `root` to all ranks.
  void broadcast(std::span<double> data, std::size_t root);

  /// Node-shared buffer of `size` doubles (zero-initialized); all ranks of
  /// a node receive the same span. Collective over the node.
  std::span<double> node_window(std::size_t size);

  /// Serialize a critical section among the ranks of this node.
  void node_critical(const std::function<void()>& fn);

private:
  friend class Cluster;
  Communicator(Cluster& cluster, std::size_t rank)
      : cluster_(&cluster), rank_(rank) {}

  /// Common prologue of every collective: aborts immediately when the
  /// cluster already failed, then gives the fault injector (if any) a shot
  /// at this rank's payload. `payload` is this rank's in-transit
  /// contribution (empty for payload-less collectives and for ranks whose
  /// data the operation ignores). Returns the entry timestamp when timing
  /// is armed (straggler detector, adaptive deadlines, or an injector),
  /// a default-constructed time point otherwise -- the disabled path takes
  /// zero clock reads.
  std::chrono::steady_clock::time_point enter_collective(
      const char* what, std::span<double> payload);

  /// Common epilogue: stamps the work clock (the straggler ledger measures
  /// compute as time between a collective's completion and the next one's
  /// entry) and feeds the adaptive-deadline estimator with this rank's
  /// entry-to-completion duration. Only *completed* collectives record --
  /// a timed-out one throws before reaching here, so the learned deadline
  /// never chases a slowdown upward.
  void leave_collective(CollectiveClass c,
                        std::chrono::steady_clock::time_point t_enter);

  Cluster* cluster_;
  std::size_t rank_;
  std::size_t seq_ = 0;
  std::chrono::steady_clock::time_point last_leave_{};
  /// This rank thread's consumed CPU time at the last collective's
  /// completion. The Slowdown fault scales the CPU time the rank itself
  /// burned -- not the wall span, which on an oversubscribed host also
  /// contains co-scheduled peers' compute and would over-punish the victim.
  double last_leave_cpu_ms_ = 0.0;
  bool last_leave_valid_ = false;
};

/// Simulated cluster: spawns one thread per rank and runs the given rank
/// function to completion. Exceptions in rank functions are captured, the
/// remaining ranks are released from their collectives with RankFailure,
/// and run() rethrows the root cause.
class Cluster {
public:
  Cluster(std::size_t n_ranks, std::size_t ranks_per_node);

  /// World whose rank r carries original-world id `origin[r]` (used by
  /// shrink() and by elastic solver re-entry at a reduced world size).
  /// `origin` must be empty (identity) or hold n_ranks unique ids.
  Cluster(std::size_t n_ranks, std::size_t ranks_per_node,
          std::vector<std::size_t> origin);

  [[nodiscard]] std::size_t size() const { return n_ranks_; }
  [[nodiscard]] std::size_t ranks_per_node() const { return ranks_per_node_; }
  [[nodiscard]] std::size_t node_count() const;

  /// Original-world id of world rank r (identity on a never-shrunk world).
  [[nodiscard]] std::size_t original_rank(std::size_t r) const {
    return origin_[r];
  }
  [[nodiscard]] const std::vector<std::size_t>& original_ranks() const {
    return origin_;
  }

  /// ULFM `shrink` analogue: derive a sub-cluster that excludes
  /// `failed_ranks` (ids in THIS cluster's numbering). Survivors are
  /// renumbered densely in rank order; the collective timeout and the
  /// attached fault injector carry over, and the origin map is composed so
  /// fault events keep addressing original-world ids. The straggler
  /// detector carries over with dropped ranks retired (retain), and the
  /// adaptive-deadline armed state carries with a FRESH estimator: latency
  /// structure learned on the old world must not time out the new one.
  /// Throws when no rank survives or a failed id is out of range.
  [[nodiscard]] std::unique_ptr<Cluster> shrink(
      const std::vector<std::size_t>& failed_ranks) const;

  /// Deadline for any single collective. Survivors raise CollectiveTimeout
  /// when it passes without completion. Default: 120 s (generous enough for
  /// legitimate compute imbalance at laptop scale).
  void set_collective_timeout(std::chrono::milliseconds timeout) {
    collective_timeout_ = timeout;
  }
  [[nodiscard]] std::chrono::milliseconds collective_timeout() const {
    return collective_timeout_;
  }

  /// Attach a fault injector consulted at every collective entry. The
  /// injector must outlive the cluster runs it is attached to. On a full
  /// (never-shrunk) world every planned event's rank must be inside the
  /// world -- an out-of-range rank is a plan bug and raises aeqp::Error
  /// here rather than silently never firing. Subworlds (built by shrink()
  /// or constructed with an explicit origin map) skip the check: plans
  /// legitimately address dead original ranks.
  void set_fault_injector(FaultInjector* injector);

  /// Verify collective payloads end-to-end: each rank's contribution is
  /// CRC-32-tagged on collective entry and re-checked immediately before
  /// the reduction consumes it; a mismatch raises PayloadCorruption naming
  /// the collective and the original rank. Off by default (one branch per
  /// collective when off).
  void set_verify_payloads(bool on) { verify_payloads_ = on; }
  [[nodiscard]] bool verify_payloads() const { return verify_payloads_; }

  /// Attach a straggler detector: every collective entry records how much
  /// work (wall time since this rank left its previous collective) the
  /// rank arrived with, keyed by ORIGINAL rank id so classifications
  /// survive shrink renumberings. The detector must outlive the runs; it
  /// must cover every original id this world can produce. nullptr
  /// detaches. Observe-only: the collective schedule and all numerics are
  /// bit-identical with and without a detector.
  void set_straggler_detector(StragglerDetector* detector);
  [[nodiscard]] StragglerDetector* straggler_detector() const {
    return straggler_;
  }

  /// Arm (or disarm) adaptive per-collective-class deadlines. When armed,
  /// each collective's deadline is the DeadlineEstimator's rolling
  /// median + k*MAD estimate for its class, clamped by the estimator's
  /// floor/ceiling and never above collective_timeout() (so a service
  /// deadline clamp still wins). `floor_ms` > 0 overrides the estimator's
  /// default floor (tests and benches trade the spurious-timeout margin
  /// for detection latency explicitly; production keeps the safe default).
  /// Constructors arm automatically when AEQP_ADAPTIVE_TIMEOUT is on.
  void set_adaptive_deadlines(bool on, double floor_ms = 0.0);
  [[nodiscard]] bool adaptive_deadlines() const { return adaptive_; }

  /// The live estimator (created lazily when adaptive deadlines arm);
  /// nullptr while disarmed. Exposed so tests and the recovery driver can
  /// inspect the learned deadlines.
  [[nodiscard]] DeadlineEstimator* deadline_estimator() const {
    return deadline_est_.get();
  }

  /// Deadline a collective of class `c` runs under right now: the fixed
  /// collective_timeout() when adaptive deadlines are off, the estimator's
  /// clamped estimate when on.
  [[nodiscard]] std::chrono::milliseconds effective_timeout(
      CollectiveClass c) const;

  /// Execute fn on every rank concurrently; blocks until all finish.
  /// Rethrows the root-cause exception (the first failure, preferring the
  /// originating error over the secondary RankFailures it triggers).
  void run(const std::function<void(Communicator&)>& fn);

  /// Like run(), but returns the per-rank outcome instead of throwing: one
  /// exception_ptr per rank, null where the rank finished cleanly. Lets the
  /// caller assert that *every* surviving rank observed a structured error.
  std::vector<std::exception_ptr> run_collect(
      const std::function<void(Communicator&)>& fn);

private:
  friend class Communicator;

  /// Condition-variable barrier with a deadline and failure wake-up (a
  /// std::barrier cannot be interrupted, which is exactly the deadlock the
  /// fault model has to avoid).
  struct FtBarrier {
    explicit FtBarrier(std::size_t count) : count(count) {}
    void arrive_and_wait(Cluster& cluster, std::size_t rank,
                         std::chrono::milliseconds timeout);
    void wake();
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t count;
    std::size_t arrived = 0;
    std::uint64_t generation = 0;
  };

  struct NodeState {
    std::unique_ptr<FtBarrier> barrier;
    std::mutex mutex;
    std::vector<double> window;
    std::size_t window_size = 0;
  };

  /// Record the first failure (rank + human-readable cause + originating
  /// exception) and wake every barrier so no rank stays blocked.
  void fail(std::size_t rank, const std::string& what, std::exception_ptr cause,
            bool is_timeout);
  [[nodiscard]] bool failed() const { return failed_.load(std::memory_order_acquire); }
  /// Raise the structured error matching the recorded failure on `observer`.
  [[noreturn]] void throw_failure(std::size_t observer) const;

  std::size_t n_ranks_;
  std::size_t ranks_per_node_;
  std::vector<std::size_t> origin_;  ///< original-world id per rank
  bool subworld_ = false;  ///< built by shrink() or with an explicit origin
  std::chrono::milliseconds collective_timeout_{120000};
  FaultInjector* injector_ = nullptr;
  bool verify_payloads_ = false;
  StragglerDetector* straggler_ = nullptr;
  std::shared_ptr<DeadlineEstimator> deadline_est_;
  bool adaptive_ = false;

  /// Whether any consumer of the collective timing hooks is attached (the
  /// one branch the disabled path pays; no clock is read when false).
  [[nodiscard]] bool timing_armed() const {
    return straggler_ != nullptr || injector_ != nullptr ||
           (adaptive_ && deadline_est_ != nullptr);
  }

  std::unique_ptr<FtBarrier> global_barrier_;
  std::mutex reduce_mutex_;
  std::vector<double> reduce_buffer_;
  std::size_t reduce_arrivals_ = 0;
  std::size_t reduce_first_rank_ = 0;  ///< rank that sized the reduce buffer
  std::vector<double> bcast_buffer_;
  std::vector<NodeState> nodes_;

  // Failure state: set once by the first failing rank, read by everyone.
  std::atomic<bool> failed_{false};
  mutable std::mutex fail_mutex_;
  std::size_t failed_rank_ = 0;
  std::string fail_what_;
  bool fail_is_timeout_ = false;
  std::exception_ptr first_error_;
};

}  // namespace aeqp::parallel
