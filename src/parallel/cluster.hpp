#pragma once

/// \file cluster.hpp
/// simmpi: a simulated MPI runtime. Ranks are host threads; collectives are
/// executed for real (blocking semantics, actual data movement through
/// shared buffers), so every communication algorithm in src/comm can be
/// verified bit-for-bit at small scale. Node topology (ranks_per_node) maps
/// ranks onto "shared-memory nodes", exposing the MPI SHM-style windows the
/// paper's hierarchical scheme relies on (Sec. 3.2.2, ref [24]).

#include <barrier>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace aeqp::parallel {

class Cluster;

/// Per-rank handle passed to the rank function; provides the collective
/// operations of the simulated MPI world.
class Communicator {
public:
  [[nodiscard]] std::size_t rank() const { return rank_; }
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t node() const;       ///< node index of this rank
  [[nodiscard]] std::size_t node_rank() const;  ///< rank within the node
  [[nodiscard]] std::size_t node_size() const;  ///< ranks on this node
  [[nodiscard]] std::size_t node_count() const;

  /// Global barrier across all ranks.
  void barrier();

  /// Barrier across the ranks of this node only.
  void node_barrier();

  /// In-place sum-AllReduce over all ranks; every rank must pass the same
  /// element count.
  void allreduce_sum(std::span<double> data);

  /// In-place elementwise max-AllReduce (used for global convergence
  /// criteria like max |delta n| across ranks).
  void allreduce_max(std::span<double> data);

  /// In-place sum-AllReduce across node leaders (node_rank 0); other ranks
  /// wait at the enclosing barrier. `data` is ignored for non-leaders.
  void allreduce_sum_leaders(std::span<double> data);

  /// Broadcast from `root` to all ranks.
  void broadcast(std::span<double> data, std::size_t root);

  /// Node-shared buffer of `size` doubles (zero-initialized); all ranks of
  /// a node receive the same span. Collective over the node.
  std::span<double> node_window(std::size_t size);

  /// Serialize a critical section among the ranks of this node.
  void node_critical(const std::function<void()>& fn);

private:
  friend class Cluster;
  Communicator(Cluster& cluster, std::size_t rank)
      : cluster_(&cluster), rank_(rank) {}
  Cluster* cluster_;
  std::size_t rank_;
};

/// Simulated cluster: spawns one thread per rank and runs the given rank
/// function to completion. Exceptions in rank functions are captured and
/// rethrown from run().
class Cluster {
public:
  Cluster(std::size_t n_ranks, std::size_t ranks_per_node);

  [[nodiscard]] std::size_t size() const { return n_ranks_; }
  [[nodiscard]] std::size_t ranks_per_node() const { return ranks_per_node_; }
  [[nodiscard]] std::size_t node_count() const;

  /// Execute fn on every rank concurrently; blocks until all finish.
  void run(const std::function<void(Communicator&)>& fn);

private:
  friend class Communicator;

  struct NodeState {
    std::unique_ptr<std::barrier<>> barrier;
    std::mutex mutex;
    std::vector<double> window;
    std::size_t window_size = 0;
  };

  std::size_t n_ranks_;
  std::size_t ranks_per_node_;

  std::unique_ptr<std::barrier<>> global_barrier_;
  std::unique_ptr<std::barrier<>> leader_barrier_;
  std::mutex reduce_mutex_;
  std::vector<double> reduce_buffer_;
  std::size_t reduce_arrivals_ = 0;
  std::vector<double> bcast_buffer_;
  std::vector<NodeState> nodes_;
};

}  // namespace aeqp::parallel
