#pragma once

/// \file straggler.hpp
/// Straggler tolerance for the simulated MPI runtime: slowness as a
/// first-class, observable, recoverable fault (the paper's 200k-atom runs
/// die to performance *variability* before they die to hard faults -- one
/// slow node stalls every bulk-synchronous collective).
///
/// Two cooperating pieces, both observe-only on the solver's numerics:
///
///   - DeadlineEstimator: a rolling robust estimate (median + k*MAD) of
///     how long each collective *class* takes, fed by the runtime at every
///     collective completion. Cluster::effective_timeout() consults it when
///     adaptive deadlines are armed (AEQP_ADAPTIVE_TIMEOUT, or
///     Cluster::set_adaptive_deadlines), replacing the fixed 120 s
///     collective_timeout_ with a deadline a few robust deviations above
///     typical -- so a merely-slow rank is *detected* in seconds instead of
///     dragging the machine for two minutes. Floor/ceiling clamps bound the
///     estimate, and the caller-provided fallback (the fixed timeout, which
///     the service deadline clamp already min's) always wins when smaller.
///     Only *completed* collectives feed the estimator: a timed-out
///     collective never teaches it to wait longer, so the learned deadline
///     cannot chase a slowdown upward.
///
///   - StragglerDetector: a per-rank arrival-lag ledger. The hot path is
///     one relaxed ring store + one relaxed accumulate per collective (the
///     memaudit discipline); classification happens off the hot path, at
///     iteration boundaries: a rank whose accumulated work-window total
///     stays beyond median + k*MAD (and beyond min_relative x median) of
///     its peers for `degrade_after` consecutive windows is classified
///     degraded, with hysteresis back to healthy. The measured speed
///     weights drive mapping::rebalance_for_slow_ranks -- the recovery
///     ladder's rebalance rung that fires *before* shrink.
///
/// Disabled (no detector attached, adaptive off) the runtime takes zero
/// clock reads and the collective schedule is bit-identical to the
/// un-instrumented baseline.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace aeqp::parallel {

namespace detail {
/// -1 = not yet initialized from AEQP_ADAPTIVE_TIMEOUT.
extern std::atomic<int> g_adaptive_timeout;
bool init_adaptive_timeout_from_env();
}  // namespace detail

/// Whether adaptive collective deadlines are armed process-wide. One
/// relaxed atomic load after first use (the memaudit gating discipline).
[[nodiscard]] inline bool adaptive_timeout_enabled() {
  const int m = detail::g_adaptive_timeout.load(std::memory_order_relaxed);
  if (m >= 0) return m != 0;
  return detail::init_adaptive_timeout_from_env();
}

/// Programmatic override (tests, benches). Takes effect for clusters
/// constructed afterwards; existing clusters keep their armed state.
void set_adaptive_timeout(bool on);

/// Collective classes with distinct latency profiles: each learns its own
/// deadline (a barrier completes in microseconds; a packed allreduce of a
/// full response-Hamiltonian window does not).
enum class CollectiveClass : int {
  Barrier = 0,
  NodeBarrier,
  AllreduceSum,
  AllreduceMax,
  AllreduceSumLeaders,
  Broadcast,
};
inline constexpr std::size_t kCollectiveClassCount = 6;

[[nodiscard]] const char* collective_class_name(CollectiveClass c);

/// Rolling per-class robust deadline estimator. All recording paths are
/// lock-free (relaxed ring stores); the median + MAD recomputation runs
/// under a mutex every `recompute_every` records and publishes the result
/// through one cached atomic per class, so deadline() on the hot path is a
/// single relaxed load plus clamping.
class DeadlineEstimator {
public:
  struct Options {
    std::size_t window = 64;       ///< ring capacity per class (and global)
    double mad_k = 8.0;            ///< deadline = median + mad_k * MAD
    std::size_t min_samples = 8;   ///< below this a class defers to global
    double floor_ms = 2000.0;      ///< never time out faster than this
    double ceiling_ms = 600000.0;  ///< never wait longer than this
    std::size_t recompute_every = 8;  ///< records between cache refreshes
  };

  DeadlineEstimator() : DeadlineEstimator(Options()) {}
  explicit DeadlineEstimator(Options options);
  DeadlineEstimator(const DeadlineEstimator&) = delete;
  DeadlineEstimator& operator=(const DeadlineEstimator&) = delete;

  /// Record one completed collective of class `c` that took `ms`
  /// milliseconds from entry to completion on some rank. Thread-safe,
  /// multi-writer (every rank records).
  void record(CollectiveClass c, double ms);

  /// Effective deadline for class `c`: clamp(median + k*MAD, floor,
  /// ceiling), never above `fallback` (the fixed collective timeout --
  /// which a service deadline clamp may already have shrunk, and the
  /// smaller bound must win). With fewer than min_samples class samples the
  /// all-classes estimate is used; with no samples at all, `fallback`.
  [[nodiscard]] std::chrono::milliseconds deadline(
      CollectiveClass c, std::chrono::milliseconds fallback) const;

  /// Samples recorded for one class (saturates at the ring window for the
  /// estimate itself; this count keeps growing).
  [[nodiscard]] std::size_t sample_count(CollectiveClass c) const;
  [[nodiscard]] std::size_t total_samples() const;

  /// Drop all history (a shrink renumbers the world; latency structure
  /// learned on the old world must not leak into the new one).
  void reset();

  [[nodiscard]] const Options& options() const { return options_; }

private:
  struct ClassRing {
    std::vector<std::atomic<double>> slots;
    std::atomic<std::size_t> n{0};
    std::atomic<double> cached_deadline_ms{0.0};  ///< 0 = not yet computed
  };

  void recompute(ClassRing& ring) const;

  Options options_;
  mutable std::mutex recompute_mutex_;
  std::vector<ClassRing> rings_;  ///< kCollectiveClassCount + 1 (global last)
};

/// Counters of what the detector decided (monotonic over its lifetime).
struct StragglerStats {
  std::size_t samples = 0;         ///< work samples recorded
  std::size_t windows = 0;         ///< classification windows evaluated
  std::size_t degrade_events = 0;  ///< healthy -> degraded transitions
  std::size_t recover_events = 0;  ///< degraded -> healthy transitions
};

/// One rank's row in the arrival-lag ledger, for reports and tests.
struct StragglerRankSnapshot {
  std::size_t original_rank = 0;
  std::size_t samples = 0;        ///< work samples recorded so far
  double last_window_ms = 0.0;    ///< work total of the last classified window
  double mean_recent_ms = 0.0;    ///< mean of the last-K per-collective ring
  double weight = 1.0;            ///< measured speed weight (healthy = 1)
  bool degraded = false;
  bool active = true;             ///< false once retain() dropped the rank
};

/// Per-rank arrival-lag ledger + degraded-rank classifier. Ranks are
/// addressed by ORIGINAL world id (stable across Cluster::shrink
/// renumberings, like fault plans). record_work is the hot path; classify
/// runs at iteration boundaries (observer) and on the recovery driver's
/// timeout catch path.
class StragglerDetector {
public:
  struct Options {
    std::size_t ring = 16;        ///< last-K per-collective samples kept
    double mad_k = 4.0;           ///< degraded beyond median + mad_k * MAD
    double min_relative = 2.0;    ///< ... and beyond min_relative * median
    int degrade_after = 2;        ///< consecutive over-windows to degrade
    int recover_after = 2;        ///< consecutive clean windows to recover
    double min_window_ms = 5.0;   ///< windows with a smaller median are noise
    double weight_floor = 1.0 / 16.0;  ///< slowest speed weight handed out
  };

  explicit StragglerDetector(std::size_t n_ranks)
      : StragglerDetector(n_ranks, Options()) {}
  StragglerDetector(std::size_t n_ranks, Options options);
  StragglerDetector(const StragglerDetector&) = delete;
  StragglerDetector& operator=(const StragglerDetector&) = delete;

  [[nodiscard]] std::size_t rank_count() const { return ranks_.size(); }

  /// Hot path: record `work_ms` of compute the rank did since it left its
  /// previous collective (injected slowdown included -- that is the point).
  /// One relaxed ring store + two relaxed accumulates; safe from all rank
  /// threads concurrently (one writer per rank).
  void record_work(std::size_t original_rank, double work_ms);

  /// Close the current window and reclassify every active rank: snapshot +
  /// reset the per-rank work accumulators, compute the cross-rank median
  /// and MAD, advance the hysteresis counters. Returns true when any
  /// rank's classification changed. Call once per CPSCF iteration (rank-0
  /// observer) or after a collective timeout; NOT from the hot path.
  bool classify();

  /// Original ids of currently degraded ranks, ascending.
  [[nodiscard]] std::vector<std::size_t> degraded_ranks() const;
  [[nodiscard]] bool any_degraded() const {
    return n_degraded_.load(std::memory_order_relaxed) != 0;
  }

  /// Measured per-rank speed weights (original-id indexed, size
  /// rank_count): healthy ranks weigh 1.0; a degraded rank weighs
  /// median_window / its_window, clamped to [weight_floor, 1] -- an 8x
  /// slower rank gets ~1/8 of the load under
  /// mapping::rebalance_for_slow_ranks.
  [[nodiscard]] std::vector<double> speed_weights() const;

  /// Keep only `survivor_original_ids` active after a shrink: dropped
  /// ranks lose their classification (a dead rank must never pin a stale
  /// "degraded" verdict) and stop counting toward the cross-rank median.
  void retain(const std::vector<std::size_t>& survivor_original_ids);

  /// Forget everything (classifications, ledgers, counters stay monotonic).
  void reset();

  [[nodiscard]] StragglerStats stats() const;
  [[nodiscard]] std::vector<StragglerRankSnapshot> snapshot() const;
  [[nodiscard]] const Options& options() const { return options_; }

private:
  struct RankState {
    std::vector<std::atomic<double>> ring;     ///< last-K work samples
    std::atomic<std::size_t> ring_n{0};
    std::atomic<double> window_ms{0.0};        ///< accumulating window total
    std::atomic<std::size_t> window_samples{0};
    // Classification state, written only under classify_mutex_.
    double last_window_ms = 0.0;
    double weight = 1.0;
    int over_streak = 0;
    int under_streak = 0;
    bool degraded = false;
    bool active = true;
    std::size_t samples_total = 0;
  };

  Options options_;
  std::vector<std::unique_ptr<RankState>> ranks_;
  mutable std::mutex classify_mutex_;
  std::atomic<std::size_t> n_degraded_{0};
  StragglerStats stats_;
};

/// Register the detector's counters as an obs metrics source
/// ("<prefix>/degraded_ranks", "<prefix>/degrade_events",
/// "<prefix>/recover_events", "<prefix>/windows", "<prefix>/samples").
/// The detector must outlive the registration.
[[nodiscard]] obs::ScopedMetricsSource register_metrics(
    const StragglerDetector& detector, std::string prefix = "straggler");

/// Register the per-rank lag table as an extra phase-report section. The
/// detector must outlive the registration.
[[nodiscard]] obs::ScopedReportSection register_report_section(
    const StragglerDetector& detector);

}  // namespace aeqp::parallel
