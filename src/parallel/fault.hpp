#pragma once

/// \file fault.hpp
/// Deterministic fault injection for the simulated MPI runtime. A FaultPlan
/// is a set of FaultEvents addressed by (rank, collective sequence index);
/// the FaultInjector attached to a Cluster replays the plan during a run:
/// payload corruption (bit flips, NaN/Inf), rank stalls, rank kills, and
/// multiplicative rank slowdowns (stragglers).
///
/// Transient events (the default) fire at most once across the injector's
/// lifetime -- like a real transient fault -- so a recovery driver that
/// restores a checkpoint and retries sees a clean re-execution. Permanent
/// events (transient = false) model a dead or broken component: once they
/// fire the first time, they re-fire at *every* subsequent collective the
/// victim rank enters, so a retry at the same world size fails again and
/// only excluding the rank from the world (Cluster::shrink) silences the
/// fault. Plans are either constructed explicitly or drawn from a seeded
/// RNG (FaultPlan::random), making every failure scenario reproducible
/// bit-for-bit at laptop scale.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace aeqp::parallel {

/// Kinds of faults the injector can produce at a collective call site.
enum class FaultKind {
  BitFlip,     ///< flip one bit of one payload element (silent corruption)
  NanPayload,  ///< overwrite one payload element with quiet NaN
  InfPayload,  ///< overwrite one payload element with +infinity
  Stall,       ///< delay the rank at `repeat` consecutive collectives
  Kill,        ///< terminate the rank (raises RankFailure on it)
  Slowdown,    ///< multiply the rank's compute time by `slow_factor`
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind);

/// One planned fault. Corruption kinds fire at the first collective with a
/// non-empty payload at or after `collective`; Stall/Kill fire at the first
/// collective at or after `collective` regardless of payload.
struct FaultEvent {
  FaultKind kind = FaultKind::BitFlip;
  std::size_t rank = 0;        ///< rank the fault strikes (original world ids)
  std::size_t collective = 0;  ///< per-rank collective sequence index
  std::size_t element = 0;     ///< payload element (taken modulo size)
  int bit = 62;                ///< bit flipped by BitFlip (0..63)
  std::size_t stall_ms = 0;    ///< stall duration per collective
  std::size_t repeat = 1;      ///< consecutive collectives affected
                               ///< (Stall/Slowdown)
  /// Slowdown: the rank's compute phase takes slow_factor times as long.
  /// The injector measures the rank's real work since its previous
  /// collective and sleeps (slow_factor - 1) times that, so the delay
  /// scales with the actual workload instead of a fixed stall -- a
  /// thermally-throttled or contended node, not a hung one.
  double slow_factor = 1.0;
  /// Slowdown: multiplicative jitter in [0, 1). Each firing scales the
  /// delay by 1 + slow_jitter * u with u drawn deterministically in
  /// [-1, 1) from (rank, seq) -- an intermittently-slow node rather than a
  /// perfectly uniform one. 0 = persistent, jitter-free slowdown.
  double slow_jitter = 0.0;
  /// true: fire at most once (transient fault, clean replay on retry);
  /// Stall/Slowdown honour `repeat` consecutive firings first.
  /// false: once fired, re-fire at every later collective of the rank --
  /// a permanent Kill is a dead node that stays dead across retries, a
  /// permanent Slowdown a degraded node that stays slow until the ladder
  /// rebalances around it.
  bool transient = true;
};

/// An ordered set of fault events.
class FaultPlan {
public:
  FaultPlan() = default;

  /// Validates the event (bit in 0..63, repeat >= 1 for Stall) and appends
  /// it; throws aeqp::Error on out-of-range fields rather than letting a
  /// misaddressed plan silently misbehave mid-run. Rank-in-world validation
  /// happens at Cluster::set_fault_injector, where the world size is known.
  FaultPlan& add(const FaultEvent& event);

  /// Draw `n_events` payload-corruption events from a seeded RNG: rank in
  /// [0, n_ranks), collective index in [first_collective, last_collective),
  /// kind uniformly from `kinds` (default: all three corruption kinds),
  /// element uniform, bit uniform in [48, 64) so a flip is large enough to
  /// violate any sane health bound.
  /// `permanent_kills` additionally draws that many permanent Kill events
  /// on *distinct* ranks (capped at n_ranks - 1 so at least one rank
  /// survives), each at a collective index inside the same window.
  /// `slowdowns` additionally draws that many transient Slowdown events on
  /// ranks distinct from each other *and* from the permanent-kill victims
  /// (capped by the ranks remaining): factor `slow_factor`, jitter 0.3,
  /// repeat uniform in [2, 6] -- an intermittently slow node, not a dead
  /// one, so chaos soaks exercise the rebalance rung and the kill/shrink
  /// rung in the same run.
  static FaultPlan random(std::uint64_t seed, std::size_t n_events,
                          std::size_t n_ranks, std::size_t first_collective,
                          std::size_t last_collective,
                          std::vector<FaultKind> kinds = {
                              FaultKind::BitFlip, FaultKind::NanPayload,
                              FaultKind::InfPayload},
                          std::size_t permanent_kills = 0,
                          std::size_t slowdowns = 0,
                          double slow_factor = 4.0);

  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

private:
  std::vector<FaultEvent> events_;
};

/// Counters of what the injector actually did.
struct FaultInjectorStats {
  std::size_t corruptions = 0;
  std::size_t stalls = 0;
  std::size_t kills = 0;
  std::size_t slowdowns = 0;
  /// Total delay injected by Slowdown events (ms), summed over all ranks
  /// and collectives -- the walltime an experiment's straggler actually
  /// cost, for calibrating defense benchmarks against the injected harm.
  double slowdown_ms = 0.0;
  [[nodiscard]] std::size_t total() const {
    return corruptions + stalls + kills + slowdowns;
  }
};

/// Replays a FaultPlan against a running cluster. Thread-safe: collectives
/// on different ranks consult it concurrently. Attach with
/// Cluster::set_fault_injector; the injector must outlive the runs.
class FaultInjector {
public:
  explicit FaultInjector(FaultPlan plan);

  /// Called by the runtime at every collective entry with the rank's
  /// in-transit payload. May mutate the payload (corruption), sleep
  /// (Stall/Slowdown; `cancelled` is polled so a failed cluster cuts the
  /// sleep short), or throw RankFailure (Kill). `rank` is the rank's id in
  /// the *running* world, `original_rank` its id in the original
  /// (pre-shrink) world -- events always address original ids, so plans
  /// keep meaning the same physical ranks after a Cluster::shrink
  /// renumbering. `work_ms` is the CPU time the rank's own thread consumed
  /// since it left its previous collective (0 when unknown) -- its own
  /// burned cycles, not the wall span, so co-scheduled peers on an
  /// oversubscribed host never inflate the delay; Slowdown events sleep
  /// (slow_factor - 1) * work_ms, scaled by the deterministic jitter.
  void on_collective(std::size_t rank, std::size_t original_rank,
                     std::size_t seq, const char* what,
                     std::span<double> payload,
                     const std::function<bool()>& cancelled,
                     double work_ms = 0.0);

  [[nodiscard]] FaultInjectorStats stats() const;

  /// Events that have never fired (a permanent event that fired at least
  /// once no longer counts as pending, even though it stays armed).
  [[nodiscard]] std::size_t pending() const;

  /// The plan as armed (fired state not included) -- lets the cluster
  /// validate that every event addresses a rank inside the world.
  [[nodiscard]] std::vector<FaultEvent> planned_events() const;

private:
  struct Armed {
    FaultEvent event;
    std::size_t fired = 0;  ///< times the event has fired so far
    bool done = false;      ///< transient event exhausted
  };
  mutable std::mutex mutex_;
  std::vector<Armed> events_;
  FaultInjectorStats stats_;
};

/// Register `injector`'s counters as an obs metrics source
/// ("<prefix>/corruptions", "<prefix>/stalls", "<prefix>/kills",
/// "<prefix>/slowdowns"). The injector must outlive the returned
/// registration.
[[nodiscard]] obs::ScopedMetricsSource register_metrics(
    const FaultInjector& injector, std::string prefix = "fault");

}  // namespace aeqp::parallel
