#pragma once

/// \file fault.hpp
/// Deterministic fault injection for the simulated MPI runtime. A FaultPlan
/// is a set of FaultEvents addressed by (rank, collective sequence index);
/// the FaultInjector attached to a Cluster replays the plan during a run:
/// payload corruption (bit flips, NaN/Inf), rank stalls, and rank kills.
///
/// Every event fires at most once across the injector's lifetime -- like a
/// real transient fault -- so a recovery driver that restores a checkpoint
/// and retries sees a clean re-execution. Plans are either constructed
/// explicitly or drawn from a seeded RNG (FaultPlan::random), making every
/// failure scenario reproducible bit-for-bit at laptop scale.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace aeqp::parallel {

/// Kinds of faults the injector can produce at a collective call site.
enum class FaultKind {
  BitFlip,     ///< flip one bit of one payload element (silent corruption)
  NanPayload,  ///< overwrite one payload element with quiet NaN
  InfPayload,  ///< overwrite one payload element with +infinity
  Stall,       ///< delay the rank at `repeat` consecutive collectives
  Kill,        ///< terminate the rank (raises RankFailure on it)
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind);

/// One planned fault. Corruption kinds fire at the first collective with a
/// non-empty payload at or after `collective`; Stall/Kill fire at the first
/// collective at or after `collective` regardless of payload.
struct FaultEvent {
  FaultKind kind = FaultKind::BitFlip;
  std::size_t rank = 0;        ///< rank the fault strikes
  std::size_t collective = 0;  ///< per-rank collective sequence index
  std::size_t element = 0;     ///< payload element (taken modulo size)
  int bit = 62;                ///< bit flipped by BitFlip (0..63)
  std::size_t stall_ms = 0;    ///< stall duration per collective
  std::size_t repeat = 1;      ///< consecutive collectives stalled (Stall)
};

/// An ordered set of fault events.
class FaultPlan {
public:
  FaultPlan() = default;

  FaultPlan& add(const FaultEvent& event);

  /// Draw `n_events` payload-corruption events from a seeded RNG: rank in
  /// [0, n_ranks), collective index in [first_collective, last_collective),
  /// kind uniformly from `kinds` (default: all three corruption kinds),
  /// element uniform, bit uniform in [48, 64) so a flip is large enough to
  /// violate any sane health bound.
  static FaultPlan random(std::uint64_t seed, std::size_t n_events,
                          std::size_t n_ranks, std::size_t first_collective,
                          std::size_t last_collective,
                          std::vector<FaultKind> kinds = {
                              FaultKind::BitFlip, FaultKind::NanPayload,
                              FaultKind::InfPayload});

  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

private:
  std::vector<FaultEvent> events_;
};

/// Counters of what the injector actually did.
struct FaultInjectorStats {
  std::size_t corruptions = 0;
  std::size_t stalls = 0;
  std::size_t kills = 0;
  [[nodiscard]] std::size_t total() const { return corruptions + stalls + kills; }
};

/// Replays a FaultPlan against a running cluster. Thread-safe: collectives
/// on different ranks consult it concurrently. Attach with
/// Cluster::set_fault_injector; the injector must outlive the runs.
class FaultInjector {
public:
  explicit FaultInjector(FaultPlan plan);

  /// Called by the runtime at every collective entry with the rank's
  /// in-transit payload. May mutate the payload (corruption), sleep
  /// (Stall; `cancelled` is polled so a failed cluster cuts the stall
  /// short), or throw RankFailure (Kill).
  void on_collective(std::size_t rank, std::size_t seq, const char* what,
                     std::span<double> payload,
                     const std::function<bool()>& cancelled);

  [[nodiscard]] FaultInjectorStats stats() const;

  /// Events that have not fired yet.
  [[nodiscard]] std::size_t pending() const;

private:
  struct Armed {
    FaultEvent event;
    std::size_t fired = 0;  ///< collectives a Stall has already delayed
    bool done = false;
  };
  mutable std::mutex mutex_;
  std::vector<Armed> events_;
  FaultInjectorStats stats_;
};

/// Register `injector`'s counters as an obs metrics source
/// ("<prefix>/corruptions", "<prefix>/stalls", "<prefix>/kills"). The
/// injector must outlive the returned registration.
[[nodiscard]] obs::ScopedMetricsSource register_metrics(
    const FaultInjector& injector, std::string prefix = "fault");

}  // namespace aeqp::parallel
