#include "parallel/straggler.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace aeqp::parallel {

namespace detail {

std::atomic<int> g_adaptive_timeout{-1};

bool init_adaptive_timeout_from_env() {
  const char* env = std::getenv("AEQP_ADAPTIVE_TIMEOUT");
  int on = 0;
  if (env != nullptr &&
      (std::strcmp(env, "on") == 0 || std::strcmp(env, "1") == 0)) {
    on = 1;
  }
  // First initializer wins; a concurrent set_adaptive_timeout sticks.
  int expected = -1;
  if (!g_adaptive_timeout.compare_exchange_strong(expected, on,
                                                  std::memory_order_relaxed)) {
    on = expected;
  }
  return on != 0;
}

}  // namespace detail

void set_adaptive_timeout(bool on) {
  detail::g_adaptive_timeout.store(on ? 1 : 0, std::memory_order_relaxed);
}

const char* collective_class_name(CollectiveClass c) {
  switch (c) {
    case CollectiveClass::Barrier: return "barrier";
    case CollectiveClass::NodeBarrier: return "node_barrier";
    case CollectiveClass::AllreduceSum: return "allreduce_sum";
    case CollectiveClass::AllreduceMax: return "allreduce_max";
    case CollectiveClass::AllreduceSumLeaders: return "allreduce_sum_leaders";
    case CollectiveClass::Broadcast: return "broadcast";
  }
  return "?";
}

namespace {

/// Median and MAD (median absolute deviation) of `v`; `v` is clobbered.
/// Returns {0, 0} on an empty input.
std::pair<double, double> median_mad(std::vector<double>& v) {
  if (v.empty()) return {0.0, 0.0};
  const auto mid = v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2);
  std::nth_element(v.begin(), mid, v.end());
  double median = *mid;
  if (v.size() % 2 == 0) {
    // Lower-of-the-two middle elements biases the deadline down (stricter);
    // average the two middles instead for a symmetric estimate.
    const double lo = *std::max_element(v.begin(), mid);
    median = 0.5 * (lo + median);
  }
  for (double& x : v) x = std::fabs(x - median);
  std::nth_element(v.begin(), mid, v.end());
  double mad = *mid;
  if (v.size() % 2 == 0) {
    const double lo = *std::max_element(v.begin(), mid);
    mad = 0.5 * (lo + mad);
  }
  return {median, mad};
}

}  // namespace

// ---------------------------------------------------------------------------
// DeadlineEstimator

DeadlineEstimator::DeadlineEstimator(Options options)
    : options_(options) {
  AEQP_CHECK(options_.window >= 4, "DeadlineEstimator: window must be >= 4");
  AEQP_CHECK(options_.mad_k >= 0.0, "DeadlineEstimator: mad_k must be >= 0");
  AEQP_CHECK(options_.floor_ms >= 0.0 &&
                 options_.ceiling_ms >= options_.floor_ms,
             "DeadlineEstimator: need 0 <= floor_ms <= ceiling_ms");
  AEQP_CHECK(options_.recompute_every >= 1,
             "DeadlineEstimator: recompute_every must be >= 1");
  rings_ = std::vector<ClassRing>(kCollectiveClassCount + 1);
  for (auto& ring : rings_)
    ring.slots = std::vector<std::atomic<double>>(options_.window);
}

void DeadlineEstimator::record(CollectiveClass c, double ms) {
  const auto record_into = [&](ClassRing& ring) {
    const std::size_t i = ring.n.fetch_add(1, std::memory_order_relaxed);
    ring.slots[i % options_.window].store(ms, std::memory_order_relaxed);
    // Refresh the published deadline every few records; the estimate only
    // has to track the run's latency structure, not every sample.
    if ((i + 1) % options_.recompute_every == 0) recompute(ring);
  };
  record_into(rings_[static_cast<std::size_t>(c)]);
  record_into(rings_.back());  // the all-classes fallback ring
}

void DeadlineEstimator::recompute(ClassRing& ring) const {
  const std::lock_guard<std::mutex> lock(recompute_mutex_);
  const std::size_t n =
      std::min(ring.n.load(std::memory_order_relaxed), options_.window);
  if (n == 0) return;
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = ring.slots[i].load(std::memory_order_relaxed);
  const auto [median, mad] = median_mad(v);
  ring.cached_deadline_ms.store(median + options_.mad_k * mad,
                                std::memory_order_relaxed);
}

std::chrono::milliseconds DeadlineEstimator::deadline(
    CollectiveClass c, std::chrono::milliseconds fallback) const {
  const ClassRing* ring = &rings_[static_cast<std::size_t>(c)];
  if (ring->n.load(std::memory_order_relaxed) < options_.min_samples)
    ring = &rings_.back();
  if (ring->n.load(std::memory_order_relaxed) < options_.min_samples)
    return fallback;
  double est = ring->cached_deadline_ms.load(std::memory_order_relaxed);
  if (est <= 0.0) return fallback;  // cache not yet published
  est = std::max(est, options_.floor_ms);
  est = std::min(est, options_.ceiling_ms);
  // The fixed timeout is an upper bound, never a lower one: a service
  // deadline clamp that shrank it below our floor must still win.
  const double cap = static_cast<double>(fallback.count());
  est = std::min(est, cap);
  return std::chrono::milliseconds(
      static_cast<std::chrono::milliseconds::rep>(std::ceil(est)));
}

std::size_t DeadlineEstimator::sample_count(CollectiveClass c) const {
  return rings_[static_cast<std::size_t>(c)].n.load(std::memory_order_relaxed);
}

std::size_t DeadlineEstimator::total_samples() const {
  return rings_.back().n.load(std::memory_order_relaxed);
}

void DeadlineEstimator::reset() {
  const std::lock_guard<std::mutex> lock(recompute_mutex_);
  for (auto& ring : rings_) {
    ring.n.store(0, std::memory_order_relaxed);
    ring.cached_deadline_ms.store(0.0, std::memory_order_relaxed);
    for (auto& s : ring.slots) s.store(0.0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// StragglerDetector

StragglerDetector::StragglerDetector(std::size_t n_ranks, Options options)
    : options_(options) {
  AEQP_CHECK(n_ranks >= 1, "StragglerDetector: need at least one rank");
  AEQP_CHECK(options_.ring >= 1, "StragglerDetector: ring must be >= 1");
  AEQP_CHECK(options_.mad_k >= 0.0, "StragglerDetector: mad_k must be >= 0");
  AEQP_CHECK(options_.min_relative >= 1.0,
             "StragglerDetector: min_relative must be >= 1");
  AEQP_CHECK(options_.degrade_after >= 1 && options_.recover_after >= 1,
             "StragglerDetector: hysteresis lengths must be >= 1");
  AEQP_CHECK(options_.weight_floor > 0.0 && options_.weight_floor <= 1.0,
             "StragglerDetector: weight_floor must be in (0, 1]");
  ranks_.reserve(n_ranks);
  for (std::size_t r = 0; r < n_ranks; ++r) {
    auto state = std::make_unique<RankState>();
    state->ring = std::vector<std::atomic<double>>(options_.ring);
    ranks_.push_back(std::move(state));
  }
}

void StragglerDetector::record_work(std::size_t original_rank,
                                    double work_ms) {
  if (original_rank >= ranks_.size()) return;
  RankState& s = *ranks_[original_rank];
  const std::size_t i = s.ring_n.fetch_add(1, std::memory_order_relaxed);
  s.ring[i % options_.ring].store(work_ms, std::memory_order_relaxed);
  s.window_ms.fetch_add(work_ms, std::memory_order_relaxed);
  s.window_samples.fetch_add(1, std::memory_order_relaxed);
}

bool StragglerDetector::classify() {
  const std::lock_guard<std::mutex> lock(classify_mutex_);
  // Snapshot and reset the accumulating window totals first: even when this
  // window turns out to be noise, the next one starts clean.
  std::vector<double> totals;
  std::vector<std::size_t> with_samples;
  totals.reserve(ranks_.size());
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    RankState& s = *ranks_[r];
    const double total = s.window_ms.exchange(0.0, std::memory_order_relaxed);
    const std::size_t n =
        s.window_samples.exchange(0, std::memory_order_relaxed);
    stats_.samples += n;
    s.samples_total += n;
    if (!s.active || n == 0) continue;
    s.last_window_ms = total;
    totals.push_back(total);
    with_samples.push_back(r);
  }
  ++stats_.windows;
  // A one-rank world (or a window where only one rank moved) has no peers
  // to be slower than; and a window whose median is under the noise floor
  // carries no signal either way -- skip, streaks keep their state.
  if (with_samples.size() < 2) return false;
  std::vector<double> scratch = totals;
  const auto [median, mad] = median_mad(scratch);
  if (median < options_.min_window_ms) return false;

  const double threshold = std::max(median + options_.mad_k * mad,
                                    options_.min_relative * median);
  bool changed = false;
  for (std::size_t k = 0; k < with_samples.size(); ++k) {
    RankState& s = *ranks_[with_samples[k]];
    const bool over = totals[k] > threshold;
    if (over) {
      ++s.over_streak;
      s.under_streak = 0;
    } else {
      ++s.under_streak;
      s.over_streak = 0;
    }
    // Measured speed relative to the pack, for the rebalance weights.
    s.weight = totals[k] > 0.0
                   ? std::clamp(median / totals[k], options_.weight_floor, 1.0)
                   : 1.0;
    if (!s.degraded && s.over_streak >= options_.degrade_after) {
      s.degraded = true;
      changed = true;
      ++stats_.degrade_events;
      n_degraded_.fetch_add(1, std::memory_order_relaxed);
      obs::trace_instant("straggler/degraded");
    } else if (s.degraded && s.under_streak >= options_.recover_after) {
      s.degraded = false;
      s.weight = 1.0;
      changed = true;
      ++stats_.recover_events;
      n_degraded_.fetch_sub(1, std::memory_order_relaxed);
      obs::trace_instant("straggler/recovered");
    }
  }
  return changed;
}

std::vector<std::size_t> StragglerDetector::degraded_ranks() const {
  const std::lock_guard<std::mutex> lock(classify_mutex_);
  std::vector<std::size_t> out;
  for (std::size_t r = 0; r < ranks_.size(); ++r)
    if (ranks_[r]->active && ranks_[r]->degraded) out.push_back(r);
  return out;
}

std::vector<double> StragglerDetector::speed_weights() const {
  const std::lock_guard<std::mutex> lock(classify_mutex_);
  std::vector<double> w(ranks_.size(), 1.0);
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    const RankState& s = *ranks_[r];
    if (s.active && s.degraded) w[r] = s.weight;
  }
  return w;
}

void StragglerDetector::retain(
    const std::vector<std::size_t>& survivor_original_ids) {
  const std::lock_guard<std::mutex> lock(classify_mutex_);
  std::vector<bool> keep(ranks_.size(), false);
  for (const std::size_t id : survivor_original_ids) {
    AEQP_CHECK(id < ranks_.size(),
               "StragglerDetector::retain: survivor original id " +
                   std::to_string(id) + " outside the detector's world (" +
                   std::to_string(ranks_.size()) + " ranks)");
    keep[id] = true;
  }
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    RankState& s = *ranks_[r];
    if (keep[r] || !s.active) continue;
    s.active = false;
    if (s.degraded) {
      // A dead rank's stale classification must never outlive it: it would
      // bias the weights and the degraded count against a rank that no
      // longer exists.
      s.degraded = false;
      n_degraded_.fetch_sub(1, std::memory_order_relaxed);
    }
    s.over_streak = s.under_streak = 0;
    s.weight = 1.0;
  }
}

void StragglerDetector::reset() {
  const std::lock_guard<std::mutex> lock(classify_mutex_);
  for (auto& rank : ranks_) {
    RankState& s = *rank;
    s.ring_n.store(0, std::memory_order_relaxed);
    for (auto& slot : s.ring) slot.store(0.0, std::memory_order_relaxed);
    s.window_ms.store(0.0, std::memory_order_relaxed);
    s.window_samples.store(0, std::memory_order_relaxed);
    s.last_window_ms = 0.0;
    s.weight = 1.0;
    s.over_streak = s.under_streak = 0;
    s.degraded = false;
    s.active = true;
    s.samples_total = 0;
  }
  n_degraded_.store(0, std::memory_order_relaxed);
}

StragglerStats StragglerDetector::stats() const {
  const std::lock_guard<std::mutex> lock(classify_mutex_);
  return stats_;
}

std::vector<StragglerRankSnapshot> StragglerDetector::snapshot() const {
  const std::lock_guard<std::mutex> lock(classify_mutex_);
  std::vector<StragglerRankSnapshot> out;
  out.reserve(ranks_.size());
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    const RankState& s = *ranks_[r];
    StragglerRankSnapshot row;
    row.original_rank = r;
    row.samples =
        s.samples_total + s.window_samples.load(std::memory_order_relaxed);
    row.last_window_ms = s.last_window_ms;
    const std::size_t n = std::min(s.ring_n.load(std::memory_order_relaxed),
                                   options_.ring);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      sum += s.ring[i].load(std::memory_order_relaxed);
    row.mean_recent_ms = n > 0 ? sum / static_cast<double>(n) : 0.0;
    row.weight = s.degraded ? s.weight : 1.0;
    row.degraded = s.degraded;
    row.active = s.active;
    out.push_back(row);
  }
  return out;
}

obs::ScopedMetricsSource register_metrics(const StragglerDetector& detector,
                                          std::string prefix) {
  return obs::ScopedMetricsSource(
      [&detector,
       prefix = std::move(prefix)](std::vector<obs::MetricSample>& out) {
        const StragglerStats s = detector.stats();
        std::size_t degraded = 0;
        for (const auto& row : detector.snapshot())
          if (row.active && row.degraded) ++degraded;
        out.push_back(
            {prefix + "/degraded_ranks", static_cast<double>(degraded)});
        out.push_back({prefix + "/degrade_events",
                       static_cast<double>(s.degrade_events)});
        out.push_back({prefix + "/recover_events",
                       static_cast<double>(s.recover_events)});
        out.push_back({prefix + "/windows", static_cast<double>(s.windows)});
        out.push_back({prefix + "/samples", static_cast<double>(s.samples)});
      });
}

obs::ScopedReportSection register_report_section(
    const StragglerDetector& detector) {
  return obs::ScopedReportSection([&detector](std::ostream& os) {
    const auto rows = detector.snapshot();
    bool any = false;
    for (const auto& row : rows) any = any || row.samples > 0;
    if (!any) return;  // never fed -- keep the report clean
    os << "straggler lag ledger (per original rank):\n";
    os << "  " << std::left << std::setw(6) << "rank" << std::right
       << std::setw(10) << "samples" << std::setw(14) << "window(ms)"
       << std::setw(14) << "recent(ms)" << std::setw(9) << "weight"
       << std::setw(11) << "state" << "\n";
    for (const auto& row : rows) {
      std::ostringstream win, recent, weight;
      win << std::fixed << std::setprecision(2) << row.last_window_ms;
      recent << std::fixed << std::setprecision(3) << row.mean_recent_ms;
      weight << std::fixed << std::setprecision(3) << row.weight;
      os << "  " << std::left << std::setw(6) << row.original_rank
         << std::right << std::setw(10) << row.samples << std::setw(14)
         << win.str() << std::setw(14) << recent.str() << std::setw(9)
         << weight.str() << std::setw(11)
         << (!row.active ? "dropped"
                         : (row.degraded ? "DEGRADED" : "healthy"))
         << "\n";
    }
  });
}

}  // namespace aeqp::parallel
