#include "parallel/machine_model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace aeqp::parallel {
namespace {

double log2_ranks(std::size_t ranks) {
  return ranks > 1 ? std::log2(static_cast<double>(ranks)) : 0.0;
}

/// Per-invocation overhead of a collective: tree latency plus a congestion
/// term that grows superlinearly with participant count (stragglers, NIC
/// contention). The exponents are calibrated against the speedup ranges the
/// paper reports in Fig. 10 (see DESIGN.md on model substitution).
double percall_overhead(const MachineModel& m, std::size_t ranks) {
  // Congestion exponents/coefficients fitted to the Fig. 10 speedup ranges:
  // HPC#2's fat InfiniBand tree degrades faster under full-system
  // collectives (superlinear straggler term) than Sunway's custom network.
  const double congestion_exp = m.has_shm ? 1.8 : 1.05;
  const double jitter = m.has_shm ? 8.0e-11 : 6.0e-8;
  return 2.0 * log2_ranks(ranks) * m.alpha_inter +
         jitter * std::pow(static_cast<double>(ranks), congestion_exp);
}

}  // namespace

MachineModel MachineModel::hpc1_sunway() {
  MachineModel m;
  m.name = "HPC#1 (Sunway SW39010)";
  m.ranks_per_node = 6;       // one rank per core group
  m.alpha_inter = 1.2e-5;     // custom network, deep topology
  m.beta_inter = 1.0e-9;      // ~1 GB/s effective per rank
  m.alpha_intra = 2.0e-6;
  m.beta_intra = 1.0e-10;
  m.has_shm = false;          // core-group memories are disconnected
  m.offchip_latency = 6.0e-7; // long off-chip latency (paper Sec. 5.2.4)
  m.flop_rate = 2.0e10;
  m.host_flop_rate = 7.0e8;   // one managing core slice per rank
  return m;
}

MachineModel MachineModel::hpc2_amd() {
  MachineModel m;
  m.name = "HPC#2 (AMD GPU)";
  m.ranks_per_node = 32;
  m.alpha_inter = 2.0e-6;     // InfiniBand + MPI software stack
  m.beta_inter = 1.0e-10;     // ~10 GB/s effective per rank
  m.alpha_intra = 3.0e-7;
  m.beta_intra = 8.0e-12;     // shared-memory copy bandwidth
  m.has_shm = true;
  m.offchip_latency = 2.5e-7;
  m.flop_rate = 6.0e10;
  m.host_flop_rate = 6.0e9;   // one x86 core per rank
  return m;
}

double CommCostModel::allreduce_seconds(std::size_t bytes, std::size_t ranks) const {
  AEQP_CHECK(ranks >= 1, "allreduce_seconds: need at least one rank");
  if (ranks == 1) return 0.0;
  return percall_overhead(m_, ranks) +
         2.0 * static_cast<double>(bytes) * m_.beta_inter;
}

double CommCostModel::repeated_allreduce_seconds(std::size_t bytes,
                                                 std::size_t count,
                                                 std::size_t ranks) const {
  return static_cast<double>(count) * allreduce_seconds(bytes, ranks);
}

double CommCostModel::packed_allreduce_seconds(std::size_t bytes, std::size_t count,
                                               std::size_t ranks) const {
  return allreduce_seconds(bytes * count, ranks);
}

CommCostModel::HierarchicalCost CommCostModel::packed_hierarchical_seconds(
    std::size_t bytes, std::size_t count, std::size_t ranks) const {
  AEQP_CHECK(m_.has_shm,
             "packed_hierarchical_seconds: machine has no SHM support");
  HierarchicalCost cost;
  const std::size_t m = m_.ranks_per_node;
  const std::size_t packed = bytes * count;
  // Local phase (Sec. 3.2.2): m chunk rounds sequenced by node barriers; in
  // each round every rank updates one chunk of packed/m bytes concurrently,
  // so the wall time is ~one full pass over the packed payload (read + add
  // + write back) plus the barrier latencies.
  cost.local_update = static_cast<double>(m) * m_.alpha_intra +
                      2.0 * static_cast<double>(packed) * m_.beta_intra;
  // Global phase: AllReduce across ranks/m node leaders only.
  const std::size_t leaders = std::max<std::size_t>(1, ranks / m);
  cost.global = allreduce_seconds(packed, leaders);
  return cost;
}

double CommCostModel::barrier_seconds(std::size_t ranks) const {
  return ranks > 1 ? log2_ranks(ranks) * m_.alpha_inter : 0.0;
}

}  // namespace aeqp::parallel
