#include "parallel/cluster.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <limits>
#include <thread>

#include "common/error.hpp"

namespace aeqp::parallel {

Cluster::Cluster(std::size_t n_ranks, std::size_t ranks_per_node)
    : n_ranks_(n_ranks), ranks_per_node_(ranks_per_node) {
  AEQP_CHECK(n_ranks >= 1, "Cluster: need at least one rank");
  AEQP_CHECK(ranks_per_node >= 1, "Cluster: need at least one rank per node");
  global_barrier_ = std::make_unique<std::barrier<>>(
      static_cast<std::ptrdiff_t>(n_ranks_));
  const std::size_t n_nodes = node_count();
  leader_barrier_ = std::make_unique<std::barrier<>>(
      static_cast<std::ptrdiff_t>(n_nodes));
  nodes_ = std::vector<NodeState>(n_nodes);
  for (std::size_t nd = 0; nd < n_nodes; ++nd) {
    const std::size_t first = nd * ranks_per_node_;
    const std::size_t count = std::min(ranks_per_node_, n_ranks_ - first);
    nodes_[nd].barrier =
        std::make_unique<std::barrier<>>(static_cast<std::ptrdiff_t>(count));
  }
}

std::size_t Cluster::node_count() const {
  return (n_ranks_ + ranks_per_node_ - 1) / ranks_per_node_;
}

void Cluster::run(const std::function<void(Communicator&)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(n_ranks_);
  std::vector<std::exception_ptr> errors(n_ranks_);
  for (std::size_t r = 0; r < n_ranks_; ++r) {
    threads.emplace_back([this, &fn, &errors, r] {
      Communicator comm(*this, r);
      try {
        fn(comm);
      } catch (...) {
        errors[r] = std::current_exception();
        // A dead rank would deadlock collectives; abort loudly instead.
        std::fprintf(stderr, "simmpi: rank %zu threw; terminating cluster\n", r);
        std::terminate();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

std::size_t Communicator::size() const { return cluster_->n_ranks_; }
std::size_t Communicator::node() const { return rank_ / cluster_->ranks_per_node_; }
std::size_t Communicator::node_rank() const {
  return rank_ % cluster_->ranks_per_node_;
}
std::size_t Communicator::node_size() const {
  const std::size_t first = node() * cluster_->ranks_per_node_;
  return std::min(cluster_->ranks_per_node_, cluster_->n_ranks_ - first);
}
std::size_t Communicator::node_count() const { return cluster_->node_count(); }

void Communicator::barrier() { cluster_->global_barrier_->arrive_and_wait(); }

void Communicator::node_barrier() {
  cluster_->nodes_[node()].barrier->arrive_and_wait();
}

void Communicator::allreduce_sum(std::span<double> data) {
  {
    std::lock_guard<std::mutex> lock(cluster_->reduce_mutex_);
    if (cluster_->reduce_arrivals_ == 0)
      cluster_->reduce_buffer_.assign(data.size(), 0.0);
    AEQP_CHECK(cluster_->reduce_buffer_.size() == data.size(),
               "allreduce_sum: ranks disagree on element count");
    for (std::size_t i = 0; i < data.size(); ++i)
      cluster_->reduce_buffer_[i] += data[i];
    ++cluster_->reduce_arrivals_;
  }
  barrier();
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = cluster_->reduce_buffer_[i];
  barrier();
  if (rank_ == 0) cluster_->reduce_arrivals_ = 0;
  barrier();
}

void Communicator::allreduce_max(std::span<double> data) {
  {
    std::lock_guard<std::mutex> lock(cluster_->reduce_mutex_);
    if (cluster_->reduce_arrivals_ == 0)
      cluster_->reduce_buffer_.assign(
          data.size(), -std::numeric_limits<double>::infinity());
    AEQP_CHECK(cluster_->reduce_buffer_.size() == data.size(),
               "allreduce_max: ranks disagree on element count");
    for (std::size_t i = 0; i < data.size(); ++i)
      cluster_->reduce_buffer_[i] = std::max(cluster_->reduce_buffer_[i], data[i]);
    ++cluster_->reduce_arrivals_;
  }
  barrier();
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = cluster_->reduce_buffer_[i];
  barrier();
  if (rank_ == 0) cluster_->reduce_arrivals_ = 0;
  barrier();
}

void Communicator::allreduce_sum_leaders(std::span<double> data) {
  const bool leader = node_rank() == 0;
  if (leader) {
    std::lock_guard<std::mutex> lock(cluster_->reduce_mutex_);
    if (cluster_->reduce_arrivals_ == 0)
      cluster_->reduce_buffer_.assign(data.size(), 0.0);
    AEQP_CHECK(cluster_->reduce_buffer_.size() == data.size(),
               "allreduce_sum_leaders: leaders disagree on element count");
    for (std::size_t i = 0; i < data.size(); ++i)
      cluster_->reduce_buffer_[i] += data[i];
    ++cluster_->reduce_arrivals_;
  }
  barrier();
  if (leader)
    for (std::size_t i = 0; i < data.size(); ++i)
      data[i] = cluster_->reduce_buffer_[i];
  barrier();
  if (rank_ == 0) cluster_->reduce_arrivals_ = 0;
  barrier();
}

void Communicator::broadcast(std::span<double> data, std::size_t root) {
  AEQP_CHECK(root < size(), "broadcast: root out of range");
  if (rank_ == root)
    cluster_->bcast_buffer_.assign(data.begin(), data.end());
  barrier();
  if (rank_ != root) {
    AEQP_CHECK(cluster_->bcast_buffer_.size() == data.size(),
               "broadcast: ranks disagree on element count");
    for (std::size_t i = 0; i < data.size(); ++i)
      data[i] = cluster_->bcast_buffer_[i];
  }
  barrier();
}

std::span<double> Communicator::node_window(std::size_t size) {
  Cluster::NodeState& nd = cluster_->nodes_[node()];
  {
    std::lock_guard<std::mutex> lock(nd.mutex);
    if (nd.window_size != size) {
      nd.window.assign(size, 0.0);
      nd.window_size = size;
    }
  }
  node_barrier();
  return {nd.window.data(), nd.window.size()};
}

void Communicator::node_critical(const std::function<void()>& fn) {
  std::lock_guard<std::mutex> lock(cluster_->nodes_[node()].mutex);
  fn();
}

}  // namespace aeqp::parallel
