#include "parallel/cluster.hpp"

#include <algorithm>
#include <cstdint>
#include <ctime>
#include <limits>
#include <new>
#include <thread>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/task_scope.hpp"
#include "obs/comm_matrix.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/fault.hpp"
#include "parallel/straggler.hpp"

namespace aeqp::parallel {

namespace {

/// CPU time consumed by the calling thread, in milliseconds. The Slowdown
/// fault scales this -- the rank's OWN burned cycles -- so that on an
/// oversubscribed host the wall span (which also contains co-scheduled
/// peers' compute) never inflates the injected delay. Where no per-thread
/// CPU clock exists the wall clock stands in; the caller clamps against the
/// wall span, so the fallback degrades to the old behaviour, never worse.
double thread_cpu_ms() {
#ifdef CLOCK_THREAD_CPUTIME_ID
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<double>(ts.tv_sec) * 1e3 +
           static_cast<double>(ts.tv_nsec) * 1e-6;
#endif
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Post-mortem hook for structured errors escaping Cluster::run: classify
/// the exception and hand the flight recorder its kind so the dump names
/// what killed the run.
void flight_dump_for(const std::exception_ptr& error) {
  if (!obs::flight_enabled()) return;
  try {
    std::rethrow_exception(error);
  } catch (const RankFailure& e) {
    obs::flight_on_error("RankFailure", e.what());
  } catch (const CollectiveTimeout& e) {
    obs::flight_on_error("CollectiveTimeout", e.what());
  } catch (const PayloadCorruption& e) {
    obs::flight_on_error("PayloadCorruption", e.what());
  } catch (const InvariantViolation& e) {
    obs::flight_on_error("InvariantViolation", e.what());
  } catch (const DeadlineExceeded& e) {
    obs::flight_on_error("DeadlineExceeded", e.what());
  } catch (const OutOfMemoryBudget& e) {
    obs::flight_on_error("OutOfMemoryBudget", e.what());
  } catch (const std::bad_alloc& e) {
    // A REAL allocation failure (not a governor probe): the dump is the
    // last observable act before the process likely dies anyway.
    obs::flight_on_error("BadAlloc", e.what());
  } catch (const std::exception& e) {
    obs::flight_on_error("Error", e.what());
  } catch (...) {
    obs::flight_on_error("Error", "non-standard exception");
  }
}

}  // namespace

Cluster::Cluster(std::size_t n_ranks, std::size_t ranks_per_node)
    : Cluster(n_ranks, ranks_per_node, {}) {}

Cluster::Cluster(std::size_t n_ranks, std::size_t ranks_per_node,
                 std::vector<std::size_t> origin)
    : n_ranks_(n_ranks),
      ranks_per_node_(ranks_per_node),
      origin_(std::move(origin)),
      subworld_(!origin_.empty()) {
  AEQP_CHECK(n_ranks >= 1, "Cluster: need at least one rank");
  AEQP_CHECK(ranks_per_node >= 1, "Cluster: need at least one rank per node");
  if (origin_.empty()) {
    origin_.resize(n_ranks_);
    for (std::size_t r = 0; r < n_ranks_; ++r) origin_[r] = r;
  }
  AEQP_CHECK(origin_.size() == n_ranks_,
             "Cluster: origin map must name every rank exactly once");
  global_barrier_ = std::make_unique<FtBarrier>(n_ranks_);
  const std::size_t n_nodes = node_count();
  nodes_ = std::vector<NodeState>(n_nodes);
  for (std::size_t nd = 0; nd < n_nodes; ++nd) {
    const std::size_t first = nd * ranks_per_node_;
    const std::size_t count = std::min(ranks_per_node_, n_ranks_ - first);
    nodes_[nd].barrier = std::make_unique<FtBarrier>(count);
  }
  // AEQP_ADAPTIVE_TIMEOUT arms adaptive deadlines process-wide;
  // set_adaptive_deadlines overrides per cluster.
  if (adaptive_timeout_enabled()) set_adaptive_deadlines(true);
}

std::unique_ptr<Cluster> Cluster::shrink(
    const std::vector<std::size_t>& failed_ranks) const {
  std::vector<bool> dead(n_ranks_, false);
  for (const std::size_t f : failed_ranks) {
    AEQP_CHECK(f < n_ranks_, "Cluster::shrink: failed rank " +
                                 std::to_string(f) + " out of range (world " +
                                 std::to_string(n_ranks_) + ")");
    dead[f] = true;
  }
  std::vector<std::size_t> survivors;
  survivors.reserve(n_ranks_);
  for (std::size_t r = 0; r < n_ranks_; ++r)
    if (!dead[r]) survivors.push_back(origin_[r]);
  AEQP_CHECK(!survivors.empty(), "Cluster::shrink: no surviving rank");
  auto shrunk =
      std::make_unique<Cluster>(survivors.size(), ranks_per_node_, survivors);
  shrunk->collective_timeout_ = collective_timeout_;
  shrunk->injector_ = injector_;
  shrunk->verify_payloads_ = verify_payloads_;
  // The straggler ledger carries over -- it is keyed by original ids, so
  // survivor classifications stay meaningful -- with the dead ranks
  // retired so no stale "degraded" verdict outlives its rank. The
  // adaptive-deadline armed state carries with a FRESH estimator: the
  // latency structure of an N-rank world says nothing about the shrunken
  // one (fewer participants per barrier changes every arrival spread).
  if (straggler_ != nullptr) {
    straggler_->retain(shrunk->origin_);
    shrunk->straggler_ = straggler_;
  }
  if (adaptive_ && deadline_est_ != nullptr) {
    shrunk->adaptive_ = true;
    shrunk->deadline_est_ =
        std::make_shared<DeadlineEstimator>(deadline_est_->options());
  }
  obs::trace_instant("cluster/shrink");
  return shrunk;
}

void Cluster::set_fault_injector(FaultInjector* injector) {
  if (injector != nullptr && !subworld_) {
    // A subworld's plan legitimately addresses original ranks that no
    // longer exist here (the origin map can even look like identity when
    // the dead ranks were the highest-numbered ones), so only a full world
    // validates.
    for (const FaultEvent& e : injector->planned_events())
      AEQP_CHECK(e.rank < n_ranks_,
                 "Cluster::set_fault_injector: planned event addresses rank " +
                     std::to_string(e.rank) + " outside the world (size " +
                     std::to_string(n_ranks_) + ")");
  }
  injector_ = injector;
}

void Cluster::set_straggler_detector(StragglerDetector* detector) {
  if (detector != nullptr) {
    // Every original id this world can hand the detector must have a row;
    // an undersized detector would silently drop the highest ranks' lag.
    for (const std::size_t id : origin_)
      AEQP_CHECK(id < detector->rank_count(),
                 "Cluster::set_straggler_detector: world original rank " +
                     std::to_string(id) + " outside the detector's world (" +
                     std::to_string(detector->rank_count()) + " ranks)");
  }
  straggler_ = detector;
}

void Cluster::set_adaptive_deadlines(bool on, double floor_ms) {
  adaptive_ = on;
  if (!on) {
    deadline_est_.reset();
    return;
  }
  DeadlineEstimator::Options opts;
  if (floor_ms > 0.0) opts.floor_ms = floor_ms;
  deadline_est_ = std::make_shared<DeadlineEstimator>(opts);
}

std::chrono::milliseconds Cluster::effective_timeout(CollectiveClass c) const {
  if (!adaptive_ || deadline_est_ == nullptr) return collective_timeout_;
  return deadline_est_->deadline(c, collective_timeout_);
}

std::size_t Cluster::node_count() const {
  return (n_ranks_ + ranks_per_node_ - 1) / ranks_per_node_;
}

void Cluster::FtBarrier::arrive_and_wait(Cluster& cluster, std::size_t rank,
                                         std::chrono::milliseconds timeout) {
  // The wait-vs-work split: everything inside this span is time the rank
  // spends blocked on peers, not computing.
  AEQP_TRACE_SCOPE("comm/wait");
  std::unique_lock<std::mutex> lk(mutex);
  if (cluster.failed()) {
    lk.unlock();
    cluster.throw_failure(rank);
  }
  const std::uint64_t gen = generation;
  if (++arrived == count) {
    arrived = 0;
    ++generation;
    cv.notify_all();
    return;
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (generation == gen) {
    if (cluster.failed()) {
      lk.unlock();
      cluster.throw_failure(rank);
    }
    if (cv.wait_until(lk, deadline) == std::cv_status::timeout &&
        generation == gen && !cluster.failed()) {
      const std::size_t seen = arrived;
      lk.unlock();
      cluster.fail(rank,
                   "collective deadline (" + std::to_string(timeout.count()) +
                       (cluster.adaptive_deadlines() ? " ms, adaptive"
                                                     : " ms") +
                       ") exceeded with " + std::to_string(seen) + "/" +
                       std::to_string(count) + " participants arrived",
                   nullptr, /*is_timeout=*/true);
      cluster.throw_failure(rank);
    }
  }
}

void Cluster::FtBarrier::wake() {
  std::lock_guard<std::mutex> lk(mutex);
  cv.notify_all();
}

void Cluster::fail(std::size_t rank, const std::string& what,
                   std::exception_ptr cause, bool is_timeout) {
  {
    std::lock_guard<std::mutex> lk(fail_mutex_);
    if (!failed_.load(std::memory_order_relaxed)) {
      failed_rank_ = rank;
      fail_what_ = what;
      fail_is_timeout_ = is_timeout;
      first_error_ = cause;
      failed_.store(true, std::memory_order_release);
      obs::trace_instant(is_timeout ? "fault/collective_timeout"
                                    : "fault/rank_failure");
    }
  }
  // Release every blocked rank so no collective stays stuck.
  global_barrier_->wake();
  for (auto& nd : nodes_) nd.barrier->wake();
}

void Cluster::throw_failure(std::size_t observer) const {
  std::size_t failed_rank;
  std::string what;
  bool is_timeout;
  {
    std::lock_guard<std::mutex> lk(fail_mutex_);
    failed_rank = failed_rank_;
    what = fail_what_;
    is_timeout = fail_is_timeout_;
  }
  if (is_timeout)
    throw CollectiveTimeout(observer, "simmpi: " + what + " (observed on rank " +
                                          std::to_string(observer) + ")");
  throw RankFailure(failed_rank, observer,
                    "simmpi: rank " + std::to_string(failed_rank) +
                        " failed: " + what + " (observed on rank " +
                        std::to_string(observer) + ")");
}

std::vector<std::exception_ptr> Cluster::run_collect(
    const std::function<void(Communicator&)>& fn) {
  // Reset state a previous (possibly failed) run may have left behind.
  {
    std::lock_guard<std::mutex> lk(fail_mutex_);
    failed_.store(false, std::memory_order_release);
    failed_rank_ = 0;
    fail_what_.clear();
    fail_is_timeout_ = false;
    first_error_ = nullptr;
  }
  reduce_arrivals_ = 0;
  {
    std::lock_guard<std::mutex> lk(global_barrier_->mutex);
    global_barrier_->arrived = 0;
  }
  for (auto& nd : nodes_) {
    std::lock_guard<std::mutex> lk(nd.barrier->mutex);
    nd.barrier->arrived = 0;
  }

  std::vector<std::thread> threads;
  threads.reserve(n_ranks_);
  std::vector<std::exception_ptr> errors(n_ranks_);
  // Rank threads inherit the spawning thread's task scope so per-task
  // counters (e.g. the scoped ABFT stats a service job opens) keep
  // attributing work done on rank threads to the owning task.
  void* const parent_scope = task_scope();
  for (std::size_t r = 0; r < n_ranks_; ++r) {
    threads.emplace_back([this, &fn, &errors, r, parent_scope] {
      const ScopedTaskScope inherit(parent_scope);
      Communicator comm(*this, r);
      try {
        fn(comm);
      } catch (...) {
        errors[r] = std::current_exception();
        std::string what = "rank function threw a non-standard exception";
        try {
          std::rethrow_exception(errors[r]);
        } catch (const std::exception& e) {
          what = e.what();
        } catch (...) {
        }
        // Releases peers blocked in collectives; they raise RankFailure.
        fail(r, what, errors[r], /*is_timeout=*/false);
      }
    });
  }
  for (auto& t : threads) t.join();
  return errors;
}

void Cluster::run(const std::function<void(Communicator&)>& fn) {
  const auto errors = run_collect(fn);
  std::exception_ptr root;
  {
    std::lock_guard<std::mutex> lk(fail_mutex_);
    root = first_error_;
  }
  // Prefer the originating failure; the RankFailures it triggered on the
  // other ranks are secondary.
  if (root) {
    flight_dump_for(root);
    std::rethrow_exception(root);
  }
  for (const auto& e : errors)
    if (e) {
      flight_dump_for(e);
      std::rethrow_exception(e);
    }
}

std::size_t Communicator::size() const { return cluster_->n_ranks_; }
std::size_t Communicator::original_rank() const {
  return cluster_->origin_[rank_];
}
std::size_t Communicator::original_rank_of(std::size_t r) const {
  return cluster_->origin_[r];
}
std::size_t Communicator::node() const { return rank_ / cluster_->ranks_per_node_; }
std::size_t Communicator::node_rank() const {
  return rank_ % cluster_->ranks_per_node_;
}
std::size_t Communicator::node_size() const {
  const std::size_t first = node() * cluster_->ranks_per_node_;
  return std::min(cluster_->ranks_per_node_, cluster_->n_ranks_ - first);
}
std::size_t Communicator::node_count() const { return cluster_->node_count(); }

std::chrono::steady_clock::time_point Communicator::enter_collective(
    const char* what, std::span<double> payload) {
  if (obs::enabled()) {
    static obs::Counter& calls = obs::counter("comm/collectives");
    static obs::Counter& doubles = obs::counter("comm/collective_doubles");
    calls.add(1);
    doubles.add(payload.size());
  }
  if (cluster_->failed()) cluster_->throw_failure(rank_);
  const std::size_t seq = seq_++;
  // With payload verification on, tag the contribution as it enters the
  // collective (the simulated sender-side CRC). Anything that damages the
  // payload between here and the reduction -- the injector below models the
  // in-flight corruption of a real network/memory fault -- is caught by the
  // receive-side recheck before the reduction consumes the data.
  const bool verify = cluster_->verify_payloads_ && !payload.empty();
  std::uint32_t tag = 0;
  if (verify) {
    tag = crc32({reinterpret_cast<const unsigned char*>(payload.data()),
                 payload.size() * sizeof(double)});
    static obs::Counter& verified = obs::counter("comm/payloads_verified");
    verified.increment();
  }
  // Work-clock measurement: time since this rank LEFT its previous
  // collective is compute (its wait time was spent inside the previous
  // collective and is excluded) -- the wall span the straggler ledger
  // accumulates. The Slowdown fault instead scales the rank thread's own
  // consumed CPU time over the same span: on a dedicated core the two
  // coincide, but on an oversubscribed host the wall span also contains
  // co-scheduled peers' compute, and scaling it would keep punishing a
  // victim even after the rebalance rung has moved its work away. Zero
  // clock reads when nothing is attached.
  const bool timed = cluster_->timing_armed();
  std::chrono::steady_clock::time_point t_enter{};
  double work_ms = 0.0;
  if (timed) {
    t_enter = std::chrono::steady_clock::now();
    if (last_leave_valid_)
      work_ms = std::chrono::duration<double, std::milli>(t_enter - last_leave_)
                    .count();
  }
  if (cluster_->injector_ != nullptr) {
    double cpu_ms = 0.0;
    if (last_leave_valid_)
      cpu_ms = std::min(work_ms,
                        std::max(0.0, thread_cpu_ms() - last_leave_cpu_ms_));
    cluster_->injector_->on_collective(
        rank_, cluster_->origin_[rank_], seq, what, payload,
        [this] { return cluster_->failed(); }, cpu_ms);
    // Deposit the straggler evidence BEFORE the post-injector failure
    // recheck: a victim whose injected delay was cut short by its peers'
    // timing out must still land its slow-work sample in the ledger, or
    // the classifier would never see the very slowness that tripped the
    // deadline.
    if (cluster_->straggler_ != nullptr && last_leave_valid_) {
      const auto t_after = std::chrono::steady_clock::now();
      cluster_->straggler_->record_work(
          cluster_->origin_[rank_],
          std::chrono::duration<double, std::milli>(t_after - last_leave_)
              .count());
    }
    // A peer may have failed while this rank was stalled by the injector.
    if (cluster_->failed()) cluster_->throw_failure(rank_);
  } else if (cluster_->straggler_ != nullptr && last_leave_valid_) {
    cluster_->straggler_->record_work(cluster_->origin_[rank_], work_ms);
  }
  if (verify) {
    const std::uint32_t check =
        crc32({reinterpret_cast<const unsigned char*>(payload.data()),
               payload.size() * sizeof(double)});
    if (check != tag) {
      obs::counter("comm/payload_corruptions").increment();
      obs::trace_instant("sdc/detect");
      throw PayloadCorruption(
          rank_, cluster_->origin_[rank_], what,
          "simmpi: payload CRC mismatch in " + std::string(what) +
              " on rank " + std::to_string(rank_) + " (original rank " +
              std::to_string(cluster_->origin_[rank_]) + ", collective #" +
              std::to_string(seq) + ", " + std::to_string(payload.size()) +
              " doubles): silent corruption detected at the collective");
    }
  }
  return t_enter;
}

void Communicator::leave_collective(
    CollectiveClass c, std::chrono::steady_clock::time_point t_enter) {
  if (!cluster_->timing_armed()) return;
  const auto now = std::chrono::steady_clock::now();
  last_leave_ = now;
  if (cluster_->injector_ != nullptr) last_leave_cpu_ms_ = thread_cpu_ms();
  last_leave_valid_ = true;
  // Entry-to-completion duration feeds the adaptive deadline. Completed
  // collectives only: a timed-out collective throws before reaching here,
  // so the estimate never adapts upward to accommodate a slowdown.
  if (cluster_->adaptive_ && cluster_->deadline_est_ != nullptr)
    cluster_->deadline_est_->record(
        c, std::chrono::duration<double, std::milli>(now - t_enter).count());
}

void Communicator::barrier() {
  AEQP_TRACE_SCOPE("comm/barrier");
  const auto t0 = enter_collective("barrier", {});
  cluster_->global_barrier_->arrive_and_wait(
      *cluster_, rank_, cluster_->effective_timeout(CollectiveClass::Barrier));
  leave_collective(CollectiveClass::Barrier, t0);
}

void Communicator::node_barrier() {
  AEQP_TRACE_SCOPE("comm/node_barrier");
  const auto t0 = enter_collective("node_barrier", {});
  cluster_->nodes_[node()].barrier->arrive_and_wait(
      *cluster_, rank_,
      cluster_->effective_timeout(CollectiveClass::NodeBarrier));
  leave_collective(CollectiveClass::NodeBarrier, t0);
}

void Communicator::allreduce_sum(std::span<double> data) {
  AEQP_TRACE_SCOPE("comm/allreduce_sum");
  const auto t0 = enter_collective("allreduce_sum", data);
  const auto timeout =
      cluster_->effective_timeout(CollectiveClass::AllreduceSum);
  // Information flow of the reduction: this rank's contribution reaches
  // every other rank, whatever tree the transport would use.
  obs::comm_record_all("allreduce_sum", static_cast<int>(rank_),
                       static_cast<int>(size()),
                       data.size() * sizeof(double));
  {
    std::lock_guard<std::mutex> lock(cluster_->reduce_mutex_);
    if (cluster_->reduce_arrivals_ == 0) {
      cluster_->reduce_buffer_.assign(data.size(), 0.0);
      cluster_->reduce_first_rank_ = rank_;
    } else if (cluster_->reduce_buffer_.size() != data.size()) {
      AEQP_THROW("allreduce_sum: element count mismatch: rank " +
                 std::to_string(cluster_->reduce_first_rank_) + " passed " +
                 std::to_string(cluster_->reduce_buffer_.size()) +
                 " elements, rank " + std::to_string(rank_) + " passed " +
                 std::to_string(data.size()));
    }
    for (std::size_t i = 0; i < data.size(); ++i)
      cluster_->reduce_buffer_[i] += data[i];
    ++cluster_->reduce_arrivals_;
  }
  cluster_->global_barrier_->arrive_and_wait(*cluster_, rank_, timeout);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = cluster_->reduce_buffer_[i];
  cluster_->global_barrier_->arrive_and_wait(*cluster_, rank_, timeout);
  if (rank_ == 0) cluster_->reduce_arrivals_ = 0;
  cluster_->global_barrier_->arrive_and_wait(*cluster_, rank_, timeout);
  leave_collective(CollectiveClass::AllreduceSum, t0);
}

void Communicator::allreduce_max(std::span<double> data) {
  AEQP_TRACE_SCOPE("comm/allreduce_max");
  const auto t0 = enter_collective("allreduce_max", data);
  const auto timeout =
      cluster_->effective_timeout(CollectiveClass::AllreduceMax);
  obs::comm_record_all("allreduce_max", static_cast<int>(rank_),
                       static_cast<int>(size()),
                       data.size() * sizeof(double));
  {
    std::lock_guard<std::mutex> lock(cluster_->reduce_mutex_);
    if (cluster_->reduce_arrivals_ == 0) {
      cluster_->reduce_buffer_.assign(
          data.size(), -std::numeric_limits<double>::infinity());
      cluster_->reduce_first_rank_ = rank_;
    } else if (cluster_->reduce_buffer_.size() != data.size()) {
      AEQP_THROW("allreduce_max: element count mismatch: rank " +
                 std::to_string(cluster_->reduce_first_rank_) + " passed " +
                 std::to_string(cluster_->reduce_buffer_.size()) +
                 " elements, rank " + std::to_string(rank_) + " passed " +
                 std::to_string(data.size()));
    }
    for (std::size_t i = 0; i < data.size(); ++i)
      cluster_->reduce_buffer_[i] = std::max(cluster_->reduce_buffer_[i], data[i]);
    ++cluster_->reduce_arrivals_;
  }
  cluster_->global_barrier_->arrive_and_wait(*cluster_, rank_, timeout);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = cluster_->reduce_buffer_[i];
  cluster_->global_barrier_->arrive_and_wait(*cluster_, rank_, timeout);
  if (rank_ == 0) cluster_->reduce_arrivals_ = 0;
  cluster_->global_barrier_->arrive_and_wait(*cluster_, rank_, timeout);
  leave_collective(CollectiveClass::AllreduceMax, t0);
}

void Communicator::allreduce_sum_leaders(std::span<double> data) {
  AEQP_TRACE_SCOPE("comm/allreduce_sum_leaders");
  const bool leader = node_rank() == 0;
  const auto t0 = enter_collective("allreduce_sum_leaders",
                                   leader ? data : std::span<double>{});
  const auto timeout =
      cluster_->effective_timeout(CollectiveClass::AllreduceSumLeaders);
  if (leader && obs::enabled()) {
    // Leaders exchange among themselves only; follower rows stay zero.
    for (std::size_t dst = 0; dst < size(); dst += cluster_->ranks_per_node_)
      if (dst != rank_)
        obs::comm_record("allreduce_sum_leaders", static_cast<int>(rank_),
                         static_cast<int>(dst), data.size() * sizeof(double));
  }
  if (leader) {
    std::lock_guard<std::mutex> lock(cluster_->reduce_mutex_);
    if (cluster_->reduce_arrivals_ == 0) {
      cluster_->reduce_buffer_.assign(data.size(), 0.0);
      cluster_->reduce_first_rank_ = rank_;
    } else if (cluster_->reduce_buffer_.size() != data.size()) {
      AEQP_THROW("allreduce_sum_leaders: element count mismatch: rank " +
                 std::to_string(cluster_->reduce_first_rank_) + " passed " +
                 std::to_string(cluster_->reduce_buffer_.size()) +
                 " elements, rank " + std::to_string(rank_) + " passed " +
                 std::to_string(data.size()));
    }
    for (std::size_t i = 0; i < data.size(); ++i)
      cluster_->reduce_buffer_[i] += data[i];
    ++cluster_->reduce_arrivals_;
  }
  cluster_->global_barrier_->arrive_and_wait(*cluster_, rank_, timeout);
  if (leader)
    for (std::size_t i = 0; i < data.size(); ++i)
      data[i] = cluster_->reduce_buffer_[i];
  cluster_->global_barrier_->arrive_and_wait(*cluster_, rank_, timeout);
  if (rank_ == 0) cluster_->reduce_arrivals_ = 0;
  cluster_->global_barrier_->arrive_and_wait(*cluster_, rank_, timeout);
  leave_collective(CollectiveClass::AllreduceSumLeaders, t0);
}

void Communicator::broadcast(std::span<double> data, std::size_t root) {
  AEQP_TRACE_SCOPE("comm/broadcast");
  AEQP_CHECK(root < size(), "broadcast: root out of range");
  const auto t0 = enter_collective(
      "broadcast", rank_ == root ? data : std::span<double>{});
  const auto timeout = cluster_->effective_timeout(CollectiveClass::Broadcast);
  if (rank_ == root)
    obs::comm_record_all("broadcast", static_cast<int>(root),
                         static_cast<int>(size()),
                         data.size() * sizeof(double));
  if (rank_ == root)
    cluster_->bcast_buffer_.assign(data.begin(), data.end());
  cluster_->global_barrier_->arrive_and_wait(*cluster_, rank_, timeout);
  if (rank_ != root) {
    if (cluster_->bcast_buffer_.size() != data.size())
      AEQP_THROW("broadcast: element count mismatch: root rank " +
                 std::to_string(root) + " passed " +
                 std::to_string(cluster_->bcast_buffer_.size()) +
                 " elements, rank " + std::to_string(rank_) + " passed " +
                 std::to_string(data.size()));
    for (std::size_t i = 0; i < data.size(); ++i)
      data[i] = cluster_->bcast_buffer_[i];
  }
  cluster_->global_barrier_->arrive_and_wait(*cluster_, rank_, timeout);
  leave_collective(CollectiveClass::Broadcast, t0);
}

std::span<double> Communicator::node_window(std::size_t size) {
  Cluster::NodeState& nd = cluster_->nodes_[node()];
  {
    std::lock_guard<std::mutex> lock(nd.mutex);
    if (nd.window_size != size) {
      nd.window.assign(size, 0.0);
      nd.window_size = size;
    }
  }
  node_barrier();
  return {nd.window.data(), nd.window.size()};
}

void Communicator::node_critical(const std::function<void()>& fn) {
  std::lock_guard<std::mutex> lock(cluster_->nodes_[node()].mutex);
  fn();
}

}  // namespace aeqp::parallel
