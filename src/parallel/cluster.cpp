#include "parallel/cluster.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <new>
#include <thread>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/task_scope.hpp"
#include "obs/comm_matrix.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/fault.hpp"

namespace aeqp::parallel {

namespace {

/// Post-mortem hook for structured errors escaping Cluster::run: classify
/// the exception and hand the flight recorder its kind so the dump names
/// what killed the run.
void flight_dump_for(const std::exception_ptr& error) {
  if (!obs::flight_enabled()) return;
  try {
    std::rethrow_exception(error);
  } catch (const RankFailure& e) {
    obs::flight_on_error("RankFailure", e.what());
  } catch (const CollectiveTimeout& e) {
    obs::flight_on_error("CollectiveTimeout", e.what());
  } catch (const PayloadCorruption& e) {
    obs::flight_on_error("PayloadCorruption", e.what());
  } catch (const InvariantViolation& e) {
    obs::flight_on_error("InvariantViolation", e.what());
  } catch (const DeadlineExceeded& e) {
    obs::flight_on_error("DeadlineExceeded", e.what());
  } catch (const OutOfMemoryBudget& e) {
    obs::flight_on_error("OutOfMemoryBudget", e.what());
  } catch (const std::bad_alloc& e) {
    // A REAL allocation failure (not a governor probe): the dump is the
    // last observable act before the process likely dies anyway.
    obs::flight_on_error("BadAlloc", e.what());
  } catch (const std::exception& e) {
    obs::flight_on_error("Error", e.what());
  } catch (...) {
    obs::flight_on_error("Error", "non-standard exception");
  }
}

}  // namespace

Cluster::Cluster(std::size_t n_ranks, std::size_t ranks_per_node)
    : Cluster(n_ranks, ranks_per_node, {}) {}

Cluster::Cluster(std::size_t n_ranks, std::size_t ranks_per_node,
                 std::vector<std::size_t> origin)
    : n_ranks_(n_ranks),
      ranks_per_node_(ranks_per_node),
      origin_(std::move(origin)),
      subworld_(!origin_.empty()) {
  AEQP_CHECK(n_ranks >= 1, "Cluster: need at least one rank");
  AEQP_CHECK(ranks_per_node >= 1, "Cluster: need at least one rank per node");
  if (origin_.empty()) {
    origin_.resize(n_ranks_);
    for (std::size_t r = 0; r < n_ranks_; ++r) origin_[r] = r;
  }
  AEQP_CHECK(origin_.size() == n_ranks_,
             "Cluster: origin map must name every rank exactly once");
  global_barrier_ = std::make_unique<FtBarrier>(n_ranks_);
  const std::size_t n_nodes = node_count();
  nodes_ = std::vector<NodeState>(n_nodes);
  for (std::size_t nd = 0; nd < n_nodes; ++nd) {
    const std::size_t first = nd * ranks_per_node_;
    const std::size_t count = std::min(ranks_per_node_, n_ranks_ - first);
    nodes_[nd].barrier = std::make_unique<FtBarrier>(count);
  }
}

std::unique_ptr<Cluster> Cluster::shrink(
    const std::vector<std::size_t>& failed_ranks) const {
  std::vector<bool> dead(n_ranks_, false);
  for (const std::size_t f : failed_ranks) {
    AEQP_CHECK(f < n_ranks_, "Cluster::shrink: failed rank " +
                                 std::to_string(f) + " out of range (world " +
                                 std::to_string(n_ranks_) + ")");
    dead[f] = true;
  }
  std::vector<std::size_t> survivors;
  survivors.reserve(n_ranks_);
  for (std::size_t r = 0; r < n_ranks_; ++r)
    if (!dead[r]) survivors.push_back(origin_[r]);
  AEQP_CHECK(!survivors.empty(), "Cluster::shrink: no surviving rank");
  auto shrunk =
      std::make_unique<Cluster>(survivors.size(), ranks_per_node_, survivors);
  shrunk->collective_timeout_ = collective_timeout_;
  shrunk->injector_ = injector_;
  shrunk->verify_payloads_ = verify_payloads_;
  obs::trace_instant("cluster/shrink");
  return shrunk;
}

void Cluster::set_fault_injector(FaultInjector* injector) {
  if (injector != nullptr && !subworld_) {
    // A subworld's plan legitimately addresses original ranks that no
    // longer exist here (the origin map can even look like identity when
    // the dead ranks were the highest-numbered ones), so only a full world
    // validates.
    for (const FaultEvent& e : injector->planned_events())
      AEQP_CHECK(e.rank < n_ranks_,
                 "Cluster::set_fault_injector: planned event addresses rank " +
                     std::to_string(e.rank) + " outside the world (size " +
                     std::to_string(n_ranks_) + ")");
  }
  injector_ = injector;
}

std::size_t Cluster::node_count() const {
  return (n_ranks_ + ranks_per_node_ - 1) / ranks_per_node_;
}

void Cluster::FtBarrier::arrive_and_wait(Cluster& cluster, std::size_t rank) {
  // The wait-vs-work split: everything inside this span is time the rank
  // spends blocked on peers, not computing.
  AEQP_TRACE_SCOPE("comm/wait");
  std::unique_lock<std::mutex> lk(mutex);
  if (cluster.failed()) {
    lk.unlock();
    cluster.throw_failure(rank);
  }
  const std::uint64_t gen = generation;
  if (++arrived == count) {
    arrived = 0;
    ++generation;
    cv.notify_all();
    return;
  }
  const auto deadline =
      std::chrono::steady_clock::now() + cluster.collective_timeout_;
  while (generation == gen) {
    if (cluster.failed()) {
      lk.unlock();
      cluster.throw_failure(rank);
    }
    if (cv.wait_until(lk, deadline) == std::cv_status::timeout &&
        generation == gen && !cluster.failed()) {
      const std::size_t seen = arrived;
      lk.unlock();
      cluster.fail(rank,
                   "collective deadline (" +
                       std::to_string(cluster.collective_timeout_.count()) +
                       " ms) exceeded with " + std::to_string(seen) + "/" +
                       std::to_string(count) + " participants arrived",
                   nullptr, /*is_timeout=*/true);
      cluster.throw_failure(rank);
    }
  }
}

void Cluster::FtBarrier::wake() {
  std::lock_guard<std::mutex> lk(mutex);
  cv.notify_all();
}

void Cluster::fail(std::size_t rank, const std::string& what,
                   std::exception_ptr cause, bool is_timeout) {
  {
    std::lock_guard<std::mutex> lk(fail_mutex_);
    if (!failed_.load(std::memory_order_relaxed)) {
      failed_rank_ = rank;
      fail_what_ = what;
      fail_is_timeout_ = is_timeout;
      first_error_ = cause;
      failed_.store(true, std::memory_order_release);
      obs::trace_instant(is_timeout ? "fault/collective_timeout"
                                    : "fault/rank_failure");
    }
  }
  // Release every blocked rank so no collective stays stuck.
  global_barrier_->wake();
  for (auto& nd : nodes_) nd.barrier->wake();
}

void Cluster::throw_failure(std::size_t observer) const {
  std::size_t failed_rank;
  std::string what;
  bool is_timeout;
  {
    std::lock_guard<std::mutex> lk(fail_mutex_);
    failed_rank = failed_rank_;
    what = fail_what_;
    is_timeout = fail_is_timeout_;
  }
  if (is_timeout)
    throw CollectiveTimeout(observer, "simmpi: " + what + " (observed on rank " +
                                          std::to_string(observer) + ")");
  throw RankFailure(failed_rank, observer,
                    "simmpi: rank " + std::to_string(failed_rank) +
                        " failed: " + what + " (observed on rank " +
                        std::to_string(observer) + ")");
}

std::vector<std::exception_ptr> Cluster::run_collect(
    const std::function<void(Communicator&)>& fn) {
  // Reset state a previous (possibly failed) run may have left behind.
  {
    std::lock_guard<std::mutex> lk(fail_mutex_);
    failed_.store(false, std::memory_order_release);
    failed_rank_ = 0;
    fail_what_.clear();
    fail_is_timeout_ = false;
    first_error_ = nullptr;
  }
  reduce_arrivals_ = 0;
  {
    std::lock_guard<std::mutex> lk(global_barrier_->mutex);
    global_barrier_->arrived = 0;
  }
  for (auto& nd : nodes_) {
    std::lock_guard<std::mutex> lk(nd.barrier->mutex);
    nd.barrier->arrived = 0;
  }

  std::vector<std::thread> threads;
  threads.reserve(n_ranks_);
  std::vector<std::exception_ptr> errors(n_ranks_);
  // Rank threads inherit the spawning thread's task scope so per-task
  // counters (e.g. the scoped ABFT stats a service job opens) keep
  // attributing work done on rank threads to the owning task.
  void* const parent_scope = task_scope();
  for (std::size_t r = 0; r < n_ranks_; ++r) {
    threads.emplace_back([this, &fn, &errors, r, parent_scope] {
      const ScopedTaskScope inherit(parent_scope);
      Communicator comm(*this, r);
      try {
        fn(comm);
      } catch (...) {
        errors[r] = std::current_exception();
        std::string what = "rank function threw a non-standard exception";
        try {
          std::rethrow_exception(errors[r]);
        } catch (const std::exception& e) {
          what = e.what();
        } catch (...) {
        }
        // Releases peers blocked in collectives; they raise RankFailure.
        fail(r, what, errors[r], /*is_timeout=*/false);
      }
    });
  }
  for (auto& t : threads) t.join();
  return errors;
}

void Cluster::run(const std::function<void(Communicator&)>& fn) {
  const auto errors = run_collect(fn);
  std::exception_ptr root;
  {
    std::lock_guard<std::mutex> lk(fail_mutex_);
    root = first_error_;
  }
  // Prefer the originating failure; the RankFailures it triggered on the
  // other ranks are secondary.
  if (root) {
    flight_dump_for(root);
    std::rethrow_exception(root);
  }
  for (const auto& e : errors)
    if (e) {
      flight_dump_for(e);
      std::rethrow_exception(e);
    }
}

std::size_t Communicator::size() const { return cluster_->n_ranks_; }
std::size_t Communicator::original_rank() const {
  return cluster_->origin_[rank_];
}
std::size_t Communicator::original_rank_of(std::size_t r) const {
  return cluster_->origin_[r];
}
std::size_t Communicator::node() const { return rank_ / cluster_->ranks_per_node_; }
std::size_t Communicator::node_rank() const {
  return rank_ % cluster_->ranks_per_node_;
}
std::size_t Communicator::node_size() const {
  const std::size_t first = node() * cluster_->ranks_per_node_;
  return std::min(cluster_->ranks_per_node_, cluster_->n_ranks_ - first);
}
std::size_t Communicator::node_count() const { return cluster_->node_count(); }

void Communicator::enter_collective(const char* what, std::span<double> payload) {
  if (obs::enabled()) {
    static obs::Counter& calls = obs::counter("comm/collectives");
    static obs::Counter& doubles = obs::counter("comm/collective_doubles");
    calls.add(1);
    doubles.add(payload.size());
  }
  if (cluster_->failed()) cluster_->throw_failure(rank_);
  const std::size_t seq = seq_++;
  // With payload verification on, tag the contribution as it enters the
  // collective (the simulated sender-side CRC). Anything that damages the
  // payload between here and the reduction -- the injector below models the
  // in-flight corruption of a real network/memory fault -- is caught by the
  // receive-side recheck before the reduction consumes the data.
  const bool verify = cluster_->verify_payloads_ && !payload.empty();
  std::uint32_t tag = 0;
  if (verify) {
    tag = crc32({reinterpret_cast<const unsigned char*>(payload.data()),
                 payload.size() * sizeof(double)});
    static obs::Counter& verified = obs::counter("comm/payloads_verified");
    verified.increment();
  }
  if (cluster_->injector_ != nullptr) {
    cluster_->injector_->on_collective(
        rank_, cluster_->origin_[rank_], seq, what, payload,
        [this] { return cluster_->failed(); });
    // A peer may have failed while this rank was stalled by the injector.
    if (cluster_->failed()) cluster_->throw_failure(rank_);
  }
  if (verify) {
    const std::uint32_t check =
        crc32({reinterpret_cast<const unsigned char*>(payload.data()),
               payload.size() * sizeof(double)});
    if (check != tag) {
      obs::counter("comm/payload_corruptions").increment();
      obs::trace_instant("sdc/detect");
      throw PayloadCorruption(
          rank_, cluster_->origin_[rank_], what,
          "simmpi: payload CRC mismatch in " + std::string(what) +
              " on rank " + std::to_string(rank_) + " (original rank " +
              std::to_string(cluster_->origin_[rank_]) + ", collective #" +
              std::to_string(seq) + ", " + std::to_string(payload.size()) +
              " doubles): silent corruption detected at the collective");
    }
  }
}

void Communicator::barrier() {
  AEQP_TRACE_SCOPE("comm/barrier");
  enter_collective("barrier", {});
  cluster_->global_barrier_->arrive_and_wait(*cluster_, rank_);
}

void Communicator::node_barrier() {
  AEQP_TRACE_SCOPE("comm/node_barrier");
  enter_collective("node_barrier", {});
  cluster_->nodes_[node()].barrier->arrive_and_wait(*cluster_, rank_);
}

void Communicator::allreduce_sum(std::span<double> data) {
  AEQP_TRACE_SCOPE("comm/allreduce_sum");
  enter_collective("allreduce_sum", data);
  // Information flow of the reduction: this rank's contribution reaches
  // every other rank, whatever tree the transport would use.
  obs::comm_record_all("allreduce_sum", static_cast<int>(rank_),
                       static_cast<int>(size()),
                       data.size() * sizeof(double));
  {
    std::lock_guard<std::mutex> lock(cluster_->reduce_mutex_);
    if (cluster_->reduce_arrivals_ == 0) {
      cluster_->reduce_buffer_.assign(data.size(), 0.0);
      cluster_->reduce_first_rank_ = rank_;
    } else if (cluster_->reduce_buffer_.size() != data.size()) {
      AEQP_THROW("allreduce_sum: element count mismatch: rank " +
                 std::to_string(cluster_->reduce_first_rank_) + " passed " +
                 std::to_string(cluster_->reduce_buffer_.size()) +
                 " elements, rank " + std::to_string(rank_) + " passed " +
                 std::to_string(data.size()));
    }
    for (std::size_t i = 0; i < data.size(); ++i)
      cluster_->reduce_buffer_[i] += data[i];
    ++cluster_->reduce_arrivals_;
  }
  cluster_->global_barrier_->arrive_and_wait(*cluster_, rank_);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = cluster_->reduce_buffer_[i];
  cluster_->global_barrier_->arrive_and_wait(*cluster_, rank_);
  if (rank_ == 0) cluster_->reduce_arrivals_ = 0;
  cluster_->global_barrier_->arrive_and_wait(*cluster_, rank_);
}

void Communicator::allreduce_max(std::span<double> data) {
  AEQP_TRACE_SCOPE("comm/allreduce_max");
  enter_collective("allreduce_max", data);
  obs::comm_record_all("allreduce_max", static_cast<int>(rank_),
                       static_cast<int>(size()),
                       data.size() * sizeof(double));
  {
    std::lock_guard<std::mutex> lock(cluster_->reduce_mutex_);
    if (cluster_->reduce_arrivals_ == 0) {
      cluster_->reduce_buffer_.assign(
          data.size(), -std::numeric_limits<double>::infinity());
      cluster_->reduce_first_rank_ = rank_;
    } else if (cluster_->reduce_buffer_.size() != data.size()) {
      AEQP_THROW("allreduce_max: element count mismatch: rank " +
                 std::to_string(cluster_->reduce_first_rank_) + " passed " +
                 std::to_string(cluster_->reduce_buffer_.size()) +
                 " elements, rank " + std::to_string(rank_) + " passed " +
                 std::to_string(data.size()));
    }
    for (std::size_t i = 0; i < data.size(); ++i)
      cluster_->reduce_buffer_[i] = std::max(cluster_->reduce_buffer_[i], data[i]);
    ++cluster_->reduce_arrivals_;
  }
  cluster_->global_barrier_->arrive_and_wait(*cluster_, rank_);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = cluster_->reduce_buffer_[i];
  cluster_->global_barrier_->arrive_and_wait(*cluster_, rank_);
  if (rank_ == 0) cluster_->reduce_arrivals_ = 0;
  cluster_->global_barrier_->arrive_and_wait(*cluster_, rank_);
}

void Communicator::allreduce_sum_leaders(std::span<double> data) {
  AEQP_TRACE_SCOPE("comm/allreduce_sum_leaders");
  const bool leader = node_rank() == 0;
  enter_collective("allreduce_sum_leaders",
                   leader ? data : std::span<double>{});
  if (leader && obs::enabled()) {
    // Leaders exchange among themselves only; follower rows stay zero.
    for (std::size_t dst = 0; dst < size(); dst += cluster_->ranks_per_node_)
      if (dst != rank_)
        obs::comm_record("allreduce_sum_leaders", static_cast<int>(rank_),
                         static_cast<int>(dst), data.size() * sizeof(double));
  }
  if (leader) {
    std::lock_guard<std::mutex> lock(cluster_->reduce_mutex_);
    if (cluster_->reduce_arrivals_ == 0) {
      cluster_->reduce_buffer_.assign(data.size(), 0.0);
      cluster_->reduce_first_rank_ = rank_;
    } else if (cluster_->reduce_buffer_.size() != data.size()) {
      AEQP_THROW("allreduce_sum_leaders: element count mismatch: rank " +
                 std::to_string(cluster_->reduce_first_rank_) + " passed " +
                 std::to_string(cluster_->reduce_buffer_.size()) +
                 " elements, rank " + std::to_string(rank_) + " passed " +
                 std::to_string(data.size()));
    }
    for (std::size_t i = 0; i < data.size(); ++i)
      cluster_->reduce_buffer_[i] += data[i];
    ++cluster_->reduce_arrivals_;
  }
  cluster_->global_barrier_->arrive_and_wait(*cluster_, rank_);
  if (leader)
    for (std::size_t i = 0; i < data.size(); ++i)
      data[i] = cluster_->reduce_buffer_[i];
  cluster_->global_barrier_->arrive_and_wait(*cluster_, rank_);
  if (rank_ == 0) cluster_->reduce_arrivals_ = 0;
  cluster_->global_barrier_->arrive_and_wait(*cluster_, rank_);
}

void Communicator::broadcast(std::span<double> data, std::size_t root) {
  AEQP_TRACE_SCOPE("comm/broadcast");
  AEQP_CHECK(root < size(), "broadcast: root out of range");
  enter_collective("broadcast", rank_ == root ? data : std::span<double>{});
  if (rank_ == root)
    obs::comm_record_all("broadcast", static_cast<int>(root),
                         static_cast<int>(size()),
                         data.size() * sizeof(double));
  if (rank_ == root)
    cluster_->bcast_buffer_.assign(data.begin(), data.end());
  cluster_->global_barrier_->arrive_and_wait(*cluster_, rank_);
  if (rank_ != root) {
    if (cluster_->bcast_buffer_.size() != data.size())
      AEQP_THROW("broadcast: element count mismatch: root rank " +
                 std::to_string(root) + " passed " +
                 std::to_string(cluster_->bcast_buffer_.size()) +
                 " elements, rank " + std::to_string(rank_) + " passed " +
                 std::to_string(data.size()));
    for (std::size_t i = 0; i < data.size(); ++i)
      data[i] = cluster_->bcast_buffer_[i];
  }
  cluster_->global_barrier_->arrive_and_wait(*cluster_, rank_);
}

std::span<double> Communicator::node_window(std::size_t size) {
  Cluster::NodeState& nd = cluster_->nodes_[node()];
  {
    std::lock_guard<std::mutex> lock(nd.mutex);
    if (nd.window_size != size) {
      nd.window.assign(size, 0.0);
      nd.window_size = size;
    }
  }
  node_barrier();
  return {nd.window.data(), nd.window.size()};
}

void Communicator::node_critical(const std::function<void()>& fn) {
  std::lock_guard<std::mutex> lock(cluster_->nodes_[node()].mutex);
  fn();
}

}  // namespace aeqp::parallel
