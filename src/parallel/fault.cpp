#include "parallel/fault.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/trace.hpp"
#include "parallel/cluster.hpp"

namespace aeqp::parallel {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::BitFlip: return "bit-flip";
    case FaultKind::NanPayload: return "nan-payload";
    case FaultKind::InfPayload: return "inf-payload";
    case FaultKind::Stall: return "stall";
    case FaultKind::Kill: return "kill";
  }
  return "?";
}

FaultPlan& FaultPlan::add(const FaultEvent& event) {
  AEQP_CHECK(event.bit >= 0 && event.bit <= 63,
             "FaultPlan: bit " + std::to_string(event.bit) +
                 " out of range 0..63");
  AEQP_CHECK(event.repeat >= 1,
             "FaultPlan: repeat must be >= 1 (an event that never fires is "
             "a plan bug)");
  events_.push_back(event);
  return *this;
}

FaultPlan FaultPlan::random(std::uint64_t seed, std::size_t n_events,
                            std::size_t n_ranks, std::size_t first_collective,
                            std::size_t last_collective,
                            std::vector<FaultKind> kinds,
                            std::size_t permanent_kills) {
  AEQP_CHECK(n_ranks >= 1, "FaultPlan::random: need at least one rank");
  AEQP_CHECK(last_collective > first_collective,
             "FaultPlan::random: empty collective window");
  AEQP_CHECK(!kinds.empty() || n_events == 0,
             "FaultPlan::random: empty kind set");
  Rng rng(seed);
  FaultPlan plan;
  for (std::size_t i = 0; i < n_events; ++i) {
    FaultEvent e;
    e.kind = kinds[rng.uniform_index(kinds.size())];
    e.rank = rng.uniform_index(n_ranks);
    e.collective = first_collective +
                   rng.uniform_index(last_collective - first_collective);
    e.element = rng.uniform_index(4096);
    e.bit = 48 + static_cast<int>(rng.uniform_index(16));
    plan.add(e);
  }
  // Permanent kills strike distinct ranks (a node dies once), and never all
  // of them -- elastic recovery needs at least one survivor to shrink onto.
  permanent_kills = std::min(permanent_kills, n_ranks - 1);
  std::vector<std::size_t> victims(n_ranks);
  for (std::size_t r = 0; r < n_ranks; ++r) victims[r] = r;
  for (std::size_t k = 0; k < permanent_kills; ++k) {
    const std::size_t pick = k + rng.uniform_index(n_ranks - k);
    std::swap(victims[k], victims[pick]);
    FaultEvent e;
    e.kind = FaultKind::Kill;
    e.rank = victims[k];
    e.collective = first_collective +
                   rng.uniform_index(last_collective - first_collective);
    e.transient = false;
    plan.add(e);
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan) {
  for (const auto& e : plan.events()) events_.push_back(Armed{e, 0, false});
}

void FaultInjector::on_collective(std::size_t rank, std::size_t original_rank,
                                  std::size_t seq, const char* what,
                                  std::span<double> payload,
                                  const std::function<bool()>& cancelled) {
  std::size_t stall_total_ms = 0;
  bool kill = false;
  bool kill_permanent = false;
  std::size_t kill_collective = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& armed : events_) {
      if (armed.done || armed.event.rank != original_rank) continue;
      // Transient events (and the first firing of permanent ones) wait for
      // the planned collective index. A permanent event that already fired
      // strikes at *every* later collective -- a dead node is dead at its
      // first collective after the failure, whatever its sequence index.
      if (seq < armed.event.collective &&
          (armed.event.transient || armed.fired == 0))
        continue;
      switch (armed.event.kind) {
        case FaultKind::BitFlip:
        case FaultKind::NanPayload:
        case FaultKind::InfPayload: {
          if (payload.empty()) continue;  // wait for a payload collective
          double& slot = payload[armed.event.element % payload.size()];
          if (armed.event.kind == FaultKind::BitFlip) {
            std::uint64_t bits;
            std::memcpy(&bits, &slot, sizeof(bits));
            bits ^= std::uint64_t{1} << (armed.event.bit & 63);
            std::memcpy(&slot, &bits, sizeof(bits));
          } else if (armed.event.kind == FaultKind::NanPayload) {
            slot = std::numeric_limits<double>::quiet_NaN();
          } else {
            slot = std::numeric_limits<double>::infinity();
          }
          ++armed.fired;
          if (armed.event.transient) armed.done = true;
          ++stats_.corruptions;
          obs::trace_instant(armed.event.kind == FaultKind::BitFlip
                                 ? "fault/bit-flip"
                                 : (armed.event.kind == FaultKind::NanPayload
                                        ? "fault/nan-payload"
                                        : "fault/inf-payload"));
          break;
        }
        case FaultKind::Stall:
          stall_total_ms += armed.event.stall_ms;
          if (++armed.fired >= armed.event.repeat && armed.event.transient)
            armed.done = true;
          ++stats_.stalls;
          obs::trace_instant("fault/stall");
          break;
        case FaultKind::Kill:
          ++armed.fired;
          if (armed.event.transient) armed.done = true;
          ++stats_.kills;
          kill = true;
          kill_permanent = !armed.event.transient;
          kill_collective = seq;
          obs::trace_instant("fault/kill");
          break;
      }
    }
  }
  if (stall_total_ms > 0) {
    // Sleep in slices so a cluster-wide failure cuts the stall short.
    using namespace std::chrono;
    const auto until = steady_clock::now() + milliseconds(stall_total_ms);
    while (steady_clock::now() < until && !(cancelled && cancelled()))
      std::this_thread::sleep_for(milliseconds(
          std::min<long long>(20, duration_cast<milliseconds>(
                                      until - steady_clock::now()).count() + 1)));
  }
  if (kill) {
    std::string msg = "fault injection: rank " + std::to_string(rank);
    if (original_rank != rank)
      msg += " (original rank " + std::to_string(original_rank) + ")";
    msg += std::string(kill_permanent ? " permanently" : "") +
           " killed at collective #" + std::to_string(kill_collective) + " (" +
           what + ")";
    throw RankFailure(rank, rank, msg);
  }
}

FaultInjectorStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t FaultInjector::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& armed : events_)
    if (armed.fired == 0) ++n;
  return n;
}

std::vector<FaultEvent> FaultInjector::planned_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FaultEvent> events;
  events.reserve(events_.size());
  for (const auto& armed : events_) events.push_back(armed.event);
  return events;
}

obs::ScopedMetricsSource register_metrics(const FaultInjector& injector,
                                          std::string prefix) {
  return obs::ScopedMetricsSource(
      [&injector,
       prefix = std::move(prefix)](std::vector<obs::MetricSample>& out) {
        const FaultInjectorStats s = injector.stats();
        out.push_back({prefix + "/corruptions",
                       static_cast<double>(s.corruptions)});
        out.push_back({prefix + "/stalls", static_cast<double>(s.stalls)});
        out.push_back({prefix + "/kills", static_cast<double>(s.kills)});
      });
}

}  // namespace aeqp::parallel
