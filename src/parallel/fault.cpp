#include "parallel/fault.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/trace.hpp"
#include "parallel/cluster.hpp"

namespace aeqp::parallel {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::BitFlip: return "bit-flip";
    case FaultKind::NanPayload: return "nan-payload";
    case FaultKind::InfPayload: return "inf-payload";
    case FaultKind::Stall: return "stall";
    case FaultKind::Kill: return "kill";
    case FaultKind::Slowdown: return "slowdown";
  }
  return "?";
}

namespace {

/// splitmix64 finalizer: deterministic per-(rank, seq) jitter draw without
/// touching the injector's plan RNG (which must stay replayable).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultPlan& FaultPlan::add(const FaultEvent& event) {
  AEQP_CHECK(event.bit >= 0 && event.bit <= 63,
             "FaultPlan: bit " + std::to_string(event.bit) +
                 " out of range 0..63");
  AEQP_CHECK(event.repeat >= 1,
             "FaultPlan: repeat must be >= 1 (an event that never fires is "
             "a plan bug)");
  if (event.kind == FaultKind::Slowdown) {
    AEQP_CHECK(event.slow_factor >= 1.0,
               "FaultPlan: slow_factor " + std::to_string(event.slow_factor) +
                   " must be >= 1 (a slowdown cannot speed a rank up)");
    AEQP_CHECK(event.slow_jitter >= 0.0 && event.slow_jitter < 1.0,
               "FaultPlan: slow_jitter " + std::to_string(event.slow_jitter) +
                   " out of range [0, 1)");
  }
  events_.push_back(event);
  return *this;
}

FaultPlan FaultPlan::random(std::uint64_t seed, std::size_t n_events,
                            std::size_t n_ranks, std::size_t first_collective,
                            std::size_t last_collective,
                            std::vector<FaultKind> kinds,
                            std::size_t permanent_kills,
                            std::size_t slowdowns, double slow_factor) {
  AEQP_CHECK(n_ranks >= 1, "FaultPlan::random: need at least one rank");
  AEQP_CHECK(last_collective > first_collective,
             "FaultPlan::random: empty collective window");
  AEQP_CHECK(!kinds.empty() || n_events == 0,
             "FaultPlan::random: empty kind set");
  Rng rng(seed);
  FaultPlan plan;
  for (std::size_t i = 0; i < n_events; ++i) {
    FaultEvent e;
    e.kind = kinds[rng.uniform_index(kinds.size())];
    e.rank = rng.uniform_index(n_ranks);
    e.collective = first_collective +
                   rng.uniform_index(last_collective - first_collective);
    e.element = rng.uniform_index(4096);
    e.bit = 48 + static_cast<int>(rng.uniform_index(16));
    plan.add(e);
  }
  // Permanent kills strike distinct ranks (a node dies once), and never all
  // of them -- elastic recovery needs at least one survivor to shrink onto.
  permanent_kills = std::min(permanent_kills, n_ranks - 1);
  std::vector<std::size_t> victims(n_ranks);
  for (std::size_t r = 0; r < n_ranks; ++r) victims[r] = r;
  for (std::size_t k = 0; k < permanent_kills; ++k) {
    const std::size_t pick = k + rng.uniform_index(n_ranks - k);
    std::swap(victims[k], victims[pick]);
    FaultEvent e;
    e.kind = FaultKind::Kill;
    e.rank = victims[k];
    e.collective = first_collective +
                   rng.uniform_index(last_collective - first_collective);
    e.transient = false;
    plan.add(e);
  }
  // Slowdowns strike ranks distinct from each other and from the kill
  // victims (continuing the same Fisher-Yates walk), so the straggler is
  // never also the node that dies -- a soak exercises both ladders at once.
  slowdowns = std::min(slowdowns, n_ranks - permanent_kills);
  for (std::size_t k = 0; k < slowdowns; ++k) {
    const std::size_t base = permanent_kills + k;
    const std::size_t pick = base + rng.uniform_index(n_ranks - base);
    std::swap(victims[base], victims[pick]);
    FaultEvent e;
    e.kind = FaultKind::Slowdown;
    e.rank = victims[base];
    e.collective = first_collective +
                   rng.uniform_index(last_collective - first_collective);
    e.slow_factor = slow_factor;
    e.slow_jitter = 0.3;
    e.repeat = 2 + rng.uniform_index(5);  // 2..6 consecutive collectives
    plan.add(e);
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan) {
  for (const auto& e : plan.events()) events_.push_back(Armed{e, 0, false});
}

void FaultInjector::on_collective(std::size_t rank, std::size_t original_rank,
                                  std::size_t seq, const char* what,
                                  std::span<double> payload,
                                  const std::function<bool()>& cancelled,
                                  double work_ms) {
  double delay_ms = 0.0;
  bool kill = false;
  bool kill_permanent = false;
  std::size_t kill_collective = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& armed : events_) {
      if (armed.done || armed.event.rank != original_rank) continue;
      // Transient events (and the first firing of permanent ones) wait for
      // the planned collective index. A permanent event that already fired
      // strikes at *every* later collective -- a dead node is dead at its
      // first collective after the failure, whatever its sequence index.
      if (seq < armed.event.collective &&
          (armed.event.transient || armed.fired == 0))
        continue;
      switch (armed.event.kind) {
        case FaultKind::BitFlip:
        case FaultKind::NanPayload:
        case FaultKind::InfPayload: {
          if (payload.empty()) continue;  // wait for a payload collective
          double& slot = payload[armed.event.element % payload.size()];
          if (armed.event.kind == FaultKind::BitFlip) {
            std::uint64_t bits;
            std::memcpy(&bits, &slot, sizeof(bits));
            bits ^= std::uint64_t{1} << (armed.event.bit & 63);
            std::memcpy(&slot, &bits, sizeof(bits));
          } else if (armed.event.kind == FaultKind::NanPayload) {
            slot = std::numeric_limits<double>::quiet_NaN();
          } else {
            slot = std::numeric_limits<double>::infinity();
          }
          ++armed.fired;
          if (armed.event.transient) armed.done = true;
          ++stats_.corruptions;
          obs::trace_instant(armed.event.kind == FaultKind::BitFlip
                                 ? "fault/bit-flip"
                                 : (armed.event.kind == FaultKind::NanPayload
                                        ? "fault/nan-payload"
                                        : "fault/inf-payload"));
          break;
        }
        case FaultKind::Stall:
          delay_ms += static_cast<double>(armed.event.stall_ms);
          if (++armed.fired >= armed.event.repeat && armed.event.transient)
            armed.done = true;
          ++stats_.stalls;
          obs::trace_instant("fault/stall");
          break;
        case FaultKind::Slowdown: {
          // Delay proportional to the CPU time the rank itself consumed
          // since its previous collective: the rank behaves exactly
          // slow_factor times slower, whatever the workload -- and shedding
          // its work (the rebalance rung) shrinks the delay in proportion.
          // Jitter is a deterministic draw from (original rank, collective
          // index), so replays are bit-identical.
          double scale = 1.0;
          if (armed.event.slow_jitter > 0.0) {
            const std::uint64_t h =
                mix64((static_cast<std::uint64_t>(original_rank) << 32) ^ seq);
            const double u =
                static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
            scale = 1.0 + armed.event.slow_jitter * (2.0 * u - 1.0);
          }
          const double d = (armed.event.slow_factor - 1.0) * work_ms * scale;
          delay_ms += d;
          stats_.slowdown_ms += d;
          if (++armed.fired >= armed.event.repeat && armed.event.transient)
            armed.done = true;
          ++stats_.slowdowns;
          obs::trace_instant("fault/slowdown");
          break;
        }
        case FaultKind::Kill:
          ++armed.fired;
          if (armed.event.transient) armed.done = true;
          ++stats_.kills;
          kill = true;
          kill_permanent = !armed.event.transient;
          kill_collective = seq;
          obs::trace_instant("fault/kill");
          break;
      }
    }
  }
  if (delay_ms > 0.0) {
    // Sleep in <= 10 ms slices so a cluster-wide failure cuts the delay
    // short within one slice instead of dragging the whole world behind a
    // victim that no longer matters.
    using namespace std::chrono;
    const auto until =
        steady_clock::now() + duration_cast<steady_clock::duration>(
                                  duration<double, std::milli>(delay_ms));
    while (steady_clock::now() < until && !(cancelled && cancelled()))
      std::this_thread::sleep_for(milliseconds(
          std::min<long long>(10, duration_cast<milliseconds>(
                                      until - steady_clock::now()).count() + 1)));
  }
  if (kill) {
    std::string msg = "fault injection: rank " + std::to_string(rank);
    if (original_rank != rank)
      msg += " (original rank " + std::to_string(original_rank) + ")";
    msg += std::string(kill_permanent ? " permanently" : "") +
           " killed at collective #" + std::to_string(kill_collective) + " (" +
           what + ")";
    throw RankFailure(rank, rank, msg);
  }
}

FaultInjectorStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t FaultInjector::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& armed : events_)
    if (armed.fired == 0) ++n;
  return n;
}

std::vector<FaultEvent> FaultInjector::planned_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FaultEvent> events;
  events.reserve(events_.size());
  for (const auto& armed : events_) events.push_back(armed.event);
  return events;
}

obs::ScopedMetricsSource register_metrics(const FaultInjector& injector,
                                          std::string prefix) {
  return obs::ScopedMetricsSource(
      [&injector,
       prefix = std::move(prefix)](std::vector<obs::MetricSample>& out) {
        const FaultInjectorStats s = injector.stats();
        out.push_back({prefix + "/corruptions",
                       static_cast<double>(s.corruptions)});
        out.push_back({prefix + "/stalls", static_cast<double>(s.stalls)});
        out.push_back({prefix + "/kills", static_cast<double>(s.kills)});
        out.push_back({prefix + "/slowdowns",
                       static_cast<double>(s.slowdowns)});
        out.push_back({prefix + "/slowdown_ms", s.slowdown_ms});
      });
}

}  // namespace aeqp::parallel
