#pragma once

/// \file machine_model.hpp
/// Analytic machine models of the paper's two evaluation systems
/// (Sec. 5.1): HPC#1, the new-generation Sunway (SW39010, 390 cores/node,
/// custom network, no MPI SHM between core groups), and HPC#2, the AMD-GPU
/// machine (32-core x86 + 4 MI50-class GPUs per node, InfiniBand).
///
/// These models convert communication volumes and rank counts into seconds
/// with the standard alpha-beta (latency-bandwidth) formulation. They are
/// the documented substitute for running on the real machines (DESIGN.md):
/// every *mechanism* (packing, hierarchy, mapping) is executed for real by
/// the threaded runtime in cluster.hpp; only figure-scale timings flow
/// through these models.

#include <cstddef>
#include <string>

namespace aeqp::parallel {

/// Latency/bandwidth description of one supercomputer.
struct MachineModel {
  std::string name;
  std::size_t ranks_per_node = 32;
  double alpha_inter = 0.0;   ///< inter-node message latency (s)
  double beta_inter = 0.0;    ///< inter-node seconds per byte
  double alpha_intra = 0.0;   ///< intra-node synchronization latency (s)
  double beta_intra = 0.0;    ///< intra-node seconds per byte
  bool has_shm = false;       ///< MPI SHM windows usable across node ranks
  double offchip_latency = 0.0;  ///< accelerator off-chip access latency (s)
  double flop_rate = 0.0;        ///< effective accelerator FLOP/s per rank
  double host_flop_rate = 0.0;   ///< host-core FLOP/s per rank (no accel)

  /// HPC#1: Sunway SW39010. Core groups have physically disconnected local
  /// memories, so MPI SHM hierarchy is NOT applicable (paper Sec. 5.2.2),
  /// and off-chip latency is high (paper Sec. 5.2.4).
  static MachineModel hpc1_sunway();

  /// HPC#2: AMD-GPU-accelerated system, 32 CPU cores + 4 GPUs per node,
  /// InfiniBand; SHM hierarchy applicable with m = 32 ranks per copy.
  static MachineModel hpc2_amd();
};

/// Alpha-beta cost model for the collectives AEQP uses.
class CommCostModel {
public:
  explicit CommCostModel(MachineModel machine) : m_(std::move(machine)) {}

  [[nodiscard]] const MachineModel& machine() const { return m_; }

  /// Flat tree-based AllReduce of `bytes` across `ranks` processes:
  /// 2 log2(P) rounds of (alpha + bytes * beta), inter-node terms dominant.
  [[nodiscard]] double allreduce_seconds(std::size_t bytes, std::size_t ranks) const;

  /// `count` back-to-back AllReduce calls of `bytes` each (the baseline of
  /// Fig. 10: one MPI_Allreduce per rho_multipole row).
  [[nodiscard]] double repeated_allreduce_seconds(std::size_t bytes,
                                                  std::size_t count,
                                                  std::size_t ranks) const;

  /// One packed AllReduce moving count*bytes at once (Sec. 3.2.1).
  [[nodiscard]] double packed_allreduce_seconds(std::size_t bytes,
                                                std::size_t count,
                                                std::size_t ranks) const;

  /// Packed + hierarchical (Sec. 3.2.2): m-rank local SHM update followed
  /// by an AllReduce across ranks/m node leaders. Requires has_shm.
  /// Returns the local-update and global components separately.
  struct HierarchicalCost {
    double local_update = 0.0;
    double global = 0.0;
    [[nodiscard]] double total() const { return local_update + global; }
  };
  [[nodiscard]] HierarchicalCost packed_hierarchical_seconds(
      std::size_t bytes, std::size_t count, std::size_t ranks) const;

  /// Barrier among `ranks` processes.
  [[nodiscard]] double barrier_seconds(std::size_t ranks) const;

private:
  MachineModel m_;
};

}  // namespace aeqp::parallel
