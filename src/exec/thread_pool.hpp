#pragma once

/// \file thread_pool.hpp
/// Shared-memory execution layer: a persistent work-stealing thread pool
/// with chunked `parallel_for` range scheduling. This is the host-side
/// analogue of the on-node parallelism the paper exploits through OpenCL
/// work-groups (Sec. 4): every hot phase (DM, Sumup, Rho, H) dispatches its
/// independent units of work across the pool.
///
/// Scheduling model: a `parallel_for` splits its range into one contiguous
/// lane per participating thread. Each thread drains its own lane in fixed
/// chunks through an atomic cursor and, once dry, steals chunks from the
/// other lanes round-robin. The caller thread participates as worker 0, so
/// a pool of size 1 degenerates to a plain serial loop with no thread
/// hand-off (graceful serial fallback).
///
/// Determinism contract: the pool never changes *what* a loop iteration
/// computes or the order of floating-point accumulation inside one
/// iteration; callers that reduce across iterations must do so in a fixed
/// order after the join (see docs/parallelism.md). Under that discipline a
/// run is bit-for-bit identical for every thread count, which the
/// resilience layer's warm-start guarantee relies on.
///
/// Pool size: `AEQP_NUM_THREADS` overrides `std::thread::hardware_concurrency`.
/// Nested `parallel_for` calls (from inside a worker) run serially inline.

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace aeqp::exec {

/// Threads the pool uses by default: the `AEQP_NUM_THREADS` environment
/// override when set to a positive integer, else the hardware concurrency
/// (at least 1).
[[nodiscard]] std::size_t hardware_threads();

class ThreadPool {
public:
  /// n_threads = 0 picks hardware_threads(). The pool spawns n-1 workers;
  /// the submitting thread is always worker 0.
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads that execute a parallel region (workers + caller).
  [[nodiscard]] std::size_t size() const { return n_threads_; }

  /// The process-wide pool used by the free `parallel_for` helpers.
  [[nodiscard]] static ThreadPool& global();

  /// Rebuild the global pool with `n` threads (0 = auto). Not safe while a
  /// parallel region is in flight; intended for benches and tests that
  /// sweep thread counts between runs.
  static void set_global_threads(std::size_t n);

  /// True on a thread currently executing inside a parallel region
  /// (including the caller while it participates). Nested parallel loops
  /// use this to fall back to serial execution.
  [[nodiscard]] static bool in_worker();

  /// body(i) for every i in [begin, end). Iterations must be independent;
  /// exceptions from any worker cancel the remaining chunks and the first
  /// one is rethrown on the calling thread.
  template <typename Body>
  void parallel_for(std::size_t begin, std::size_t end, Body&& body) {
    parallel_for_ranges(begin, end, 1,
                        [&body](std::size_t b, std::size_t e) {
                          for (std::size_t i = b; i < e; ++i) body(i);
                        });
  }

  /// body(chunk_begin, chunk_end) over a partition of [begin, end) into
  /// chunks of at least `min_chunk` iterations. Ranges at or below
  /// `min_chunk`, a pool of size 1, a nested call, or a busy pool (another
  /// thread mid-region, e.g. a simmpi rank) all run the whole range
  /// serially on the calling thread.
  template <typename Body>
  void parallel_for_ranges(std::size_t begin, std::size_t end,
                           std::size_t min_chunk, Body&& body) {
    if (end <= begin) return;
    const std::size_t n = end - begin;
    if (min_chunk == 0) min_chunk = 1;
    if (n_threads_ <= 1 || n <= min_chunk || in_worker()) {
      body(begin, end);
      return;
    }

    const std::size_t lanes =
        std::min(n_threads_, (n + min_chunk - 1) / min_chunk);
    std::vector<LaneState> lane(lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      lane[l].next.store(begin + l * n / lanes, std::memory_order_relaxed);
      lane[l].end = begin + (l + 1) * n / lanes;
    }
    // Steal granularity: small enough to balance uneven iteration costs,
    // never below the caller's chunking floor.
    const std::size_t grain =
        std::max<std::size_t>(min_chunk, n / (8 * lanes) + 1);

    std::atomic<bool> cancelled{false};
    std::exception_ptr error;
    std::mutex error_m;

    auto work = [&](std::size_t worker_id) {
      // Scheduling telemetry, accumulated thread-locally and published once
      // per worker per region so the hot loop stays contention-free.
      std::size_t n_chunks = 0, n_steals = 0;
      try {
        for (std::size_t v = 0; v < lanes; ++v) {
          LaneState& l = lane[(worker_id + v) % lanes];
          while (!cancelled.load(std::memory_order_relaxed)) {
            const std::size_t c =
                l.next.fetch_add(grain, std::memory_order_relaxed);
            if (c >= l.end) break;
            body(c, std::min(c + grain, l.end));
            ++n_chunks;
            n_steals += (v != 0);
          }
        }
      } catch (...) {
        cancelled.store(true, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lk(error_m);
        if (!error) error = std::current_exception();
      }
      if (obs::enabled() && n_chunks != 0) {
        static obs::Counter& chunks_counter = obs::counter("exec/chunks");
        static obs::Counter& steals_counter = obs::counter("exec/steals");
        chunks_counter.add(n_chunks);
        steals_counter.add(n_steals);
      }
    };
    if (obs::enabled()) {
      static obs::Counter& regions_counter = obs::counter("exec/regions");
      regions_counter.add(1);
    }
    if (!try_run_on_all(work)) {
      body(begin, end);  // pool occupied by another thread's region
      return;
    }
    if (error) std::rethrow_exception(error);
  }

private:
  struct alignas(64) LaneState {
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
  };

  /// Run `work(worker_id)` once on every pool thread (caller = 0) and join.
  /// Returns false without running anything when another thread already
  /// holds the pool (the caller then executes its range serially).
  bool try_run_on_all(const std::function<void(std::size_t)>& work);

  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::size_t n_threads_ = 1;
};

/// parallel_for on the global pool.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, Body&& body) {
  ThreadPool::global().parallel_for(begin, end, std::forward<Body>(body));
}

/// Chunked parallel_for on the global pool; body(chunk_begin, chunk_end).
template <typename Body>
void parallel_for_ranges(std::size_t begin, std::size_t end,
                         std::size_t min_chunk, Body&& body) {
  ThreadPool::global().parallel_for_ranges(begin, end, min_chunk,
                                           std::forward<Body>(body));
}

}  // namespace aeqp::exec
