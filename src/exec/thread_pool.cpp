#include "exec/thread_pool.hpp"

#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <thread>

#include "common/error.hpp"

namespace aeqp::exec {

namespace {
thread_local bool tl_in_worker = false;

std::mutex g_global_m;
std::unique_ptr<ThreadPool> g_global;
}  // namespace

std::size_t hardware_threads() {
  if (const char* env = std::getenv("AEQP_NUM_THREADS")) {
    char* endp = nullptr;
    const long v = std::strtol(env, &endp, 10);
    if (endp != env && *endp == '\0' && v >= 1)
      return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

struct ThreadPool::Impl {
  std::vector<std::thread> threads;
  std::mutex m;
  std::condition_variable cv_job;
  std::condition_variable cv_done;
  const std::function<void(std::size_t)>* job = nullptr;
  std::uint64_t job_id = 0;
  std::size_t active = 0;
  bool stop = false;
  // One region at a time; a second submitter falls back to serial instead
  // of queueing (simmpi ranks-as-threads must never convoy on the pool).
  std::mutex submit_m;
};

ThreadPool::ThreadPool(std::size_t n_threads)
    : impl_(std::make_unique<Impl>()),
      n_threads_(n_threads == 0 ? hardware_threads() : n_threads) {
  Impl& im = *impl_;
  im.threads.reserve(n_threads_ > 0 ? n_threads_ - 1 : 0);
  for (std::size_t w = 1; w < n_threads_; ++w) {
    im.threads.emplace_back([this, w] {
      Impl& s = *impl_;
      std::uint64_t seen = 0;
      for (;;) {
        const std::function<void(std::size_t)>* fn = nullptr;
        {
          std::unique_lock<std::mutex> lk(s.m);
          s.cv_job.wait(lk, [&] { return s.stop || s.job_id != seen; });
          if (s.stop) return;
          seen = s.job_id;
          fn = s.job;
        }
        tl_in_worker = true;
        (*fn)(w);
        tl_in_worker = false;
        {
          const std::lock_guard<std::mutex> lk(s.m);
          if (--s.active == 0) s.cv_done.notify_all();
        }
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  Impl& im = *impl_;
  {
    const std::lock_guard<std::mutex> lk(im.m);
    im.stop = true;
  }
  im.cv_job.notify_all();
  for (auto& t : im.threads) t.join();
}

bool ThreadPool::in_worker() { return tl_in_worker; }

bool ThreadPool::try_run_on_all(const std::function<void(std::size_t)>& work) {
  Impl& im = *impl_;
  if (!im.submit_m.try_lock()) return false;
  const std::lock_guard<std::mutex> submit_lk(im.submit_m, std::adopt_lock);
  {
    const std::lock_guard<std::mutex> lk(im.m);
    im.job = &work;
    ++im.job_id;
    im.active = im.threads.size();
  }
  im.cv_job.notify_all();
  // The caller is worker 0; flagging it keeps nested loops serial.
  tl_in_worker = true;
  work(0);
  tl_in_worker = false;
  {
    std::unique_lock<std::mutex> lk(im.m);
    im.cv_done.wait(lk, [&] { return im.active == 0; });
    im.job = nullptr;
  }
  return true;
}

ThreadPool& ThreadPool::global() {
  const std::lock_guard<std::mutex> lk(g_global_m);
  if (!g_global) g_global = std::make_unique<ThreadPool>();
  return *g_global;
}

void ThreadPool::set_global_threads(std::size_t n) {
  AEQP_CHECK(!in_worker(),
             "ThreadPool::set_global_threads: cannot rebuild the pool from "
             "inside a parallel region");
  const std::lock_guard<std::mutex> lk(g_global_m);
  g_global = std::make_unique<ThreadPool>(n);
}

}  // namespace aeqp::exec
