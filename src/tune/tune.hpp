#pragma once

/// \file tune.hpp
/// Persistent per-machine autotuning (ISSUE 7 tentpole, part 3). The
/// performance-only knobs of the Rho phase and the communication layer --
/// block sizes, batch targets, pack windows -- have machine-dependent sweet
/// spots (cache sizes, core counts, NIC latency) that the ablation benches
/// sweep by hand. This module makes the result durable: autotune() runs the
/// sweeps once, save_file() persists the best configuration as versioned
/// JSON, and every solver resolves its "0 = auto" knobs through config(),
/// which loads the file named by AEQP_TUNE_FILE at first use.
///
/// Scope guard: only knobs that cannot change numerical results are applied
/// automatically. rho_block_size, grid_batch_points and pack_window_bytes
/// all regroup work without reordering any floating-point accumulation, so
/// the determinism contract of docs/parallelism.md is untouched.
/// poisson_l_max changes the physics (multipole truncation); the autotuner
/// records a recommendation, but solvers never read it implicitly -- users
/// opt in by copying it into PoissonSpec themselves.

#include <cstddef>
#include <string>

namespace aeqp::tune {

/// Version of the persisted file format. Files with a different
/// aeqp_tune_version are ignored (defaults apply) rather than misread.
inline constexpr int kTuneFileVersion = 1;

/// The tunable knobs, with portable defaults matching the paper's choices
/// (100-300 point batches, 30 MB pack window).
struct TuneConfig {
  /// Rho consumer block: grid points handed to potential_batch at once.
  std::size_t rho_block_size = 64;
  /// Target points per grid batch (device engine / task mapping).
  std::size_t grid_batch_points = 128;
  /// Packed-allreduce staging window in bytes.
  std::size_t pack_window_bytes = 30u * 1024u * 1024u;
  /// Accuracy-gated recommendation only; never applied implicitly.
  int poisson_l_max = 4;
  /// Hostname the sweep ran on (informational).
  std::string machine;
};

/// The process-wide tuned configuration. First call loads the file named by
/// the AEQP_TUNE_FILE environment variable (if set and readable, with a
/// matching version); otherwise defaults. Subsequent calls are lock-free
/// reads of the same instance.
[[nodiscard]] const TuneConfig& config();

/// Replace the process-wide configuration (tests / bench harnesses).
void set_config_for_testing(const TuneConfig& c);
/// Drop any loaded configuration so the next config() re-reads the env.
void reset_config_for_testing();

/// Resolve a solver knob: a nonzero request wins, 0 means "use the tuned
/// value".
[[nodiscard]] std::size_t rho_block_size(std::size_t requested);
[[nodiscard]] std::size_t grid_batch_points(std::size_t requested);
[[nodiscard]] std::size_t pack_window_bytes(std::size_t requested);

/// Serialize to the versioned JSON file format.
[[nodiscard]] std::string to_json(const TuneConfig& c);
/// Parse the file format. Returns false (out untouched) on a version
/// mismatch or unparseable text; unknown keys are ignored, missing keys
/// keep their defaults.
bool parse_json(const std::string& text, TuneConfig& out);
/// Read + parse a file; false if unreadable or rejected by parse_json.
bool load_file(const std::string& path, TuneConfig& out);
/// Write to_json(c) to path; false on I/O failure.
bool save_file(const std::string& path, const TuneConfig& c);

/// One swept knob: the chosen value plus the human-readable sweep table.
struct AutotuneResult {
  TuneConfig best;
  std::string report;  ///< sweep tables for all knobs, ready to print
};

/// Run the sweeps on an inlined water-like workload: rho_block_size by real
/// potential_batch timing, grid_batch_points by load-imbalance objective,
/// pack_window_bytes by the communication cost model, poisson_l_max by
/// producer cost (recommendation stays at the accuracy-gated default).
[[nodiscard]] AutotuneResult autotune();

}  // namespace aeqp::tune
